package frozen

import (
	"fmt"
	"sort"
	"strings"

	"olapdim/internal/constraint"
)

// NK is the sentinel value representing the constant nk of Section 3.2:
// a fresh constant not mentioned in Σ. Each category assigned NK stands for
// "any name other than the constants of Const_ds for that category", so NK
// never satisfies an equality atom. Parsed constants are never empty, so
// the empty string is free to serve as the sentinel.
const NK = ""

// Assignment is a c-assignment: it selects, for each category of a
// subhierarchy, either a constant from Const_ds or NK. Categories absent
// from the map implicitly carry NK.
type Assignment map[string]string

// Get returns the value assigned to category c (NK when absent).
func (a Assignment) Get(c string) string { return a[c] }

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// String renders the assignment deterministically, NK as "nk".
func (a Assignment) String() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		v := a[k]
		if v == NK {
			v = "nk"
		}
		parts = append(parts, fmt.Sprintf("%s=%s", k, v))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// canonical renders only the non-NK entries, sorted — the semantic
// content of the assignment.
func (a Assignment) canonical() string {
	keys := make([]string, 0, len(a))
	for k, v := range a {
		if v != NK {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, a[k]))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Satisfies reports whether the assignment decides every remaining atom of
// the residual constraints and satisfies them all. Categories absent from
// the assignment leave their atoms undecided, which counts as failure.
func (a Assignment) Satisfies(residual []constraint.Expr) bool {
	next, ok := foldWith(residual, a)
	return ok && len(next) == 0
}

// assignDecider resolves equality and order atoms against a partial
// assignment: an atom over category cj is decided once cj is assigned.
// An equality atom holds iff the assigned value equals its constant; an
// order atom holds iff the assigned value is numeric and in the stated
// relation to its threshold. NK satisfies no atom.
func assignDecider(a Assignment) constraint.Decider {
	return func(at constraint.Atom) (bool, bool) {
		switch at := at.(type) {
		case constraint.EqAtom:
			v, assigned := a[at.Cat]
			if !assigned {
				return false, false
			}
			return v != NK && v == at.Val, true
		case constraint.CmpAtom:
			v, assigned := a[at.Cat]
			if !assigned {
				return false, false
			}
			if v == NK {
				return false, true
			}
			f, ok := constraint.NumValue(v)
			return ok && at.Op.Holds(f, at.Val), true
		}
		return false, false
	}
}

// eqCategories returns the sorted categories appearing as the attribute
// category of equality or order atoms in the residual expressions.
func eqCategories(residual []constraint.Expr) []string {
	set := map[string]bool{}
	for _, e := range residual {
		constraint.Walk(e, func(at constraint.Atom) {
			switch at := at.(type) {
			case constraint.EqAtom:
				set[at.Cat] = true
			case constraint.CmpAtom:
				set[at.Cat] = true
			}
		})
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// FindAssignment searches for a c-assignment satisfying the residual
// constraints produced by Circle. consts is the per-category symbolic
// value domain (constraint.ValueDomains over the full Σ: Const_ds plus
// the interval representatives required by order atoms). Only categories
// actually mentioned by equality or order atoms are branched on — all
// other categories take NK, which cannot affect the residual truth value.
// The search assigns one category at a time and re-folds the residual,
// pruning as soon as any constraint becomes false.
func FindAssignment(residual []constraint.Expr, consts map[string][]string) (Assignment, bool) {
	cats := eqCategories(residual)
	a := Assignment{}
	if solveAssignment(residual, cats, consts, a) {
		return a, true
	}
	return nil, false
}

func solveAssignment(residual []constraint.Expr, cats []string, consts map[string][]string, a Assignment) bool {
	if len(residual) == 0 {
		return true
	}
	if len(cats) == 0 {
		// All equality categories assigned: residual must have folded away.
		return false
	}
	c := cats[0]
	candidates := append([]string{NK}, consts[c]...)
	for _, v := range candidates {
		a[c] = v
		next, ok := foldWith(residual, a)
		if ok && solveAssignment(next, cats[1:], consts, a) {
			return true
		}
		delete(a, c)
	}
	return false
}

// foldWith re-folds residual under the partial assignment; ok is false when
// some constraint became false.
func foldWith(residual []constraint.Expr, a Assignment) ([]constraint.Expr, bool) {
	d := assignDecider(a)
	var out []constraint.Expr
	for _, e := range residual {
		r := constraint.Reduce(e, d)
		switch r.(type) {
		case constraint.False:
			return nil, false
		case constraint.True:
		default:
			out = append(out, r)
		}
	}
	return out, true
}

// EnumerateAssignments returns every satisfying c-assignment over the
// categories mentioned by equality atoms in residual, in deterministic
// order. Used to enumerate the distinct frozen dimensions of a schema
// (Figure 4 of the paper).
func EnumerateAssignments(residual []constraint.Expr, consts map[string][]string) []Assignment {
	cats := eqCategories(residual)
	var out []Assignment
	var rec func(residual []constraint.Expr, cats []string, a Assignment)
	rec = func(residual []constraint.Expr, cats []string, a Assignment) {
		if len(cats) == 0 {
			if len(residual) == 0 {
				out = append(out, a.Clone())
			}
			return
		}
		c := cats[0]
		for _, v := range append([]string{NK}, consts[c]...) {
			a[c] = v
			next, ok := foldWith(residual, a)
			if ok {
				rec(next, cats[1:], a)
			}
			delete(a, c)
		}
	}
	rec(residual, cats, Assignment{})
	return out
}
