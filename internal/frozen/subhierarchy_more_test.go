package frozen

import (
	"reflect"
	"testing"

	"olapdim/internal/constraint"
	"olapdim/internal/schema"
)

func TestReachableSet(t *testing.T) {
	g := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"A", "C"}, [2]string{"D", schema.All})
	got := g.ReachableSet("B")
	want := map[string]bool{"B": true, "D": true, schema.All: true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReachableSet(B) = %v, want %v", got, want)
	}
	if len(g.ReachableSet("nope")) != 0 {
		t.Error("unknown category should reach nothing")
	}
	// Reflexive.
	if !g.ReachableSet("C")["C"] {
		t.Error("ReachableSet must include the category itself")
	}
}

func TestReachingSet(t *testing.T) {
	g := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"C", "D"}, [2]string{"D", schema.All})
	got := g.ReachingSet("D")
	want := map[string]bool{"A": true, "B": true, "C": true, "D": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReachingSet(D) = %v, want %v", got, want)
	}
	if len(g.ReachingSet("nope")) != 0 {
		t.Error("unknown category should be reached by nothing")
	}
	// Agreement with Reaches for every pair.
	for _, target := range g.Categories() {
		set := g.ReachingSet(target)
		for _, b := range g.Categories() {
			if set[b] != g.Reaches(b, target) {
				t.Errorf("ReachingSet(%s)[%s] = %v disagrees with Reaches", target, b, set[b])
			}
		}
	}
}

func TestAnyParentIn(t *testing.T) {
	g := sub([2]string{"A", "B"}, [2]string{"B", "D"})
	if !g.AnyParentIn("B", map[string]bool{"A": true}) {
		t.Error("A is a parent of B")
	}
	if g.AnyParentIn("B", map[string]bool{"D": true}) {
		t.Error("D is not a parent of B")
	}
	if g.AnyParentIn("A", map[string]bool{"A": true, "B": true, "D": true}) {
		t.Error("A has no parents")
	}
}

func TestOutAndEdges(t *testing.T) {
	g := sub([2]string{"A", "B"}, [2]string{"A", "C"})
	if got := g.Out("A"); len(got) != 2 {
		t.Errorf("Out(A) = %v", got)
	}
	if got := g.Out("B"); len(got) != 0 {
		t.Errorf("Out(B) = %v", got)
	}
	if got := g.Edges(); len(got) != 2 || got[0] != [2]string{"A", "B"} {
		t.Errorf("Edges = %v", got)
	}
}

func TestFrozenString(t *testing.T) {
	f := &Frozen{
		G:      sub([2]string{"A", "B"}),
		Assign: Assignment{"B": "hot", "A": NK},
	}
	if got := f.String(); got != "A->B [B=hot]" {
		t.Errorf("String = %q", got)
	}
	bare := &Frozen{G: sub([2]string{"A", "B"}), Assign: Assignment{}}
	if got := bare.String(); got != "A->B" {
		t.Errorf("String = %q", got)
	}
}

func TestCircleWithCmpAtoms(t *testing.T) {
	g := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"D", schema.All})
	sigma := []constraint.Expr{
		constraint.CmpAtom{RootCat: "A", Cat: "D", Op: constraint.Lt, Val: 10},                   // D reachable: kept
		constraint.Not{X: constraint.CmpAtom{RootCat: "A", Cat: "C", Op: constraint.Gt, Val: 0}}, // C unreachable: ⊥, ¬⊥=⊤
	}
	residual, ok := Circle(sigma, g)
	if !ok {
		t.Fatal("unexpected failure")
	}
	if len(residual) != 1 || residual[0].String() != "A.D<10" {
		t.Errorf("residual = %v", residual)
	}
	// Unreachable order atom asserted positively fails the circle.
	if _, ok := Circle([]constraint.Expr{constraint.CmpAtom{RootCat: "A", Cat: "C", Op: constraint.Lt, Val: 1}}, g); ok {
		t.Error("unreachable order atom did not fail")
	}
}

func TestFindAssignmentWithCmpAtoms(t *testing.T) {
	sigma := []constraint.Expr{
		constraint.CmpAtom{RootCat: "A", Cat: "D", Op: constraint.Ge, Val: 5},
		constraint.CmpAtom{RootCat: "A", Cat: "D", Op: constraint.Lt, Val: 7},
		constraint.Not{X: constraint.EqAtom{RootCat: "A", Cat: "D", Val: "6"}},
	}
	domains := constraint.ValueDomains(sigma)
	a, ok := FindAssignment(sigma, domains)
	if !ok {
		t.Fatalf("no assignment found over domain %v", domains["D"])
	}
	v, numeric := constraint.NumValue(a.Get("D"))
	if !numeric || v < 5 || v >= 7 || v == 6 {
		t.Errorf("assignment D = %q does not satisfy the region", a.Get("D"))
	}
	// An empty region is unsatisfiable.
	bad := []constraint.Expr{
		constraint.CmpAtom{RootCat: "A", Cat: "D", Op: constraint.Gt, Val: 7},
		constraint.CmpAtom{RootCat: "A", Cat: "D", Op: constraint.Lt, Val: 5},
	}
	if _, ok := FindAssignment(bad, constraint.ValueDomains(bad)); ok {
		t.Error("empty region satisfied")
	}
	// NK satisfies negated order atoms.
	neg := []constraint.Expr{
		constraint.Not{X: constraint.CmpAtom{RootCat: "A", Cat: "D", Op: constraint.Lt, Val: 5}},
		constraint.Not{X: constraint.CmpAtom{RootCat: "A", Cat: "D", Op: constraint.Ge, Val: 5}},
	}
	a, ok = FindAssignment(neg, constraint.ValueDomains(neg))
	if !ok {
		t.Fatal("non-numeric NK should satisfy both negations")
	}
	if a.Get("D") != NK {
		t.Errorf("assignment D = %q, want NK", a.Get("D"))
	}
}

func TestNaiveSatisfiableWithCmpAtoms(t *testing.T) {
	g := schema.New("cmp")
	for _, e := range [][2]string{{"A", "B"}, {"B", schema.All}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	sigma := []constraint.Expr{
		constraint.CmpAtom{RootCat: "A", Cat: "B", Op: constraint.Ge, Val: 5},
		constraint.CmpAtom{RootCat: "A", Cat: "B", Op: constraint.Le, Val: 5},
	}
	ok, err := NaiveSatisfiable(g, sigma, "A")
	if err != nil || !ok {
		t.Errorf("boundary region should be satisfiable: %v %v", ok, err)
	}
	sigma2 := []constraint.Expr{
		constraint.CmpAtom{RootCat: "A", Cat: "B", Op: constraint.Gt, Val: 5},
		constraint.CmpAtom{RootCat: "A", Cat: "B", Op: constraint.Lt, Val: 5},
	}
	ok, err = NaiveSatisfiable(g, sigma2, "A")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("empty region satisfiable")
	}
}
