package frozen

import (
	"fmt"

	"olapdim/internal/instance"
)

// ConeOf extracts the ancestor cone of member x in instance d as a frozen
// dimension: the subhierarchy formed by the categories of x's ancestors
// (one member each, by partitioning C2) with x's direct-link structure,
// and the c-assignment mapping each category to its ancestor's name when
// that name is a constant of the schema (consts), or NK otherwise.
//
// By the construction behind Theorem 3, the cone of any member of a valid
// instance over ds is a frozen dimension of ds with root category(x) —
// `TestConesAreFrozenDimensions` checks this correspondence against the
// enumerated frozen dimensions.
func ConeOf(d *instance.Instance, x string, consts map[string][]string) (*Frozen, error) {
	root, ok := d.Category(x)
	if !ok {
		return nil, fmt.Errorf("frozen: unknown member %q", x)
	}
	g := NewSubhierarchy(root)
	assign := Assignment{}
	anc := d.Ancestors(x)
	constSet := map[string]map[string]bool{}
	for c, vs := range consts {
		constSet[c] = map[string]bool{}
		for _, v := range vs {
			constSet[c][v] = true
		}
	}
	for y := range anc {
		cy, _ := d.Category(y)
		for _, p := range d.Parents(y) {
			if !anc[p] {
				continue
			}
			cp, _ := d.Category(p)
			g.AddEdge(cy, cp)
		}
		if set, ok := constSet[cy]; ok && set[d.Name(y)] {
			assign[cy] = d.Name(y)
		} else {
			assign[cy] = NK
		}
	}
	return &Frozen{G: g, Assign: assign}, nil
}
