package frozen

import (
	"olapdim/internal/constraint"
)

// circleDecider resolves path, rollup and through atoms against the
// subhierarchy g (Definition 8(a)) and maps equality and order atoms whose
// attribute category is unreachable from their root in g to false
// (Definition 8(b)). Atoms over reachable categories stay undecided and
// survive into the residual expression handed to the c-assignment solver.
func circleDecider(g *Subhierarchy) constraint.Decider {
	return func(a constraint.Atom) (bool, bool) {
		switch a := a.(type) {
		case constraint.PathAtom:
			return g.IsPath(a.Cats), true
		case constraint.RollupAtom:
			return g.Reaches(a.RootCat, a.Cat), true
		case constraint.ThroughAtom:
			return g.Reaches(a.RootCat, a.Via) && g.Reaches(a.Via, a.Cat), true
		case constraint.EqAtom:
			if !g.Reaches(a.RootCat, a.Cat) {
				return false, true
			}
			return false, false
		case constraint.CmpAtom:
			if !g.Reaches(a.RootCat, a.Cat) {
				return false, true
			}
			return false, false
		}
		return false, false
	}
}

// Circle computes Σ∘g (Definition 8) with constant folding, skipping
// constraints whose root category is not in g: Definition 4 makes such
// constraints vacuously true on the induced frozen dimension (deviation 1
// in DESIGN.md). The residual expressions mention only equality atoms over
// categories of g. ok is false when some constraint folded to false, in
// which case g induces no frozen dimension regardless of c-assignment.
func Circle(sigma []constraint.Expr, g *Subhierarchy) (residual []constraint.Expr, ok bool) {
	d := circleDecider(g)
	for _, e := range sigma {
		root, err := constraint.Root(e)
		if err != nil {
			return nil, false
		}
		if root != "" && !g.HasCategory(root) {
			continue
		}
		r := constraint.Reduce(e, d)
		if _, isFalse := r.(constraint.False); isFalse {
			return nil, false
		}
		if _, isTrue := r.(constraint.True); isTrue {
			continue
		}
		residual = append(residual, r)
	}
	return residual, true
}

// CircleVerbatim computes Σ∘g exactly as Definition 8 states it, replacing
// atoms by the constants true/false without folding or dropping vacuous
// constraints. It reproduces the right column of Figure 5 of the paper and
// exists for documentation and golden tests; the solver uses Circle.
func CircleVerbatim(sigma []constraint.Expr, g *Subhierarchy) []constraint.Expr {
	d := circleDecider(g)
	out := make([]constraint.Expr, len(sigma))
	for i, e := range sigma {
		out[i] = constraint.Substitute(e, d)
	}
	return out
}
