package frozen

import (
	"fmt"
	"sort"
	"strings"

	"olapdim/internal/constraint"
	"olapdim/internal/instance"
	"olapdim/internal/schema"
)

// Frozen is a frozen dimension of a dimension schema with a given root:
// a subhierarchy together with a satisfying c-assignment (Definition 5).
// The injective function φ maps each category to the member named after it.
type Frozen struct {
	G      *Subhierarchy
	Assign Assignment
}

// Phi returns φ(c): the member representing category c in the materialized
// instance. All maps to the fixed member all (condition C4).
func Phi(c string) string {
	if c == schema.All {
		return instance.AllMember
	}
	return "φ" + c
}

// FreshNK returns a constant not mentioned anywhere in sigma, to stand for
// nk during materialization.
func FreshNK(consts map[string][]string) string {
	used := map[string]bool{}
	for _, vs := range consts {
		for _, v := range vs {
			used[v] = true
		}
	}
	nk := "nk"
	for used[nk] {
		nk += "'"
	}
	return nk
}

// ToInstance materializes the frozen dimension as a dimension instance over
// G: one member φ(c) per category of the subhierarchy, child/parent links
// mirroring the subhierarchy edges, and Name given by the c-assignment
// (categories carrying NK receive a fresh constant outside Σ).
func (f *Frozen) ToInstance(G *schema.Schema, consts map[string][]string) (*instance.Instance, error) {
	d := instance.New(G)
	nk := FreshNK(consts)
	for _, c := range f.G.Categories() {
		if c == schema.All {
			continue
		}
		if err := d.AddMember(c, Phi(c)); err != nil {
			return nil, err
		}
		name := f.Assign.Get(c)
		if name == NK {
			name = nk
		}
		if err := d.SetName(Phi(c), name); err != nil {
			return nil, err
		}
	}
	for _, e := range f.G.Edges() {
		if err := d.AddLink(Phi(e[0]), Phi(e[1])); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Key canonically identifies the frozen dimension for deduplication.
// NK entries are dropped: an assignment that maps a category to NK is
// semantically identical to one that omits the category (Get returns NK
// for absent keys).
func (f *Frozen) Key() string {
	return f.G.Key() + "@" + f.Assign.canonical()
}

// String renders the frozen dimension as edges plus non-nk names, matching
// the presentation of Figure 4 of the paper.
func (f *Frozen) String() string {
	var names []string
	cats := make([]string, 0, len(f.Assign))
	for c := range f.Assign {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		if v := f.Assign[c]; v != NK {
			names = append(names, fmt.Sprintf("%s=%s", c, v))
		}
	}
	s := f.G.String()
	if len(names) > 0 {
		s += " [" + strings.Join(names, ", ") + "]"
	}
	return s
}

// Induces implements Proposition 2: g induces a frozen dimension of
// (G, sigma) iff g is acyclic and shortcut-free and some c-assignment
// satisfies Σ(ds, root)∘g. On success the witnessing frozen dimension is
// returned. sigma should already be restricted to Σ(ds, root)
// (constraint.SigmaFor); consts is constraint.ConstMap over the full Σ.
func Induces(g *Subhierarchy, sigma []constraint.Expr, consts map[string][]string) (*Frozen, bool) {
	if !g.Acyclic() || !g.ShortcutFree() {
		return nil, false
	}
	residual, ok := Circle(sigma, g)
	if !ok {
		return nil, false
	}
	a, ok := FindAssignment(residual, consts)
	if !ok {
		return nil, false
	}
	return &Frozen{G: g, Assign: a}, true
}
