// Package frozen implements frozen dimensions (Section 3.2 of Hurtado &
// Mendelzon, "OLAP Dimension Constraints", PODS 2002): minimal homogeneous
// dimension instances conveyed by a dimension schema. It provides
// subhierarchies (Definition 7), the circle operator Σ∘g (Definition 8),
// c-assignments, the induction test of Proposition 2, materialization of
// frozen dimensions as instances, and the naive Theorem-3 enumeration that
// serves as a correctness oracle and benchmark baseline for DIMSAT.
package frozen

import (
	"fmt"
	"sort"
	"strings"

	"olapdim/internal/schema"
)

// Subhierarchy is a rooted subgraph (C', ↗') of a hierarchy schema
// (Definition 7): it contains the root and All, and every category is
// reachable from the root and reaches All. Subhierarchies explored by
// DIMSAT additionally have no cycles and no shortcuts; use Acyclic and
// ShortcutFree to test those properties on arbitrary subhierarchies.
type Subhierarchy struct {
	root string
	cats map[string]bool
	out  map[string][]string
}

// NewSubhierarchy returns a subhierarchy containing only the root category.
func NewSubhierarchy(root string) *Subhierarchy {
	return &Subhierarchy{
		root: root,
		cats: map[string]bool{root: true},
		out:  map[string][]string{},
	}
}

// Root returns the root category of the subhierarchy.
func (g *Subhierarchy) Root() string { return g.root }

// AddEdge adds c ↗' p, adding both categories. Duplicates are ignored.
func (g *Subhierarchy) AddEdge(c, p string) {
	g.cats[c] = true
	g.cats[p] = true
	for _, q := range g.out[c] {
		if q == p {
			return
		}
	}
	g.out[c] = append(g.out[c], p)
}

// HasCategory reports whether c ∈ C'.
func (g *Subhierarchy) HasCategory(c string) bool { return g.cats[c] }

// AddEdgeUndoable adds c ↗' p and reports whether p was a new category —
// exactly the information RemoveEdge needs to revert the addition.
// Backtracking searches (DIMSAT's EXPAND) use the pair to explore
// subhierarchies without cloning.
func (g *Subhierarchy) AddEdgeUndoable(c, p string) (newCategory bool) {
	newCategory = !g.cats[p]
	g.AddEdge(c, p)
	return newCategory
}

// RemoveEdge removes c ↗' p; when dropCategory is true, p is removed from
// the category set as well (callers pass the value AddEdgeUndoable
// returned, in LIFO order).
func (g *Subhierarchy) RemoveEdge(c, p string, dropCategory bool) {
	out := g.out[c]
	for i, q := range out {
		if q == p {
			g.out[c] = append(out[:i], out[i+1:]...)
			break
		}
	}
	if len(g.out[c]) == 0 {
		delete(g.out, c)
	}
	if dropCategory {
		delete(g.cats, p)
	}
}

// Categories returns C' sorted lexicographically.
func (g *Subhierarchy) Categories() []string {
	out := make([]string, 0, len(g.cats))
	for c := range g.cats {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// NumCategories returns |C'|.
func (g *Subhierarchy) NumCategories() int { return len(g.cats) }

// Out returns the categories directly above c in the subhierarchy.
func (g *Subhierarchy) Out(c string) []string { return g.out[c] }

// HasEdge reports whether c ↗' p.
func (g *Subhierarchy) HasEdge(c, p string) bool {
	for _, q := range g.out[c] {
		if q == p {
			return true
		}
	}
	return false
}

// Edges returns all edges sorted lexicographically.
func (g *Subhierarchy) Edges() [][2]string {
	var out [][2]string
	for c, ps := range g.out {
		for _, p := range ps {
			out = append(out, [2]string{c, p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Reaches reports c ↗'* p (reflexive-transitive closure within g).
func (g *Subhierarchy) Reaches(c, p string) bool {
	if !g.cats[c] || !g.cats[p] {
		return false
	}
	if c == p {
		return true
	}
	seen := map[string]bool{c: true}
	stack := []string{c}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range g.out[cur] {
			if q == p {
				return true
			}
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return false
}

// ReachableSet returns {p : c ↗'* p}, including c itself.
func (g *Subhierarchy) ReachableSet(c string) map[string]bool {
	out := map[string]bool{}
	if !g.cats[c] {
		return out
	}
	out[c] = true
	stack := []string{c}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.out[cur] {
			if !out[p] {
				out[p] = true
				stack = append(stack, p)
			}
		}
	}
	return out
}

// ReachingSet returns {b : b ↗'* target}, including target itself.
// It builds a reverse adjacency in one pass, so callers can amortize
// shortcut and cycle tests over a single traversal (the hot path of
// DIMSAT's EXPAND).
func (g *Subhierarchy) ReachingSet(target string) map[string]bool {
	out := map[string]bool{}
	if !g.cats[target] {
		return out
	}
	in := map[string][]string{}
	for c, ps := range g.out {
		for _, p := range ps {
			in[p] = append(in[p], c)
		}
	}
	out[target] = true
	stack := []string{target}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, b := range in[cur] {
			if !out[b] {
				out[b] = true
				stack = append(stack, b)
			}
		}
	}
	return out
}

// AnyParentIn reports whether some category with a direct edge to c in g
// belongs to the given set.
func (g *Subhierarchy) AnyParentIn(c string, set map[string]bool) bool {
	for b, ps := range g.out {
		if !set[b] {
			continue
		}
		for _, p := range ps {
			if p == c {
				return true
			}
		}
	}
	return false
}

// IsPath reports whether cats is a path of consecutive edges in g
// (the truth value a path atom receives under the circle operator).
func (g *Subhierarchy) IsPath(cats []string) bool {
	if len(cats) == 0 || !g.cats[cats[0]] {
		return false
	}
	for i := 1; i < len(cats); i++ {
		if !g.HasEdge(cats[i-1], cats[i]) {
			return false
		}
	}
	return true
}

// Acyclic reports whether g has no directed cycle.
func (g *Subhierarchy) Acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(c string) bool
	visit = func(c string) bool {
		color[c] = gray
		for _, p := range g.out[c] {
			switch color[p] {
			case gray:
				return false
			case white:
				if !visit(p) {
					return false
				}
			}
		}
		color[c] = black
		return true
	}
	for c := range g.cats {
		if color[c] == white && !visit(c) {
			return false
		}
	}
	return true
}

// ShortcutFree reports whether no edge (c, p) of g is duplicated by a
// longer path from c to p.
func (g *Subhierarchy) ShortcutFree() bool {
	for _, ps := range g.out {
		for _, p := range ps {
			for _, mid := range ps {
				if mid == p {
					continue
				}
				if g.Reaches(mid, p) {
					return false
				}
			}
		}
	}
	return true
}

// Validate checks Definition 7 against the parent schema G: edges of g are
// edges of G, the root and All belong to g, and every category of g is
// reachable from the root and reaches All within g.
func (g *Subhierarchy) Validate(G *schema.Schema) error {
	if !g.cats[g.root] {
		return fmt.Errorf("frozen: subhierarchy missing root %q", g.root)
	}
	if !g.cats[schema.All] {
		return fmt.Errorf("frozen: subhierarchy missing All")
	}
	for c, ps := range g.out {
		for _, p := range ps {
			if !G.HasEdge(c, p) {
				return fmt.Errorf("frozen: edge %s -> %s not in schema %s", c, p, G.Name())
			}
		}
	}
	for c := range g.cats {
		if !g.Reaches(g.root, c) {
			return fmt.Errorf("frozen: category %q not reachable from root %q", c, g.root)
		}
		if !g.Reaches(c, schema.All) {
			return fmt.Errorf("frozen: category %q does not reach All", c)
		}
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Subhierarchy) Clone() *Subhierarchy {
	c := NewSubhierarchy(g.root)
	for cat := range g.cats {
		c.cats[cat] = true
	}
	for cat, ps := range g.out {
		c.out[cat] = append([]string(nil), ps...)
	}
	return c
}

// Key returns a canonical string identity for deduplication.
func (g *Subhierarchy) Key() string {
	var parts []string
	for _, e := range g.Edges() {
		parts = append(parts, e[0]+">"+e[1])
	}
	// Include isolated categories (only the root can be isolated).
	return g.root + "|" + strings.Join(parts, ",")
}

// String renders the subhierarchy as its sorted edge list.
func (g *Subhierarchy) String() string {
	var parts []string
	for _, e := range g.Edges() {
		parts = append(parts, e[0]+"->"+e[1])
	}
	if len(parts) == 0 {
		return "{" + g.root + "}"
	}
	return strings.Join(parts, "; ")
}
