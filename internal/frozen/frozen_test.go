package frozen

import (
	"strings"
	"testing"

	"olapdim/internal/constraint"
	"olapdim/internal/schema"
)

// diamondSchema: A -> {B, C} -> D -> All with shortcut edge A -> D.
func diamondSchema(t *testing.T) *schema.Schema {
	t.Helper()
	g := schema.New("diamond")
	for _, e := range [][2]string{
		{"A", "B"}, {"A", "C"}, {"A", "D"}, {"B", "D"}, {"C", "D"}, {"D", schema.All},
	} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func sub(edges ...[2]string) *Subhierarchy {
	g := NewSubhierarchy("A")
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestSubhierarchyBasics(t *testing.T) {
	g := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"D", schema.All})
	if g.Root() != "A" {
		t.Errorf("Root = %q", g.Root())
	}
	if !g.HasCategory("B") || g.HasCategory("C") {
		t.Error("category membership wrong")
	}
	if !g.HasEdge("A", "B") || g.HasEdge("A", "D") {
		t.Error("edge membership wrong")
	}
	if !g.Reaches("A", schema.All) || g.Reaches("D", "A") {
		t.Error("reachability wrong")
	}
	if !g.Reaches("A", "A") {
		t.Error("reachability must be reflexive")
	}
	if !g.IsPath([]string{"A", "B", "D"}) {
		t.Error("A,B,D is a path")
	}
	if g.IsPath([]string{"A", "D"}) {
		t.Error("A,D is not a path")
	}
	if g.IsPath(nil) {
		t.Error("empty path accepted")
	}
	if g.NumCategories() != 4 {
		t.Errorf("NumCategories = %d", g.NumCategories())
	}
}

func TestSubhierarchyValidate(t *testing.T) {
	G := diamondSchema(t)
	good := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"D", schema.All})
	if err := good.Validate(G); err != nil {
		t.Errorf("valid subhierarchy rejected: %v", err)
	}
	// Missing All.
	noAll := sub([2]string{"A", "B"}, [2]string{"B", "D"})
	if err := noAll.Validate(G); err == nil {
		t.Error("subhierarchy without All accepted")
	}
	// Category not reachable from root.
	floating := sub([2]string{"A", "D"}, [2]string{"D", schema.All}, [2]string{"B", "D"})
	if err := floating.Validate(G); err == nil {
		t.Error("category unreachable from root accepted")
	}
	// Edge not in schema.
	bogus := sub([2]string{"A", "B"}, [2]string{"B", "C"}, [2]string{"C", "D"}, [2]string{"D", schema.All})
	if err := bogus.Validate(G); err == nil {
		t.Error("edge outside schema accepted")
	}
}

func TestAcyclicAndShortcutFree(t *testing.T) {
	ok := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"D", schema.All})
	if !ok.Acyclic() || !ok.ShortcutFree() {
		t.Error("clean subhierarchy misclassified")
	}
	cyc := sub([2]string{"A", "B"}, [2]string{"B", "A"})
	if cyc.Acyclic() {
		t.Error("cycle not detected")
	}
	sc := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"A", "D"}, [2]string{"D", schema.All})
	if sc.ShortcutFree() {
		t.Error("shortcut not detected")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := sub([2]string{"A", "B"})
	c := g.Clone()
	c.AddEdge("B", "D")
	if g.HasCategory("D") {
		t.Error("clone mutation leaked")
	}
}

func TestKeyAndString(t *testing.T) {
	g := sub([2]string{"B", "D"}, [2]string{"A", "B"})
	if got := g.String(); got != "A->B; B->D" {
		t.Errorf("String = %q", got)
	}
	empty := NewSubhierarchy("A")
	if got := empty.String(); got != "{A}" {
		t.Errorf("String = %q", got)
	}
	if sub([2]string{"A", "B"}).Key() == sub([2]string{"A", "C"}).Key() {
		t.Error("distinct subhierarchies share a key")
	}
}

func TestCircleDecidesPathAtoms(t *testing.T) {
	g := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"D", schema.All})
	sigma := []constraint.Expr{
		constraint.NewPath("A", "B"), // true in g
		constraint.NewOr(constraint.NewPath("A", "C"), constraint.NewPath("A", "B")), // true
		constraint.RollupAtom{RootCat: "A", Cat: "D"},                                // reachable
		constraint.ThroughAtom{RootCat: "A", Via: "B", Cat: "D"},
	}
	residual, ok := Circle(sigma, g)
	if !ok {
		t.Fatal("satisfiable circle reported failure")
	}
	if len(residual) != 0 {
		t.Errorf("residual = %v, want empty", residual)
	}
	// A false path atom fails the circle.
	_, ok = Circle([]constraint.Expr{constraint.NewPath("A", "C")}, g)
	if ok {
		t.Error("false path atom did not fail")
	}
}

func TestCircleSkipsRootsOutsideG(t *testing.T) {
	g := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"D", schema.All})
	// Constraint rooted at C, which is not in g: vacuously true
	// (deviation 1 in DESIGN.md).
	sigma := []constraint.Expr{constraint.NewPath("C", "D")}
	residual, ok := Circle(sigma, g)
	if !ok || len(residual) != 0 {
		t.Errorf("vacuous constraint not skipped: %v %v", residual, ok)
	}
}

func TestCircleKeepsReachableEqAtoms(t *testing.T) {
	g := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"D", schema.All})
	sigma := []constraint.Expr{
		constraint.EqAtom{RootCat: "A", Cat: "D", Val: "k"},                    // D reachable: kept
		constraint.Not{X: constraint.EqAtom{RootCat: "A", Cat: "C", Val: "k"}}, // C unreachable: ⊥, so ¬⊥ = ⊤
	}
	residual, ok := Circle(sigma, g)
	if !ok {
		t.Fatal("unexpected failure")
	}
	if len(residual) != 1 || residual[0].String() != `A.D="k"` {
		t.Errorf("residual = %v", residual)
	}
	// Unreachable equality atom asserted positively fails the circle.
	_, ok = Circle([]constraint.Expr{constraint.EqAtom{RootCat: "A", Cat: "C", Val: "k"}}, g)
	if ok {
		t.Error("unreachable equality atom did not fail")
	}
}

func TestCircleVerbatim(t *testing.T) {
	g := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"D", schema.All})
	sigma := []constraint.Expr{
		constraint.Iff{
			A: constraint.EqAtom{RootCat: "A", Cat: "A", Val: "x"},
			B: constraint.NewPath("A", "C"),
		},
	}
	got := CircleVerbatim(sigma, g)
	want := `A="x" <-> false`
	if len(got) != 1 || got[0].String() != want {
		t.Errorf("CircleVerbatim = %v, want %q", got, want)
	}
}

func TestFindAssignment(t *testing.T) {
	consts := map[string][]string{"D": {"k1", "k2"}, "B": {"x"}}
	// D must be k1, B must not be x.
	residual := []constraint.Expr{
		constraint.EqAtom{RootCat: "A", Cat: "D", Val: "k1"},
		constraint.Not{X: constraint.EqAtom{RootCat: "A", Cat: "B", Val: "x"}},
	}
	a, ok := FindAssignment(residual, consts)
	if !ok {
		t.Fatal("no assignment found")
	}
	if a.Get("D") != "k1" {
		t.Errorf("D = %q", a.Get("D"))
	}
	if a.Get("B") != NK {
		t.Errorf("B = %q, want NK", a.Get("B"))
	}
	// Contradiction: D = k1 and D = k2.
	bad := []constraint.Expr{
		constraint.EqAtom{RootCat: "A", Cat: "D", Val: "k1"},
		constraint.EqAtom{RootCat: "A", Cat: "D", Val: "k2"},
	}
	if _, ok := FindAssignment(bad, consts); ok {
		t.Error("contradictory assignment found")
	}
}

func TestEnumerateAssignments(t *testing.T) {
	consts := map[string][]string{"D": {"k1", "k2"}}
	// D may be anything but k2: NK or k1.
	residual := []constraint.Expr{
		constraint.Not{X: constraint.EqAtom{RootCat: "A", Cat: "D", Val: "k2"}},
	}
	as := EnumerateAssignments(residual, consts)
	if len(as) != 2 {
		t.Fatalf("got %d assignments, want 2: %v", len(as), as)
	}
	var reprs []string
	for _, a := range as {
		reprs = append(reprs, a.String())
	}
	joined := strings.Join(reprs, " ")
	if !strings.Contains(joined, "D=nk") || !strings.Contains(joined, "D=k1") {
		t.Errorf("assignments = %v", reprs)
	}
}

func TestInducesAndMaterialize(t *testing.T) {
	G := diamondSchema(t)
	sigma := []constraint.Expr{
		constraint.NewPath("A", "B"),
		constraint.EqAtom{RootCat: "A", Cat: "D", Val: "hot"},
	}
	consts := constraint.ConstMap(sigma)
	g := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"D", schema.All})
	f, ok := Induces(g, sigma, consts)
	if !ok {
		t.Fatal("expected induction")
	}
	if f.Assign.Get("D") != "hot" {
		t.Errorf("assignment D = %q", f.Assign.Get("D"))
	}
	d, err := f.ToInstance(G, consts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("materialized frozen dimension invalid: %v", err)
	}
	if !d.SatisfiesAll(sigma) {
		t.Error("materialized frozen dimension violates sigma")
	}
	if d.Name(Phi("D")) != "hot" {
		t.Errorf("Name(φD) = %q", d.Name(Phi("D")))
	}
	// Cyclic or shortcut subhierarchies never induce.
	scut := sub([2]string{"A", "B"}, [2]string{"B", "D"}, [2]string{"A", "D"}, [2]string{"D", schema.All})
	if _, ok := Induces(scut, sigma, consts); ok {
		t.Error("shortcut subhierarchy induced a frozen dimension")
	}
}

func TestFreshNK(t *testing.T) {
	consts := map[string][]string{"D": {"nk", "nk'"}}
	nk := FreshNK(consts)
	if nk == "nk" || nk == "nk'" {
		t.Errorf("FreshNK returned used constant %q", nk)
	}
}

func TestNaiveSatisfiable(t *testing.T) {
	G := diamondSchema(t)
	sigma := []constraint.Expr{constraint.NewPath("A", "B")}
	ok, err := NaiveSatisfiable(G, sigma, "A")
	if err != nil || !ok {
		t.Fatalf("A should be satisfiable: %v %v", ok, err)
	}
	// Force contradiction: A must and must not have a parent in B.
	sigma2 := append(sigma, constraint.Not{X: constraint.NewPath("A", "B")})
	ok, err = NaiveSatisfiable(G, sigma2, "A")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("contradictory schema satisfiable")
	}
	// All is always satisfiable (Proposition 1).
	ok, err = NaiveSatisfiable(G, sigma2, schema.All)
	if err != nil || !ok {
		t.Errorf("All must be satisfiable: %v %v", ok, err)
	}
	// B remains satisfiable: the contradiction only constrains A.
	ok, err = NaiveSatisfiable(G, sigma2, "B")
	if err != nil || !ok {
		t.Errorf("B should be satisfiable: %v %v", ok, err)
	}
	if _, err := NaiveSatisfiable(G, sigma, "nope"); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestEnumerateFrozenDiamond(t *testing.T) {
	G := diamondSchema(t)
	// A must go through B or C (not directly to D), exactly one of them.
	sigma := []constraint.Expr{
		constraint.NewOne(constraint.NewPath("A", "B"), constraint.NewPath("A", "C")),
		constraint.Not{X: constraint.NewPath("A", "D")},
	}
	fs, err := EnumerateFrozen(G, sigma, "A")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		for _, f := range fs {
			t.Logf("frozen: %s", f)
		}
		t.Fatalf("got %d frozen dimensions, want 2", len(fs))
	}
}

func TestC7ForcesEdges(t *testing.T) {
	// Example 11 analogue: forbidding the only outgoing edge of a category
	// makes it unsatisfiable because condition C7 needs a parent.
	g := schema.New("c7")
	for _, e := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", schema.All}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	sigma := []constraint.Expr{constraint.Not{X: constraint.NewPath("B", "C")}}
	ok, err := NaiveSatisfiable(g, sigma, "B")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("B should be unsatisfiable: C7 requires B_C")
	}
	// A is likewise unsatisfiable: every instance with a member in A
	// forces a member in B.
	ok, err = NaiveSatisfiable(g, sigma, "A")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("A should be unsatisfiable")
	}
	// C is unconstrained.
	ok, err = NaiveSatisfiable(g, sigma, "C")
	if err != nil || !ok {
		t.Errorf("C should be satisfiable: %v %v", ok, err)
	}
}
