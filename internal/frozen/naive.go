package frozen

import (
	"context"
	"fmt"
	"sort"

	"olapdim/internal/constraint"
	"olapdim/internal/schema"
)

// maxNaiveEdges bounds the brute-force enumeration of edge subsets.
const maxNaiveEdges = 30

// candidateEdges returns the schema edges whose source is reachable from
// root in G — the only edges a subhierarchy with that root can use.
func candidateEdges(G *schema.Schema, root string) [][2]string {
	reach := G.ReachableFrom(root)
	var out [][2]string
	for _, c := range G.Categories() {
		if !reach[c] {
			continue
		}
		for _, p := range G.Out(c) {
			out = append(out, [2]string{c, p})
		}
	}
	return out
}

// subhierarchyFromEdges assembles a candidate subhierarchy and checks
// Definition 7 (root and All present, every category reachable from the
// root and reaching All). It returns nil when the edge set is not a valid
// subhierarchy.
func subhierarchyFromEdges(root string, edges [][2]string, mask uint64) *Subhierarchy {
	g := NewSubhierarchy(root)
	for i, e := range edges {
		if mask&(1<<uint(i)) != 0 {
			g.AddEdge(e[0], e[1])
		}
	}
	if !g.cats[schema.All] {
		return nil
	}
	for c := range g.cats {
		if !g.Reaches(root, c) || !g.Reaches(c, schema.All) {
			return nil
		}
	}
	return g
}

// naiveCancelStride is how many edge-subset masks the brute-force loops
// scan between context checks; the per-mask work is tiny, so checking on a
// stride keeps the overhead invisible while still aborting promptly.
const naiveCancelStride = 1024

// forEachSubhierarchy enumerates every valid subhierarchy of G with the
// given root by brute force over edge subsets, calling fn until it returns
// false. It errors when the candidate edge count exceeds maxNaiveEdges and
// returns ctx.Err() if the context is canceled mid-enumeration — the loop
// is exponential in the edge count, so the baseline is as cancellable as
// DIMSAT itself.
func forEachSubhierarchy(ctx context.Context, G *schema.Schema, root string, fn func(*Subhierarchy) bool) error {
	edges := candidateEdges(G, root)
	if len(edges) > maxNaiveEdges {
		return fmt.Errorf("frozen: naive enumeration over %d candidate edges exceeds limit %d",
			len(edges), maxNaiveEdges)
	}
	for mask := uint64(0); mask < 1<<uint(len(edges)); mask++ {
		if mask%naiveCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		g := subhierarchyFromEdges(root, edges, mask)
		if g == nil {
			continue
		}
		if !fn(g) {
			return nil
		}
	}
	return nil
}

// NaiveSatisfiable decides category satisfiability by the construction in
// the proof of Theorem 3: enumerate every candidate frozen dimension (all
// edge subsets × all constant selections), materialize each as an instance
// and check conditions (C1)–(C7) plus Σ directly. It is exponentially
// slower than DIMSAT and deliberately shares no pruning or circle-operator
// code with it, serving as a correctness oracle and the baseline of
// experiment E7.
//
// NaiveSatisfiable is NaiveSatisfiableContext with a background context.
func NaiveSatisfiable(G *schema.Schema, sigma []constraint.Expr, c string) (bool, error) {
	return NaiveSatisfiableContext(context.Background(), G, sigma, c)
}

// NaiveSatisfiableContext is NaiveSatisfiable under a context; the
// exponential subset enumeration aborts with ctx.Err() shortly after
// cancellation.
func NaiveSatisfiableContext(ctx context.Context, G *schema.Schema, sigma []constraint.Expr, c string) (bool, error) {
	if c == schema.All {
		// Proposition 1: the instance with the single member all is over
		// any dimension schema, so All is always satisfiable.
		return true, nil
	}
	if !G.HasCategory(c) {
		return false, fmt.Errorf("frozen: unknown category %q", c)
	}
	consts := constraint.ValueDomains(sigma)
	found := false
	err := forEachSubhierarchy(ctx, G, c, func(g *Subhierarchy) bool {
		if naiveInduces(g, G, sigma, consts) {
			found = true
			return false
		}
		return true
	})
	return found, err
}

// naiveInduces checks whether some candidate frozen dimension over g is a
// dimension instance over (G, sigma), enumerating full c-assignments over
// every category of g that carries constants.
func naiveInduces(g *Subhierarchy, G *schema.Schema, sigma []constraint.Expr, consts map[string][]string) bool {
	var cats []string
	for _, c := range g.Categories() {
		if len(consts[c]) > 0 && c != schema.All {
			cats = append(cats, c)
		}
	}
	a := Assignment{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(cats) {
			f := &Frozen{G: g, Assign: a}
			d, err := f.ToInstance(G, consts)
			if err != nil {
				return false
			}
			return d.Validate() == nil && d.SatisfiesAll(sigma)
		}
		c := cats[i]
		for _, v := range append([]string{NK}, consts[c]...) {
			a[c] = v
			if rec(i + 1) {
				return true
			}
			delete(a, c)
		}
		return false
	}
	return rec(0)
}

// EnumerateFrozen returns every frozen dimension of (G, sigma) with the
// given root, canonicalized: assignments are restricted to the categories
// mentioned by surviving equality atoms, with all other names standing for
// nk. This reproduces the presentation of Figure 4 of the paper. The
// result is sorted by Key and enumerated by brute force, so it is intended
// for small schemas.
//
// EnumerateFrozen is EnumerateFrozenContext with a background context.
func EnumerateFrozen(G *schema.Schema, sigma []constraint.Expr, root string) ([]*Frozen, error) {
	return EnumerateFrozenContext(context.Background(), G, sigma, root)
}

// EnumerateFrozenContext is EnumerateFrozen under a context; cancellation
// aborts the brute-force enumeration with ctx.Err().
func EnumerateFrozenContext(ctx context.Context, G *schema.Schema, sigma []constraint.Expr, root string) ([]*Frozen, error) {
	if !G.HasCategory(root) {
		return nil, fmt.Errorf("frozen: unknown category %q", root)
	}
	consts := constraint.ValueDomains(sigma)
	relevant := constraint.SigmaFor(sigma, G, root)
	seen := map[string]bool{}
	var out []*Frozen
	err := forEachSubhierarchy(ctx, G, root, func(g *Subhierarchy) bool {
		if !g.Acyclic() || !g.ShortcutFree() {
			return true
		}
		residual, ok := Circle(relevant, g)
		if !ok {
			return true
		}
		for _, a := range EnumerateAssignments(residual, consts) {
			f := &Frozen{G: g, Assign: a}
			if !seen[f.Key()] {
				seen[f.Key()] = true
				out = append(out, f)
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sortFrozen(out)
	return out, nil
}

func sortFrozen(fs []*Frozen) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Key() < fs[j].Key() })
}
