package cluster

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"olapdim/internal/faults"
	"olapdim/internal/obs"
)

// Config tunes a Coordinator. Zero values get production defaults;
// tests shrink the intervals.
type Config struct {
	// Workers lists the dimsatd worker base URLs (e.g.
	// "http://127.0.0.1:8081"). The URL doubles as the worker's name on
	// the ring and in metrics labels.
	Workers []string
	// Replicas is the virtual-node count per worker (default 64).
	Replicas int
	// FailAfter / RecoverAfter are the health-debounce thresholds
	// (defaults 3 and 2): consecutive failures before a worker is taken
	// out of rotation, consecutive successes before it returns.
	FailAfter, RecoverAfter int
	// ProbeInterval is the active /readyz probe period (default 1s);
	// ProbeTimeout bounds one probe (default 2s).
	ProbeInterval, ProbeTimeout time.Duration
	// PollInterval is the job status/checkpoint mirror period
	// (default 500ms).
	PollInterval time.Duration
	// MaxAttempts bounds total forward attempts per request across all
	// candidates (default 4). MaxSheds bounds 429-wait-retry rounds on
	// one worker before the shed answer is relayed (default 2).
	MaxAttempts, MaxSheds int
	// BaseBackoff seeds the between-attempt backoff and the fallback
	// wait for malformed Retry-After headers (default 50ms).
	BaseBackoff time.Duration
	// HedgeDelay is how long the owning worker gets before a straggler
	// read is hedged to the next candidate (default 200ms). HedgeDelay
	// < 0 disables hedging.
	HedgeDelay time.Duration
	// BreakerThreshold is the consecutive transport-failure count that
	// trips a worker's circuit breaker open (default 5; negative
	// disables breakers). While open, forwards skip the worker without
	// dialing; after BreakerCooldown (default 2s) a single half-open
	// probe decides whether it closes again.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RetryBudget caps forward retries — attempts beyond each request's
	// first — across the whole coordinator per RetryBudgetWindow
	// (defaults 64 per 1s; negative disables), so a dead or partitioned
	// shard cannot amplify every incoming request into a retry storm on
	// the survivors. A request denied a retry token relays the best
	// answer it already has instead of trying again.
	RetryBudget       int
	RetryBudgetWindow time.Duration
	// SpanRing bounds the coordinator's distributed-trace span store
	// (default 2048 spans; see obs.NewSpanStore).
	SpanRing int
	// SpanSample samples coordinator-minted traces: every Nth request
	// that arrives without a traceparent starts a sampled trace
	// (default 1 = every request; negative disables minting). Adopted
	// traceparents keep their own sampled flag regardless.
	SpanSample int
	// Transport, when non-nil, replaces the default HTTP transport for
	// all worker traffic — forwards, hedges, probes and job polls. The
	// chaos harness installs a PartitionTransport here.
	Transport http.RoundTripper
	// Faults optionally arms the coordinator's injection sites
	// (cluster.forward, cluster.probe, cluster.hedge).
	Faults *faults.Injector
	// Logf receives coordinator lifecycle logs (nil discards).
	Logf func(format string, args ...any)
}

// Coordinator fronts N dimsatd workers as one sharded service; see the
// package comment for the routing and robustness model. It implements
// http.Handler.
type Coordinator struct {
	cfg     Config
	mux     *http.ServeMux
	reg     *obs.Registry
	met     *clusterMetrics
	client  *workerClient
	health  *healthTracker
	jobs    *jobTracker
	started time.Time

	ids        *obs.IDSource
	spans      *obs.SpanStore
	spanSample int
	spanSeq    atomic.Int64

	mu       sync.Mutex
	workers  []string
	ring     *Ring
	forwards map[string]int64 // per-worker attempt counts for /cluster

	stop     chan struct{}
	loopWG   sync.WaitGroup
	reassign sync.WaitGroup
}

// New builds a coordinator over cfg.Workers. Call Start to begin the
// probe and job-mirror loops, and Close to stop them.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	seen := map[string]bool{}
	for _, w := range cfg.Workers {
		u, err := url.Parse(w)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: worker %q is not an absolute URL", w)
		}
		if seen[w] {
			return nil, fmt.Errorf("cluster: duplicate worker %q", w)
		}
		seen[w] = true
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 200 * time.Millisecond
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 64
	}
	if cfg.RetryBudgetWindow <= 0 {
		cfg.RetryBudgetWindow = time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		reg:      obs.NewRegistry(),
		jobs:     newJobTracker(),
		started:  time.Now(),
		workers:  append([]string(nil), cfg.Workers...),
		ring:     NewRing(cfg.Replicas, cfg.Workers...),
		forwards: map[string]int64{},
		stop:     make(chan struct{}),
	}
	c.ids = obs.NewIDSource()
	c.spans = obs.NewSpanStore(cfg.SpanRing, "coordinator")
	c.spanSample = cfg.SpanSample
	if c.spanSample == 0 {
		c.spanSample = 1
	}
	c.met = newClusterMetrics(c.reg)
	c.health = newHealthTracker(cfg.FailAfter, cfg.RecoverAfter, c.onHealthChange)
	now := time.Now()
	for _, w := range cfg.Workers {
		c.health.add(w, now)
	}
	httpc := &http.Client{}
	if cfg.Transport != nil {
		httpc.Transport = cfg.Transport
	}
	var br *breaker
	if cfg.BreakerThreshold > 0 {
		br = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, func(worker string, to breakerState) {
			c.met.breakerTransitions.With(to.String()).Inc()
			c.cfg.Logf("cluster: breaker for %s -> %s", worker, to)
		})
	}
	var budget *retryBudget
	if cfg.RetryBudget > 0 {
		budget = newRetryBudget(cfg.RetryBudget, cfg.RetryBudgetWindow)
	}
	c.client = &workerClient{
		httpc:             httpc,
		spans:             c.spans,
		faults:            cfg.Faults,
		onAttempt:         c.observeAttempt,
		breaker:           br,
		budget:            budget,
		onBreakerSkip:     func(string) { c.met.breakerSkipped.Inc() },
		onBudgetExhausted: func() { c.met.retryExhausted.Inc() },
	}

	// Idempotent reads: routed by an op-specific key, hedged when slow.
	c.mux.HandleFunc("GET /sat", c.read(func(r *http.Request) string {
		return "sat/" + r.URL.Query().Get("category")
	}))
	// /explain shares /sat's ring key: both decide the same (schema,
	// category) verdict, so routing them to the same shard reuses its
	// SatCache entries and derived-subset compilations.
	c.mux.HandleFunc("GET /explain", c.read(func(r *http.Request) string {
		return "sat/" + r.URL.Query().Get("category")
	}))
	c.mux.HandleFunc("POST /implies", c.read(func(r *http.Request) string {
		return "implies/" + bodyField(r, "constraint")
	}))
	c.mux.HandleFunc("POST /summarizable", c.read(func(r *http.Request) string {
		return "summarizable/" + bodyField(r, "target")
	}))
	c.mux.HandleFunc("GET /sources", c.read(func(r *http.Request) string {
		return "sources/" + r.URL.Query().Get("target")
	}))
	c.mux.HandleFunc("GET /frozen", c.read(func(r *http.Request) string {
		return "frozen/" + r.URL.Query().Get("root")
	}))
	c.mux.HandleFunc("GET /categories", c.read(func(*http.Request) string { return "categories" }))
	c.mux.HandleFunc("GET /matrix", c.read(func(*http.Request) string { return "matrix" }))
	c.mux.HandleFunc("GET /schema", c.read(func(*http.Request) string { return "schema" }))

	// Durable jobs: coordinator-owned identity, cross-shard recovery.
	c.mux.HandleFunc("POST /jobs", c.handleJobSubmit)
	c.mux.HandleFunc("GET /jobs", c.handleJobList)
	c.mux.HandleFunc("GET /jobs/{id}", c.handleJobStatus)
	c.mux.HandleFunc("DELETE /jobs/{id}", c.handleJobCancel)

	// Cluster plane.
	c.mux.HandleFunc("GET /cluster", c.handleClusterStatus)
	c.mux.HandleFunc("GET /cluster/trace/{traceID}", c.handleClusterTrace)
	c.mux.HandleFunc("GET /cluster/metrics", c.handleClusterMetrics)
	c.mux.HandleFunc("POST /cluster/drain", c.handleDrain)
	c.mux.HandleFunc("GET /debug/spans", c.handleSpanList)
	c.mux.HandleFunc("GET /debug/spans/{traceID}", c.handleSpanTrace)
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)
	c.mux.Handle("GET /metrics", c.reg)

	c.registerCollectors(c.reg)
	return c, nil
}

// Registry returns the coordinator's metrics registry, for mounting
// scrapes elsewhere and for cmd/metricslint.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Start launches the health-probe and job-mirror loops.
func (c *Coordinator) Start() {
	c.loopWG.Add(2)
	go c.probeLoop()
	go c.pollLoop()
}

// Close stops the background loops and waits for in-flight
// reassignments to settle.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.loopWG.Wait()
	c.reassign.Wait()
}

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.met.received.Inc()

	// Correlation: adopt a syntactically valid inbound X-Request-ID so
	// client → coordinator → worker log lines share one ID (the ID is
	// written back into r.Header, which forwardHeader relays); mint one
	// otherwise. Tracing: adopt an inbound traceparent or mint a trace,
	// and open the root span every forward and job span parents into.
	id := r.Header.Get("X-Request-ID")
	if !obs.ValidRequestID(id) {
		id = c.ids.Next()
		r.Header.Set("X-Request-ID", id)
	}
	w.Header().Set("X-Request-ID", id)
	parent, adopted := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !adopted {
		parent = obs.SpanContext{TraceID: obs.NewTraceID(), Sampled: c.sampleSpan()}
	}
	span, sc := obs.StartSpan(parent, "coordinator.request", "server")
	w.Header().Set("X-Trace-ID", sc.TraceID)
	r = r.WithContext(obs.WithSpan(obs.WithRequestID(r.Context(), id), sc))

	sw := &statusRecorder{ResponseWriter: w}
	start := time.Now()
	c.mux.ServeHTTP(sw, r)
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	class := codeClass(status)
	c.met.reqTotal.With(class).Inc()
	exemplar := ""
	if sc.Sampled {
		exemplar = sc.TraceID
	}
	c.met.reqDur.With(class).ObserveWithExemplar(time.Since(start).Seconds(), exemplar)
	if sc.Sampled {
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		span.SetAttr("status", strconv.Itoa(status))
		span.SetAttr("requestId", id)
		st := "ok"
		if status >= 500 {
			st = "error"
		}
		span.Finish(st)
		c.spans.Add(span)
	}
	c.cfg.Logf("cluster: %s %s status=%d requestId=%s traceId=%s", r.Method, r.URL.Path, status, id, sc.TraceID)
}

// sampleSpan decides whether a coordinator-minted trace is sampled:
// every spanSample-th request, all when 1, none when negative.
func (c *Coordinator) sampleSpan() bool {
	if c.spanSample <= 0 {
		return false
	}
	return (c.spanSeq.Add(1)-1)%int64(c.spanSample) == 0
}

// observeAttempt is the workerClient hook: every forward attempt feeds
// the per-worker counters and the passive health streaks. A 429 means
// the worker is alive and shedding by contract, so it counts as a
// health success even though the request must wait.
func (c *Coordinator) observeAttempt(worker string, d time.Duration, err error, status int) {
	c.met.forwards.With(worker).Inc()
	c.met.forwardDur.Observe(d.Seconds())
	c.mu.Lock()
	c.forwards[worker]++
	c.mu.Unlock()
	ok := err == nil && status < 500
	msg := ""
	if err != nil {
		msg = err.Error()
	} else if !ok {
		msg = fmt.Sprintf("HTTP %d", status)
	}
	c.health.observe(worker, ok, msg, time.Now())
}

// onHealthChange reacts to debounced transitions: count them, and when
// a worker goes down hand its jobs to the shards that now own them.
func (c *Coordinator) onHealthChange(worker string, from, to healthState) {
	c.met.transitions.With(to.String()).Inc()
	c.cfg.Logf("cluster: worker %s %s -> %s", worker, from, to)
	if to == stateDown {
		c.reassign.Add(1)
		go func() {
			defer c.reassign.Done()
			c.reassignJobs(worker, false)
		}()
	}
}

// routable returns the failover candidate order for key: ring order
// with unhealthy and draining workers moved to the back rather than
// dropped — if every worker looks down, trying the "down" owner is
// still better than refusing outright (the debouncer may simply not
// have seen it recover yet).
func (c *Coordinator) routable(key string) []string {
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	all := ring.Candidates(key, ring.Len())
	var up, rest []string
	for _, w := range all {
		if c.health.healthy(w) {
			up = append(up, w)
		} else {
			rest = append(rest, w)
		}
	}
	return append(up, rest...)
}

// read builds the handler for an idempotent read endpoint. keyFn
// derives the routing key from the request (consuming the body is safe:
// the body is re-read into memory first and forwarded as bytes).
func (c *Coordinator) read(keyFn func(*http.Request) string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
		restoreBody(r, body)
		key := keyFn(r)
		cands := c.routable(key)
		if len(cands) == 0 {
			c.met.unroutable.Inc()
			writeErr(w, http.StatusServiceUnavailable, "no workers available")
			return
		}
		pathQ := r.URL.Path
		if r.URL.RawQuery != "" {
			pathQ += "?" + r.URL.RawQuery
		}
		hdr := forwardHeader(r)

		// Fast path: hedge the owner against the next candidate. If both
		// arms fail, fall back to the bounded failover walk below.
		if c.cfg.HedgeDelay > 0 && len(cands) > 1 {
			hedge := cands[1]
			res, hedged, hedgeWon, herr := c.client.hedgedForward(r.Context(), cands[0], hedge,
				r.Method, pathQ, hdr, body, hedgePolicy{delay: c.cfg.HedgeDelay})
			if hedged {
				c.met.hedges.Inc()
			}
			if herr == nil && res != nil && classify(nil, res.status) != outcomeFailover {
				if hedgeWon {
					c.met.hedgeWins.Inc()
				}
				relay(w, res)
				return
			}
			if r.Context().Err() != nil {
				writeErr(w, http.StatusGatewayTimeout, "request cancelled: %v", r.Context().Err())
				return
			}
		}

		res, attempts, failedOver, ferr := c.client.forwardWithFailover(r.Context(), cands,
			r.Method, pathQ, hdr, body, forwardPolicy{
				maxAttempts: c.cfg.MaxAttempts,
				maxSheds:    c.cfg.MaxSheds,
				baseBackoff: c.cfg.BaseBackoff,
				idempotent:  true,
			})
		if attempts > 1 {
			c.met.retries.Add(uint64(attempts - 1))
		}
		if failedOver {
			c.met.failovers.Inc()
		}
		switch {
		case ferr == nil && res != nil && classify(nil, res.status) != outcomeFailover:
			relay(w, res)
		case r.Context().Err() != nil:
			writeErr(w, http.StatusGatewayTimeout, "request cancelled: %v", r.Context().Err())
		default:
			c.met.unroutable.Inc()
			writeErr(w, http.StatusServiceUnavailable, "all candidate workers failed for key %q", key)
		}
	}
}

// jobKey derives the routing key for a job request — the same key its
// interactive twin would use, so the job lands on the shard whose
// SatCache already holds (or will hold) the relevant results.
func jobKey(req jobRequest) string {
	if req.Kind == "implies" {
		return "implies/" + req.Constraint
	}
	return "sat/" + req.Category
}

func (c *Coordinator) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req jobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding job request: %v", err)
		return
	}
	key := jobKey(req)
	j, created := c.jobs.create(key, req)
	if !created {
		// Coordinator-tier idempotency: the key already maps to a
		// tracked job, wherever it lives now.
		snap, _ := c.jobs.snapshot(j.ID)
		w.Header().Set("Location", "/jobs/"+snap.ID)
		writeJSON(w, http.StatusOK, snap.clientView())
		return
	}
	if req.IdempotencyKey == "" {
		// Mint a key so the submit becomes retryable and the job
		// movable: every re-submit of this job — failover now,
		// reassignment later — carries the same key, and a worker that
		// already accepted it dedupes instead of running it twice.
		req.IdempotencyKey = "coord:" + j.ID
		c.jobs.update(j.ID, func(t *trackedJob) { t.req.IdempotencyKey = req.IdempotencyKey })
	}
	if req.TraceContext == "" {
		// Pin the submit's trace to the job so every lifecycle span — on
		// this shard, and on whichever shard a reassignment lands it —
		// joins the same trace. The tracked copy carries it through
		// failover and handoff resubmissions.
		if sc, ok := obs.SpanFrom(r.Context()); ok {
			req.TraceContext = sc.Traceparent()
			c.jobs.update(j.ID, func(t *trackedJob) { t.req.TraceContext = req.TraceContext })
		}
	}
	res, status := c.submitToShard(r.Context(), j.ID, key, req, "")
	if res == nil {
		c.met.unroutable.Inc()
		writeErr(w, http.StatusServiceUnavailable, "no worker accepted the job")
		return
	}
	snap, _ := c.jobs.snapshot(j.ID)
	w.Header().Set("Location", "/jobs/"+snap.ID)
	writeRaw(w, status, snap.view)
}

// submitToShard forwards a job request to the healthy candidates for
// key (excluding skip) and records the placement on success. It returns
// the accepted view and status, or nil if every candidate refused.
func (c *Coordinator) submitToShard(ctx context.Context, id, key string, req jobRequest, skip string) (*forwardResult, int) {
	cands := c.routable(key)
	if skip != "" {
		filtered := cands[:0:0]
		for _, w := range cands {
			if w != skip {
				filtered = append(filtered, w)
			}
		}
		cands = filtered
	}
	if len(cands) == 0 {
		return nil, 0
	}
	body, _ := json.Marshal(req)
	hdr := http.Header{"Content-Type": []string{"application/json"}}
	res, attempts, failedOver, err := c.client.forwardWithFailover(ctx, cands, http.MethodPost, "/jobs", hdr, body, forwardPolicy{
		maxAttempts: c.cfg.MaxAttempts,
		maxSheds:    c.cfg.MaxSheds,
		baseBackoff: c.cfg.BaseBackoff,
		// Retrying a job submit is safe: the request carries an
		// idempotency key (minted above when the client had none).
		idempotent: req.IdempotencyKey != "",
	})
	if attempts > 1 {
		c.met.retries.Add(uint64(attempts - 1))
	}
	if failedOver {
		c.met.failovers.Inc()
	}
	if err != nil || res == nil || res.status >= 400 {
		return nil, 0
	}
	var view map[string]any
	if jerr := json.Unmarshal(res.body, &view); jerr != nil {
		return nil, 0
	}
	workerID, _ := view["id"].(string)
	state, _ := view["state"].(string)
	c.jobs.update(id, func(t *trackedJob) {
		t.Worker = res.worker
		t.WorkerID = workerID
		t.State = state
		t.view = rewriteView(res.body, t)
		t.terminal = terminalState(state)
	})
	return res, res.status
}

func (c *Coordinator) handleJobList(w http.ResponseWriter, r *http.Request) {
	jobs := c.jobs.list()
	out := make([]json.RawMessage, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.clientView())
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := c.jobs.snapshot(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	// Serve live state when the job's worker is reachable; the mirror —
	// refreshed by the poll loop — answers when it is not, so a dead
	// worker never makes a job's status unreadable.
	if !snap.terminal && snap.Worker != "" && c.health.healthy(snap.Worker) {
		if res, err := c.client.do(r.Context(), snap.Worker, http.MethodGet, "/jobs/"+snap.WorkerID, nil, nil); err == nil && res.status == http.StatusOK {
			c.applyWorkerView(id, res.body)
			snap, _ = c.jobs.snapshot(id)
		}
	}
	writeRaw(w, http.StatusOK, snap.clientView())
}

func (c *Coordinator) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := c.jobs.snapshot(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if snap.terminal {
		writeErr(w, http.StatusConflict, "job %s already %s", id, snap.State)
		return
	}
	res, err := c.client.do(r.Context(), snap.Worker, http.MethodDelete, "/jobs/"+snap.WorkerID, nil, nil)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "cancelling on %s: %v", snap.Worker, err)
		return
	}
	if res.status == http.StatusOK {
		c.applyWorkerView(id, res.body)
		snap, _ = c.jobs.snapshot(id)
		writeRaw(w, http.StatusOK, snap.clientView())
		return
	}
	relay(w, res)
}

// applyWorkerView folds a worker's job view into the mirror.
func (c *Coordinator) applyWorkerView(id string, workerView []byte) {
	var v struct {
		State string `json:"state"`
	}
	if json.Unmarshal(workerView, &v) != nil {
		return
	}
	c.jobs.update(id, func(t *trackedJob) {
		t.State = v.State
		t.view = rewriteView(workerView, t)
		t.terminal = terminalState(v.State)
	})
}

// clusterWorkerView is one worker's row in the /cluster status answer.
type clusterWorkerView struct {
	Name     string `json:"name"`
	State    string `json:"state"`
	Breaker  string `json:"breaker"`
	Since    string `json:"since"`
	LastErr  string `json:"lastError,omitempty"`
	Jobs     int    `json:"jobs"`
	Forwards int64  `json:"forwards"`
}

// clusterStatusView is the /cluster answer; the load generator reads
// Forwards deltas per worker to report shard balance in BENCH records.
type clusterStatusView struct {
	Workers []clusterWorkerView `json:"workers"`
	Healthy int                 `json:"healthy"`
	Jobs    int                 `json:"jobs"`
}

func (c *Coordinator) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.StatusView())
}

// StatusView assembles the cluster status served at GET /cluster.
func (c *Coordinator) StatusView() clusterStatusView {
	hs := c.health.snapshot()
	c.mu.Lock()
	workers := append([]string(nil), c.workers...)
	fw := make(map[string]int64, len(c.forwards))
	for k, v := range c.forwards {
		fw[k] = v
	}
	c.mu.Unlock()
	view := clusterStatusView{Healthy: c.health.countHealthy(), Jobs: c.jobs.count()}
	for _, name := range workers {
		h := hs[name]
		view.Workers = append(view.Workers, clusterWorkerView{
			Name:     name,
			State:    h.state.String(),
			Breaker:  c.client.breaker.state(name).String(),
			Since:    h.since.UTC().Format(time.RFC3339),
			LastErr:  h.lastErr,
			Jobs:     len(c.jobs.onWorker(name)),
			Forwards: fw[name],
		})
	}
	return view
}

// handleDrain removes a worker from rotation and hands its jobs off:
// POST /cluster/drain?worker=<base-url>. The worker keeps serving
// whatever it already has, but receives no new traffic and its
// non-terminal jobs move — checkpoint first — to the shards next in
// ring order.
func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, http.StatusBadRequest, "missing worker parameter")
		return
	}
	known := false
	c.mu.Lock()
	for _, x := range c.workers {
		if x == worker {
			known = true
		}
	}
	c.mu.Unlock()
	if !known {
		writeErr(w, http.StatusNotFound, "unknown worker %q", worker)
		return
	}
	if _, ok := c.health.drain(worker, time.Now()); !ok {
		writeErr(w, http.StatusConflict, "worker %q already draining", worker)
		return
	}
	moved := c.reassignJobs(worker, true)
	writeJSON(w, http.StatusOK, map[string]any{"worker": worker, "reassigned": moved})
}

// handleReadyz: the coordinator is ready while at least one worker is
// healthy — with zero the next request is guaranteed unroutable.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if c.health.countHealthy() == 0 {
		writeErr(w, http.StatusServiceUnavailable, "no healthy workers")
		return
	}
	w.Write([]byte("ok\n"))
}

// helpers ------------------------------------------------------------

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func codeClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	writeRaw(w, status, b)
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	if len(body) == 0 || body[len(body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Fprintf(w, "{\"error\":%s}\n", msg)
}

// relay copies a worker's materialized response to the client,
// preserving the status and the headers that matter to the contract
// (Content-Type, Retry-After, Location).
func relay(w http.ResponseWriter, res *forwardResult) {
	for _, h := range []string{"Content-Type", "Retry-After", "Location"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// forwardHeader picks the request headers worth forwarding to workers.
func forwardHeader(r *http.Request) http.Header {
	out := http.Header{}
	for _, h := range []string{"Content-Type", "Accept", "X-Request-ID"} {
		if v := r.Header.Get(h); v != "" {
			out.Set(h, v)
		}
	}
	return out
}

// bodyField peeks one string field out of a JSON request body without
// consuming it (the body is restored for forwarding).
func bodyField(r *http.Request, field string) string {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return ""
	}
	restoreBody(r, body)
	var m map[string]any
	if json.Unmarshal(body, &m) != nil {
		return ""
	}
	s, _ := m[field].(string)
	return s
}

func restoreBody(r *http.Request, body []byte) {
	r.Body = io.NopCloser(strings.NewReader(string(body)))
}

// rewriteView replaces the worker-local job ID in a worker's job view
// with the coordinator's client-facing ID and annotates placement, so
// clients see one stable identity across reassignments.
func rewriteView(workerView []byte, t *trackedJob) []byte {
	var m map[string]any
	if json.Unmarshal(workerView, &m) != nil {
		return workerView
	}
	m["id"] = t.ID
	m["worker"] = t.Worker
	if t.Reassigned > 0 {
		m["reassigned"] = t.Reassigned
	}
	b, err := json.Marshal(m)
	if err != nil {
		return workerView
	}
	return b
}

// clientView renders the job for clients: the rewritten worker view
// when one exists, else a minimal synthesized view (pre-placement or
// lost-worker states).
func (t trackedJob) clientView() json.RawMessage {
	if len(t.view) > 0 {
		return json.RawMessage(t.view)
	}
	b, _ := json.Marshal(map[string]any{
		"id":     t.ID,
		"kind":   t.req.Kind,
		"state":  t.State,
		"worker": t.Worker,
	})
	return b
}

func terminalState(state string) bool {
	switch state {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// mirrorCheckpoint encodes raw checkpoint bytes for the wire.
func mirrorCheckpoint(raw []byte) string {
	return base64.StdEncoding.EncodeToString(raw)
}
