package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"olapdim/internal/core"
	"olapdim/internal/faults"
	"olapdim/internal/jobs"
	"olapdim/internal/obs"
	"olapdim/internal/paper"
	"olapdim/internal/server"
)

// syncLog is a goroutine-safe log sink for asserting on coordinator and
// worker log output.
type syncLog struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *syncLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *syncLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// startTracedWorker is startWorker plus a span store shared by the
// server and the job store, as cmd/dimsatd wires it. Local sampling is
// off so health probes don't churn the ring; spans adopted from the
// coordinator's traceparent are always recorded.
func startTracedWorker(t *testing.T, schema *core.DimensionSchema, node string) (*httptest.Server, *obs.SpanStore) {
	t.Helper()
	spans := obs.NewSpanStore(0, node)
	store, err := jobs.Open(jobs.Config{
		Dir:             t.TempDir(),
		Schema:          schema,
		CheckpointEvery: 1,
		Spans:           spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	srv, err := server.NewWithConfig(schema, server.Config{Jobs: store, Spans: spans, SpanSample: -1})
	if err != nil {
		t.Fatal(err)
	}
	store.Start()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, spans
}

// fetchAssembly fetches GET /cluster/trace/{id}, tolerating 404 while
// spans are still landing (the coordinator records its root span just
// after answering the traced request).
func fetchAssembly(t *testing.T, base, traceID string) (obs.TraceAssembly, bool) {
	t.Helper()
	resp, err := http.Get(base + "/cluster/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return obs.TraceAssembly{}, false
	}
	var asm obs.TraceAssembly
	if err := json.Unmarshal(body, &asm); err != nil {
		t.Fatalf("decoding assembly %q: %v", body, err)
	}
	return asm, true
}

// TestCoordinatorAndWorkerShareRequestID proves the correlation contract
// end to end: the ID the coordinator mints (or adopts) is the ID the
// worker logs, so one grep finds a request's lines on both sides.
func TestCoordinatorAndWorkerShareRequestID(t *testing.T) {
	workerLog := &syncLog{}
	srv, err := server.NewWithConfig(paper.LocationSch(), server.Config{Log: workerLog})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewServer(srv)
	t.Cleanup(w.Close)

	coordLog := &syncLog{}
	_, ts := startCoordinator(t, Config{
		HedgeDelay: -1,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(coordLog, format+"\n", args...)
		},
	}, w.URL)

	check := func(headerID string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/sat?category=Store", nil)
		if err != nil {
			t.Fatal(err)
		}
		if headerID != "" {
			req.Header.Set("X-Request-ID", headerID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("no X-Request-ID on the coordinator response")
		}
		if headerID != "" && id != headerID {
			t.Fatalf("X-Request-ID = %q, want the forwarded %q adopted", id, headerID)
		}
		// The coordinator logs its line after the response is written;
		// give both sinks a beat.
		deadline := time.Now().Add(2 * time.Second)
		for {
			coordHas := strings.Contains(coordLog.String(), "requestId="+id)
			workerHas := strings.Contains(workerLog.String(), `"requestId":"`+id+`"`)
			if coordHas && workerHas {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("request %s not in both logs (coordinator=%v worker=%v)", id, coordHas, workerHas)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	check("")            // coordinator-minted ID flows to the worker
	check("it-client-7") // client-forwarded valid ID adopted by both
}

// TestFailoverTraceAssembledAcrossNodes drives one read through an
// injected first-attempt forward fault and asserts the assembled trace
// tells the whole story: a failed forward, the successful retry, and the
// worker-side spans, all under one well-parented trace.
func TestFailoverTraceAssembledAcrossNodes(t *testing.T) {
	w1, _ := startTracedWorker(t, paper.LocationSch(), "w1")
	w2, _ := startTracedWorker(t, paper.LocationSch(), "w2")
	inj := faults.New(faults.Rule{Site: faults.SiteClusterForward, Kind: faults.Error, On: []int{1}})
	_, ts := startCoordinator(t, Config{HedgeDelay: -1, Faults: inj}, w1.URL, w2.URL)

	resp, err := http.Get(ts.URL + "/sat?category=Store")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /sat = %d, want 200 via failover", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-ID")
	if traceID == "" {
		t.Fatal("no X-Trace-ID on the coordinator response")
	}

	deadline := time.Now().Add(5 * time.Second)
	var asm obs.TraceAssembly
	for {
		var ok bool
		asm, ok = fetchAssembly(t, ts.URL, traceID)
		if ok && asm.WellParented && len(asm.Spans) >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never assembled well-parented: %+v", asm)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var forwards, failed, served int
	for _, sp := range asm.Spans {
		switch sp.Name {
		case "cluster.forward":
			forwards++
			if sp.Status == "error" {
				failed++
			}
		case "server.request":
			served++
		}
	}
	if forwards != 2 || failed != 1 {
		t.Errorf("forward spans = %d (%d failed), want 2 with 1 failed", forwards, failed)
	}
	if served != 1 {
		t.Errorf("server.request spans = %d, want 1 (only the surviving attempt reached a worker)", served)
	}
	if len(asm.Nodes) < 2 {
		t.Errorf("trace nodes = %v, want spans from the coordinator and a worker", asm.Nodes)
	}
}

// TestHedgedLoserSpanCancelled slows the owner's forward so the hedge
// arm wins, and asserts the losing attempt is recorded as a cancelled
// span — not an error, not silently dropped. Runs under -race in
// `make check-race`, which is the leak check for the loser's
// late-recording goroutine.
func TestHedgedLoserSpanCancelled(t *testing.T) {
	w1, _ := startTracedWorker(t, paper.LocationSch(), "w1")
	w2, _ := startTracedWorker(t, paper.LocationSch(), "w2")
	inj := faults.New(faults.Rule{
		Site: faults.SiteClusterForward, Kind: faults.Latency, On: []int{1}, Delay: 500 * time.Millisecond,
	})
	c, ts := startCoordinator(t, Config{HedgeDelay: 20 * time.Millisecond, Faults: inj}, w1.URL, w2.URL)

	resp, err := http.Get(ts.URL + "/sat?category=Store")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /sat = %d, want 200 via hedge", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-ID")

	// The loser's span lands after its delayed attempt notices the
	// cancellation — well after the response.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var won, cancelled int
		for _, sp := range c.spans.Trace(traceID) {
			if sp.Name != "cluster.forward" {
				continue
			}
			switch sp.Status {
			case "ok":
				won++
			case "cancelled":
				cancelled++
			}
		}
		if won == 1 && cancelled == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("forward spans ok=%d cancelled=%d, want 1 winner and 1 cancelled loser", won, cancelled)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.met.hedgeWins.Value() == 0 {
		t.Error("hedgeWins = 0, the hedge arm should have won")
	}
}

// TestJobHandoffKeepsTraceAcrossWorkerCrash is the distributed-tracing
// acceptance test for job handoff: a job submitted through the
// coordinator keeps one trace ID when its hosting worker dies and the
// job resumes from the mirrored checkpoint on the survivor — a separate
// process with a separate span ring.
func TestJobHandoffKeepsTraceAcrossWorkerCrash(t *testing.T) {
	src := hardUnsatSrc(3, 2)
	w1, spans1 := startTracedWorker(t, parseSchema(t, src), "w1")
	w2, spans2 := startTracedWorker(t, parseSchema(t, src), "w2")
	_, ts := startCoordinator(t, Config{HedgeDelay: -1}, w1.URL, w2.URL)

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"sat","category":"C0"}`))
	if err != nil {
		t.Fatal(err)
	}
	var submitted clusterJobView
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	traceID := resp.Header.Get("X-Trace-ID")
	if traceID == "" {
		t.Fatal("no X-Trace-ID on the job submit response")
	}

	// Let the job checkpoint some progress, then kill its host from the
	// network — the mirror has what the survivor needs.
	deadline := time.Now().Add(15 * time.Second)
	var host string
	for {
		var v clusterJobView
		coordGet(t, ts.URL, "/jobs/"+submitted.ID, &v)
		if v.State == "done" {
			t.Fatal("job finished before the kill; hard instance too small")
		}
		if v.Expansions >= 50 {
			host = v.Worker
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job made no progress: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	survivorSpans := spans2
	for _, w := range []*httptest.Server{w1, w2} {
		if w.URL == host {
			if w == w2 {
				survivorSpans = spans1
			}
			w.Close()
		}
	}

	final := awaitClusterJob(t, ts.URL, submitted.ID, 30*time.Second)
	if final.State != "done" {
		t.Fatalf("recovered job = %+v, want done", final)
	}

	// The survivor's ring started empty after the "crash"; its job spans
	// must carry the submit's original trace ID. The complete span lands
	// just after the state transition the poll saw, so retry briefly.
	var attempt, complete *obs.Span
	spanDeadline := time.Now().Add(3 * time.Second)
	for {
		got := survivorSpans.Trace(traceID)
		attempt, complete = nil, nil
		for i := range got {
			switch got[i].Name {
			case "job.attempt":
				attempt = &got[i]
			case "job.complete":
				complete = &got[i]
			}
		}
		if attempt != nil && complete != nil {
			break
		}
		if time.Now().After(spanDeadline) {
			t.Fatalf("survivor spans for trace %s: %d recorded, want job.attempt and job.complete", traceID, len(got))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if attempt.Attrs["resumed"] != "true" {
		t.Errorf("survivor attempt attrs %v, want resumed=true (resumed from the mirrored checkpoint)", attempt.Attrs)
	}

	// And the coordinator can assemble the whole story across processes.
	asm, ok := fetchAssembly(t, ts.URL, traceID)
	if !ok || !asm.WellParented {
		t.Fatalf("assembled trace = %+v, want well-parented", asm)
	}
	if len(asm.Nodes) < 2 {
		t.Errorf("trace nodes = %v, want the coordinator and the survivor", asm.Nodes)
	}
}
