package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"olapdim/internal/faults"
)

// ErrPartitioned is the transport error a PartitionTransport returns for
// a blocked worker — what a request into a network partition looks like
// from the coordinator: the dial never completes. Test with errors.Is.
var ErrPartitioned = errors.New("cluster: network partition")

// PartitionTransport interposes on every request the coordinator sends a
// worker — forwards, probes, hedges and job polls alike — and simulates
// a network partition two ways, composable:
//
//   - Per-host: Block(worker) makes every request to that worker's host
//     fail with ErrPartitioned until Unblock/HealAll. This is the chaos
//     harness's partition actuator.
//   - Rule-driven: each request first passes the injector's
//     faults.SiteClusterPartition site, so Error rules armed there
//     (every Nth, probabilistic, exact hits) blackhole traffic to all
//     workers deterministically, and Latency rules model a lossy slow
//     link before the verdict.
//
// Install it via Config.Transport. The zero value is usable; a nil
// *PartitionTransport is not a valid RoundTripper (wrap construction in
// NewPartitionTransport).
type PartitionTransport struct {
	base http.RoundTripper
	inj  *faults.Injector

	mu      sync.Mutex
	blocked map[string]bool // host:port
}

// NewPartitionTransport wraps base (nil means http.DefaultTransport)
// with partition control. inj may be nil; then only Block/Unblock apply.
func NewPartitionTransport(base http.RoundTripper, inj *faults.Injector) *PartitionTransport {
	return &PartitionTransport{base: base, inj: inj, blocked: map[string]bool{}}
}

// hostOf normalizes a worker base URL or bare host to the host:port key.
func hostOf(worker string) string {
	if i := strings.Index(worker, "://"); i >= 0 {
		worker = worker[i+3:]
	}
	if i := strings.IndexByte(worker, '/'); i >= 0 {
		worker = worker[:i]
	}
	return worker
}

// Block starts a partition between the coordinator and worker (a base
// URL like "http://127.0.0.1:8081", or a bare host:port).
func (t *PartitionTransport) Block(worker string) {
	t.mu.Lock()
	t.blocked[hostOf(worker)] = true
	t.mu.Unlock()
}

// Unblock heals the partition to one worker.
func (t *PartitionTransport) Unblock(worker string) {
	t.mu.Lock()
	delete(t.blocked, hostOf(worker))
	t.mu.Unlock()
}

// HealAll heals every per-host partition (armed injector rules at
// cluster.partition are the injector owner's to disarm).
func (t *PartitionTransport) HealAll() {
	t.mu.Lock()
	t.blocked = map[string]bool{}
	t.mu.Unlock()
}

// Blocked reports whether worker is currently partitioned off.
func (t *PartitionTransport) Blocked(worker string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.blocked[hostOf(worker)]
}

func (t *PartitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.inj.Hit(faults.SiteClusterPartition); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrPartitioned, req.URL.Host, err)
	}
	t.mu.Lock()
	blocked := t.blocked[req.URL.Host]
	t.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("%w: %s unreachable", ErrPartitioned, req.URL.Host)
	}
	base := t.base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
