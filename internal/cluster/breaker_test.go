package cluster

import (
	"net/http"
	"testing"
	"time"

	"olapdim/internal/faults"
	"olapdim/internal/paper"
)

func TestBreakerStateMachine(t *testing.T) {
	var transitions []string
	b := newBreaker(3, 100*time.Millisecond, func(w string, to breakerState) {
		transitions = append(transitions, w+":"+to.String())
	})
	now := time.Unix(1000, 0)

	// Closed passes traffic; failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.allow("w1", now) {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.record("w1", false, now)
	}
	if got := b.state("w1"); got != breakerClosed {
		t.Fatalf("after 2 failures state = %v, want closed", got)
	}

	// Third consecutive failure trips it open.
	b.record("w1", false, now)
	if got := b.state("w1"); got != breakerOpen {
		t.Fatalf("after 3 failures state = %v, want open", got)
	}
	if b.allow("w1", now.Add(50*time.Millisecond)) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if n := b.openCount(); n != 1 {
		t.Fatalf("openCount = %d, want 1", n)
	}

	// Past the cooldown: exactly one half-open probe is admitted.
	probeAt := now.Add(150 * time.Millisecond)
	if !b.allow("w1", probeAt) {
		t.Fatal("breaker past cooldown refused the half-open probe")
	}
	if got := b.state("w1"); got != breakerHalfOpen {
		t.Fatalf("probe admitted but state = %v, want half_open", got)
	}
	if b.allow("w1", probeAt) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe failure re-opens for another full cooldown.
	b.record("w1", false, probeAt)
	if got := b.state("w1"); got != breakerOpen {
		t.Fatalf("failed probe left state %v, want open", got)
	}
	if b.allow("w1", probeAt.Add(50*time.Millisecond)) {
		t.Fatal("re-opened breaker admitted a request before the new cooldown elapsed")
	}

	// Next probe succeeds: breaker closes and passes traffic again.
	healAt := probeAt.Add(150 * time.Millisecond)
	if !b.allow("w1", healAt) {
		t.Fatal("re-opened breaker past cooldown refused its probe")
	}
	b.record("w1", true, healAt)
	if got := b.state("w1"); got != breakerClosed {
		t.Fatalf("successful probe left state %v, want closed", got)
	}
	if !b.allow("w1", healAt) {
		t.Fatal("closed breaker refused traffic after heal")
	}
	if n := b.openCount(); n != 0 {
		t.Fatalf("openCount after heal = %d, want 0", n)
	}

	want := []string{"w1:open", "w1:half_open", "w1:open", "w1:half_open", "w1:closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, transitions[i], want[i], transitions)
		}
	}

	// Workers are independent: w1's history never touches w2.
	if got := b.state("w2"); got != breakerClosed {
		t.Fatalf("untouched worker state = %v, want closed", got)
	}

	// Nil receiver passes everything (breaker disabled).
	var nb *breaker
	if !nb.allow("w1", now) {
		t.Fatal("nil breaker refused a request")
	}
	nb.record("w1", false, now)
	if got := nb.state("w1"); got != breakerClosed {
		t.Fatalf("nil breaker state = %v, want closed", got)
	}
}

func TestRetryBudgetWindow(t *testing.T) {
	rb := newRetryBudget(3, time.Second)
	now := time.Unix(2000, 0)
	for i := 0; i < 3; i++ {
		if !rb.allow(now) {
			t.Fatalf("budget refused retry %d of 3", i+1)
		}
	}
	if rb.allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("budget admitted a 4th retry inside the window")
	}
	// The window rolls: tokens refill a full second after the first use.
	if !rb.allow(now.Add(1100 * time.Millisecond)) {
		t.Fatal("budget refused a retry after the window rolled")
	}

	// Nil and non-positive-max budgets are unlimited.
	var nilRB *retryBudget
	if !nilRB.allow(now) {
		t.Fatal("nil budget refused a retry")
	}
	unlimited := newRetryBudget(0, time.Second)
	for i := 0; i < 100; i++ {
		if !unlimited.allow(now) {
			t.Fatal("max<=0 budget refused a retry")
		}
	}
}

// TestPartitionThenHealConvergence drives the full partition story
// through a real 2-worker topology: a PartitionTransport blackholes one
// worker, reads keep answering via failover to the survivor, the
// debounced health tracker marks the partitioned worker down and the
// circuit breaker trips open; healing the partition converges the
// cluster back to 2 healthy workers with the breaker closed — all
// within probe-round bounds, with no client-visible failures.
func TestPartitionThenHealConvergence(t *testing.T) {
	w1 := startWorker(t, paper.LocationSch(), nil)
	w2 := startWorker(t, paper.LocationSch(), nil)
	pt := NewPartitionTransport(nil, faults.New())
	c, ts := startCoordinator(t, Config{
		HedgeDelay:       -1,
		Transport:        pt,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	}, w1.URL, w2.URL)

	get := func() int {
		var sat struct {
			Satisfiable bool `json:"satisfiable"`
		}
		code := coordGet(t, ts.URL, "/sat?category=Store", &sat)
		if code == http.StatusOK && !sat.Satisfiable {
			t.Fatal("Store should be satisfiable in locationSch")
		}
		return code
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("pre-partition GET /sat = %d", code)
	}

	awaitView := func(desc string, ok func(clusterStatusView) bool) clusterStatusView {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var v clusterStatusView
		for time.Now().Before(deadline) {
			v = c.StatusView()
			if ok(v) {
				return v
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("cluster never reached %s; last view %+v", desc, v)
		return v
	}

	// Partition w1 off. Probes and forwards to it now fail at the
	// transport, so health debounces it down and its breaker trips.
	pt.Block(w1.URL)
	view := awaitView("1 healthy with w1 breaker open", func(v clusterStatusView) bool {
		if v.Healthy != 1 {
			return false
		}
		for _, w := range v.Workers {
			if w.Name == w1.URL {
				return w.Breaker == "open"
			}
		}
		return false
	})
	if view.Healthy != 1 {
		t.Fatalf("during partition healthy = %d, want 1", view.Healthy)
	}

	// Reads must keep answering through the survivor while partitioned.
	for i := 0; i < 5; i++ {
		if code := get(); code != http.StatusOK {
			t.Fatalf("partitioned GET /sat #%d = %d, want 200 via survivor", i, code)
		}
	}

	// Heal. Probes reach w1 again: breaker closes within one probe round
	// and debounced health recovers the worker.
	pt.HealAll()
	awaitView("2 healthy with w1 breaker closed", func(v clusterStatusView) bool {
		if v.Healthy != 2 {
			return false
		}
		for _, w := range v.Workers {
			if w.Name == w1.URL && w.Breaker != "closed" {
				return false
			}
		}
		return true
	})
	for i := 0; i < 3; i++ {
		if code := get(); code != http.StatusOK {
			t.Fatalf("post-heal GET /sat #%d = %d", i, code)
		}
	}
}
