package cluster

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"olapdim/internal/core"
	"olapdim/internal/faults"
	"olapdim/internal/jobs"
	"olapdim/internal/paper"
	"olapdim/internal/server"
)

// hardUnsatSrc mirrors the jobs package's hard-instance generator: a
// layered hierarchy whose root is unsatisfiable only by a contradictory
// constraint, so the search must exhaust the whole subhierarchy space —
// long enough to kill a worker mid-job.
func hardUnsatSrc(width, layers int) string {
	var b strings.Builder
	b.WriteString("schema hard\n")
	name := func(l, i int) string { return fmt.Sprintf("L%dx%d", l, i) }
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "edge C0 -> %s\n", name(0, i))
	}
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				fmt.Fprintf(&b, "edge %s -> %s\n", name(l, i), name(l+1, j))
			}
		}
	}
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "edge %s -> All\n", name(layers-1, i))
	}
	fmt.Fprintf(&b, "constraint C0_%s & !C0_%s\n", name(0, 0), name(0, 0))
	return b.String()
}

// startWorker boots one dimsatd worker: a real server over schema with a
// durable job store (checkpointing every expansion), optionally with a
// fault injector armed on the search.
func startWorker(t *testing.T, schema *core.DimensionSchema, inj *faults.Injector) *httptest.Server {
	t.Helper()
	store, err := jobs.Open(jobs.Config{
		Dir:             t.TempDir(),
		Schema:          schema,
		Options:         core.Options{Faults: inj},
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	srv, err := server.NewWithConfig(schema, server.Config{Jobs: store})
	if err != nil {
		t.Fatal(err)
	}
	store.Start()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// startCoordinator builds and starts a coordinator over the workers with
// test-speed intervals, honoring any overrides already set in cfg.
func startCoordinator(t *testing.T, cfg Config, workers ...string) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg.Workers = workers
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.FailAfter == 0 {
		cfg.FailAfter = 2
	}
	if cfg.RecoverAfter == 0 {
		cfg.RecoverAfter = 1
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 5 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c)
	t.Cleanup(ts.Close)
	return c, ts
}

func coordGet(t *testing.T, base, path string, out any) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && len(body) > 0 {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", path, body, err)
		}
	}
	return resp.StatusCode
}

func coordPost(t *testing.T, base, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if out != nil && len(b) > 0 {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, b, err)
		}
	}
	return resp.StatusCode
}

// clusterJobView is the coordinator's client-facing job shape.
type clusterJobView struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	State      string `json:"state"`
	Worker     string `json:"worker"`
	Reassigned int    `json:"reassigned"`
	Expansions int    `json:"expansions"`
	Checks     int    `json:"checks"`
	Result     *struct {
		Satisfiable *bool `json:"satisfiable,omitempty"`
	} `json:"result,omitempty"`
}

func awaitClusterJob(t *testing.T, base, id string, timeout time.Duration) clusterJobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var v clusterJobView
	for time.Now().Before(deadline) {
		if code := coordGet(t, base, "/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		switch v.State {
		case "done", "failed", "cancelled":
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal after %s (state %s)", id, timeout, v.State)
	return v
}

func TestCoordinatorRoutesReadsConsistently(t *testing.T) {
	w1 := startWorker(t, paper.LocationSch(), nil)
	w2 := startWorker(t, paper.LocationSch(), nil)
	c, ts := startCoordinator(t, Config{HedgeDelay: -1}, w1.URL, w2.URL)

	owner := c.routable("sat/Store")[0]
	for i := 0; i < 5; i++ {
		var sat struct {
			Satisfiable bool `json:"satisfiable"`
		}
		if code := coordGet(t, ts.URL, "/sat?category=Store", &sat); code != http.StatusOK {
			t.Fatalf("GET /sat = %d", code)
		}
		if !sat.Satisfiable {
			t.Fatal("Store should be satisfiable in locationSch")
		}
	}
	view := c.StatusView()
	for _, w := range view.Workers {
		if w.Name == owner && w.Forwards < 5 {
			t.Errorf("owner %s saw %d forwards, want all 5", w.Name, w.Forwards)
		}
		if w.Name != owner && w.Forwards != 0 {
			t.Errorf("non-owner %s saw %d forwards, want 0 (sticky routing)", w.Name, w.Forwards)
		}
	}
	if view.Healthy != 2 || len(view.Workers) != 2 {
		t.Fatalf("cluster view = %+v, want 2/2 healthy", view)
	}
}

func TestCoordinatorFailoverToSurvivorAndHealthConvergence(t *testing.T) {
	w1 := startWorker(t, paper.LocationSch(), nil)
	w2 := startWorker(t, paper.LocationSch(), nil)
	c, ts := startCoordinator(t, Config{HedgeDelay: -1}, w1.URL, w2.URL)

	// Kill the worker that owns the key, leaving the other running.
	owner := c.routable("sat/City")[0]
	for _, w := range []*httptest.Server{w1, w2} {
		if w.URL == owner {
			w.Close()
		}
	}

	// The very first request must fail over: connect-refused on the
	// owner, answered by the survivor.
	var sat struct {
		Satisfiable bool `json:"satisfiable"`
	}
	if code := coordGet(t, ts.URL, "/sat?category=City", &sat); code != http.StatusOK {
		t.Fatalf("GET /sat after owner death = %d, want 200 via failover", code)
	}
	if !sat.Satisfiable {
		t.Fatal("City should be satisfiable")
	}
	if got := c.met.failovers.Value(); got == 0 {
		t.Error("failovers counter not incremented")
	}

	// Probes must converge the health view to 1 healthy worker.
	deadline := time.Now().Add(5 * time.Second)
	for c.health.countHealthy() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("health never converged: %d healthy", c.health.countHealthy())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := coordGet(t, ts.URL, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz = %d with one healthy worker", code)
	}

	// Routing now prefers the survivor outright: no more failover walks.
	before := c.met.failovers.Value()
	if code := coordGet(t, ts.URL, "/sat?category=City", &sat); code != http.StatusOK {
		t.Fatalf("GET /sat post-convergence = %d", code)
	}
	if got := c.met.failovers.Value(); got != before {
		t.Errorf("failovers grew %d -> %d after health converged", before, got)
	}
}

func TestCoordinatorReadyzFailsWithNoHealthyWorkers(t *testing.T) {
	w1 := startWorker(t, paper.LocationSch(), nil)
	c, ts := startCoordinator(t, Config{HedgeDelay: -1}, w1.URL)
	w1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.health.countHealthy() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never marked down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := coordGet(t, ts.URL, "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d with zero healthy workers, want 503", code)
	}
	// Reads degrade to an honest 503, not a hang.
	if code := coordGet(t, ts.URL, "/sat?category=Store", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /sat with no workers = %d, want 503", code)
	}
}

// TestCoordinatorInjectedForwardFaultFailsOver drives the failover path
// through the cluster.forward injection site instead of a dead worker:
// the first attempt is refused before the dial, so even this one request
// observably fails over while both workers stay healthy.
func TestCoordinatorInjectedForwardFaultFailsOver(t *testing.T) {
	w1 := startWorker(t, paper.LocationSch(), nil)
	w2 := startWorker(t, paper.LocationSch(), nil)
	inj := faults.New(faults.Rule{Site: faults.SiteClusterForward, Kind: faults.Error, On: []int{1}})
	c, ts := startCoordinator(t, Config{HedgeDelay: -1, Faults: inj}, w1.URL, w2.URL)

	var sat struct {
		Satisfiable bool `json:"satisfiable"`
	}
	if code := coordGet(t, ts.URL, "/sat?category=Store", &sat); code != http.StatusOK {
		t.Fatalf("GET /sat = %d, want 200 despite injected forward fault", code)
	}
	if inj.Fired(faults.SiteClusterForward) != 1 {
		t.Fatalf("forward site fired %d times, want 1", inj.Fired(faults.SiteClusterForward))
	}
	if c.met.failovers.Value() != 1 {
		t.Fatalf("failovers = %d, want exactly 1", c.met.failovers.Value())
	}
	if c.health.countHealthy() != 2 {
		t.Fatalf("healthy = %d, an injected (never-dialed) fault must not mark workers down", c.health.countHealthy())
	}
}

// TestCoordinatorHedgePromotesPastDeadOwner exercises the hedged read
// path end to end: health has not noticed the dead owner yet (probes are
// effectively off), so the hedge arm is what saves the request.
func TestCoordinatorHedgePromotesPastDeadOwner(t *testing.T) {
	w1 := startWorker(t, paper.LocationSch(), nil)
	w2 := startWorker(t, paper.LocationSch(), nil)
	c, ts := startCoordinator(t, Config{
		HedgeDelay:    30 * time.Millisecond,
		ProbeInterval: time.Hour, // health stays blind: only hedging can help
		FailAfter:     1000,
	}, w1.URL, w2.URL)

	owner := c.routable("sat/Country")[0]
	for _, w := range []*httptest.Server{w1, w2} {
		if w.URL == owner {
			w.Close()
		}
	}
	var sat struct {
		Satisfiable bool `json:"satisfiable"`
	}
	start := time.Now()
	if code := coordGet(t, ts.URL, "/sat?category=Country", &sat); code != http.StatusOK {
		t.Fatalf("GET /sat = %d, want 200 via hedge", code)
	}
	if !sat.Satisfiable {
		t.Fatal("Country should be satisfiable")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("hedged request took %v, promotion should be immediate", d)
	}
	if c.met.hedges.Value() == 0 || c.met.hedgeWins.Value() == 0 {
		t.Errorf("hedges=%d hedgeWins=%d, want both > 0", c.met.hedges.Value(), c.met.hedgeWins.Value())
	}
}

func TestCoordinatorJobSubmitIdempotent(t *testing.T) {
	schema := parseSchema(t, hardUnsatSrc(3, 2))
	w1 := startWorker(t, schema, nil)
	w2 := startWorker(t, schema, nil)
	_, ts := startCoordinator(t, Config{HedgeDelay: -1}, w1.URL, w2.URL)

	var first, second clusterJobView
	body := `{"kind":"sat","category":"C0","idempotencyKey":"client-key-1"}`
	code1 := coordPost(t, ts.URL, "/jobs", body, &first)
	code2 := coordPost(t, ts.URL, "/jobs", body, &second)
	if code1 != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code1)
	}
	if code2 != http.StatusOK {
		t.Fatalf("duplicate submit = %d, want 200", code2)
	}
	if first.ID == "" || first.ID != second.ID {
		t.Fatalf("ids %q vs %q, want one coordinator-owned identity", first.ID, second.ID)
	}
	final := awaitClusterJob(t, ts.URL, first.ID, 30*time.Second)
	if final.State != "done" || final.Result == nil || final.Result.Satisfiable == nil || *final.Result.Satisfiable {
		t.Fatalf("job = %+v, want done and unsatisfiable", final)
	}
}

// TestClusterKillWorkerJobRecovery is the acceptance test for
// cross-shard job recovery: a checkpointed job whose worker is killed
// mid-search resumes on the surviving shard from the mirrored checkpoint
// and finishes with a bit-identical verdict and exact cumulative stats.
func TestClusterKillWorkerJobRecovery(t *testing.T) {
	src := hardUnsatSrc(3, 2)
	schema := parseSchema(t, src)
	// Measure the search length in fault-site hits on the compiled
	// engine — the same engine and the same unit the workers' injectors
	// count (the site fires more often than Stats.Expansions ticks).
	compiled, err := core.Compile(schema)
	if err != nil {
		t.Fatal(err)
	}
	binj := faults.New()
	baseline, err := core.Satisfiable(schema, "C0", core.Options{Compiled: compiled, Faults: binj})
	if err != nil {
		t.Fatal(err)
	}
	totalHits := binj.Hits(faults.SiteExpand)
	if baseline.Satisfiable || baseline.Stats.Expansions < 500 || totalHits < baseline.Stats.Expansions {
		t.Fatalf("hard instance unsuitable: %+v (%d hits)", baseline.Stats, totalHits)
	}
	killAt := totalHits * 3 / 5

	// Both workers arm the same mid-search kill: whichever hosts the job
	// dies ~3/5 into the search. The survivor resumes from the mirrored
	// checkpoint near that point, so its own remaining work (~2/5 of the
	// hits) stays safely below its own trigger.
	inj1 := faults.New(faults.Rule{Site: faults.SiteExpand, Kind: faults.Panic, On: []int{killAt}})
	inj2 := faults.New(faults.Rule{Site: faults.SiteExpand, Kind: faults.Panic, On: []int{killAt}})
	w1 := startWorker(t, parseSchema(t, src), inj1)
	w2 := startWorker(t, parseSchema(t, src), inj2)
	c, ts := startCoordinator(t, Config{HedgeDelay: -1}, w1.URL, w2.URL)

	var submitted clusterJobView
	if code := coordPost(t, ts.URL, "/jobs", `{"kind":"sat","category":"C0"}`, &submitted); code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", code)
	}

	// Wait for the injected kill on the hosting worker: the search dies
	// at exactly killAt expansions with no state transition, like a
	// crashed process. The worker's HTTP plane stays up, so the mirror
	// keeps polling the final checkpoint.
	deadline := time.Now().Add(30 * time.Second)
	for inj1.Fired(faults.SiteExpand)+inj2.Fired(faults.SiteExpand) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injected kill never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The dead search's checkpoint file is now static. Wait until the
	// mirror has caught up to it: a non-empty mirrored checkpoint that
	// stays unchanged across several poll intervals is the final one.
	var lastCkpt string
	stableSince := time.Time{}
	for {
		snap, ok := c.jobs.snapshot(submitted.ID)
		if !ok {
			t.Fatal("job vanished from the tracker")
		}
		if snap.checkpoint != "" && snap.checkpoint == lastCkpt {
			if stableSince.IsZero() {
				stableSince = time.Now()
			} else if time.Since(stableSince) > 20*c.cfg.PollInterval {
				break
			}
		} else {
			lastCkpt = snap.checkpoint
			stableSince = time.Time{}
		}
		if time.Now().After(deadline) {
			t.Fatal("mirror never stabilized on the dead worker's final checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	raw, err := base64.StdEncoding.DecodeString(lastCkpt)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := core.DecodeCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	mirroredAt := cp.Stats.Expansions
	if mirroredAt == 0 || mirroredAt >= baseline.Stats.Expansions {
		t.Fatalf("mirrored checkpoint at %d expansions, want mid-search", mirroredAt)
	}

	// Now the real kill: the hosting worker disappears from the network.
	snap, _ := c.jobs.snapshot(submitted.ID)
	host := snap.Worker
	var survivor string
	for _, w := range []*httptest.Server{w1, w2} {
		if w.URL == host {
			w.Close()
		} else {
			survivor = w.URL
		}
	}
	t.Logf("killed %s at %d/%d mirrored expansions; survivor %s", host, mirroredAt, baseline.Stats.Expansions, survivor)

	// Probes trip the debouncer, the job is re-enqueued from the mirror
	// on the survivor, and the deterministic search finishes exactly
	// where an uninterrupted run would.
	final := awaitClusterJob(t, ts.URL, submitted.ID, 30*time.Second)
	if final.State != "done" || final.Result == nil || final.Result.Satisfiable == nil {
		t.Fatalf("recovered job = %+v, want done", final)
	}
	if *final.Result.Satisfiable != baseline.Satisfiable {
		t.Fatalf("recovered verdict %v != uninterrupted %v", *final.Result.Satisfiable, baseline.Satisfiable)
	}
	if final.Expansions != baseline.Stats.Expansions || final.Checks != baseline.Stats.Checks {
		t.Fatalf("recovered stats expansions=%d checks=%d, uninterrupted %+v (must be bit-identical)",
			final.Expansions, final.Checks, baseline.Stats)
	}
	if final.Worker != survivor {
		t.Fatalf("job finished on %s, want survivor %s", final.Worker, survivor)
	}
	if final.Reassigned < 1 {
		t.Fatalf("reassigned = %d, want >= 1", final.Reassigned)
	}
	if c.met.reassigned.Value() == 0 {
		t.Error("reassigned metric not incremented")
	}
}

// TestCoordinatorDrainHandsJobsOff covers planned resharding: draining a
// worker moves its running job — freshest checkpoint first — to the next
// ring owner, cancels the old copy, and the totals stay exact.
func TestCoordinatorDrainHandsJobsOff(t *testing.T) {
	src := hardUnsatSrc(3, 2)
	schema := parseSchema(t, src)
	baseline, err := core.Satisfiable(schema, "C0", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w1 := startWorker(t, parseSchema(t, src), nil)
	w2 := startWorker(t, parseSchema(t, src), nil)
	c, ts := startCoordinator(t, Config{HedgeDelay: -1}, w1.URL, w2.URL)

	var submitted clusterJobView
	if code := coordPost(t, ts.URL, "/jobs", `{"kind":"sat","category":"C0"}`, &submitted); code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", code)
	}
	// Let the job make some progress so the drain has a checkpoint to
	// hand over.
	deadline := time.Now().Add(15 * time.Second)
	var host string
	for {
		var v clusterJobView
		coordGet(t, ts.URL, "/jobs/"+submitted.ID, &v)
		if v.State == "done" {
			t.Fatal("job finished before the drain; hard instance too small")
		}
		if v.Expansions >= 50 {
			host = v.Worker
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job made no progress: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var drained struct {
		Worker     string `json:"worker"`
		Reassigned int    `json:"reassigned"`
	}
	if code := coordPost(t, ts.URL, "/cluster/drain?worker="+host, "", &drained); code != http.StatusOK {
		t.Fatalf("drain = %d", code)
	}
	if drained.Reassigned != 1 {
		t.Fatalf("drain reassigned %d jobs, want 1", drained.Reassigned)
	}
	// A second drain of the same worker is refused.
	if code := coordPost(t, ts.URL, "/cluster/drain?worker="+host, "", nil); code != http.StatusConflict {
		t.Fatalf("second drain = %d, want 409", code)
	}

	var cs clusterStatusView
	coordGet(t, ts.URL, "/cluster", &cs)
	for _, w := range cs.Workers {
		if w.Name == host && w.State != "draining" {
			t.Errorf("drained worker state = %s, want draining", w.State)
		}
	}
	if cs.Healthy != 1 {
		t.Errorf("healthy = %d after drain, want 1", cs.Healthy)
	}

	final := awaitClusterJob(t, ts.URL, submitted.ID, 30*time.Second)
	if final.State != "done" || final.Worker == host {
		t.Fatalf("drained job = %+v, want done on the other worker", final)
	}
	if final.Result == nil || final.Result.Satisfiable == nil || *final.Result.Satisfiable {
		t.Fatalf("drained job result = %+v, want unsatisfiable", final.Result)
	}
	// Handoff used the freshest checkpoint, so cumulative stats stay
	// exactly those of an uninterrupted run.
	if final.Expansions != baseline.Stats.Expansions || final.Checks != baseline.Stats.Checks {
		t.Fatalf("drained stats expansions=%d checks=%d, uninterrupted %+v",
			final.Expansions, final.Checks, baseline.Stats)
	}
	if final.Reassigned != 1 {
		t.Fatalf("reassigned = %d, want 1", final.Reassigned)
	}
	_ = c
}

func parseSchema(t *testing.T, src string) *core.DimensionSchema {
	t.Helper()
	ds, err := core.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}
