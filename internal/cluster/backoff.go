// Package cluster turns N independent dimsatd workers into one sharded
// reasoning service. A Coordinator is an HTTP front end that routes each
// request to the worker owning its request key on a consistent-hash
// ring, so every shard's SatCache and jobs directory sees a stable slice
// of the keyspace. The routing is robustness-first:
//
//   - Worker health is tracked from periodic /readyz probes plus the
//     passive error signals of forwarded traffic, debounced with
//     hysteresis so a flapping worker does not thrash the ring.
//   - Connection failures and 5xx answers fail over to the next ring
//     candidate under a bounded, context-abortable backoff; a worker's
//     429 Retry-After hint is honored before the next attempt. Job
//     submissions are only retried under a coordinator-minted
//     idempotency key, never blindly.
//   - Straggling reads are hedged: if the owning worker has not answered
//     within the hedge delay (and the request deadline leaves room), the
//     same read is raced against the next candidate and the first usable
//     response wins, with the loser's request canceled.
//   - Durable jobs survive their worker: the coordinator tracks every
//     job it forwarded, mirrors the worker's latest search checkpoint,
//     and re-enqueues the job — checkpoint attached — on the shard that
//     now owns its key when the worker dies or is drained, so the job
//     resumes elsewhere with a bit-identical result.
//
// See docs/OPERATIONS.md ("Running a sharded cluster") for the topology,
// the failure model, and the job-handoff contract.
package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"time"
)

// SleepContext sleeps for d unless ctx is done first, in which case it
// returns ctx.Err() immediately — a retry backoff must never outlive the
// request it is backing off for. A non-positive d returns nil at once
// (after a ctx check), so callers can pass computed waits unguarded.
func SleepContext(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryJitter spreads a retry wait over [wait, wait*1.5) with a
// deterministic fraction derived from key and attempt number: clients
// shed together do not retry in lockstep (no thundering herd on the
// Retry-After boundary), yet every run replays the identical schedule —
// the same reproducibility-first stance as the seeded fault injector.
func RetryJitter(wait time.Duration, key string, attempt int) time.Duration {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s#%d", key, attempt)
	frac := float64(h.Sum32()%1000) / 1000 // [0, 1)
	return wait + time.Duration(frac*float64(wait)/2)
}

// RetryAfterWait resolves the backoff a 429 response asks for: the
// Retry-After header in delta-seconds when present and parsable, else
// fallback. A malformed or non-positive header value means the server's
// hint is unusable, not that the client should hammer it — the fallback
// applies there too.
func RetryAfterWait(h http.Header, fallback time.Duration) time.Duration {
	if secs, err := strconv.Atoi(h.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return fallback
}
