package cluster

import (
	"time"

	"olapdim/internal/obs"
)

// clusterMetrics holds the coordinator's instruments. All families live
// under the olapdim_cluster_ prefix and follow the obs.Lint naming
// rules (cmd/metricslint verifies them in `make check`). Worker counts
// are registered as scrape-time functions over the health tracker in
// registerCollectors, mirroring the internal/server idiom.
type clusterMetrics struct {
	received *obs.Counter
	reqTotal *obs.CounterVec
	reqDur   *obs.HistogramVec

	forwards    *obs.CounterVec // by worker
	forwardDur  *obs.Histogram
	failovers   *obs.Counter
	retries     *obs.Counter
	unroutable  *obs.Counter
	hedges      *obs.Counter
	hedgeWins   *obs.Counter
	probes      *obs.CounterVec // by outcome
	transitions *obs.CounterVec // by state entered
	reassigned  *obs.Counter
	mirrored    *obs.Counter

	breakerTransitions *obs.CounterVec // by state entered
	breakerSkipped     *obs.Counter
	retryExhausted     *obs.Counter

	federationScrapes *obs.CounterVec // by outcome
}

func newClusterMetrics(reg *obs.Registry) *clusterMetrics {
	return &clusterMetrics{
		received: reg.Counter("olapdim_cluster_http_requests_received_total",
			"Requests the coordinator received, counted at arrival before routing."),
		reqTotal: reg.CounterVec("olapdim_cluster_http_requests_total",
			"Requests the coordinator completed, by status class.", "code_class"),
		reqDur: reg.HistogramVec("olapdim_cluster_http_request_duration_seconds",
			"Coordinator request wall-clock latency, by status class.", "code_class", obs.DurationBuckets()),

		forwards: reg.CounterVec("olapdim_cluster_forwards_total",
			"Forward attempts sent to workers, by worker name.", "worker"),
		forwardDur: reg.Histogram("olapdim_cluster_forward_duration_seconds",
			"Latency of individual forward attempts to workers.", obs.DurationBuckets()),
		failovers: reg.Counter("olapdim_cluster_failovers_total",
			"Requests that failed over to a later ring candidate after the owner failed."),
		retries: reg.Counter("olapdim_cluster_retries_total",
			"Forward attempts beyond the first, across all candidates."),
		unroutable: reg.Counter("olapdim_cluster_unroutable_total",
			"Requests answered 503 because every candidate worker failed or none was healthy."),
		hedges: reg.Counter("olapdim_cluster_hedges_total",
			"Hedge requests launched against a second worker for straggling reads."),
		hedgeWins: reg.Counter("olapdim_cluster_hedge_wins_total",
			"Hedged reads where the hedge arm answered first with a usable response."),
		probes: reg.CounterVec("olapdim_cluster_probes_total",
			"Active /readyz probe results, by outcome (ok or fail).", "outcome"),
		transitions: reg.CounterVec("olapdim_cluster_worker_transitions_total",
			"Debounced worker health transitions, by state entered.", "state"),
		reassigned: reg.Counter("olapdim_cluster_jobs_reassigned_total",
			"Jobs re-enqueued on a surviving shard after their worker died or drained."),
		mirrored: reg.Counter("olapdim_cluster_checkpoints_mirrored_total",
			"Worker search checkpoints copied into the coordinator's job mirror."),

		breakerTransitions: reg.CounterVec("olapdim_cluster_breaker_transitions_total",
			"Per-worker circuit-breaker state transitions, by state entered.", "state"),
		breakerSkipped: reg.Counter("olapdim_cluster_breaker_skipped_total",
			"Forward candidates skipped without dialing because their breaker was open."),
		retryExhausted: reg.Counter("olapdim_cluster_retry_budget_exhausted_total",
			"Forward retries denied because the coordinator-wide retry budget for the window was spent."),

		federationScrapes: reg.CounterVec("olapdim_cluster_federation_scrapes_total",
			"Worker /metrics scrapes performed by the federation endpoint, by outcome (ok or fail).", "outcome"),
	}
}

// registerCollectors registers the scrape-time families reading
// coordinator-owned state: membership gauges and the fault injector's
// activation counts (when armed).
func (c *Coordinator) registerCollectors(reg *obs.Registry) {
	reg.GaugeFunc("olapdim_cluster_workers",
		"Workers configured in the cluster, in any health state.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.workers))
		})
	reg.GaugeFunc("olapdim_cluster_workers_healthy",
		"Workers currently up (debounced) and receiving new traffic.",
		func() float64 { return float64(c.health.countHealthy()) })
	reg.GaugeFunc("olapdim_cluster_jobs_tracked",
		"Jobs the coordinator is tracking across all workers and states.",
		func() float64 { return float64(c.jobs.count()) })
	reg.GaugeFunc("olapdim_cluster_uptime_seconds",
		"Seconds since the coordinator was constructed.",
		func() float64 { return time.Since(c.started).Seconds() })
	reg.GaugeFunc("olapdim_cluster_breaker_open",
		"Workers whose circuit breaker is currently open or half-open.",
		func() float64 { return float64(c.client.breaker.openCount()) })

	spans := c.spans
	reg.CounterFunc("olapdim_spans_recorded_total",
		"Distributed-trace spans recorded into the span store.",
		func() float64 { return float64(spans.Recorded()) })
	reg.CounterFunc("olapdim_spans_dropped_total",
		"Spans dropped by the span store's trace and size bounds.",
		func() float64 { return float64(spans.Dropped()) })

	if inj := c.cfg.Faults; inj != nil {
		reg.CounterVecFunc("olapdim_cluster_fault_injections_total",
			"Fault-injection rule activations in the coordinator, by injection site.", "site",
			func() map[string]float64 {
				out := map[string]float64{}
				for site, n := range inj.AllFired() {
					out[site] = float64(n)
				}
				return out
			})
	}
}
