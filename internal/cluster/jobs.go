package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// jobRequest is the coordinator's copy of a job submission — everything
// needed to re-enqueue the job on another shard: the original request
// fields plus the idempotency key the coordinator minted when the
// client did not supply one. Checkpoint carries the latest mirrored
// search checkpoint (base64 of core.Checkpoint.Encode) and is attached
// on reassignment so the new shard resumes instead of restarting.
type jobRequest struct {
	Kind           string `json:"kind"`
	Category       string `json:"category,omitempty"`
	Constraint     string `json:"constraint,omitempty"`
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
	Checkpoint     string `json:"checkpoint,omitempty"`
	// TraceContext is the W3C traceparent of the submit that created the
	// job; resubmitted on every reassignment so the trace ID survives
	// worker crashes and drains.
	TraceContext string `json:"traceContext,omitempty"`
}

// trackedJob is one job the coordinator has forwarded. The coordinator
// owns the client-facing job identity (cj-prefixed IDs) precisely so a
// job can move between workers — whose own IDs are per-shard sequences
// — without the client's handle changing.
type trackedJob struct {
	// ID is the coordinator-issued, client-facing job ID.
	ID string `json:"id"`
	// Key is the routing key the job's shard is derived from.
	Key string `json:"key"`
	// Worker is the base URL of the shard currently running the job.
	Worker string `json:"worker"`
	// WorkerID is the job's ID on that worker.
	WorkerID string `json:"workerId"`
	// State is the last state observed from the worker (or "lost" while
	// awaiting reassignment after the worker died).
	State string `json:"state"`
	// Reassigned counts handoffs to a new shard.
	Reassigned int `json:"reassigned"`

	req        jobRequest
	checkpoint string // base64 mirror of the worker's latest checkpoint
	view       []byte // last worker job view, ID rewritten, relayed on GET
	terminal   bool
}

// jobTracker indexes tracked jobs by coordinator ID and by idempotency
// key (for dedupe at the coordinator tier, so a retried client submit
// maps to the existing tracked job even before any worker is asked).
type jobTracker struct {
	mu    sync.Mutex
	seq   int
	byID  map[string]*trackedJob
	byKey map[string]*trackedJob // idempotency key → job
}

func newJobTracker() *jobTracker {
	return &jobTracker{byID: map[string]*trackedJob{}, byKey: map[string]*trackedJob{}}
}

// create registers a new tracked job and returns it. If the request's
// idempotency key already maps to a tracked job, that job is returned
// with created=false and nothing is registered.
func (t *jobTracker) create(key string, req jobRequest) (j *trackedJob, created bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if req.IdempotencyKey != "" {
		if existing, ok := t.byKey[req.IdempotencyKey]; ok {
			return existing, false
		}
	}
	t.seq++
	j = &trackedJob{
		ID:    fmt.Sprintf("cj%06d", t.seq),
		Key:   key,
		State: "pending",
		req:   req,
	}
	t.byID[j.ID] = j
	if req.IdempotencyKey != "" {
		t.byKey[req.IdempotencyKey] = j
	}
	return j, true
}

// get returns the tracked job for a coordinator ID.
func (t *jobTracker) get(id string) (*trackedJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.byID[id]
	return j, ok
}

// update applies fn to the tracked job under the tracker lock. All
// field mutation goes through here so snapshot/list reads are
// race-free.
func (t *jobTracker) update(id string, fn func(*trackedJob)) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.byID[id]
	if !ok {
		return false
	}
	fn(j)
	return true
}

// snapshot returns a copy of the tracked job (view and checkpoint
// included), safe to use without the lock.
func (t *jobTracker) snapshot(id string) (trackedJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.byID[id]
	if !ok {
		return trackedJob{}, false
	}
	return *j, true
}

// list returns snapshots of every tracked job, sorted by ID.
func (t *jobTracker) list() []trackedJob {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]trackedJob, 0, len(t.byID))
	for _, j := range t.byID {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// onWorker returns the IDs of non-terminal jobs placed on worker — the
// set that needs reassignment when the worker dies or drains.
func (t *jobTracker) onWorker(worker string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for id, j := range t.byID {
		if j.Worker == worker && !j.terminal {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// count returns the number of tracked jobs.
func (t *jobTracker) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}
