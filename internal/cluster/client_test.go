package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"olapdim/internal/faults"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		want   attemptOutcome
	}{
		{"connect refused", errors.New("dial tcp: connection refused"), 0, outcomeFailover},
		{"429 shed", nil, http.StatusTooManyRequests, outcomeRetrySame},
		{"503 overloaded", nil, http.StatusServiceUnavailable, outcomeFailover},
		{"500 internal", nil, http.StatusInternalServerError, outcomeFailover},
		{"200 ok", nil, http.StatusOK, outcomeUsable},
		{"404 definitive", nil, http.StatusNotFound, outcomeUsable},
		{"422 reasoning error", nil, http.StatusUnprocessableEntity, outcomeUsable},
	}
	for _, c := range cases {
		if got := classify(c.err, c.status); got != c.want {
			t.Errorf("classify(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetryAfterWait(t *testing.T) {
	fallback := 250 * time.Millisecond
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"absent", "", fallback},
		{"well-formed", "3", 3 * time.Second},
		{"malformed word", "soon", fallback},
		{"malformed date-ish", "Tue, 29 Oct", fallback},
		{"negative", "-2", fallback},
		{"zero", "0", fallback},
		{"fractional", "1.5", fallback},
	}
	for _, c := range cases {
		h := http.Header{}
		if c.header != "" {
			h.Set("Retry-After", c.header)
		}
		if got := RetryAfterWait(h, fallback); got != c.want {
			t.Errorf("RetryAfterWait(%s=%q) = %v, want %v", c.name, c.header, got, c.want)
		}
	}
}

func TestRetryJitterDeterministicAndBounded(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 5; attempt++ {
		a := RetryJitter(base, "/sat?category=X", attempt)
		b := RetryJitter(base, "/sat?category=X", attempt)
		if a != b {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
		if a < base || a >= base+base/2 {
			t.Fatalf("jitter %v outside [%v, %v)", a, base, base+base/2)
		}
	}
	if RetryJitter(base, "k", 1) == RetryJitter(base, "k", 2) &&
		RetryJitter(base, "k", 2) == RetryJitter(base, "k", 3) {
		t.Fatal("jitter never varies across attempts")
	}
}

func TestSleepContextAbortsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := SleepContext(ctx, 5*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("cancelled sleep took %v, want immediate return", d)
	}
	if err := SleepContext(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
}

func TestFailoverOnConnectRefusedAnd5xx(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	refused := httptest.NewServer(http.HandlerFunc(nil))
	refusedURL := refused.URL
	refused.Close() // now nothing listens there

	wc := &workerClient{httpc: http.DefaultClient}
	for _, first := range []string{bad.URL, refusedURL} {
		res, attempts, failedOver, err := wc.forwardWithFailover(context.Background(),
			[]string{first, good.URL}, http.MethodGet, "/x", nil, nil,
			forwardPolicy{baseBackoff: time.Millisecond, idempotent: true})
		if err != nil || res == nil || res.status != http.StatusOK {
			t.Fatalf("first=%s: res=%+v err=%v, want 200 from failover", first, res, err)
		}
		if res.worker != good.URL || !failedOver || attempts != 2 {
			t.Fatalf("first=%s: worker=%s failedOver=%v attempts=%d, want good worker on attempt 2",
				first, res.worker, failedOver, attempts)
		}
	}
}

func TestRetryAfterHonoredOn429ThenSuccess(t *testing.T) {
	var calls atomic.Int32
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer shedding.Close()

	wc := &workerClient{httpc: http.DefaultClient}
	start := time.Now()
	res, attempts, failedOver, err := wc.forwardWithFailover(context.Background(),
		[]string{shedding.URL}, http.MethodGet, "/x", nil, nil,
		forwardPolicy{baseBackoff: time.Millisecond, idempotent: true})
	if err != nil || res == nil || res.status != http.StatusOK {
		t.Fatalf("res=%+v err=%v, want eventual 200", res, err)
	}
	if attempts != 2 || failedOver {
		t.Fatalf("attempts=%d failedOver=%v, want retry-same on one worker", attempts, failedOver)
	}
	// The 1-second Retry-After must have been honored (with jitter, so
	// at least the full second).
	if waited := time.Since(start); waited < time.Second {
		t.Fatalf("retried after %v, Retry-After asked for 1s", waited)
	}
}

func TestShedBudgetRelays429(t *testing.T) {
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shed", http.StatusTooManyRequests)
	}))
	defer always.Close()
	wc := &workerClient{httpc: http.DefaultClient}
	res, _, _, err := wc.forwardWithFailover(context.Background(),
		[]string{always.URL}, http.MethodGet, "/x", nil, nil,
		forwardPolicy{maxSheds: 2, baseBackoff: time.Millisecond, idempotent: true})
	if err != nil || res == nil || res.status != http.StatusTooManyRequests {
		t.Fatalf("res=%+v err=%v, want the honest 429 relayed after the shed budget", res, err)
	}
	if res.header.Get("Retry-After") == "" {
		t.Fatal("relayed 429 lost its Retry-After header")
	}
}

// TestNonIdempotentNotRetriedAfterReachingWorker pins the mutation
// safety rule: once a non-idempotent request may have reached a worker,
// a failure surfaces instead of retrying on the next candidate.
func TestNonIdempotentNotRetriedAfterReachingWorker(t *testing.T) {
	var badCalls, goodCalls atomic.Int32
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badCalls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		goodCalls.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer good.Close()

	wc := &workerClient{httpc: http.DefaultClient}
	res, attempts, _, _ := wc.forwardWithFailover(context.Background(),
		[]string{bad.URL, good.URL}, http.MethodPost, "/jobs", nil, []byte(`{}`),
		forwardPolicy{baseBackoff: time.Millisecond, idempotent: false})
	if attempts != 1 || goodCalls.Load() != 0 {
		t.Fatalf("attempts=%d goodCalls=%d: non-idempotent request was retried", attempts, goodCalls.Load())
	}
	if res == nil || res.status != http.StatusInternalServerError {
		t.Fatalf("res=%+v, want the 500 surfaced", res)
	}

	// But an injected fault fires before the dial — the request provably
	// never left, so even a non-idempotent request may move on.
	inj := faults.New(faults.Rule{Site: faults.SiteClusterForward, Kind: faults.Error, On: []int{1}})
	wcf := &workerClient{httpc: http.DefaultClient, faults: inj}
	res, attempts, failedOver, err := wcf.forwardWithFailover(context.Background(),
		[]string{bad.URL, good.URL}, http.MethodPost, "/jobs", nil, []byte(`{}`),
		forwardPolicy{baseBackoff: time.Millisecond, idempotent: false})
	if err != nil || res == nil || res.status != http.StatusOK || !failedOver || attempts != 2 {
		t.Fatalf("res=%+v attempts=%d failedOver=%v err=%v, want failover after pre-dial fault",
			res, attempts, failedOver, err)
	}
	if badCalls.Load() != 1 {
		t.Fatalf("bad worker dialed %d times, the injected fault should have skipped it", badCalls.Load())
	}
}

func TestHedgeWinsOnStragglerAndCancelsLoser(t *testing.T) {
	release := make(chan struct{})
	var slowDone atomic.Bool
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			slowDone.Store(true)
			return
		}
		w.Write([]byte(`{"from":"slow"}`))
	}))
	defer slow.Close()
	defer close(release)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"from":"fast"}`))
	}))
	defer fast.Close()

	wc := &workerClient{httpc: http.DefaultClient}
	res, hedged, hedgeWon, err := wc.hedgedForward(context.Background(), slow.URL, fast.URL,
		http.MethodGet, "/x", nil, nil, hedgePolicy{delay: 10 * time.Millisecond})
	if err != nil || res == nil || res.status != http.StatusOK {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if !hedged || !hedgeWon || res.worker != fast.URL {
		t.Fatalf("hedged=%v hedgeWon=%v worker=%s, want the hedge arm to win", hedged, hedgeWon, res.worker)
	}
	// The straggler's request context must be cancelled promptly.
	deadline := time.Now().Add(2 * time.Second)
	for !slowDone.Load() {
		if time.Now().After(deadline) {
			t.Fatal("losing arm's request was never cancelled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHedgeFailedPrimaryPromotesImmediately(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusBadGateway)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer good.Close()

	wc := &workerClient{httpc: http.DefaultClient}
	start := time.Now()
	res, hedged, hedgeWon, err := wc.hedgedForward(context.Background(), bad.URL, good.URL,
		http.MethodGet, "/x", nil, nil, hedgePolicy{delay: 5 * time.Second})
	if err != nil || res == nil || res.status != http.StatusOK || !hedged || !hedgeWon {
		t.Fatalf("res=%+v hedged=%v hedgeWon=%v err=%v", res, hedged, hedgeWon, err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("promotion took %v, should not wait out the %v hedge delay", d, 5*time.Second)
	}
}

func TestHedgeSkippedWhenDeadlineTooTight(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(50 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer slow.Close()
	var hedgeCalls atomic.Int32
	spare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hedgeCalls.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer spare.Close()

	wc := &workerClient{httpc: http.DefaultClient}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	// Remaining deadline (80ms) < delay (30ms) + minHeadroom (60ms):
	// hedging would only double load, so it must not launch.
	res, hedged, _, err := wc.hedgedForward(ctx, slow.URL, spare.URL,
		http.MethodGet, "/x", nil, nil, hedgePolicy{delay: 30 * time.Millisecond})
	if err != nil || res == nil {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if hedged || hedgeCalls.Load() != 0 {
		t.Fatalf("hedged=%v hedgeCalls=%d, want hedge skipped under a tight deadline", hedged, hedgeCalls.Load())
	}
}

// TestHedgeDoesNotLeakGoroutines pins the buffered-channel design:
// losing hedge arms must finish and exit even though nobody reads their
// result, across many hedged requests.
func TestHedgeDoesNotLeakGoroutines(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))

	base := runtime.NumGoroutine()
	wc := &workerClient{httpc: &http.Client{}}
	for i := 0; i < 50; i++ {
		res, _, _, err := wc.hedgedForward(context.Background(), slow.URL, fast.URL,
			http.MethodGet, "/x", nil, nil, hedgePolicy{delay: time.Millisecond})
		if err != nil || res == nil {
			t.Fatalf("request %d: res=%+v err=%v", i, res, err)
		}
	}
	close(release)
	slow.Close()
	fast.Close()
	wc.httpc.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
