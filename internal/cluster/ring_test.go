package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndStable(t *testing.T) {
	a := NewRing(64, "w1", "w2", "w3")
	b := NewRing(64, "w3", "w1", "w2") // member order must not matter
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("sat/C%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs across construction orders: %q vs %q",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingCandidatesDistinctAndOwnerFirst(t *testing.T) {
	r := NewRing(64, "w1", "w2", "w3")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		c := r.Candidates(key, 3)
		if len(c) != 3 {
			t.Fatalf("Candidates(%q, 3) = %v, want 3 distinct members", key, c)
		}
		seen := map[string]bool{}
		for _, m := range c {
			if seen[m] {
				t.Fatalf("Candidates(%q, 3) repeats %q: %v", key, m, c)
			}
			seen[m] = true
		}
		if c[0] != r.Owner(key) {
			t.Fatalf("Candidates(%q)[0] = %q, Owner = %q", key, c[0], r.Owner(key))
		}
	}
	if got := r.Candidates("k", 10); len(got) != 3 {
		t.Fatalf("Candidates capped at membership: got %d members", len(got))
	}
	if NewRing(64).Owner("k") != "" {
		t.Fatal("empty ring must own nothing")
	}
}

// TestRingRemovalMovesOnlyOrphanedKeys pins the consistent-hashing
// property the resharding story depends on: removing one member must
// not move any key whose owner survives.
func TestRingRemovalMovesOnlyOrphanedKeys(t *testing.T) {
	r := NewRing(64, "w1", "w2", "w3")
	without := r.Without("w2")
	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := r.Owner(key)
		after := without.Owner(key)
		if before == "w2" {
			if after == "w2" {
				t.Fatalf("key %q still owned by removed member", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %q -> %q although its owner survives", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
	// With/Without round-trip restores the original ownership.
	back := without.With("w2")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if back.Owner(key) != r.Owner(key) {
			t.Fatalf("round-tripped ring disagrees on %q", key)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(64, "w1", "w2", "w3")
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("sat/C%d", i))]++
	}
	for m, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("member %s owns %.0f%% of keys, expected a rough third", m, 100*frac)
		}
	}
}
