package cluster

import (
	"sync"
	"time"
)

// breakerState is the classic circuit-breaker state machine, per worker.
type breakerState int

const (
	// breakerClosed passes traffic and counts consecutive failures.
	breakerClosed breakerState = iota
	// breakerOpen fails fast: the worker's transport is assumed dead and
	// no forwards are attempted until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen lets exactly one probe attempt through; its outcome
	// decides between closing again and re-opening for another cooldown.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// breaker holds one circuit breaker per worker. A worker's breaker trips
// open after `threshold` consecutive transport failures (connect refused,
// reset, partition — any attempt that never produced an HTTP answer; an
// answer of any status counts as reachable). While open, forwards skip
// the worker without dialing, so a partitioned shard costs the
// coordinator nothing but the ring walk. After `cooldown` one half-open
// probe is allowed; success closes the breaker, failure re-opens it.
// All methods are safe for concurrent use and on a nil receiver (a nil
// *breaker passes everything).
type breaker struct {
	mu           sync.Mutex
	threshold    int
	cooldown     time.Duration
	onTransition func(worker string, to breakerState)
	workers      map[string]*workerBreaker
}

type workerBreaker struct {
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration, onTransition func(worker string, to breakerState)) *breaker {
	return &breaker{
		threshold:    threshold,
		cooldown:     cooldown,
		onTransition: onTransition,
		workers:      map[string]*workerBreaker{},
	}
}

// get returns worker's breaker, creating it closed; callers hold b.mu.
func (b *breaker) get(worker string) *workerBreaker {
	wb, ok := b.workers[worker]
	if !ok {
		wb = &workerBreaker{}
		b.workers[worker] = wb
	}
	return wb
}

// transition flips a worker's state and notifies; callers hold b.mu.
func (b *breaker) transition(worker string, wb *workerBreaker, to breakerState) {
	wb.state = to
	if b.onTransition != nil {
		b.onTransition(worker, to)
	}
}

// allow reports whether a forward to worker may be attempted now. An
// open breaker past its cooldown converts to half-open and admits the
// caller as its single probe.
func (b *breaker) allow(worker string, now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	wb := b.get(worker)
	switch wb.state {
	case breakerOpen:
		if now.Sub(wb.openedAt) < b.cooldown {
			return false
		}
		b.transition(worker, wb, breakerHalfOpen)
		wb.probing = true
		return true
	case breakerHalfOpen:
		if wb.probing {
			return false
		}
		wb.probing = true
		return true
	}
	return true
}

// record feeds one attempt's outcome: reachable (any HTTP answer) or a
// transport failure. Probe successes from the health plane feed here too,
// so a healed partition closes the breaker within one probe round even
// with no client traffic.
func (b *breaker) record(worker string, reachable bool, now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	wb := b.get(worker)
	wb.probing = false
	if reachable {
		wb.fails = 0
		if wb.state != breakerClosed {
			b.transition(worker, wb, breakerClosed)
		}
		return
	}
	wb.fails++
	switch wb.state {
	case breakerHalfOpen:
		wb.openedAt = now
		b.transition(worker, wb, breakerOpen)
	case breakerClosed:
		if wb.fails >= b.threshold {
			wb.openedAt = now
			b.transition(worker, wb, breakerOpen)
		}
	}
}

// state returns worker's current breaker state, for /cluster reporting.
func (b *breaker) state(worker string) breakerState {
	if b == nil {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.get(worker).state
}

// openCount reports how many workers' breakers are not closed, for the
// scrape-time gauge.
func (b *breaker) openCount() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, wb := range b.workers {
		if wb.state != breakerClosed {
			n++
		}
	}
	return n
}

// retryBudget is a coordinator-wide cap on forward retries (attempts
// beyond a request's first) per window: with N clients hammering a
// partitioned shard, per-request retry policy alone multiplies load on
// the survivors by maxAttempts — the budget turns that amplification
// into a constant. Nil or non-positive max means unlimited.
type retryBudget struct {
	mu     sync.Mutex
	max    int
	window time.Duration
	start  time.Time
	used   int
}

func newRetryBudget(max int, window time.Duration) *retryBudget {
	return &retryBudget{max: max, window: window}
}

// allow consumes one retry token, rolling the window when it expires.
func (rb *retryBudget) allow(now time.Time) bool {
	if rb == nil || rb.max <= 0 {
		return true
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.start.IsZero() || now.Sub(rb.start) >= rb.window {
		rb.start = now
		rb.used = 0
	}
	if rb.used >= rb.max {
		return false
	}
	rb.used++
	return true
}
