package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring over worker names. Each
// member is projected onto the ring at `replicas` virtual points
// (FNV-64a of "name#i"), so the keyspace splits near-evenly and a
// membership change moves only ~1/N of the keys — the property that
// makes draining resharding tractable: a removed worker's keys land on
// ring neighbors instead of reshuffling every shard's SatCache.
//
// Immutability is deliberate: the coordinator swaps whole rings under a
// lock on membership change, so routing reads need no synchronization.
type Ring struct {
	replicas int
	members  []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring with the given virtual-node count per member.
// Replicas below 1 are raised to a default of 64, enough to keep the
// per-member keyspace share within a few percent of even for small N.
func NewRing(replicas int, members ...string) *Ring {
	if replicas < 1 {
		replicas = 64
	}
	r := &Ring{
		replicas: replicas,
		members:  append([]string(nil), members...),
	}
	sort.Strings(r.members)
	r.points = make([]ringPoint, 0, len(members)*replicas)
	for _, m := range r.members {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hashKey(fmt.Sprintf("%s#%d", m, i)), m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a 64-bit finalizer (splitmix64's) on top of FNV. Raw FNV-1a
// avalanches poorly on short, similar strings — the "name#i" virtual
// node labels differ in a couple of bytes, and without the finalizer
// one member can end up owning a few percent of the keyspace while its
// peers split the rest (TestRingBalance catches exactly that).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Members returns the ring's members, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	c := r.Candidates(key, 1)
	if len(c) == 0 {
		return ""
	}
	return c[0]
}

// Candidates returns up to n distinct members in ring order starting at
// the owner of key: the failover order. Walking clockwise from the
// key's point and deduplicating members yields the same sequence every
// call, so retries, hedges and job reassignment all agree on who is
// "next" for a key.
func (r *Ring) Candidates(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Without returns a new ring with member removed (or the receiver if it
// was not a member).
func (r *Ring) Without(member string) *Ring {
	out := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			out = append(out, m)
		}
	}
	if len(out) == len(r.members) {
		return r
	}
	return NewRing(r.replicas, out...)
}

// With returns a new ring with member added (or the receiver if it was
// already a member).
func (r *Ring) With(member string) *Ring {
	for _, m := range r.members {
		if m == member {
			return r
		}
	}
	return NewRing(r.replicas, append(append([]string(nil), r.members...), member)...)
}
