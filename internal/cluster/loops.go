package cluster

import (
	"context"
	"net/http"
	"time"

	"olapdim/internal/faults"
)

// probeLoop actively probes every worker's /readyz on the configured
// interval. Probe outcomes feed the same debounced health streaks as
// passive forwarding signals, so an idle cluster still notices a dead
// worker within FailAfter probe rounds.
func (c *Coordinator) probeLoop() {
	defer c.loopWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *Coordinator) probeAll() {
	c.mu.Lock()
	workers := append([]string(nil), c.workers...)
	c.mu.Unlock()
	for _, w := range workers {
		if c.health.state(w) == stateDraining {
			continue // draining workers are out of rotation regardless
		}
		c.probe(w)
	}
}

// probe sends one /readyz and records the outcome. The probe bypasses
// the workerClient so a probe failure is attributed once, not doubled
// through the passive onAttempt signal.
func (c *Coordinator) probe(worker string) {
	if err := c.cfg.Faults.Hit(faults.SiteClusterProbe); err != nil {
		c.met.probes.With("fail").Inc()
		c.health.observe(worker, false, "injected probe fault: "+err.Error(), time.Now())
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := c.client.httpc.Do(req)
	// A probe that got any HTTP answer proves the transport works: feed
	// the breaker so a healed partition closes it within one probe round
	// even with no client traffic to prove it.
	c.client.breaker.record(worker, err == nil, time.Now())
	ok := err == nil && resp.StatusCode == http.StatusOK
	msg := ""
	if err != nil {
		msg = err.Error()
	} else {
		resp.Body.Close()
		if !ok {
			msg = resp.Status
		}
	}
	if ok {
		c.met.probes.With("ok").Inc()
	} else {
		c.met.probes.With("fail").Inc()
	}
	c.health.observe(worker, ok, msg, time.Now())
}

// pollLoop mirrors every non-terminal job's status and latest search
// checkpoint from its worker. The mirror is what makes cross-shard
// recovery possible: when a worker dies without warning, the
// coordinator re-enqueues its jobs from the last mirrored checkpoint,
// and the deterministic search resumes bit-identically elsewhere.
func (c *Coordinator) pollLoop() {
	defer c.loopWG.Done()
	t := time.NewTicker(c.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.pollJobs()
		}
	}
}

func (c *Coordinator) pollJobs() {
	for _, j := range c.jobs.list() {
		if j.terminal || j.Worker == "" || j.WorkerID == "" {
			continue
		}
		if !c.health.healthy(j.Worker) {
			continue // reassignment owns this job now
		}
		c.mirrorJob(j)
	}
}

// mirrorJob refreshes one job's view and checkpoint from its worker.
func (c *Coordinator) mirrorJob(j trackedJob) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	res, err := c.client.do(ctx, j.Worker, http.MethodGet, "/jobs/"+j.WorkerID, nil, nil)
	if err != nil || res.status != http.StatusOK {
		return
	}
	c.applyWorkerView(j.ID, res.body)
	if snap, ok := c.jobs.snapshot(j.ID); !ok || snap.terminal {
		return
	}
	ck, err := c.client.do(ctx, j.Worker, http.MethodGet, "/jobs/"+j.WorkerID+"/checkpoint", nil, nil)
	if err != nil || ck.status != http.StatusOK || len(ck.body) == 0 {
		return // no checkpoint yet — the job restarts from scratch if lost now
	}
	enc := mirrorCheckpoint(ck.body)
	c.jobs.update(j.ID, func(t *trackedJob) {
		if t.checkpoint != enc {
			t.checkpoint = enc
			c.met.mirrored.Inc()
		}
	})
}

// reassignJobs moves every non-terminal job off worker and onto the
// shards next in ring order for their keys. fromWorker selects the
// checkpoint source: a draining worker is still alive, so its freshest
// checkpoint (and a cancel) are fetched directly; a dead worker's jobs
// recover from the coordinator's mirror. Returns how many jobs moved.
func (c *Coordinator) reassignJobs(worker string, fromWorker bool) int {
	ids := c.jobs.onWorker(worker)
	moved := 0
	for _, id := range ids {
		snap, ok := c.jobs.snapshot(id)
		if !ok || snap.terminal || snap.Worker != worker {
			continue
		}
		req := snap.req
		if fromWorker {
			// Drain: ask the live worker for its latest checkpoint, then
			// cancel its copy so only the new shard finishes the job.
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
			if ck, err := c.client.do(ctx, worker, http.MethodGet, "/jobs/"+snap.WorkerID+"/checkpoint", nil, nil); err == nil && ck.status == http.StatusOK && len(ck.body) > 0 {
				snap.checkpoint = mirrorCheckpoint(ck.body)
			}
			c.client.do(ctx, worker, http.MethodDelete, "/jobs/"+snap.WorkerID, nil, nil)
			cancel()
		}
		req.Checkpoint = snap.checkpoint
		c.jobs.update(id, func(t *trackedJob) {
			t.State = "lost"
			t.Reassigned++
			t.view = nil
		})
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		res, _ := c.submitToShard(ctx, id, snap.Key, req, worker)
		cancel()
		if res == nil {
			c.cfg.Logf("cluster: job %s lost with worker %s and no shard accepted it yet", id, worker)
			continue
		}
		moved++
		c.met.reassigned.Inc()
		withCkpt := ""
		if req.Checkpoint != "" {
			withCkpt = " from checkpoint"
		}
		c.cfg.Logf("cluster: job %s reassigned %s -> %s%s", id, worker, res.worker, withCkpt)
	}
	return moved
}
