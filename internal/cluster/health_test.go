package cluster

import (
	"testing"
	"time"
)

func TestHealthDebounce(t *testing.T) {
	var transitions []string
	h := newHealthTracker(3, 2, func(w string, from, to healthState) {
		transitions = append(transitions, from.String()+"->"+to.String())
	})
	now := time.Now()
	h.add("w", now)

	// Two failures: still up (FailAfter is 3).
	h.observe("w", false, "boom", now)
	h.observe("w", false, "boom", now)
	if !h.healthy("w") {
		t.Fatal("worker down after 2 failures, FailAfter is 3")
	}
	// Third consecutive failure trips it.
	h.observe("w", false, "boom", now)
	if h.healthy("w") {
		t.Fatal("worker still up after 3 consecutive failures")
	}
	// One success: still down (RecoverAfter is 2).
	h.observe("w", true, "", now)
	if h.healthy("w") {
		t.Fatal("worker recovered after 1 success, RecoverAfter is 2")
	}
	h.observe("w", true, "", now)
	if !h.healthy("w") {
		t.Fatal("worker still down after 2 consecutive successes")
	}
	want := []string{"up->down", "down->up"}
	if len(transitions) != len(want) || transitions[0] != want[0] || transitions[1] != want[1] {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

// TestHealthFlappingDoesNotThrash pins the hysteresis guarantee:
// alternating failure/success never accumulates either streak, so a
// flapping worker causes zero ring transitions.
func TestHealthFlappingDoesNotThrash(t *testing.T) {
	changes := 0
	h := newHealthTracker(3, 2, func(string, healthState, healthState) { changes++ })
	now := time.Now()
	h.add("w", now)
	for i := 0; i < 100; i++ {
		h.observe("w", i%2 == 0, "flap", now)
	}
	if changes != 0 {
		t.Fatalf("flapping worker caused %d state transitions, want 0", changes)
	}
	if !h.healthy("w") {
		t.Fatal("flapping worker should remain in its initial up state")
	}
}

func TestHealthDrain(t *testing.T) {
	h := newHealthTracker(3, 2, nil)
	now := time.Now()
	h.add("w", now)
	if _, ok := h.drain("w", now); !ok {
		t.Fatal("drain of an up worker refused")
	}
	if h.healthy("w") {
		t.Fatal("draining worker still counted healthy")
	}
	if _, ok := h.drain("w", now); ok {
		t.Fatal("second drain should be refused")
	}
	// Success signals do not pull a draining worker back into rotation.
	h.observe("w", true, "", now)
	h.observe("w", true, "", now)
	if h.state("w") != stateDraining {
		t.Fatalf("state after successes = %v, want draining", h.state("w"))
	}
	if h.countHealthy() != 0 {
		t.Fatalf("countHealthy = %d, want 0", h.countHealthy())
	}
}

func TestHealthUnknownWorkerIsNoop(t *testing.T) {
	h := newHealthTracker(1, 1, func(string, healthState, healthState) {
		t.Fatal("observe on an unknown worker must not transition")
	})
	h.observe("ghost", false, "x", time.Now())
	if !h.healthy("ghost") {
		t.Fatal("unknown workers default to up (add's optimism)")
	}
}
