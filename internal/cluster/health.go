package cluster

import (
	"sync"
	"time"
)

// healthState is a worker's debounced availability as the coordinator
// sees it.
type healthState int

const (
	stateUp healthState = iota
	stateDown
	// stateDraining marks a worker being removed by an operator: it
	// stays routable for reads already in flight but receives no new
	// traffic, while its jobs are handed off.
	stateDraining
)

func (s healthState) String() string {
	switch s {
	case stateUp:
		return "up"
	case stateDown:
		return "down"
	case stateDraining:
		return "draining"
	}
	return "unknown"
}

// healthTracker debounces per-worker health signals with hysteresis:
// a worker transitions up→down only after FailAfter consecutive
// failures and down→up only after RecoverAfter consecutive successes.
// A flapping worker — alternating one failure, one success — never
// accumulates either streak, so it never crosses a threshold and the
// ring is not thrashed by it. Both active /readyz probe outcomes and
// passive forwarding outcomes (transport errors, 5xx) feed the same
// streaks, so a worker failing real traffic is evicted without waiting
// for the next probe tick.
type healthTracker struct {
	failAfter    int
	recoverAfter int

	mu      sync.Mutex
	workers map[string]*workerHealth
	// onChange fires (outside mu is NOT guaranteed; it is called with mu
	// held released) whenever a worker's debounced state changes.
	onChange func(worker string, from, to healthState)
}

type workerHealth struct {
	state     healthState
	failures  int // consecutive, zeroed by any success
	successes int // consecutive, zeroed by any failure
	lastErr   string
	since     time.Time
}

func newHealthTracker(failAfter, recoverAfter int, onChange func(worker string, from, to healthState)) *healthTracker {
	if failAfter < 1 {
		failAfter = 3
	}
	if recoverAfter < 1 {
		recoverAfter = 2
	}
	return &healthTracker{
		failAfter:    failAfter,
		recoverAfter: recoverAfter,
		workers:      map[string]*workerHealth{},
		onChange:     onChange,
	}
}

// add registers a worker, initially up: a cold coordinator assumes its
// configured workers are serving and lets the first probes or forwards
// correct it, rather than refusing all traffic until a probe round
// completes.
func (t *healthTracker) add(worker string, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.workers[worker]; !ok {
		t.workers[worker] = &workerHealth{state: stateUp, since: now}
	}
}

// observe records one success or failure signal for worker and returns
// the (from, to) states — equal when nothing changed. msg annotates
// failures for the status endpoint.
func (t *healthTracker) observe(worker string, ok bool, msg string, now time.Time) (from, to healthState) {
	t.mu.Lock()
	w, known := t.workers[worker]
	if !known {
		t.mu.Unlock()
		return stateUp, stateUp
	}
	from, to = w.state, w.state
	if ok {
		w.failures = 0
		w.successes++
		w.lastErr = ""
		if w.state == stateDown && w.successes >= t.recoverAfter {
			w.state, to = stateUp, stateUp
			w.since = now
		}
	} else {
		w.successes = 0
		w.failures++
		w.lastErr = msg
		if w.state == stateUp && w.failures >= t.failAfter {
			w.state, to = stateDown, stateDown
			w.since = now
		}
	}
	cb := t.onChange
	t.mu.Unlock()
	if cb != nil && from != to {
		cb(worker, from, to)
	}
	return from, to
}

// drain marks a worker draining (idempotent; a down worker can also be
// drained so its jobs are reassigned from mirrors).
func (t *healthTracker) drain(worker string, now time.Time) (from healthState, ok bool) {
	t.mu.Lock()
	w, known := t.workers[worker]
	if !known || w.state == stateDraining {
		t.mu.Unlock()
		return stateUp, false
	}
	from = w.state
	w.state = stateDraining
	w.since = now
	cb := t.onChange
	t.mu.Unlock()
	if cb != nil {
		cb(worker, from, stateDraining)
	}
	return from, true
}

// state returns worker's current debounced state (up for unknown
// workers, matching add's optimism).
func (t *healthTracker) state(worker string) healthState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w, ok := t.workers[worker]; ok {
		return w.state
	}
	return stateUp
}

// healthy reports whether worker should receive new traffic.
func (t *healthTracker) healthy(worker string) bool { return t.state(worker) == stateUp }

// snapshot returns a copy of every worker's health for the status
// endpoint.
func (t *healthTracker) snapshot() map[string]workerHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]workerHealth, len(t.workers))
	for name, w := range t.workers {
		out[name] = *w
	}
	return out
}

// countHealthy returns how many workers are up.
func (t *healthTracker) countHealthy() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, w := range t.workers {
		if w.state == stateUp {
			n++
		}
	}
	return n
}
