package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"olapdim/internal/obs"
)

// This file is the coordinator's cross-node observability plane:
//
//   - GET /debug/spans and /debug/spans/{traceID} expose the
//     coordinator's own span store, in the same wire format workers use.
//   - GET /cluster/trace/{traceID} fans out to every worker's
//     /debug/spans/{traceID}, merges the answers with the coordinator's
//     own spans, and assembles the cross-node trace tree.
//   - GET /cluster/metrics scrapes every worker's /metrics, relabels
//     each sample with worker="<base-url>", folds in the coordinator's
//     registry as worker="coordinator", and serves one merged
//     Prometheus exposition — per-worker values stay visible, so sums
//     and rates aggregate without double counting.
//
// Debug fan-out traffic deliberately bypasses workerClient.do: a worker
// that simply does not retain a trace answers 404, and that must not
// feed the health streaks, breakers or forward metrics.

func (c *Coordinator) handleSpanList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"node": c.spans.Node(), "spans": c.spans.Len(), "traceIds": c.spans.TraceIDs(),
	})
}

func (c *Coordinator) handleSpanTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("traceID")
	spans := c.spans.Trace(id)
	if spans == nil {
		writeErr(w, http.StatusNotFound, "no spans retained for trace %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"traceId": id, "node": c.spans.Node(), "spans": spans,
	})
}

// fetch GETs worker+path directly (no health/breaker/metrics side
// effects) and returns the body of a 200 answer.
func (c *Coordinator) fetch(ctx context.Context, worker, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s%s answered %s", worker, path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// handleClusterTrace assembles one distributed trace across the whole
// cluster: the coordinator's own spans plus every worker's, fetched in
// parallel. Workers that are down or never saw the trace contribute
// nothing; 404 means no node retains it.
func (c *Coordinator) handleClusterTrace(w http.ResponseWriter, r *http.Request) {
	traceID := r.PathValue("traceID")
	all := append([]obs.Span(nil), c.spans.Trace(traceID)...)
	c.mu.Lock()
	workers := append([]string(nil), c.workers...)
	c.mu.Unlock()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, wk := range workers {
		wg.Add(1)
		go func(worker string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.cfg.ProbeTimeout)
			defer cancel()
			body, err := c.fetch(ctx, worker, "/debug/spans/"+traceID)
			if err != nil {
				return
			}
			var resp struct {
				Spans []obs.Span `json:"spans"`
			}
			if json.Unmarshal(body, &resp) != nil {
				return
			}
			mu.Lock()
			all = append(all, resp.Spans...)
			mu.Unlock()
		}(wk)
	}
	wg.Wait()
	asm := obs.Assemble(traceID, all)
	if len(asm.Spans) == 0 {
		writeErr(w, http.StatusNotFound, "no spans retained for trace %q on any node", traceID)
		return
	}
	writeJSON(w, http.StatusOK, asm)
}

// handleClusterMetrics serves the federated exposition: the
// coordinator's registry plus every reachable worker's scrape, each
// sample relabeled with its origin.
func (c *Coordinator) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	fed := newFederation()
	c.mu.Lock()
	workers := append([]string(nil), c.workers...)
	c.mu.Unlock()
	type scrape struct {
		worker string
		text   string
		err    error
	}
	results := make([]scrape, len(workers))
	var wg sync.WaitGroup
	for i, wk := range workers {
		wg.Add(1)
		go func(i int, worker string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), c.cfg.ProbeTimeout)
			defer cancel()
			body, err := c.fetch(ctx, worker, "/metrics")
			results[i] = scrape{worker: worker, text: string(body), err: err}
		}(i, wk)
	}
	wg.Wait()
	for _, s := range results {
		if s.err != nil {
			c.met.federationScrapes.With("fail").Inc()
			c.cfg.Logf("cluster: federation scrape of %s failed: %v", s.worker, s.err)
			continue
		}
		c.met.federationScrapes.With("ok").Inc()
		fed.ingest(s.worker, s.text)
	}
	// The coordinator's own registry is serialized after the worker
	// scrapes so the scrape counters incremented above — including this
	// very federation pass — appear in the answer.
	var own bytes.Buffer
	c.reg.WritePrometheus(&own)
	fed.ingest("coordinator", own.String())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fed.write(w)
}

// fedSample is one exposition sample line, relabeled with its origin.
type fedSample struct {
	// name is the sample name: the family name, or family_bucket/_sum/
	// _count for histograms.
	name   string
	labels string // rendered label set, worker label first
	value  string
}

// fedFamily merges one metric family across scrapes. The first scrape
// to declare HELP/TYPE wins (workers run the same binary, so they
// agree); samples accumulate in ingestion order, which keeps each
// worker's bucket series contiguous and le-ordered.
type fedFamily struct {
	name, typ, help string
	samples         []fedSample
}

// federation accumulates scrapes into merged families. The exposition
// text parser is sequential-context: a sample line belongs to the
// family most recently declared by a # TYPE/# HELP header, which is how
// obs.Registry (and every Prometheus client library) lays scrapes out.
type federation struct {
	fams map[string]*fedFamily
}

func newFederation() *federation {
	return &federation{fams: map[string]*fedFamily{}}
}

func (f *federation) family(name string) *fedFamily {
	fam, ok := f.fams[name]
	if !ok {
		fam = &fedFamily{name: name}
		f.fams[name] = fam
	}
	return fam
}

// sampleOf reports whether a sample name belongs to family fam
// (identical, or a histogram's _bucket/_sum/_count series).
func sampleOf(sample, fam string) bool {
	if sample == fam {
		return true
	}
	rest, ok := strings.CutPrefix(sample, fam)
	if !ok {
		return false
	}
	return rest == "_bucket" || rest == "_sum" || rest == "_count"
}

// splitSample parses one sample line into name, raw label body and
// value. The closing brace is found from the right: label values may
// contain escaped braces, but the value and optional timestamp after
// the label set never do.
func splitSample(line string) (name, labels, value string, ok bool) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", false
		}
		return line[:i], line[i+1 : j], strings.TrimSpace(line[j+1:]), true
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", "", "", false
	}
	return line[:i], "", strings.TrimSpace(line[i+1:]), true
}

// ingest parses one node's exposition text and appends its samples,
// each relabeled with worker="<origin>".
func (f *federation) ingest(origin, text string) {
	var cur *fedFamily
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name, help, _ := strings.Cut(line[len("# HELP "):], " ")
			cur = f.family(name)
			if cur.help == "" {
				cur.help = help
			}
		case strings.HasPrefix(line, "# TYPE "):
			name, typ, _ := strings.Cut(line[len("# TYPE "):], " ")
			cur = f.family(name)
			if cur.typ == "" {
				cur.typ = typ
			}
		case line == "" || strings.HasPrefix(line, "#"):
			// Blank or an unrecognized comment: skip.
		default:
			name, labels, value, ok := splitSample(line)
			if !ok || value == "" {
				continue
			}
			fam := cur
			if fam == nil || !sampleOf(name, fam.name) {
				// A stray sample with no preceding header — not something
				// obs.Registry emits, but a scrape is untrusted input.
				fam = f.family(name)
			}
			relabeled := fmt.Sprintf("worker=%q", origin)
			if labels != "" {
				relabeled += "," + labels
			}
			fam.samples = append(fam.samples, fedSample{name: name, labels: relabeled, value: value})
		}
	}
}

// write renders the merged exposition, families sorted by name so the
// output is diffable across scrapes.
func (f *federation) write(w io.Writer) {
	names := make([]string, 0, len(f.fams))
	for name := range f.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := f.fams[name]
		if fam.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fam.name, fam.help)
		}
		typ := fam.typ
		if typ == "" {
			typ = "untyped"
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, typ)
		for _, s := range fam.samples {
			fmt.Fprintf(w, "%s{%s} %s\n", s.name, s.labels, s.value)
		}
	}
}
