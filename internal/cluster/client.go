package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"olapdim/internal/faults"
	"olapdim/internal/obs"
)

// attemptOutcome classifies one forward attempt for the failover loop.
type attemptOutcome int

const (
	// outcomeUsable means the response must be relayed to the client:
	// a success, or a definitive client-visible answer (4xx — including
	// 429 after its backoff budget, and the reasoning 422s) the next
	// worker would only repeat.
	outcomeUsable attemptOutcome = iota
	// outcomeRetrySame means the same worker asked us to wait and try
	// again (429 with capacity expected back): honor Retry-After, do
	// not fail over — the shard still owns the key and its cache.
	outcomeRetrySame
	// outcomeFailover means the worker is unusable for this request
	// (connection refused/reset, 5xx): try the next ring candidate.
	outcomeFailover
)

// forwardResult is one worker's materialized response. Bodies are read
// fully before a result is returned, so losing hedge arms can close
// their connections without racing the relay.
type forwardResult struct {
	worker string
	status int
	header http.Header
	body   []byte
}

// classify maps a transport error or status code to the failover
// decision. 429 is the shed contract from internal/server: the worker
// is healthy but at capacity, so it is a retry-same (with Retry-After)
// rather than a failover — failing over would defeat shard affinity and
// stampede the neighbor. 5xx and transport errors mean this worker
// cannot answer; anything else is a definitive answer to relay.
func classify(err error, status int) attemptOutcome {
	switch {
	case err != nil:
		return outcomeFailover
	case status == http.StatusTooManyRequests:
		return outcomeRetrySame
	case status >= 500:
		return outcomeFailover
	default:
		return outcomeUsable
	}
}

// workerClient forwards one request to one worker and materializes the
// response. It is deliberately small: retry, failover and hedging
// policy live in forwardWithFailover / hedgedForward so the policies
// are testable against an httptest worker without a coordinator.
type workerClient struct {
	httpc  *http.Client
	faults *faults.Injector
	// spans, when non-nil, receives one "cluster.forward" client span per
	// attempt whose context carries a sampled trace. Hedge arms run do()
	// concurrently, so the traceparent is injected into each attempt's own
	// request — the shared header map is never mutated.
	spans *obs.SpanStore
	// onAttempt, when set, observes every forward attempt: the worker,
	// its wall-clock latency, the transport error (nil on an HTTP
	// answer) and the status code (0 on a transport error). The
	// coordinator hangs its forward metrics and passive health signals
	// here so every code path — failover, hedge arms, job polls —
	// feeds them uniformly.
	onAttempt func(worker string, d time.Duration, err error, status int)
	// breaker, when non-nil, is the per-worker circuit breaker: do()
	// feeds it every attempt's reachability, and forwardWithFailover
	// skips candidates whose breaker is open. onBreakerSkip observes
	// each skip for metrics.
	breaker       *breaker
	onBreakerSkip func(worker string)
	// budget, when non-nil, rate-limits retries (attempts beyond a
	// request's first) across all requests sharing this client.
	// onBudgetExhausted observes each denied retry.
	budget            *retryBudget
	onBudgetExhausted func()
}

// errInjectedForward wraps a fault-injection activation at
// cluster.forward so tests can distinguish it from real transport
// errors if needed; classify treats both as failover.
var errInjectedForward = errors.New("cluster: injected forward fault")

// errBreakersOpen reports a forward that attempted nothing because every
// candidate's circuit breaker was open: fail fast (the coordinator
// answers a typed 503) instead of dialing workers known to be dead.
var errBreakersOpen = errors.New("cluster: every candidate's circuit breaker is open")

// do sends method path?query with body to worker (a base URL) and
// reads the full response. A faults hit at cluster.forward before the
// attempt simulates an unreachable shard.
func (wc *workerClient) do(ctx context.Context, worker, method, pathAndQuery string, header http.Header, body []byte) (res *forwardResult, err error) {
	start := time.Now()
	var fwdSpan *obs.Span
	var child obs.SpanContext
	if parent, ok := obs.SpanFrom(ctx); ok && parent.Sampled {
		fwdSpan, child = obs.StartSpan(parent, "cluster.forward", "client")
	}
	defer func() {
		// Any HTTP answer means the worker was reachable; only a
		// transport-level failure moves its breaker toward open.
		wc.breaker.record(worker, err == nil, time.Now())
		if wc.onAttempt != nil {
			status := 0
			if res != nil {
				status = res.status
			}
			wc.onAttempt(worker, time.Since(start), err, status)
		}
		if fwdSpan != nil {
			fwdSpan.SetAttr("worker", worker)
			fwdSpan.SetAttr("path", pathAndQuery)
			outcome := "ok"
			switch {
			case errors.Is(err, context.Canceled):
				// A cancelled attempt is almost always a losing hedge arm
				// (or an abandoned client); its span is recorded as
				// cancelled, not failed, so traces distinguish the two.
				outcome = "cancelled"
			case err != nil:
				outcome = "error"
			case res != nil && res.status >= 500:
				outcome = "error"
			}
			if res != nil {
				fwdSpan.SetAttr("status", fmt.Sprint(res.status))
			}
			fwdSpan.Finish(outcome)
			wc.spans.Add(fwdSpan)
		}
	}()
	if ferr := wc.faults.Hit(faults.SiteClusterForward); ferr != nil {
		return nil, fmt.Errorf("%w: %v", errInjectedForward, ferr)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, worker+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if child.Valid() {
		req.Header.Set("traceparent", child.Traceparent())
	}
	resp, err := wc.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &forwardResult{worker: worker, status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// forwardPolicy bounds a failover loop.
type forwardPolicy struct {
	// maxAttempts caps total attempts across all candidates.
	maxAttempts int
	// maxSheds caps how many 429-retry-same rounds one worker gets
	// before its shed answer is relayed as definitive.
	maxSheds int
	// baseBackoff seeds the exponential between-candidate backoff and
	// the Retry-After fallback for malformed headers.
	baseBackoff time.Duration
	// idempotent gates retrying after a request may have reached a
	// worker. Non-idempotent mutations without an idempotency key must
	// set this false: they are only retried when the attempt provably
	// never left (the fault injector refused it before the dial).
	idempotent bool
}

// forwardWithFailover walks candidates in ring order applying the
// policy. It reports the usable result, the number of extra attempts
// made (for the retry counter) and whether any candidate beyond the
// first was tried (for the failover counter). When every candidate is
// exhausted it returns the last error or unusable result.
func (wc *workerClient) forwardWithFailover(ctx context.Context, candidates []string, method, pathAndQuery string, header http.Header, body []byte, pol forwardPolicy) (res *forwardResult, attempts int, failedOver bool, err error) {
	if pol.maxAttempts < 1 {
		pol.maxAttempts = 3
	}
	if pol.maxSheds < 1 {
		pol.maxSheds = 2
	}
	if pol.baseBackoff <= 0 {
		pol.baseBackoff = 50 * time.Millisecond
	}
	if len(candidates) == 0 {
		return nil, 0, false, errors.New("cluster: no candidate workers")
	}
	var lastErr error
	var lastRes *forwardResult
	for ci := 0; ci < len(candidates) && attempts < pol.maxAttempts; ci++ {
		worker := candidates[ci]
		if !wc.breaker.allow(worker, time.Now()) {
			// Tripped breaker: the worker's transport is known-dead, so
			// skipping it costs nothing and dialing it wastes an attempt.
			if wc.onBreakerSkip != nil {
				wc.onBreakerSkip(worker)
			}
			continue
		}
		sheds := 0
		for attempts < pol.maxAttempts {
			if attempts >= 1 && !wc.budget.allow(time.Now()) {
				// Retry budget exhausted coordinator-wide: relay the best
				// answer already in hand rather than amplify the storm.
				if wc.onBudgetExhausted != nil {
					wc.onBudgetExhausted()
				}
				if lastRes != nil {
					return lastRes, attempts, attempts > 1, nil
				}
				return nil, attempts, attempts > 1, lastErr
			}
			attempts++
			r, derr := wc.do(ctx, worker, method, pathAndQuery, header, body)
			status := 0
			if r != nil {
				status = r.status
			}
			switch classify(derr, status) {
			case outcomeUsable:
				return r, attempts, ci > 0, nil
			case outcomeRetrySame:
				lastRes, lastErr = r, nil
				sheds++
				if sheds >= pol.maxSheds || attempts >= pol.maxAttempts {
					// Out of shed budget: the 429 (with its Retry-After)
					// is the honest answer; relay it so the client's own
					// backoff takes over.
					return r, attempts, ci > 0, nil
				}
				wait := RetryAfterWait(r.header, pol.baseBackoff)
				if serr := SleepContext(ctx, RetryJitter(wait, pathAndQuery, attempts)); serr != nil {
					return nil, attempts, ci > 0, serr
				}
			case outcomeFailover:
				lastRes, lastErr = r, derr
				if !pol.idempotent && !errors.Is(derr, errInjectedForward) {
					// The request may have reached the worker; without an
					// idempotency key a retry could apply the mutation
					// twice. Surface the failure instead.
					return r, attempts, ci > 0, derr
				}
				if ci+1 < len(candidates) && attempts < pol.maxAttempts {
					wait := pol.baseBackoff << uint(min(attempts-1, 4))
					if serr := SleepContext(ctx, RetryJitter(wait, pathAndQuery, attempts)); serr != nil {
						return nil, attempts, true, serr
					}
				}
				goto nextCandidate
			}
		}
	nextCandidate:
	}
	if lastRes != nil {
		return lastRes, attempts, attempts > 1, nil
	}
	if attempts == 0 && lastErr == nil {
		return nil, 0, false, errBreakersOpen
	}
	return nil, attempts, attempts > 1, lastErr
}

// hedgePolicy tunes straggler hedging for idempotent reads.
type hedgePolicy struct {
	// delay is how long the primary gets before the hedge launches.
	delay time.Duration
	// minHeadroom is the minimum remaining request deadline for a hedge
	// to be worth launching; below it the hedge could not finish either,
	// so launching one only doubles load during a brownout.
	minHeadroom time.Duration
}

// hedgedForward races primary against one hedge arm for an idempotent
// read. The primary starts immediately; if it has not produced a usable
// response within pol.delay (and the deadline leaves minHeadroom), the
// same request is sent to hedge and the first usable response wins,
// canceling the loser. A non-usable primary answer (5xx, transport
// error) promotes the hedge immediately rather than waiting out the
// delay. Results flow through a channel with capacity for both arms so
// the loser's goroutine never blocks — the leak-check tests pin this.
func (wc *workerClient) hedgedForward(ctx context.Context, primary, hedge, method, pathAndQuery string, header http.Header, body []byte, pol hedgePolicy) (res *forwardResult, hedged, hedgeWon bool, err error) {
	type armResult struct {
		res   *forwardResult
		err   error
		hedge bool
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan armResult, 2)
	launch := func(worker string, isHedge bool) {
		r, derr := wc.do(ctx, worker, method, pathAndQuery, header, body)
		results <- armResult{r, derr, isHedge}
	}
	go launch(primary, false)

	if pol.delay <= 0 {
		pol.delay = 20 * time.Millisecond
	}
	if pol.minHeadroom <= 0 {
		pol.minHeadroom = 2 * pol.delay
	}
	canHedge := hedge != "" && hedge != primary
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < pol.delay+pol.minHeadroom {
		canHedge = false
	}

	timer := time.NewTimer(pol.delay)
	defer timer.Stop()
	var lastErr error
	var lastRes *forwardResult
	pending := 1
	for {
		select {
		case <-timer.C:
			if canHedge {
				canHedge = false
				if ferr := wc.faults.Hit(faults.SiteClusterHedge); ferr == nil {
					hedged = true
					pending++
					go launch(hedge, true)
				}
			}
		case ar := <-results:
			pending--
			status := 0
			if ar.res != nil {
				status = ar.res.status
			}
			if ar.err == nil && classify(nil, status) != outcomeFailover {
				// Usable (or at least definitive) answer: first one wins.
				return ar.res, hedged, ar.hedge, nil
			}
			lastRes, lastErr = ar.res, ar.err
			if canHedge {
				// Primary failed before the delay elapsed: promote the
				// hedge now instead of waiting.
				canHedge = false
				if ferr := wc.faults.Hit(faults.SiteClusterHedge); ferr == nil {
					hedged = true
					pending++
					go launch(hedge, true)
				}
			}
			if pending == 0 {
				if lastRes != nil {
					return lastRes, hedged, false, nil
				}
				return nil, hedged, false, lastErr
			}
		case <-ctx.Done():
			return nil, hedged, false, ctx.Err()
		}
	}
}
