package olap_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"olapdim/internal/core"
	"olapdim/internal/gen"
	"olapdim/internal/instance"
	"olapdim/internal/olap"
	"olapdim/internal/paper"
	"olapdim/internal/schema"
)

// TestTheorem1Equivalence is experiment T1: on random valid dimension
// instances, the Theorem 1 characterization (a dimension constraint over
// the instance) coincides with Definition 6 (cube view rewriting equality
// for every fact table and distributive aggregate).
//
// Direction ⇒: when summarizable, the rewriting equals the direct cube
// view for a random fact table under all four aggregates, and for every
// single-fact table.
//
// Direction ⇐: when not summarizable, some single-fact table already
// exposes a mismatch under SUM or COUNT (single-fact tables are decisive:
// a base member routed through zero or several source categories loses or
// duplicates its contribution).
func TestTheorem1Equivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := gen.SchemaSpec{
			Seed:          seed,
			Categories:    3 + rng.Intn(4),
			Levels:        2 + rng.Intn(2),
			ExtraEdgeProb: 0.3,
		}
		d, err := gen.RandomInstance(spec, 1+rng.Intn(3))
		if err != nil {
			t.Logf("generator: %v", err)
			return false
		}
		cats := nonAllCategories(d)
		target := cats[rng.Intn(len(cats))]
		S := randomSubset(rng, cats)
		if len(S) == 0 {
			return true
		}
		summarizable := core.SummarizableInInstance(d, target, S)
		mismatch, witness := definition6Mismatch(d, target, S, seed)
		if summarizable && mismatch {
			t.Logf("Theorem 1 claims summarizable but Definition 6 differs (%s from %v, witness %s)\n%s",
				target, S, witness, d)
			return false
		}
		if !summarizable && !mismatch {
			t.Logf("Theorem 1 claims not summarizable but no fact table disagrees (%s from %v)\n%s",
				target, S, d)
			return false
		}
		return true
	}
	n := 250
	if testing.Short() {
		n = 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

func nonAllCategories(d *instance.Instance) []string {
	var out []string
	for _, c := range d.Schema().SortedCategories() {
		if c != schema.All {
			out = append(out, c)
		}
	}
	return out
}

func randomSubset(rng *rand.Rand, cats []string) []string {
	var out []string
	for _, c := range cats {
		if rng.Intn(3) == 0 {
			out = append(out, c)
		}
	}
	if len(out) == 0 && len(cats) > 0 {
		out = append(out, cats[rng.Intn(len(cats))])
	}
	return out
}

// definition6Mismatch checks Definition 6 exhaustively enough to be
// decisive: a random fact table under all four aggregates, plus one
// single-fact table per base member under SUM and COUNT.
func definition6Mismatch(d *instance.Instance, target string, S []string, seed int64) (bool, string) {
	base := d.BaseMembers()
	big := gen.Facts(base, 4*len(base)+4, 100, seed)
	for _, af := range olap.Funcs {
		if !rewriteMatches(d, big, target, S, af) {
			return true, "random table/" + af.String()
		}
	}
	for _, x := range base {
		single := &olap.FactTable{Facts: []olap.Fact{{Base: x, M: 7}}}
		for _, af := range []olap.AggFunc{olap.Sum, olap.Count} {
			if !rewriteMatches(d, single, target, S, af) {
				return true, "single fact on " + x + "/" + af.String()
			}
		}
	}
	return false, ""
}

func rewriteMatches(d *instance.Instance, F *olap.FactTable, target string, S []string, af olap.AggFunc) bool {
	direct := olap.Compute(d, F, target, af)
	var views []*olap.CubeView
	for _, ci := range S {
		views = append(views, olap.Compute(d, F, ci, af))
	}
	rolled, err := olap.RollupFrom(d, views, target)
	if err != nil {
		return false
	}
	return olap.Equal(direct, rolled)
}

// TestTheorem1OnLocation pins the two results of Example 10 plus the
// SaleRegion route on the paper's concrete instance and fact tables.
func TestTheorem1OnLocation(t *testing.T) {
	d := paper.LocationInstance()
	cases := []struct {
		from []string
		want bool
	}{
		{[]string{"City"}, true},
		{[]string{"SaleRegion"}, true},
		{[]string{"State", "Province"}, false},
		{[]string{"City", "SaleRegion"}, false},
		{[]string{"Country"}, true},
	}
	for _, c := range cases {
		got := core.SummarizableInInstance(d, "Country", c.from)
		if got != c.want {
			t.Errorf("SummarizableInInstance(Country, %v) = %v, want %v", c.from, got, c.want)
		}
		mismatch, witness := definition6Mismatch(d, "Country", c.from, 1)
		if mismatch == c.want {
			t.Errorf("Definition 6 disagrees for %v (mismatch=%v, %s)", c.from, mismatch, witness)
		}
	}
}
