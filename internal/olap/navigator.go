package olap

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"olapdim/internal/core"
	"olapdim/internal/instance"
)

// Oracle answers summarizability questions for the aggregate navigator.
// Two implementations exist: InstanceOracle (Theorem 1 evaluated on one
// dimension instance) and SchemaOracle (constraint implication over the
// dimension schema via DIMSAT, valid for every instance of the schema).
type Oracle interface {
	Summarizable(target string, from []string) bool
}

// ContextOracle is an Oracle that can propagate cancellation and surface
// budget errors. SchemaOracle implements it; context-aware callers (e.g.
// SelectViewsContext) type-assert for it and fall back to the plain
// Oracle method otherwise.
type ContextOracle interface {
	Oracle
	SummarizableContext(ctx context.Context, target string, from []string) (bool, error)
}

// InstanceOracle tests Theorem 1 directly on a dimension instance.
type InstanceOracle struct {
	D *instance.Instance
}

// Summarizable implements Oracle.
func (o InstanceOracle) Summarizable(target string, from []string) bool {
	return core.SummarizableInInstance(o.D, target, from)
}

// SchemaOracle tests summarizability at the schema level: the answer is
// valid for every dimension instance over the schema. Results are memoized
// since DIMSAT runs are considerably more expensive than map lookups; the
// memo is guarded by a mutex, so one oracle may serve concurrent
// goroutines (e.g. the navigator behind a request fan-out). Point Opts at
// a shared core.SatCache to also share the underlying satisfiability
// results with other oracles and the batch surfaces.
type SchemaOracle struct {
	DS   *core.DimensionSchema
	Opts core.Options

	mu    sync.Mutex
	cache map[string]bool
}

// Summarizable implements Oracle with a background context; errors
// (including budget exhaustion) count as not-certified, keeping the
// navigator on its safe fallback path.
func (o *SchemaOracle) Summarizable(target string, from []string) bool {
	v, _ := o.SummarizableContext(context.Background(), target, from)
	return v
}

// SummarizableContext decides summarizability under a context and the
// oracle's Options budget. Memoized certificates are returned without
// consulting the context; errors are not memoized, so a call with a
// larger budget can later settle the question.
func (o *SchemaOracle) SummarizableContext(ctx context.Context, target string, from []string) (bool, error) {
	key := target + "<=" + strings.Join(from, ",")
	o.mu.Lock()
	if v, ok := o.cache[key]; ok {
		o.mu.Unlock()
		return v, nil
	}
	o.mu.Unlock()
	rep, err := core.SummarizableContext(ctx, o.DS, target, from, o.Opts)
	if err != nil {
		return false, err
	}
	v := rep.Summarizable()
	o.mu.Lock()
	if o.cache == nil {
		o.cache = map[string]bool{}
	}
	o.cache[key] = v
	o.mu.Unlock()
	return v, nil
}

// Plan describes how the navigator answered a query.
type Plan struct {
	// Target is the queried category.
	Target string
	// Sources lists the materialized categories used; empty when the
	// query was answered from the base fact table.
	Sources []string
	// FromBase reports whether the base fact table was scanned.
	FromBase bool
}

func (p Plan) String() string {
	if p.FromBase {
		return fmt.Sprintf("%s from base facts", p.Target)
	}
	return fmt.Sprintf("%s from {%s}", p.Target, strings.Join(p.Sources, ", "))
}

// Navigator is an aggregate navigator (Kimball, Section 1.2 of the paper):
// it answers cube-view queries from materialized cube views when the
// oracle proves the rewriting correct, falling back to the fact table.
type Navigator struct {
	d      *instance.Instance
	f      *FactTable
	oracle Oracle
	views  map[AggFunc]map[string]*CubeView
}

// NewNavigator builds a navigator over one dimension instance and fact
// table.
func NewNavigator(d *instance.Instance, f *FactTable, oracle Oracle) *Navigator {
	return &Navigator{d: d, f: f, oracle: oracle, views: map[AggFunc]map[string]*CubeView{}}
}

// Materialize computes and stores the cube view for (c, af).
func (n *Navigator) Materialize(c string, af AggFunc) *CubeView {
	v := Compute(n.d, n.f, c, af)
	if n.views[af] == nil {
		n.views[af] = map[string]*CubeView{}
	}
	n.views[af][c] = v
	return v
}

// Materialized returns the categories materialized for af, sorted.
func (n *Navigator) Materialized(af AggFunc) []string {
	var out []string
	for c := range n.views[af] {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Query answers the cube view for (c, af): from a stored view if present;
// else from the smallest set of materialized views the oracle certifies;
// else from the base fact table.
func (n *Navigator) Query(c string, af AggFunc) (*CubeView, Plan, error) {
	if v, ok := n.views[af][c]; ok {
		return v, Plan{Target: c, Sources: []string{c}}, nil
	}
	avail := n.Materialized(af)
	if set, ok := n.bestSource(c, avail); ok {
		var views []*CubeView
		for _, ci := range set {
			views = append(views, n.views[af][ci])
		}
		v, err := RollupFrom(n.d, views, c)
		if err != nil {
			return nil, Plan{}, err
		}
		return v, Plan{Target: c, Sources: set}, nil
	}
	return Compute(n.d, n.f, c, af), Plan{Target: c, FromBase: true}, nil
}

// bestSource searches the subsets of the available categories, smallest
// first, for one the oracle certifies c summarizable from. Navigators hold
// few materialized views, so the subset search is cheap in practice.
func (n *Navigator) bestSource(c string, avail []string) ([]string, bool) {
	set, ok, _ := smallestCertified(func(target string, from []string) (bool, error) {
		return n.oracle.Summarizable(target, from), nil
	}, c, avail)
	return set, ok
}
