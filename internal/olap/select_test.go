package olap_test

import (
	"reflect"
	"strings"
	"testing"

	"olapdim/internal/olap"
	"olapdim/internal/paper"
)

// locationSizes approximates per-category view sizes for the location
// schema (cells ~ member counts at a 1000-store scale).
func locationSizes() map[string]int {
	return map[string]int{
		paper.City:       1000,
		paper.State:      500,
		paper.Province:   250,
		paper.SaleRegion: 600,
		paper.Country:    3,
	}
}

func locationOracle() olap.Oracle {
	return &olap.SchemaOracle{DS: paper.LocationSch()}
}

func TestSelectViewsCoversCountry(t *testing.T) {
	sel := olap.SelectViews(locationOracle(), locationSizes(), []string{paper.Country}, 10000)
	if len(sel.Uncovered) != 0 {
		t.Fatalf("Country uncovered: %s", sel)
	}
	// The cheapest cover for Country alone is Country itself (3 cells).
	if !reflect.DeepEqual(sel.Materialize, []string{paper.Country}) {
		t.Errorf("selection = %v, want [Country]", sel.Materialize)
	}
	if sel.EstimatedCells != 3 {
		t.Errorf("cells = %d", sel.EstimatedCells)
	}
}

func TestSelectViewsSharedSource(t *testing.T) {
	// SaleRegion and Country are both needed. SaleRegion itself (600) also
	// certifies Country from {SaleRegion}, so one view can cover both.
	sel := olap.SelectViews(locationOracle(), locationSizes(),
		[]string{paper.Country, paper.SaleRegion}, 10000)
	if len(sel.Uncovered) != 0 {
		t.Fatalf("uncovered: %s", sel)
	}
	if !reflect.DeepEqual(sel.Materialize, []string{paper.SaleRegion}) {
		t.Errorf("selection = %v, want [SaleRegion]", sel.Materialize)
	}
	if got := sel.Covered[paper.Country]; !reflect.DeepEqual(got, []string{paper.SaleRegion}) {
		t.Errorf("Country covered from %v", got)
	}
}

func TestSelectViewsBudget(t *testing.T) {
	// A budget below every candidate leaves everything uncovered.
	sel := olap.SelectViews(locationOracle(), locationSizes(), []string{paper.Country}, 2)
	if len(sel.Materialize) != 0 || len(sel.Uncovered) != 1 {
		t.Errorf("selection under tiny budget = %s", sel)
	}
}

func TestSelectViewsUncoverable(t *testing.T) {
	// Queries outside the size map can only be covered by themselves; with
	// State and Province as the only candidates, Country stays uncovered
	// (Example 10's negative result).
	sizes := map[string]int{paper.State: 500, paper.Province: 250}
	sel := olap.SelectViews(locationOracle(), sizes, []string{paper.Country}, 10000)
	if len(sel.Uncovered) != 1 || sel.Uncovered[0] != paper.Country {
		t.Errorf("selection = %s", sel)
	}
	// Nothing useless is materialized.
	if len(sel.Materialize) != 0 {
		t.Errorf("materialized useless views: %v", sel.Materialize)
	}
}

func TestSelectViewsMultiQuery(t *testing.T) {
	queries := []string{paper.Country, paper.SaleRegion, paper.State, paper.Province}
	sel := olap.SelectViews(locationOracle(), locationSizes(), queries, 10000)
	if len(sel.Uncovered) != 0 {
		t.Fatalf("uncovered queries: %s", sel)
	}
	// Every covered query's certified source set must be inside the
	// selection.
	inSel := map[string]bool{}
	for _, c := range sel.Materialize {
		inSel[c] = true
	}
	for q, src := range sel.Covered {
		for _, s := range src {
			if !inSel[s] {
				t.Errorf("query %s uses unselected source %s", q, s)
			}
		}
	}
	if !strings.Contains(sel.String(), "materialize") {
		t.Errorf("rendering: %s", sel)
	}
}

func TestSelectViewsDeterministic(t *testing.T) {
	queries := []string{paper.Country, paper.SaleRegion, paper.City}
	a := olap.SelectViews(locationOracle(), locationSizes(), queries, 10000)
	b := olap.SelectViews(locationOracle(), locationSizes(), queries, 10000)
	if a.String() != b.String() {
		t.Errorf("nondeterministic selection:\n%s\nvs\n%s", a, b)
	}
}
