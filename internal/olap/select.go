package olap

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// ViewSelection is the outcome of SelectViews: which cube views to
// materialize for a query workload, which rewrite covers each query, and
// which queries still need base-table scans.
type ViewSelection struct {
	// Materialize lists the selected categories, sorted.
	Materialize []string
	// Covered maps each answerable query category to the certified source
	// set inside Materialize (the smallest one found).
	Covered map[string][]string
	// Uncovered lists the query categories no selection subset certifies.
	Uncovered []string
	// EstimatedCells totals the size estimates of the selection.
	EstimatedCells int
}

func (s *ViewSelection) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "materialize {%s} (%d cells)", strings.Join(s.Materialize, ", "), s.EstimatedCells)
	targets := make([]string, 0, len(s.Covered))
	for c := range s.Covered {
		targets = append(targets, c)
	}
	sort.Strings(targets)
	for _, c := range targets {
		fmt.Fprintf(&b, "\n  %s from {%s}", c, strings.Join(s.Covered[c], ", "))
	}
	for _, c := range s.Uncovered {
		fmt.Fprintf(&b, "\n  %s from base facts", c)
	}
	return b.String()
}

// SelectViews greedily chooses cube views to materialize so that as many
// query categories as possible are answerable from the selection, within a
// cell budget. It realizes the view-selection role the paper sketches in
// Section 6: dimension constraints "supply meta-data to support the test
// of whether a selected set of views is sufficient to compute all the
// required queries" — here the oracle (Theorem 1 implication) is that
// test.
//
// sizes estimates the cell count of each category's view (for the paper's
// dimensions, the member count); candidates are its keys. A query is
// covered when it is selected itself or when some subset of the selection
// is certified by the oracle (more views are not always better: a superset
// can double count, so coverage searches subsets smallest-first). The
// greedy step picks the candidate covering the most uncovered queries,
// breaking ties towards fewer cells, then lexicographically.
func SelectViews(oracle Oracle, sizes map[string]int, queries []string, budgetCells int) *ViewSelection {
	sel, _ := selectViews(func(target string, from []string) (bool, error) {
		return oracle.Summarizable(target, from), nil
	}, sizes, queries, budgetCells)
	return sel
}

// SelectViewsContext is SelectViews under a context: when the oracle is a
// ContextOracle (e.g. SchemaOracle), every certification probe carries ctx
// and the first cancellation or budget error aborts the selection.
func SelectViewsContext(ctx context.Context, oracle Oracle, sizes map[string]int, queries []string, budgetCells int) (*ViewSelection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	probe := func(target string, from []string) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if co, ok := oracle.(ContextOracle); ok {
			return co.SummarizableContext(ctx, target, from)
		}
		return oracle.Summarizable(target, from), nil
	}
	return selectViews(probe, sizes, queries, budgetCells)
}

// selectViews runs the greedy selection over an error-aware certification
// probe.
func selectViews(probe func(target string, from []string) (bool, error), sizes map[string]int, queries []string, budgetCells int) (*ViewSelection, error) {
	candidates := make([]string, 0, len(sizes))
	for c := range sizes {
		candidates = append(candidates, c)
	}
	sort.Strings(candidates)

	sel := map[string]bool{}
	spent := 0
	remaining := append([]string(nil), queries...)
	sort.Strings(remaining)

	covered := func(selection map[string]bool, target string) ([]string, bool, error) {
		if selection[target] {
			return []string{target}, true, nil
		}
		var list []string
		for c := range selection {
			list = append(list, c)
		}
		sort.Strings(list)
		return smallestCertified(probe, target, list)
	}

	for len(remaining) > 0 {
		best := ""
		bestGain := 0
		for _, cand := range candidates {
			if sel[cand] || spent+sizes[cand] > budgetCells {
				continue
			}
			trial := cloneSet(sel)
			trial[cand] = true
			gain := 0
			for _, q := range remaining {
				_, ok, err := covered(trial, q)
				if err != nil {
					return nil, err
				}
				if ok {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && better(cand, best, sizes)) {
				best, bestGain = cand, gain
			}
		}
		if bestGain == 0 {
			break
		}
		sel[best] = true
		spent += sizes[best]
		var still []string
		for _, q := range remaining {
			_, ok, err := covered(sel, q)
			if err != nil {
				return nil, err
			}
			if !ok {
				still = append(still, q)
			}
		}
		remaining = still
	}

	out := &ViewSelection{Covered: map[string][]string{}, EstimatedCells: spent}
	for c := range sel {
		out.Materialize = append(out.Materialize, c)
	}
	sort.Strings(out.Materialize)
	seen := map[string]bool{}
	for _, q := range queries {
		if seen[q] {
			continue
		}
		seen[q] = true
		src, ok, err := covered(sel, q)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Covered[q] = src
		} else {
			out.Uncovered = append(out.Uncovered, q)
		}
	}
	sort.Strings(out.Uncovered)
	return out, nil
}

func better(cand, best string, sizes map[string]int) bool {
	if best == "" {
		return true
	}
	if sizes[cand] != sizes[best] {
		return sizes[cand] < sizes[best]
	}
	return cand < best
}

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// smallestCertified finds the smallest subset of avail certified by the
// probe for the target, smallest-first, or reports none.
func smallestCertified(probe func(string, []string) (bool, error), target string, avail []string) ([]string, bool, error) {
	for size := 1; size <= len(avail); size++ {
		set, ok, err := certifiedOfSize(probe, target, avail, nil, 0, size)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return set, true, nil
		}
	}
	return nil, false, nil
}

func certifiedOfSize(probe func(string, []string) (bool, error), target string, avail, cur []string, start, size int) ([]string, bool, error) {
	if len(cur) == size {
		ok, err := probe(target, cur)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return append([]string(nil), cur...), true, nil
		}
		return nil, false, nil
	}
	for i := start; i < len(avail); i++ {
		set, ok, err := certifiedOfSize(probe, target, avail, append(cur, avail[i]), i+1, size)
		if err != nil || ok {
			return set, ok, err
		}
	}
	return nil, false, nil
}
