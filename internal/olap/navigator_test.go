package olap_test

import (
	"strings"
	"testing"

	"olapdim/internal/core"
	"olapdim/internal/instance"
	"olapdim/internal/olap"
	"olapdim/internal/paper"
)

func navFacts() *olap.FactTable {
	f := &olap.FactTable{Name: "sales"}
	for i, s := range []string{"s1", "s2", "s3", "s4", "s5", "s6"} {
		f.Add(s, int64(10*(i+1)))
	}
	return f
}

func TestNavigatorUsesMaterializedView(t *testing.T) {
	d := paper.LocationInstance()
	f := navFacts()
	n := olap.NewNavigator(d, f, olap.InstanceOracle{D: d})
	n.Materialize(paper.City, olap.Sum)

	v, plan, err := n.Query(paper.Country, olap.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FromBase {
		t.Errorf("plan = %s, want rewrite from City", plan)
	}
	if len(plan.Sources) != 1 || plan.Sources[0] != paper.City {
		t.Errorf("sources = %v", plan.Sources)
	}
	direct := olap.Compute(d, f, paper.Country, olap.Sum)
	if diff := olap.Diff(direct, v); diff != "" {
		t.Errorf("rewritten view differs: %s", diff)
	}
}

func TestNavigatorFallsBackToBase(t *testing.T) {
	d := paper.LocationInstance()
	f := navFacts()
	n := olap.NewNavigator(d, f, olap.InstanceOracle{D: d})
	// Only State and Province materialized: Country is not summarizable
	// from any subset (the Washington exception), so the navigator must
	// scan the base facts.
	n.Materialize(paper.State, olap.Sum)
	n.Materialize(paper.Province, olap.Sum)

	v, plan, err := n.Query(paper.Country, olap.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.FromBase {
		t.Errorf("plan = %s, want base scan", plan)
	}
	direct := olap.Compute(d, f, paper.Country, olap.Sum)
	if diff := olap.Diff(direct, v); diff != "" {
		t.Errorf("base-scan view differs: %s", diff)
	}
}

func TestNavigatorExactHit(t *testing.T) {
	d := paper.LocationInstance()
	f := navFacts()
	n := olap.NewNavigator(d, f, olap.InstanceOracle{D: d})
	want := n.Materialize(paper.Country, olap.Max)
	got, plan, err := n.Query(paper.Country, olap.Max)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("exact hit did not return the stored view")
	}
	if plan.FromBase || len(plan.Sources) != 1 || plan.Sources[0] != paper.Country {
		t.Errorf("plan = %s", plan)
	}
}

func TestNavigatorPrefersSmallestCertifiedSet(t *testing.T) {
	d := paper.LocationInstance()
	f := navFacts()
	n := olap.NewNavigator(d, f, olap.InstanceOracle{D: d})
	n.Materialize(paper.State, olap.Sum)
	n.Materialize(paper.Province, olap.Sum)
	n.Materialize(paper.SaleRegion, olap.Sum)
	v, plan, err := n.Query(paper.Country, olap.Sum)
	if err != nil {
		t.Fatal(err)
	}
	// {SaleRegion} alone is certified; {State, Province} is not.
	if plan.FromBase || len(plan.Sources) != 1 || plan.Sources[0] != paper.SaleRegion {
		t.Errorf("plan = %s, want single-source SaleRegion", plan)
	}
	direct := olap.Compute(d, f, paper.Country, olap.Sum)
	if diff := olap.Diff(direct, v); diff != "" {
		t.Errorf("view differs: %s", diff)
	}
}

func TestNavigatorWithSchemaOracle(t *testing.T) {
	d := paper.LocationInstance()
	f := navFacts()
	oracle := &olap.SchemaOracle{DS: paper.LocationSch()}
	n := olap.NewNavigator(d, f, oracle)
	n.Materialize(paper.City, olap.Count)
	v, plan, err := n.Query(paper.Country, olap.Count)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FromBase {
		t.Errorf("schema oracle should certify Country from {City}: %s", plan)
	}
	direct := olap.Compute(d, f, paper.Country, olap.Count)
	if diff := olap.Diff(direct, v); diff != "" {
		t.Errorf("view differs: %s", diff)
	}
	// Second query hits the oracle cache; results must be stable.
	if _, plan2, err := n.Query(paper.Country, olap.Count); err != nil || plan2.String() != plan.String() {
		t.Errorf("cached plan differs: %s vs %s (%v)", plan2, plan, err)
	}
}

func TestSchemaOracleRejectsUncertifiable(t *testing.T) {
	oracle := &olap.SchemaOracle{DS: paper.LocationSch()}
	if oracle.Summarizable(paper.Country, []string{paper.State, paper.Province}) {
		t.Error("schema oracle certified Example 10's negative case")
	}
	if !oracle.Summarizable(paper.Country, []string{paper.City}) {
		t.Error("schema oracle rejected Example 10's positive case")
	}
}

func TestPlanString(t *testing.T) {
	p := olap.Plan{Target: "Country", FromBase: true}
	if !strings.Contains(p.String(), "base") {
		t.Errorf("plan = %s", p)
	}
	p = olap.Plan{Target: "Country", Sources: []string{"City"}}
	if !strings.Contains(p.String(), "City") {
		t.Errorf("plan = %s", p)
	}
}

func TestCoreSummarizableSchemaLevel(t *testing.T) {
	// The schema-level Example 10 results, via core.Summarizable.
	ds := paper.LocationSch()
	rep, err := core.Summarizable(ds, paper.Country, []string{paper.City}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Summarizable() {
		t.Error("Country should be schema-summarizable from {City}")
	}
	rep, err = core.Summarizable(ds, paper.Country, []string{paper.State, paper.Province}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summarizable() {
		t.Error("Country should not be schema-summarizable from {State, Province}")
	}
	// The failing bottom carries a counterexample frozen dimension.
	for _, b := range rep.PerBottom {
		if !b.Implied && b.Counterexample.Witness == nil {
			t.Error("missing counterexample witness")
		}
	}
}

// TestMultiBottomCubeViews: facts live at two bottom categories
// (Definition 6's base granularity spans all bottoms); rewriting from the
// per-branch categories is exact, from one branch it silently loses the
// other channel.
func TestMultiBottomCubeViews(t *testing.T) {
	ds, err := core.Parse(`
schema channels
edge PosSale -> Store -> Region -> All
edge WebSale -> Site -> Region
`)
	if err != nil {
		t.Fatal(err)
	}
	d := instance.New(ds.G)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddMember("Region", "east"))
	must(d.AddLink("east", instance.AllMember))
	must(d.AddMember("Store", "st1"))
	must(d.AddLink("st1", "east"))
	must(d.AddMember("Site", "webshop"))
	must(d.AddLink("webshop", "east"))
	for _, p := range []string{"p1", "p2"} {
		must(d.AddMember("PosSale", p))
		must(d.AddLink(p, "st1"))
	}
	must(d.AddMember("WebSale", "w1"))
	must(d.AddLink("w1", "webshop"))
	must(d.Validate())

	f := &olap.FactTable{}
	f.Add("p1", 10)
	f.Add("p2", 20)
	f.Add("w1", 40)

	direct := olap.Compute(d, f, "Region", olap.Sum)
	if direct.Cells["east"] != 70 {
		t.Fatalf("direct = %v", direct.Cells)
	}
	store := olap.Compute(d, f, "Store", olap.Sum)
	site := olap.Compute(d, f, "Site", olap.Sum)
	exact, err := olap.RollupFrom(d, []*olap.CubeView{store, site}, "Region")
	if err != nil {
		t.Fatal(err)
	}
	if diff := olap.Diff(direct, exact); diff != "" {
		t.Errorf("two-branch rewrite differs: %s", diff)
	}
	lossy, err := olap.RollupFrom(d, []*olap.CubeView{store}, "Region")
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Cells["east"] != 30 {
		t.Errorf("one-branch rewrite = %v, want the web channel lost (30)", lossy.Cells)
	}
	if !core.SummarizableInInstance(d, "Region", []string{"Store", "Site"}) {
		t.Error("Theorem 1 should certify {Store, Site}")
	}
	if core.SummarizableInInstance(d, "Region", []string{"Store"}) {
		t.Error("Theorem 1 should reject {Store}")
	}
}
