package olap

import (
	"fmt"
	"sort"
	"strings"

	"olapdim/internal/instance"
)

// Fact is one row of a fact table: a base member (a member of a bottom
// category of the dimension) and a measure.
type Fact struct {
	Base string
	M    int64
}

// FactTable holds facts at the base granularity of a dimension.
type FactTable struct {
	Name  string
	Facts []Fact
}

// Add appends a fact.
func (f *FactTable) Add(base string, m int64) {
	f.Facts = append(f.Facts, Fact{Base: base, M: m})
}

// CubeView is the single-category cube view CubeView(d, F, c, af(m)):
// the fact table joined with the rollup mapping to category c, grouped by
// the members of c, aggregated with af (Section 3.3).
type CubeView struct {
	Category string
	Agg      AggFunc
	// Cells maps each member of the category to its aggregate value;
	// members with no contributing facts are absent.
	Cells map[string]int64
}

// Compute evaluates the cube view directly from the fact table:
// Π_{c, af(m)}(F ⋈ Γ_{cb}^{c} d). Facts whose base member does not roll up
// to the category contribute nothing (the rollup join drops them).
func Compute(d *instance.Instance, F *FactTable, c string, af AggFunc) *CubeView {
	accs := map[string]*accumulator{}
	anc := map[string]string{} // memoized base member -> ancestor in c
	for _, fact := range F.Facts {
		target, ok := anc[fact.Base]
		if !ok {
			target, _ = d.AncestorIn(fact.Base, c)
			anc[fact.Base] = target
		}
		if target == "" {
			continue
		}
		a := accs[target]
		if a == nil {
			a = &accumulator{f: af}
			accs[target] = a
		}
		a.add(fact.M)
	}
	cells := make(map[string]int64, len(accs))
	for m, a := range accs {
		cells[m] = a.value
	}
	return &CubeView{Category: c, Agg: af, Cells: cells}
}

// RollupFrom computes the cube view for category c from the precomputed
// cube views of Definition 6:
//
//	Π_{c, af^c(m)} ( ⊎_i ( π_{c,m} Γ_{ci}^{c} d ⋈ views_i ) )
//
// Each source view is joined with the rollup mapping from its category to
// c and the partial aggregates are merged with the companion aggregate
// af^c. The result equals Compute(d, F, c, af) whenever c is summarizable
// from the source categories in d (Theorem 1); otherwise cells may double
// count or go missing — exactly the failure the paper's constraints guard
// against.
func RollupFrom(d *instance.Instance, views []*CubeView, c string) (*CubeView, error) {
	if len(views) == 0 {
		return nil, fmt.Errorf("olap: no source views")
	}
	af := views[0].Agg
	for _, v := range views[1:] {
		if v.Agg != af {
			return nil, fmt.Errorf("olap: mixed aggregates %s and %s", af, v.Agg)
		}
	}
	comb := af.Combine()
	accs := map[string]*accumulator{}
	for _, v := range views {
		rollup := d.RollupMapping(v.Category, c)
		// Deterministic iteration keeps MIN/MAX results reproducible
		// regardless of map order (they are order independent anyway, but
		// tests compare cell-by-cell).
		members := make([]string, 0, len(v.Cells))
		for m := range v.Cells {
			members = append(members, m)
		}
		sort.Strings(members)
		for _, m := range members {
			target, ok := rollup[m]
			if !ok {
				continue
			}
			a := accs[target]
			if a == nil {
				a = &accumulator{f: comb}
				accs[target] = a
			}
			a.add(v.Cells[m])
		}
	}
	cells := make(map[string]int64, len(accs))
	for m, a := range accs {
		cells[m] = a.value
	}
	return &CubeView{Category: c, Agg: af, Cells: cells}, nil
}

// Equal reports whether two cube views agree on category, aggregate and
// every cell.
func Equal(a, b *CubeView) bool {
	if a.Category != b.Category || a.Agg != b.Agg || len(a.Cells) != len(b.Cells) {
		return false
	}
	for m, v := range a.Cells {
		if w, ok := b.Cells[m]; !ok || v != w {
			return false
		}
	}
	return true
}

// Diff describes the first differing cell of two cube views, for test
// failure messages; it returns "" when the views are equal.
func Diff(a, b *CubeView) string {
	if a.Category != b.Category {
		return fmt.Sprintf("category %s vs %s", a.Category, b.Category)
	}
	if a.Agg != b.Agg {
		return fmt.Sprintf("aggregate %s vs %s", a.Agg, b.Agg)
	}
	keys := map[string]bool{}
	for m := range a.Cells {
		keys[m] = true
	}
	for m := range b.Cells {
		keys[m] = true
	}
	sorted := make([]string, 0, len(keys))
	for m := range keys {
		sorted = append(sorted, m)
	}
	sort.Strings(sorted)
	for _, m := range sorted {
		va, oka := a.Cells[m]
		vb, okb := b.Cells[m]
		switch {
		case !oka:
			return fmt.Sprintf("cell %s: missing vs %d", m, vb)
		case !okb:
			return fmt.Sprintf("cell %s: %d vs missing", m, va)
		case va != vb:
			return fmt.Sprintf("cell %s: %d vs %d", m, va, vb)
		}
	}
	return ""
}

// String renders the cube view deterministically.
func (v *CubeView) String() string {
	members := make([]string, 0, len(v.Cells))
	for m := range v.Cells {
		members = append(members, m)
	}
	sort.Strings(members)
	var b strings.Builder
	fmt.Fprintf(&b, "%s by %s:", v.Agg, v.Category)
	for _, m := range members {
		fmt.Fprintf(&b, " %s=%d", m, v.Cells[m])
	}
	return b.String()
}
