// Package olap implements the OLAP substrate of Section 1.2 and Section 3.3
// of Hurtado & Mendelzon, "OLAP Dimension Constraints" (PODS 2002): fact
// tables over the bottom categories of a dimension, distributive aggregate
// functions, single-category cube views, the Definition 6 rewriting of a
// cube view from precomputed cube views, and an aggregate navigator that
// uses summarizability to answer queries from materialized views.
package olap

import "fmt"

// AggFunc is a distributive aggregate function. A distributive aggregate
// can be computed by partitioning the input, aggregating each part, and
// combining the partial results with the companion aggregate Combine()
// (the paper's af^c): COUNT^c = SUM, and SUM, MIN, MAX combine with
// themselves.
type AggFunc int

// The distributive SQL aggregate functions (footnote 1 of the paper).
const (
	Sum AggFunc = iota
	Count
	Min
	Max
)

// Funcs lists every distributive aggregate, for exhaustive property tests.
var Funcs = []AggFunc{Sum, Count, Min, Max}

func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// Combine returns the companion aggregate af^c used to merge partial
// aggregates: COUNT^c = SUM; SUM, MIN and MAX are their own companions.
func (f AggFunc) Combine() AggFunc {
	if f == Count {
		return Sum
	}
	return f
}

// accumulator folds measures under one aggregate function.
type accumulator struct {
	f     AggFunc
	seen  bool
	value int64
}

func (a *accumulator) add(m int64) {
	switch a.f {
	case Sum:
		a.value += m
	case Count:
		a.value++
	case Min:
		if !a.seen || m < a.value {
			a.value = m
		}
	case Max:
		if !a.seen || m > a.value {
			a.value = m
		}
	}
	a.seen = true
}
