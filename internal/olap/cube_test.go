package olap

import (
	"testing"

	"olapdim/internal/paper"
)

func locationFacts() *FactTable {
	f := &FactTable{Name: "sales"}
	// One distinct measure per store so aggregation errors are visible.
	f.Add("s1", 10)
	f.Add("s2", 20)
	f.Add("s3", 40)
	f.Add("s4", 80)
	f.Add("s5", 160)
	f.Add("s6", 320)
	f.Add("s1", 5) // second fact for s1
	return f
}

func TestAggFuncCombine(t *testing.T) {
	if Count.Combine() != Sum {
		t.Error("COUNT^c must be SUM")
	}
	for _, f := range []AggFunc{Sum, Min, Max} {
		if f.Combine() != f {
			t.Errorf("%s^c must be %s", f, f)
		}
	}
	if Sum.String() != "SUM" || Count.String() != "COUNT" || Min.String() != "MIN" || Max.String() != "MAX" {
		t.Error("aggregate names wrong")
	}
	if AggFunc(42).String() != "AggFunc(42)" {
		t.Error("unknown aggregate rendering")
	}
}

func TestComputeByCountry(t *testing.T) {
	d := paper.LocationInstance()
	v := Compute(d, locationFacts(), paper.Country, Sum)
	want := map[string]int64{
		"Canada": 35,  // s1: 10+5, s2: 20
		"Mexico": 40,  // s3
		"USA":    560, // s4 + s5 + s6
	}
	if len(v.Cells) != len(want) {
		t.Fatalf("cells = %v", v.Cells)
	}
	for m, x := range want {
		if v.Cells[m] != x {
			t.Errorf("cell %s = %d, want %d", m, v.Cells[m], x)
		}
	}
}

func TestComputeCountMinMax(t *testing.T) {
	d := paper.LocationInstance()
	f := locationFacts()
	count := Compute(d, f, paper.Country, Count)
	if count.Cells["Canada"] != 3 || count.Cells["USA"] != 3 || count.Cells["Mexico"] != 1 {
		t.Errorf("count = %v", count.Cells)
	}
	min := Compute(d, f, paper.Country, Min)
	if min.Cells["Canada"] != 5 || min.Cells["USA"] != 80 {
		t.Errorf("min = %v", min.Cells)
	}
	max := Compute(d, f, paper.Country, Max)
	if max.Cells["Canada"] != 20 || max.Cells["USA"] != 320 {
		t.Errorf("max = %v", max.Cells)
	}
}

func TestComputeDropsNonRollingFacts(t *testing.T) {
	d := paper.LocationInstance()
	f := locationFacts()
	// Province: only Canadian stores roll up to Ontario.
	v := Compute(d, f, paper.Province, Sum)
	if len(v.Cells) != 1 || v.Cells["Ontario"] != 35 {
		t.Errorf("province cells = %v", v.Cells)
	}
}

func TestRollupFromCityToCountry(t *testing.T) {
	d := paper.LocationInstance()
	f := locationFacts()
	for _, af := range Funcs {
		direct := Compute(d, f, paper.Country, af)
		city := Compute(d, f, paper.City, af)
		rolled, err := RollupFrom(d, []*CubeView{city}, paper.Country)
		if err != nil {
			t.Fatal(err)
		}
		if diff := Diff(direct, rolled); diff != "" {
			t.Errorf("%s: Country from City differs: %s", af, diff)
		}
	}
}

func TestRollupFromSaleRegion(t *testing.T) {
	d := paper.LocationInstance()
	f := locationFacts()
	direct := Compute(d, f, paper.Country, Sum)
	sr := Compute(d, f, paper.SaleRegion, Sum)
	rolled, err := RollupFrom(d, []*CubeView{sr}, paper.Country)
	if err != nil {
		t.Fatal(err)
	}
	if diff := Diff(direct, rolled); diff != "" {
		t.Errorf("Country from SaleRegion differs: %s", diff)
	}
}

func TestRollupFromStateProvinceUndercounts(t *testing.T) {
	// Example 10: Country is NOT summarizable from {State, Province}; the
	// Washington store is lost by the rewriting.
	d := paper.LocationInstance()
	f := locationFacts()
	direct := Compute(d, f, paper.Country, Sum)
	st := Compute(d, f, paper.State, Sum)
	pr := Compute(d, f, paper.Province, Sum)
	rolled, err := RollupFrom(d, []*CubeView{st, pr}, paper.Country)
	if err != nil {
		t.Fatal(err)
	}
	if Equal(direct, rolled) {
		t.Fatal("expected undercount, views equal")
	}
	// Exactly Washington's s5 = 160 is missing from USA.
	if got, want := rolled.Cells["USA"], direct.Cells["USA"]-160; got != want {
		t.Errorf("USA = %d, want %d", got, want)
	}
	if rolled.Cells["Canada"] != direct.Cells["Canada"] {
		t.Error("Canada should be unaffected")
	}
}

func TestRollupFromCityAndSaleRegionDoubleCounts(t *testing.T) {
	// Using both City and SaleRegion double counts every store.
	d := paper.LocationInstance()
	f := locationFacts()
	direct := Compute(d, f, paper.Country, Sum)
	city := Compute(d, f, paper.City, Sum)
	sr := Compute(d, f, paper.SaleRegion, Sum)
	rolled, err := RollupFrom(d, []*CubeView{city, sr}, paper.Country)
	if err != nil {
		t.Fatal(err)
	}
	for m, v := range direct.Cells {
		if rolled.Cells[m] != 2*v {
			t.Errorf("cell %s = %d, want doubled %d", m, rolled.Cells[m], 2*v)
		}
	}
}

func TestRollupFromErrors(t *testing.T) {
	d := paper.LocationInstance()
	f := locationFacts()
	if _, err := RollupFrom(d, nil, paper.Country); err == nil {
		t.Error("empty views accepted")
	}
	a := Compute(d, f, paper.City, Sum)
	b := Compute(d, f, paper.State, Count)
	if _, err := RollupFrom(d, []*CubeView{a, b}, paper.Country); err == nil {
		t.Error("mixed aggregates accepted")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a := &CubeView{Category: "C", Agg: Sum, Cells: map[string]int64{"x": 1}}
	b := &CubeView{Category: "C", Agg: Sum, Cells: map[string]int64{"x": 1}}
	if !Equal(a, b) || Diff(a, b) != "" {
		t.Error("equal views misreported")
	}
	b.Cells["x"] = 2
	if Equal(a, b) || Diff(a, b) == "" {
		t.Error("unequal cells missed")
	}
	c := &CubeView{Category: "D", Agg: Sum, Cells: map[string]int64{}}
	if Equal(a, c) {
		t.Error("category mismatch missed")
	}
	e := &CubeView{Category: "C", Agg: Max, Cells: map[string]int64{"x": 1}}
	if Equal(a, e) || Diff(a, e) == "" {
		t.Error("aggregate mismatch missed")
	}
	f := &CubeView{Category: "C", Agg: Sum, Cells: map[string]int64{"y": 1}}
	if Diff(a, f) == "" {
		t.Error("missing-cell diff empty")
	}
}

func TestCubeViewString(t *testing.T) {
	v := &CubeView{Category: "C", Agg: Sum, Cells: map[string]int64{"b": 2, "a": 1}}
	if got := v.String(); got != "SUM by C: a=1 b=2" {
		t.Errorf("String = %q", got)
	}
}
