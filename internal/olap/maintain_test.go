package olap_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"olapdim/internal/olap"
	"olapdim/internal/paper"
)

func TestAddFactsMaintainsViews(t *testing.T) {
	d := paper.LocationInstance()
	f := &olap.FactTable{}
	f.Add("s1", 10)
	f.Add("s3", 20)
	n := olap.NewNavigator(d, f, olap.InstanceOracle{D: d})
	for _, af := range olap.Funcs {
		n.Materialize(paper.Country, af)
		n.Materialize(paper.City, af)
	}

	if err := n.AddFacts(olap.Fact{Base: "s5", M: 40}, olap.Fact{Base: "s1", M: 5}); err != nil {
		t.Fatal(err)
	}

	// Every maintained view equals a fresh recomputation.
	for _, af := range olap.Funcs {
		for _, c := range []string{paper.Country, paper.City} {
			got, plan, err := n.Query(c, af)
			if err != nil || plan.FromBase {
				t.Fatalf("query %s/%s: %v %v", c, af, plan, err)
			}
			want := olap.Compute(d, f, c, af)
			if diff := olap.Diff(want, got); diff != "" {
				t.Errorf("%s by %s after AddFacts: %s", af, c, diff)
			}
		}
	}
	// New cells appear (s5 is the first USA fact).
	v, _, err := n.Query(paper.Country, olap.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cells["USA"] != 40 {
		t.Errorf("USA = %d", v.Cells["USA"])
	}
}

func TestAddFactsUnknownMember(t *testing.T) {
	d := paper.LocationInstance()
	f := &olap.FactTable{}
	n := olap.NewNavigator(d, f, olap.InstanceOracle{D: d})
	if err := n.AddFacts(olap.Fact{Base: "ghost", M: 1}); err == nil {
		t.Error("unknown base member accepted")
	}
	if len(f.Facts) != 0 {
		t.Error("rejected batch partially applied")
	}
}

// TestAddFactsAgreesWithRecompute: random insertion streams leave every
// materialized view identical to recomputation from scratch, for all four
// aggregates.
func TestAddFactsAgreesWithRecompute(t *testing.T) {
	d := paper.LocationInstance()
	base := d.BaseMembers()
	cats := []string{paper.Country, paper.City, paper.SaleRegion, paper.State}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := &olap.FactTable{}
		// Seed facts before materialization.
		for i := 0; i < rng.Intn(5); i++ {
			tbl.Add(base[rng.Intn(len(base))], rng.Int63n(100)-50)
		}
		n := olap.NewNavigator(d, tbl, olap.InstanceOracle{D: d})
		for _, af := range olap.Funcs {
			for _, c := range cats {
				n.Materialize(c, af)
			}
		}
		// Stream random insertions.
		var batch []olap.Fact
		for i := 0; i < 10+rng.Intn(20); i++ {
			batch = append(batch, olap.Fact{
				Base: base[rng.Intn(len(base))],
				M:    rng.Int63n(200) - 100,
			})
		}
		if err := n.AddFacts(batch...); err != nil {
			return false
		}
		for _, af := range olap.Funcs {
			for _, c := range cats {
				got, plan, err := n.Query(c, af)
				if err != nil || plan.FromBase {
					return false
				}
				want := olap.Compute(d, tbl, c, af)
				if diff := olap.Diff(want, got); diff != "" {
					t.Logf("%s by %s diverged: %s", af, c, diff)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
