package olap

import "fmt"

// AddFacts appends new facts to the navigator's fact table and maintains
// every materialized cube view incrementally: each fact's measure folds
// into the affected cell of each view directly, which is valid for all
// four distributive aggregates under *insertions* (SUM and COUNT fold
// additively; MIN and MAX can only tighten). Deletions would invalidate
// MIN/MAX views and are not supported — rebuild with Materialize instead.
// The update cost is O(#views) per fact, independent of the table size.
func (n *Navigator) AddFacts(facts ...Fact) error {
	for _, f := range facts {
		if _, ok := n.d.Category(f.Base); !ok {
			return fmt.Errorf("olap: unknown base member %q", f.Base)
		}
	}
	for _, f := range facts {
		n.f.Facts = append(n.f.Facts, f)
		for af, views := range n.views {
			for c, v := range views {
				target, ok := n.d.AncestorIn(f.Base, c)
				if !ok {
					continue
				}
				old, exists := v.Cells[target]
				v.Cells[target] = foldCell(af, old, exists, f.M)
			}
		}
	}
	return nil
}

// foldCell merges one measure into an existing cell value under af.
func foldCell(af AggFunc, old int64, exists bool, m int64) int64 {
	switch af {
	case Sum:
		if !exists {
			return m
		}
		return old + m
	case Count:
		if !exists {
			return 1
		}
		return old + 1
	case Min:
		if !exists || m < old {
			return m
		}
		return old
	case Max:
		if !exists || m > old {
			return m
		}
		return old
	}
	return old
}
