package transform

import (
	"reflect"
	"strings"
	"testing"

	"olapdim/internal/olap"
	"olapdim/internal/paper"
)

func locationFacts() *olap.FactTable {
	f := &olap.FactTable{Name: "sales"}
	for i, s := range []string{"s1", "s2", "s3", "s4", "s5", "s6"} {
		f.Add(s, int64(1<<uint(i)))
	}
	return f
}

func TestFlattenLocation(t *testing.T) {
	d := paper.LocationInstance()
	f := Flatten(d)
	if len(f.Base) != 6 {
		t.Fatalf("base = %v", f.Base)
	}
	// Every store rolls up to City, SaleRegion and Country — those stay in
	// the hierarchy. Store itself is trivially total.
	wantHierarchy := map[string]bool{"Store": true, "City": true, "SaleRegion": true, "Country": true}
	for _, c := range f.Hierarchy {
		if !wantHierarchy[c] {
			t.Errorf("unexpected hierarchy column %s", c)
		}
		delete(wantHierarchy, c)
	}
	for c := range wantHierarchy {
		t.Errorf("missing hierarchy column %s", c)
	}
	// State and Province become attributes (only some stores reach them):
	// the flattening demotes the heterogeneous categories.
	if !reflect.DeepEqual(f.Attributes, []string{"Province", "State"}) {
		t.Errorf("attributes = %v", f.Attributes)
	}
	// Hierarchy columns are sorted finer-first (distinct-value count
	// descending, name ascending on ties): the six cities and six stores
	// precede the three countries and three sale regions.
	if !reflect.DeepEqual(f.Hierarchy, []string{"City", "Store", "Country", "SaleRegion"}) {
		t.Errorf("hierarchy order = %v", f.Hierarchy)
	}
}

func TestFlattenColumns(t *testing.T) {
	d := paper.LocationInstance()
	f := Flatten(d)
	if f.Columns["Country"]["s5"] != "USA" {
		t.Errorf("s5 country = %q", f.Columns["Country"]["s5"])
	}
	if _, ok := f.Columns["State"]["s1"]; ok {
		t.Error("Canadian store should have null State")
	}
	if f.Columns["Province"]["s1"] != "Ontario" {
		t.Errorf("s1 province = %q", f.Columns["Province"]["s1"])
	}
}

func TestFlattenCubeMatchesDirectOnTotalColumns(t *testing.T) {
	d := paper.LocationInstance()
	f := Flatten(d)
	F := locationFacts()
	for _, c := range f.Hierarchy {
		for _, af := range olap.Funcs {
			direct := olap.Compute(d, F, c, af)
			flat := f.CubeBy(F, c, af)
			if diff := olap.Diff(direct, flat); diff != "" {
				t.Errorf("%s by %s: %s", af, c, diff)
			}
		}
	}
}

func TestFlattenLosesFactsOnAttributeColumns(t *testing.T) {
	// The documented drawback: grouping by a demoted category silently
	// drops the facts with null attribute values.
	d := paper.LocationInstance()
	f := Flatten(d)
	F := locationFacts()
	flat := f.CubeBy(F, "State", olap.Count)
	total := int64(0)
	for _, v := range flat.Cells {
		total += v
	}
	if total >= int64(len(F.Facts)) {
		t.Errorf("state cube counted %d of %d facts; expected losses", total, len(F.Facts))
	}
}

func TestFunctionalDeps(t *testing.T) {
	d := paper.LocationInstance()
	f := Flatten(d)
	deps := map[string]bool{}
	for _, p := range f.FunctionalDeps() {
		deps[p[0]+">"+p[1]] = true
	}
	// Store determines everything total; City determines Country.
	for _, want := range []string{"Store>City", "Store>Country", "City>Country", "SaleRegion>Country"} {
		if !deps[want] {
			t.Errorf("missing functional dependency %s (got %v)", want, deps)
		}
	}
	// Country does not determine City.
	if deps["Country>City"] {
		t.Error("Country should not determine City")
	}
}

func TestPadWithNullsLocation(t *testing.T) {
	d := paper.LocationInstance()
	padded, rep, err := PadWithNulls(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalNulls() == 0 {
		t.Fatal("no null members inserted")
	}
	// Null members are the memory-waste drawback the paper cites; the
	// location dimension needs placeholder States and Provinces at least.
	if rep.NullMembers["State"] == 0 {
		t.Errorf("no null states inserted: %s", rep)
	}
	if rep.NullMembers["Province"] == 0 {
		t.Errorf("no null provinces inserted: %s", rep)
	}
	// Original instance untouched.
	if _, ok := d.Category(NullName("State", "SRNorth")); ok {
		t.Error("input instance mutated")
	}
	if padded.NumMembers() <= d.NumMembers() {
		t.Error("padded instance should be strictly larger")
	}
	if !strings.Contains(rep.String(), "null members") {
		t.Errorf("report rendering: %s", rep)
	}
}

func TestPadWithNullsPreservesCountryTotals(t *testing.T) {
	// Whatever placeholders are inserted, real facts must still aggregate
	// to the same country totals when the padded instance is valid for
	// the rollup in question.
	d := paper.LocationInstance()
	padded, _, err := PadWithNulls(d)
	if err != nil {
		t.Fatal(err)
	}
	F := locationFacts()
	direct := olap.Compute(d, F, "Country", olap.Sum)
	after := olap.Compute(padded, F, "Country", olap.Sum)
	if diff := olap.Diff(direct, after); diff != "" {
		t.Errorf("country totals changed: %s", diff)
	}
}

func TestPadWithNullsMakesStateTotalForStores(t *testing.T) {
	d := paper.LocationInstance()
	padded, rep, err := PadWithNulls(d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Logf("padding reported violation (restricted-class input): %v", rep.Violation)
	}
	// Every store must now roll up to some member of State (real or null).
	for _, s := range padded.Members("Store") {
		if _, ok := padded.AncestorIn(s, "State"); !ok {
			t.Errorf("store %s still has no State ancestor", s)
		}
	}
}

func TestCloneFidelity(t *testing.T) {
	d := paper.LocationInstance()
	c, err := clone(d)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != d.String() {
		t.Error("clone differs from original")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}
