package transform

import (
	"fmt"
	"sort"
	"strings"

	"olapdim/internal/instance"
	"olapdim/internal/schema"
)

// PadReport summarizes a null-padding homogenization run.
type PadReport struct {
	// NullMembers counts the placeholder members inserted, per category.
	NullMembers map[string]int
	// RelinkedEdges counts original links replaced by null chains.
	RelinkedEdges int
	// Violation is non-nil when the padded instance violates one of the
	// conditions (C1)-(C7): the Pedersen–Jensen transformation handles
	// only a restricted class of heterogeneous dimensions (Section 1.3),
	// and this field witnesses an input outside that class.
	Violation error
}

// TotalNulls returns the total number of inserted placeholder members.
func (r *PadReport) TotalNulls() int {
	n := 0
	for _, v := range r.NullMembers {
		n += v
	}
	return n
}

func (r *PadReport) String() string {
	cats := make([]string, 0, len(r.NullMembers))
	for c := range r.NullMembers {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	var parts []string
	for _, c := range cats {
		parts = append(parts, fmt.Sprintf("%s:%d", c, r.NullMembers[c]))
	}
	s := fmt.Sprintf("%d null members (%s), %d links replaced",
		r.TotalNulls(), strings.Join(parts, ", "), r.RelinkedEdges)
	if r.Violation != nil {
		s += fmt.Sprintf("; transformation left instance invalid: %v", r.Violation)
	}
	return s
}

// NullName returns the identifier of the placeholder member of category c
// joining to ancestor member join.
func NullName(c, join string) string { return "null:" + c + ":" + join }

// PadWithNulls homogenizes a dimension instance in the style of Pedersen
// and Jensen: whenever a member x of category c has no ancestor in a
// category c' directly above c, a chain of placeholder members is inserted
// from x through c' up to x's nearest real ancestor (or to all). Direct
// links that skip categories (such as the Washington -> USA shortcut of
// Figure 1) are replaced by null chains through the skipped categories.
//
// The transformation inflates the instance — the paper notes the "waste of
// memory and computational effort due to the increased sparsity" — and is
// sound only for a restricted class of dimensions: when the input is
// outside that class the padded instance violates (C1)-(C7) and the
// violation is recorded in the report rather than silently ignored.
// The input instance is not modified. The returned error reports an input
// whose members cannot even be copied (a member filed under a category the
// schema lacks); such instances are malformed before any padding starts.
func PadWithNulls(d *instance.Instance) (*instance.Instance, *PadReport, error) {
	g := d.Schema()
	out, err := clone(d)
	if err != nil {
		return nil, nil, fmt.Errorf("transform: pad: %w", err)
	}
	rep := &PadReport{NullMembers: map[string]int{}}

	// ensureNull creates (once) the placeholder member of category c that
	// rolls up to the real member join of category jc, chaining further
	// placeholders along a shortest category path from c to jc.
	var ensureNull func(c, jc, join string) string
	ensureNull = func(c, jc, join string) string {
		id := NullName(c, join)
		if _, ok := out.Category(id); ok {
			return id
		}
		if err := out.AddMember(c, id); err != nil {
			return id
		}
		rep.NullMembers[c]++
		// Link towards join: directly when c ↗ jc, otherwise through a
		// further placeholder on a shortest path.
		path := shortestPath(g, c, jc)
		if len(path) < 2 {
			return id
		}
		next := path[1]
		if next == jc {
			target := join
			if jc == schema.All {
				target = instance.AllMember
			}
			_ = out.AddLink(id, target)
			return id
		}
		mid := ensureNull(next, jc, join)
		_ = out.AddLink(id, mid)
		return id
	}

	// Pad members category by category, children before parents, so that
	// newly inserted placeholders are themselves above the frontier.
	for _, c := range bottomUpCategories(g) {
		if c == schema.All {
			continue
		}
		for _, x := range append([]string(nil), out.Members(c)...) {
			if strings.HasPrefix(x, "null:") {
				continue
			}
			for _, cp := range g.Out(c) {
				if cp == schema.All {
					continue
				}
				if _, ok := out.AncestorIn(x, cp); ok {
					continue
				}
				// Find the nearest category above cp holding a real
				// ancestor of x to join the null chain to.
				jc, join := nearestJoin(g, out, x, cp)
				n := ensureNull(cp, jc, join)
				// Replace any direct link from x that skips cp into the
				// join's chain (shortcut avoidance).
				if join != "" && out.Leq(x, join) {
					for _, p := range append([]string(nil), out.Parents(x)...) {
						pc, _ := out.Category(p)
						if p == join || (pc != "" && g.Reaches(cp, pc) && out.Leq(p, join) && p != n) {
							if isOnNullChainTarget(g, pc, cp) {
								out.RemoveLink(x, p)
								rep.RelinkedEdges++
							}
						}
					}
				}
				_ = out.AddLink(x, n)
			}
		}
	}
	rep.Violation = out.Validate()
	return out, rep, nil
}

// isOnNullChainTarget reports whether a direct parent in category pc would
// duplicate the inserted chain through cp (pc strictly above cp).
func isOnNullChainTarget(g *schema.Schema, pc, cp string) bool {
	return pc != "" && pc != cp && g.Reaches(cp, pc)
}

// nearestJoin finds the category above cp (in schema distance) in which x
// already has a real ancestor, returning (All, "") when none exists.
func nearestJoin(g *schema.Schema, d *instance.Instance, x, cp string) (string, string) {
	type item struct {
		cat  string
		dist int
	}
	queue := []item{{cp, 0}}
	seen := map[string]bool{cp: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.cat != cp {
			if y, ok := d.AncestorIn(x, cur.cat); ok {
				return cur.cat, y
			}
		}
		for _, p := range g.Out(cur.cat) {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, item{p, cur.dist + 1})
			}
		}
	}
	return schema.All, ""
}

// shortestPath returns a shortest category path from c to target in g.
func shortestPath(g *schema.Schema, c, target string) []string {
	if c == target {
		return []string{c}
	}
	prev := map[string]string{}
	seen := map[string]bool{c: true}
	queue := []string{c}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range g.Out(cur) {
			if seen[p] {
				continue
			}
			seen[p] = true
			prev[p] = cur
			if p == target {
				var path []string
				for at := target; ; at = prev[at] {
					path = append([]string{at}, path...)
					if at == c {
						return path
					}
				}
			}
			queue = append(queue, p)
		}
	}
	return nil
}

// clone deep-copies a dimension instance. Copying a member or link of a
// well-formed instance into a fresh instance over the same schema cannot
// fail, so an error here means the input was malformed.
func clone(d *instance.Instance) (*instance.Instance, error) {
	out := instance.New(d.Schema())
	for _, c := range d.Schema().Categories() {
		if c == schema.All {
			continue
		}
		for _, x := range d.Members(c) {
			if err := out.AddMember(c, x); err != nil {
				return nil, err
			}
			if n := d.Name(x); n != x {
				if err := out.SetName(x, n); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, x := range d.AllMembers() {
		for _, p := range d.Parents(x) {
			if err := out.AddLink(x, p); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// bottomUpCategories orders categories children-first for acyclic schemas;
// for schemas with cycles it falls back to insertion order.
func bottomUpCategories(g *schema.Schema) []string {
	if g.HasCycle() {
		return g.Categories()
	}
	visited := map[string]bool{}
	var out []string
	var visit func(c string)
	visit = func(c string) {
		if visited[c] {
			return
		}
		visited[c] = true
		for _, below := range g.In(c) {
			visit(below)
		}
		out = append(out, c)
	}
	for _, c := range g.Categories() {
		visit(c)
	}
	return out
}
