// Package transform implements the two related-work baselines discussed in
// Section 1.3 of Hurtado & Mendelzon, "OLAP Dimension Constraints"
// (PODS 2002):
//
//   - the dimensional-normal-form flattening of Lehner, Albrecht and
//     Wedekind, which turns a heterogeneous dimension into a flat
//     denormalized dimension table, demoting the categories that cause
//     heterogeneity to attributes outside the hierarchy; and
//   - the null-member padding of Pedersen and Jensen, which homogenizes a
//     dimension by inserting placeholder members for missing parents.
//
// Both transformations trade away information or space that dimension
// constraints preserve; experiment E9 quantifies the trade on the paper's
// location dimension.
package transform

import (
	"sort"

	"olapdim/internal/instance"
	"olapdim/internal/olap"
	"olapdim/internal/schema"
)

// FlatDimension is a dimension in dimensional normal form: a single
// denormalized table keyed by base member, one column per category.
// Hierarchy columns are total (every base member has a value); attribute
// columns are the categories that caused heterogeneity, kept as nullable
// attributes outside the hierarchy, exactly as Lehner et al. prescribe.
type FlatDimension struct {
	// Base lists the base members (rows), sorted.
	Base []string
	// Columns maps category -> base member -> ancestor member; missing
	// entries are nulls.
	Columns map[string]map[string]string
	// Hierarchy lists the total columns (the flattened homogeneous
	// hierarchy), sorted by increasing member count (finer first).
	Hierarchy []string
	// Attributes lists the heterogeneous categories demoted to nullable
	// attributes, sorted.
	Attributes []string
}

// Flatten computes the dimensional-normal-form flattening of a dimension
// instance: each category becomes a column of the base-member table; the
// categories reached by every base member form the retained homogeneous
// hierarchy, the rest become attributes.
func Flatten(d *instance.Instance) *FlatDimension {
	base := d.BaseMembers()
	f := &FlatDimension{
		Base:    base,
		Columns: map[string]map[string]string{},
	}
	for _, c := range d.Schema().SortedCategories() {
		if c == schema.All {
			continue
		}
		col := map[string]string{}
		for _, x := range base {
			if y, ok := d.AncestorIn(x, c); ok {
				col[x] = y
			}
		}
		if len(col) == 0 {
			continue
		}
		f.Columns[c] = col
		if len(col) == len(base) {
			f.Hierarchy = append(f.Hierarchy, c)
		} else {
			f.Attributes = append(f.Attributes, c)
		}
	}
	sort.Slice(f.Hierarchy, func(i, j int) bool {
		ni, nj := f.distinct(f.Hierarchy[i]), f.distinct(f.Hierarchy[j])
		if ni != nj {
			return ni > nj
		}
		return f.Hierarchy[i] < f.Hierarchy[j]
	})
	sort.Strings(f.Attributes)
	return f
}

// distinct counts the distinct values of a column.
func (f *FlatDimension) distinct(c string) int {
	seen := map[string]bool{}
	for _, v := range f.Columns[c] {
		seen[v] = true
	}
	return len(seen)
}

// CubeBy aggregates a fact table grouped by the column of category c,
// the flat-table analogue of a cube view. Facts whose base member has a
// null in the column are dropped, which is how flattening "limits
// summarizability in the dimension instance" (Section 1.3): attribute
// columns silently lose facts.
func (f *FlatDimension) CubeBy(F *olap.FactTable, c string, af olap.AggFunc) *olap.CubeView {
	col := f.Columns[c]
	accs := map[string]*cell{}
	for _, fact := range F.Facts {
		v, ok := col[fact.Base]
		if !ok {
			continue
		}
		a := accs[v]
		if a == nil {
			a = &cell{}
			accs[v] = a
		}
		a.add(af, fact.M)
	}
	cells := make(map[string]int64, len(accs))
	for m, a := range accs {
		cells[m] = a.value
	}
	return &olap.CubeView{Category: c, Agg: af, Cells: cells}
}

type cell struct {
	seen  bool
	value int64
}

func (a *cell) add(af olap.AggFunc, m int64) {
	switch af {
	case olap.Sum:
		a.value += m
	case olap.Count:
		a.value++
	case olap.Min:
		if !a.seen || m < a.value {
			a.value = m
		}
	case olap.Max:
		if !a.seen || m > a.value {
			a.value = m
		}
	}
	a.seen = true
}

// FunctionalDeps returns the pairs (c1, c2) of hierarchy columns where the
// value of c1 determines the value of c2 — the only summarizable pairs the
// flattened dimension retains.
func (f *FlatDimension) FunctionalDeps() [][2]string {
	var out [][2]string
	for _, c1 := range f.Hierarchy {
		for _, c2 := range f.Hierarchy {
			if c1 == c2 {
				continue
			}
			if f.determines(c1, c2) {
				out = append(out, [2]string{c1, c2})
			}
		}
	}
	return out
}

func (f *FlatDimension) determines(c1, c2 string) bool {
	seen := map[string]string{}
	for _, x := range f.Base {
		v1, v2 := f.Columns[c1][x], f.Columns[c2][x]
		if prev, ok := seen[v1]; ok && prev != v2 {
			return false
		}
		seen[v1] = v2
	}
	return true
}
