// Package schema implements hierarchy schemas as defined in Section 2.1 of
// Hurtado & Mendelzon, "OLAP Dimension Constraints" (PODS 2002).
//
// A hierarchy schema is a directed graph G = (C, ↗) over a finite set of
// categories containing the distinguished category All, such that every
// category reaches All and no category has a self-loop. Unlike classical
// dimension models, hierarchy schemas may have multiple bottom categories,
// cycles, and shortcuts (Definition 1 and Example 4 of the paper).
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// All is the distinguished top category present in every hierarchy schema.
// Its single member in any dimension instance is the member "all"
// (condition C4 of the paper).
const All = "All"

// Schema is a hierarchy schema G = (C, ↗). The zero value is not useful;
// construct schemas with New and AddEdge, then call Validate (or use
// MustNew in tests).
type Schema struct {
	name string

	// categories in insertion order; All is always present.
	cats []string
	// index of each category in cats.
	index map[string]int
	// out[c] lists the categories c' with c ↗ c', in insertion order.
	out map[string][]string
	// in[c] lists the categories c' with c' ↗ c, in insertion order.
	in map[string][]string
}

// New returns an empty hierarchy schema containing only the category All.
// The name is used for diagnostics only and may be empty.
func New(name string) *Schema {
	s := &Schema{
		name:  name,
		index: make(map[string]int),
		out:   make(map[string][]string),
		in:    make(map[string][]string),
	}
	s.addCategory(All)
	return s
}

// Name returns the schema's diagnostic name.
func (s *Schema) Name() string { return s.name }

func (s *Schema) addCategory(c string) {
	if _, ok := s.index[c]; ok {
		return
	}
	s.index[c] = len(s.cats)
	s.cats = append(s.cats, c)
}

// AddCategory adds category c to the schema. Adding an existing category is
// a no-op. An error is returned for an invalid category name.
func (s *Schema) AddCategory(c string) error {
	if err := CheckName(c); err != nil {
		return err
	}
	s.addCategory(c)
	return nil
}

// CheckName reports whether c is a legal category name:
// a letter followed by letters and digits.
func CheckName(c string) error {
	if c == "" {
		return fmt.Errorf("schema: empty category name")
	}
	for i, r := range c {
		isLetter := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		isDigit := r >= '0' && r <= '9'
		if i == 0 && !isLetter {
			return fmt.Errorf("schema: category %q must start with a letter", c)
		}
		if !isLetter && !isDigit {
			return fmt.Errorf("schema: category %q contains invalid character %q", c, r)
		}
	}
	return nil
}

// AddEdge records c ↗ c', adding both categories if absent.
// Self-loops are rejected (Definition 1(b)); edges out of All are rejected
// since All is the unique top. Duplicate edges are ignored.
func (s *Schema) AddEdge(c, parent string) error {
	if err := CheckName(c); err != nil {
		return err
	}
	if err := CheckName(parent); err != nil {
		return err
	}
	if c == parent {
		return fmt.Errorf("schema: self-loop on category %q", c)
	}
	if c == All {
		return fmt.Errorf("schema: category All cannot have parents")
	}
	s.addCategory(c)
	s.addCategory(parent)
	for _, p := range s.out[c] {
		if p == parent {
			return nil
		}
	}
	s.out[c] = append(s.out[c], parent)
	s.in[parent] = append(s.in[parent], c)
	return nil
}

// HasCategory reports whether c is a category of the schema.
func (s *Schema) HasCategory(c string) bool {
	_, ok := s.index[c]
	return ok
}

// HasEdge reports whether c ↗ c' is an edge of the schema.
func (s *Schema) HasEdge(c, parent string) bool {
	for _, p := range s.out[c] {
		if p == parent {
			return true
		}
	}
	return false
}

// Categories returns the categories in insertion order (All first).
// The returned slice must not be modified.
func (s *Schema) Categories() []string { return s.cats }

// SortedCategories returns the categories in lexicographic order.
func (s *Schema) SortedCategories() []string {
	out := append([]string(nil), s.cats...)
	sort.Strings(out)
	return out
}

// NumCategories returns |C|, including All.
func (s *Schema) NumCategories() int { return len(s.cats) }

// NumEdges returns |↗|.
func (s *Schema) NumEdges() int {
	n := 0
	for _, ps := range s.out {
		n += len(ps)
	}
	return n
}

// Out returns the categories directly above c (the targets of c's edges)
// in insertion order. The returned slice must not be modified.
func (s *Schema) Out(c string) []string { return s.out[c] }

// In returns the categories directly below c in insertion order.
// The returned slice must not be modified.
func (s *Schema) In(c string) []string { return s.in[c] }

// Bottoms returns the bottom categories: those with no incoming edges,
// in insertion order. All is excluded unless it is isolated, which Validate
// rejects anyway for schemas with other categories.
func (s *Schema) Bottoms() []string {
	var out []string
	for _, c := range s.cats {
		if len(s.in[c]) == 0 && c != All {
			out = append(out, c)
		}
	}
	return out
}

// Reaches reports whether c ↗* c' (reflexive-transitive closure).
func (s *Schema) Reaches(c, target string) bool {
	if !s.HasCategory(c) || !s.HasCategory(target) {
		return false
	}
	if c == target {
		return true
	}
	seen := map[string]bool{c: true}
	stack := []string{c}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range s.out[cur] {
			if p == target {
				return true
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// ReachableFrom returns the set of categories reachable from c, including c.
func (s *Schema) ReachableFrom(c string) map[string]bool {
	seen := map[string]bool{}
	if !s.HasCategory(c) {
		return seen
	}
	seen[c] = true
	stack := []string{c}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range s.out[cur] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// Validate checks Definition 1: every category reaches All, and no category
// has a self-loop (enforced structurally by AddEdge, re-checked here).
func (s *Schema) Validate() error {
	for _, c := range s.cats {
		for _, p := range s.out[c] {
			if p == c {
				return fmt.Errorf("schema %s: self-loop on %q", s.name, c)
			}
		}
		if c == All {
			continue
		}
		if !s.Reaches(c, All) {
			return fmt.Errorf("schema %s: category %q does not reach All (Definition 1(a))", s.name, c)
		}
	}
	return nil
}

// IsShortcut reports whether the pair (c, c') forms a shortcut: c ↗ c' and
// there is a path from c to c' passing through some third category.
func (s *Schema) IsShortcut(c, parent string) bool {
	if !s.HasEdge(c, parent) {
		return false
	}
	// Look for a path c -> x -> ... -> parent with x != parent.
	for _, x := range s.out[c] {
		if x == parent {
			continue
		}
		if s.Reaches(x, parent) {
			return true
		}
	}
	return false
}

// Shortcuts returns all shortcut pairs (c, c') of the schema, ordered by
// category insertion order.
func (s *Schema) Shortcuts() [][2]string {
	var out [][2]string
	for _, c := range s.cats {
		for _, p := range s.out[c] {
			if s.IsShortcut(c, p) {
				out = append(out, [2]string{c, p})
			}
		}
	}
	return out
}

// HasCycle reports whether the schema graph contains a directed cycle.
// Cycles are legal in hierarchy schemas (Example 4 of the paper) but cannot
// appear in dimension instances or subhierarchies.
func (s *Schema) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(s.cats))
	var visit func(c string) bool
	visit = func(c string) bool {
		color[c] = gray
		for _, p := range s.out[c] {
			switch color[p] {
			case gray:
				return true
			case white:
				if visit(p) {
					return true
				}
			}
		}
		color[c] = black
		return false
	}
	for _, c := range s.cats {
		if color[c] == white && visit(c) {
			return true
		}
	}
	return false
}

// SimplePaths returns all simple paths (no repeated category) from c to
// target, each path including both endpoints. Paths are returned in
// depth-first order following edge insertion order. If c == target the
// single zero-length path [c] is returned.
func (s *Schema) SimplePaths(c, target string) [][]string {
	if !s.HasCategory(c) || !s.HasCategory(target) {
		return nil
	}
	if c == target {
		return [][]string{{c}}
	}
	var out [][]string
	onPath := map[string]bool{c: true}
	path := []string{c}
	var dfs func(cur string)
	dfs = func(cur string) {
		for _, p := range s.out[cur] {
			if onPath[p] {
				continue
			}
			path = append(path, p)
			if p == target {
				out = append(out, append([]string(nil), path...))
			} else {
				onPath[p] = true
				dfs(p)
				delete(onPath, p)
			}
			path = path[:len(path)-1]
		}
	}
	dfs(c)
	return out
}

// IsSimplePath reports whether cats is a simple path in the schema:
// len >= 1, no repeated category, and consecutive categories are edges.
func (s *Schema) IsSimplePath(cats []string) bool {
	if len(cats) == 0 {
		return false
	}
	seen := make(map[string]bool, len(cats))
	for i, c := range cats {
		if !s.HasCategory(c) || seen[c] {
			return false
		}
		seen[c] = true
		if i > 0 && !s.HasEdge(cats[i-1], c) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := New(s.name)
	for _, cat := range s.cats {
		c.addCategory(cat)
	}
	for cat, ps := range s.out {
		c.out[cat] = append([]string(nil), ps...)
	}
	for cat, ps := range s.in {
		c.in[cat] = append([]string(nil), ps...)
	}
	return c
}

// String renders the schema as a deterministic multi-line description.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s\n", s.name)
	cats := s.SortedCategories()
	fmt.Fprintf(&b, "categories %s\n", strings.Join(cats, " "))
	for _, c := range cats {
		ps := append([]string(nil), s.out[c]...)
		sort.Strings(ps)
		for _, p := range ps {
			fmt.Fprintf(&b, "edge %s -> %s\n", c, p)
		}
	}
	return b.String()
}
