package schema

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// build constructs a schema from edge pairs, failing the test on error.
func build(t *testing.T, edges ...[2]string) *Schema {
	t.Helper()
	g := New("test")
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%s, %s): %v", e[0], e[1], err)
		}
	}
	return g
}

func TestNewContainsAll(t *testing.T) {
	g := New("empty")
	if !g.HasCategory(All) {
		t.Fatal("new schema must contain All")
	}
	if g.NumCategories() != 1 {
		t.Fatalf("NumCategories = %d, want 1", g.NumCategories())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty schema should validate: %v", err)
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New("t")
	if err := g.AddEdge("A", "A"); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddEdgeRejectsEdgeFromAll(t *testing.T) {
	g := New("t")
	if err := g.AddEdge(All, "A"); err == nil {
		t.Fatal("edge out of All accepted")
	}
}

func TestCheckName(t *testing.T) {
	valid := []string{"A", "Store", "C2", "saleRegion9"}
	for _, c := range valid {
		if err := CheckName(c); err != nil {
			t.Errorf("CheckName(%q) = %v, want nil", c, err)
		}
	}
	invalid := []string{"", "2C", "a_b", "a-b", "a b", "a.b", "ü"}
	for _, c := range invalid {
		if err := CheckName(c); err == nil {
			t.Errorf("CheckName(%q) accepted", c)
		}
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	g := build(t, [2]string{"A", All}, [2]string{"A", All})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestValidateRequiresReachAll(t *testing.T) {
	// B -> C -> B is a cycle not reaching All.
	g := New("t")
	if err := g.AddEdge("B", "C"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("C", "B"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("categories not reaching All accepted")
	}
	if err := g.AddEdge("C", All); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("after adding C -> All: %v", err)
	}
}

func TestBottoms(t *testing.T) {
	g := build(t,
		[2]string{"A", "B"}, [2]string{"B", All},
		[2]string{"X", "B"},
	)
	got := g.Bottoms()
	want := []string{"A", "X"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Bottoms = %v, want %v", got, want)
	}
}

func TestReaches(t *testing.T) {
	g := build(t,
		[2]string{"A", "B"}, [2]string{"B", "C"}, [2]string{"C", All},
		[2]string{"D", All},
	)
	cases := []struct {
		from, to string
		want     bool
	}{
		{"A", "A", true},
		{"A", "B", true},
		{"A", "C", true},
		{"A", All, true},
		{"B", "A", false},
		{"A", "D", false},
		{"D", All, true},
		{"nope", "A", false},
		{"A", "nope", false},
	}
	for _, c := range cases {
		if got := g.Reaches(c.from, c.to); got != c.want {
			t.Errorf("Reaches(%s, %s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestReachableFrom(t *testing.T) {
	g := build(t, [2]string{"A", "B"}, [2]string{"B", All}, [2]string{"C", All})
	got := g.ReachableFrom("A")
	for _, c := range []string{"A", "B", All} {
		if !got[c] {
			t.Errorf("ReachableFrom(A) missing %s", c)
		}
	}
	if got["C"] {
		t.Error("ReachableFrom(A) should not contain C")
	}
}

func TestShortcuts(t *testing.T) {
	// A -> B -> C plus the shortcut A -> C.
	g := build(t,
		[2]string{"A", "B"}, [2]string{"B", "C"}, [2]string{"C", All},
		[2]string{"A", "C"},
	)
	if !g.IsShortcut("A", "C") {
		t.Error("A -> C should be a shortcut")
	}
	if g.IsShortcut("A", "B") {
		t.Error("A -> B should not be a shortcut")
	}
	if g.IsShortcut("B", "C") {
		t.Error("B -> C should not be a shortcut")
	}
	sc := g.Shortcuts()
	if len(sc) != 1 || sc[0] != [2]string{"A", "C"} {
		t.Errorf("Shortcuts = %v, want [[A C]]", sc)
	}
}

func TestHasCycle(t *testing.T) {
	acyclic := build(t, [2]string{"A", "B"}, [2]string{"B", All})
	if acyclic.HasCycle() {
		t.Error("acyclic schema reported cyclic")
	}
	// Example 4 of the paper: SaleDistrict <-> City.
	cyclic := build(t,
		[2]string{"SaleDistrict", "City"},
		[2]string{"City", "SaleDistrict"},
		[2]string{"City", All},
	)
	if !cyclic.HasCycle() {
		t.Error("cyclic schema reported acyclic")
	}
	if err := cyclic.Validate(); err != nil {
		t.Errorf("cycles are legal in hierarchy schemas: %v", err)
	}
}

func TestSimplePaths(t *testing.T) {
	g := build(t,
		[2]string{"A", "B"}, [2]string{"A", "C"},
		[2]string{"B", "D"}, [2]string{"C", "D"},
		[2]string{"D", All},
	)
	paths := g.SimplePaths("A", "D")
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	keys := map[string]bool{}
	for _, p := range paths {
		keys[strings.Join(p, ">")] = true
	}
	if !keys["A>B>D"] || !keys["A>C>D"] {
		t.Errorf("paths = %v", paths)
	}
	if got := g.SimplePaths("A", "A"); len(got) != 1 || len(got[0]) != 1 {
		t.Errorf("SimplePaths(A, A) = %v, want [[A]]", got)
	}
	if got := g.SimplePaths("D", "A"); got != nil {
		t.Errorf("SimplePaths(D, A) = %v, want nil", got)
	}
}

func TestSimplePathsWithCycle(t *testing.T) {
	g := build(t,
		[2]string{"A", "B"}, [2]string{"B", "A"},
		[2]string{"B", "C"}, [2]string{"C", All},
	)
	paths := g.SimplePaths("A", "C")
	if len(paths) != 1 {
		t.Fatalf("got %v, want single path A>B>C", paths)
	}
}

func TestIsSimplePath(t *testing.T) {
	g := build(t, [2]string{"A", "B"}, [2]string{"B", "C"}, [2]string{"C", All})
	cases := []struct {
		path []string
		want bool
	}{
		{[]string{"A", "B", "C"}, true},
		{[]string{"A"}, true},
		{[]string{"A", "C"}, false},
		{[]string{"A", "B", "A"}, false}, // repeated category and no edge
		{[]string{}, false},
		{[]string{"A", "nope"}, false},
	}
	for _, c := range cases {
		if got := g.IsSimplePath(c.path); got != c.want {
			t.Errorf("IsSimplePath(%v) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := build(t, [2]string{"A", "B"}, [2]string{"B", All})
	c := g.Clone()
	if err := c.AddEdge("A", All); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge("A", All) {
		t.Error("mutating clone affected original")
	}
	if !c.HasEdge("A", "B") {
		t.Error("clone lost edge")
	}
}

func TestStringDeterministic(t *testing.T) {
	g := build(t, [2]string{"B", All}, [2]string{"A", "B"})
	want := "schema test\ncategories A All B\nedge A -> B\nedge B -> All\n"
	if got := g.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// randomSchema builds a random layered schema for property tests.
func randomSchema(rng *rand.Rand) *Schema {
	g := New("prop")
	n := 2 + rng.Intn(6)
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	// Every category gets an edge to a later category or All.
	for i, c := range names {
		later := names[i+1:]
		if len(later) == 0 || rng.Intn(3) == 0 {
			g.AddEdge(c, All)
			continue
		}
		g.AddEdge(c, later[rng.Intn(len(later))])
		// Extra random edges.
		for _, p := range later {
			if rng.Intn(4) == 0 {
				g.AddEdge(c, p)
			}
		}
	}
	return g
}

// TestReachesAgreesWithSimplePaths: c reaches c' (c != c') iff there is at
// least one simple path between them.
func TestReachesAgreesWithSimplePaths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomSchema(r)
		if err := g.Validate(); err != nil {
			return false
		}
		cats := g.Categories()
		for _, a := range cats {
			for _, b := range cats {
				if a == b {
					continue
				}
				hasPath := len(g.SimplePaths(a, b)) > 0
				if g.Reaches(a, b) != hasPath {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestShortcutIffMultiplePathStructure: every reported shortcut pair has a
// direct edge and an alternative longer simple path.
func TestShortcutProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomSchema(r)
		for _, sc := range g.Shortcuts() {
			if !g.HasEdge(sc[0], sc[1]) {
				return false
			}
			longer := false
			for _, p := range g.SimplePaths(sc[0], sc[1]) {
				if len(p) > 2 {
					longer = true
				}
			}
			if !longer {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
