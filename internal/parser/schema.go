package parser

import (
	"fmt"
	"strings"

	"olapdim/internal/constraint"
	"olapdim/internal/schema"
)

// ParseSchema parses a line-oriented dimension schema description:
//
//	schema <name>                 # optional, at most once
//	category <c> [<c> ...]        # optional; edges imply categories
//	edge <c> -> <c'> [-> <c''>]   # chains add one edge per arrow
//	constraint <expression>
//	# comment
//
// The hierarchy schema and every constraint are validated; the constraints
// keep their source order. Package core wraps this as core.Parse, returning
// a core.DimensionSchema.
func ParseSchema(src string) (*schema.Schema, []constraint.Expr, error) {
	g := schema.New("")
	var sigma []constraint.Expr
	name := ""
	sawDecl := map[string]bool{}

	lines := strings.Split(src, "\n")
	offset := 0
	for _, raw := range lines {
		lineStart := offset
		offset += len(raw) + 1
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		word, rest := splitWord(line)
		fail := func(msg string, args ...any) error {
			return &Error{Src: src, Pos: lineStart, Msg: fmt.Sprintf(msg, args...)}
		}
		switch word {
		case "schema":
			if sawDecl["schema"] {
				return nil, nil, fail("duplicate schema declaration")
			}
			sawDecl["schema"] = true
			name = strings.TrimSpace(rest)
			if name == "" {
				return nil, nil, fail("schema declaration needs a name")
			}
		case "category":
			for _, c := range strings.Fields(rest) {
				if err := g.AddCategory(c); err != nil {
					return nil, nil, fail("%v", err)
				}
			}
		case "edge":
			cats := strings.Split(rest, "->")
			if len(cats) < 2 {
				return nil, nil, fail("edge declaration needs at least one '->'")
			}
			for i := range cats {
				cats[i] = strings.TrimSpace(cats[i])
			}
			for i := 1; i < len(cats); i++ {
				if err := g.AddEdge(cats[i-1], cats[i]); err != nil {
					return nil, nil, fail("%v", err)
				}
			}
		case "constraint":
			e, err := ParseConstraint(rest)
			if err != nil {
				return nil, nil, err
			}
			sigma = append(sigma, e)
		default:
			return nil, nil, fail("unknown declaration %q (want schema, category, edge or constraint)", word)
		}
	}

	// Rebuild with the declared name so diagnostics mention it.
	if name != "" {
		named := schema.New(name)
		for _, c := range g.Categories() {
			if err := named.AddCategory(c); err != nil {
				return nil, nil, err
			}
		}
		for _, c := range g.Categories() {
			for _, p := range g.Out(c) {
				if err := named.AddEdge(c, p); err != nil {
					return nil, nil, err
				}
			}
		}
		g = named
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	for _, e := range sigma {
		if err := constraint.Validate(e, g); err != nil {
			return nil, nil, err
		}
	}
	return g, sigma, nil
}

func splitWord(line string) (word, rest string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return line, ""
	}
	return line[:i], strings.TrimSpace(line[i:])
}

// FormatSchema renders a hierarchy schema and constraint set in the syntax
// accepted by ParseSchema, suitable for round-tripping.
func FormatSchema(g *schema.Schema, sigma []constraint.Expr) string {
	var b strings.Builder
	if g.Name() != "" {
		fmt.Fprintf(&b, "schema %s\n", g.Name())
	}
	fmt.Fprintf(&b, "category %s\n", strings.Join(g.SortedCategories(), " "))
	for _, c := range g.SortedCategories() {
		for _, p := range g.Out(c) {
			fmt.Fprintf(&b, "edge %s -> %s\n", c, p)
		}
	}
	for _, e := range sigma {
		fmt.Fprintf(&b, "constraint %s\n", e)
	}
	return b.String()
}
