package parser

import (
	"strings"
	"testing"

	"olapdim/internal/schema"
)

const locationSrc = `
# The locationSch schema of Figure 3 of the paper.
schema locationSch
edge Store -> City -> State -> SaleRegion -> Country -> All
edge Store -> SaleRegion
edge City -> Province -> SaleRegion
edge City -> Country
edge State -> Country

constraint Store_City
constraint Store.SaleRegion
constraint City="Washington" <-> City_Country
constraint City="Washington" -> City.Country="USA"
constraint State.Country="Mexico" | State.Country="USA"
constraint State.Country="Mexico" <-> State_SaleRegion
constraint Province.Country="Canada"
`

func TestParseSchemaLocation(t *testing.T) {
	g, sigma, err := ParseSchema(locationSrc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "locationSch" {
		t.Errorf("name = %q", g.Name())
	}
	if n := g.NumCategories(); n != 7 {
		t.Errorf("categories = %d, want 7", n)
	}
	if n := g.NumEdges(); n != 10 {
		t.Errorf("edges = %d, want 10", n)
	}
	if len(sigma) != 7 {
		t.Errorf("constraints = %d, want 7", len(sigma))
	}
	if !g.HasEdge("Store", "City") || !g.HasEdge("Country", schema.All) {
		t.Error("missing chained edges")
	}
	if !g.IsShortcut("City", "Country") {
		t.Error("City -> Country should be a shortcut (Example 3)")
	}
}

func TestParseSchemaCategoryLine(t *testing.T) {
	g, _, err := ParseSchema("category A B\nedge A -> All\nedge B -> All\n")
	if err != nil {
		t.Fatal(err)
	}
	if n := g.NumCategories(); n != 3 {
		t.Errorf("categories = %d, want 3", n)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"edge A", "at least one '->'"},
		{"frobnicate A", "unknown declaration"},
		{"schema a\nschema b\nedge A -> All", "duplicate schema"},
		{"schema", "needs a name"},
		{"edge A -> A", "self-loop"},
		{"edge A -> B", "does not reach All"},
		{"edge A -> All\nconstraint B_C", "not a simple path"},
		{"edge A -> All\nconstraint A_", "identifier"},
		{"category 9bad\nedge A -> All", "must start with a letter"},
	}
	for _, c := range cases {
		_, _, err := ParseSchema(c.src)
		if err == nil {
			t.Errorf("ParseSchema(%q) accepted", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSchema(%q) error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestFormatSchemaRoundTrip(t *testing.T) {
	g, sigma, err := ParseSchema(locationSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatSchema(g, sigma)
	g2, sigma2, err := ParseSchema(text)
	if err != nil {
		t.Fatalf("re-parsing formatted schema: %v\n%s", err, text)
	}
	if g2.NumCategories() != g.NumCategories() || g2.NumEdges() != g.NumEdges() {
		t.Error("round trip changed the hierarchy schema")
	}
	if len(sigma2) != len(sigma) {
		t.Errorf("round trip changed constraint count: %d vs %d", len(sigma2), len(sigma))
	}
	for i := range sigma {
		if sigma[i].String() != sigma2[i].String() {
			t.Errorf("constraint %d changed: %s vs %s", i, sigma[i], sigma2[i])
		}
	}
}

func TestParseSchemaCommentsAndBlanks(t *testing.T) {
	src := "\n\n# comment only\nedge A -> All # trailing\n\n"
	g, _, err := ParseSchema(src)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("A", schema.All) {
		t.Error("edge lost")
	}
}
