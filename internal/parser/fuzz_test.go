package parser

import (
	"strings"
	"testing"

	"olapdim/internal/constraint"
)

// FuzzParseConstraint checks that the constraint parser never panics and
// that anything it accepts round-trips through the printer.
func FuzzParseConstraint(f *testing.F) {
	seeds := []string{
		"Store_City",
		"Store_City_Province",
		"Store.SaleRegion",
		"Store.City.Country",
		`Store.Country="Canada"`,
		`City="Washington" <-> City_Country`,
		"Product.Price < 100 <-> Product_Discount",
		"one(A_B, A_C, A_D)",
		"!(A_B & A_C) | A_D ^ A_B -> A_C",
		"true & false",
		"A.B >= -19.5",
		"((((A_B))))",
		"one(one(A_B), !A_B)",
		"A_B -> A_B -> A_B",
		"_ . = < > <= >= <-> ->",
		`"unclosed`,
		"# only a comment",
		"A..B",
		"0one(A_B)",
		strings.Repeat("(", 50) + "A_B" + strings.Repeat(")", 50),
		strings.Repeat("!A_B & ", 30) + "A_B",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseConstraint(src)
		if err != nil {
			return
		}
		text := e.String()
		e2, err := ParseConstraint(text)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, text, err)
		}
		if !constraint.Equal(e, e2) {
			t.Fatalf("round trip changed %q: %q vs %q", src, text, e2.String())
		}
	})
}

// FuzzParseSchema checks that the schema parser never panics and that any
// accepted schema re-parses from its formatted rendering.
func FuzzParseSchema(f *testing.F) {
	seeds := []string{
		"edge A -> All",
		"schema s\nedge A -> B -> All\nconstraint A_B",
		"category X Y\nedge X -> All\nedge Y -> All",
		"edge A -> B\nedge B -> A\nedge B -> All",
		"# nothing",
		"schema\n",
		"edge ->",
		"edge A - > B",
		"constraint A_B\nedge A -> B -> All",
		"edge A -> B -> C -> D -> All\nconstraint one(A_B)\nconstraint A.C.D",
		"edge Store -> SaleRegion -> Country -> All\nconstraint !SaleRegion_Country",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, sigma, err := ParseSchema(src)
		if err != nil {
			return
		}
		text := FormatSchema(g, sigma)
		g2, sigma2, err := ParseSchema(text)
		if err != nil {
			t.Fatalf("accepted schema but rejected its rendering: %v\n%s", err, text)
		}
		if g2.NumCategories() != g.NumCategories() || g2.NumEdges() != g.NumEdges() || len(sigma2) != len(sigma) {
			t.Fatalf("round trip changed the schema:\n%s", text)
		}
	})
}
