package parser

import (
	"fmt"
	"strconv"

	"olapdim/internal/constraint"
)

// ParseConstraint parses a dimension constraint expression.
func ParseConstraint(src string) (constraint.Expr, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &exprParser{src: src, tokens: tokens}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.peek().kind)
	}
	return e, nil
}

type exprParser struct {
	src    string
	tokens []token
	i      int
}

func (p *exprParser) peek() token { return p.tokens[p.i] }

func (p *exprParser) next() token {
	t := p.tokens[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *exprParser) accept(k tokenKind) (token, bool) {
	if p.peek().kind == k {
		return p.next(), true
	}
	return token{}, false
}

func (p *exprParser) expect(k tokenKind) (token, error) {
	if t, ok := p.accept(k); ok {
		return t, nil
	}
	return token{}, p.errorf("expected %s, found %s", k, p.peek().kind)
}

func (p *exprParser) errorf(format string, args ...any) error {
	return &Error{Src: p.src, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// parseExpr parses with the precedence ladder
// iff < implies < xor < or < and < not < primary; -> is right associative,
// the other binary operators associate left.
func (p *exprParser) parseExpr() (constraint.Expr, error) {
	return p.parseIff()
}

func (p *exprParser) parseIff() (constraint.Expr, error) {
	left, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.accept(tokDArrow); !ok {
			return left, nil
		}
		right, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		left = constraint.Iff{A: left, B: right}
	}
}

func (p *exprParser) parseImplies() (constraint.Expr, error) {
	left, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	if _, ok := p.accept(tokArrow); !ok {
		return left, nil
	}
	right, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	return constraint.Implies{A: left, B: right}, nil
}

func (p *exprParser) parseXor() (constraint.Expr, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.accept(tokXor); !ok {
			return left, nil
		}
		right, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		left = constraint.Xor{A: left, B: right}
	}
}

func (p *exprParser) parseOr() (constraint.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	var xs []constraint.Expr
	for {
		if _, ok := p.accept(tokOr); !ok {
			break
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		if xs == nil {
			xs = []constraint.Expr{left}
		}
		xs = append(xs, right)
	}
	if xs == nil {
		return left, nil
	}
	return constraint.Or{Xs: xs}, nil
}

func (p *exprParser) parseAnd() (constraint.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	var xs []constraint.Expr
	for {
		if _, ok := p.accept(tokAnd); !ok {
			break
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if xs == nil {
			xs = []constraint.Expr{left}
		}
		xs = append(xs, right)
	}
	if xs == nil {
		return left, nil
	}
	return constraint.And{Xs: xs}, nil
}

func (p *exprParser) parseUnary() (constraint.Expr, error) {
	if _, ok := p.accept(tokNot); ok {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return constraint.Not{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (constraint.Expr, error) {
	switch p.peek().kind {
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch p.peek().text {
		case "true":
			p.next()
			return constraint.True{}, nil
		case "false":
			p.next()
			return constraint.False{}, nil
		case "one":
			return p.parseOne()
		}
		return p.parseAtom()
	}
	return nil, p.errorf("expected an atom, 'one', 'true', 'false', '!' or '(', found %s", p.peek().kind)
}

// parseOne parses one(e1, e2, ...); a bare identifier "one" not followed by
// '(' is treated as a category name.
func (p *exprParser) parseOne() (constraint.Expr, error) {
	if p.tokens[p.i+1].kind != tokLParen {
		return p.parseAtom()
	}
	p.next() // one
	p.next() // (
	var xs []constraint.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		xs = append(xs, e)
		if _, ok := p.accept(tokComma); ok {
			continue
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return constraint.One{Xs: xs}, nil
	}
}

// parseAtom parses path, rollup, through and equality atoms.
func (p *exprParser) parseAtom() (constraint.Expr, error) {
	root, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case tokUnderscore:
		cats := []string{root.text}
		for {
			if _, ok := p.accept(tokUnderscore); !ok {
				break
			}
			t, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			cats = append(cats, t.text)
		}
		return constraint.PathAtom{Cats: cats}, nil
	case tokDot:
		p.next()
		first, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch p.peek().kind {
		case tokDot:
			p.next()
			second, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			switch p.peek().kind {
			case tokEq:
				return nil, p.errorf("equality atoms take the form c.ci=%q, not c.ci.cj=%q", "k", "k")
			case tokLt, tokLe, tokGt, tokGe:
				return nil, p.errorf("order atoms take the form c.ci%sk, not c.ci.cj%sk",
					p.peek().text, p.peek().text)
			}
			return constraint.ThroughAtom{RootCat: root.text, Via: first.text, Cat: second.text}, nil
		case tokEq:
			p.next()
			v, err := p.expect(tokString)
			if err != nil {
				return nil, err
			}
			return constraint.EqAtom{RootCat: root.text, Cat: first.text, Val: v.text}, nil
		case tokLt, tokLe, tokGt, tokGe:
			return p.parseCmp(root.text, first.text)
		default:
			return constraint.RollupAtom{RootCat: root.text, Cat: first.text}, nil
		}
	case tokEq:
		p.next()
		v, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		return constraint.EqAtom{RootCat: root.text, Cat: root.text, Val: v.text}, nil
	case tokLt, tokLe, tokGt, tokGe:
		return p.parseCmp(root.text, root.text)
	}
	return nil, p.errorf("category %q must begin a path atom (%s_c), composed atom (%s.c) or equality atom (%s=\"k\")",
		root.text, root.text, root.text, root.text)
}

// parseCmp parses the operator and numeric constant of an order atom
// (Section 6 extension): c.ci < 100, c.ci >= 19.5, or the abbreviation
// c < 100 for c.c < 100.
func (p *exprParser) parseCmp(root, cat string) (constraint.Expr, error) {
	var op constraint.CmpOp
	switch p.next().kind {
	case tokLt:
		op = constraint.Lt
	case tokLe:
		op = constraint.Le
	case tokGt:
		op = constraint.Gt
	case tokGe:
		op = constraint.Ge
	}
	num, err := p.expect(tokNum)
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseFloat(num.text, 64)
	if err != nil {
		return nil, p.errorf("invalid number %q", num.text)
	}
	return constraint.CmpAtom{RootCat: root, Cat: cat, Op: op, Val: v}, nil
}
