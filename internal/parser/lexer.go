// Package parser implements a text syntax for dimension schemas and
// dimension constraints (see DESIGN.md for the grammar):
//
//	Store_City_Province                  path atom
//	Store.SaleRegion                     composed rollup atom
//	Store.City.Country                   composed through atom
//	Store.Country="Canada"               equality atom
//	Store="s1"                           abbreviation for Store.Store="s1"
//	! & | ^ -> <-> one(...) true false   connectives
//
// Schema files are line oriented:
//
//	schema locationSch
//	category Store City           # optional, edges imply categories
//	edge Store -> City
//	edge City -> State -> SaleRegion    # chains add each edge
//	constraint Store_City & Store.SaleRegion
//	# comments run to end of line
package parser

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokUnderscore
	tokDot
	tokEq
	tokNot
	tokAnd
	tokOr
	tokXor
	tokArrow  // ->
	tokDArrow // <->
	tokNum    // numeric constant
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokLParen
	tokRParen
	tokComma
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokUnderscore:
		return "'_'"
	case tokDot:
		return "'.'"
	case tokEq:
		return "'='"
	case tokNot:
		return "'!'"
	case tokAnd:
		return "'&'"
	case tokOr:
		return "'|'"
	case tokXor:
		return "'^'"
	case tokArrow:
		return "'->'"
	case tokDArrow:
		return "'<->'"
	case tokNum:
		return "number"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the source
}

// Error is a parse error with position information.
type Error struct {
	Src string
	Pos int
	Msg string
}

func (e *Error) Error() string {
	line, col := 1, 1
	for i := 0; i < e.Pos && i < len(e.Src); i++ {
		if e.Src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("parse error at %d:%d: %s", line, col, e.Msg)
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isLetter(c):
			l.lexIdent()
		case isDigit(c):
			l.lexNumber(l.pos)
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.tokens, nil
}

func isLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isLetter(c) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lexNumber scans [0-9]+(.[0-9]+)? starting at the current position; start
// marks the token start (it precedes l.pos when a unary minus was
// consumed).
func (l *lexer) lexNumber(start int) {
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && isDigit(l.src[l.pos+1]) {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	l.emit(tokNum, l.src[start:l.pos], start)
}

func (l *lexer) emit(k tokenKind, text string, pos int) {
	l.tokens = append(l.tokens, token{kind: k, text: text, pos: pos})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	l.emit(tokIdent, l.src[start:l.pos], start)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			l.emit(tokString, b.String(), start)
			return nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return &Error{Src: l.src, Pos: l.pos, Msg: "unterminated escape"}
			}
			l.pos++
			b.WriteByte(l.src[l.pos])
			l.pos++
		case '\n':
			return &Error{Src: l.src, Pos: start, Msg: "unterminated string"}
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return &Error{Src: l.src, Pos: start, Msg: "unterminated string"}
}

func (l *lexer) lexPunct() error {
	start := l.pos
	rest := l.src[l.pos:]
	switch {
	case strings.HasPrefix(rest, "<->"):
		l.pos += 3
		l.emit(tokDArrow, "<->", start)
	case strings.HasPrefix(rest, "->"):
		l.pos += 2
		l.emit(tokArrow, "->", start)
	case strings.HasPrefix(rest, "<="):
		l.pos += 2
		l.emit(tokLe, "<=", start)
	case strings.HasPrefix(rest, ">="):
		l.pos += 2
		l.emit(tokGe, ">=", start)
	case rest[0] == '<':
		l.pos++
		l.emit(tokLt, "<", start)
	case rest[0] == '>':
		l.pos++
		l.emit(tokGt, ">", start)
	case rest[0] == '-' && len(rest) > 1 && isDigit(rest[1]):
		l.pos++
		l.lexNumber(start)
	default:
		kinds := map[byte]tokenKind{
			'_': tokUnderscore,
			'.': tokDot,
			'=': tokEq,
			'!': tokNot,
			'&': tokAnd,
			'|': tokOr,
			'^': tokXor,
			'(': tokLParen,
			')': tokRParen,
			',': tokComma,
		}
		k, ok := kinds[rest[0]]
		if !ok {
			return &Error{Src: l.src, Pos: start, Msg: fmt.Sprintf("unexpected character %q", rest[0])}
		}
		l.pos++
		l.emit(k, rest[:1], start)
	}
	return nil
}
