package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"olapdim/internal/constraint"
)

func mustParse(t *testing.T, src string) constraint.Expr {
	t.Helper()
	e, err := ParseConstraint(src)
	if err != nil {
		t.Fatalf("ParseConstraint(%q): %v", src, err)
	}
	return e
}

func TestParseAtoms(t *testing.T) {
	cases := []struct {
		src  string
		want constraint.Expr
	}{
		{"Store_City", constraint.NewPath("Store", "City")},
		{"Store_City_Province", constraint.NewPath("Store", "City", "Province")},
		{"Store.SaleRegion", constraint.RollupAtom{RootCat: "Store", Cat: "SaleRegion"}},
		{"Store.City.Country", constraint.ThroughAtom{RootCat: "Store", Via: "City", Cat: "Country"}},
		{`Store.Country="Canada"`, constraint.EqAtom{RootCat: "Store", Cat: "Country", Val: "Canada"}},
		{`City="Washington"`, constraint.EqAtom{RootCat: "City", Cat: "City", Val: "Washington"}},
		{"true", constraint.True{}},
		{"false", constraint.False{}},
		{`C="with \"escape\""`, constraint.EqAtom{RootCat: "C", Cat: "C", Val: `with "escape"`}},
		// Order atoms (Section 6 extension).
		{"Product.Price < 100", constraint.CmpAtom{RootCat: "Product", Cat: "Price", Op: constraint.Lt, Val: 100}},
		{"Product.Price <= 19.5", constraint.CmpAtom{RootCat: "Product", Cat: "Price", Op: constraint.Le, Val: 19.5}},
		{"Product.Price > -3", constraint.CmpAtom{RootCat: "Product", Cat: "Price", Op: constraint.Gt, Val: -3}},
		{"Price >= 0", constraint.CmpAtom{RootCat: "Price", Cat: "Price", Op: constraint.Ge, Val: 0}},
		{"Product.Price<100 <-> Product_Discount", constraint.Iff{
			A: constraint.CmpAtom{RootCat: "Product", Cat: "Price", Op: constraint.Lt, Val: 100},
			B: constraint.NewPath("Product", "Discount"),
		}},
	}
	for _, c := range cases {
		got := mustParse(t, c.src)
		if !constraint.Equal(got, c.want) {
			t.Errorf("ParseConstraint(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseConnectives(t *testing.T) {
	a := constraint.NewPath("A", "B")
	b := constraint.NewPath("A", "C")
	c := constraint.NewPath("A", "D")
	cases := []struct {
		src  string
		want constraint.Expr
	}{
		{"!A_B", constraint.Not{X: a}},
		{"A_B & A_C", constraint.NewAnd(a, b)},
		{"A_B & A_C & A_D", constraint.NewAnd(a, b, c)},
		{"A_B | A_C", constraint.NewOr(a, b)},
		{"A_B ^ A_C", constraint.Xor{A: a, B: b}},
		{"A_B -> A_C", constraint.Implies{A: a, B: b}},
		{"A_B <-> A_C", constraint.Iff{A: a, B: b}},
		{"one(A_B, A_C, A_D)", constraint.NewOne(a, b, c)},
		{"one(A_B)", constraint.NewOne(a)},
		// Precedence.
		{"A_B & A_C | A_D", constraint.NewOr(constraint.NewAnd(a, b), c)},
		{"A_B | A_C -> A_D", constraint.Implies{A: constraint.NewOr(a, b), B: c}},
		{"A_B -> A_C -> A_D", constraint.Implies{A: a, B: constraint.Implies{A: b, B: c}}},
		{"(A_B -> A_C) -> A_D", constraint.Implies{A: constraint.Implies{A: a, B: b}, B: c}},
		{"!A_B & A_C", constraint.NewAnd(constraint.Not{X: a}, b)},
		{"!(A_B & A_C)", constraint.Not{X: constraint.NewAnd(a, b)}},
		{"A_B ^ A_C | A_D", constraint.Xor{A: a, B: constraint.NewOr(b, c)}},
		{"A_B <-> A_C -> A_D", constraint.Iff{A: a, B: constraint.Implies{A: b, B: c}}},
	}
	for _, cse := range cases {
		got := mustParse(t, cse.src)
		if !constraint.Equal(got, cse.want) {
			t.Errorf("ParseConstraint(%q) = %s, want %s", cse.src, got, cse.want)
		}
	}
}

func TestParseComments(t *testing.T) {
	got := mustParse(t, "A_B # trailing comment")
	if !constraint.Equal(got, constraint.NewPath("A", "B")) {
		t.Errorf("got %s", got)
	}
}

func TestParseOneAsCategoryName(t *testing.T) {
	// "one" not followed by '(' is an ordinary category name.
	got := mustParse(t, "one_Two")
	if !constraint.Equal(got, constraint.NewPath("one", "Two")) {
		t.Errorf("got %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"A_",
		"A &",
		"& A_B",
		"A_B A_C",
		"(A_B",
		"A_B)",
		`A.B.C="k"`,
		`A="unterminated`,
		"A_B @ A_C",
		"one(A_B,)",
		"one()",
		"A =",
		"A.B=",
		"A..B",
		"!!",
		"A.B.C < 5", // order atoms take two components
		"A.B <",     // missing number
		`A.B < "x"`, // string after comparison
		"A < B",     // category after comparison
		"5 < A.B",   // number cannot start an atom
	}
	for _, src := range bad {
		if _, err := ParseConstraint(src); err == nil {
			t.Errorf("ParseConstraint(%q) accepted", src)
		}
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := ParseConstraint("A_B &\n& A_C")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:1") {
		t.Errorf("error %q should point at line 2 col 1", err)
	}
}

// randomExpr builds a random well-formed expression for round-trip tests.
func randomExpr(rng *rand.Rand, depth int) constraint.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(8) {
		case 0:
			return constraint.NewPath("A", "B")
		case 1:
			return constraint.NewPath("A", "B", "C")
		case 2:
			return constraint.RollupAtom{RootCat: "A", Cat: "C"}
		case 3:
			return constraint.ThroughAtom{RootCat: "A", Via: "B", Cat: "C"}
		case 4:
			return constraint.EqAtom{RootCat: "A", Cat: "C", Val: "k1"}
		case 5:
			return constraint.CmpAtom{RootCat: "A", Cat: "C",
				Op: constraint.CmpOp(rng.Intn(4)), Val: float64(rng.Intn(41)-20) / 2}
		case 6:
			return constraint.True{}
		default:
			return constraint.False{}
		}
	}
	sub := func() constraint.Expr { return randomExpr(rng, depth-1) }
	switch rng.Intn(7) {
	case 0:
		return constraint.Not{X: sub()}
	case 1:
		return constraint.NewAnd(sub(), sub())
	case 2:
		return constraint.NewOr(sub(), sub(), sub())
	case 3:
		return constraint.Implies{A: sub(), B: sub()}
	case 4:
		return constraint.Iff{A: sub(), B: sub()}
	case 5:
		return constraint.Xor{A: sub(), B: sub()}
	default:
		return constraint.NewOne(sub(), sub())
	}
}

// TestRoundTrip: parsing the String() rendering yields a structurally equal
// expression — printer and parser agree on the grammar, including
// parenthesization and precedence.
func TestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 5)
		parsed, err := ParseConstraint(e.String())
		if err != nil {
			t.Logf("render %q failed to parse: %v", e.String(), err)
			return false
		}
		if !constraint.Equal(e, parsed) {
			t.Logf("round trip changed %q into %q", e.String(), parsed.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
