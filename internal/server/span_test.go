package server

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"olapdim/internal/obs"
	"olapdim/internal/paper"
)

func newSpanServer(t *testing.T) (*httptest.Server, *obs.SpanStore) {
	t.Helper()
	spans := obs.NewSpanStore(0, "test")
	s, err := NewWithConfig(paper.LocationSch(), Config{Spans: spans, SpanSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, spans
}

func getWithHeader(t *testing.T, url, header, value string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if header != "" {
		req.Header.Set(header, value)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestTraceparentAdopted(t *testing.T) {
	ts, spans := newSpanServer(t)
	parent := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}

	resp := getWithHeader(t, ts.URL+"/sat?category=Store", "traceparent", parent.Traceparent())
	if got := resp.Header.Get("X-Trace-ID"); got != parent.TraceID {
		t.Fatalf("X-Trace-ID = %q, want the adopted trace %q", got, parent.TraceID)
	}
	recorded := spans.Trace(parent.TraceID)
	var root *obs.Span
	for i := range recorded {
		if recorded[i].Name == "server.request" {
			root = &recorded[i]
		}
	}
	if root == nil {
		t.Fatalf("no server.request span recorded for the adopted trace (got %d spans)", len(recorded))
	}
	if root.ParentID != parent.SpanID {
		t.Errorf("server.request parented to %q, want the caller's span %q", root.ParentID, parent.SpanID)
	}
}

func TestTraceparentUnsampledFlagHonored(t *testing.T) {
	ts, spans := newSpanServer(t)
	// Sampled=false in the adopted context must win over SpanSample=1:
	// the caller decided this trace is not recorded.
	parent := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: false}

	resp := getWithHeader(t, ts.URL+"/sat?category=Store", "traceparent", parent.Traceparent())
	if got := resp.Header.Get("X-Trace-ID"); got != parent.TraceID {
		t.Fatalf("X-Trace-ID = %q, want %q even for an unsampled trace", got, parent.TraceID)
	}
	if got := spans.Trace(parent.TraceID); len(got) != 0 {
		t.Fatalf("unsampled trace recorded %d spans, want none", len(got))
	}
}

func TestMalformedTraceparentReplaced(t *testing.T) {
	ts, spans := newSpanServer(t)
	hex32 := regexp.MustCompile(`^[0-9a-f]{32}$`)
	valid := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}

	cases := map[string]string{
		"wrong shape":    "hello",
		"missing part":   "00-" + valid.TraceID + "-01",
		"uppercase hex":  "00-" + strings.ToUpper(valid.TraceID) + "-" + valid.SpanID + "-01",
		"all-zero trace": "00-00000000000000000000000000000000-" + valid.SpanID + "-01",
		"all-zero span":  "00-" + valid.TraceID + "-0000000000000000-01",
		"bad version":    "ff-" + valid.TraceID + "-" + valid.SpanID + "-01",
		"oversized":      valid.Traceparent() + strings.Repeat("-extra", 20),
		"non-hex flags":  "00-" + valid.TraceID + "-" + valid.SpanID + "-zz",
	}
	for name, tp := range cases {
		resp := getWithHeader(t, ts.URL+"/sat?category=Store", "traceparent", tp)
		got := resp.Header.Get("X-Trace-ID")
		if !hex32.MatchString(got) {
			t.Errorf("%s: X-Trace-ID %q is not a minted 32-hex trace ID", name, got)
		}
		if got == valid.TraceID {
			t.Errorf("%s: adopted the trace ID out of a malformed traceparent %q", name, tp)
		}
		// The minted replacement is fully functional: sampled (SpanSample=1)
		// and recorded under the fresh ID.
		if len(spans.Trace(got)) == 0 {
			t.Errorf("%s: replacement trace %q recorded no spans", name, got)
		}
	}
}

func TestForwardedRequestIDAdoptedAndInvalidReplaced(t *testing.T) {
	ts, _ := newSpanServer(t)

	// A syntactically valid forwarded ID (what the cluster coordinator
	// sends) is adopted verbatim.
	resp := getWithHeader(t, ts.URL+"/sat?category=Store", "X-Request-ID", "coord-000042")
	if got := resp.Header.Get("X-Request-ID"); got != "coord-000042" {
		t.Fatalf("X-Request-ID = %q, want the forwarded ID adopted", got)
	}

	// Control bytes can't even be sent through net/http; spaces, non-ASCII
	// and oversized values can, and all must be replaced by a minted ID.
	for name, bad := range map[string]string{
		"spaces":    "two words",
		"non-ascii": "идентификатор",
		"oversized": strings.Repeat("x", 200),
	} {
		resp := getWithHeader(t, ts.URL+"/sat?category=Store", "X-Request-ID", bad)
		got := resp.Header.Get("X-Request-ID")
		if got == bad || got == "" {
			t.Errorf("%s: X-Request-ID = %q, want a freshly minted replacement", name, got)
		}
		if !obs.ValidRequestID(got) {
			t.Errorf("%s: minted replacement %q is itself invalid", name, got)
		}
	}
}
