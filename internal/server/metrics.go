package server

import (
	"time"

	"olapdim/internal/obs"
)

// serverMetrics holds every instrument the server updates on its hot
// paths. All families live under the dimsat_ prefix and follow the
// naming conventions obs.Lint enforces (cmd/metricslint runs it in
// `make check`). Counters owned by other subsystems — the SatCache, the
// job store, the fault injector — are not mirrored here; they are
// registered as collect-at-scrape functions in registerCollectors and
// read their owners directly.
type serverMetrics struct {
	// received counts requests at arrival, before routing; the labeled
	// reqTotal counts completions by status class, so received minus the
	// sum of reqTotal is the number of requests currently in flight.
	received *obs.Counter
	reqTotal *obs.CounterVec
	reqDur   *obs.HistogramVec
	inflight *obs.Gauge
	queued   *obs.Gauge
	shed     *obs.Counter
	tooLarge *obs.Counter
	timeouts *obs.Counter
	panics   *obs.Counter

	poolBatches  *obs.Counter
	poolTasks    *obs.Counter
	poolTaskErrs *obs.Counter
	poolQueue    *obs.Gauge
	poolInflight *obs.Gauge
	poolTaskDur  *obs.Histogram

	searchExpansions *obs.Histogram
	searchChecks     *obs.Histogram
	searchBacktracks *obs.Histogram
	slowSearches     *obs.Counter
	tracesRecorded   *obs.Counter

	explainRequests  *obs.Counter
	explainProbes    *obs.Counter
	explainCoreSize  *obs.Histogram
	explainExhausted *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		received: reg.Counter("dimsat_http_requests_received_total",
			"HTTP requests received, counted at arrival before routing."),
		reqTotal: reg.CounterVec("dimsat_http_requests_total",
			"HTTP requests completed, by status class.", "code_class"),
		reqDur: reg.HistogramVec("dimsat_http_request_duration_seconds",
			"HTTP request wall-clock latency, by status class.", "code_class", obs.DurationBuckets()),
		inflight: reg.Gauge("dimsat_http_inflight_requests",
			"Reasoning requests currently holding an execution slot."),
		queued: reg.Gauge("dimsat_http_queued_requests",
			"Reasoning requests waiting for an execution slot."),
		shed: reg.Counter("dimsat_http_shed_total",
			"Reasoning requests shed with 429 by admission control."),
		tooLarge: reg.Counter("dimsat_http_body_too_large_total",
			"Requests rejected with 413 for exceeding the body limit."),
		timeouts: reg.Counter("dimsat_http_request_timeouts_total",
			"Reasoning requests answered 504 after the per-request deadline."),
		panics: reg.Counter("dimsat_contained_panics_total",
			"Panics contained by the serving or reasoning recovery layers."),

		poolBatches: reg.Counter("dimsat_pool_batches_total",
			"Worker-pool batches started (matrix cells, category sweeps)."),
		poolTasks: reg.Counter("dimsat_pool_tasks_total",
			"Worker-pool tasks started."),
		poolTaskErrs: reg.Counter("dimsat_pool_task_errors_total",
			"Worker-pool tasks that returned an error or panicked."),
		poolQueue: reg.Gauge("dimsat_pool_queue_depth",
			"Worker-pool tasks enqueued by a batch and not yet started."),
		poolInflight: reg.Gauge("dimsat_pool_inflight_tasks",
			"Worker-pool tasks currently executing."),
		poolTaskDur: reg.Histogram("dimsat_pool_task_duration_seconds",
			"Worker-pool task latency.", obs.DurationBuckets()),

		searchExpansions: reg.Histogram("dimsat_search_expansions",
			"EXPAND steps performed per reasoning request (cache hits observe 0).", obs.EffortBuckets()),
		searchChecks: reg.Histogram("dimsat_search_checks",
			"CHECK steps performed per reasoning request.", obs.EffortBuckets()),
		searchBacktracks: reg.Histogram("dimsat_search_backtracks",
			"Pruning dead ends hit per reasoning request.", obs.EffortBuckets()),
		slowSearches: reg.Counter("dimsat_slow_searches_total",
			"Reasoning requests whose expansions exceeded the slow-search threshold."),
		tracesRecorded: reg.Counter("dimsat_search_traces_recorded_total",
			"Structured search traces recorded into the trace ring."),

		explainRequests: reg.Counter("olapdim_explain_requests_total",
			"Verdict-provenance requests served (GET /explain and provenance-enabled POST /implies)."),
		explainProbes: reg.Counter("olapdim_explain_shrink_probes_total",
			"Unsat-core deletion probes executed by explain requests."),
		explainCoreSize: reg.Histogram("olapdim_explain_core_size",
			"Minimal unsat-core sizes returned by explain requests (UNSAT verdicts only).", obs.EffortBuckets()),
		explainExhausted: reg.Counter("olapdim_explain_budget_exhausted_total",
			"Explain requests whose core shrinking stopped early on budget or deadline, returning a partial core."),
	}
}

// poolObserver feeds the worker-pool gauges and histograms from the
// core.PoolObserver callbacks. One instance is installed into the shared
// reasoning options, so every batch surface (matrix, sweeps, lint) and
// every request reports into the same server-wide family.
type poolObserver struct{ m *serverMetrics }

func (p poolObserver) BatchStart(tasks int) {
	p.m.poolBatches.Inc()
	p.m.poolQueue.Add(int64(tasks))
}

func (p poolObserver) BatchDone(skipped int) {
	p.m.poolQueue.Add(-int64(skipped))
}

func (p poolObserver) TaskStart() {
	p.m.poolTasks.Inc()
	p.m.poolQueue.Add(-1)
	p.m.poolInflight.Add(1)
}

func (p poolObserver) TaskDone(d time.Duration, err error) {
	p.m.poolInflight.Add(-1)
	p.m.poolTaskDur.Observe(d.Seconds())
	if err != nil {
		p.m.poolTaskErrs.Inc()
	}
}

// registerCollectors registers the scrape-time families that read
// state owned by other subsystems: server uptime, the shared SatCache,
// the job store (when hosted) and the fault injector (when armed).
func (s *Server) registerCollectors(reg *obs.Registry) {
	reg.GaugeFunc("dimsat_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.started).Seconds() })

	// Build metadata as a constant info gauge, so a scrape (and any
	// BENCH_*.json derived from scrape deltas) identifies which binary
	// produced the numbers. The same fields come from obs.GetBuildInfo in
	// the load generator's run records.
	reg.Info("olapdim_build_info",
		"Build metadata: module version, Go toolchain, VCS revision. Constant 1.",
		obs.GetBuildInfo().Labels())

	spans := s.spans
	reg.CounterFunc("olapdim_spans_recorded_total",
		"Distributed-trace spans recorded into the span store.",
		func() float64 { return float64(spans.Recorded()) })
	reg.CounterFunc("olapdim_spans_dropped_total",
		"Spans dropped by the span store's trace and size bounds.",
		func() float64 { return float64(spans.Dropped()) })

	cache := s.cache
	reg.CounterFunc("dimsat_cache_hits_total",
		"Satisfiability calls answered from the shared cache.",
		func() float64 { return float64(cache.Stats().Hits) })
	reg.CounterFunc("dimsat_cache_misses_total",
		"Satisfiability calls that ran a DIMSAT search.",
		func() float64 { return float64(cache.Stats().Misses) })
	reg.CounterFunc("dimsat_cache_coalesced_total",
		"Cache hits that waited on an in-flight search (singleflight).",
		func() float64 { return float64(cache.Stats().Coalesced) })
	reg.CounterFunc("dimsat_cache_evictions_total",
		"Cache entries evicted by the size bound.",
		func() float64 { return float64(cache.Stats().Evictions) })
	reg.GaugeFunc("dimsat_cache_entries",
		"Satisfiability results currently retained in the cache.",
		func() float64 { return float64(cache.Stats().Entries) })
	reg.CounterFunc("dimsat_cache_work_expansions_total",
		"Cumulative EXPAND steps of every computed (non-hit) cache run.",
		func() float64 { return float64(cache.Stats().Work.Expansions) })
	reg.CounterFunc("dimsat_cache_work_checks_total",
		"Cumulative CHECK steps of every computed (non-hit) cache run.",
		func() float64 { return float64(cache.Stats().Work.Checks) })
	reg.CounterFunc("dimsat_cache_work_dead_ends_total",
		"Cumulative pruning dead ends of every computed (non-hit) cache run.",
		func() float64 { return float64(cache.Stats().Work.DeadEnds) })

	if cs := s.opts.Compiled; cs != nil {
		reg.CounterFunc("olapdim_compiles_total",
			"Schema compilations performed by the hosted compiled schema (initial compile plus Derive misses).",
			func() float64 { return float64(cs.Stats().Compiles) })
		reg.CounterFunc("olapdim_compile_seconds_total",
			"Cumulative wall-clock seconds spent compiling schemas.",
			func() float64 { return cs.Stats().CompileSeconds })
		reg.CounterFunc("olapdim_compile_cache_hits_total",
			"Derived-schema compilations answered from the Derive cache (implication negations).",
			func() float64 { return float64(cs.Stats().DeriveHits) })
		reg.CounterFunc("olapdim_compile_cache_misses_total",
			"Derived-schema compilations that built a new compiled form.",
			func() float64 { return float64(cs.Stats().DeriveMisses) })
		reg.CounterFunc("olapdim_compile_cache_evictions_total",
			"Derived compiled schemas evicted by the Derive cache bound.",
			func() float64 { return float64(cs.Stats().DeriveEvictions) })
	}

	if store := s.jobs; store != nil {
		reg.CounterFunc("dimsat_jobs_submitted_total",
			"Durable jobs accepted (idempotent resubmits excluded).",
			func() float64 { return float64(store.Counters().Submitted) })
		reg.CounterFunc("dimsat_jobs_recovered_total",
			"Jobs re-queued from durable records at startup.",
			func() float64 { return float64(store.Counters().Recovered) })
		reg.CounterFunc("dimsat_jobs_resumed_total",
			"Job attempts resumed from a persisted search checkpoint.",
			func() float64 { return float64(store.Counters().Resumed) })
		reg.CounterFunc("dimsat_jobs_corrupt_snapshots_total",
			"Snapshot files refused for failing checksum or validation.",
			func() float64 { return float64(store.Counters().CorruptRejected) })
		reg.CounterFunc("dimsat_jobs_checkpoint_writes_total",
			"Durable search-checkpoint writes that reached disk.",
			func() float64 { return float64(store.Counters().CheckpointWrites) })
		reg.CounterFunc("dimsat_jobs_done_total",
			"Jobs that reached the done state.",
			func() float64 { return float64(store.Counters().Done) })
		reg.CounterFunc("dimsat_jobs_failed_total",
			"Jobs that reached the failed state.",
			func() float64 { return float64(store.Counters().Failed) })
		reg.CounterFunc("dimsat_jobs_cancelled_total",
			"Jobs cancelled before completing.",
			func() float64 { return float64(store.Counters().Cancelled) })
	}

	if inj := s.opts.Faults; inj != nil {
		reg.CounterVecFunc("dimsat_fault_injections_total",
			"Fault-injection rule activations, by injection site.", "site",
			func() map[string]float64 {
				out := map[string]float64{}
				for site, n := range inj.AllFired() {
					out[site] = float64(n)
				}
				return out
			})
	}
}
