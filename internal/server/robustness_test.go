package server

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"olapdim/internal/core"
	"olapdim/internal/faults"
	"olapdim/internal/paper"
)

// TestPanicContainedMidMatrix is the headline containment test: a worker
// panic injected mid-/matrix (the 7th pool task) must come back as a
// structured 500, the very next request must succeed, and /stats must
// count the contained failure. The process never dies.
func TestPanicContainedMidMatrix(t *testing.T) {
	s, err := NewWithConfig(paper.LocationSch(), Config{Options: core.Options{
		Faults: faults.New(faults.Rule{Site: faults.SitePoolTask, Kind: faults.Panic, On: []int{7}}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	var e struct {
		Error string `json:"error"`
	}
	if code := get(t, ts, "/matrix", &e); code != http.StatusInternalServerError {
		t.Fatalf("poisoned matrix status = %d, want 500", code)
	}
	if !strings.Contains(e.Error, "internal error") || !strings.Contains(e.Error, "injected panic") {
		t.Errorf("error body = %q, want structured internal error naming the panic", e.Error)
	}

	// The On-rule fired once and never again: the next request is clean.
	var m matrixResponse
	if code := get(t, ts, "/matrix", &m); code != 200 {
		t.Fatalf("matrix after contained panic = %d, want 200", code)
	}
	if !m.Complete || m.From["Country"]["City"] != "yes" {
		t.Errorf("recovered matrix = complete %v, cell %q", m.Complete, m.From["Country"]["City"])
	}

	var stats statsResponse
	if code := get(t, ts, "/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if stats.Panics < 1 {
		t.Errorf("stats panics = %d, want >= 1", stats.Panics)
	}
}

// TestHandlerPanicContained exercises the outermost boundary: a panic
// escaping a handler itself (not the reasoner) is recovered by ServeHTTP,
// answered 500, counted, and the server keeps serving.
func TestHandlerPanicContained(t *testing.T) {
	s, err := New(paper.LocationSch(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	if code := get(t, ts, "/boom", nil); code != http.StatusInternalServerError {
		t.Fatalf("panicking handler status = %d, want 500", code)
	}
	if code := get(t, ts, "/healthz", nil); code != 200 {
		t.Errorf("healthz after handler panic = %d, want 200", code)
	}
	var stats statsResponse
	if code := get(t, ts, "/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if stats.Panics < 1 {
		t.Errorf("stats panics = %d, want >= 1", stats.Panics)
	}
}

// TestShedLoadDeterministic drives concurrency past a one-slot semaphore
// with no queue: while a stalled request holds the slot, the next request
// is deterministically shed with 429 + Retry-After, /readyz reports
// overloaded, and after the dust settles no goroutines have leaked.
func TestShedLoadDeterministic(t *testing.T) {
	base := runtime.NumGoroutine()

	s, err := NewWithConfig(paper.LocationSch(), Config{
		MaxConcurrent: 1,
		MaxQueue:      -1, // no queue: slot busy => immediate shed
		RetryAfter:    2 * time.Second,
		Options: core.Options{
			Faults: faults.New(faults.Rule{
				Site: faults.SiteExpand, Kind: faults.Latency, On: []int{1}, Delay: 500 * time.Millisecond,
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	getCode := func(path string) (int, http.Header) {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	slow := make(chan int, 1)
	go func() {
		code, _ := getCode("/sat?category=Store")
		slow <- code
	}()

	// Wait until the slow request holds the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.met.inflight.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never took the slot")
		}
		time.Sleep(time.Millisecond)
	}

	code, hdr := getCode("/sat?category=City")
	if code != http.StatusTooManyRequests {
		t.Fatalf("overloaded status = %d, want 429", code)
	}
	if got := hdr.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want 2", got)
	}
	if code, _ := getCode("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz under load = %d, want 503", code)
	}
	// Non-reasoning endpoints bypass admission and keep answering.
	if code, _ := getCode("/healthz"); code != 200 {
		t.Errorf("healthz under load = %d, want 200", code)
	}

	if code := <-slow; code != 200 {
		t.Errorf("slow request status = %d, want 200", code)
	}
	// The slot release races the client seeing the response; poll briefly.
	deadline = time.Now().Add(2 * time.Second)
	for {
		if code, _ := getCode("/readyz"); code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Error("readyz never recovered after load")
			break
		}
		time.Sleep(time.Millisecond)
	}

	var stats statsResponse
	if code := get(t, ts, "/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if stats.Shed < 1 {
		t.Errorf("stats shed = %d, want >= 1", stats.Shed)
	}
	if stats.MaxConcurrent != 1 {
		t.Errorf("stats maxConcurrent = %d, want 1", stats.MaxConcurrent)
	}

	// Zero goroutine leaks: tear the server down and wait for the count
	// to settle back to the baseline.
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	ts.Close()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at start, %d after settling", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueueWaitExpiresToShed covers the queued path: with one slot and a
// one-deep queue bounded by a short wait, a queued request is shed with
// 429 once the wait expires while the slot stays busy.
func TestQueueWaitExpiresToShed(t *testing.T) {
	s, err := NewWithConfig(paper.LocationSch(), Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     50 * time.Millisecond,
		Options: core.Options{
			Faults: faults.New(faults.Rule{
				Site: faults.SiteExpand, Kind: faults.Latency, On: []int{1}, Delay: time.Second,
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	slow := make(chan int, 1)
	go func() { slow <- get(t, ts, "/sat?category=Store", nil) }()
	deadline := time.Now().Add(2 * time.Second)
	for s.met.inflight.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never took the slot")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	if code := get(t, ts, "/sat?category=City", nil); code != http.StatusTooManyRequests {
		t.Fatalf("queued request status = %d, want 429 after queue wait", code)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Errorf("shed after %v, want >= the 50ms queue wait", waited)
	}
	if code := <-slow; code != 200 {
		t.Errorf("slow request status = %d, want 200", code)
	}
}

// TestOversizedBodyRejected checks the request body limit: a POST past
// MaxBodyBytes answers 413 and a small body on the same server still works.
func TestOversizedBodyRejected(t *testing.T) {
	s, err := NewWithConfig(paper.LocationSch(), Config{MaxBodyBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	huge := `{"constraint": "` + strings.Repeat("x", 200) + `"}`
	if code := post(t, ts, "/implies", huge, nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", code)
	}
	if code := post(t, ts, "/implies", `{"constraint": "Store.Country"}`, nil); code != 200 {
		t.Errorf("small body status = %d, want 200", code)
	}
}

func TestHealthEndpoints(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
	var ready readyzResponse
	if code := get(t, ts, "/readyz", &ready); code != 200 {
		t.Fatalf("readyz status = %d", code)
	}
	if ready.Status != "ready" {
		t.Errorf("readyz status field = %q, want ready", ready.Status)
	}
}

// TestMatrixPartialDegradationUnderBudget starves the matrix with a
// one-expansion budget: instead of the 503 a /sat request gets, /matrix
// answers 200 with every cell unknown and Complete false.
func TestMatrixPartialDegradationUnderBudget(t *testing.T) {
	s, err := NewWithConfig(paper.LocationSch(), Config{Options: core.Options{MaxExpansions: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	var m matrixResponse
	if code := get(t, ts, "/matrix", &m); code != 200 {
		t.Fatalf("matrix status = %d, want 200 (partial degradation)", code)
	}
	if m.Complete {
		t.Error("budget-starved matrix reported complete")
	}
	var unknown int
	for _, row := range m.From {
		for _, v := range row {
			if v == "unknown" {
				unknown++
			}
		}
	}
	if unknown == 0 {
		t.Error("no unknown cells in a budget-starved partial matrix")
	}
	// The same budget on a single-cell endpoint is a hard 503.
	if code := get(t, ts, "/sat?category=Store", nil); code != http.StatusServiceUnavailable {
		t.Errorf("sat status = %d, want 503", code)
	}
}
