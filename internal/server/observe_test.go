package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"olapdim/internal/core"
	"olapdim/internal/obs"
	"olapdim/internal/paper"
)

// scrapeMetrics fetches /metrics and parses the exposition into a
// series -> value map keyed by "name" or `name{label="v"}`.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestObservabilityEndToEnd is the acceptance path of the observability
// work: a Figure-7-style DIMSAT search runs through the HTTP server with
// tracing and a slow-search threshold armed, and the same request is then
// visible in all three observability surfaces — the scraped /metrics
// registry, the fetched /debug/traces/{id} trace with its EXPAND/CHECK
// sequence, and the structured request/slow-search log.
func TestObservabilityEndToEnd(t *testing.T) {
	var logBuf bytes.Buffer
	s, err := NewWithConfig(paper.LocationSch(), Config{
		TraceEvery:           1,
		SlowSearchExpansions: 1,
		Log:                  &logBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/sat?category=Store")
	if err != nil {
		t.Fatal(err)
	}
	var sat struct {
		Satisfiable bool `json:"satisfiable"`
		Expansions  int  `json:"expansions"`
		Checks      int  `json:"checks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !sat.Satisfiable {
		t.Fatalf("GET /sat: status %d, satisfiable %v", resp.StatusCode, sat.Satisfiable)
	}
	if sat.Expansions == 0 {
		t.Fatal("search reported zero expansions")
	}
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("response carries no X-Request-ID")
	}

	// The trace list knows the request.
	var list struct {
		Capacity int      `json:"capacity"`
		Count    int      `json:"count"`
		IDs      []string `json:"ids"`
	}
	if code := get(t, ts, "/debug/traces", &list); code != http.StatusOK {
		t.Fatalf("GET /debug/traces: %d", code)
	}
	if list.Capacity != defaultTraceRing || list.Count < 1 {
		t.Errorf("trace list = %+v", list)
	}
	found := false
	for _, id := range list.IDs {
		found = found || id == reqID
	}
	if !found {
		t.Fatalf("trace list %v does not contain %s", list.IDs, reqID)
	}

	// The fetched trace reconstructs the search: the EXPAND/CHECK event
	// sequence, the effort totals matching the response stats, the schema
	// fingerprint, and the slow flag (threshold 1 makes any search slow).
	var tr obs.Trace
	if code := get(t, ts, "/debug/traces/"+reqID, &tr); code != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: %d", reqID, code)
	}
	if tr.ID != reqID || tr.Endpoint != "/sat" || tr.Detail != "category=Store" {
		t.Errorf("trace header = %+v", tr)
	}
	if tr.Schema != core.Fingerprint(paper.LocationSch()) {
		t.Errorf("trace schema fingerprint = %q", tr.Schema)
	}
	if tr.Expansions != sat.Expansions || tr.Checks != sat.Checks {
		t.Errorf("trace effort %d/%d != response stats %d/%d",
			tr.Expansions, tr.Checks, sat.Expansions, sat.Checks)
	}
	if !tr.Slow {
		t.Error("trace not marked slow despite threshold 1")
	}
	var expands, checks int
	for i, e := range tr.Events {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		switch e.Kind {
		case "expand":
			expands++
			if e.Category == "" {
				t.Errorf("expand event %d without category", i)
			}
		case "check":
			checks++
		case "prune":
		default:
			t.Fatalf("unknown event kind %q", e.Kind)
		}
	}
	if tr.Events[0].Kind != "expand" {
		t.Errorf("search did not start with an EXPAND: %+v", tr.Events[0])
	}
	if expands != tr.Expansions || checks != tr.Checks {
		t.Errorf("event tally %d/%d != trace totals %d/%d", expands, checks, tr.Expansions, tr.Checks)
	}

	// An unknown trace ID is a 404 that mentions sampling.
	if code := get(t, ts, "/debug/traces/nope-000000", nil); code != http.StatusNotFound {
		t.Errorf("unknown trace id: %d, want 404", code)
	}

	// The structured log carries a request line and a slow_search line,
	// both tagged with the request ID.
	events := map[string]map[string]any{}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %q is not JSON: %v", line, err)
		}
		if rec["requestId"] == reqID {
			events[rec["event"].(string)] = rec
		}
	}
	slow, ok := events["slow_search"]
	if !ok {
		t.Fatalf("no slow_search log line for %s; log:\n%s", reqID, logBuf.String())
	}
	if slow["schema"] != core.Fingerprint(paper.LocationSch()) {
		t.Errorf("slow_search schema = %v", slow["schema"])
	}
	if int(slow["expansions"].(float64)) != sat.Expansions {
		t.Errorf("slow_search expansions = %v, want %d", slow["expansions"], sat.Expansions)
	}
	reqLine, ok := events["request"]
	if !ok {
		t.Fatalf("no request log line for %s", reqID)
	}
	if reqLine["path"] != "/sat" || reqLine["status"] != float64(200) {
		t.Errorf("request log line = %v", reqLine)
	}

	// The scraped registry saw the same request.
	m := scrapeMetrics(t, ts)
	if m[`dimsat_http_requests_total{code_class="2xx"}`] < 3 {
		t.Errorf("2xx requests = %v, want >= 3", m[`dimsat_http_requests_total{code_class="2xx"}`])
	}
	if m["dimsat_http_requests_received_total"] < 3 {
		t.Errorf("received = %v", m["dimsat_http_requests_received_total"])
	}
	if m["dimsat_search_expansions_count"] != 1 {
		t.Errorf("search effort observations = %v, want 1", m["dimsat_search_expansions_count"])
	}
	if m["dimsat_search_expansions_sum"] != float64(sat.Expansions) {
		t.Errorf("search expansions sum = %v, want %d", m["dimsat_search_expansions_sum"], sat.Expansions)
	}
	if m["dimsat_slow_searches_total"] != 1 {
		t.Errorf("slow searches = %v, want 1", m["dimsat_slow_searches_total"])
	}
	if m["dimsat_search_traces_recorded_total"] != 1 {
		t.Errorf("traces recorded = %v, want 1", m["dimsat_search_traces_recorded_total"])
	}
	if m[`dimsat_http_request_duration_seconds_bucket{code_class="2xx",le="+Inf"}`] < 1 {
		t.Error("no duration histogram samples")
	}
	if m["dimsat_uptime_seconds"] < 0 {
		t.Errorf("uptime = %v", m["dimsat_uptime_seconds"])
	}
}

// TestCacheHitMetricsZeroEffort pins satellite behavior: a cached /sat
// answer counts a cache hit in the registry but contributes zero search
// effort — the expansions histogram gains an observation of 0.
func TestCacheHitMetricsZeroEffort(t *testing.T) {
	s, err := NewWithConfig(paper.LocationSch(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if code := get(t, ts, "/sat?category=Store", nil); code != http.StatusOK {
			t.Fatalf("GET /sat #%d: %d", i+1, code)
		}
	}
	m := scrapeMetrics(t, ts)
	if m["dimsat_cache_misses_total"] != 1 || m["dimsat_cache_hits_total"] != 1 {
		t.Errorf("cache misses/hits = %v/%v, want 1/1",
			m["dimsat_cache_misses_total"], m["dimsat_cache_hits_total"])
	}
	// Two requests, two effort observations; the hit observed zero, so the
	// sum equals the single computing run's work, which the cumulative
	// work counter also carries.
	if m["dimsat_search_expansions_count"] != 2 {
		t.Errorf("effort observations = %v, want 2", m["dimsat_search_expansions_count"])
	}
	if m["dimsat_search_expansions_sum"] != m["dimsat_cache_work_expansions_total"] {
		t.Errorf("per-request sum %v != cache cumulative work %v",
			m["dimsat_search_expansions_sum"], m["dimsat_cache_work_expansions_total"])
	}
	if m["dimsat_search_expansions_sum"] <= 0 {
		t.Errorf("expansions sum = %v, want > 0", m["dimsat_search_expansions_sum"])
	}

	// X-Request-IDs are unique per request.
	a, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	a.Body.Close()
	b, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b.Body.Close()
	ida, idb := a.Header.Get("X-Request-ID"), b.Header.Get("X-Request-ID")
	if ida == "" || ida == idb {
		t.Errorf("request IDs not unique: %q, %q", ida, idb)
	}
}

// TestTraceSampling checks that TraceEvery=2 records every other
// reasoning request and that untraced requests still get request IDs.
func TestTraceSampling(t *testing.T) {
	s, err := NewWithConfig(paper.LocationSch(), Config{TraceEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/sat?category=Store")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, resp.Header.Get("X-Request-ID"))
	}
	var list struct {
		Count int      `json:"count"`
		IDs   []string `json:"ids"`
	}
	get(t, ts, "/debug/traces", &list)
	if list.Count != 2 {
		t.Fatalf("TraceEvery=2 over 4 requests recorded %d traces: %v", list.Count, list.IDs)
	}
	traced := map[string]bool{}
	for _, id := range list.IDs {
		traced[id] = true
	}
	if !traced[ids[0]] || !traced[ids[2]] || traced[ids[1]] || traced[ids[3]] {
		t.Errorf("sampled wrong requests: traced %v of %v", list.IDs, ids)
	}
}
