package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"olapdim/internal/core"
	"olapdim/internal/obs"
)

// statusWriter captures the response status so the completion middleware
// can label the request counter and latency histogram by status class.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// codeClass buckets an HTTP status for the code_class metric label:
// "2xx", "4xx", "5xx", ...
func codeClass(status int) string {
	return fmt.Sprintf("%dxx", status/100)
}

// reasoning is the per-request observability scope of one reasoning
// handler: a derived context under the request timeout, a fresh effort
// sink, and — on sampled requests — a structured search tracer. Handlers
// call beginReasoning after validating their input, run the engine with
// rz.ctx and rz.opts, and defer rz.finish, which records the effort
// histograms, the slow-search log line, and the ring trace.
type reasoning struct {
	s      *Server
	ctx    context.Context
	cancel context.CancelFunc

	id       string
	endpoint string
	// detail carries the request argument (category, root, target); set
	// by the handler before finish runs.
	detail string
	start  time.Time

	// sc is the request's span context (scOK when one was attached), so
	// the reasoning phase can be recorded as a child span and the
	// slow-search log line can name the trace.
	sc   obs.SpanContext
	scOK bool

	opts   core.Options
	effort *core.EffortSink
	tracer *obs.SearchTracer
}

// beginReasoning opens the observability scope for one reasoning
// request. Every request gets its own EffortSink so per-request search
// effort lands in the histograms even when the engine answers several
// sub-searches (matrix cells, per-bottom implications). Every
// traceEvery-th request additionally carries a SearchTracer; a traced
// request bypasses the shared cache and runs serially (core semantics
// for Options.Tracer), which is exactly what makes its EXPAND/CHECK
// sequence complete — hence sampling rather than always-on tracing.
func (s *Server) beginReasoning(r *http.Request, endpoint string) *reasoning {
	ctx, cancel := s.requestContext(r)
	rz := &reasoning{
		s:        s,
		ctx:      ctx,
		cancel:   cancel,
		id:       obs.RequestIDFrom(r.Context()),
		endpoint: endpoint,
		start:    time.Now(),
		opts:     s.opts,
		effort:   &core.EffortSink{},
	}
	rz.sc, rz.scOK = obs.SpanFrom(r.Context())
	rz.opts.Effort = rz.effort
	if s.traceEvery > 0 && (s.traceSeq.Add(1)-1)%int64(s.traceEvery) == 0 {
		rz.tracer = obs.NewSearchTracer(s.traceEvents)
		rz.opts.Tracer = rz.tracer
	}
	return rz
}

// finish closes the scope: it cancels the derived context, feeds the
// request's search effort into the histograms, emits the slow-search
// log line when the expansion threshold was crossed, and stores the
// structured trace (when this request was sampled) under the request ID
// for GET /debug/traces/{id}.
func (rz *reasoning) finish() {
	rz.cancel()
	s := rz.s
	st := rz.effort.Stats()
	traceID := ""
	if rz.scOK && rz.sc.Sampled {
		traceID = rz.sc.TraceID
	}
	s.met.searchExpansions.ObserveWithExemplar(float64(st.Expansions), traceID)
	s.met.searchChecks.Observe(float64(st.Checks))
	s.met.searchBacktracks.Observe(float64(st.DeadEnds))

	durMS := float64(time.Since(rz.start)) / float64(time.Millisecond)
	slow := s.slowExpansions > 0 && st.Expansions >= s.slowExpansions
	if slow {
		s.met.slowSearches.Inc()
		s.logger.Log("slow_search", map[string]any{
			"requestId":  rz.id,
			"traceId":    rz.sc.TraceID,
			"endpoint":   rz.endpoint,
			"detail":     rz.detail,
			"schema":     s.fingerprint,
			"expansions": st.Expansions,
			"checks":     st.Checks,
			"deadEnds":   st.DeadEnds,
			"durationMs": durMS,
			"threshold":  s.slowExpansions,
		})
	}
	if rz.scOK && rz.sc.Sampled {
		sp := &obs.Span{
			TraceID:    rz.sc.TraceID,
			SpanID:     obs.NewSpanID(),
			ParentID:   rz.sc.SpanID,
			Name:       "server.reason",
			Kind:       "internal",
			Start:      rz.start,
			DurationMS: durMS,
			Status:     "ok",
		}
		sp.SetAttr("endpoint", rz.endpoint)
		if rz.detail != "" {
			sp.SetAttr("detail", rz.detail)
		}
		sp.SetAttr("expansions", fmt.Sprint(st.Expansions))
		s.spans.Add(sp)
	}
	if rz.tracer != nil && rz.id != "" {
		events, truncated := rz.tracer.Events()
		s.ring.Put(&obs.Trace{
			ID:         rz.id,
			Endpoint:   rz.endpoint,
			Detail:     rz.detail,
			Schema:     s.fingerprint,
			Start:      rz.start,
			DurationMS: durMS,
			Expansions: st.Expansions,
			Checks:     st.Checks,
			DeadEnds:   st.DeadEnds,
			Slow:       slow,
			Truncated:  truncated,
			Events:     events,
		})
		s.met.tracesRecorded.Inc()
	}
}

// traceListResponse is the GET /debug/traces body.
type traceListResponse struct {
	Capacity int `json:"capacity"`
	Count    int `json:"count"`
	// IDs lists retained request IDs, newest first.
	IDs []string `json:"ids"`
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, traceListResponse{
		Capacity: s.ring.Cap(), Count: s.ring.Len(), IDs: s.ring.IDs(),
	})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.ring.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no trace retained for request %q (tracing samples every %d requests)", id, s.traceEvery)
		return
	}
	writeJSON(w, http.StatusOK, t)
}

// spanListResponse is the GET /debug/spans body: which traces this node
// retains spans for, newest first.
type spanListResponse struct {
	Node     string   `json:"node,omitempty"`
	Spans    int      `json:"spans"`
	TraceIDs []string `json:"traceIds"`
}

// spanTraceResponse is the GET /debug/spans/{traceID} body — also the
// wire format the coordinator's /cluster/trace fan-out consumes.
type spanTraceResponse struct {
	TraceID string     `json:"traceId"`
	Node    string     `json:"node,omitempty"`
	Spans   []obs.Span `json:"spans"`
}

func (s *Server) handleSpanList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, spanListResponse{
		Node: s.spans.Node(), Spans: s.spans.Len(), TraceIDs: s.spans.TraceIDs(),
	})
}

func (s *Server) handleSpanTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("traceID")
	spans := s.spans.Trace(id)
	if spans == nil {
		writeErr(w, http.StatusNotFound, "no spans retained for trace %q", id)
		return
	}
	writeJSON(w, http.StatusOK, spanTraceResponse{TraceID: id, Node: s.spans.Node(), Spans: spans})
}
