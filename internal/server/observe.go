package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"olapdim/internal/core"
	"olapdim/internal/obs"
)

// statusWriter captures the response status so the completion middleware
// can label the request counter and latency histogram by status class.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// codeClass buckets an HTTP status for the code_class metric label:
// "2xx", "4xx", "5xx", ...
func codeClass(status int) string {
	return fmt.Sprintf("%dxx", status/100)
}

// reasoning is the per-request observability scope of one reasoning
// handler: a derived context under the request timeout, a fresh effort
// sink, and — on sampled requests — a structured search tracer. Handlers
// call beginReasoning after validating their input, run the engine with
// rz.ctx and rz.opts, and defer rz.finish, which records the effort
// histograms, the slow-search log line, and the ring trace.
type reasoning struct {
	s      *Server
	ctx    context.Context
	cancel context.CancelFunc

	id       string
	endpoint string
	// detail carries the request argument (category, root, target); set
	// by the handler before finish runs.
	detail string
	start  time.Time

	opts   core.Options
	effort *core.EffortSink
	tracer *obs.SearchTracer
}

// beginReasoning opens the observability scope for one reasoning
// request. Every request gets its own EffortSink so per-request search
// effort lands in the histograms even when the engine answers several
// sub-searches (matrix cells, per-bottom implications). Every
// traceEvery-th request additionally carries a SearchTracer; a traced
// request bypasses the shared cache and runs serially (core semantics
// for Options.Tracer), which is exactly what makes its EXPAND/CHECK
// sequence complete — hence sampling rather than always-on tracing.
func (s *Server) beginReasoning(r *http.Request, endpoint string) *reasoning {
	ctx, cancel := s.requestContext(r)
	rz := &reasoning{
		s:        s,
		ctx:      ctx,
		cancel:   cancel,
		id:       obs.RequestIDFrom(r.Context()),
		endpoint: endpoint,
		start:    time.Now(),
		opts:     s.opts,
		effort:   &core.EffortSink{},
	}
	rz.opts.Effort = rz.effort
	if s.traceEvery > 0 && (s.traceSeq.Add(1)-1)%int64(s.traceEvery) == 0 {
		rz.tracer = obs.NewSearchTracer(s.traceEvents)
		rz.opts.Tracer = rz.tracer
	}
	return rz
}

// finish closes the scope: it cancels the derived context, feeds the
// request's search effort into the histograms, emits the slow-search
// log line when the expansion threshold was crossed, and stores the
// structured trace (when this request was sampled) under the request ID
// for GET /debug/traces/{id}.
func (rz *reasoning) finish() {
	rz.cancel()
	s := rz.s
	st := rz.effort.Stats()
	s.met.searchExpansions.Observe(float64(st.Expansions))
	s.met.searchChecks.Observe(float64(st.Checks))
	s.met.searchBacktracks.Observe(float64(st.DeadEnds))

	durMS := float64(time.Since(rz.start)) / float64(time.Millisecond)
	slow := s.slowExpansions > 0 && st.Expansions >= s.slowExpansions
	if slow {
		s.met.slowSearches.Inc()
		s.logger.Log("slow_search", map[string]any{
			"requestId":  rz.id,
			"endpoint":   rz.endpoint,
			"detail":     rz.detail,
			"schema":     s.fingerprint,
			"expansions": st.Expansions,
			"checks":     st.Checks,
			"deadEnds":   st.DeadEnds,
			"durationMs": durMS,
			"threshold":  s.slowExpansions,
		})
	}
	if rz.tracer != nil && rz.id != "" {
		events, truncated := rz.tracer.Events()
		s.ring.Put(&obs.Trace{
			ID:         rz.id,
			Endpoint:   rz.endpoint,
			Detail:     rz.detail,
			Schema:     s.fingerprint,
			Start:      rz.start,
			DurationMS: durMS,
			Expansions: st.Expansions,
			Checks:     st.Checks,
			DeadEnds:   st.DeadEnds,
			Slow:       slow,
			Truncated:  truncated,
			Events:     events,
		})
		s.met.tracesRecorded.Inc()
	}
}

// traceListResponse is the GET /debug/traces body.
type traceListResponse struct {
	Capacity int `json:"capacity"`
	Count    int `json:"count"`
	// IDs lists retained request IDs, newest first.
	IDs []string `json:"ids"`
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, traceListResponse{
		Capacity: s.ring.Cap(), Count: s.ring.Len(), IDs: s.ring.IDs(),
	})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.ring.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no trace retained for request %q (tracing samples every %d requests)", id, s.traceEvery)
		return
	}
	writeJSON(w, http.StatusOK, t)
}
