package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"olapdim/internal/core"
	"olapdim/internal/faults"
	"olapdim/internal/paper"
)

// shopServer boots a server over a schema with a known two-constraint
// minimal unsat core at Store: constraint 0 severs SaleRegion's only
// path to All and constraint 1 forces Store to include it (the same
// fixture internal/core's explain tests pin).
func shopServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ds, err := core.Parse(`
schema shop
edge Store -> SaleRegion -> Country -> All
edge Store -> Brand -> All
constraint !SaleRegion_Country
constraint Store_SaleRegion
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithConfig(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func TestExplainEndpointSat(t *testing.T) {
	ts := testServer(t)
	var resp explainResponse
	if code := get(t, ts, "/explain?category=Store", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !resp.Satisfiable || resp.Witness == "" {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Provenance == nil || len(resp.Provenance.Categories) == 0 || len(resp.Provenance.Edges) == 0 {
		t.Fatalf("SAT explanation missing touched set: %+v", resp.Provenance)
	}
	if resp.Core != nil || resp.Probes != 0 {
		t.Errorf("SAT verdict carried core %v after %d probes", resp.Core, resp.Probes)
	}
	if resp.Expansions == 0 {
		t.Error("explanation reports no search effort")
	}
	if code := get(t, ts, "/explain", nil); code != 400 {
		t.Errorf("missing category status %d", code)
	}
	if code := get(t, ts, "/explain?category=Ghost", nil); code != 400 {
		t.Errorf("unknown category status %d", code)
	}
}

func TestExplainEndpointUnsatCore(t *testing.T) {
	ts := shopServer(t, Config{})
	var resp explainResponse
	if code := get(t, ts, "/explain?category=Store", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Satisfiable || resp.Witness != "" {
		t.Fatalf("response = %+v", resp)
	}
	if len(resp.Core) != 2 || resp.Core[0] != 0 || resp.Core[1] != 1 {
		t.Fatalf("core = %v, want [0 1]", resp.Core)
	}
	if len(resp.CoreConstraints) != 2 {
		t.Fatalf("coreConstraints = %v", resp.CoreConstraints)
	}
	if resp.Probes == 0 || resp.ProbeExpansions == 0 {
		t.Errorf("shrinking effort not reported: %+v", resp)
	}
	if resp.Provenance == nil {
		t.Fatal("UNSAT explanation missing touched set")
	}
}

// TestExplainBudget503 pins the typed-error contract: budget exhaustion
// mid-shrink answers 503 with the exhaustion counter bumped, never a
// silently-unminimized 200.
func TestExplainBudget503(t *testing.T) {
	ts := shopServer(t, Config{Options: core.Options{MaxExpansions: 1}})
	if code := get(t, ts, "/explain?category=Store", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "olapdim_explain_budget_exhausted_total 1") {
		t.Error("budget exhaustion not counted in olapdim_explain_budget_exhausted_total")
	}
}

// TestExplainShrinkFaultContained covers the core.shrink fault site at
// the server boundary: an injected error mid-shrink is the server's
// failure — structured 500, fault named in the body — and the very next
// request succeeds with the full minimal core.
func TestExplainShrinkFaultContained(t *testing.T) {
	ts := shopServer(t, Config{Options: core.Options{
		Faults: faults.New(faults.Rule{Site: faults.SiteCoreShrink, Kind: faults.Error, On: []int{2}}),
	}})
	var e struct {
		Error string `json:"error"`
	}
	if code := get(t, ts, "/explain?category=Store", &e); code != http.StatusInternalServerError {
		t.Fatalf("faulted explain status = %d, want 500", code)
	}
	if !strings.Contains(e.Error, "core: shrink") {
		t.Errorf("error body = %q, want the shrink fault named", e.Error)
	}
	var resp explainResponse
	if code := get(t, ts, "/explain?category=Store", &resp); code != 200 {
		t.Fatalf("explain after contained fault = %d, want 200", code)
	}
	if resp.Satisfiable || len(resp.Core) != 2 {
		t.Errorf("recovered explain = %+v", resp)
	}
}

func TestImpliesProvenance(t *testing.T) {
	ts := testServer(t)

	// An implication that holds: provenance plus a core over Σ ∪ {¬α}.
	var resp impliesResponse
	if code := post(t, ts, "/implies", `{"constraint": "Store.Country", "provenance": true}`, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !resp.Implied {
		t.Fatal("Store.Country should be implied")
	}
	if resp.Provenance == nil || len(resp.Provenance.Categories) == 0 {
		t.Fatalf("implied verdict missing touched set: %+v", resp.Provenance)
	}
	if len(resp.Core) == 0 || len(resp.CoreConstraints) != len(resp.Core) {
		t.Fatalf("implied verdict missing core: %v / %v", resp.Core, resp.CoreConstraints)
	}
	nSigma := len(paper.LocationSch().Sigma)
	negated := false
	for _, i := range resp.Core {
		if i == nSigma {
			negated = true
		}
	}
	if !negated {
		t.Errorf("core %v does not include ¬α (index %d): implication would be vacuous", resp.Core, nSigma)
	}

	// A failed implication: counterexample scoped by the touched set, no
	// core.
	resp = impliesResponse{}
	if code := post(t, ts, "/implies", `{"constraint": "Store_SaleRegion", "provenance": true}`, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Implied || resp.Counterexample == "" {
		t.Fatalf("response = %+v", resp)
	}
	if resp.Provenance == nil {
		t.Fatal("failed implication missing touched set")
	}
	if resp.Core != nil {
		t.Errorf("failed implication carried a core: %v", resp.Core)
	}

	// Provenance off: the body stays exactly as before this field existed.
	resp = impliesResponse{}
	if code := post(t, ts, "/implies", `{"constraint": "Store.Country"}`, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Provenance != nil || resp.Core != nil {
		t.Errorf("provenance leaked into a plain implies response: %+v", resp)
	}
}
