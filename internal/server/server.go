// Package server exposes the dimension-constraint reasoner over HTTP as a
// small JSON API, so OLAP middleware (query rewriters, view advisors) can
// consult summarizability without linking Go code. One server instance
// hosts one dimension schema; all endpoints are read-only and safe for
// concurrent use.
//
//	GET  /schema                         the schema in .dims syntax
//	GET  /categories                     categories with satisfiability
//	GET  /sat?category=Store             category satisfiability + witness
//	POST /implies        {"constraint": "Store.Country"}
//	POST /summarizable   {"target": "Country", "from": ["City"]}
//	GET  /frozen?root=Store              frozen dimensions
//	GET  /matrix                         single-source summarizability
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"olapdim/internal/core"
	"olapdim/internal/parser"
)

// Server hosts one dimension schema.
type Server struct {
	ds   *core.DimensionSchema
	opts core.Options
	mux  *http.ServeMux
}

// New builds a server for a validated dimension schema.
func New(ds *core.DimensionSchema, opts core.Options) (*Server, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	s := &Server{ds: ds, opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /schema", s.handleSchema)
	s.mux.HandleFunc("GET /categories", s.handleCategories)
	s.mux.HandleFunc("GET /sat", s.handleSat)
	s.mux.HandleFunc("POST /implies", s.handleImplies)
	s.mux.HandleFunc("POST /summarizable", s.handleSummarizable)
	s.mux.HandleFunc("GET /frozen", s.handleFrozen)
	s.mux.HandleFunc("GET /matrix", s.handleMatrix)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.ds.Format())
}

type categoryInfo struct {
	Name        string `json:"name"`
	Satisfiable bool   `json:"satisfiable"`
	Bottom      bool   `json:"bottom"`
}

func (s *Server) handleCategories(w http.ResponseWriter, r *http.Request) {
	bottoms := map[string]bool{}
	for _, b := range s.ds.G.Bottoms() {
		bottoms[b] = true
	}
	var out []categoryInfo
	for _, c := range s.ds.G.SortedCategories() {
		res, err := core.Satisfiable(s.ds, c, s.opts)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		out = append(out, categoryInfo{Name: c, Satisfiable: res.Satisfiable, Bottom: bottoms[c]})
	}
	writeJSON(w, http.StatusOK, out)
}

type satResponse struct {
	Category    string `json:"category"`
	Satisfiable bool   `json:"satisfiable"`
	Witness     string `json:"witness,omitempty"`
	Expansions  int    `json:"expansions"`
	Checks      int    `json:"checks"`
}

func (s *Server) handleSat(w http.ResponseWriter, r *http.Request) {
	c := r.URL.Query().Get("category")
	if c == "" {
		writeErr(w, http.StatusBadRequest, "missing category parameter")
		return
	}
	res, err := core.Satisfiable(s.ds, c, s.opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := satResponse{
		Category:    c,
		Satisfiable: res.Satisfiable,
		Expansions:  res.Stats.Expansions,
		Checks:      res.Stats.Checks,
	}
	if res.Witness != nil {
		resp.Witness = res.Witness.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

type impliesRequest struct {
	Constraint string `json:"constraint"`
}

type impliesResponse struct {
	Constraint     string `json:"constraint"`
	Implied        bool   `json:"implied"`
	Counterexample string `json:"counterexample,omitempty"`
}

func (s *Server) handleImplies(w http.ResponseWriter, r *http.Request) {
	var req impliesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	alpha, err := parser.ParseConstraint(req.Constraint)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	implied, res, err := core.Implies(s.ds, alpha, s.opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := impliesResponse{Constraint: alpha.String(), Implied: implied}
	if !implied && res.Witness != nil {
		resp.Counterexample = res.Witness.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

type summarizableRequest struct {
	Target string   `json:"target"`
	From   []string `json:"from"`
}

type summarizableResponse struct {
	Target       string         `json:"target"`
	From         []string       `json:"from"`
	Summarizable bool           `json:"summarizable"`
	PerBottom    []bottomResult `json:"perBottom"`
}

type bottomResult struct {
	Bottom         string `json:"bottom"`
	Constraint     string `json:"constraint"`
	Implied        bool   `json:"implied"`
	Counterexample string `json:"counterexample,omitempty"`
}

func (s *Server) handleSummarizable(w http.ResponseWriter, r *http.Request) {
	var req summarizableRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	rep, err := core.Summarizable(s.ds, req.Target, req.From, s.opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := summarizableResponse{
		Target:       req.Target,
		From:         req.From,
		Summarizable: rep.Summarizable(),
	}
	for _, b := range rep.PerBottom {
		br := bottomResult{Bottom: b.Bottom, Constraint: b.Constraint.String(), Implied: b.Implied}
		if !b.Implied && b.Counterexample.Witness != nil {
			br.Counterexample = b.Counterexample.Witness.String()
		}
		resp.PerBottom = append(resp.PerBottom, br)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFrozen(w http.ResponseWriter, r *http.Request) {
	root := r.URL.Query().Get("root")
	if root == "" {
		writeErr(w, http.StatusBadRequest, "missing root parameter")
		return
	}
	fs, err := core.EnumerateFrozen(s.ds, root, s.opts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	writeJSON(w, http.StatusOK, out)
}

type matrixResponse struct {
	Categories []string                   `json:"categories"`
	From       map[string]map[string]bool `json:"from"`
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	m, err := core.SummarizabilityMatrix(s.ds, s.opts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, matrixResponse{Categories: m.Categories, From: m.From})
}
