// Package server exposes the dimension-constraint reasoner over HTTP as a
// small JSON API, so OLAP middleware (query rewriters, view advisors) can
// consult summarizability without linking Go code. One server instance
// hosts one dimension schema; all endpoints are read-only and safe for
// concurrent use.
//
// The server is built to degrade rather than wedge or die. Every
// reasoning endpoint runs under the request context bounded by the
// configured per-request timeout, so a canceled client or an adversarial
// schema cannot hold a serving goroutine: the DIMSAT search aborts within
// one EXPAND step and the handler answers 503/504. Reasoning requests
// pass admission control — a bounded-concurrency semaphore with a short
// wait queue — and are shed with 429 + Retry-After once both are full,
// keeping latency bounded under overload instead of queueing unboundedly.
// A panic anywhere below a handler (including one injected by tests via
// the faults package) is contained: the request answers a structured 500
// and the process keeps serving. All requests share one satisfiability
// cache, so repeated roots — across a matrix request or across clients —
// are solved once.
//
// The server is also built to be watched. Every request is assigned an
// X-Request-ID, logged as a JSON line (Config.Log), and counted into a
// metrics registry exposed in Prometheus text format at GET /metrics;
// every reasoning request records its search effort (EXPAND/CHECK/dead
// ends) into per-request histograms; searches whose expansions cross
// Config.SlowSearchExpansions land in the slow-search log; and every
// Config.TraceEvery-th reasoning request records its full structured
// EXPAND/CHECK/prune sequence into a bounded ring served at
// GET /debug/traces/{id}. See docs/OBSERVABILITY.md for the catalog.
//
//	GET  /schema                         the schema in .dims syntax
//	GET  /categories                     categories with satisfiability
//	GET  /sat?category=Store             category satisfiability + witness
//	GET  /explain?category=Store         verdict provenance: touched set + minimal unsat core
//	POST /implies        {"constraint": "Store.Country", "provenance": true}
//	POST /summarizable   {"target": "Country", "from": ["City"]}
//	GET  /frozen?root=Store              frozen dimensions
//	GET  /matrix                         single-source summarizability
//	GET  /sources?target=Country&max=2   minimal source sets for a target
//	POST /jobs           {"kind": "sat", "category": "Store"}   durable async job
//	GET  /jobs                           all job statuses
//	GET  /jobs/{id}                      job status and result
//	DELETE /jobs/{id}                    cancel a job
//	GET  /stats                          cache hit rates, cumulative effort
//	GET  /metrics                        Prometheus text exposition
//	GET  /debug/traces                   retained structured-trace IDs
//	GET  /debug/traces/{id}              one request's EXPAND/CHECK trace
//	GET  /healthz                        liveness (always 200 while serving)
//	GET  /readyz                         readiness (503 while overloaded)
//
// See docs/OPERATIONS.md for the failure model and client retry contract.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"olapdim/internal/constraint"
	"olapdim/internal/core"
	"olapdim/internal/faults"
	"olapdim/internal/jobs"
	"olapdim/internal/obs"
	"olapdim/internal/parser"
)

// Config tunes a Server beyond the core reasoning options. The zero value
// yields a serving posture safe for untrusted traffic: bounded admission,
// bounded request bodies, no request timeout (set one in production).
type Config struct {
	// Options are the DIMSAT options applied to every request. When
	// Options.Cache is nil the server installs its own shared cache; when
	// Options.Pool is nil the server installs its worker-pool metrics
	// observer.
	Options core.Options
	// RequestTimeout bounds each reasoning request; zero means requests
	// run until the client disconnects.
	RequestTimeout time.Duration
	// MaxConcurrent caps reasoning requests executing at once. Zero
	// means 4x GOMAXPROCS; negative disables admission control.
	MaxConcurrent int
	// MaxQueue bounds reasoning requests waiting for an execution slot.
	// Zero means 2x MaxConcurrent; negative means no queue (immediate
	// shed when all slots are busy).
	MaxQueue int
	// QueueWait bounds how long an admitted-to-queue request waits for a
	// slot before being shed. Zero means 1s.
	QueueWait time.Duration
	// RetryAfter is the client backoff hint sent with 429 responses.
	// Zero means 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds POST request bodies. Zero means 1 MiB;
	// negative disables the limit.
	MaxBodyBytes int64
	// Jobs, when non-nil, enables the durable async-job endpoints
	// (POST /jobs, GET /jobs/{id}, DELETE /jobs/{id}) backed by this
	// store. The server installs its admission semaphore as the store's
	// Acquire hook, so job workers count against MaxConcurrent exactly
	// like interactive reasoning requests. The caller owns the store's
	// lifecycle: call its Start after the server is constructed and its
	// Close after HTTP shutdown.
	Jobs *jobs.Store

	// Metrics is the registry the server registers its instruments in
	// and serves at GET /metrics; nil means a fresh private registry
	// (read it back via Registry). Family names are fixed, so one
	// registry can host at most one server.
	Metrics *obs.Registry
	// Log, when non-nil, receives structured JSON lines: one "request"
	// event per HTTP request and one "slow_search" event per
	// threshold-crossing search. Nil disables request logging.
	Log io.Writer
	// TraceEvery samples every N-th reasoning request for structured
	// search tracing (1 traces everything); 0 disables tracing. A traced
	// request bypasses the shared cache and runs serially so its
	// EXPAND/CHECK sequence is complete — keep the rate low in
	// production.
	TraceEvery int
	// TraceRing bounds how many structured traces are retained for
	// GET /debug/traces/{id}; zero means 256.
	TraceRing int
	// TraceEvents caps the events recorded per trace (the trace is
	// marked truncated past it); zero means 2048.
	TraceEvents int
	// SlowSearchExpansions is the per-request expansion count at or
	// above which a search is counted slow and logged to the slow-search
	// log; zero disables slow-search detection.
	SlowSearchExpansions int

	// Spans, when non-nil, is the span store finished spans are recorded
	// into — shared with the job store in dimsatd so request and job
	// lifecycle spans of one trace land in one place. Nil means a fresh
	// private store sized by SpanRing.
	Spans *obs.SpanStore
	// SpanRing bounds the spans retained for GET /debug/spans when the
	// server owns its store; zero means 2048.
	SpanRing int
	// SpanSample records every N-th locally-minted trace (1 = all, the
	// default); negative disables span recording for minted traces. An
	// adopted traceparent's sampled flag is always honored regardless.
	SpanSample int
}

const (
	defaultQueueWait   = time.Second
	defaultRetryAfter  = time.Second
	defaultMaxBody     = 1 << 20
	defaultTraceRing   = 256
	defaultTraceEvents = 2048
)

// Server hosts one dimension schema.
type Server struct {
	ds    *core.DimensionSchema
	opts  core.Options
	cache *core.SatCache
	mux   *http.ServeMux

	jobs *jobs.Store

	timeout time.Duration
	started time.Time
	// fingerprint identifies the hosted schema in traces and slow-search
	// log lines.
	fingerprint string

	metrics *obs.Registry
	met     *serverMetrics
	logger  *obs.Logger
	ids     *obs.IDSource
	ring    *obs.Ring

	traceEvery     int
	traceEvents    int
	traceSeq       atomic.Int64
	slowExpansions int

	spans      *obs.SpanStore
	spanSample int
	spanSeq    atomic.Int64

	// Admission control: sem holds one token per executing reasoning
	// request (nil disables admission); the met.queued and met.inflight
	// gauges are the bookkeeping.
	sem        chan struct{}
	maxQueue   int64
	queueWait  time.Duration
	retryAfter time.Duration
	maxBody    int64
}

// New builds a server for a validated dimension schema with default
// configuration (shared cache, bounded admission, no request timeout).
func New(ds *core.DimensionSchema, opts core.Options) (*Server, error) {
	return NewWithConfig(ds, Config{Options: opts})
}

// NewWithConfig builds a server with explicit configuration.
func NewWithConfig(ds *core.DimensionSchema, cfg Config) (*Server, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	opts := cfg.Options
	if opts.Cache == nil {
		opts.Cache = core.NewSatCache()
	}
	if opts.Compiled == nil {
		// Compile the hosted schema once; every request then runs on the
		// compiled engine. A schema the compiler rejects would also have
		// failed Validate above, so this cannot fail here, but fall back
		// to the interpreted engine defensively anyway.
		if cs, err := core.Compile(ds); err == nil {
			opts.Compiled = cs
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	fingerprint := core.Fingerprint(ds)
	if opts.Compiled != nil {
		fingerprint = opts.Compiled.Fingerprint()
	}
	s := &Server{
		ds:          ds,
		opts:        opts,
		cache:       opts.Cache,
		mux:         http.NewServeMux(),
		timeout:     cfg.RequestTimeout,
		started:     time.Now(),
		fingerprint: fingerprint,
		metrics:     reg,
		met:         newServerMetrics(reg),
		logger:      obs.NewLogger(cfg.Log),
		ids:         obs.NewIDSource(),
		queueWait:   cfg.QueueWait,
		retryAfter:  cfg.RetryAfter,
		maxBody:     cfg.MaxBodyBytes,

		traceEvery:     cfg.TraceEvery,
		traceEvents:    cfg.TraceEvents,
		slowExpansions: cfg.SlowSearchExpansions,

		spans:      cfg.Spans,
		spanSample: cfg.SpanSample,
	}
	if s.spans == nil {
		s.spans = obs.NewSpanStore(cfg.SpanRing, "server")
	}
	if s.spanSample == 0 {
		s.spanSample = 1
	}
	if s.opts.Pool == nil {
		s.opts.Pool = poolObserver{s.met}
	}
	if s.traceEvents <= 0 {
		s.traceEvents = defaultTraceEvents
	}
	ringSize := cfg.TraceRing
	if ringSize <= 0 {
		ringSize = defaultTraceRing
	}
	s.ring = obs.NewRing(ringSize)
	if s.queueWait <= 0 {
		s.queueWait = defaultQueueWait
	}
	if s.retryAfter <= 0 {
		s.retryAfter = defaultRetryAfter
	}
	if s.maxBody == 0 {
		s.maxBody = defaultMaxBody
	}
	if cfg.MaxConcurrent >= 0 {
		n := cfg.MaxConcurrent
		if n == 0 {
			n = 4 * runtime.GOMAXPROCS(0)
		}
		s.sem = make(chan struct{}, n)
		switch {
		case cfg.MaxQueue > 0:
			s.maxQueue = int64(cfg.MaxQueue)
		case cfg.MaxQueue == 0:
			s.maxQueue = int64(2 * n)
		default:
			s.maxQueue = 0
		}
	}
	// Reasoning endpoints run expensive DIMSAT searches and pass
	// admission control; metadata, health and observability endpoints
	// never block.
	s.mux.HandleFunc("GET /schema", s.handleSchema)
	s.mux.HandleFunc("GET /categories", s.admit(s.handleCategories))
	s.mux.HandleFunc("GET /sat", s.admit(s.handleSat))
	s.mux.HandleFunc("GET /explain", s.admit(s.handleExplain))
	s.mux.HandleFunc("POST /implies", s.admit(s.handleImplies))
	s.mux.HandleFunc("POST /summarizable", s.admit(s.handleSummarizable))
	s.mux.HandleFunc("GET /frozen", s.admit(s.handleFrozen))
	s.mux.HandleFunc("GET /matrix", s.admit(s.handleMatrix))
	s.mux.HandleFunc("GET /sources", s.admit(s.handleSources))
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", reg)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraceList)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /debug/spans", s.handleSpanList)
	s.mux.HandleFunc("GET /debug/spans/{traceID}", s.handleSpanTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if cfg.Jobs != nil {
		s.jobs = cfg.Jobs
		// Job workers execute through the same admission semaphore as
		// interactive requests; the handlers themselves only touch the
		// store's in-memory state and need no admission.
		s.jobs.SetAcquire(s.acquireJobSlot)
		s.mux.HandleFunc("POST /jobs", s.handleJobSubmit)
		s.mux.HandleFunc("GET /jobs", s.handleJobList)
		s.mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
		s.mux.HandleFunc("GET /jobs/{id}/checkpoint", s.handleJobCheckpoint)
		s.mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	}
	s.registerCollectors(reg)
	return s, nil
}

// Registry returns the metrics registry the server reports into, for
// mounting scrapes elsewhere and for cmd/metricslint.
func (s *Server) Registry() *obs.Registry { return s.metrics }

// acquireJobSlot is the jobs.Store admission hook: a job worker occupies
// one execution slot of the reasoning semaphore for the duration of its
// attempt, so background jobs and interactive requests share one
// concurrency cap. Unlike interactive admission there is no shed-or-queue
// bound — a durable job waits as long as the store lives.
func (s *Server) acquireJobSlot(ctx context.Context) (func(), error) {
	if s.sem == nil {
		s.met.inflight.Add(1)
		return func() { s.met.inflight.Add(-1) }, nil
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.met.inflight.Add(1)
	return func() {
		s.met.inflight.Add(-1)
		<-s.sem
	}, nil
}

// ServeHTTP implements http.Handler. It is the outermost containment and
// observability boundary: every request carries an X-Request-ID — a
// syntactically valid forwarded one (the cluster coordinator's) is
// adopted so coordinator and worker log lines share one key, anything
// else is replaced by a freshly minted ID — plus a W3C trace context
// (adopted from a well-formed `traceparent` header or minted here), both
// propagated via context and echoed as response headers. Every request
// is counted and timed by status class, recorded as a span when its
// trace is sampled, and logged as one JSON line; a panic escaping any
// handler is recovered here, answered as a structured 500, and counted,
// so one poisoned request can never take the process down.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.received.Inc()
	id := r.Header.Get("X-Request-ID")
	if !obs.ValidRequestID(id) {
		id = s.ids.Next()
	}
	w.Header().Set("X-Request-ID", id)
	ctx := obs.WithRequestID(r.Context(), id)

	parent, adopted := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !adopted {
		parent = obs.SpanContext{TraceID: obs.NewTraceID(), Sampled: s.sampleSpan()}
	}
	span, sc := obs.StartSpan(parent, "server.request", "server")
	w.Header().Set("X-Trace-ID", sc.TraceID)
	r = r.WithContext(obs.WithSpan(ctx, sc))

	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	defer func() {
		if v := recover(); v != nil {
			s.met.panics.Inc()
			log.Printf("server: contained panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			writeErr(sw, http.StatusInternalServerError, "internal error")
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		class := codeClass(status)
		d := time.Since(start)
		s.met.reqTotal.With(class).Inc()
		exemplar := ""
		if sc.Sampled {
			exemplar = sc.TraceID
		}
		s.met.reqDur.With(class).ObserveWithExemplar(d.Seconds(), exemplar)
		if sc.Sampled {
			span.SetAttr("method", r.Method)
			span.SetAttr("path", r.URL.Path)
			span.SetAttr("status", strconv.Itoa(status))
			span.SetAttr("requestId", id)
			st := "ok"
			if status >= 500 {
				st = "error"
			}
			span.Finish(st)
			s.spans.Add(span)
		}
		s.logger.Log("request", map[string]any{
			"requestId":  id,
			"traceId":    sc.TraceID,
			"method":     r.Method,
			"path":       r.URL.Path,
			"status":     status,
			"durationMs": float64(d) / float64(time.Millisecond),
		})
	}()
	s.mux.ServeHTTP(sw, r)
}

// sampleSpan decides whether a trace minted here is recorded: every
// spanSample-th minted trace (1 = all); non-positive disables.
func (s *Server) sampleSpan() bool {
	if s.spanSample <= 0 {
		return false
	}
	return (s.spanSeq.Add(1)-1)%int64(s.spanSample) == 0
}

// admit gates h behind the concurrency semaphore: run immediately when a
// slot is free, otherwise wait in the bounded queue up to queueWait, and
// shed with 429 + Retry-After when the queue is full or the wait expires.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	if s.sem == nil {
		return func(w http.ResponseWriter, r *http.Request) {
			s.met.inflight.Add(1)
			defer s.met.inflight.Add(-1)
			h(w, r)
		}
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			if s.met.queued.Add(1) > s.maxQueue {
				s.met.queued.Add(-1)
				s.shedRequest(w)
				return
			}
			t := time.NewTimer(s.queueWait)
			select {
			case s.sem <- struct{}{}:
				t.Stop()
				s.met.queued.Add(-1)
			case <-t.C:
				s.met.queued.Add(-1)
				s.shedRequest(w)
				return
			case <-r.Context().Done():
				t.Stop()
				s.met.queued.Add(-1)
				writeErr(w, http.StatusServiceUnavailable, "request canceled while queued")
				return
			}
		}
		s.met.inflight.Add(1)
		defer func() {
			s.met.inflight.Add(-1)
			<-s.sem
		}()
		h(w, r)
	}
}

// shedRequest answers 429 with the configured Retry-After hint.
func (s *Server) shedRequest(w http.ResponseWriter) {
	s.met.shed.Inc()
	secs := int(s.retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
	writeErr(w, http.StatusTooManyRequests, "server overloaded, retry after %ds", secs)
}

// requestContext derives the reasoning context for one request, applying
// the per-request timeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a bounded JSON request body into v, answering 413
// for oversized bodies and 400 for malformed JSON. Returns false when a
// response was already written.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.met.tooLarge.Inc()
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		} else {
			writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		}
		return false
	}
	return true
}

// writeReasoningErr maps engine errors to HTTP statuses: deadline and
// budget exhaustion are service-side limits (504/503), a contained panic
// or an injected engine fault is a structured 500 (the process keeps
// serving), a canceled request
// context means the client is gone, and anything else is a bad request
// (unknown category, parse error).
func (s *Server) writeReasoningErr(w http.ResponseWriter, err error) {
	var ie *core.InternalError
	switch {
	case errors.As(err, &ie):
		s.met.panics.Inc()
		log.Printf("server: contained reasoner panic: %v\n%s", ie.Value, ie.Stack)
		writeErr(w, http.StatusInternalServerError, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Inc()
		writeErr(w, http.StatusGatewayTimeout, "reasoning timed out: %v", err)
	case errors.Is(err, core.ErrBudgetExceeded):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, faults.ErrInjected):
		// An injected engine fault (e.g. core.shrink) is the server's
		// failure, never the client's: structured 500, process keeps
		// serving.
		writeErr(w, http.StatusInternalServerError, "%v", err)
	case errors.Is(err, context.Canceled):
		// The client disconnected; nothing useful can be written.
		writeErr(w, http.StatusServiceUnavailable, "request canceled")
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.ds.Format())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyzResponse reports whether a new reasoning request would be
// admitted right now.
type readyzResponse struct {
	Status   string `json:"status"`
	InFlight int64  `json:"inFlight"`
	Queued   int64  `json:"queued"`
	// StorageError carries the last durable-write failure when the job
	// store's disk is persistently refusing writes.
	StorageError string `json:"storageError,omitempty"`
}

// storageFailStreak is how many consecutive durable-write failures the
// jobs store must report before /readyz degrades: one failed write is an
// incident for the log, a streak means the disk is gone and new work
// should route elsewhere.
const storageFailStreak = 3

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyzResponse{Status: "ready", InFlight: s.met.inflight.Value(), Queued: s.met.queued.Value()}
	status := http.StatusOK
	if s.sem != nil && len(s.sem) == cap(s.sem) && resp.Queued >= s.maxQueue {
		resp.Status = "overloaded"
		status = http.StatusServiceUnavailable
	}
	if s.jobs != nil {
		if streak, last := s.jobs.WriteHealth(); streak >= storageFailStreak {
			resp.Status = "storage-failing"
			resp.StorageError = last
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, resp)
}

type categoryInfo struct {
	Name        string `json:"name"`
	Satisfiable bool   `json:"satisfiable"`
	Bottom      bool   `json:"bottom"`
}

func (s *Server) handleCategories(w http.ResponseWriter, r *http.Request) {
	rz := s.beginReasoning(r, "/categories")
	defer rz.finish()
	sat, err := core.CategorySatisfiabilityContext(rz.ctx, s.ds, rz.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	bottoms := map[string]bool{}
	for _, b := range s.ds.G.Bottoms() {
		bottoms[b] = true
	}
	var out []categoryInfo
	for _, c := range s.ds.G.SortedCategories() {
		out = append(out, categoryInfo{Name: c, Satisfiable: sat[c], Bottom: bottoms[c]})
	}
	writeJSON(w, http.StatusOK, out)
}

type satResponse struct {
	Category    string `json:"category"`
	Satisfiable bool   `json:"satisfiable"`
	Witness     string `json:"witness,omitempty"`
	Expansions  int    `json:"expansions"`
	Checks      int    `json:"checks"`
}

func (s *Server) handleSat(w http.ResponseWriter, r *http.Request) {
	c := r.URL.Query().Get("category")
	if c == "" {
		writeErr(w, http.StatusBadRequest, "missing category parameter")
		return
	}
	rz := s.beginReasoning(r, "/sat")
	rz.detail = "category=" + c
	defer rz.finish()
	res, err := core.SatisfiableContext(rz.ctx, s.ds, c, rz.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	resp := satResponse{
		Category:    c,
		Satisfiable: res.Satisfiable,
		Expansions:  res.Stats.Expansions,
		Checks:      res.Stats.Checks,
	}
	if res.Witness != nil {
		resp.Witness = res.Witness.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// explainResponse is the GET /explain body: the satisfiability verdict
// plus the evidence for it. SAT verdicts carry the witness and the
// touched set; UNSAT verdicts additionally carry a minimal unsat core —
// Σ indices whose subset is unsatisfiable as-is while dropping any single
// member flips the verdict — with Core empty (not null) when the UNSAT
// is structural and no constraint participates. Budget or deadline
// exhaustion during shrinking answers a typed 503/504 like every other
// reasoning endpoint, never a silently-unminimized 200.
type explainResponse struct {
	Category    string           `json:"category"`
	Satisfiable bool             `json:"satisfiable"`
	Witness     string           `json:"witness,omitempty"`
	Provenance  *core.Provenance `json:"provenance,omitempty"`
	// Core and CoreConstraints are the minimal unsat core as Σ indices and
	// rendered constraints; null on SAT verdicts.
	Core            []int    `json:"core"`
	CoreConstraints []string `json:"coreConstraints,omitempty"`
	Frontier        []string `json:"frontier,omitempty"`
	// Probes and ProbeExpansions are the shrinking effort on top of the
	// initial search.
	Probes          int `json:"probes"`
	ProbeExpansions int `json:"probeExpansions"`
	Expansions      int `json:"expansions"`
}

// probeSpanObserver builds the ShrinkObserver that records one child span
// per unsat-core deletion probe under parent, plus the probe counter. The
// observer runs synchronously on the explain goroutine, so no locking.
func (s *Server) probeSpanObserver(parent obs.SpanContext, record bool) func(core.ShrinkProbe) {
	return func(p core.ShrinkProbe) {
		s.met.explainProbes.Inc()
		if !record {
			return
		}
		sp := &obs.Span{
			TraceID:    parent.TraceID,
			SpanID:     obs.NewSpanID(),
			ParentID:   parent.SpanID,
			Name:       "server.explain.probe",
			Kind:       "internal",
			Start:      p.Start,
			DurationMS: float64(p.Duration) / float64(time.Millisecond),
			Status:     "ok",
		}
		if p.Err != nil {
			sp.Status = "error"
		}
		sp.SetAttr("sigmaIndex", strconv.Itoa(p.Index))
		sp.SetAttr("removed", strconv.FormatBool(p.Removed))
		sp.SetAttr("expansions", strconv.Itoa(p.Stats.Expansions))
		s.spans.Add(sp)
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	c := r.URL.Query().Get("category")
	if c == "" {
		writeErr(w, http.StatusBadRequest, "missing category parameter")
		return
	}
	s.met.explainRequests.Inc()
	rz := s.beginReasoning(r, "/explain")
	rz.detail = "category=" + c
	defer rz.finish()

	// The explain phase is its own parent span, so a sampled trace shows
	// server.request → server.explain → one server.explain.probe child per
	// deletion probe, each timed by the engine's ShrinkProbe record.
	record := rz.scOK && rz.sc.Sampled
	var parentSpan *obs.Span
	parentSC := rz.sc
	if record {
		parentSpan, parentSC = obs.StartSpan(rz.sc, "server.explain", "server")
	}
	opts := rz.opts
	opts.ShrinkObserver = s.probeSpanObserver(parentSC, record)

	ex, err := core.ExplainContext(rz.ctx, s.ds, c, opts)
	if parentSpan != nil {
		parentSpan.SetAttr("category", c)
		if ex != nil {
			parentSpan.SetAttr("probes", strconv.Itoa(ex.Probes))
			parentSpan.SetAttr("coreSize", strconv.Itoa(len(ex.Core)))
		}
		st := "ok"
		if err != nil {
			st = "error"
		}
		parentSpan.Finish(st)
		s.spans.Add(parentSpan)
	}
	if err != nil {
		if errors.Is(err, core.ErrBudgetExceeded) || errors.Is(err, context.DeadlineExceeded) {
			s.met.explainExhausted.Inc()
		}
		s.writeReasoningErr(w, err)
		return
	}
	resp := explainResponse{
		Category:        c,
		Satisfiable:     ex.Satisfiable,
		Provenance:      ex.Provenance,
		Frontier:        ex.Frontier,
		Probes:          ex.Probes,
		ProbeExpansions: ex.ProbeStats.Expansions,
		Expansions:      rz.effort.Stats().Expansions,
	}
	if ex.Witness != nil {
		resp.Witness = ex.Witness.String()
	}
	if !ex.Satisfiable {
		resp.Core = ex.Core
		if resp.Core == nil {
			resp.Core = []int{}
		}
		for _, e := range ex.CoreExprs {
			resp.CoreConstraints = append(resp.CoreConstraints, e.String())
		}
		s.met.explainCoreSize.Observe(float64(len(ex.Core)))
	}
	writeJSON(w, http.StatusOK, resp)
}

type impliesRequest struct {
	Constraint string `json:"constraint"`
	// Provenance asks for verdict provenance: the touched set of the
	// deciding Theorem 2 search, and — when the implication holds, i.e.
	// the negation schema is UNSAT — a minimal unsat core over Σ ∪ {¬α}.
	// Provenance-enabled requests bypass the shared verdict cache.
	Provenance bool `json:"provenance"`
}

type impliesResponse struct {
	Constraint     string `json:"constraint"`
	Implied        bool   `json:"implied"`
	Counterexample string `json:"counterexample,omitempty"`
	// Provenance is the touched set of the deciding search (the Theorem 2
	// negation run), present when the request asked for it. In the failed-
	// implication case it scopes the counterexample: only the categories,
	// edges and constraints listed were consulted in building it.
	Provenance *core.Provenance `json:"provenance,omitempty"`
	// Core and CoreConstraints carry the minimal unsat core over the
	// negation schema Σ ∪ {¬α} when the implication holds and provenance
	// was requested. Index len(Σ) denotes ¬α itself; its absence from the
	// core means Σ alone is already unsatisfiable at the constraint's root
	// (a vacuous implication).
	Core            []int    `json:"core,omitempty"`
	CoreConstraints []string `json:"coreConstraints,omitempty"`
}

func (s *Server) handleImplies(w http.ResponseWriter, r *http.Request) {
	var req impliesRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	alpha, err := parser.ParseConstraint(req.Constraint)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	rz := s.beginReasoning(r, "/implies")
	rz.detail = "constraint=" + alpha.String()
	defer rz.finish()
	if req.Provenance {
		s.explainImplies(w, rz, alpha)
		return
	}
	implied, res, err := core.ImpliesContext(rz.ctx, s.ds, alpha, rz.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	resp := impliesResponse{Constraint: alpha.String(), Implied: implied}
	if !implied && res.Witness != nil {
		resp.Counterexample = res.Witness.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// explainImplies answers a provenance-enabled POST /implies: it runs the
// Theorem 2 reduction explicitly and explains the negation schema's
// verdict, so the response carries the touched set and — when the
// implication holds — a minimal unsat core over Σ ∪ {¬α}.
func (s *Server) explainImplies(w http.ResponseWriter, rz *reasoning, alpha constraint.Expr) {
	s.met.explainRequests.Inc()
	neg, root, verdict, decided, err := core.ImpliesReduction(s.ds, alpha)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	if decided {
		writeJSON(w, http.StatusOK, impliesResponse{Constraint: alpha.String(), Implied: verdict})
		return
	}
	opts := rz.opts
	if opts.Compiled != nil {
		// Derive the compiled negation schema like ImpliesContext does; a
		// derive failure falls back to the interpreted engine.
		if dcs, derr := opts.Compiled.Derive(constraint.Not{X: alpha}); derr == nil {
			opts.Compiled = dcs
			neg = dcs.Source()
		} else {
			opts.Compiled = nil
		}
	}
	opts.ShrinkObserver = s.probeSpanObserver(rz.sc, rz.scOK && rz.sc.Sampled)
	ex, err := core.ExplainContext(rz.ctx, neg, root, opts)
	if err != nil {
		if errors.Is(err, core.ErrBudgetExceeded) || errors.Is(err, context.DeadlineExceeded) {
			s.met.explainExhausted.Inc()
		}
		s.writeReasoningErr(w, err)
		return
	}
	resp := impliesResponse{Constraint: alpha.String(), Implied: !ex.Satisfiable, Provenance: ex.Provenance}
	if ex.Satisfiable && ex.Witness != nil {
		resp.Counterexample = ex.Witness.String()
	}
	if !ex.Satisfiable {
		resp.Core = ex.Core
		for _, e := range ex.CoreExprs {
			resp.CoreConstraints = append(resp.CoreConstraints, e.String())
		}
		s.met.explainCoreSize.Observe(float64(len(ex.Core)))
	}
	writeJSON(w, http.StatusOK, resp)
}

type summarizableRequest struct {
	Target string   `json:"target"`
	From   []string `json:"from"`
}

type summarizableResponse struct {
	Target       string         `json:"target"`
	From         []string       `json:"from"`
	Summarizable bool           `json:"summarizable"`
	PerBottom    []bottomResult `json:"perBottom"`
}

type bottomResult struct {
	Bottom         string `json:"bottom"`
	Constraint     string `json:"constraint"`
	Implied        bool   `json:"implied"`
	Counterexample string `json:"counterexample,omitempty"`
}

func (s *Server) handleSummarizable(w http.ResponseWriter, r *http.Request) {
	var req summarizableRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	rz := s.beginReasoning(r, "/summarizable")
	rz.detail = fmt.Sprintf("target=%s from=%v", req.Target, req.From)
	defer rz.finish()
	rep, err := core.SummarizableContext(rz.ctx, s.ds, req.Target, req.From, rz.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	resp := summarizableResponse{
		Target:       req.Target,
		From:         req.From,
		Summarizable: rep.Summarizable(),
	}
	for _, b := range rep.PerBottom {
		br := bottomResult{Bottom: b.Bottom, Constraint: b.Constraint.String(), Implied: b.Implied}
		if !b.Implied && b.Counterexample.Witness != nil {
			br.Counterexample = b.Counterexample.Witness.String()
		}
		resp.PerBottom = append(resp.PerBottom, br)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFrozen(w http.ResponseWriter, r *http.Request) {
	root := r.URL.Query().Get("root")
	if root == "" {
		writeErr(w, http.StatusBadRequest, "missing root parameter")
		return
	}
	rz := s.beginReasoning(r, "/frozen")
	rz.detail = "root=" + root
	defer rz.finish()
	fs, err := core.EnumerateFrozenContext(rz.ctx, s.ds, root, rz.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	writeJSON(w, http.StatusOK, out)
}

// matrixResponse reports each cell as "yes", "no" or "unknown". Unknown
// cells are the partial-degradation contract: a cell whose DIMSAT search
// exhausted the per-request budget or deadline is reported as undecided
// instead of failing the whole matrix; Complete is false in that case and
// clients may retry later for a full answer.
type matrixResponse struct {
	Categories []string                     `json:"categories"`
	From       map[string]map[string]string `json:"from"`
	Complete   bool                         `json:"complete"`
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	rz := s.beginReasoning(r, "/matrix")
	defer rz.finish()
	m, err := core.SummarizabilityMatrixPartialContext(rz.ctx, s.ds, rz.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	resp := matrixResponse{Categories: m.Categories, From: map[string]map[string]string{}, Complete: m.Complete()}
	for _, target := range m.Categories {
		row := map[string]string{}
		for _, src := range m.Categories {
			switch {
			case m.Unknown[target][src]:
				row[src] = "unknown"
			case m.From[target][src]:
				row[src] = "yes"
			default:
				row[src] = "no"
			}
		}
		resp.From[target] = row
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxSourcesSize caps the max parameter of GET /sources: the level-
// synchronous enumeration tests O(N^size) candidate sets, so an
// unbounded size would let one request schedule exponential work.
const maxSourcesSize = 3

// sourcesResponse lists every minimal source set (up to MaxSize
// categories) from which Target is summarizable in all instances.
type sourcesResponse struct {
	Target  string     `json:"target"`
	MaxSize int        `json:"maxSize"`
	Sources [][]string `json:"sources"`
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	target := r.URL.Query().Get("target")
	if target == "" {
		writeErr(w, http.StatusBadRequest, "missing target parameter")
		return
	}
	maxSize := 2
	if q := r.URL.Query().Get("max"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "max must be a positive integer")
			return
		}
		if n > maxSourcesSize {
			writeErr(w, http.StatusBadRequest, "max exceeds the limit of %d", maxSourcesSize)
			return
		}
		maxSize = n
	}
	rz := s.beginReasoning(r, "/sources")
	rz.detail = fmt.Sprintf("target=%s max=%d", target, maxSize)
	defer rz.finish()
	srcs, err := core.MinimalSourcesContext(rz.ctx, s.ds, target, maxSize, rz.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	if srcs == nil {
		srcs = [][]string{}
	}
	writeJSON(w, http.StatusOK, sourcesResponse{Target: target, MaxSize: maxSize, Sources: srcs})
}

// statsResponse surfaces the server's cumulative reasoning effort, the
// shared cache's effectiveness, and the robustness counters (contained
// panics, shed requests), for dashboards and capacity planning. Every
// figure is a view over the metrics registry (or the cache/job-store
// snapshots the registry itself scrapes), so /stats and /metrics can
// never disagree.
type statsResponse struct {
	UptimeSeconds  float64 `json:"uptimeSeconds"`
	Requests       int64   `json:"requests"`
	Timeouts       int64   `json:"timeouts"`
	Panics         int64   `json:"panics"`
	Shed           int64   `json:"shed"`
	InFlight       int64   `json:"inFlight"`
	Queued         int64   `json:"queued"`
	CacheHits      uint64  `json:"cacheHits"`
	CacheMisses    uint64  `json:"cacheMisses"`
	CacheHitRate   float64 `json:"cacheHitRate"`
	CacheEntries   int     `json:"cacheEntries"`
	Expansions     int     `json:"expansions"`
	Checks         int     `json:"checks"`
	DeadEnds       int     `json:"deadEnds"`
	RequestTimeout string  `json:"requestTimeout,omitempty"`
	MaxConcurrent  int     `json:"maxConcurrent,omitempty"`
	// LatencySeconds summarizes the 2xx request-latency histogram as
	// interpolated quantiles (obs.Histogram.Quantile) instead of raw
	// bucket dumps; absent until the first successful request completes.
	LatencySeconds *quantileView `json:"latencySeconds,omitempty"`
	// ExpansionsPerRequest summarizes the per-request search-effort
	// histogram the same way.
	ExpansionsPerRequest *quantileView `json:"expansionsPerRequest,omitempty"`
	// Jobs carries the durable job-store counters (recovered, resumed,
	// corrupt-rejected, ...) when the server hosts a job store.
	Jobs *jobs.Counters `json:"jobs,omitempty"`
}

// quantileView is the /stats rendering of one histogram: interpolated
// percentiles over everything observed since the server started, plus —
// when the histogram carries one — the exemplar naming the trace of the
// slowest observation, so "p99 moved" links straight to a trace at
// GET /debug/spans/{traceId}.
type quantileView struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	// SlowestExemplar is the trace ID and value of the largest
	// observation recorded so far (exposition 0.0.4 has no exemplar
	// syntax, so /stats is where exemplars surface).
	SlowestExemplar *obs.Exemplar `json:"slowestExemplar,omitempty"`
}

// viewQuantiles summarizes h, nil while the histogram is empty so the
// JSON field stays absent rather than reporting zeros as measurements.
func viewQuantiles(h *obs.Histogram) *quantileView {
	if h == nil || h.Count() == 0 {
		return nil
	}
	v := &quantileView{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	if ex, ok := h.Exemplar(); ok {
		v.SlowestExemplar = &ex
	}
	return v
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	resp := statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      int64(s.met.received.Value()),
		Timeouts:      int64(s.met.timeouts.Value()),
		Panics:        int64(s.met.panics.Value()),
		Shed:          int64(s.met.shed.Value()),
		InFlight:      s.met.inflight.Value(),
		Queued:        s.met.queued.Value(),
		CacheHits:     cs.Hits,
		CacheMisses:   cs.Misses,
		CacheHitRate:  cs.HitRate(),
		CacheEntries:  cs.Entries,
		Expansions:    cs.Work.Expansions,
		Checks:        cs.Work.Checks,
		DeadEnds:      cs.Work.DeadEnds,

		LatencySeconds:       viewQuantiles(s.met.reqDur.With("2xx")),
		ExpansionsPerRequest: viewQuantiles(s.met.searchExpansions),
	}
	if s.timeout > 0 {
		resp.RequestTimeout = s.timeout.String()
	}
	if s.sem != nil {
		resp.MaxConcurrent = cap(s.sem)
	}
	if s.jobs != nil {
		c := s.jobs.Counters()
		resp.Jobs = &c
	}
	writeJSON(w, http.StatusOK, resp)
}

// jobView is the HTTP rendering of a job status.
type jobView struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Category string `json:"category,omitempty"`
	// Constraint echoes the implication constraint source.
	Constraint string       `json:"constraint,omitempty"`
	State      string       `json:"state"`
	Attempts   int          `json:"attempts"`
	Expansions int          `json:"expansions"`
	Checks     int          `json:"checks"`
	Error      string       `json:"error,omitempty"`
	Result     *jobs.Result `json:"result,omitempty"`
	// TraceID names the distributed trace the job belongs to (persisted
	// in the job record, so it survives crash/handoff).
	TraceID string `json:"traceId,omitempty"`
}

func viewOf(st jobs.Status) jobView {
	v := jobView{
		ID:         st.ID,
		Kind:       st.Request.Kind,
		Category:   st.Request.Category,
		Constraint: st.Request.Constraint,
		State:      string(st.State),
		Attempts:   st.Attempts,
		Expansions: st.Stats.Expansions,
		Checks:     st.Stats.Checks,
		Error:      st.Error,
		Result:     st.Result,
	}
	if sc, ok := obs.ParseTraceparent(st.Request.TraceContext); ok {
		v.TraceID = sc.TraceID
	}
	return v
}

// handleJobSubmit accepts a durable reasoning job: 202 with the job view
// when newly created, 200 when an idempotency key matched an existing job.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	if !s.decodeBody(w, r, &req) {
		return
	}
	// A submit with no trace context of its own (the coordinator sends
	// one; a direct client usually does not) joins this request's trace,
	// so the job's lifecycle spans — across crashes and handoffs — stay
	// reachable from the submitting request's trace ID.
	if req.TraceContext == "" {
		if sc, ok := obs.SpanFrom(r.Context()); ok {
			req.TraceContext = sc.Traceparent()
		}
	}
	st, created, err := s.jobs.Submit(req)
	if err != nil {
		// A storage failure is not the client's fault: the submit was
		// rolled back, nothing acknowledged — answer 503 so the client
		// (or a cluster coordinator) retries elsewhere or later, instead
		// of the 400 a malformed request earns. (Chaos seed 3 — submits
		// landing inside an ENOSPC window — caught the earlier 400 mapping
		// as a typed-errors invariant violation; the seed-3 entry in
		// internal/chaos's regression table pins the fix.)
		if errors.Is(err, jobs.ErrStorage) {
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, viewOf(st))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	sts := s.jobs.Jobs()
	out := make([]jobView, len(sts))
	for i, st := range sts {
		out[i] = viewOf(st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, viewOf(st))
}

// handleJobCheckpoint serves the raw encoded bytes of a job's latest
// durable search checkpoint: 200 with the encoding, 404 when the job is
// unknown or has none. A cluster coordinator polls this to mirror
// checkpoints, so a job can be re-enqueued on another shard — seed
// attached — after this worker dies.
func (s *Server) handleJobCheckpoint(w http.ResponseWriter, r *http.Request) {
	payload, err := s.jobs.CheckpointData(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

// handleJobCancel cancels a job: 200 with the final view, 404 for an
// unknown ID, 409 when the job already reached a terminal state.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		writeErr(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, jobs.ErrJobTerminal):
		writeErr(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusOK, viewOf(st))
	}
}
