// Package server exposes the dimension-constraint reasoner over HTTP as a
// small JSON API, so OLAP middleware (query rewriters, view advisors) can
// consult summarizability without linking Go code. One server instance
// hosts one dimension schema; all endpoints are read-only and safe for
// concurrent use.
//
// Every reasoning endpoint runs under the request context bounded by the
// configured per-request timeout, so a canceled client or an adversarial
// schema cannot wedge a serving goroutine: the DIMSAT search aborts within
// one EXPAND step and the handler answers 503/504 with the error. All
// requests share one satisfiability cache, so repeated roots — across a
// matrix request or across clients — are solved once.
//
//	GET  /schema                         the schema in .dims syntax
//	GET  /categories                     categories with satisfiability
//	GET  /sat?category=Store             category satisfiability + witness
//	POST /implies        {"constraint": "Store.Country"}
//	POST /summarizable   {"target": "Country", "from": ["City"]}
//	GET  /frozen?root=Store              frozen dimensions
//	GET  /matrix                         single-source summarizability
//	GET  /stats                          cache hit rates, cumulative effort
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"olapdim/internal/core"
	"olapdim/internal/parser"
)

// Config tunes a Server beyond the core reasoning options.
type Config struct {
	// Options are the DIMSAT options applied to every request. When
	// Options.Cache is nil the server installs its own shared cache.
	Options core.Options
	// RequestTimeout bounds each reasoning request; zero means requests
	// run until the client disconnects.
	RequestTimeout time.Duration
}

// Server hosts one dimension schema.
type Server struct {
	ds    *core.DimensionSchema
	opts  core.Options
	cache *core.SatCache
	mux   *http.ServeMux

	timeout  time.Duration
	started  time.Time
	requests atomic.Int64
	timeouts atomic.Int64
}

// New builds a server for a validated dimension schema with default
// configuration (shared cache, no request timeout).
func New(ds *core.DimensionSchema, opts core.Options) (*Server, error) {
	return NewWithConfig(ds, Config{Options: opts})
}

// NewWithConfig builds a server with explicit configuration.
func NewWithConfig(ds *core.DimensionSchema, cfg Config) (*Server, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	opts := cfg.Options
	if opts.Cache == nil {
		opts.Cache = core.NewSatCache()
	}
	s := &Server{
		ds:      ds,
		opts:    opts,
		cache:   opts.Cache,
		mux:     http.NewServeMux(),
		timeout: cfg.RequestTimeout,
		started: time.Now(),
	}
	s.mux.HandleFunc("GET /schema", s.handleSchema)
	s.mux.HandleFunc("GET /categories", s.handleCategories)
	s.mux.HandleFunc("GET /sat", s.handleSat)
	s.mux.HandleFunc("POST /implies", s.handleImplies)
	s.mux.HandleFunc("POST /summarizable", s.handleSummarizable)
	s.mux.HandleFunc("GET /frozen", s.handleFrozen)
	s.mux.HandleFunc("GET /matrix", s.handleMatrix)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// requestContext derives the reasoning context for one request, applying
// the per-request timeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeReasoningErr maps engine errors to HTTP statuses: deadline and
// budget exhaustion are service-side limits (504/503), a canceled request
// context means the client is gone, and anything else is a bad request
// (unknown category, parse error).
func (s *Server) writeReasoningErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		writeErr(w, http.StatusGatewayTimeout, "reasoning timed out: %v", err)
	case errors.Is(err, core.ErrBudgetExceeded):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.Canceled):
		// The client disconnected; nothing useful can be written.
		writeErr(w, http.StatusServiceUnavailable, "request canceled")
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.ds.Format())
}

type categoryInfo struct {
	Name        string `json:"name"`
	Satisfiable bool   `json:"satisfiable"`
	Bottom      bool   `json:"bottom"`
}

func (s *Server) handleCategories(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	sat, err := core.CategorySatisfiabilityContext(ctx, s.ds, s.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	bottoms := map[string]bool{}
	for _, b := range s.ds.G.Bottoms() {
		bottoms[b] = true
	}
	var out []categoryInfo
	for _, c := range s.ds.G.SortedCategories() {
		out = append(out, categoryInfo{Name: c, Satisfiable: sat[c], Bottom: bottoms[c]})
	}
	writeJSON(w, http.StatusOK, out)
}

type satResponse struct {
	Category    string `json:"category"`
	Satisfiable bool   `json:"satisfiable"`
	Witness     string `json:"witness,omitempty"`
	Expansions  int    `json:"expansions"`
	Checks      int    `json:"checks"`
}

func (s *Server) handleSat(w http.ResponseWriter, r *http.Request) {
	c := r.URL.Query().Get("category")
	if c == "" {
		writeErr(w, http.StatusBadRequest, "missing category parameter")
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, err := core.SatisfiableContext(ctx, s.ds, c, s.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	resp := satResponse{
		Category:    c,
		Satisfiable: res.Satisfiable,
		Expansions:  res.Stats.Expansions,
		Checks:      res.Stats.Checks,
	}
	if res.Witness != nil {
		resp.Witness = res.Witness.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

type impliesRequest struct {
	Constraint string `json:"constraint"`
}

type impliesResponse struct {
	Constraint     string `json:"constraint"`
	Implied        bool   `json:"implied"`
	Counterexample string `json:"counterexample,omitempty"`
}

func (s *Server) handleImplies(w http.ResponseWriter, r *http.Request) {
	var req impliesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	alpha, err := parser.ParseConstraint(req.Constraint)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	implied, res, err := core.ImpliesContext(ctx, s.ds, alpha, s.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	resp := impliesResponse{Constraint: alpha.String(), Implied: implied}
	if !implied && res.Witness != nil {
		resp.Counterexample = res.Witness.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

type summarizableRequest struct {
	Target string   `json:"target"`
	From   []string `json:"from"`
}

type summarizableResponse struct {
	Target       string         `json:"target"`
	From         []string       `json:"from"`
	Summarizable bool           `json:"summarizable"`
	PerBottom    []bottomResult `json:"perBottom"`
}

type bottomResult struct {
	Bottom         string `json:"bottom"`
	Constraint     string `json:"constraint"`
	Implied        bool   `json:"implied"`
	Counterexample string `json:"counterexample,omitempty"`
}

func (s *Server) handleSummarizable(w http.ResponseWriter, r *http.Request) {
	var req summarizableRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	rep, err := core.SummarizableContext(ctx, s.ds, req.Target, req.From, s.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	resp := summarizableResponse{
		Target:       req.Target,
		From:         req.From,
		Summarizable: rep.Summarizable(),
	}
	for _, b := range rep.PerBottom {
		br := bottomResult{Bottom: b.Bottom, Constraint: b.Constraint.String(), Implied: b.Implied}
		if !b.Implied && b.Counterexample.Witness != nil {
			br.Counterexample = b.Counterexample.Witness.String()
		}
		resp.PerBottom = append(resp.PerBottom, br)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFrozen(w http.ResponseWriter, r *http.Request) {
	root := r.URL.Query().Get("root")
	if root == "" {
		writeErr(w, http.StatusBadRequest, "missing root parameter")
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	fs, err := core.EnumerateFrozenContext(ctx, s.ds, root, s.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	writeJSON(w, http.StatusOK, out)
}

type matrixResponse struct {
	Categories []string                   `json:"categories"`
	From       map[string]map[string]bool `json:"from"`
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	m, err := core.SummarizabilityMatrixContext(ctx, s.ds, s.opts)
	if err != nil {
		s.writeReasoningErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, matrixResponse{Categories: m.Categories, From: m.From})
}

// statsResponse surfaces the server's cumulative reasoning effort and the
// shared cache's effectiveness, for dashboards and capacity planning.
type statsResponse struct {
	UptimeSeconds  float64 `json:"uptimeSeconds"`
	Requests       int64   `json:"requests"`
	Timeouts       int64   `json:"timeouts"`
	CacheHits      uint64  `json:"cacheHits"`
	CacheMisses    uint64  `json:"cacheMisses"`
	CacheHitRate   float64 `json:"cacheHitRate"`
	CacheEntries   int     `json:"cacheEntries"`
	Expansions     int     `json:"expansions"`
	Checks         int     `json:"checks"`
	DeadEnds       int     `json:"deadEnds"`
	RequestTimeout string  `json:"requestTimeout,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	resp := statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.requests.Load(),
		Timeouts:      s.timeouts.Load(),
		CacheHits:     cs.Hits,
		CacheMisses:   cs.Misses,
		CacheHitRate:  cs.HitRate(),
		CacheEntries:  cs.Entries,
		Expansions:    cs.Work.Expansions,
		Checks:        cs.Work.Checks,
		DeadEnds:      cs.Work.DeadEnds,
	}
	if s.timeout > 0 {
		resp.RequestTimeout = s.timeout.String()
	}
	writeJSON(w, http.StatusOK, resp)
}
