package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"olapdim/internal/jobs"
	"olapdim/internal/paper"
)

// jobsServer builds a server with a durable job store, started, with the
// store's workers gated by the server's admission semaphore.
func jobsServer(t *testing.T, cfg Config) (*httptest.Server, *jobs.Store) {
	t.Helper()
	store, err := jobs.Open(jobs.Config{
		Dir:             t.TempDir(),
		Schema:          paper.LocationSch(),
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	cfg.Jobs = store
	s, err := NewWithConfig(paper.LocationSch(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	store.Start()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, store
}

type jobViewResp struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
	Result   *struct {
		Satisfiable *bool  `json:"satisfiable,omitempty"`
		Implied     *bool  `json:"implied,omitempty"`
		Witness     string `json:"witness,omitempty"`
	} `json:"result,omitempty"`
}

// awaitJob polls the HTTP status endpoint until the job is terminal.
func awaitJob(t *testing.T, ts *httptest.Server, id string) jobViewResp {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var v jobViewResp
	for time.Now().Before(deadline) {
		if code := get(t, ts, "/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		switch v.State {
		case "done", "failed", "cancelled":
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal after 10s (state %s)", id, v.State)
	return v
}

func TestJobEndpointsLifecycle(t *testing.T) {
	ts, _ := jobsServer(t, Config{})
	var v jobViewResp
	code := post(t, ts, "/jobs", `{"kind": "sat", "category": "Store"}`, &v)
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", code)
	}
	if v.ID == "" || v.Kind != "sat" {
		t.Fatalf("job view = %+v", v)
	}
	final := awaitJob(t, ts, v.ID)
	if final.State != "done" || final.Result == nil || final.Result.Satisfiable == nil || !*final.Result.Satisfiable {
		t.Fatalf("final = %+v, want done and satisfiable", final)
	}

	// The stats endpoint surfaces the job-store counters.
	var stats struct {
		Jobs *jobs.Counters `json:"jobs"`
	}
	if code := get(t, ts, "/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	if stats.Jobs == nil || stats.Jobs.Submitted != 1 || stats.Jobs.Done != 1 {
		t.Fatalf("stats.jobs = %+v, want Submitted=1 Done=1", stats.Jobs)
	}
}

func TestJobEndpointsIdempotencyAndErrors(t *testing.T) {
	ts, _ := jobsServer(t, Config{})
	var a, b jobViewResp
	if code := post(t, ts, "/jobs", `{"kind": "implies", "constraint": "Store.Country", "idempotencyKey": "k"}`, &a); code != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", code)
	}
	if code := post(t, ts, "/jobs", `{"kind": "implies", "constraint": "Store.Country", "idempotencyKey": "k"}`, &b); code != http.StatusOK {
		t.Fatalf("idempotent POST = %d, want 200", code)
	}
	if a.ID != b.ID {
		t.Errorf("idempotent resubmit created new job: %s vs %s", a.ID, b.ID)
	}
	if code := post(t, ts, "/jobs", `{"kind": "sat", "category": "Nope"}`, nil); code != http.StatusBadRequest {
		t.Errorf("bad category POST = %d, want 400", code)
	}
	if code := post(t, ts, "/jobs", `{"kind": "wat"}`, nil); code != http.StatusBadRequest {
		t.Errorf("bad kind POST = %d, want 400", code)
	}
	if code := get(t, ts, "/jobs/j999999", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", code)
	}
	final := awaitJob(t, ts, a.ID)
	if final.State != "done" || final.Result == nil || final.Result.Implied == nil || !*final.Result.Implied {
		t.Fatalf("final = %+v, want done and implied (paper Theorem 2 example)", final)
	}
}

func TestJobCancelEndpoint(t *testing.T) {
	ts, _ := jobsServer(t, Config{})
	var v jobViewResp
	if code := post(t, ts, "/jobs", `{"kind": "sat", "category": "Store"}`, &v); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	final := awaitJob(t, ts, v.ID)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The job already finished: cancel conflicts.
	if final.State == "done" && resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE terminal job = %d, want 409", resp.StatusCode)
	}
	req, err = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/j999999", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestJobWorkersShareAdmission pins the tentpole wiring requirement: job
// workers occupy the same execution slots as interactive requests, so a
// server with MaxConcurrent=1 never runs a job and a request at once.
func TestJobWorkersShareAdmission(t *testing.T) {
	ts, store := jobsServer(t, Config{MaxConcurrent: 1, MaxQueue: 8, QueueWait: 5 * time.Second})
	var ids []string
	for i := 0; i < 4; i++ {
		var v jobViewResp
		body := fmt.Sprintf(`{"kind": "sat", "category": "Store", "idempotencyKey": "adm-%d"}`, i)
		if code := post(t, ts, "/jobs", body, &v); code != http.StatusAccepted {
			t.Fatalf("POST %d = %d", i, code)
		}
		ids = append(ids, v.ID)
	}
	// Interactive traffic interleaves with the job backlog on the single
	// slot; everything must still complete.
	var sat struct {
		Satisfiable bool `json:"satisfiable"`
	}
	if code := get(t, ts, "/sat?category=Store", &sat); code != http.StatusOK {
		t.Fatalf("GET /sat = %d", code)
	}
	for _, id := range ids {
		if v := awaitJob(t, ts, id); v.State != "done" {
			t.Fatalf("job %s = %+v, want done", id, v)
		}
	}
	if c := store.Counters(); c.Done != 4 {
		t.Errorf("Done = %d, want 4", c.Done)
	}
}
