package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"olapdim/internal/core"
	"olapdim/internal/paper"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := New(paper.LocationSch(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func post(t *testing.T, ts *httptest.Server, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestSourcesEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp struct {
		Target  string     `json:"target"`
		MaxSize int        `json:"maxSize"`
		Sources [][]string `json:"sources"`
	}
	if code := get(t, ts, "/sources?target=Country&max=1", &resp); code != http.StatusOK {
		t.Fatalf("/sources = %d", code)
	}
	if resp.Target != "Country" || resp.MaxSize != 1 {
		t.Errorf("response echo = %+v", resp)
	}
	// {Country} itself is always a certified singleton source.
	found := false
	for _, s := range resp.Sources {
		if len(s) == 1 && s[0] == "Country" {
			found = true
		}
	}
	if !found {
		t.Errorf("sources = %v, want to contain [Country]", resp.Sources)
	}

	for _, c := range []struct {
		path string
		code int
	}{
		{"/sources", http.StatusBadRequest},             // missing target
		{"/sources?target=Nope", http.StatusBadRequest}, // unknown category
		{"/sources?target=Country&max=0", http.StatusBadRequest},
		{"/sources?target=Country&max=99", http.StatusBadRequest}, // over the cap
		{"/sources?target=Country&max=x", http.StatusBadRequest},
	} {
		if code := get(t, ts, c.path, nil); code != c.code {
			t.Errorf("GET %s = %d, want %d", c.path, code, c.code)
		}
	}
}

// TestStatsQuantiles checks that /stats reports interpolated latency and
// effort quantiles once requests have completed, and omits them on a
// fresh server instead of reporting zeros.
func TestStatsQuantiles(t *testing.T) {
	ts := testServer(t)
	var fresh map[string]json.RawMessage
	if code := get(t, ts, "/stats", &fresh); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	if _, ok := fresh["expansionsPerRequest"]; ok {
		t.Error("fresh /stats already has expansionsPerRequest")
	}

	if code := get(t, ts, "/sat?category=Store", nil); code != http.StatusOK {
		t.Fatalf("/sat = %d", code)
	}
	var stats struct {
		LatencySeconds *struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50"`
			P999  float64 `json:"p999"`
		} `json:"latencySeconds"`
		ExpansionsPerRequest *struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50"`
		} `json:"expansionsPerRequest"`
	}
	if code := get(t, ts, "/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	if stats.LatencySeconds == nil || stats.LatencySeconds.Count == 0 {
		t.Fatalf("latencySeconds missing after a 2xx request: %+v", stats)
	}
	if stats.LatencySeconds.P999 < stats.LatencySeconds.P50 {
		t.Errorf("p999 %v < p50 %v", stats.LatencySeconds.P999, stats.LatencySeconds.P50)
	}
	if stats.ExpansionsPerRequest == nil || stats.ExpansionsPerRequest.Count == 0 {
		t.Fatalf("expansionsPerRequest missing after a search: %+v", stats)
	}
}

// TestBuildInfoMetric checks the olapdim_build_info gauge is exposed
// with the three metadata labels.
func TestBuildInfoMetric(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "olapdim_build_info{") {
		t.Fatalf("/metrics has no olapdim_build_info:\n%s", text[:min(len(text), 400)])
	}
	for _, label := range []string{`goversion="go`, `revision="`, `version="`} {
		if !strings.Contains(text, label) {
			t.Errorf("olapdim_build_info missing label %s", label)
		}
	}
}

func TestSchemaEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "schema location") || !strings.Contains(text, "constraint Store_City") {
		t.Errorf("schema body:\n%s", text)
	}
}

func TestCategoriesEndpoint(t *testing.T) {
	ts := testServer(t)
	var cats []struct {
		Name        string `json:"name"`
		Satisfiable bool   `json:"satisfiable"`
		Bottom      bool   `json:"bottom"`
	}
	if code := get(t, ts, "/categories", &cats); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(cats) != 7 {
		t.Fatalf("categories = %d", len(cats))
	}
	for _, c := range cats {
		if !c.Satisfiable {
			t.Errorf("category %s unsatisfiable", c.Name)
		}
		if c.Bottom != (c.Name == "Store") {
			t.Errorf("category %s bottom = %v", c.Name, c.Bottom)
		}
	}
}

func TestSatEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp satResponse
	if code := get(t, ts, "/sat?category=Store", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !resp.Satisfiable || resp.Witness == "" || resp.Expansions == 0 {
		t.Errorf("response = %+v", resp)
	}
	if code := get(t, ts, "/sat?category=Ghost", nil); code != 400 {
		t.Errorf("unknown category status %d", code)
	}
	if code := get(t, ts, "/sat", nil); code != 400 {
		t.Errorf("missing category status %d", code)
	}
}

func TestImpliesEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp impliesResponse
	if code := post(t, ts, "/implies", `{"constraint": "Store.Country"}`, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !resp.Implied {
		t.Error("Store.Country should be implied")
	}
	resp = impliesResponse{}
	if code := post(t, ts, "/implies", `{"constraint": "Store_SaleRegion"}`, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Implied || resp.Counterexample == "" {
		t.Errorf("response = %+v", resp)
	}
	if code := post(t, ts, "/implies", `{"constraint": "("}`, nil); code != 400 {
		t.Errorf("bad constraint status %d", code)
	}
	if code := post(t, ts, "/implies", `{`, nil); code != 400 {
		t.Errorf("bad JSON status %d", code)
	}
}

func TestSummarizableEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp summarizableResponse
	if code := post(t, ts, "/summarizable", `{"target":"Country","from":["City"]}`, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !resp.Summarizable || len(resp.PerBottom) != 1 {
		t.Errorf("response = %+v", resp)
	}
	resp = summarizableResponse{}
	if code := post(t, ts, "/summarizable", `{"target":"Country","from":["State","Province"]}`, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Summarizable {
		t.Error("Example 10's negative case certified")
	}
	if resp.PerBottom[0].Counterexample == "" {
		t.Error("missing counterexample")
	}
	if code := post(t, ts, "/summarizable", `{"target":"Ghost","from":["City"]}`, nil); code != 400 {
		t.Errorf("unknown target status %d", code)
	}
}

func TestFrozenEndpoint(t *testing.T) {
	ts := testServer(t)
	var fs []string
	if code := get(t, ts, "/frozen?root=Store", &fs); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(fs) != 4 {
		t.Errorf("frozen = %v", fs)
	}
	if code := get(t, ts, "/frozen", nil); code != 400 {
		t.Errorf("missing root status %d", code)
	}
}

func TestMatrixEndpoint(t *testing.T) {
	ts := testServer(t)
	var resp matrixResponse
	if code := get(t, ts, "/matrix", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Categories) != 6 {
		t.Errorf("categories = %v", resp.Categories)
	}
	if !resp.Complete {
		t.Error("unbudgeted matrix should be complete")
	}
	if resp.From["Country"]["City"] != "yes" || resp.From["Country"]["State"] != "no" {
		t.Errorf("matrix = %v", resp.From["Country"])
	}
}

func TestNewRejectsInvalidSchema(t *testing.T) {
	if _, err := New(core.NewDimensionSchema(nil), core.Options{}); err == nil {
		t.Error("invalid schema accepted")
	}
}

// TestConcurrentRequests hammers the read-only endpoints from several
// goroutines; run with -race this validates the documented concurrency
// safety of the service.
func TestConcurrentRequests(t *testing.T) {
	ts := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				var resp *http.Response
				var err error
				if j%2 == 0 {
					resp, err = http.Get(ts.URL + "/sat?category=Store")
				} else {
					resp, err = http.Post(ts.URL+"/summarizable", "application/json",
						strings.NewReader(`{"target":"Country","from":["City"]}`))
				}
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	// Warm the cache: two identical sat queries, the second must hit.
	if code := get(t, ts, "/sat?category=Store", nil); code != 200 {
		t.Fatalf("status %d", code)
	}
	if code := get(t, ts, "/sat?category=Store", nil); code != 200 {
		t.Fatalf("status %d", code)
	}
	var resp statsResponse
	if code := get(t, ts, "/stats", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Requests < 3 {
		t.Errorf("requests = %d, want >= 3", resp.Requests)
	}
	if resp.CacheMisses != 1 || resp.CacheHits != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", resp.CacheHits, resp.CacheMisses)
	}
	if resp.Expansions == 0 {
		t.Error("no cumulative search effort recorded")
	}
	if resp.UptimeSeconds < 0 {
		t.Errorf("uptime = %f", resp.UptimeSeconds)
	}
}

// TestRequestTimeout wires an immediately-expiring per-request deadline
// and checks that reasoning endpoints answer 504 instead of hanging —
// except /matrix, which degrades to a partial all-unknown response.
func TestRequestTimeout(t *testing.T) {
	s, err := NewWithConfig(paper.LocationSch(), Config{RequestTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	if code := get(t, ts, "/sat?category=Store", nil); code != http.StatusGatewayTimeout {
		t.Errorf("sat status = %d, want 504", code)
	}
	var m matrixResponse
	if code := get(t, ts, "/matrix", &m); code != 200 {
		t.Errorf("matrix status = %d, want 200 (partial degradation)", code)
	}
	if m.Complete {
		t.Error("matrix under an expired deadline reported complete")
	}
	if got := m.From["Country"]["City"]; got != "unknown" {
		t.Errorf("cell under expired deadline = %q, want unknown", got)
	}
	// Non-reasoning endpoints are unaffected by the deadline.
	if code := get(t, ts, "/stats", nil); code != 200 {
		t.Errorf("stats status = %d, want 200", code)
	}
	var stats statsResponse
	if code := get(t, ts, "/stats", &stats); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if stats.Timeouts < 1 {
		t.Errorf("timeouts = %d, want >= 1", stats.Timeouts)
	}
}

// TestSharedCacheAcrossRequests checks that the matrix endpoint reuses
// satisfiability results computed by earlier requests.
func TestSharedCacheAcrossRequests(t *testing.T) {
	ts := testServer(t)
	if code := get(t, ts, "/matrix", nil); code != 200 {
		t.Fatalf("status %d", code)
	}
	var first statsResponse
	if code := get(t, ts, "/stats", &first); code != 200 {
		t.Fatalf("status %d", code)
	}
	if code := get(t, ts, "/matrix", nil); code != 200 {
		t.Fatalf("status %d", code)
	}
	var second statsResponse
	if code := get(t, ts, "/stats", &second); code != 200 {
		t.Fatalf("status %d", code)
	}
	if second.CacheMisses != first.CacheMisses {
		t.Errorf("second matrix recomputed: misses %d -> %d", first.CacheMisses, second.CacheMisses)
	}
	if second.CacheHits <= first.CacheHits {
		t.Errorf("second matrix did not hit the cache: hits %d -> %d", first.CacheHits, second.CacheHits)
	}
}

func TestBudgetExceededMapsTo503(t *testing.T) {
	s, err := NewWithConfig(paper.LocationSch(), Config{Options: core.Options{MaxExpansions: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	if code := get(t, ts, "/sat?category=Store", nil); code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", code)
	}
}
