package faults

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	for i := 0; i < 3; i++ {
		if err := in.Hit(SitePoolTask); err != nil {
			t.Fatalf("nil injector returned %v", err)
		}
	}
	if in.Hits(SitePoolTask) != 0 || in.Fired(SitePoolTask) != 0 {
		t.Error("nil injector recorded activity")
	}
}

func TestOnFiresExactHitsOnce(t *testing.T) {
	in := New(Rule{Site: SitePoolTask, Kind: Error, On: []int{2, 4}})
	var got []int
	for i := 1; i <= 6; i++ {
		if err := in.Hit(SitePoolTask); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: %v", i, err)
			}
			got = append(got, i)
		}
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("fired on hits %v, want [2 4]", got)
	}
	if in.Hits(SitePoolTask) != 6 || in.Fired(SitePoolTask) != 2 {
		t.Errorf("hits/fired = %d/%d, want 6/2", in.Hits(SitePoolTask), in.Fired(SitePoolTask))
	}
}

func TestEveryNth(t *testing.T) {
	in := New(Rule{Site: SiteExpand, Kind: Error, Every: 3})
	var fired int
	for i := 1; i <= 9; i++ {
		if err := in.Hit(SiteExpand); err != nil {
			if i%3 != 0 {
				t.Errorf("fired on hit %d", i)
			}
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("fired %d times, want 3", fired)
	}
}

func TestCustomError(t *testing.T) {
	boom := errors.New("boom")
	in := New(Rule{Site: SiteCacheLookup, Kind: Error, Err: boom})
	if err := in.Hit(SiteCacheLookup); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestSitesAreIndependent(t *testing.T) {
	in := New(Rule{Site: SiteCacheLookup, Kind: Error})
	if err := in.Hit(SitePoolTask); err != nil {
		t.Errorf("other site fired: %v", err)
	}
	if err := in.Hit(SiteCacheLookup); !errors.Is(err, ErrInjected) {
		t.Errorf("armed site did not fire: %v", err)
	}
}

func TestPanicCarriesSiteAndHit(t *testing.T) {
	in := New(Rule{Site: SitePoolTask, Kind: Panic, On: []int{2}})
	if err := in.Hit(SitePoolTask); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicValue", r, r)
		}
		if pv.Site != SitePoolTask || pv.Hit != 2 {
			t.Errorf("panic value = %+v", pv)
		}
	}()
	in.Hit(SitePoolTask)
	t.Fatal("hit 2 did not panic")
}

func TestLatencyComposesWithError(t *testing.T) {
	in := New(
		Rule{Site: SiteExpand, Kind: Latency, Delay: 20 * time.Millisecond},
		Rule{Site: SiteExpand, Kind: Error},
	)
	start := time.Now()
	err := in.Hit(SiteExpand)
	if !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want injected", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("slept %v, want >= 20ms", d)
	}
	if in.Fired(SiteExpand) != 2 {
		t.Errorf("fired = %d, want 2 (latency + error)", in.Fired(SiteExpand))
	}
}

func TestLatencyAloneIsNotAFailure(t *testing.T) {
	in := New(Rule{Site: SiteExpand, Kind: Latency, Delay: time.Millisecond})
	if err := in.Hit(SiteExpand); err != nil {
		t.Errorf("latency-only rule returned %v", err)
	}
}

// TestProbDeterminism replays a probabilistic schedule with the same seed
// and checks the firing pattern is identical; a different seed should
// (for this configuration) give a different pattern.
func TestProbDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := NewSeeded(seed, Rule{Site: SiteExpand, Kind: Error, Prob: 0.5})
		var p []bool
		for i := 0; i < 64; i++ {
			p = append(p, in.Hit(SiteExpand) != nil)
		}
		return p
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i+1)
		}
	}
	c := pattern(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-hit schedules")
	}
}

func TestDefaultRuleFiresAlways(t *testing.T) {
	in := New(Rule{Site: SiteCacheLookup, Kind: Error})
	for i := 0; i < 5; i++ {
		if err := in.Hit(SiteCacheLookup); err == nil {
			t.Fatalf("hit %d did not fire", i+1)
		}
	}
}

func TestUnknownSiteRejected(t *testing.T) {
	bad := Rule{Site: "dimsat.expandd", Kind: Error}
	if err := Check(bad); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("Check = %v, want ErrUnknownSite", err)
	}
	if _, err := NewValidated(1, bad); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("NewValidated = %v, want ErrUnknownSite", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted a rule for an unknown site")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrUnknownSite) {
			t.Fatalf("New panicked with %v, want ErrUnknownSite", r)
		}
	}()
	New(bad)
}

func TestCorruptRuleReturnsCorruptError(t *testing.T) {
	in := New(Rule{Site: SiteSnapshotRead, Kind: Corrupt, On: []int{2}})
	if err := in.Hit(SiteSnapshotRead); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	err := in.Hit(SiteSnapshotRead)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("hit 2 returned %v, want *CorruptError", err)
	}
	if ce.Site != SiteSnapshotRead || ce.Hit != 2 {
		t.Errorf("corrupt error = %+v", ce)
	}
}

func TestFlipBitDeterministicSingleBit(t *testing.T) {
	orig := []byte("snapshot payload")
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	if !FlipBit(a, 7) || !FlipBit(b, 7) {
		t.Fatal("FlipBit reported no change on non-empty data")
	}
	if string(a) != string(b) {
		t.Error("same hit produced different mutations")
	}
	diffBits := 0
	for i := range a {
		x := a[i] ^ orig[i]
		for x != 0 {
			diffBits += int(x & 1)
			x >>= 1
		}
	}
	if diffBits != 1 {
		t.Errorf("flipped %d bits, want exactly 1", diffBits)
	}
	if FlipBit(nil, 3) {
		t.Error("FlipBit on empty data reported a change")
	}
}

func TestArmDisarmWindow(t *testing.T) {
	in := New()
	if err := in.Hit(SiteJobsFsync); err != nil {
		t.Fatalf("unarmed hit: %v", err)
	}
	if err := in.Arm(Rule{Site: SiteJobsFsync, Kind: Error, Err: ErrNoSpace}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := in.Hit(SiteJobsFsync); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("armed hit = %v, want ErrNoSpace", err)
	}
	in.DisarmSite(SiteJobsFsync)
	if err := in.Hit(SiteJobsFsync); err != nil {
		t.Fatalf("disarmed hit: %v", err)
	}
	if in.Hits(SiteJobsFsync) != 3 || in.Fired(SiteJobsFsync) != 1 {
		t.Errorf("hits/fired = %d/%d, want 3/1",
			in.Hits(SiteJobsFsync), in.Fired(SiteJobsFsync))
	}
	if err := in.Arm(Rule{Site: "no.such.site", Kind: Error}); !errors.Is(err, ErrUnknownSite) {
		t.Errorf("Arm with bad site = %v, want ErrUnknownSite", err)
	}
	var nilIn *Injector
	if err := nilIn.Arm(Rule{Site: SiteJobsFsync, Kind: Error}); err == nil {
		t.Error("Arm on nil injector succeeded")
	}
	nilIn.DisarmSite(SiteJobsFsync) // must not panic
}

func TestKnownSitesAccepted(t *testing.T) {
	for _, site := range KnownSites() {
		if err := Check(Rule{Site: site, Kind: Error}); err != nil {
			t.Errorf("Check(%q) = %v", site, err)
		}
	}
	if err := Check(); err != nil {
		t.Errorf("Check() with no rules = %v", err)
	}
}
