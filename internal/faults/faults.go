// Package faults provides deterministic, seeded fault injection for
// robustness tests. An Injector is configured with rules naming an
// injection site (a stable string constant owned by the instrumented
// package) and a fault kind — a returned error, an injected latency, or a
// panic. Production code threads an optional *Injector through its options
// and calls Hit at each site; a nil injector is free and injects nothing,
// so the instrumentation can stay compiled into hot paths.
//
// Determinism is the point: a rule can fire on exact hit numbers (the 7th
// task the worker pool runs), on every Nth hit, or with a probability
// drawn from the injector's own seeded generator — never from global
// randomness — so a failing schedule replays bit for bit.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Injection sites instrumented by packages core and jobs. Owned here so
// tests and instrumentation agree on the spelling.
const (
	// SiteCacheLookup fires when a DIMSAT call consults the shared
	// SatCache (before the lookup), simulating a failing cache tier.
	SiteCacheLookup = "cache.lookup"
	// SitePoolTask fires before each task a core worker pool runs
	// (matrix cells, per-category sweeps, lint probes).
	SitePoolTask = "pool.task"
	// SiteExpand fires before each EXPAND step of a DIMSAT search.
	SiteExpand = "dimsat.expand"
	// SiteJobPersist fires before each durable write the job store makes
	// (job records and search checkpoints), simulating a failing disk.
	SiteJobPersist = "jobs.persist"
	// SiteClusterForward fires before each attempt the cluster
	// coordinator's worker client forwards to a dimsatd worker,
	// simulating a failing or unreachable shard.
	SiteClusterForward = "cluster.forward"
	// SiteClusterProbe fires before each /readyz health probe the
	// coordinator sends a worker, simulating a flapping health plane.
	SiteClusterProbe = "cluster.probe"
	// SiteClusterHedge fires before the coordinator launches a hedge
	// request for a straggling read, simulating hedge-path failures.
	SiteClusterHedge = "cluster.hedge"
	// SiteJobsFsync fires at the durability point of a snapshot write
	// (the fsync before rename), separately from SiteJobPersist which
	// fires before the write begins. An Error rule here models a disk
	// that accepts the bytes but cannot make them durable: fsync
	// failure, ENOSPC at flush (ErrNoSpace), or a torn write
	// (ErrTornWrite) where only a prefix reached the platter.
	SiteJobsFsync = "jobs.fsync"
	// SiteSnapshotRead fires before each snapshot file read the job
	// store makes (job records and checkpoints, at load and resume). A
	// Corrupt rule here flips a bit in the bytes read, modeling silent
	// media corruption that the snapshot checksum must catch.
	SiteSnapshotRead = "snapshot.read"
	// SiteClusterPartition fires before each request the coordinator's
	// transport sends a worker — forwards, probes and hedges alike —
	// modeling a network partition between coordinator and worker. The
	// chaos harness arms it per-host via PartitionTransport.
	SiteClusterPartition = "cluster.partition"
	// SiteCoreShrink fires before each unsat-core shrink probe
	// ExplainContext runs, simulating explain-path failures without
	// disturbing the initial satisfiability run.
	SiteCoreShrink = "core.shrink"
)

// knownSites is the registry Check validates rule plans against: a plan
// naming a site nothing instruments would otherwise arm a fault that never
// fires, and the test relying on it would silently pass.
var knownSites = map[string]bool{
	SiteCacheLookup:      true,
	SitePoolTask:         true,
	SiteExpand:           true,
	SiteJobPersist:       true,
	SiteClusterForward:   true,
	SiteClusterProbe:     true,
	SiteClusterHedge:     true,
	SiteJobsFsync:        true,
	SiteSnapshotRead:     true,
	SiteClusterPartition: true,
	SiteCoreShrink:       true,
}

// KnownSites returns the registered injection sites, sorted.
func KnownSites() []string {
	out := make([]string, 0, len(knownSites))
	for s := range knownSites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ErrInjected is the default error returned by an Error rule with no
// explicit Err. Test with errors.Is.
var ErrInjected = errors.New("faults: injected error")

// ErrUnknownSite reports a rule plan naming an injection site no
// instrumented package owns. Test with errors.Is.
var ErrUnknownSite = errors.New("faults: unknown injection site")

// ErrNoSpace is a canned Err for Error rules at SiteJobsFsync modeling
// ENOSPC surfacing at flush time. Test with errors.Is.
var ErrNoSpace = errors.New("faults: injected no space left on device")

// ErrTornWrite is a canned Err for Error rules at SiteJobsFsync modeling
// a write torn mid-file by power loss: the store treats the write as
// failed AND leaves a truncated file behind for the recovery scan to
// quarantine. Test with errors.Is.
var ErrTornWrite = errors.New("faults: injected torn write")

// Check validates a rule plan before installation: every rule must name a
// registered injection site. It returns an error wrapping ErrUnknownSite
// for the first offending rule, so a typo in a fault plan fails loudly
// instead of arming a fault that never fires.
func Check(rules ...Rule) error {
	for i, r := range rules {
		if !knownSites[r.Site] {
			return fmt.Errorf("%w: rule %d names %q (known sites: %s)",
				ErrUnknownSite, i, r.Site, strings.Join(KnownSites(), ", "))
		}
	}
	return nil
}

// Kind classifies what a matching rule injects.
type Kind int

const (
	// Error makes Hit return the rule's Err (ErrInjected by default).
	Error Kind = iota
	// Latency makes Hit sleep for the rule's Delay, then continue to any
	// later rules (a latency rule alone injects no failure).
	Latency
	// Panic makes Hit panic with a *PanicValue naming the site and hit.
	Panic
	// Corrupt makes Hit return a *CorruptError carrying the site and hit
	// number. Instrumented read paths recognize it (errors.As) and
	// corrupt the bytes they just read — FlipBit is the canonical
	// mutation — instead of failing the read outright, so checksum
	// verification downstream is what must catch the damage.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Latency:
		return "latency"
	case Panic:
		return "panic"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule arms one fault at one site. Exactly one of the trigger fields
// selects when it fires, checked in order: On (exact 1-based hit numbers),
// Every (every Nth hit), Prob (seeded coin flip per hit). A rule with no
// trigger fields fires on every hit.
type Rule struct {
	// Site is the injection site the rule arms.
	Site string
	// Kind selects the fault: Error, Latency or Panic.
	Kind Kind
	// On lists exact 1-based hit numbers at which the rule fires.
	On []int
	// Every fires the rule on every Every-th hit when positive.
	Every int
	// Prob fires the rule with this probability per hit, drawn from the
	// injector's seeded generator, when positive.
	Prob float64
	// Err is returned by Error rules; nil means ErrInjected.
	Err error
	// Delay is slept by Latency rules.
	Delay time.Duration
}

// fires reports whether the rule triggers on the n-th hit (1-based).
// rng is consulted only for Prob rules, keeping the draw sequence stable
// per site regardless of other sites' traffic.
func (r Rule) fires(n int, rng *rand.Rand) bool {
	switch {
	case len(r.On) > 0:
		for _, k := range r.On {
			if k == n {
				return true
			}
		}
		return false
	case r.Every > 0:
		return n%r.Every == 0
	case r.Prob > 0:
		return rng.Float64() < r.Prob
	}
	return true
}

// PanicValue is the value a Panic rule panics with; recovery layers can
// type-assert it to recognize injected panics.
type PanicValue struct {
	Site string
	Hit  int
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("faults: injected panic at %s (hit %d)", p.Site, p.Hit)
}

// CorruptError is returned by Hit when a Corrupt rule fires. An
// instrumented read path detects it with errors.As and damages the bytes
// it read (FlipBit(data, Hit) keeps the damage deterministic per hit)
// rather than propagating it as a failure; a site that does not know how
// to corrupt may treat it as a plain read error.
type CorruptError struct {
	Site string
	Hit  int
}

func (c *CorruptError) Error() string {
	return fmt.Sprintf("faults: injected corruption at %s (hit %d)", c.Site, c.Hit)
}

// FlipBit flips one bit of data, chosen deterministically from hit, and
// reports whether it changed anything (false only for empty data). It is
// the canonical mutation for Corrupt rules: one flipped bit is the
// smallest damage a checksum must still catch.
func FlipBit(data []byte, hit int) bool {
	if len(data) == 0 {
		return false
	}
	if hit < 0 {
		hit = -hit
	}
	bit := hit % (len(data) * 8)
	data[bit/8] ^= 1 << (bit % 8)
	return true
}

// Injector evaluates rules at injection sites. All methods are safe for
// concurrent use and on a nil receiver (a nil *Injector injects nothing).
type Injector struct {
	mu    sync.Mutex
	rules []Rule
	rngs  map[string]*rand.Rand
	seed  int64
	hits  map[string]int
	fired map[string]int
}

// New builds an injector with seed 1; see NewSeeded.
func New(rules ...Rule) *Injector { return NewSeeded(1, rules...) }

// NewSeeded builds an injector whose Prob rules draw from per-site
// generators derived from seed, so probabilistic schedules are
// reproducible and independent across sites. It panics if a rule names an
// unknown injection site (use NewValidated to get the error instead):
// these constructors are called from test and harness setup, where an
// armed-but-unfireable fault is a silent bug.
func NewSeeded(seed int64, rules ...Rule) *Injector {
	in, err := NewValidated(seed, rules...)
	if err != nil {
		panic(err)
	}
	return in
}

// NewValidated is NewSeeded returning the ErrUnknownSite validation error
// instead of panicking, for callers assembling rule plans from external
// input (config files, request bodies).
func NewValidated(seed int64, rules ...Rule) (*Injector, error) {
	if err := Check(rules...); err != nil {
		return nil, err
	}
	return &Injector{
		rules: rules,
		seed:  seed,
		rngs:  map[string]*rand.Rand{},
		hits:  map[string]int{},
		fired: map[string]int{},
	}, nil
}

// Hit records one pass through site and applies the first matching armed
// rule: Latency rules sleep and further rules are still consulted (so
// "slow and then fail" composes from two rules); an Error rule returns its
// error; a Panic rule panics. Returns nil when nothing fires. Hit on a nil
// injector is a no-op returning nil.
func (in *Injector) Hit(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.hits[site]++
	n := in.hits[site]
	var sleep time.Duration
	var ret error
	var pv *PanicValue
	for _, r := range in.rules {
		if r.Site != site || !r.fires(n, in.rng(site)) {
			continue
		}
		in.fired[site]++
		switch r.Kind {
		case Latency:
			sleep += r.Delay
			continue // latency composes with a later error/panic rule
		case Error:
			ret = r.Err
			if ret == nil {
				ret = ErrInjected
			}
		case Panic:
			pv = &PanicValue{Site: site, Hit: n}
		case Corrupt:
			ret = &CorruptError{Site: site, Hit: n}
		}
		break
	}
	in.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if pv != nil {
		panic(pv)
	}
	return ret
}

// Arm appends rules to the injector's plan at runtime, after validating
// their sites. The chaos harness uses Arm/DisarmSite to turn a timed
// fault schedule into windows during which a site misbehaves. Arm on a
// nil injector returns an error: the caller forgot to install one.
func (in *Injector) Arm(rules ...Rule) error {
	if in == nil {
		return errors.New("faults: Arm on nil injector")
	}
	if err := Check(rules...); err != nil {
		return err
	}
	in.mu.Lock()
	in.rules = append(in.rules, rules...)
	in.mu.Unlock()
	return nil
}

// DisarmSite removes every rule armed at site, ending a fault window
// opened by Arm. Hit and fired counts are preserved. A nil injector or
// an unarmed site is a no-op.
func (in *Injector) DisarmSite(site string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	kept := in.rules[:0]
	for _, r := range in.rules {
		if r.Site != site {
			kept = append(kept, r)
		}
	}
	in.rules = kept
	in.mu.Unlock()
}

// rng returns the per-site generator; callers hold in.mu.
func (in *Injector) rng(site string) *rand.Rand {
	r, ok := in.rngs[site]
	if !ok {
		h := int64(0)
		for _, c := range site {
			h = h*131 + int64(c)
		}
		r = rand.New(rand.NewSource(in.seed ^ h))
		in.rngs[site] = r
	}
	return r
}

// Hits returns how many times site was passed through.
func (in *Injector) Hits(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fired returns how many rule activations occurred at site (latency and
// failure activations both count).
func (in *Injector) Fired(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// AllFired snapshots the per-site activation counts, for metric scrapes
// that label a counter by site. Sites never activated are absent.
func (in *Injector) AllFired() map[string]int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int, len(in.fired))
	for site, n := range in.fired {
		out[site] = n
	}
	return out
}
