package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// ActionKind names one class of injected failure in a chaos plan.
type ActionKind string

const (
	// ActPartition blackholes the network between the coordinator and
	// one worker for the event window (cluster topology only). The
	// harness actuates it through a cluster.PartitionTransport, so
	// forwards, probes, hedges and job polls all fail at the transport.
	ActPartition ActionKind = "partition"
	// ActCrash kills one node hard — HTTP listener torn down mid-flight,
	// job store abandoned without a shutdown checkpoint — and restarts
	// it on the same address and data directory at the window's end.
	ActCrash ActionKind = "crash"
	// ActDiskFault arms a disk-fault rule (see DiskMode) on one node's
	// injector for the window, then disarms it.
	ActDiskFault ActionKind = "disk"
)

// DiskMode selects what an ActDiskFault window injects.
type DiskMode string

const (
	// DiskENOSPC fails every snapshot fsync with faults.ErrNoSpace: the
	// disk accepts bytes but cannot make them durable. Submits must
	// answer a typed 503, never acknowledge-and-lose.
	DiskENOSPC DiskMode = "enospc"
	// DiskTorn fails every second snapshot fsync with
	// faults.ErrTornWrite, leaving a truncated file for fresh paths —
	// the recovery scan must quarantine it, never resurrect it.
	DiskTorn DiskMode = "torn"
	// DiskFlip flips one bit in every third snapshot read, modeling
	// silent media corruption the checksum must catch; corrupt
	// checkpoints are quarantined and the search restarts from scratch.
	DiskFlip DiskMode = "bitflip"
)

// Event is one scheduled fault: applied at At, reverted (healed,
// restarted or disarmed) at At+Dur. Offsets are relative to the start
// of the fault phase.
type Event struct {
	At   time.Duration `json:"at"`
	Dur  time.Duration `json:"dur"`
	Kind ActionKind    `json:"kind"`
	// Node is the target node index (worker index in cluster topology,
	// always 0 in single topology).
	Node int `json:"node"`
	// Mode is set for ActDiskFault events.
	Mode DiskMode `json:"mode,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("%7s +%-7s %s node%d", e.At.Round(time.Millisecond), e.Dur.Round(time.Millisecond), e.Kind, e.Node)
	if e.Mode != "" {
		s += " " + string(e.Mode)
	}
	return s
}

// Plan is a seeded fault schedule: a pure function of (seed, nodes,
// duration, topology kind), so one seed replays the same schedule on
// every run — the determinism the minimal-failing-seed sweep rests on.
type Plan struct {
	Seed   int64         `json:"seed"`
	Nodes  int           `json:"nodes"`
	Window time.Duration `json:"window"`
	Events []Event       `json:"events"`
}

// diskModes in generation order; indexed by the plan's seeded rng.
var diskModes = []DiskMode{DiskENOSPC, DiskTorn, DiskFlip}

// NewPlan generates the fault schedule for one seed. cluster selects
// the event vocabulary: partitions only exist between a coordinator
// and its workers. Event density scales with the window (roughly one
// fault per 600ms, at least two), windows are 15–35% of the phase, and
// start offsets leave the tail free so every fault heals before the
// oracle phase begins.
func NewPlan(seed int64, nodes int, window time.Duration, cluster bool) Plan {
	if nodes < 1 {
		nodes = 1
	}
	if window <= 0 {
		window = 3 * time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	kinds := []ActionKind{ActCrash, ActDiskFault}
	if cluster {
		kinds = []ActionKind{ActPartition, ActCrash, ActDiskFault}
	}
	n := int(window / (600 * time.Millisecond))
	if n < 2 {
		n = 2
	}
	p := Plan{Seed: seed, Nodes: nodes, Window: window}
	for i := 0; i < n; i++ {
		ev := Event{
			Kind: kinds[rng.Intn(len(kinds))],
			Node: rng.Intn(nodes),
			At:   time.Duration(float64(window) * (0.05 + 0.55*rng.Float64())),
			Dur:  time.Duration(float64(window) * (0.15 + 0.20*rng.Float64())),
		}
		if ev.Kind == ActDiskFault {
			ev.Mode = diskModes[rng.Intn(len(diskModes))]
		}
		p.Events = append(p.Events, ev)
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}

// String renders the schedule, one event per line — the deterministic
// artifact dimsatchaos -print-schedule emits and the determinism test
// compares byte for byte.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan seed=%d nodes=%d window=%s events=%d\n", p.Seed, p.Nodes, p.Window, len(p.Events))
	for _, e := range p.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
