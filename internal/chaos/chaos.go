// Package chaos is the seeded chaos orchestrator for the dimension-
// constraint serving stack: it boots the real system (a single dimsatd
// node, or the cluster coordinator fronting several), generates a
// deterministic fault schedule from one seed — network partitions,
// crash-restarts, disk faults in the durable job store — drives a
// deterministic workload through the faults, heals everything, and then
// holds the system to its invariants:
//
//  1. jobs-durable: no acknowledged job is ever lost, and none lies —
//     a done job carries the verdict and the exact search stats an
//     uninterrupted oracle run produces (deterministic EXPAND order
//     makes resumed and restarted searches bit-identical); a job may
//     fail under active disk faults, but only with a typed error.
//  2. typed-errors: every client-visible error is in the documented
//     vocabulary (429 with Retry-After, 500/502/503/504 with a JSON
//     error body) — never a raw panic, never a malformed body, never a
//     4xx blaming the client for the server's disk.
//  3. reconverge: after the last fault heals, a probe job completes and
//     every node returns to rotation within a bound.
//  4. goroutines: after teardown the process is back to its baseline —
//     chaos leaked nothing.
//
// Determinism contract: one seed fixes the fault schedule (Plan), the
// injector rule streams, and the workload request stream byte for byte.
// Completion-order nondeterminism (goroutine interleaving) is absorbed
// by the oracles, which judge outcomes, not orderings — so a seed that
// fails keeps failing for the same reason, and cmd/dimsatchaos's sweep
// can bisect to a minimal failing seed worth committing as a
// regression.
package chaos

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"olapdim/internal/core"
	"olapdim/internal/loadgen"
	"olapdim/internal/schema"
)

// Options configures one chaos run. The zero value is usable: a single
// node shaken for three seconds.
type Options struct {
	// Topology is "single" (default) or "cluster".
	Topology string
	// Workers is the cluster size (default 2; ignored for single).
	Workers int
	// Window is the fault-active phase length (default 3s). Faults are
	// scheduled inside it and the workload is paced across it.
	Window time.Duration
	// Requests is the workload length (default: one per 30ms of window,
	// at least 40).
	Requests int
	// Concurrency is the workload's in-flight cap (default 3).
	Concurrency int
	// ConvergeBound bounds the post-heal reconvergence check
	// (default 10s).
	ConvergeBound time.Duration
	// JobBound bounds the per-run wait for acknowledged jobs to reach a
	// terminal state after heal (default 20s).
	JobBound time.Duration
	// Logf receives harness narration (nil discards).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Topology == "" {
		o.Topology = "single"
	}
	if o.Workers < 2 {
		o.Workers = 2
	}
	if o.Window <= 0 {
		o.Window = 3 * time.Second
	}
	if o.Requests <= 0 {
		o.Requests = int(o.Window / (30 * time.Millisecond))
		if o.Requests < 40 {
			o.Requests = 40
		}
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 3
	}
	if o.ConvergeBound <= 0 {
		o.ConvergeBound = 10 * time.Second
	}
	if o.JobBound <= 0 {
		o.JobBound = 20 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Report is the outcome of one chaos run.
type Report struct {
	Seed     int64
	Topology string
	Plan     Plan

	Requests      int
	TransportErrs int
	ByStatus      map[int]int
	AckedJobs     int

	Invariants []InvariantResult
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool {
	for _, inv := range r.Invariants {
		if !inv.OK {
			return true
		}
	}
	return false
}

// Summary renders the deterministic part of the report — the schedule
// and the invariant verdicts. Two runs of the same seed and options
// produce identical summaries; traffic counts (which depend on
// completion interleaving) are deliberately excluded.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d topology=%s\n", r.Seed, r.Topology)
	b.WriteString(r.Plan.String())
	for _, inv := range r.Invariants {
		fmt.Fprintf(&b, "  %s\n", inv)
	}
	return b.String()
}

// Traffic renders the nondeterministic traffic counts, for -v output.
func (r *Report) Traffic() string {
	codes := make([]int, 0, len(r.ByStatus))
	for c := range r.ByStatus {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	var parts []string
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%d:%d", c, r.ByStatus[c]))
	}
	return fmt.Sprintf("requests=%d transport-errors=%d acked-jobs=%d status{%s}",
		r.Requests, r.TransportErrs, r.AckedJobs, strings.Join(parts, " "))
}

// Run executes one seeded chaos run end to end and reports the verdict.
// An error return means the harness itself could not run (setup
// failure); invariant violations are reported in the Report, not as
// errors.
func Run(seed int64, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	isCluster := opts.Topology == "cluster"
	if !isCluster && opts.Topology != "single" {
		return nil, fmt.Errorf("chaos: unknown topology %q (want single or cluster)", opts.Topology)
	}
	baseGoroutines := runtime.NumGoroutine()

	// One seed pins the workload stream (schema family instance and
	// request sampling) and, independently, the fault schedule. The mix
	// leans harder on durable jobs than the benchmark default: jobs are
	// what the durability oracle chases, so short windows still must
	// acknowledge a few.
	planner, err := loadgen.NewPlanner(loadgen.Spec{Seed: seed, Mix: map[string]int{
		loadgen.OpSat:          6,
		loadgen.OpImplies:      3,
		loadgen.OpSummarizable: 3,
		loadgen.OpSources:      2,
		loadgen.OpExplain:      2,
		loadgen.OpJobs:         6,
	}})
	if err != nil {
		return nil, fmt.Errorf("chaos: planner: %w", err)
	}
	ds := planner.Schema()
	nodes := 1
	if isCluster {
		nodes = opts.Workers
	}
	plan := NewPlan(seed, nodes, opts.Window, isCluster)
	report := &Report{Seed: seed, Topology: opts.Topology, Plan: plan}
	opts.Logf("chaos: %s", strings.TrimSuffix(plan.String(), "\n"))

	// Boot the stack on crash-surviving directories.
	root, err := os.MkdirTemp("", "chaos-run-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	var topo topology
	if isCluster {
		dirs := make([]string, nodes)
		for i := range dirs {
			dirs[i] = fmt.Sprintf("%s/node%d", root, i)
		}
		topo, err = newCluster(ds, seed, dirs, opts.Logf)
	} else {
		topo, err = newSingle(ds, seed, root+"/node0", opts.Logf)
	}
	if err != nil {
		return nil, err
	}

	// Fault phase: the workload runs across the window while the
	// scheduler walks the plan's apply/revert timeline.
	type boundary struct {
		at    time.Duration
		apply bool
		ev    Event
	}
	var timeline []boundary
	for _, ev := range plan.Events {
		timeline = append(timeline, boundary{at: ev.At, apply: true, ev: ev})
		timeline = append(timeline, boundary{at: ev.At + ev.Dur, apply: false, ev: ev})
	}
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].at < timeline[j].at })

	samplesCh := make(chan []sample, 1)
	go func() {
		samplesCh <- drive(topo.base(), planner, opts.Requests, opts.Concurrency, opts.Window)
	}()
	start := time.Now()
	for _, b := range timeline {
		if d := time.Until(start.Add(b.at)); d > 0 {
			time.Sleep(d)
		}
		if b.apply {
			topo.apply(b.ev)
		} else {
			topo.revert(b.ev)
		}
	}
	samples := <-samplesCh

	// Heal everything, then hold the system to its invariants.
	topo.healAll()
	opts.Logf("chaos: healed; running oracles")

	report.Requests = len(samples)
	report.ByStatus = map[int]int{}
	for _, s := range samples {
		if s.transportErr != "" {
			report.TransportErrs++
			continue
		}
		report.ByStatus[s.status]++
	}
	acked := ackedJobs(samples)
	report.AckedJobs = len(acked)

	client := &http.Client{Timeout: 3 * time.Second}
	cats := make([]string, 0, len(acked))
	for _, j := range acked {
		cats = append(cats, j.Category)
	}
	truth, err := satBaselines(ds, dedupeSorted(cats))
	if err != nil {
		topo.shutdown()
		return nil, err
	}

	probeCat := probeCategory(ds)
	report.Invariants = append(report.Invariants,
		checkConvergence(client, topo, probeCat, opts.ConvergeBound),
		checkJobsDurable(client, topo.base(), acked, truth, opts.JobBound),
		checkTypedErrors(samples),
		checkTraces(client, topo, probeCat, isCluster, opts.ConvergeBound),
	)

	// Teardown, then the leak oracle: everything chaos started must be
	// gone. A small slack absorbs runtime-owned background goroutines.
	client.CloseIdleConnections()
	topo.shutdown()
	leak := InvariantResult{Name: "goroutines", OK: true}
	settle := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= baseGoroutines+2 {
			break
		}
		if time.Now().After(settle) {
			leak = InvariantResult{Name: "goroutines", OK: false,
				Detail: fmt.Sprintf("%d at start, %d after teardown", baseGoroutines, now)}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	report.Invariants = append(report.Invariants, leak)
	return report, nil
}

// probeCategory picks the deterministic category the convergence probe
// job reasons over: the first sorted real category of the schema.
func probeCategory(ds *core.DimensionSchema) string {
	for _, c := range ds.G.SortedCategories() {
		if c != schema.All {
			return c
		}
	}
	return schema.All
}
