package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestPlanDeterministic pins the determinism contract's schedule half:
// one (seed, topology, window) names exactly one fault schedule, and
// the schedule only uses the fault kinds its topology supports.
func TestPlanDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name    string
		nodes   int
		cluster bool
	}{
		{"single", 1, false},
		{"cluster", 3, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := NewPlan(99, tc.nodes, 2*time.Second, tc.cluster)
			b := NewPlan(99, tc.nodes, 2*time.Second, tc.cluster)
			if a.String() != b.String() {
				t.Fatalf("same seed, different plans:\n%s\nvs\n%s", a, b)
			}
			if len(a.Events) < 2 {
				t.Fatalf("plan has %d events, want >= 2:\n%s", len(a.Events), a)
			}
			for _, ev := range a.Events {
				if !tc.cluster && ev.Kind == ActPartition {
					t.Fatalf("single-node plan schedules a partition:\n%s", a)
				}
				if ev.At < 0 || ev.At+ev.Dur > 2*time.Second {
					t.Fatalf("event %s escapes the window", ev)
				}
				if ev.Node < 0 || ev.Node >= tc.nodes {
					t.Fatalf("event %s targets node outside 0..%d", ev, tc.nodes-1)
				}
			}
			c := NewPlan(100, tc.nodes, 2*time.Second, tc.cluster)
			if a.String() == c.String() {
				t.Fatalf("seeds 99 and 100 produced the same plan:\n%s", a)
			}
		})
	}
}

// TestRegressionSeeds replays the chaos seeds that found real bugs, each
// committed here with the story of what it broke. Every entry must pass
// all four invariants forever; a failure means the hardening it pinned
// has regressed. Replay any entry interactively with
//
//	go run ./cmd/dimsatchaos -seed <seed> -topology <topology> -window 1500ms -v
func TestRegressionSeeds(t *testing.T) {
	for _, tc := range []struct {
		seed     int64
		topology string
		story    string
	}{
		{3, "single", "submits land inside an ENOSPC window; the store's rolled-back " +
			"submit used to surface as 400, blaming the client for the server's disk " +
			"(now a typed 503 via jobs.ErrStorage)"},
		{38, "single", "the node restarts while snapshot reads still flip bits, so " +
			"recovery scans corrupt checkpoints; jobs used to fail outright instead " +
			"of quarantining the snapshot and restarting the search from scratch — " +
			"and, found again once the workload put a job-record read in the same " +
			"window, the scan used to quarantine a record off one faulted read, " +
			"forgetting an acknowledged job (now it re-reads before condemning)"},
		{4, "cluster", "one worker crashes, then the survivor is partitioned from the " +
			"coordinator; exercises breaker open/close, failover and the post-heal " +
			"rejoin that the /readyz disk probe makes possible on idle stores"},
	} {
		t.Run(fmt.Sprintf("%s-seed-%d", tc.topology, tc.seed), func(t *testing.T) {
			rep, err := Run(tc.seed, Options{
				Topology: tc.topology,
				Window:   1500 * time.Millisecond,
				Logf:     t.Logf,
			})
			if err != nil {
				t.Fatalf("seed %d (%s): harness error: %v", tc.seed, tc.topology, err)
			}
			if rep.Failed() {
				t.Errorf("regression seed %d (%s) failed — story: %s\n%s",
					tc.seed, tc.topology, tc.story, rep.Summary())
			}
			if rep.AckedJobs == 0 {
				t.Errorf("seed %d (%s): no jobs acknowledged; the durability oracle had nothing to check", tc.seed, tc.topology)
			}
		})
	}
}

// TestSummaryDeterministic pins the reproducibility claim end to end:
// two full runs of the same seed produce byte-identical summaries (the
// schedule plus every invariant verdict). Traffic counts are allowed to
// differ and live outside Summary for exactly that reason.
func TestSummaryDeterministic(t *testing.T) {
	opts := Options{Topology: "single", Window: 1200 * time.Millisecond}
	first, err := Run(3, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Summary() != second.Summary() {
		t.Fatalf("same seed, different summaries:\n%s\nvs\n%s", first.Summary(), second.Summary())
	}
	if !strings.Contains(first.Summary(), "enospc") {
		t.Fatalf("seed 3 schedule lost its ENOSPC window:\n%s", first.Summary())
	}
}
