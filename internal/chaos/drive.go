package chaos

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"

	"olapdim/internal/loadgen"
)

// sample records one workload request and what the client saw. The
// typed-error oracle audits every sample; the durability oracle chases
// the acknowledged job submissions.
type sample struct {
	idx     int
	op      string
	method  string
	path    string
	reqBody string

	status       int    // 0 on a transport error
	transportErr string // non-empty when the request never got an answer
	retryAfter   string
	respBody     []byte
}

// ackedJob is a durable-job submission the service acknowledged: from
// this moment the job must never be lost and never lie about its result.
type ackedJob struct {
	ID       string
	Category string
}

// drive issues n requests from the planner's deterministic stream
// against base, paced across window so the stream overlaps the fault
// schedule, with conc workers in flight. Request generation order is
// the planner's (deterministic per seed); completion interleaving is
// not, and nothing downstream depends on it.
func drive(base string, planner *loadgen.Planner, n, conc int, window time.Duration) []sample {
	if conc < 1 {
		conc = 3
	}
	samples := make([]sample, n)
	type item struct {
		req loadgen.Request
		at  time.Time
	}
	queue := make(chan item, conc)
	client := &http.Client{Timeout: 3 * time.Second}

	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range queue {
				if d := time.Until(it.at); d > 0 {
					time.Sleep(d)
				}
				samples[it.req.Index] = execute(client, base, it.req)
			}
		}()
	}
	start := time.Now()
	gap := window / time.Duration(n)
	for i := 0; i < n; i++ {
		queue <- item{req: planner.Next(), at: start.Add(time.Duration(i) * gap)}
	}
	close(queue)
	wg.Wait()
	client.CloseIdleConnections()
	return samples
}

// execute sends one planned request and materializes the outcome.
func execute(client *http.Client, base string, req loadgen.Request) sample {
	s := sample{idx: req.Index, op: req.Op, method: req.Method, path: req.Path, reqBody: req.Body}
	var body *strings.Reader
	if req.Body != "" {
		body = strings.NewReader(req.Body)
	} else {
		body = strings.NewReader("")
	}
	hreq, err := http.NewRequest(req.Method, base+req.Path, body)
	if err != nil {
		s.transportErr = err.Error()
		return s
	}
	if req.Body != "" {
		hreq.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(hreq)
	if err != nil {
		s.transportErr = err.Error()
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	s.retryAfter = resp.Header.Get("Retry-After")
	buf := make([]byte, 0, 512)
	tmp := make([]byte, 4096)
	for {
		k, rerr := resp.Body.Read(tmp)
		buf = append(buf, tmp[:k]...)
		if rerr != nil {
			break
		}
	}
	s.respBody = buf
	return s
}

// ackedJobs extracts the acknowledged durable-job submissions from the
// sample stream: submits answered 200 or 202 whose body carries the job
// ID the client would poll. Duplicate IDs (coordinator idempotency) are
// collapsed.
func ackedJobs(samples []sample) []ackedJob {
	seen := map[string]bool{}
	var out []ackedJob
	for _, s := range samples {
		if s.op != loadgen.OpJobs || (s.status != http.StatusOK && s.status != http.StatusAccepted) {
			continue
		}
		var resp struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(s.respBody, &resp) != nil || resp.ID == "" || seen[resp.ID] {
			continue
		}
		var req struct {
			Category string `json:"category"`
		}
		json.Unmarshal([]byte(s.reqBody), &req)
		seen[resp.ID] = true
		out = append(out, ackedJob{ID: resp.ID, Category: req.Category})
	}
	return out
}
