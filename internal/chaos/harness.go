package chaos

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	"olapdim/internal/cluster"
	"olapdim/internal/core"
	"olapdim/internal/faults"
	"olapdim/internal/jobs"
	"olapdim/internal/obs"
	"olapdim/internal/server"
)

// node is one dimsatd instance the harness can kill and resurrect: a
// durable job store on a directory that outlives crashes, the real HTTP
// server, and a listener pinned to one address so cluster membership
// (worker URLs on the coordinator's ring) survives a restart.
type node struct {
	idx    int
	dir    string
	addr   string // pinned after the first listen
	inj    *faults.Injector
	schema *core.DimensionSchema
	logf   func(string, ...any)

	store *jobs.Store
	hs    *http.Server
	down  bool
}

// start boots the node: open (and recover) the job store, build the
// server, serve on the pinned address. The first start listens on an
// ephemeral port and pins it.
func (n *node) start() error {
	// One span store per boot, shared by the server and the job store, so
	// a request's spans and its jobs' lifecycle spans land in the same
	// /debug/spans ring. It dies with the process on crash — exactly what
	// a real kill leaves — while the trace *context* survives in the
	// jobs snapshot, so a resumed attempt rejoins its trace.
	spans := obs.NewSpanStore(0, fmt.Sprintf("node%d", n.idx))
	store, err := jobs.Open(jobs.Config{
		Dir:             n.dir,
		Schema:          n.schema,
		Options:         core.Options{Faults: n.inj},
		CheckpointEvery: 1,
		Logf: func(format string, args ...any) {
			n.logf("node%d: "+format, append([]any{n.idx}, args...)...)
		},
		Spans: spans,
	})
	if err != nil {
		return fmt.Errorf("chaos: node%d store: %w", n.idx, err)
	}
	srv, err := server.NewWithConfig(n.schema, server.Config{Jobs: store, Spans: spans})
	if err != nil {
		store.Close()
		return fmt.Errorf("chaos: node%d server: %w", n.idx, err)
	}
	store.Start()
	addr := n.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	// A crash frees the port a beat after Close returns; retry briefly so
	// a restart never flaps on a lingering bind.
	var ln net.Listener
	deadline := time.Now().Add(2 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			store.Close()
			return fmt.Errorf("chaos: node%d rebind %s: %w", n.idx, addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	n.addr = ln.Addr().String()
	n.store = store
	n.hs = &http.Server{Handler: srv}
	go n.hs.Serve(ln)
	n.down = false
	return nil
}

func (n *node) url() string { return "http://" + n.addr }

// crash kills the node the ungraceful way: the listener and every open
// connection torn down mid-flight, the store abandoned with no suspend
// persistence — the directory holds exactly what the last durable write
// left, like a real kill -9.
func (n *node) crash() {
	if n.down {
		return
	}
	n.hs.Close()
	n.store.Kill()
	n.down = true
	n.logf("chaos: node%d crashed", n.idx)
}

// restart resurrects a crashed node on its pinned address; the store's
// recovery scan re-enqueues interrupted jobs and quarantines any torn
// or corrupt snapshots the crash left behind.
func (n *node) restart() error {
	if !n.down {
		return nil
	}
	if err := n.start(); err != nil {
		return err
	}
	n.logf("chaos: node%d restarted", n.idx)
	return nil
}

// stop is the teardown path: graceful store close so the goroutine-leak
// oracle sees everything exit.
func (n *node) stop() {
	if n.down {
		return
	}
	n.hs.Close()
	n.store.Close()
	n.down = true
}

// diskRule maps a DiskMode to the injector rule an ActDiskFault window
// arms. Frequencies are chosen so a window injects real damage without
// making every single operation fail (torn and flip leave room for the
// interleaved successes that make recovery interesting).
func diskRule(mode DiskMode) faults.Rule {
	switch mode {
	case DiskTorn:
		return faults.Rule{Site: faults.SiteJobsFsync, Kind: faults.Error, Err: faults.ErrTornWrite, Every: 2}
	case DiskFlip:
		return faults.Rule{Site: faults.SiteSnapshotRead, Kind: faults.Corrupt, Every: 3}
	default: // DiskENOSPC
		return faults.Rule{Site: faults.SiteJobsFsync, Kind: faults.Error, Err: faults.ErrNoSpace}
	}
}

// topology is what the scheduler and oracles drive: one client-facing
// base URL backed by either a single node or a coordinator-fronted
// cluster of them.
type topology interface {
	// base is the client entrypoint all workload traffic targets.
	base() string
	// apply actuates ev at the start of its window; revert heals it at
	// the end. Both run on the single scheduler goroutine.
	apply(ev Event)
	revert(ev Event)
	// healAll reverts everything still active: partitions healed, crashed
	// nodes restarted, disk rules disarmed. Called once after the fault
	// phase, before the oracles.
	healAll()
	// converged reports whether the topology is back to full health, with
	// a detail string for the failure report.
	converged() (bool, string)
	// shutdown tears everything down for the goroutine-leak oracle.
	shutdown()
}

// singleTopo is one node addressed directly.
type singleTopo struct {
	n *node
}

func newSingle(schema *core.DimensionSchema, seed int64, dir string, logf func(string, ...any)) (*singleTopo, error) {
	n := &node{idx: 0, dir: dir, inj: faults.NewSeeded(seed), schema: schema, logf: logf}
	if err := n.start(); err != nil {
		return nil, err
	}
	return &singleTopo{n: n}, nil
}

func (t *singleTopo) base() string { return t.n.url() }

func (t *singleTopo) apply(ev Event) {
	switch ev.Kind {
	case ActCrash:
		t.n.crash()
	case ActDiskFault:
		if err := t.n.inj.Arm(diskRule(ev.Mode)); err != nil {
			t.n.logf("chaos: arming %s: %v", ev.Mode, err)
		}
		t.n.logf("chaos: node0 disk fault %s armed", ev.Mode)
	}
}

func (t *singleTopo) revert(ev Event) {
	switch ev.Kind {
	case ActCrash:
		if err := t.n.restart(); err != nil {
			t.n.logf("chaos: %v", err)
		}
	case ActDiskFault:
		t.n.inj.DisarmSite(diskRule(ev.Mode).Site)
		t.n.logf("chaos: node0 disk fault %s disarmed", ev.Mode)
	}
}

func (t *singleTopo) healAll() {
	t.n.inj.DisarmSite(faults.SiteJobsFsync)
	t.n.inj.DisarmSite(faults.SiteSnapshotRead)
	if err := t.n.restart(); err != nil {
		t.n.logf("chaos: healAll: %v", err)
	}
}

func (t *singleTopo) converged() (bool, string) {
	resp, err := http.Get(t.n.url() + "/readyz")
	if err != nil {
		return false, fmt.Sprintf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("readyz = %d", resp.StatusCode)
	}
	return true, ""
}

func (t *singleTopo) shutdown() { t.n.stop() }

// clusterTopo is N worker nodes fronted by a real coordinator whose
// worker traffic flows through a PartitionTransport.
type clusterTopo struct {
	nodes []*node
	coord *cluster.Coordinator
	front *httptest.Server
	pt    *cluster.PartitionTransport
	logf  func(string, ...any)
}

func newCluster(schema *core.DimensionSchema, seed int64, dirs []string, logf func(string, ...any)) (*clusterTopo, error) {
	t := &clusterTopo{logf: logf}
	for i, dir := range dirs {
		n := &node{idx: i, dir: dir, inj: faults.NewSeeded(seed + int64(i)), schema: schema, logf: logf}
		if err := n.start(); err != nil {
			t.shutdown()
			return nil, err
		}
		t.nodes = append(t.nodes, n)
	}
	t.pt = cluster.NewPartitionTransport(nil, nil)
	workers := make([]string, len(t.nodes))
	for i, n := range t.nodes {
		workers[i] = n.url()
	}
	coord, err := cluster.New(cluster.Config{
		Workers:           workers,
		Transport:         t.pt,
		ProbeInterval:     25 * time.Millisecond,
		ProbeTimeout:      500 * time.Millisecond,
		PollInterval:      20 * time.Millisecond,
		FailAfter:         2,
		RecoverAfter:      1,
		BaseBackoff:       5 * time.Millisecond,
		HedgeDelay:        25 * time.Millisecond,
		BreakerThreshold:  3,
		BreakerCooldown:   100 * time.Millisecond,
		RetryBudget:       256,
		RetryBudgetWindow: time.Second,
		Logf: func(format string, args ...any) {
			logf(format, args...)
		},
	})
	if err != nil {
		t.shutdown()
		return nil, err
	}
	coord.Start()
	t.coord = coord
	t.front = httptest.NewServer(coord)
	return t, nil
}

func (t *clusterTopo) base() string { return t.front.URL }

func (t *clusterTopo) apply(ev Event) {
	n := t.nodes[ev.Node%len(t.nodes)]
	switch ev.Kind {
	case ActPartition:
		t.pt.Block(n.url())
		t.logf("chaos: node%d partitioned", n.idx)
	case ActCrash:
		n.crash()
	case ActDiskFault:
		if err := n.inj.Arm(diskRule(ev.Mode)); err != nil {
			t.logf("chaos: arming %s: %v", ev.Mode, err)
		}
		t.logf("chaos: node%d disk fault %s armed", n.idx, ev.Mode)
	}
}

func (t *clusterTopo) revert(ev Event) {
	n := t.nodes[ev.Node%len(t.nodes)]
	switch ev.Kind {
	case ActPartition:
		t.pt.Unblock(n.url())
		t.logf("chaos: node%d partition healed", n.idx)
	case ActCrash:
		if err := n.restart(); err != nil {
			t.logf("chaos: %v", err)
		}
	case ActDiskFault:
		n.inj.DisarmSite(diskRule(ev.Mode).Site)
		t.logf("chaos: node%d disk fault %s disarmed", n.idx, ev.Mode)
	}
}

func (t *clusterTopo) healAll() {
	t.pt.HealAll()
	for _, n := range t.nodes {
		n.inj.DisarmSite(faults.SiteJobsFsync)
		n.inj.DisarmSite(faults.SiteSnapshotRead)
		if err := n.restart(); err != nil {
			t.logf("chaos: healAll: %v", err)
		}
	}
}

func (t *clusterTopo) converged() (bool, string) {
	view := t.coord.StatusView()
	if view.Healthy != len(t.nodes) {
		return false, fmt.Sprintf("healthy = %d of %d", view.Healthy, len(t.nodes))
	}
	for _, w := range view.Workers {
		if w.Breaker != "closed" {
			return false, fmt.Sprintf("worker %s breaker %s", w.Name, w.Breaker)
		}
	}
	return true, ""
}

func (t *clusterTopo) shutdown() {
	if t.front != nil {
		t.front.Close()
	}
	if t.coord != nil {
		t.coord.Close()
	}
	for _, n := range t.nodes {
		n.stop()
	}
}
