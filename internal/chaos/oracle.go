package chaos

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"olapdim/internal/core"
	"olapdim/internal/jobs"
)

// InvariantResult is one oracle's verdict on a chaos run.
type InvariantResult struct {
	Name   string
	OK     bool
	Detail string
}

func (r InvariantResult) String() string {
	verdict := "OK  "
	if !r.OK {
		verdict = "FAIL"
	}
	s := fmt.Sprintf("%s %s", verdict, r.Name)
	if r.Detail != "" {
		s += ": " + r.Detail
	}
	return s
}

// allowedErrStatus is the documented client-visible error vocabulary
// under faults: 429 shed (with Retry-After), 500 contained internal
// error, 502/503/504 from the unroutable/timeout paths. Anything else —
// a 400 for a well-formed request, a raw panic trace, a malformed body —
// is a robustness bug.
var allowedErrStatus = map[int]bool{
	http.StatusTooManyRequests:     true,
	http.StatusInternalServerError: true,
	http.StatusBadGateway:          true,
	http.StatusServiceUnavailable:  true,
	http.StatusGatewayTimeout:      true,
}

// checkTypedErrors is the typed-error oracle: every answered request
// must carry a parseable JSON body, and every error status must be in
// the documented vocabulary with its contract headers. Transport errors
// are exempt — a crashed or partitioned node refusing connections is
// exactly what the client is told to expect.
func checkTypedErrors(samples []sample) InvariantResult {
	var violations []string
	add := func(format string, args ...any) {
		if len(violations) < 5 {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
	}
	for _, s := range samples {
		if s.transportErr != "" || s.status == 0 {
			continue
		}
		if s.status < 400 {
			if !json.Valid(s.respBody) {
				add("#%d %s %s: %d with malformed body %.60q", s.idx, s.method, s.path, s.status, s.respBody)
			}
			continue
		}
		if !allowedErrStatus[s.status] {
			add("#%d %s %s: undocumented error status %d (%.80q)", s.idx, s.method, s.path, s.status, s.respBody)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(s.respBody, &e) != nil || e.Error == "" {
			add("#%d %s %s: %d without a typed error body (%.80q)", s.idx, s.method, s.path, s.status, s.respBody)
			continue
		}
		if s.status == http.StatusTooManyRequests && s.retryAfter == "" {
			add("#%d %s %s: 429 without Retry-After", s.idx, s.method, s.path)
		}
	}
	return InvariantResult{
		Name:   "typed-errors",
		OK:     len(violations) == 0,
		Detail: strings.Join(violations, "; "),
	}
}

// satBaseline is the uninterrupted truth for one category: the verdict
// and the exact search effort DIMSAT's deterministic EXPAND order
// guarantees for any run — fresh, resumed or restarted — over the same
// schema.
type satBaseline struct {
	satisfiable bool
	expansions  int
	checks      int
}

// satBaselines computes the oracle truth by running every category's
// job on a pristine store: no faults, no interruptions.
func satBaselines(schema *core.DimensionSchema, cats []string) (map[string]satBaseline, error) {
	out := map[string]satBaseline{}
	if len(cats) == 0 {
		return out, nil
	}
	dir, err := os.MkdirTemp("", "chaos-oracle-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := jobs.Open(jobs.Config{Dir: dir, Schema: schema})
	if err != nil {
		return nil, fmt.Errorf("chaos: oracle store: %w", err)
	}
	defer store.Close()
	store.Start()
	for _, cat := range cats {
		st, _, err := store.Submit(jobs.Request{Kind: jobs.KindSat, Category: cat})
		if err != nil {
			return nil, fmt.Errorf("chaos: oracle submit %s: %w", cat, err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			cur, err := store.Status(st.ID)
			if err != nil {
				return nil, err
			}
			if cur.State.Terminal() {
				if cur.State != jobs.StateDone || cur.Result == nil || cur.Result.Satisfiable == nil {
					return nil, fmt.Errorf("chaos: oracle job for %s ended %s: %s", cat, cur.State, cur.Error)
				}
				out[cat] = satBaseline{
					satisfiable: *cur.Result.Satisfiable,
					expansions:  cur.Stats.Expansions,
					checks:      cur.Stats.Checks,
				}
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("chaos: oracle job for %s never finished", cat)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return out, nil
}

// jobPollView is the job-status shape both the single server and the
// coordinator answer on GET /jobs/{id}.
type jobPollView struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Expansions int    `json:"expansions"`
	Checks     int    `json:"checks"`
	Error      string `json:"error"`
	Result     *struct {
		Satisfiable *bool `json:"satisfiable"`
	} `json:"result"`
}

// checkJobsDurable is the durability oracle: every acknowledged job must
// still exist, must reach a terminal state within bound, and must not
// lie — done means the oracle verdict with the oracle's exact stats
// (deterministic search makes resumed and restarted runs bit-identical),
// failed means a typed error. Under active disk faults failing is
// honest; disappearing or answering wrong never is.
func checkJobsDurable(client *http.Client, base string, acked []ackedJob, truth map[string]satBaseline, bound time.Duration) InvariantResult {
	var violations []string
	add := func(format string, args ...any) {
		if len(violations) < 5 {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
	}
	deadline := time.Now().Add(bound)
	for _, job := range acked {
		var view jobPollView
		for {
			resp, err := client.Get(base + "/jobs/" + job.ID)
			if err != nil {
				if time.Now().After(deadline) {
					add("job %s: polling: %v", job.ID, err)
					break
				}
				time.Sleep(20 * time.Millisecond)
				continue
			}
			code := resp.StatusCode
			derr := json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
			if code == http.StatusNotFound {
				add("job %s (%s): acknowledged then LOST (404)", job.ID, job.Category)
				break
			}
			if code == http.StatusOK && derr == nil && terminal(view.State) {
				checkTerminalJob(job, view, truth, add)
				break
			}
			if time.Now().After(deadline) {
				add("job %s (%s): not terminal after %s (state %q, status %d)", job.ID, job.Category, bound, view.State, code)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return InvariantResult{
		Name:   "jobs-durable",
		OK:     len(violations) == 0,
		Detail: strings.Join(violations, "; "),
	}
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "cancelled"
}

func checkTerminalJob(job ackedJob, view jobPollView, truth map[string]satBaseline, add func(string, ...any)) {
	switch view.State {
	case "done":
		want, ok := truth[job.Category]
		if !ok {
			add("job %s: no oracle baseline for category %q", job.ID, job.Category)
			return
		}
		if view.Result == nil || view.Result.Satisfiable == nil {
			add("job %s (%s): done without a result", job.ID, job.Category)
			return
		}
		if *view.Result.Satisfiable != want.satisfiable {
			add("job %s (%s): verdict %v, oracle says %v", job.ID, job.Category, *view.Result.Satisfiable, want.satisfiable)
			return
		}
		if view.Expansions != want.expansions || view.Checks != want.checks {
			add("job %s (%s): stats %d/%d, oracle run had %d/%d — search diverged",
				job.ID, job.Category, view.Expansions, view.Checks, want.expansions, want.checks)
		}
	case "failed":
		if view.Error == "" {
			add("job %s (%s): failed with no error", job.ID, job.Category)
		}
	case "cancelled":
		add("job %s (%s): cancelled but nothing cancels jobs in this harness", job.ID, job.Category)
	}
}

// checkConvergence is the heal oracle: after every fault is lifted the
// system must return to full health within bound — a probe job submitted
// post-heal completes, and the topology reports converged (all workers
// healthy with breakers closed in cluster mode, /readyz green in single
// mode). The probe job doubles as the write that proves the disk healed.
func checkConvergence(client *http.Client, topo topology, probeCategory string, bound time.Duration) InvariantResult {
	deadline := time.Now().Add(bound)
	fail := func(format string, args ...any) InvariantResult {
		return InvariantResult{Name: "reconverge", OK: false, Detail: fmt.Sprintf(format, args...)}
	}

	// Probe job: submit through the healed front door, await done.
	body := fmt.Sprintf(`{"kind":"sat","category":%q}`, probeCategory)
	var probeID string
	for {
		resp, err := client.Post(topo.base()+"/jobs", "application/json", strings.NewReader(body))
		if err == nil {
			var v jobPollView
			derr := json.NewDecoder(resp.Body).Decode(&v)
			code := resp.StatusCode
			resp.Body.Close()
			if (code == http.StatusOK || code == http.StatusAccepted) && derr == nil && v.ID != "" {
				probeID = v.ID
				break
			}
		}
		if time.Now().After(deadline) {
			return fail("probe job never accepted within %s", bound)
		}
		time.Sleep(25 * time.Millisecond)
	}
	for {
		resp, err := client.Get(topo.base() + "/jobs/" + probeID)
		if err == nil {
			var v jobPollView
			derr := json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if derr == nil && v.State == "done" {
				break
			}
			if derr == nil && terminal(v.State) {
				return fail("probe job ended %s: %s", v.State, v.Error)
			}
		}
		if time.Now().After(deadline) {
			return fail("probe job not done within %s", bound)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Topology health: every node back in rotation.
	for {
		ok, detail := topo.converged()
		if ok {
			return InvariantResult{Name: "reconverge", OK: true}
		}
		if time.Now().After(deadline) {
			return fail("not converged within %s: %s", bound, detail)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// checkTraces is the distributed-tracing oracle: after heal, a request
// through the front door must yield a complete, well-parented trace.
// The request's X-Trace-ID response header names the trace; in cluster
// mode the coordinator's /cluster/trace assembly must contain at least
// the coordinator root, a forward span and the worker's server span,
// all reachable from one root; in single mode the node's own
// /debug/spans must hold the request's span. Span stores are in-memory
// and sampled-by-default, so a healed system that cannot produce this
// has broken propagation, not merely lost history.
func checkTraces(client *http.Client, topo topology, probeCategory string, isCluster bool, bound time.Duration) InvariantResult {
	deadline := time.Now().Add(bound)
	fail := func(format string, args ...any) InvariantResult {
		return InvariantResult{Name: "traces", OK: false, Detail: fmt.Sprintf(format, args...)}
	}
	var traceID string
	for {
		resp, err := client.Get(topo.base() + "/sat?category=" + probeCategory)
		if err == nil {
			traceID = resp.Header.Get("X-Trace-ID")
			status := resp.StatusCode
			resp.Body.Close()
			if status < 500 && traceID != "" {
				break
			}
		}
		if time.Now().After(deadline) {
			return fail("no traced answer to the probe request within %s", bound)
		}
		time.Sleep(25 * time.Millisecond)
	}

	path := "/debug/spans/"
	if isCluster {
		path = "/cluster/trace/"
	}
	var lastDetail string
	for {
		resp, err := client.Get(topo.base() + path + traceID)
		if err == nil && resp.StatusCode == http.StatusOK {
			var v struct {
				Spans []struct {
					Name string `json:"name"`
				} `json:"spans"`
				WellParented bool `json:"wellParented"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if derr == nil {
				if isCluster {
					if len(v.Spans) >= 3 && v.WellParented {
						return InvariantResult{Name: "traces", OK: true}
					}
					lastDetail = fmt.Sprintf("trace %s: %d spans, wellParented=%v", traceID, len(v.Spans), v.WellParented)
				} else {
					for _, sp := range v.Spans {
						if sp.Name == "server.request" {
							return InvariantResult{Name: "traces", OK: true}
						}
					}
					lastDetail = fmt.Sprintf("trace %s: %d spans, none named server.request", traceID, len(v.Spans))
				}
			} else {
				lastDetail = fmt.Sprintf("trace %s: decoding: %v", traceID, derr)
			}
		} else if err != nil {
			lastDetail = fmt.Sprintf("trace %s: %v", traceID, err)
		} else {
			resp.Body.Close()
			lastDetail = fmt.Sprintf("trace %s: status %d", traceID, resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return fail("%s", lastDetail)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// dedupeSorted returns the sorted distinct values of xs.
func dedupeSorted(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if x != "" && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}
