package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Log("request", map[string]any{"path": "/sat", "status": 200})
	l.Log("slow_search", map[string]any{"expansions": 9})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if rec["event"] != "request" || rec["path"] != "/sat" || rec["status"] != float64(200) {
		t.Errorf("line 0 = %v", rec)
	}
	if rec["ts"] == nil {
		t.Error("line 0 has no ts")
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if rec["event"] != "slow_search" {
		t.Errorf("line 1 = %v", rec)
	}
}

func TestNilLoggerDiscards(t *testing.T) {
	var l *Logger
	l.Log("anything", map[string]any{"k": "v"}) // must not panic
	if NewLogger(nil) != nil {
		t.Error("NewLogger(nil) != nil")
	}
}

func TestRequestIDContext(t *testing.T) {
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("empty context carries id %q", got)
	}
	ctx := WithRequestID(context.Background(), "abc-000001")
	if got := RequestIDFrom(ctx); got != "abc-000001" {
		t.Errorf("id = %q", got)
	}
}

func TestIDSource(t *testing.T) {
	s := NewIDSource()
	a, b := s.Next(), s.Next()
	if a == b {
		t.Fatalf("consecutive IDs collide: %s", a)
	}
	for _, id := range []string{a, b} {
		parts := strings.Split(id, "-")
		if len(parts) != 2 || len(parts[0]) != 8 || len(parts[1]) != 6 {
			t.Errorf("id %q does not match prefix-seq shape", id)
		}
	}
	if !strings.HasSuffix(a, "-000001") || !strings.HasSuffix(b, "-000002") {
		t.Errorf("sequence not monotonic: %s, %s", a, b)
	}
}
