package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	if !sc.Valid() {
		t.Fatalf("minted context invalid: %+v", sc)
	}
	h := sc.Traceparent()
	if len(h) != 55 {
		t.Fatalf("traceparent %q: len %d, want 55", h, len(h))
	}
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected", h)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}

	sc.Sampled = false
	got, ok = ParseTraceparent(sc.Traceparent())
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip: got %+v ok=%v", got, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}.Traceparent()
	cases := map[string]string{
		"empty":              "",
		"garbage":            "not-a-traceparent",
		"oversized":          valid + strings.Repeat("-extrafield", 10),
		"version ff":         "ff" + valid[2:],
		"version 01":         "01" + valid[2:],
		"zero trace id":      "00-" + strings.Repeat("0", 32) + "-" + valid[36:],
		"zero span id":       valid[:36] + strings.Repeat("0", 16) + "-01",
		"uppercase hex":      strings.ToUpper(valid),
		"short trace id":     "00-abc-" + valid[36:],
		"missing fields":     "00-" + valid[3:38],
		"non-hex flags":      valid[:53] + "zz",
		"trailing field":     valid + "-00",
		"non-hex trace byte": "00-" + "g" + valid[4:],
	}
	for name, h := range cases {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", name, h)
		}
	}
}

func TestWithSpanContextPropagation(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	ctx := WithSpan(context.Background(), sc)
	got, ok := SpanFrom(ctx)
	if !ok || got != sc {
		t.Fatalf("SpanFrom = %+v, %v; want %+v, true", got, ok, sc)
	}
	if _, ok := SpanFrom(context.Background()); ok {
		t.Fatal("SpanFrom(background) reported a span")
	}
}

func TestStartSpanParenting(t *testing.T) {
	root := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	sp, child := StartSpan(root, "cluster.forward", "client")
	if sp.TraceID != root.TraceID || child.TraceID != root.TraceID {
		t.Fatal("child span left the trace")
	}
	if sp.ParentID != root.SpanID {
		t.Fatalf("span parent = %q, want %q", sp.ParentID, root.SpanID)
	}
	if sp.SpanID != child.SpanID {
		t.Fatalf("span id %q != propagated child id %q", sp.SpanID, child.SpanID)
	}
	if !child.Sampled {
		t.Fatal("sampled flag not inherited")
	}
	sp.Finish("ok")
	if sp.Status != "ok" || sp.DurationMS < 0 {
		t.Fatalf("finish: %+v", sp)
	}
}

func TestSpanStoreBoundsAndEviction(t *testing.T) {
	st := NewSpanStore(4, "w1")
	mk := func(trace string) *Span {
		sp, _ := StartSpan(SpanContext{TraceID: trace, SpanID: NewSpanID(), Sampled: true}, "x", "internal")
		sp.Finish("ok")
		return sp
	}
	traces := []string{
		"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa1",
		"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa2",
		"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa3",
	}
	for _, tr := range traces {
		st.Add(mk(tr))
		st.Add(mk(tr))
	}
	// 6 spans into a 4-span store: the oldest trace must have been
	// evicted whole.
	if st.Trace(traces[0]) != nil {
		t.Fatal("oldest trace not evicted")
	}
	if got := st.Trace(traces[2]); len(got) != 2 {
		t.Fatalf("newest trace has %d spans, want 2", len(got))
	}
	if got := st.Trace(traces[2])[0].Node; got != "w1" {
		t.Fatalf("stored span node = %q, want w1", got)
	}
	if st.Recorded() != 6 || st.Dropped() == 0 {
		t.Fatalf("counters: recorded=%d dropped=%d", st.Recorded(), st.Dropped())
	}

	// Nil store is a silent no-op.
	var nilStore *SpanStore
	nilStore.Add(mk(traces[0]))
	if nilStore.Trace(traces[0]) != nil || nilStore.Len() != 0 {
		t.Fatal("nil store misbehaved")
	}
}

func TestAssemble(t *testing.T) {
	traceID := NewTraceID()
	root := SpanContext{TraceID: traceID, SpanID: NewSpanID(), Sampled: true}
	rootSpan := Span{TraceID: traceID, SpanID: root.SpanID, Name: "coordinator.request",
		Kind: "server", Node: "coordinator", Start: time.Now()}
	fwd, fwdCtx := StartSpan(root, "cluster.forward", "client")
	fwd.Finish("ok")
	wrk, _ := StartSpan(fwdCtx, "worker.request", "server")
	wrk.Finish("ok")

	asm := Assemble(traceID, []Span{*wrk, *fwd, rootSpan, *fwd}) // dup fwd, shuffled
	if len(asm.Spans) != 3 {
		t.Fatalf("assembled %d spans, want 3 (dedup)", len(asm.Spans))
	}
	if !asm.WellParented || asm.Roots != 1 || asm.Orphans != 0 {
		t.Fatalf("assembly not well parented: %+v", asm)
	}

	// Drop the forward span: the worker span's parent is now missing.
	asm = Assemble(traceID, []Span{*wrk, rootSpan})
	if asm.WellParented || asm.Orphans != 1 {
		t.Fatalf("orphan not detected: %+v", asm)
	}

	// Foreign-trace spans are excluded.
	other, _ := StartSpan(SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}, "x", "internal")
	asm = Assemble(traceID, []Span{rootSpan, *fwd, *wrk, *other})
	if len(asm.Spans) != 3 {
		t.Fatalf("foreign span leaked into assembly: %d spans", len(asm.Spans))
	}
}

func TestHistogramExemplarKeepsMax(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	h.ObserveWithExemplar(0.010, "trace-a")
	h.ObserveWithExemplar(0.500, "trace-b")
	h.ObserveWithExemplar(0.100, "trace-c")
	h.Observe(9.9) // no trace ID: must not disturb the exemplar
	ex, ok := h.Exemplar()
	if !ok || ex.TraceID != "trace-b" || ex.Value != 0.500 {
		t.Fatalf("exemplar = %+v, %v; want trace-b @ 0.5", ex, ok)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
}

func TestValidRequestID(t *testing.T) {
	good := []string{"9f1c2a3b-000042", "abc", "A-Z_0.9"}
	for _, id := range good {
		if !ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = false, want true", id)
		}
	}
	bad := []string{"", "has space", "tab\tchar", "ctrl\x01", "ünïcode", strings.Repeat("x", 129)}
	for _, id := range bad {
		if ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = true, want false", id)
		}
	}
}
