package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusExpositionGolden pins the text exposition format byte for
// byte: family and series ordering, HELP/TYPE comments, label rendering,
// cumulative histogram buckets with the +Inf catch-all, and integer
// formatting without a decimal point.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_ops_total", "Operations.").Add(3)
	reg.Gauge("test_depth", "Depth.").Set(-2)
	h := reg.Histogram("test_size_bytes", "Sizes.", []float64{1, 2.5})
	h.Observe(0.5)
	h.Observe(2.5)
	h.Observe(10)
	codes := reg.CounterVec("test_reqs_total", "Requests.", "code")
	codes.With("2xx").Add(2)
	codes.With("5xx").Inc()
	reg.GaugeFunc("test_temp", "Temp.", func() float64 { return 36.6 })

	var b strings.Builder
	reg.WritePrometheus(&b)
	want := `# HELP test_depth Depth.
# TYPE test_depth gauge
test_depth -2
# HELP test_ops_total Operations.
# TYPE test_ops_total counter
test_ops_total 3
# HELP test_reqs_total Requests.
# TYPE test_reqs_total counter
test_reqs_total{code="2xx"} 2
test_reqs_total{code="5xx"} 1
# HELP test_size_bytes Sizes.
# TYPE test_size_bytes histogram
test_size_bytes_bucket{le="1"} 1
test_size_bytes_bucket{le="2.5"} 2
test_size_bytes_bucket{le="+Inf"} 3
test_size_bytes_sum 13
test_size_bytes_count 3
# HELP test_temp Temp.
# TYPE test_temp gauge
test_temp 36.6
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive Prometheus bucket
// semantics: a sample equal to an upper bound lands in that bound's
// bucket, one just above spills to the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_h", "h", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.0001, 2, 4, 4.0001, 100} {
		h.Observe(v)
	}
	// Cumulative: le=1 gets {0,1}, le=2 adds {1.0001,2}, le=4 adds {4}.
	want := []uint64{2, 4, 5}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[le=%v] = %d, want %d", []float64{1, 2, 4}[i], got[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 0+1+1.0001+2+4+4.0001+100 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestGaugeAddReturnsNewValue(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_g", "g")
	if got := g.Add(3); got != 3 {
		t.Errorf("Add(3) = %d, want 3", got)
	}
	if got := g.Add(-1); got != 2 {
		t.Errorf("Add(-1) = %d, want 2", got)
	}
}

func TestCounterVecTotal(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("test_v_total", "v", "k")
	v.With("a").Add(2)
	v.With("b").Add(5)
	if got := v.Total(); got != 7 {
		t.Errorf("Total = %d, want 7", got)
	}
}

func TestRegistryPanicsOnBadAndDuplicateNames(t *testing.T) {
	mustPanic := func(name string, f func(reg *Registry)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f(NewRegistry())
	}
	mustPanic("camelCase", func(reg *Registry) { reg.Counter("badName", "") })
	mustPanic("double underscore", func(reg *Registry) { reg.Counter("bad__name", "") })
	mustPanic("leading digit", func(reg *Registry) { reg.Gauge("9bad", "") })
	mustPanic("bad label", func(reg *Registry) { reg.CounterVec("ok_total", "", "BadLabel") })
	mustPanic("duplicate", func(reg *Registry) {
		reg.Counter("dup_total", "")
		reg.Gauge("dup_total", "")
	})
	mustPanic("non-ascending buckets", func(reg *Registry) {
		reg.Histogram("h", "", []float64{1, 1})
	})
}

func TestLint(t *testing.T) {
	cases := []struct {
		name, typ string
		ok        bool
	}{
		{"dimsat_cache_hits_total", TypeCounter, true},
		{"dimsat_cache_entries", TypeGauge, true},
		{"dimsat_request_duration_seconds", TypeHistogram, true},
		{"dimsat_search_expansions", TypeHistogram, true},
		{"dimsat_cache_hits", TypeCounter, false},            // counter without _total
		{"dimsat_cache_entries_total", TypeGauge, false},     // gauge with _total
		{"dimsat_request_duration_ms", TypeHistogram, false}, // time not in seconds
		{"dimsat_task_latency", TypeHistogram, false},        // time not in seconds
		{"dimsatCamel_total", TypeCounter, false},            // not snake_case
	}
	for _, c := range cases {
		err := Lint(c.name, c.typ)
		if c.ok && err != nil {
			t.Errorf("Lint(%q, %s) = %v, want nil", c.name, c.typ, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Lint(%q, %s) = nil, want error", c.name, c.typ)
		}
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_ops_total", "ops").Inc()
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_ops_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

// TestHistogramQuantile checks the linear-interpolation estimate against
// distributions whose quantiles are known exactly: one observation per
// unit bucket makes every quantile land on a computable interpolated
// point.
func TestHistogramQuantile(t *testing.T) {
	// Bounds 1..10, one observation centered in each bucket: the
	// empirical CDF hits k/10 exactly at bound k, so the q-quantile
	// interpolates to 10q.
	h := NewHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	for _, c := range []struct{ q, want float64 }{
		{0.5, 5}, {0.9, 9}, {0.1, 1}, {1, 10}, {0.25, 2.5}, {0.99, 9.9},
	} {
		if got := h.Quantile(c.q); got < c.want-1e-9 || got > c.want+1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}

	// All mass in one bucket: every quantile interpolates within it.
	h2 := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h2.Observe(1.5)
	}
	if got := h2.Quantile(0.5); got < 1 || got > 2 {
		t.Errorf("single-bucket Quantile(0.5) = %v, want within (1, 2]", got)
	}

	// Mass in the +Inf bucket clamps to the highest finite bound.
	h3 := NewHistogram([]float64{1, 2})
	h3.Observe(100)
	if got := h3.Quantile(0.99); got != 2 {
		t.Errorf("+Inf Quantile(0.99) = %v, want 2", got)
	}

	// Empty histogram reports 0, never NaN (the value is JSON-encoded).
	h4 := NewHistogram([]float64{1})
	if got := h4.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %v, want 0", got)
	}

	// Out-of-range q clamps instead of extrapolating.
	if got := h.Quantile(2); got != 10 {
		t.Errorf("Quantile(2) = %v, want 10", got)
	}
	if got := h.Quantile(-1); got != 0 {
		t.Errorf("Quantile(-1) = %v, want 0", got)
	}
}

// TestHistogramQuantileSkewed checks interpolation on a skewed load-like
// distribution: 90 fast observations and 10 slow ones.
func TestHistogramQuantileSkewed(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.0005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // last finite bucket (0.1, 1]
	}
	// p50 (rank 50 of 100) is inside the first bucket.
	if got := h.Quantile(0.5); got <= 0 || got > 0.001 {
		t.Errorf("Quantile(0.5) = %v, want within (0, 0.001]", got)
	}
	// p99 (rank 99) is inside the (0.1, 1] bucket: 0.1 + 0.9*(9/10).
	want := 0.1 + 0.9*0.9
	if got := h.Quantile(0.99); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Quantile(0.99) = %v, want %v", got, want)
	}
}

// TestInfoGauge pins the constant info-gauge rendering: one series, all
// labels sorted, value 1.
func TestInfoGauge(t *testing.T) {
	reg := NewRegistry()
	reg.Info("test_build_info", "Build metadata.", map[string]string{
		"version": "v1.2.3", "goversion": "go1.24", "revision": "abc123",
	})
	var b strings.Builder
	reg.WritePrometheus(&b)
	want := `# HELP test_build_info Build metadata.
# TYPE test_build_info gauge
test_build_info{goversion="go1.24",revision="abc123",version="v1.2.3"} 1
`
	if got := b.String(); got != want {
		t.Errorf("info exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	fams := reg.Families()
	if len(fams) != 1 || fams[0].Label != "goversion,revision,version" {
		t.Errorf("Families() = %+v, want one family with the sorted label list", fams)
	}
	if err := Lint(fams[0].Name, fams[0].Type); err != nil {
		t.Errorf("Lint(build_info) = %v", err)
	}
}

func TestInfoGaugePanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for a bad label name")
		}
	}()
	NewRegistry().Info("test_info", "", map[string]string{"BadLabel": "x"})
}

// TestGetBuildInfo checks the degraded defaults: under go test there is
// no VCS stamp, but every field must still be non-empty so metric labels
// and BENCH fields are always present.
func TestGetBuildInfo(t *testing.T) {
	bi := GetBuildInfo()
	if bi.Version == "" || bi.GoVersion == "" || bi.Revision == "" {
		t.Errorf("GetBuildInfo has empty fields: %+v", bi)
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want go toolchain string", bi.GoVersion)
	}
	labels := bi.Labels()
	for _, k := range []string{"version", "goversion", "revision"} {
		if labels[k] == "" {
			t.Errorf("Labels()[%q] empty", k)
		}
	}
}

// TestLatencyBuckets checks the layout is ascending and spans the
// claimed 100µs..~26s range.
func TestLatencyBuckets(t *testing.T) {
	b := LatencyBuckets()
	if b[0] != 0.0001 {
		t.Errorf("first bucket = %v, want 0.0001", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not ascending at %d: %v", i, b)
		}
	}
	if last := b[len(b)-1]; last < 16 || last > 64 {
		t.Errorf("last bucket = %v, want tens of seconds", last)
	}
}

// TestRegistryConcurrent hammers every instrument kind from many
// goroutines while scrapes run — meaningful under -race (make check-race)
// and a sanity check that concurrent totals are not lost.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_c_total", "")
	g := reg.Gauge("test_g", "")
	h := reg.Histogram("test_h", "", DurationBuckets())
	v := reg.CounterVec("test_v_total", "", "k")
	hv := reg.HistogramVec("test_hv", "", "k", EffortBuckets())

	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := []string{"a", "b", "c"}[i%3]
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j) / 1000)
				v.With(key).Inc()
				hv.With(key).Observe(float64(j))
				if j%100 == 0 {
					var b strings.Builder
					reg.WritePrometheus(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != goroutines*perG {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if v.Total() != goroutines*perG {
		t.Errorf("vec total = %d, want %d", v.Total(), goroutines*perG)
	}
}
