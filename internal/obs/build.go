package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the module version, the Go
// toolchain that built it, and the VCS revision it was built from. The
// server exports it as the olapdim_build_info gauge and the load
// generator stamps it into every BENCH_*.json run record, so a
// regression diff can always say which build produced which numbers.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version"`
	// GoVersion is the toolchain, e.g. "go1.24.3".
	GoVersion string `json:"goVersion"`
	// Revision is the VCS commit hash, "unknown" when the build carries
	// no VCS stamp (go test binaries, go run).
	Revision string `json:"revision"`
	// Dirty is true when the build had uncommitted changes.
	Dirty bool `json:"dirty,omitempty"`
}

// Labels renders the build info as metric labels for Registry.Info.
func (b BuildInfo) Labels() map[string]string {
	return map[string]string{
		"version":   b.Version,
		"goversion": b.GoVersion,
		"revision":  b.Revision,
	}
}

// GetBuildInfo reads the binary's build metadata from
// runtime/debug.ReadBuildInfo. Fields the build did not stamp (no VCS
// info under go test, no module version outside module builds) degrade
// to "unknown" rather than empty, so downstream label and JSON values
// are always present.
func GetBuildInfo() BuildInfo {
	out := BuildInfo{Version: "unknown", GoVersion: runtime.Version(), Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		out.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				out.Revision = s.Value
			}
		case "vcs.modified":
			out.Dirty = s.Value == "true"
		}
	}
	return out
}
