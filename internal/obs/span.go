package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed spans: a dependency-free span model with W3C trace-context
// (`traceparent`) propagation, so one client request keeps a single trace
// ID across the coordinator, its forwards/retries/hedges, the worker that
// answers, and any durable job the request spawns — even across a worker
// crash, because the trace context is persisted in the job snapshot.
//
// The model is deliberately small: a trace is identified by a 16-byte
// (32 hex) trace ID, each operation within it by an 8-byte (16 hex) span
// ID, and causality by the parent span ID. There is no wire protocol
// beyond the traceparent header and no exporter; spans land in a bounded
// in-memory SpanStore served at GET /debug/spans, and the coordinator
// assembles the cross-node tree by fanning the trace ID out to workers.

// traceparentVersion is the only W3C trace-context version this parser
// emits or accepts. Per spec, version 0xff is permanently invalid and
// higher versions may carry extra fields; since we never need them, any
// non-00 version is rejected and the receiver mints a fresh context.
const traceparentVersion = "00"

// maxTraceparentLen bounds the header length accepted by
// ParseTraceparent. A version-00 traceparent is exactly 55 bytes; any
// oversized value is hostile or corrupt and is rejected outright.
const maxTraceparentLen = 64

// SpanContext is the propagated identity of an in-progress trace: which
// trace the current operation belongs to, which span is its parent, and
// whether the trace is sampled (recorded into span stores).
type SpanContext struct {
	TraceID string
	SpanID  string
	Sampled bool
}

// Valid reports whether the context carries well-formed non-zero IDs.
func (sc SpanContext) Valid() bool {
	return isLowerHex(sc.TraceID, 32) && !allZero(sc.TraceID) &&
		isLowerHex(sc.SpanID, 16) && !allZero(sc.SpanID)
}

// Traceparent renders the context as a W3C traceparent header value:
// 00-<trace-id>-<parent-id>-<flags>, flags bit 0 = sampled.
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return traceparentVersion + "-" + sc.TraceID + "-" + sc.SpanID + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value strictly:
// version 00 only, lowercase hex, non-zero trace and parent IDs, exact
// field lengths, bounded total length. Anything else returns ok=false
// and the receiver should mint a fresh context instead — a malformed or
// oversized header must never propagate.
func ParseTraceparent(h string) (SpanContext, bool) {
	if len(h) > maxTraceparentLen {
		return SpanContext{}, false
	}
	parts := strings.Split(h, "-")
	if len(parts) != 4 {
		return SpanContext{}, false
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if version != traceparentVersion {
		return SpanContext{}, false
	}
	if !isLowerHex(traceID, 32) || allZero(traceID) {
		return SpanContext{}, false
	}
	if !isLowerHex(spanID, 16) || allZero(spanID) {
		return SpanContext{}, false
	}
	if !isLowerHex(flags, 2) {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: traceID, SpanID: spanID}
	// flags is two lowercase hex digits; bit 0 of the low nibble is
	// "sampled".
	low := flags[1]
	var nib byte
	switch {
	case low >= '0' && low <= '9':
		nib = low - '0'
	default:
		nib = low - 'a' + 10
	}
	sc.Sampled = nib&1 == 1
	return sc, true
}

func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// idEntropy mirrors IDSource's fallback behavior: crypto/rand when
// available, a clock-derived fill otherwise, so ID minting can never
// fail at request time.
func idEntropy(b []byte) {
	if _, err := rand.Read(b); err != nil {
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * (i % 8)))
			now += 0x9e3779b9
		}
	}
}

// NewTraceID mints a 32-hex-digit trace ID.
func NewTraceID() string {
	var b [16]byte
	idEntropy(b[:])
	// An all-zero trace ID is invalid on the wire; force a bit.
	b[15] |= 1
	return hex.EncodeToString(b[:])
}

// NewSpanID mints a 16-hex-digit span ID.
func NewSpanID() string {
	var b [8]byte
	idEntropy(b[:])
	b[7] |= 1
	return hex.EncodeToString(b[:])
}

// spanKey is the context key for the active SpanContext.
type spanKey struct{}

// WithSpan returns a context carrying sc, so layers below (job submit,
// cluster forwards) can continue the same trace.
func WithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanKey{}, sc)
}

// SpanFrom returns the SpanContext carried by ctx, if any.
func SpanFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanKey{}).(SpanContext)
	return sc, ok
}

// Span is one recorded operation: its identity within the trace, what it
// did, where it ran, and how it ended. The JSON shape is the wire format
// of GET /debug/spans and GET /cluster/trace/{traceID}.
type Span struct {
	TraceID    string            `json:"traceId"`
	SpanID     string            `json:"spanId"`
	ParentID   string            `json:"parentId,omitempty"`
	Name       string            `json:"name"`
	Kind       string            `json:"kind"` // "server", "client", "internal"
	Node       string            `json:"node,omitempty"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"durationMs"`
	Status     string            `json:"status"` // "ok", "error", "cancelled"
	Attrs      map[string]string `json:"attrs,omitempty"`

	start time.Time
}

// maxSpanAttrs bounds the attribute map so a span can never balloon.
const maxSpanAttrs = 16

// StartSpan begins a span as a child of parent (same trace, new span ID,
// sampled flag inherited) and returns the span plus the child context to
// propagate further down.
func StartSpan(parent SpanContext, name, kind string) (*Span, SpanContext) {
	child := SpanContext{TraceID: parent.TraceID, SpanID: NewSpanID(), Sampled: parent.Sampled}
	now := time.Now()
	sp := &Span{
		TraceID:  parent.TraceID,
		SpanID:   child.SpanID,
		ParentID: parent.SpanID,
		Name:     name,
		Kind:     kind,
		Start:    now,
		start:    now,
	}
	return sp, child
}

// SetAttr records one bounded string attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	if len(s.Attrs) >= maxSpanAttrs {
		if _, ok := s.Attrs[k]; !ok {
			return
		}
	}
	if len(v) > 256 {
		v = v[:256]
	}
	s.Attrs[k] = v
}

// Finish stamps the duration and final status ("ok", "error",
// "cancelled").
func (s *Span) Finish(status string) {
	if s == nil {
		return
	}
	s.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	s.Status = status
}

// SpanStore is a bounded per-node store of finished spans, grouped by
// trace. When the span budget is exceeded the oldest trace is evicted
// whole (partial traces are worse than absent ones); within one trace
// the span count is capped so a single pathological trace cannot evict
// everything else.
type SpanStore struct {
	mu       sync.Mutex
	max      int
	node     string
	byTrace  map[string][]Span
	order    []string // trace IDs oldest-first
	total    int
	recorded atomic.Uint64
	dropped  atomic.Uint64
}

// maxSpansPerTrace caps one trace's footprint in the store.
const maxSpansPerTrace = 256

// NewSpanStore builds a store retaining at most maxSpans finished spans;
// node names the process in every span it serves (worker URL or
// "coordinator").
func NewSpanStore(maxSpans int, node string) *SpanStore {
	if maxSpans <= 0 {
		maxSpans = 2048
	}
	return &SpanStore{
		max:     maxSpans,
		node:    node,
		byTrace: make(map[string][]Span),
	}
}

// Node returns the node name stamped on stored spans.
func (st *SpanStore) Node() string {
	if st == nil {
		return ""
	}
	return st.node
}

// Add records one finished span. Nil-safe: a nil store drops silently,
// so call sites never need a guard.
func (st *SpanStore) Add(sp *Span) {
	if st == nil || sp == nil || sp.TraceID == "" {
		return
	}
	cp := *sp
	cp.Node = st.node
	st.mu.Lock()
	defer st.mu.Unlock()
	spans, exists := st.byTrace[cp.TraceID]
	if len(spans) >= maxSpansPerTrace {
		st.dropped.Add(1)
		return
	}
	if !exists {
		st.order = append(st.order, cp.TraceID)
	}
	st.byTrace[cp.TraceID] = append(spans, cp)
	st.total++
	st.recorded.Add(1)
	for st.total > st.max && len(st.order) > 1 {
		oldest := st.order[0]
		st.order = st.order[1:]
		n := len(st.byTrace[oldest])
		delete(st.byTrace, oldest)
		st.total -= n
		st.dropped.Add(uint64(n))
	}
}

// Trace returns the stored spans of one trace (nil when unknown).
func (st *SpanStore) Trace(traceID string) []Span {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	spans := st.byTrace[traceID]
	if spans == nil {
		return nil
	}
	out := make([]Span, len(spans))
	copy(out, spans)
	return out
}

// TraceIDs returns the retained trace IDs newest-first.
func (st *SpanStore) TraceIDs() []string {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, len(st.order))
	for i, id := range st.order {
		out[len(st.order)-1-i] = id
	}
	return out
}

// Len returns the stored span count.
func (st *SpanStore) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// Recorded and Dropped expose the store's lifetime counters for the
// olapdim_spans_* metric families.
func (st *SpanStore) Recorded() uint64 {
	if st == nil {
		return 0
	}
	return st.recorded.Load()
}

func (st *SpanStore) Dropped() uint64 {
	if st == nil {
		return 0
	}
	return st.dropped.Load()
}

// TraceAssembly is the cross-node view of one trace: every collected
// span sorted by start time, plus the structural verdict the chaos
// oracle and smoke scripts assert on.
type TraceAssembly struct {
	TraceID string   `json:"traceId"`
	Spans   []Span   `json:"spans"`
	Roots   int      `json:"roots"`
	Orphans int      `json:"orphans"`
	Nodes   []string `json:"nodes"`
	// WellParented is true when the trace has exactly one root and every
	// other span's parent is present in the set.
	WellParented bool `json:"wellParented"`
}

// Assemble merges spans (typically gathered from several nodes) into
// one tree view, deduplicating by span ID and checking parent links.
func Assemble(traceID string, spans []Span) TraceAssembly {
	byID := make(map[string]Span, len(spans))
	var ordered []Span
	for _, sp := range spans {
		if sp.TraceID != traceID || sp.SpanID == "" {
			continue
		}
		if _, dup := byID[sp.SpanID]; dup {
			continue
		}
		byID[sp.SpanID] = sp
		ordered = append(ordered, sp)
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Start.Before(ordered[j].Start)
	})
	asm := TraceAssembly{TraceID: traceID, Spans: ordered}
	nodes := map[string]bool{}
	for _, sp := range ordered {
		if sp.Node != "" {
			nodes[sp.Node] = true
		}
		if sp.ParentID == "" {
			asm.Roots++
			continue
		}
		if _, ok := byID[sp.ParentID]; !ok {
			asm.Orphans++
		}
	}
	for n := range nodes {
		asm.Nodes = append(asm.Nodes, n)
	}
	sort.Strings(asm.Nodes)
	asm.WellParented = len(ordered) > 0 && asm.Roots == 1 && asm.Orphans == 0
	return asm
}
