package obs

import (
	"sort"
	"sync"
	"time"

	"olapdim/internal/frozen"
)

// Event is one step of a recorded per-request DIMSAT search: an EXPAND,
// a CHECK, or a pruning dead end, with the decision depth at which it
// happened. Unlike core.TraceEvent it never renders the subhierarchy, so
// recording is O(1) per step and a trace of a big search stays small.
type Event struct {
	// Seq is the 1-based position of the event in the search.
	Seq int `json:"seq"`
	// Kind is "expand", "check" or "prune".
	Kind string `json:"kind"`
	// Depth is the decision-stack depth (number of EXPAND frames below).
	Depth int `json:"depth"`
	// Category is the expanded category (expand) or the category whose
	// expansion was abandoned (prune).
	Category string `json:"category,omitempty"`
	// Parents lists the parent set R of an expand event.
	Parents []string `json:"parents,omitempty"`
	// Heuristic names the pruning rule behind a prune event: "into",
	// "cycle-frontier" or "sibling-shortcut".
	Heuristic string `json:"heuristic,omitempty"`
	// Induced reports whether a check event found a frozen dimension.
	Induced bool `json:"induced,omitempty"`
}

// Trace is the recorded search activity of one request, the unit stored
// in the ring and served at GET /debug/traces/{id}.
type Trace struct {
	// ID is the request ID (the X-Request-ID response header value).
	ID string `json:"id"`
	// Endpoint is the handler that ran the search, e.g. "/sat".
	Endpoint string `json:"endpoint"`
	// Detail carries the request argument (category, root, target).
	Detail string `json:"detail,omitempty"`
	// Schema is the dimension-schema fingerprint the search ran against.
	Schema string `json:"schema,omitempty"`
	// Start is when the request began.
	Start time.Time `json:"start"`
	// DurationMS is the request wall-clock time in milliseconds.
	DurationMS float64 `json:"durationMs"`
	// Expansions, Checks and DeadEnds are the request's search effort.
	Expansions int `json:"expansions"`
	Checks     int `json:"checks"`
	DeadEnds   int `json:"deadEnds"`
	// Slow marks a request whose effort exceeded the slow-search
	// threshold; it also appears in the slow-search log.
	Slow bool `json:"slow,omitempty"`
	// Truncated reports that the per-trace event cap was hit; Events then
	// holds only the head of the search.
	Truncated bool `json:"truncated,omitempty"`
	// Events is the recorded EXPAND/CHECK/prune sequence.
	Events []Event `json:"events"`
}

// Ring is a bounded, concurrency-safe store of the most recent traces:
// inserting beyond capacity evicts the oldest, so trace memory is capped
// no matter how long the server runs.
type Ring struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*Trace
	ids  []string // insertion order, oldest first
}

// NewRing returns a ring retaining the latest n traces (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{cap: n, byID: map[string]*Trace{}}
}

// Put inserts a trace, evicting the oldest when full. A duplicate ID
// replaces the stored trace without consuming a slot.
func (r *Ring) Put(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[t.ID]; ok {
		r.byID[t.ID] = t
		return
	}
	if len(r.ids) == r.cap {
		oldest := r.ids[0]
		r.ids = r.ids[1:]
		delete(r.byID, oldest)
	}
	r.ids = append(r.ids, t.ID)
	r.byID[t.ID] = t
}

// Get returns the trace for a request ID.
func (r *Ring) Get(id string) (*Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// IDs returns the retained request IDs, newest first.
func (r *Ring) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.ids))
	for i, id := range r.ids {
		out[len(r.ids)-1-i] = id
	}
	return out
}

// Len returns the number of retained traces.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ids)
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return r.cap }

// SearchTracer adapts core.Tracer into the bounded structured event log
// of a Trace. It implements both core.Tracer (the Figure-7 narrative
// interface; those callbacks are no-ops here) and core.StructuredTracer,
// whose depth- and heuristic-carrying callbacks feed Events. The event
// cap bounds memory for adversarial searches; recording past it only
// flips Truncated.
//
// Methods are mutex-guarded: a search runs on one goroutine, but the
// tracer outlives the search call and may be read while a matrix cell is
// still running under a shared Options value.
type SearchTracer struct {
	mu        sync.Mutex
	limit     int
	events    []Event
	truncated bool
	seq       int
}

// NewSearchTracer returns a tracer retaining at most limit events
// (limit >= 1).
func NewSearchTracer(limit int) *SearchTracer {
	if limit < 1 {
		limit = 1
	}
	return &SearchTracer{limit: limit}
}

// Expand implements core.Tracer; the structured callback carries the data.
func (t *SearchTracer) Expand(g *frozen.Subhierarchy, ctop string, R []string) {}

// Check implements core.Tracer; the structured callback carries the data.
func (t *SearchTracer) Check(g *frozen.Subhierarchy, induced bool) {}

// ExpandStep implements core.StructuredTracer.
func (t *SearchTracer) ExpandStep(depth int, ctop string, R []string) {
	t.add(Event{Kind: "expand", Depth: depth, Category: ctop, Parents: append([]string(nil), R...)})
}

// CheckStep implements core.StructuredTracer.
func (t *SearchTracer) CheckStep(depth int, induced bool) {
	t.add(Event{Kind: "check", Depth: depth, Induced: induced})
}

// PruneStep implements core.StructuredTracer.
func (t *SearchTracer) PruneStep(depth int, ctop, heuristic string) {
	t.add(Event{Kind: "prune", Depth: depth, Category: ctop, Heuristic: heuristic})
}

func (t *SearchTracer) add(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	if len(t.events) >= t.limit {
		t.truncated = true
		return
	}
	e.Seq = t.seq
	t.events = append(t.events, e)
}

// Events returns a copy of the recorded events and whether the cap was
// hit.
func (t *SearchTracer) Events() ([]Event, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...), t.truncated
}

// Counts tallies the recorded events by kind, a cheap cross-check
// against the search Stats (prune events correspond to dead ends).
func (t *SearchTracer) Counts() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[string]int{}
	for _, e := range t.events {
		out[e.Kind]++
	}
	return out
}

// Heuristics returns the distinct prune heuristics seen, sorted.
func (t *SearchTracer) Heuristics() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := map[string]bool{}
	for _, e := range t.events {
		if e.Kind == "prune" {
			set[e.Heuristic] = true
		}
	}
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
