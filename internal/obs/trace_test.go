package obs

import (
	"fmt"
	"testing"

	"olapdim/internal/core"
)

// The SearchTracer must satisfy both tracer interfaces of the engine —
// the narrative core.Tracer and the structured extension the search
// detects by type assertion.
var (
	_ core.Tracer           = (*SearchTracer)(nil)
	_ core.StructuredTracer = (*SearchTracer)(nil)
)

// TestRingEviction fills the ring past capacity and checks FIFO
// eviction, newest-first listing, and duplicate-ID replacement.
func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Put(&Trace{ID: fmt.Sprintf("req-%d", i), Expansions: i})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	for _, gone := range []string{"req-1", "req-2"} {
		if _, ok := r.Get(gone); ok {
			t.Errorf("%s survived eviction", gone)
		}
	}
	ids := r.IDs()
	want := []string{"req-5", "req-4", "req-3"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v (newest first)", ids, want)
		}
	}
	// A duplicate ID replaces in place without consuming a slot.
	r.Put(&Trace{ID: "req-4", Expansions: 99})
	if r.Len() != 3 {
		t.Errorf("len after dup = %d, want 3", r.Len())
	}
	if tr, _ := r.Get("req-4"); tr.Expansions != 99 {
		t.Errorf("dup put did not replace: %+v", tr)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want clamped to 1", r.Cap())
	}
	r.Put(&Trace{ID: "a"})
	r.Put(&Trace{ID: "b"})
	if _, ok := r.Get("a"); ok {
		t.Error("capacity-1 ring retained two traces")
	}
}

// TestSearchTracerTruncation checks that the event cap bounds memory:
// events past the limit only flip Truncated, while Seq keeps counting
// the search's real length.
func TestSearchTracerTruncation(t *testing.T) {
	tr := NewSearchTracer(2)
	tr.ExpandStep(0, "A", []string{"B"})
	tr.CheckStep(1, false)
	tr.PruneStep(1, "C", "into")
	events, truncated := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2 (capped)", len(events))
	}
	if !truncated {
		t.Error("cap hit but not marked truncated")
	}
	if events[0].Kind != "expand" || events[0].Seq != 1 || events[1].Kind != "check" || events[1].Seq != 2 {
		t.Errorf("unexpected head: %+v", events)
	}
}

func TestSearchTracerCountsAndHeuristics(t *testing.T) {
	tr := NewSearchTracer(100)
	tr.ExpandStep(0, "A", nil)
	tr.ExpandStep(1, "B", nil)
	tr.CheckStep(2, true)
	tr.PruneStep(1, "C", "into")
	tr.PruneStep(1, "D", "sibling-shortcut")
	counts := tr.Counts()
	if counts["expand"] != 2 || counts["check"] != 1 || counts["prune"] != 2 {
		t.Errorf("counts = %v", counts)
	}
	hs := tr.Heuristics()
	if len(hs) != 2 || hs[0] != "into" || hs[1] != "sibling-shortcut" {
		t.Errorf("heuristics = %v", hs)
	}
}
