// Package obs is the observability layer of the dimension-constraint
// service: a dependency-free metrics registry with Prometheus text
// exposition, a structured JSON-lines logger with request-ID propagation,
// and a bounded in-memory ring of per-request DIMSAT search traces.
//
// The registry holds three instrument kinds — atomic counters, gauges and
// fixed-bucket histograms — optionally split by one label, plus
// collect-at-scrape functions for counters owned elsewhere (the SatCache,
// the job store, the fault injector). Everything is safe for concurrent
// use from serving hot paths; an observation is one or two atomic
// operations, never an allocation.
//
// Metric names are validated at registration (see CheckName) and linted
// against the serving conventions (see Lint, cmd/metricslint):
// snake_case, counters end in _total, duration metrics end in _seconds.
// docs/OBSERVABILITY.md catalogs every metric the server registers.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric types as exposed in the Prometheus TYPE comment.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// CheckName validates the basic syntax of a metric or label name:
// snake_case ASCII, starting with a letter, no consecutive or trailing
// underscores. Registration panics on violations — metric names are
// compile-time constants, so a bad one is a programmer error caught by
// any test that constructs the registry.
func CheckName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("obs: metric name %q is not snake_case", name)
	}
	return nil
}

// Lint applies the serving naming conventions on top of CheckName:
// counters must end in _total, non-counters must not, and any metric
// whose name speaks of time (duration, latency) must be in base seconds
// (end in _seconds). cmd/metricslint runs this over every family the
// server registers, so a drive-by metric with a nonconforming name fails
// `make check` rather than landing on a dashboard.
func Lint(name, typ string) error {
	if err := CheckName(name); err != nil {
		return err
	}
	isTotal := strings.HasSuffix(name, "_total")
	if typ == TypeCounter && !isTotal {
		return fmt.Errorf("obs: counter %q must end in _total", name)
	}
	if typ != TypeCounter && isTotal {
		return fmt.Errorf("obs: %s %q must not end in _total (counters only)", typ, name)
	}
	for _, w := range []string{"duration", "latency"} {
		if strings.Contains(name, w) && !strings.HasSuffix(name, "_seconds") {
			return fmt.Errorf("obs: %s %q mentions %q but is not in base seconds (_seconds)", typ, name, w)
		}
	}
	return nil
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta and returns the new value, so callers
// using the gauge as their own bookkeeping (admission queues) need no
// shadow atomic.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the rest. Observations
// are lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	ex     atomic.Pointer[Exemplar]
}

// Exemplar links a histogram's tail to a concrete trace: the trace ID of
// the largest observation recorded so far and its value. Exposed through
// /stats (exposition format 0.0.4 has no exemplar syntax), it turns "p99
// moved" into "go read this trace".
type Exemplar struct {
	TraceID string  `json:"traceId"`
	Value   float64 `json:"value"`
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// NewHistogram returns a standalone histogram outside any registry, for
// callers that aggregate locally and report elsewhere (the load
// generator's client-side latency capture). Bounds must be ascending.
func NewHistogram(bounds []float64) *Histogram {
	return newHistogram(bounds)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveWithExemplar records one sample and, when it is the largest
// seen so far and carries a trace ID, retains it as the histogram's
// exemplar. The keep-max policy means the exemplar always names the
// slowest-bucket observation — the request worth reading a trace for.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	for {
		old := h.ex.Load()
		if old != nil && old.Value >= v {
			return
		}
		if h.ex.CompareAndSwap(old, &Exemplar{TraceID: traceID, Value: v}) {
			return
		}
	}
}

// Exemplar returns the retained slowest-observation exemplar, if any.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	ex := h.ex.Load()
	if ex == nil {
		return Exemplar{}, false
	}
	return *ex, true
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the cumulative count at each configured upper bound
// (excluding +Inf), index-aligned with the bounds passed at registration.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.bounds))
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by linear interpolation within the bucket the rank falls
// into, the same estimate Prometheus's histogram_quantile computes. The
// lower edge of the first bucket is taken as 0 (observations are
// non-negative in every layout this package ships); a rank landing in
// the +Inf bucket is clamped to the highest finite bound, so the
// estimate is always finite. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	lower := 0.0
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lower + (bound-lower)*frac
		}
		cum += c
		lower = bound
	}
	return h.bounds[len(h.bounds)-1]
}

// family is one registered metric family: a fixed name/help/type plus
// either static series (by label value) or a collect-at-scrape function.
type family struct {
	name   string
	help   string
	typ    string
	label  string // label name for vector families, "" otherwise
	bounds []float64

	mu     sync.Mutex
	series map[string]any // label value ("" for plain) -> *Counter/*Gauge/*Histogram
	// collect, when non-nil, supersedes series: it returns current values
	// by label value at scrape time (counters and gauges only).
	collect func() map[string]float64
	// info, when non-nil, marks a constant info gauge: one series with
	// this fixed label set and the constant value 1 (the build_info
	// convention).
	info map[string]string
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Register every family once, at construction time;
// duplicate or syntactically invalid names panic.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) register(name, help, typ, label string, bounds []float64, collect func() map[string]float64) *family {
	if err := CheckName(name); err != nil {
		panic(err)
	}
	if label != "" {
		if err := CheckName(label); err != nil {
			panic(err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, typ: typ, label: label, bounds: bounds,
		series: map[string]any{}, collect: collect}
	r.families[name] = f
	return f
}

// Counter registers and returns a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, TypeCounter, "", nil, nil)
	c := &Counter{}
	f.series[""] = c
	return c
}

// Gauge registers and returns a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, TypeGauge, "", nil, nil)
	g := &Gauge{}
	f.series[""] = g
	return g
}

// Histogram registers and returns a plain fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, TypeHistogram, "", buckets, nil)
	h := newHistogram(buckets)
	f.series[""] = h
	return h
}

// CounterVec is a counter family split by one label.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with one label dimension.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, label, nil, nil)}
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.series[value].(*Counter)
	if !ok {
		c = &Counter{}
		v.f.series[value] = c
	}
	return c
}

// Total sums the counter across all label values.
func (v *CounterVec) Total() uint64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	var total uint64
	for _, m := range v.f.series {
		total += m.(*Counter).Value()
	}
	return total
}

// HistogramVec is a histogram family split by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family with one label dimension.
// All series share the bucket layout.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return &HistogramVec{r.register(name, help, TypeHistogram, label, buckets, nil)}
}

// With returns the histogram for one label value, creating it on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	h, ok := v.f.series[value].(*Histogram)
	if !ok {
		h = newHistogram(v.f.bounds)
		v.f.series[value] = h
	}
	return h
}

// CounterFunc registers a counter whose value is read at scrape time —
// for cumulative counts owned by another subsystem (cache hits, job
// lifecycle transitions). f must be safe for concurrent use and
// monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(name, help, TypeCounter, "", nil, func() map[string]float64 {
		return map[string]float64{"": f()}
	})
}

// GaugeFunc registers a gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, help, TypeGauge, "", nil, func() map[string]float64 {
		return map[string]float64{"": f()}
	})
}

// Info registers a constant info gauge: a single series carrying the
// given fixed labels with the constant value 1, the Prometheus
// convention for build and runtime metadata (joins on the labels, value
// carries nothing). Label names are validated like metric names; label
// values are free-form.
func (r *Registry) Info(name, help string, labels map[string]string) {
	for k := range labels {
		if err := CheckName(k); err != nil {
			panic(err)
		}
	}
	f := r.register(name, help, TypeGauge, "", nil, nil)
	copied := make(map[string]string, len(labels))
	for k, v := range labels {
		copied[k] = v
	}
	f.info = copied
}

// CounterVecFunc registers a labeled counter family collected at scrape
// time: f returns the current value per label value (e.g. fault
// injections fired per site).
func (r *Registry) CounterVecFunc(name, help, label string, f func() map[string]float64) {
	r.register(name, help, TypeCounter, label, nil, f)
}

// FamilyInfo describes one registered family, for linting and catalogs.
type FamilyInfo struct {
	Name  string
	Type  string
	Help  string
	Label string // "" for unlabeled families
}

// Families lists the registered families sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		label := f.label
		if f.info != nil {
			keys := make([]string, 0, len(f.info))
			for k := range f.info {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			label = strings.Join(keys, ",")
		}
		out = append(out, FamilyInfo{Name: f.name, Type: f.typ, Help: f.help, Label: label})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families and series sorted by name so scrapes
// are diffable.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

func (f *family) write(w io.Writer) {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)

	if f.info != nil {
		keys := make([]string, 0, len(f.info))
		for k := range f.info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		pairs := make([]string, len(keys))
		for i, k := range keys {
			pairs[i] = fmt.Sprintf("%s=%q", k, f.info[k])
		}
		fmt.Fprintf(w, "%s{%s} 1\n", f.name, strings.Join(pairs, ","))
		return
	}

	if f.collect != nil {
		vals := f.collect()
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s%s %s\n", f.name, f.labelPair(k), formatFloat(vals[k]))
		}
		return
	}

	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()

	for i, k := range keys {
		switch m := series[i].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelPair(k), m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelPair(k), m.Value())
		case *Histogram:
			cum := m.Buckets()
			for j, bound := range m.bounds {
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, f.bucketLabel(k, formatFloat(bound)), cum[j])
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, f.bucketLabel(k, "+Inf"), m.Count())
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, f.labelPair(k), formatFloat(m.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, f.labelPair(k), m.Count())
		}
	}
}

// labelPair renders {label="value"} for vector families, "" otherwise.
func (f *family) labelPair(value string) string {
	if f.label == "" {
		return ""
	}
	return fmt.Sprintf(`{%s=%q}`, f.label, value)
}

// bucketLabel renders the le label, merged with the family label if any.
func (f *family) bucketLabel(value, le string) string {
	if f.label == "" {
		return fmt.Sprintf(`{le=%q}`, le)
	}
	return fmt.Sprintf(`{%s=%q,le=%q}`, f.label, value, le)
}

// formatFloat renders a float like Prometheus clients do: integers
// without a decimal point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// ServeHTTP renders the registry, making it mountable at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w)
}

// DurationBuckets is the default latency bucket layout, in seconds:
// 1ms to ~16s in powers of four, fitting both cache hits and budgeted
// worst-case searches.
func DurationBuckets() []float64 {
	return []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384}
}

// LatencyBuckets is the fine-grained latency layout used by client-side
// capture (the load generator), in seconds: powers of two from 100µs to
// ~26s. Twice the resolution of DurationBuckets keeps the interpolation
// error of Histogram.Quantile small enough for p99.9 reporting.
func LatencyBuckets() []float64 {
	out := make([]float64, 19)
	b := 0.0001
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// EffortBuckets is the default search-effort bucket layout (EXPAND or
// CHECK steps per request): exponential from 1 to ~1M, the range between
// a trivially pruned search and an exhausted serving budget.
func EffortBuckets() []float64 {
	return []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}
