package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Logger writes structured JSON lines — one object per event — to a
// single writer, serialized by a mutex so concurrent requests never
// interleave bytes. Every line carries ts (RFC 3339, UTC) and event;
// callers add the rest. A nil *Logger discards everything, so logging
// call sites need no guards.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger returns a logger writing JSON lines to w; a nil w yields a
// nil logger, whose methods are no-ops.
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w}
}

// Log emits one event line. fields must not contain the reserved keys
// "ts" and "event" (they would be overwritten). Keys are rendered in
// sorted order (encoding/json map behavior), so lines are diffable.
func (l *Logger) Log(event string, fields map[string]any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["event"] = event
	line, err := json.Marshal(rec)
	if err != nil {
		// A field that cannot marshal (a channel, a cycle) is a programmer
		// error; degrade to a loggable note rather than dropping the event.
		line, _ = json.Marshal(map[string]any{
			"ts": time.Now().UTC().Format(time.RFC3339Nano), "event": event,
			"error": fmt.Sprintf("unloggable fields: %v", err),
		})
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(append(line, '\n'))
}

type requestIDKey struct{}

// WithRequestID returns a context carrying the request ID, propagated by
// the server through every reasoning call so traces, slow-search log
// lines and access-log lines for one request share one key.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request ID, "" when none was attached.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// IDSource mints request IDs: a random per-process prefix (so IDs from
// successive restarts do not collide in aggregated logs) plus an atomic
// sequence number. Safe for concurrent use.
type IDSource struct {
	prefix string
	seq    atomic.Uint64
}

// NewIDSource returns an ID source with a fresh random prefix.
func NewIDSource() *IDSource {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock; uniqueness within the process still holds
		// via the sequence number.
		now := time.Now().UnixNano()
		b = [4]byte{byte(now >> 24), byte(now >> 16), byte(now >> 8), byte(now)}
	}
	return &IDSource{prefix: hex.EncodeToString(b[:])}
}

// Next returns the next request ID, e.g. "9f1c2a3b-000042".
func (s *IDSource) Next() string {
	return fmt.Sprintf("%s-%06d", s.prefix, s.seq.Add(1))
}

// ValidRequestID reports whether a forwarded X-Request-ID is safe to
// adopt as a log key: non-empty, bounded, printable ASCII with no
// whitespace or control bytes. Anything else is discarded and a fresh
// ID minted — an inbound header must never be able to forge log lines
// or smuggle delimiters into the structured log.
func ValidRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' {
			return false
		}
	}
	return true
}
