package core

import (
	"olapdim/internal/constraint"
	"olapdim/internal/parser"
)

// ParseConstraint parses a single dimension constraint expression.
func ParseConstraint(src string) (constraint.Expr, error) {
	return parser.ParseConstraint(src)
}

// Parse builds a validated dimension schema from the text syntax of package
// parser (see DESIGN.md for the grammar).
func Parse(src string) (*DimensionSchema, error) {
	g, sigma, err := parser.ParseSchema(src)
	if err != nil {
		return nil, err
	}
	ds := &DimensionSchema{G: g, Sigma: sigma}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// Format renders the dimension schema in the syntax accepted by Parse.
func (ds *DimensionSchema) Format() string {
	return parser.FormatSchema(ds.G, ds.Sigma)
}
