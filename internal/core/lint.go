package core

import (
	"context"
	"fmt"
	"strings"

	"olapdim/internal/constraint"
)

// LintReport collects design-stage findings about a dimension schema.
type LintReport struct {
	// Unsatisfiable lists categories no instance can populate (the paper
	// suggests dropping them, Section 4).
	Unsatisfiable []string
	// Redundant lists indices into Σ of constraints implied by the rest:
	// removing any single one of them leaves the schema's meaning intact.
	Redundant []int
	// Shortcuts lists the schema-level shortcut pairs, worth double
	// checking since instances may never realize both the edge and the
	// path (condition C5).
	Shortcuts [][2]string
	// Cyclic reports whether the hierarchy schema contains cycles (legal,
	// Example 4, but worth surfacing).
	Cyclic bool
}

// Clean reports whether the linter found nothing to flag.
func (r *LintReport) Clean() bool {
	return len(r.Unsatisfiable) == 0 && len(r.Redundant) == 0
}

func (r *LintReport) String() string {
	var b strings.Builder
	for _, c := range r.Unsatisfiable {
		fmt.Fprintf(&b, "unsatisfiable category: %s\n", c)
	}
	for _, i := range r.Redundant {
		fmt.Fprintf(&b, "redundant constraint #%d (implied by the others)\n", i+1)
	}
	for _, sc := range r.Shortcuts {
		fmt.Fprintf(&b, "note: shortcut %s -> %s\n", sc[0], sc[1])
	}
	if r.Cyclic {
		fmt.Fprintf(&b, "note: hierarchy schema contains cycles\n")
	}
	if r.Clean() {
		b.WriteString("no problems found\n")
	}
	return b.String()
}

// Lint analyzes a dimension schema for design problems: dead categories,
// constraints already implied by the rest of Σ (each tested by Theorem 2
// with the constraint removed), schema shortcuts and cycles.
//
// Lint is LintContext with a background context.
func Lint(ds *DimensionSchema, opts Options) (*LintReport, error) {
	return LintContext(context.Background(), ds, opts)
}

// LintContext is Lint under a context. The per-category satisfiability
// sweep and the per-constraint redundancy tests are independent DIMSAT
// queries and run on the Options worker pool.
func LintContext(ctx context.Context, ds *DimensionSchema, opts Options) (_ *LintReport, err error) {
	defer recoverAsInternal(&err)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	rep := &LintReport{
		Shortcuts: ds.G.Shortcuts(),
		Cyclic:    ds.G.HasCycle(),
	}
	rep.Unsatisfiable, err = UnsatisfiableCategoriesContext(ctx, ds, opts)
	if err != nil {
		return nil, err
	}
	redundant := make([]bool, len(ds.Sigma))
	err = runPool(ctx, len(ds.Sigma), opts, func(ctx context.Context, i int) error {
		rest := make([]constraint.Expr, 0, len(ds.Sigma)-1)
		rest = append(rest, ds.Sigma[:i]...)
		rest = append(rest, ds.Sigma[i+1:]...)
		sub := NewDimensionSchema(ds.G, rest...)
		// Each redundancy probe runs against a different sub-schema, so
		// opts.Compiled (pinned to ds) cannot be threaded through as-is:
		// compile the sub-schema instead, falling back to the interpreted
		// engine if it does not compile.
		subOpts := opts
		if opts.Compiled != nil {
			if scs, cerr := Compile(sub); cerr == nil {
				subOpts.Compiled = scs
			} else {
				subOpts.Compiled = nil
			}
		}
		implied, _, err := ImpliesContext(ctx, sub, ds.Sigma[i], subOpts)
		if err != nil {
			return err
		}
		redundant[i] = implied
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, ok := range redundant {
		if ok {
			rep.Redundant = append(rep.Redundant, i)
		}
	}
	return rep, nil
}
