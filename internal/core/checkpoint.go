package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"olapdim/internal/frozen"
	"olapdim/internal/schema"
)

// CheckpointVersion is the wire version of Checkpoint; DecodeCheckpoint
// rejects other versions so a format change can never be misread as a
// search position.
const CheckpointVersion = 1

// ErrBadCheckpoint reports a checkpoint that is structurally unusable:
// wrong version, missing fields, or a decision path that does not replay
// against the schema it claims to belong to. Test with errors.Is.
var ErrBadCheckpoint = errors.New("core: malformed checkpoint")

// ErrCheckpointMismatch reports a well-formed checkpoint presented with
// the wrong schema or the wrong search options: resuming it would explore
// a different tree and could return a wrong verdict, so the resume is
// refused instead. Test with errors.Is.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match schema or options")

// Checkpoint is a resumable DIMSAT search position. The EXPAND recursion
// of Figure 6 is deterministic given the schema, the root, and the two
// pruning switches: at every frame the unexpanded category ctop and its
// candidate parent sets are derived from the schema alone, and the subset
// loop enumerates masks in increasing order. A position is therefore fully
// described by the decision stack — the mask chosen at each frame currently
// on the stack (Path) — plus the next mask to try in the innermost frame
// (Next) and the Stats accumulated so far. Resuming replays Path without
// re-counting work, then continues the enumeration exactly where the
// original run stopped.
//
// Schema pins the dimension schema by fingerprint and IntoPruning /
// StructurePruning pin the heuristics; ResumeSatisfiableContext refuses a
// checkpoint whose pins do not match (ErrCheckpointMismatch), because the
// decision stack is only meaningful against the identical search tree.
type Checkpoint struct {
	// Version is CheckpointVersion at capture time.
	Version int `json:"version"`
	// Schema is the fingerprint of the dimension schema searched.
	Schema string `json:"schema"`
	// Root is the category whose satisfiability was being decided.
	Root string `json:"root"`
	// IntoPruning records !Options.DisableIntoPruning at capture.
	IntoPruning bool `json:"intoPruning"`
	// StructurePruning records !Options.DisableStructurePruning.
	StructurePruning bool `json:"structurePruning"`
	// Path is the decision stack: the subset mask chosen at each EXPAND
	// frame between the root and the current position, outermost first.
	Path []uint64 `json:"path,omitempty"`
	// Next is the first mask to try in the frame below the last Path
	// entry (0 when the frame's enumeration has not started).
	Next uint64 `json:"next"`
	// Stats is the search effort accumulated up to this position; a
	// resumed run continues counting from here, so stats are monotonically
	// non-decreasing across suspend/resume cycles.
	Stats Stats `json:"stats"`
}

// Encode serializes the checkpoint as canonical JSON.
func (cp *Checkpoint) Encode() ([]byte, error) {
	if cp == nil {
		return nil, fmt.Errorf("%w: nil checkpoint", ErrBadCheckpoint)
	}
	return json.Marshal(cp)
}

// DecodeCheckpoint parses and validates an encoded checkpoint. Unknown
// fields, trailing garbage, a wrong version, or missing pins are rejected
// with ErrBadCheckpoint; the caller is expected to have verified storage
// integrity (checksums) already — this guards the semantic layer.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cp Checkpoint
	if err := dec.Decode(&cp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data", ErrBadCheckpoint)
	}
	if err := cp.validate(); err != nil {
		return nil, err
	}
	return &cp, nil
}

// validate checks the structural invariants shared by decode and resume.
func (cp *Checkpoint) validate() error {
	switch {
	case cp == nil:
		return fmt.Errorf("%w: nil checkpoint", ErrBadCheckpoint)
	case cp.Version != CheckpointVersion:
		return fmt.Errorf("%w: version %d, want %d", ErrBadCheckpoint, cp.Version, CheckpointVersion)
	case cp.Schema == "":
		return fmt.Errorf("%w: missing schema fingerprint", ErrBadCheckpoint)
	case cp.Root == "" || cp.Root == schema.All:
		return fmt.Errorf("%w: invalid root %q", ErrBadCheckpoint, cp.Root)
	case cp.Stats.Expansions < 0 || cp.Stats.Checks < 0 || cp.Stats.DeadEnds < 0:
		return fmt.Errorf("%w: negative stats", ErrBadCheckpoint)
	}
	return nil
}

// CheckpointSink receives periodic checkpoints during a search. A sink
// error aborts the run (returning the wrapped error together with the
// unsaved checkpoint in Result.Checkpoint): a job that cannot persist its
// progress must not pretend it is making durable progress.
type CheckpointSink func(*Checkpoint) error

// Checkpointing configures durable progress for a DIMSAT run (install in
// Options.Checkpoint):
//
//   - With Sink set and Every > 0, the search calls Sink every Every
//     EXPAND steps with a snapshot of its position, so a crash loses at
//     most Every expansions of progress.
//   - Whenever the struct is installed (even zero-valued), a run aborted
//     by context cancellation, an expired deadline, the MaxExpansions
//     budget, or an injected fault error captures its final position in
//     Result.Checkpoint alongside the typed error, making the abort
//     resumable instead of terminal.
//
// Injected panics (and real ones) unwind without a final capture — that is
// the crash the periodic Sink exists for.
type Checkpointing struct {
	// Every is the checkpoint period in EXPAND steps; <= 0 disables the
	// periodic sink (abort capture still happens).
	Every int
	// Sink persists one checkpoint; nil disables the periodic sink.
	Sink CheckpointSink
}

// ResumeSatisfiable is ResumeSatisfiableContext with a background context.
func ResumeSatisfiable(ds *DimensionSchema, cp *Checkpoint, opts Options) (Result, error) {
	return ResumeSatisfiableContext(context.Background(), ds, cp, opts)
}

// ResumeSatisfiableContext continues a suspended DIMSAT satisfiability
// search from cp, returning exactly what the uninterrupted run would have
// returned: the search replays the checkpoint's decision stack without
// re-counting work, seeds Stats from the checkpoint, and proceeds. The
// checkpoint must match ds (by fingerprint) and the pruning switches in
// opts, or the resume is refused with ErrCheckpointMismatch; a checkpoint
// whose decision stack does not replay cleanly is refused with
// ErrBadCheckpoint. A resumed run ignores opts.Cache (it answers for a
// position, not a fresh query) and can itself be budgeted, checkpointed,
// and resumed again — MaxExpansions bounds the cumulative Stats across
// all attempts, not each attempt separately.
func ResumeSatisfiableContext(ctx context.Context, ds *DimensionSchema, cp *Checkpoint, opts Options) (_ Result, err error) {
	defer recoverAsInternal(&err)
	if err := cp.validate(); err != nil {
		return Result{}, err
	}
	cs, err := compiledFor(ds, opts)
	if err != nil {
		return Result{}, err
	}
	fp := ""
	if cs != nil {
		fp = cs.Fingerprint()
	} else {
		fp = schemaFingerprint(ds)
	}
	if fp != cp.Schema {
		return Result{}, fmt.Errorf("%w: schema fingerprint %.12s.. vs checkpoint %.12s..", ErrCheckpointMismatch, fp, cp.Schema)
	}
	if cp.IntoPruning == opts.DisableIntoPruning || cp.StructurePruning == opts.DisableStructurePruning {
		return Result{}, fmt.Errorf("%w: pruning switches differ (checkpoint into=%v structure=%v)",
			ErrCheckpointMismatch, cp.IntoPruning, cp.StructurePruning)
	}
	if !ds.G.HasCategory(cp.Root) {
		return Result{}, fmt.Errorf("%w: unknown root %q", ErrCheckpointMismatch, cp.Root)
	}
	ctx, cancel := withOptionsDeadline(ctx, opts)
	defer cancel()
	var stats Stats
	var witness *frozen.Frozen
	var serr error
	var scp *Checkpoint
	if cs != nil {
		s := newCSearch(ctx, cs, cp.Root, opts)
		s.stats = cp.Stats
		s.walkFrom(cp.Path, cp.Next)
		stats, witness, serr, scp = s.stats, s.witness, s.err, s.cp
	} else {
		s := newSearch(ctx, ds, cp.Root, opts)
		s.stats = cp.Stats
		s.walkFrom(frozen.NewSubhierarchy(cp.Root), s.check, cp.Path, cp.Next)
		stats, witness, serr, scp = s.stats, s.witness, s.err, s.cp
	}
	// The sink measures this attempt's own work; the checkpoint's prior
	// stats were fed to a sink by the attempt that produced them.
	if opts.Effort != nil {
		att := stats
		att.Expansions -= cp.Stats.Expansions
		att.Checks -= cp.Stats.Checks
		att.DeadEnds -= cp.Stats.DeadEnds
		opts.Effort.add(att)
	}
	if serr != nil {
		return Result{Stats: stats, Checkpoint: scp}, serr
	}
	return Result{Satisfiable: witness != nil, Witness: witness, Stats: stats}, nil
}
