package core_test

import (
	"errors"
	"testing"

	"olapdim/internal/core"
	"olapdim/internal/gen"
)

// benchSchema is a heterogeneous schema large enough that a budgeted
// search runs hundreds of EXPAND steps without completing.
func benchSchema(tb testing.TB) (*core.DimensionSchema, string) {
	tb.Helper()
	ds, err := gen.Schema(gen.SchemaSpec{
		Seed: 11, Categories: 14, Levels: 4,
		ExtraEdgeProb: 0.5, ChoiceProb: 0.3, IntoFrac: 0.3,
	})
	if err != nil {
		tb.Fatal(err)
	}
	// Pick the root whose budgeted search does the most work. The guard
	// and benchmarks run with the pruning heuristics off so the subset
	// enumeration is long enough to measure the per-step cost; the mask
	// loop exercised is the same code path either way.
	best, most := "", -1
	for _, c := range ds.G.SortedCategories() {
		res, err := core.Satisfiable(ds, c, benchOptions(5000))
		if err != nil && res.Stats.Expansions == 0 {
			continue
		}
		if res.Stats.Expansions > most {
			best, most = c, res.Stats.Expansions
		}
	}
	if best == "" {
		tb.Fatal("no workable root")
	}
	return ds, best
}

func benchOptions(budget int) core.Options {
	return core.Options{
		MaxExpansions:           budget,
		DisableIntoPruning:      true,
		DisableStructurePruning: true,
	}
}

// TestCompiledAllocationCeiling is the allocation-regression guard for
// the compiled engine: the marginal allocation cost of an EXPAND step
// must stay near zero. Comparing whole runs at two budgets cancels the
// fixed setup cost (scratch bitsets, frame pool) and isolates the
// per-step cost, which pooled frames are supposed to eliminate.
func TestCompiledAllocationCeiling(t *testing.T) {
	ds, root := benchSchema(t)
	cs, err := core.Compile(ds)
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = 200, 1000
	run := func(budget int) {
		opts := benchOptions(budget)
		opts.Compiled = cs
		res, err := core.Satisfiable(ds, root, opts)
		if err == nil {
			t.Fatalf("search finished inside budget %d (%d expansions): pick a bigger schema", budget, res.Stats.Expansions)
		}
	}
	allocsLo := testing.AllocsPerRun(10, func() { run(lo) })
	allocsHi := testing.AllocsPerRun(10, func() { run(hi) })
	perStep := (allocsHi - allocsLo) / float64(hi-lo)
	t.Logf("allocs: %d expansions -> %.1f, %d expansions -> %.1f (%.4f per step)",
		lo, allocsLo, hi, allocsHi, perStep)
	// The ceiling leaves room for one-off frame-pool growth at new depths
	// but fails on any per-step allocation creeping back in.
	if perStep > 0.05 {
		t.Fatalf("compiled engine allocates %.4f objects per EXPAND step, want near zero", perStep)
	}
}

func benchmarkSat(b *testing.B, compiled bool) {
	ds, root := benchSchema(b)
	opts := benchOptions(1000)
	if compiled {
		cs, err := core.Compile(ds)
		if err != nil {
			b.Fatal(err)
		}
		opts.Compiled = cs
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Satisfiable(ds, root, opts); err == nil {
			b.Fatal("expected a budget abort")
		}
	}
}

func BenchmarkInterpretedSat(b *testing.B) { benchmarkSat(b, false) }

func BenchmarkCompiledSat(b *testing.B) { benchmarkSat(b, true) }

// BenchmarkCompile measures the one-time compilation cost being amortized.
func BenchmarkCompile(b *testing.B) {
	ds, _ := benchSchema(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImplies compares the full Theorem 2 pipeline per engine,
// including the Derive cache on the compiled side.
func BenchmarkImplies(b *testing.B) {
	ds, _ := benchSchema(b)
	if len(ds.Sigma) == 0 {
		b.Skip("no constraints")
	}
	cs, err := core.Compile(ds)
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range []struct {
		name string
		opts core.Options
	}{
		{"interpreted", core.Options{}},
		{"compiled", core.Options{Compiled: cs}},
	} {
		b.Run(engine.name, func(b *testing.B) {
			opts := engine.opts
			opts.MaxExpansions = 1000
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				alpha := ds.Sigma[i%len(ds.Sigma)]
				if _, _, err := core.Implies(ds, alpha, opts); err != nil && !errors.Is(err, core.ErrBudgetExceeded) {
					b.Fatal(err)
				}
			}
		})
	}
}
