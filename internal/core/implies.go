package core

import (
	"context"
	"fmt"

	"olapdim/internal/constraint"
	"olapdim/internal/instance"
	"olapdim/internal/schema"
)

// Implies decides ds ⊨ alpha by the reduction of Theorem 2: alpha is
// implied iff its root category is unsatisfiable in (G, Σ ∪ {¬alpha}).
// The returned Result carries the counterexample witness (a frozen
// dimension violating alpha) when implication fails, and the search stats
// either way. Constraints with no atoms are propositional constants and
// are decided directly.
//
// Implies is ImpliesContext with a background context.
func Implies(ds *DimensionSchema, alpha constraint.Expr, opts Options) (bool, Result, error) {
	return ImpliesContext(context.Background(), ds, alpha, opts)
}

// ImpliesContext is Implies under a context and the Options budget; the
// underlying DIMSAT run aborts within one EXPAND step of cancellation,
// returning ctx.Err() or ErrBudgetExceeded with the partial Stats in the
// Result.
func ImpliesContext(ctx context.Context, ds *DimensionSchema, alpha constraint.Expr, opts Options) (_ bool, _ Result, err error) {
	defer recoverAsInternal(&err)
	neg, root, verdict, decided, err := ImpliesReduction(ds, alpha)
	if err != nil {
		return false, Result{}, err
	}
	if decided {
		return verdict, Result{}, nil
	}
	if opts.Compiled != nil {
		cs, cerr := compiledFor(ds, opts)
		if cerr != nil {
			return false, Result{}, cerr
		}
		// A cached verdict needs no search, so deriving the compiled neg
		// schema up front would waste a compile on every hit; peek the
		// cache and derive only when a search will actually run. Traced
		// and provenance-enabled runs bypass the cache and fault-armed
		// runs must reach the injected cache-lookup site, so all three
		// take the straight path.
		if opts.Cache != nil && opts.Tracer == nil && opts.Faults == nil && !opts.Provenance {
			if res, ok := opts.Cache.peek(cs.negFingerprint(constraint.Not{X: alpha}), root); ok {
				return !res.Satisfiable, res, nil
			}
		}
		// Derive compiles the identical neg schema (same content, same
		// fingerprint) against the interned graph, with a per-alpha cache.
		// A derive failure falls back to the interpreted engine rather
		// than failing the query.
		if dcs, derr := cs.Derive(constraint.Not{X: alpha}); derr == nil {
			opts.Compiled = dcs
			neg = dcs.Source()
		} else {
			opts.Compiled = nil
		}
	}
	res, err := SatisfiableContext(ctx, neg, root, opts)
	if err != nil {
		return false, res, err
	}
	return !res.Satisfiable, res, nil
}

// ImpliesReduction builds the Theorem 2 reduction for ds ⊨ alpha without
// running the search: alpha is implied iff root is unsatisfiable in neg =
// (G, Σ ∪ {¬alpha}). Constraints with no atoms are propositional constants
// and come back decided (decided true, verdict the truth value) with no
// search to run. The reduction is deterministic, so callers that suspend
// the satisfiability run on neg (checkpointed jobs) can rebuild the same
// neg schema — same fingerprint — and resume against it.
func ImpliesReduction(ds *DimensionSchema, alpha constraint.Expr) (neg *DimensionSchema, root string, verdict, decided bool, err error) {
	if err := constraint.Validate(alpha, ds.G); err != nil {
		return nil, "", false, false, err
	}
	root, err = constraint.Root(alpha)
	if err != nil {
		return nil, "", false, false, err
	}
	if root == "" {
		return nil, "", constraint.Eval(alpha, nil), true, nil
	}
	neg = &DimensionSchema{
		G:     ds.G,
		Sigma: append(append([]constraint.Expr(nil), ds.Sigma...), constraint.Not{X: alpha}),
	}
	return neg, root, false, false, nil
}

// SummarizabilityReport details a schema-level summarizability test: one
// entry per bottom category with the Theorem 1 constraint tested and the
// outcome.
type SummarizabilityReport struct {
	Target string
	From   []string
	// PerBottom lists, for each bottom category, the Theorem 1 constraint
	// and whether the schema implies it.
	PerBottom []BottomResult
}

// BottomResult is the outcome of the Theorem 1 test for one bottom
// category.
type BottomResult struct {
	Bottom     string
	Constraint constraint.Expr
	Implied    bool
	// Counterexample is a frozen dimension violating the constraint when
	// Implied is false.
	Counterexample Result
}

// Summarizable reports whether the schema implies the Theorem 1
// characterization for every bottom category: the cube view for c can then
// be computed from the cube views for S in every instance over ds.
func (r *SummarizabilityReport) Summarizable() bool {
	for _, b := range r.PerBottom {
		if !b.Implied {
			return false
		}
	}
	return true
}

// Summarizable tests whether category c is summarizable from the set S in
// every dimension instance over ds, by testing for each bottom category cb
// the implication ds ⊨ cb.c ⊃ ⊙_{ci ∈ S} cb.ci.c (Theorem 1).
//
// Summarizable is SummarizableContext with a background context.
func Summarizable(ds *DimensionSchema, c string, S []string, opts Options) (*SummarizabilityReport, error) {
	return SummarizableContext(context.Background(), ds, c, S, opts)
}

// SummarizableContext is Summarizable under a context and the Options
// budget (applied per bottom-category implication).
func SummarizableContext(ctx context.Context, ds *DimensionSchema, c string, S []string, opts Options) (_ *SummarizabilityReport, err error) {
	defer recoverAsInternal(&err)
	if !ds.G.HasCategory(c) {
		return nil, fmt.Errorf("core: unknown category %q", c)
	}
	for _, ci := range S {
		if !ds.G.HasCategory(ci) {
			return nil, fmt.Errorf("core: unknown category %q in source set", ci)
		}
	}
	rep := &SummarizabilityReport{Target: c, From: append([]string(nil), S...)}
	for _, cb := range ds.G.Bottoms() {
		e := SummarizabilityConstraint(cb, c, S)
		implied, res, err := ImpliesContext(ctx, ds, e, opts)
		if err != nil {
			return nil, err
		}
		rep.PerBottom = append(rep.PerBottom, BottomResult{
			Bottom:         cb,
			Constraint:     e,
			Implied:        implied,
			Counterexample: res,
		})
	}
	return rep, nil
}

// SummarizableInInstance tests Theorem 1 on a single dimension instance:
// category c is summarizable from S in d iff for every bottom category cb,
// d ⊨ cb.c ⊃ ⊙_{ci ∈ S} cb.ci.c. Package olap cross-validates this
// characterization against Definition 6 with actual fact tables.
func SummarizableInInstance(d *instance.Instance, c string, S []string) bool {
	for _, cb := range d.Schema().Bottoms() {
		if cb == schema.All {
			continue
		}
		if !d.Satisfies(SummarizabilityConstraint(cb, c, S)) {
			return false
		}
	}
	return true
}

// CategorySatisfiable is a convenience wrapper returning only the Boolean
// outcome of Satisfiable.
func CategorySatisfiable(ds *DimensionSchema, c string) (bool, error) {
	res, err := Satisfiable(ds, c, Options{})
	if err != nil {
		return false, err
	}
	return res.Satisfiable, nil
}

// UnsatisfiableCategories returns the categories of ds that admit no
// members in any instance. The paper suggests dropping these from the
// schema for a cleaner representation (Section 4).
//
// UnsatisfiableCategories is UnsatisfiableCategoriesContext with a
// background context and default options.
func UnsatisfiableCategories(ds *DimensionSchema) ([]string, error) {
	return UnsatisfiableCategoriesContext(context.Background(), ds, Options{})
}

// UnsatisfiableCategoriesContext decides satisfiability for every category
// of ds on a worker pool (sized by opts.Parallelism) and returns the
// unsatisfiable ones, sorted.
func UnsatisfiableCategoriesContext(ctx context.Context, ds *DimensionSchema, opts Options) (_ []string, err error) {
	defer recoverAsInternal(&err)
	cats := ds.G.SortedCategories()
	sat, err := satisfiabilityOf(ctx, ds, cats, opts)
	if err != nil {
		return nil, err
	}
	var out []string
	for i, c := range cats {
		if !sat[i] {
			out = append(out, c)
		}
	}
	return out, nil
}

// CategorySatisfiabilityContext decides satisfiability for every category
// of ds in parallel, returning a map from category to outcome. The
// dimsatd /categories endpoint and design tooling use it to survey a
// whole schema in one bounded fan-out.
func CategorySatisfiabilityContext(ctx context.Context, ds *DimensionSchema, opts Options) (_ map[string]bool, err error) {
	defer recoverAsInternal(&err)
	cats := ds.G.SortedCategories()
	sat, err := satisfiabilityOf(ctx, ds, cats, opts)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(cats))
	for i, c := range cats {
		out[c] = sat[i]
	}
	return out, nil
}

// satisfiabilityOf fans independent per-category DIMSAT calls out over the
// Options worker pool.
func satisfiabilityOf(ctx context.Context, ds *DimensionSchema, cats []string, opts Options) ([]bool, error) {
	sat := make([]bool, len(cats))
	err := runPool(ctx, len(cats), opts, func(ctx context.Context, i int) error {
		res, err := SatisfiableContext(ctx, ds, cats[i], opts)
		if err != nil {
			return err
		}
		sat[i] = res.Satisfiable
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sat, nil
}
