package core

import (
	"fmt"

	"olapdim/internal/constraint"
	"olapdim/internal/instance"
	"olapdim/internal/schema"
)

// Implies decides ds ⊨ alpha by the reduction of Theorem 2: alpha is
// implied iff its root category is unsatisfiable in (G, Σ ∪ {¬alpha}).
// The returned Result carries the counterexample witness (a frozen
// dimension violating alpha) when implication fails, and the search stats
// either way. Constraints with no atoms are propositional constants and
// are decided directly.
func Implies(ds *DimensionSchema, alpha constraint.Expr, opts Options) (bool, Result, error) {
	if err := constraint.Validate(alpha, ds.G); err != nil {
		return false, Result{}, err
	}
	root, err := constraint.Root(alpha)
	if err != nil {
		return false, Result{}, err
	}
	if root == "" {
		v := constraint.Eval(alpha, nil)
		return v, Result{}, nil
	}
	neg := &DimensionSchema{
		G:     ds.G,
		Sigma: append(append([]constraint.Expr(nil), ds.Sigma...), constraint.Not{X: alpha}),
	}
	res, err := Satisfiable(neg, root, opts)
	if err != nil {
		return false, Result{}, err
	}
	return !res.Satisfiable, res, nil
}

// SummarizabilityReport details a schema-level summarizability test: one
// entry per bottom category with the Theorem 1 constraint tested and the
// outcome.
type SummarizabilityReport struct {
	Target string
	From   []string
	// PerBottom lists, for each bottom category, the Theorem 1 constraint
	// and whether the schema implies it.
	PerBottom []BottomResult
}

// BottomResult is the outcome of the Theorem 1 test for one bottom
// category.
type BottomResult struct {
	Bottom     string
	Constraint constraint.Expr
	Implied    bool
	// Counterexample is a frozen dimension violating the constraint when
	// Implied is false.
	Counterexample Result
}

// Summarizable reports whether the schema implies the Theorem 1
// characterization for every bottom category: the cube view for c can then
// be computed from the cube views for S in every instance over ds.
func (r *SummarizabilityReport) Summarizable() bool {
	for _, b := range r.PerBottom {
		if !b.Implied {
			return false
		}
	}
	return true
}

// Summarizable tests whether category c is summarizable from the set S in
// every dimension instance over ds, by testing for each bottom category cb
// the implication ds ⊨ cb.c ⊃ ⊙_{ci ∈ S} cb.ci.c (Theorem 1).
func Summarizable(ds *DimensionSchema, c string, S []string, opts Options) (*SummarizabilityReport, error) {
	if !ds.G.HasCategory(c) {
		return nil, fmt.Errorf("core: unknown category %q", c)
	}
	for _, ci := range S {
		if !ds.G.HasCategory(ci) {
			return nil, fmt.Errorf("core: unknown category %q in source set", ci)
		}
	}
	rep := &SummarizabilityReport{Target: c, From: append([]string(nil), S...)}
	for _, cb := range ds.G.Bottoms() {
		e := SummarizabilityConstraint(cb, c, S)
		implied, res, err := Implies(ds, e, opts)
		if err != nil {
			return nil, err
		}
		rep.PerBottom = append(rep.PerBottom, BottomResult{
			Bottom:         cb,
			Constraint:     e,
			Implied:        implied,
			Counterexample: res,
		})
	}
	return rep, nil
}

// SummarizableInInstance tests Theorem 1 on a single dimension instance:
// category c is summarizable from S in d iff for every bottom category cb,
// d ⊨ cb.c ⊃ ⊙_{ci ∈ S} cb.ci.c. Package olap cross-validates this
// characterization against Definition 6 with actual fact tables.
func SummarizableInInstance(d *instance.Instance, c string, S []string) bool {
	for _, cb := range d.Schema().Bottoms() {
		if cb == schema.All {
			continue
		}
		if !d.Satisfies(SummarizabilityConstraint(cb, c, S)) {
			return false
		}
	}
	return true
}

// CategorySatisfiable is a convenience wrapper returning only the Boolean
// outcome of Satisfiable.
func CategorySatisfiable(ds *DimensionSchema, c string) (bool, error) {
	res, err := Satisfiable(ds, c, Options{})
	if err != nil {
		return false, err
	}
	return res.Satisfiable, nil
}

// UnsatisfiableCategories returns the categories of ds that admit no
// members in any instance. The paper suggests dropping these from the
// schema for a cleaner representation (Section 4).
func UnsatisfiableCategories(ds *DimensionSchema) ([]string, error) {
	var out []string
	for _, c := range ds.G.SortedCategories() {
		res, err := Satisfiable(ds, c, Options{})
		if err != nil {
			return nil, err
		}
		if !res.Satisfiable {
			out = append(out, c)
		}
	}
	return out, nil
}
