package core

import (
	"context"
	"fmt"
	"math/bits"

	"olapdim/internal/constraint"
	"olapdim/internal/faults"
	"olapdim/internal/frozen"
	"olapdim/internal/schema"
)

// csearch is the compiled-engine counterpart of search: one DIMSAT run
// over the bitset representation built by Compile. It mirrors walkFrom
// and check step for step — same category selection order, same pruning
// decisions, same stats, trace events and checkpoints — but replaces the
// per-step map and slice construction of the interpreted engine with
// bitwise operations over per-depth scratch frames that are reused
// across the whole run.
type csearch struct {
	ctx  context.Context
	cs   *Compiled
	root int32
	opts Options

	// sigmaIdx indexes cs.sigma with Σ(ds, root) (what the interpreted
	// search computes with constraint.SigmaFor on every call).
	sigmaIdx []int32
	decider  constraint.Decider

	stats      Stats
	witness    *frozen.Frozen
	structured StructuredTracer
	err        error
	path       []uint64
	cp         *Checkpoint
	fp         string
	// prov collects the touched set; nil unless Options.Provenance.
	// Marked with interned ids resolved to names, so finalized sets are
	// identical to the interpreted engine's.
	prov *provCollector

	// Mutable subhierarchy state: category set, flat out/in adjacency
	// rows, and out-degrees (a category with outdeg 0 is a top).
	words  int
	cats   []uint64
	outW   []uint64
	inW    []uint64
	outdeg []int32

	// shadow mirrors the subhierarchy as a *frozen.Subhierarchy, updated
	// in lockstep with the bitsets, so Tracer callbacks observe the same
	// live graph the interpreted engine hands them. Maintained only when
	// a Tracer is installed; nil on the production path.
	shadow *frozen.Subhierarchy

	// frames holds per-depth scratch reused across sibling expansions.
	frames []*cframe

	// Scratch for traversals and CHECK: DFS stack, Kahn queue and
	// in-degrees for the acyclicity test, an epoch-stamped forward-closure
	// memo (valid within one CHECK), and the residual-constraint buffer.
	stack        []int32
	queue        []int32
	indeg        []int32
	closure      []uint64
	closureEpoch []uint64
	epoch        uint64
	residual     []constraint.Expr
}

// cframe is the scratch of one EXPAND frame: the backward-reachability
// set of ctop, the surviving candidate parents with their frame-entry
// forward-reachability rows, the free (not into-forced) candidates, and
// the subset buffers of the mask loop.
type cframe struct {
	reaching   []uint64
	candidates []int32
	hasRow     []bool
	rows       []uint64
	free       []int32
	R          []int32
	rbits      []uint64
	newCat     []bool
}

func newCSearch(ctx context.Context, cs *Compiled, root string, opts Options) *csearch {
	n := len(cs.names)
	rid := cs.ids[root]
	s := &csearch{
		ctx:          ctx,
		cs:           cs,
		root:         rid,
		opts:         opts,
		sigmaIdx:     cs.sigmaFor[rid],
		words:        cs.words,
		cats:         make([]uint64, cs.words),
		outW:         make([]uint64, n*cs.words),
		inW:          make([]uint64, n*cs.words),
		outdeg:       make([]int32, n),
		indeg:        make([]int32, n),
		closure:      make([]uint64, n*cs.words),
		closureEpoch: make([]uint64, n),
	}
	bitSet(s.cats, rid)
	if opts.Checkpoint != nil {
		s.fp = cs.Fingerprint()
	}
	if opts.Provenance {
		s.prov = newProvCollector(root)
	}
	if opts.Tracer != nil {
		s.shadow = frozen.NewSubhierarchy(root)
	}
	s.structured, _ = opts.Tracer.(StructuredTracer)
	s.decider = func(a constraint.Atom) (bool, bool) {
		switch a := a.(type) {
		case constraint.PathAtom:
			return s.isPath(a.Cats), true
		case constraint.RollupAtom:
			return s.reachesNames(a.RootCat, a.Cat), true
		case constraint.ThroughAtom:
			return s.reachesNames(a.RootCat, a.Via) && s.reachesNames(a.Via, a.Cat), true
		case constraint.EqAtom:
			if !s.reachesNames(a.RootCat, a.Cat) {
				return false, true
			}
			return false, false
		case constraint.CmpAtom:
			if !s.reachesNames(a.RootCat, a.Cat) {
				return false, true
			}
			return false, false
		}
		return false, false
	}
	return s
}

// runSatisfiableCompiled is runSatisfiable on the compiled engine.
func runSatisfiableCompiled(ctx context.Context, cs *Compiled, c string, opts Options) (Result, error) {
	s := newCSearch(ctx, cs, c, opts)
	s.walkFrom(nil, 0)
	opts.Effort.add(s.stats)
	var prov *Provenance
	if s.prov != nil {
		prov = s.prov.finalize()
	}
	if s.err != nil {
		return Result{Stats: s.stats, Checkpoint: s.cp, Provenance: prov}, s.err
	}
	return Result{Satisfiable: s.witness != nil, Witness: s.witness, Stats: s.stats, Provenance: prov}, nil
}

func (s *csearch) outRow(c int32) []uint64 { return s.outW[int(c)*s.words : (int(c)+1)*s.words] }
func (s *csearch) inRow(c int32) []uint64  { return s.inW[int(c)*s.words : (int(c)+1)*s.words] }

// frame returns the reusable scratch frame for the given depth.
func (s *csearch) frame(depth int) *cframe {
	for len(s.frames) <= depth {
		s.frames = append(s.frames, &cframe{
			reaching: make([]uint64, s.words),
			rbits:    make([]uint64, s.words),
		})
	}
	return s.frames[depth]
}

// addEdge adds the edge c -> p to the subhierarchy. c is always the
// current ctop (already a member); p may be new.
func (s *csearch) addEdge(c, p int32) {
	bitSet(s.cats, p)
	bitSet(s.outRow(c), p)
	bitSet(s.inRow(p), c)
	s.outdeg[c]++
	if s.shadow != nil {
		s.shadow.AddEdge(s.cs.names[c], s.cs.names[p])
	}
}

func (s *csearch) removeEdge(c, p int32, dropCategory bool) {
	bitClear(s.outRow(c), p)
	bitClear(s.inRow(p), c)
	s.outdeg[c]--
	if dropCategory {
		bitClear(s.cats, p)
	}
	if s.shadow != nil {
		s.shadow.RemoveEdge(s.cs.names[c], s.cs.names[p], dropCategory)
	}
}

// deadEnd mirrors search.deadEnd.
func (s *csearch) deadEnd(ctop, heuristic string) {
	s.stats.DeadEnds++
	if s.prov != nil {
		s.prov.markFrontier(ctop)
	}
	if s.structured != nil {
		s.structured.PruneStep(len(s.path), ctop, heuristic)
	}
}

// snapshot mirrors search.snapshot; compiled checkpoints are
// interchangeable with interpreted ones because the decision stack is
// the same mask sequence and the fingerprint pins the same schema.
func (s *csearch) snapshot(next uint64) *Checkpoint {
	return &Checkpoint{
		Version:          CheckpointVersion,
		Schema:           s.fp,
		Root:             s.cs.names[s.root],
		IntoPruning:      !s.opts.DisableIntoPruning,
		StructurePruning: !s.opts.DisableStructurePruning,
		Path:             append([]uint64(nil), s.path...),
		Next:             next,
		Stats:            s.stats,
	}
}

func (s *csearch) abort(err error, next uint64) {
	s.err = err
	if s.opts.Checkpoint != nil {
		s.cp = s.snapshot(next)
	}
}

func (s *csearch) maybeCheckpoint() bool {
	ck := s.opts.Checkpoint
	if ck == nil || ck.Sink == nil || ck.Every <= 0 || s.stats.Expansions%ck.Every != 0 {
		return true
	}
	cp := s.snapshot(0)
	if err := ck.Sink(cp); err != nil {
		s.err = fmt.Errorf("core: checkpoint sink: %w", err)
		s.cp = cp
		return false
	}
	return true
}

func (s *csearch) overBudget(next uint64) bool {
	if s.err != nil {
		return true
	}
	if err := s.opts.Faults.Hit(faults.SiteExpand); err != nil {
		s.abort(err, next)
		return true
	}
	if err := s.ctx.Err(); err != nil {
		s.abort(err, next)
		return true
	}
	if s.opts.MaxExpansions > 0 && s.stats.Expansions >= s.opts.MaxExpansions {
		s.abort(fmt.Errorf("%w after %d expansions", ErrBudgetExceeded, s.stats.Expansions), next)
		return true
	}
	return false
}

func (s *csearch) failResume(format string, args ...any) bool {
	s.err = fmt.Errorf("%w: %s", ErrBadCheckpoint, fmt.Sprintf(format, args...))
	return false
}

// walkFrom mirrors search.walkFrom over the bitset state. The
// subhierarchy lives in s (cats/outW/inW/outdeg) instead of being
// passed, and completion always dispatches to s.check.
func (s *csearch) walkFrom(replay []uint64, next uint64) bool {
	replaying := len(replay) > 0
	start := next
	if replaying {
		start = replay[0]
	}
	if s.overBudget(start) {
		return false
	}
	// The lexicographically first unexpanded category is the first id in
	// ascending order: ids were interned in sorted-name order.
	ctop := int32(-1)
	n := int32(len(s.cs.names))
	for id := int32(0); id < n; id++ {
		if id != s.cs.allID && bitTest(s.cats, id) && s.outdeg[id] == 0 {
			ctop = id
			break
		}
	}
	if ctop < 0 {
		if bitTest(s.cats, s.cs.allID) && s.outdeg[s.cs.allID] == 0 {
			if replaying {
				return s.failResume("path descends past a complete subhierarchy")
			}
			return s.check()
		}
		if replaying {
			return s.failResume("path descends into a cyclic dead end")
		}
		s.deadEnd(schema.All, "cycle-frontier")
		return true
	}

	outG := s.cs.out[ctop]
	f := s.frame(len(s.path))
	f.candidates = f.candidates[:0]
	pruning := !s.opts.DisableStructurePruning
	if !pruning {
		f.candidates = append(f.candidates, outG...)
	} else {
		s.reachingInto(ctop, f.reaching)
		for _, c := range outG {
			if bitTest(f.reaching, c) {
				continue // cycle: c already reaches ctop
			}
			if bitAnyAnd(s.inRow(c), f.reaching) {
				continue // shortcut: some b ↗'* ctop has the edge b -> c
			}
			f.candidates = append(f.candidates, c)
		}
		// Frame-entry forward-reachability rows for candidates already in
		// the subhierarchy (the interpreted engine's reachableOf maps).
		if cap(f.hasRow) < len(f.candidates) {
			f.hasRow = make([]bool, len(f.candidates))
			f.rows = make([]uint64, len(f.candidates)*s.words)
		}
		f.hasRow = f.hasRow[:len(f.candidates)]
		f.rows = f.rows[:len(f.candidates)*s.words]
		for i, c := range f.candidates {
			f.hasRow[i] = bitTest(s.cats, c)
			if f.hasRow[i] {
				s.reachableInto(c, f.rows[i*s.words:(i+1)*s.words])
			}
		}
	}

	into := s.cs.into[ctop]
	if s.opts.DisableIntoPruning {
		into = nil
	}
	if len(f.candidates) == 0 || !containsAllIDs(f.candidates, into) {
		if replaying {
			return s.failResume("path descends into a dead end at %s", s.cs.names[ctop])
		}
		s.deadEnd(s.cs.names[ctop], "into")
		return true
	}

	f.free = f.free[:0]
	for _, c := range f.candidates {
		if !containsID(into, c) {
			f.free = append(f.free, c)
		}
	}

	nf := len(f.free)
	limit := uint64(1) << uint(nf)
	if start >= limit && start > 0 {
		return s.failResume("mask %d out of range at %s (%d free candidates)", start, s.cs.names[ctop], nf)
	}
	for mask := start; mask < limit; mask++ {
		silent := replaying && mask == start
		f.R = append(f.R[:0], into...)
		for i := 0; i < nf; i++ {
			if mask&(1<<uint(i)) != 0 {
				f.R = append(f.R, f.free[i])
			}
		}
		if len(f.R) == 0 {
			if silent {
				return s.failResume("path records an empty expansion at %s", s.cs.names[ctop])
			}
			continue
		}
		if pruning && s.conflictingPair(f) {
			if silent {
				return s.failResume("path records a pruned expansion at %s", s.cs.names[ctop])
			}
			s.deadEnd(s.cs.names[ctop], "sibling-shortcut")
			continue
		}
		if !silent && s.overBudget(mask) {
			return false
		}
		f.newCat = f.newCat[:0]
		for _, p := range f.R {
			f.newCat = append(f.newCat, !bitTest(s.cats, p))
			s.addEdge(ctop, p)
			if s.prov != nil {
				s.prov.markEdge(s.cs.names[ctop], s.cs.names[p])
			}
		}
		s.path = append(s.path, mask)
		if silent {
			if !s.walkFrom(replay[1:], next) {
				return false
			}
		} else {
			s.stats.Expansions++
			if s.opts.Tracer != nil {
				R := make([]string, len(f.R))
				for i, p := range f.R {
					R[i] = s.cs.names[p]
				}
				s.opts.Tracer.Expand(s.shadow, s.cs.names[ctop], R)
				if s.structured != nil {
					s.structured.ExpandStep(len(s.path), s.cs.names[ctop], R)
				}
			}
			if !s.maybeCheckpoint() {
				return false
			}
			if !s.walkFrom(nil, 0) {
				return false
			}
		}
		s.path = s.path[:len(s.path)-1]
		for i := len(f.R) - 1; i >= 0; i-- {
			s.removeEdge(ctop, f.R[i], f.newCat[i])
		}
	}
	return true
}

// conflictingPair mirrors the interpreted conflictingPair: R contains
// distinct r1, r2 with r1 ↗'* r2 at frame entry.
func (s *csearch) conflictingPair(f *cframe) bool {
	bitZero(f.rbits)
	for _, c := range f.R {
		bitSet(f.rbits, c)
	}
	for i, c := range f.candidates {
		if !f.hasRow[i] || !bitTest(f.rbits, c) {
			continue
		}
		row := f.rows[i*s.words : (i+1)*s.words]
		for w, rw := range f.rbits {
			x := row[w] & rw
			if int32(w) == c>>6 {
				x &^= 1 << uint(c&63)
			}
			if x != 0 {
				return true
			}
		}
	}
	return false
}

// reachingInto fills dst with {b : b ↗'* target} (ReachingSet).
func (s *csearch) reachingInto(target int32, dst []uint64) {
	bitZero(dst)
	bitSet(dst, target)
	s.stack = append(s.stack[:0], target)
	for len(s.stack) > 0 {
		cur := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		row := s.inRow(cur)
		for w, word := range row {
			base := int32(w) << 6
			for word != 0 {
				b := base + int32(bits.TrailingZeros64(word))
				word &= word - 1
				if !bitTest(dst, b) {
					bitSet(dst, b)
					s.stack = append(s.stack, b)
				}
			}
		}
	}
}

// reachableInto fills dst with {p : c ↗'* p} (ReachableSet); c must be a
// member of the subhierarchy.
func (s *csearch) reachableInto(c int32, dst []uint64) {
	bitZero(dst)
	bitSet(dst, c)
	s.stack = append(s.stack[:0], c)
	for len(s.stack) > 0 {
		cur := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		row := s.outRow(cur)
		for w, word := range row {
			base := int32(w) << 6
			for word != 0 {
				p := base + int32(bits.TrailingZeros64(word))
				word &= word - 1
				if !bitTest(dst, p) {
					bitSet(dst, p)
					s.stack = append(s.stack, p)
				}
			}
		}
	}
}

// check mirrors search.check via the compiled CHECK below.
func (s *csearch) check() bool {
	s.stats.Checks++
	if s.prov != nil {
		// Same touch rule as the interpreted engine: every relevant
		// constraint that is not vacuously true (root outside g).
		for _, idx := range s.sigmaIdx {
			cc := &s.cs.sigma[idx]
			if cc.root < 0 || bitTest(s.cats, cc.root) {
				s.prov.markSigma(int(idx))
			}
		}
	}
	f, ok := s.induces()
	if s.opts.Tracer != nil {
		s.opts.Tracer.Check(s.shadow, ok)
	}
	if s.structured != nil {
		s.structured.CheckStep(len(s.path), ok)
	}
	if !ok {
		return true
	}
	s.witness = f
	return false
}

// induces mirrors frozen.Induces over the bitsets. Constraints without
// equality or order atoms are fully decided by the circle operator on a
// complete subhierarchy, so they are evaluated directly (s implements
// constraint.Valuation against the live bitsets); the rest go through
// constraint.Reduce with the circle decider and their residuals feed the
// unchanged c-assignment solver.
func (s *csearch) induces() (*frozen.Frozen, bool) {
	s.epoch++
	if !s.acyclic() || !s.shortcutFree() {
		return nil, false
	}
	s.residual = s.residual[:0]
	for _, idx := range s.sigmaIdx {
		cc := &s.cs.sigma[idx]
		if cc.root >= 0 && !bitTest(s.cats, cc.root) {
			continue // vacuously true: root not in g (Definition 4)
		}
		if cc.structural {
			if !constraint.Eval(cc.expr, s) {
				return nil, false
			}
			continue
		}
		r := constraint.Reduce(cc.expr, s.decider)
		if _, isFalse := r.(constraint.False); isFalse {
			return nil, false
		}
		if _, isTrue := r.(constraint.True); isTrue {
			continue
		}
		s.residual = append(s.residual, r)
	}
	a, ok := frozen.FindAssignment(s.residual, s.cs.consts)
	if !ok {
		return nil, false
	}
	return &frozen.Frozen{G: s.materialize(), Assign: a}, true
}

// acyclic runs Kahn's algorithm over the subhierarchy: it is acyclic iff
// every member category can be peeled at in-degree zero. Boolean-
// equivalent to Subhierarchy.Acyclic's 3-color DFS.
func (s *csearch) acyclic() bool {
	total, done := 0, 0
	s.queue = s.queue[:0]
	for w, word := range s.cats {
		base := int32(w) << 6
		for word != 0 {
			id := base + int32(bits.TrailingZeros64(word))
			word &= word - 1
			total++
			d := int32(bitCount(s.inRow(id)))
			s.indeg[id] = d
			if d == 0 {
				s.queue = append(s.queue, id)
			}
		}
	}
	for len(s.queue) > 0 {
		cur := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		done++
		row := s.outRow(cur)
		for w, word := range row {
			base := int32(w) << 6
			for word != 0 {
				p := base + int32(bits.TrailingZeros64(word))
				word &= word - 1
				s.indeg[p]--
				if s.indeg[p] == 0 {
					s.queue = append(s.queue, p)
				}
			}
		}
	}
	return done == total
}

// shortcutFree mirrors Subhierarchy.ShortcutFree: no sibling pair
// (mid, p) of the same child with mid ↗'* p.
func (s *csearch) shortcutFree() bool {
	for w, word := range s.cats {
		base := int32(w) << 6
		for word != 0 {
			c := base + int32(bits.TrailingZeros64(word))
			word &= word - 1
			if s.outdeg[c] < 2 {
				continue
			}
			row := s.outRow(c)
			for mw, mword := range row {
				mbase := int32(mw) << 6
				for mword != 0 {
					mid := mbase + int32(bits.TrailingZeros64(mword))
					mword &= mword - 1
					cl := s.closureRow(mid)
					for i := 0; i < s.words; i++ {
						x := cl[i] & row[i]
						if int32(i) == mid>>6 {
							x &^= 1 << uint(mid&63)
						}
						if x != 0 {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// closureRow returns {p : c ↗'* p} in the current subhierarchy, memoized
// for the duration of one CHECK (the epoch is bumped per CHECK; the
// graph does not change within one).
func (s *csearch) closureRow(c int32) []uint64 {
	row := s.closure[int(c)*s.words : (int(c)+1)*s.words]
	if s.closureEpoch[c] == s.epoch {
		return row
	}
	bitZero(row)
	bitSet(row, c)
	s.stack = append(s.stack[:0], c)
	for len(s.stack) > 0 {
		cur := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		or := s.outRow(cur)
		for w, word := range or {
			base := int32(w) << 6
			for word != 0 {
				p := base + int32(bits.TrailingZeros64(word))
				word &= word - 1
				if !bitTest(row, p) {
					bitSet(row, p)
					s.stack = append(s.stack, p)
				}
			}
		}
	}
	s.closureEpoch[c] = s.epoch
	return row
}

// reaches mirrors Subhierarchy.Reaches (both members, reflexive).
func (s *csearch) reaches(a, b int32) bool {
	if !bitTest(s.cats, a) || !bitTest(s.cats, b) {
		return false
	}
	return bitTest(s.closureRow(a), b)
}

func (s *csearch) reachesNames(a, b string) bool {
	ai, ok := s.cs.ids[a]
	if !ok {
		return false
	}
	bi, ok := s.cs.ids[b]
	if !ok {
		return false
	}
	return s.reaches(ai, bi)
}

// isPath mirrors Subhierarchy.IsPath.
func (s *csearch) isPath(cats []string) bool {
	if len(cats) == 0 {
		return false
	}
	c, ok := s.cs.ids[cats[0]]
	if !ok || !bitTest(s.cats, c) {
		return false
	}
	for i := 1; i < len(cats); i++ {
		p, ok := s.cs.ids[cats[i]]
		if !ok || !bitTest(s.outRow(c), p) {
			return false
		}
		c = p
	}
	return true
}

// Valuation methods: direct structural evaluation for constraints the
// circle operator fully decides. Eq and Cmp are unreachable — only
// structural constraints are routed through Eval.
func (s *csearch) Path(a constraint.PathAtom) bool { return s.isPath(a.Cats) }
func (s *csearch) Eq(a constraint.EqAtom) bool     { return false }
func (s *csearch) Cmp(a constraint.CmpAtom) bool   { return false }
func (s *csearch) Rollup(a constraint.RollupAtom) bool {
	return s.reachesNames(a.RootCat, a.Cat)
}
func (s *csearch) Through(a constraint.ThroughAtom) bool {
	return s.reachesNames(a.RootCat, a.Via) && s.reachesNames(a.Via, a.Cat)
}

// materialize builds an owned *frozen.Subhierarchy from the bitsets for
// the witness (the interpreted engine clones its live graph instead).
func (s *csearch) materialize() *frozen.Subhierarchy {
	g := frozen.NewSubhierarchy(s.cs.names[s.root])
	bitForEach(s.cats, func(c int32) {
		bitForEach(s.outRow(c), func(p int32) {
			g.AddEdge(s.cs.names[c], s.cs.names[p])
		})
	})
	return g
}

func containsID(xs []int32, x int32) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func containsAllIDs(xs, ys []int32) bool {
	for _, y := range ys {
		if !containsID(xs, y) {
			return false
		}
	}
	return true
}
