package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"olapdim/internal/schema"
)

// Matrix records, for every ordered pair of categories (target, source),
// whether the target's cube view is computable from the source's alone in
// every instance of the schema — the design-stage overview Section 6 of
// the paper motivates.
type Matrix struct {
	// Categories lists the non-All categories, sorted.
	Categories []string
	// From[target][source] reports single-source summarizability.
	From map[string]map[string]bool
	// Unknown[target][source] marks cells a partial computation could not
	// decide within its budget or deadline (see
	// SummarizabilityMatrixPartialContext); nil or empty for complete
	// matrices. An unknown cell's From value is meaningless.
	Unknown map[string]map[string]bool
}

// Complete reports whether every cell was decided.
func (m *Matrix) Complete() bool {
	for _, row := range m.Unknown {
		if len(row) > 0 {
			return false
		}
	}
	return true
}

// SummarizabilityMatrix computes single-source summarizability between
// every pair of categories of ds. Each cell is one Theorem 1 implication
// per bottom category, decided by DIMSAT; the N² independent cells are
// computed on a worker pool sized by opts.Parallelism (default
// GOMAXPROCS; a Tracer in opts forces sequential execution, since tracers
// are not required to be safe for concurrent use).
//
// SummarizabilityMatrix is SummarizabilityMatrixContext with a background
// context.
func SummarizabilityMatrix(ds *DimensionSchema, opts Options) (*Matrix, error) {
	return SummarizabilityMatrixContext(context.Background(), ds, opts)
}

// SummarizabilityMatrixContext is SummarizabilityMatrix under a context:
// cancellation or a per-cell budget error stops the fan-out and returns
// the first error. Sharing opts.Cache across calls lets repeated cells be
// answered without re-running DIMSAT.
func SummarizabilityMatrixContext(ctx context.Context, ds *DimensionSchema, opts Options) (_ *Matrix, err error) {
	defer recoverAsInternal(&err)
	m := newMatrixShell(ds)
	n := len(m.Categories)
	results := make([]bool, n*n)
	err = runPool(ctx, n*n, opts, func(ctx context.Context, idx int) error {
		rep, err := SummarizableContext(ctx, ds, m.Categories[idx/n], []string{m.Categories[idx%n]}, opts)
		if err != nil {
			return err
		}
		results[idx] = rep.Summarizable()
		return nil
	})
	if err != nil {
		return nil, err
	}
	m.fill(results, nil)
	return m, nil
}

// SummarizabilityMatrixPartialContext is the overload-safe variant of
// SummarizabilityMatrixContext: cells whose DIMSAT run exhausts the
// Options budget or the deadline are reported as unknown in
// Matrix.Unknown instead of failing the whole matrix, so a serving tier
// can degrade one expensive cell rather than the entire response. Other
// errors (cancellation by the client, contained panics) still abort.
func SummarizabilityMatrixPartialContext(ctx context.Context, ds *DimensionSchema, opts Options) (_ *Matrix, err error) {
	defer recoverAsInternal(&err)
	m := newMatrixShell(ds)
	n := len(m.Categories)
	results := make([]bool, n*n)
	unknown := make([]bool, n*n)
	decided := make([]bool, n*n)
	err = runPool(ctx, n*n, opts, func(ctx context.Context, idx int) error {
		rep, err := SummarizableContext(ctx, ds, m.Categories[idx/n], []string{m.Categories[idx%n]}, opts)
		switch {
		case err == nil:
			results[idx] = rep.Summarizable()
		case errors.Is(err, ErrBudgetExceeded) || errors.Is(err, context.DeadlineExceeded):
			unknown[idx] = true
		default:
			return err
		}
		decided[idx] = true
		return nil
	})
	if err != nil {
		// A passed deadline also stops the fan-out itself; the cells it
		// never reached are unknown, not a failure.
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrBudgetExceeded) {
			return nil, err
		}
	}
	for idx := range decided {
		if !decided[idx] {
			unknown[idx] = true
		}
	}
	m.fill(results, unknown)
	return m, nil
}

// newMatrixShell lists the non-All categories of ds into an empty matrix.
func newMatrixShell(ds *DimensionSchema) *Matrix {
	m := &Matrix{From: map[string]map[string]bool{}}
	for _, c := range ds.G.SortedCategories() {
		if c != schema.All {
			m.Categories = append(m.Categories, c)
		}
	}
	return m
}

// fill populates From (and Unknown, when unknown is non-nil) from the
// row-major cell slices.
func (m *Matrix) fill(results, unknown []bool) {
	n := len(m.Categories)
	for idx, ok := range results {
		target := m.Categories[idx/n]
		if m.From[target] == nil {
			m.From[target] = map[string]bool{}
		}
		m.From[target][m.Categories[idx%n]] = ok
		if unknown != nil && unknown[idx] {
			if m.Unknown == nil {
				m.Unknown = map[string]map[string]bool{}
			}
			if m.Unknown[target] == nil {
				m.Unknown[target] = map[string]bool{}
			}
			m.Unknown[target][m.Categories[idx%n]] = true
		}
	}
}

// String renders the matrix as a table: rows are targets, columns sources,
// a "+" marking summarizable pairs and a "?" marking undecided cells of a
// partial matrix.
func (m *Matrix) String() string {
	width := 6
	for _, c := range m.Categories {
		if len(c) > width {
			width = len(c)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", width+2, "from:")
	for _, src := range m.Categories {
		fmt.Fprintf(&b, " %-*s", width, src)
	}
	b.WriteByte('\n')
	for _, target := range m.Categories {
		fmt.Fprintf(&b, "%-*s", width+2, target)
		for _, src := range m.Categories {
			mark := "."
			if m.From[target][src] {
				mark = "+"
			}
			if m.Unknown[target][src] {
				mark = "?"
			}
			fmt.Fprintf(&b, " %-*s", width, mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SummarizableSources returns the sources from which target is
// single-source summarizable, sorted.
func (m *Matrix) SummarizableSources(target string) []string {
	var out []string
	for src, ok := range m.From[target] {
		if ok {
			out = append(out, src)
		}
	}
	sort.Strings(out)
	return out
}

// MinimalSources enumerates every minimal source set (up to maxSize
// categories) from which target is summarizable in all instances of ds: a
// certified set none of whose proper subsets is certified. Candidates are
// all categories except All and the target itself (the singleton {target}
// is trivially certified and is reported when nothing smaller exists…
// nothing smaller can exist, so it is always the first result when
// included). Supersets of certified sets are skipped — summarizability is
// not monotone, but a superset of a certified set is never *minimal*.
// MinimalSources is MinimalSourcesContext with a background context.
func MinimalSources(ds *DimensionSchema, target string, maxSize int, opts Options) ([][]string, error) {
	return MinimalSourcesContext(context.Background(), ds, target, maxSize, opts)
}

// MinimalSourcesContext is MinimalSources under a context. The search is
// level-synchronous: all candidate sets of one size are independent (a
// certified set cannot be a proper subset of another set of the same
// size), so each level is tested on the Options worker pool; supersets of
// smaller certified sets are filtered before the fan-out. Results are
// identical to the serial enumeration, in the same order.
func MinimalSourcesContext(ctx context.Context, ds *DimensionSchema, target string, maxSize int, opts Options) (_ [][]string, err error) {
	defer recoverAsInternal(&err)
	if !ds.G.HasCategory(target) {
		return nil, fmt.Errorf("core: unknown category %q", target)
	}
	var cands []string
	for _, c := range ds.G.SortedCategories() {
		if c != schema.All {
			cands = append(cands, c)
		}
	}
	var out [][]string
	isSuperset := func(set []string) bool {
		for _, m := range out {
			if containsAll(set, m) {
				return true
			}
		}
		return false
	}
	for size := 1; size <= maxSize && size <= len(cands); size++ {
		var level [][]string
		var rec func(cur []string, start int)
		rec = func(cur []string, start int) {
			if len(cur) == size {
				if !isSuperset(cur) {
					level = append(level, append([]string(nil), cur...))
				}
				return
			}
			for i := start; i < len(cands); i++ {
				rec(append(cur, cands[i]), i+1)
			}
		}
		rec(nil, 0)
		certified := make([]bool, len(level))
		err := runPool(ctx, len(level), opts, func(ctx context.Context, i int) error {
			rep, err := SummarizableContext(ctx, ds, target, level[i], opts)
			if err != nil {
				return err
			}
			certified[i] = rep.Summarizable()
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, set := range level {
			if certified[i] {
				out = append(out, set)
			}
		}
	}
	return out, nil
}
