package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"olapdim/internal/schema"
)

// Matrix records, for every ordered pair of categories (target, source),
// whether the target's cube view is computable from the source's alone in
// every instance of the schema — the design-stage overview Section 6 of
// the paper motivates.
type Matrix struct {
	// Categories lists the non-All categories, sorted.
	Categories []string
	// From[target][source] reports single-source summarizability.
	From map[string]map[string]bool
}

// SummarizabilityMatrix computes single-source summarizability between
// every pair of categories of ds. Each cell is one Theorem 1 implication
// per bottom category, decided by DIMSAT; the N² independent cells are
// computed on a worker pool sized to GOMAXPROCS (a Tracer in opts forces
// sequential execution, since tracers are not required to be safe for
// concurrent use).
func SummarizabilityMatrix(ds *DimensionSchema, opts Options) (*Matrix, error) {
	m := &Matrix{From: map[string]map[string]bool{}}
	for _, c := range ds.G.SortedCategories() {
		if c != schema.All {
			m.Categories = append(m.Categories, c)
		}
	}
	n := len(m.Categories)
	results := make([]bool, n*n)
	errs := make([]error, n*n)

	workers := runtime.GOMAXPROCS(0)
	if opts.Tracer != nil || workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				target := m.Categories[idx/n]
				source := m.Categories[idx%n]
				rep, err := Summarizable(ds, target, []string{source}, opts)
				if err != nil {
					errs[idx] = err
					continue
				}
				results[idx] = rep.Summarizable()
			}
		}()
	}
	for idx := 0; idx < n*n; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	for idx, err := range errs {
		if err != nil {
			return nil, err
		}
		target := m.Categories[idx/n]
		if m.From[target] == nil {
			m.From[target] = map[string]bool{}
		}
		m.From[target][m.Categories[idx%n]] = results[idx]
	}
	return m, nil
}

// String renders the matrix as a table: rows are targets, columns sources,
// a "+" marking summarizable pairs.
func (m *Matrix) String() string {
	width := 6
	for _, c := range m.Categories {
		if len(c) > width {
			width = len(c)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", width+2, "from:")
	for _, src := range m.Categories {
		fmt.Fprintf(&b, " %-*s", width, src)
	}
	b.WriteByte('\n')
	for _, target := range m.Categories {
		fmt.Fprintf(&b, "%-*s", width+2, target)
		for _, src := range m.Categories {
			mark := "."
			if m.From[target][src] {
				mark = "+"
			}
			fmt.Fprintf(&b, " %-*s", width, mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SummarizableSources returns the sources from which target is
// single-source summarizable, sorted.
func (m *Matrix) SummarizableSources(target string) []string {
	var out []string
	for src, ok := range m.From[target] {
		if ok {
			out = append(out, src)
		}
	}
	sort.Strings(out)
	return out
}

// MinimalSources enumerates every minimal source set (up to maxSize
// categories) from which target is summarizable in all instances of ds: a
// certified set none of whose proper subsets is certified. Candidates are
// all categories except All and the target itself (the singleton {target}
// is trivially certified and is reported when nothing smaller exists…
// nothing smaller can exist, so it is always the first result when
// included). Supersets of certified sets are skipped — summarizability is
// not monotone, but a superset of a certified set is never *minimal*.
func MinimalSources(ds *DimensionSchema, target string, maxSize int, opts Options) ([][]string, error) {
	if !ds.G.HasCategory(target) {
		return nil, fmt.Errorf("core: unknown category %q", target)
	}
	var cands []string
	for _, c := range ds.G.SortedCategories() {
		if c != schema.All {
			cands = append(cands, c)
		}
	}
	var out [][]string
	isSuperset := func(set []string) bool {
		for _, m := range out {
			if containsAll(set, m) {
				return true
			}
		}
		return false
	}
	var err error
	var rec func(cur []string, start, size int)
	rec = func(cur []string, start, size int) {
		if err != nil {
			return
		}
		if len(cur) == size {
			if isSuperset(cur) {
				return
			}
			rep, e := Summarizable(ds, target, cur, opts)
			if e != nil {
				err = e
				return
			}
			if rep.Summarizable() {
				out = append(out, append([]string(nil), cur...))
			}
			return
		}
		for i := start; i < len(cands); i++ {
			rec(append(cur, cands[i]), i+1, size)
		}
	}
	for size := 1; size <= maxSize && size <= len(cands); size++ {
		rec(nil, 0, size)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
