package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"olapdim/internal/schema"
)

// Matrix records, for every ordered pair of categories (target, source),
// whether the target's cube view is computable from the source's alone in
// every instance of the schema — the design-stage overview Section 6 of
// the paper motivates.
type Matrix struct {
	// Categories lists the non-All categories, sorted.
	Categories []string
	// From[target][source] reports single-source summarizability.
	From map[string]map[string]bool
}

// SummarizabilityMatrix computes single-source summarizability between
// every pair of categories of ds. Each cell is one Theorem 1 implication
// per bottom category, decided by DIMSAT; the N² independent cells are
// computed on a worker pool sized by opts.Parallelism (default
// GOMAXPROCS; a Tracer in opts forces sequential execution, since tracers
// are not required to be safe for concurrent use).
//
// SummarizabilityMatrix is SummarizabilityMatrixContext with a background
// context.
func SummarizabilityMatrix(ds *DimensionSchema, opts Options) (*Matrix, error) {
	return SummarizabilityMatrixContext(context.Background(), ds, opts)
}

// SummarizabilityMatrixContext is SummarizabilityMatrix under a context:
// cancellation or a per-cell budget error stops the fan-out and returns
// the first error. Sharing opts.Cache across calls lets repeated cells be
// answered without re-running DIMSAT.
func SummarizabilityMatrixContext(ctx context.Context, ds *DimensionSchema, opts Options) (*Matrix, error) {
	m := &Matrix{From: map[string]map[string]bool{}}
	for _, c := range ds.G.SortedCategories() {
		if c != schema.All {
			m.Categories = append(m.Categories, c)
		}
	}
	n := len(m.Categories)
	results := make([]bool, n*n)
	err := forEachLimit(ctx, n*n, poolSize(opts), func(ctx context.Context, idx int) error {
		target := m.Categories[idx/n]
		source := m.Categories[idx%n]
		rep, err := SummarizableContext(ctx, ds, target, []string{source}, opts)
		if err != nil {
			return err
		}
		results[idx] = rep.Summarizable()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for idx, ok := range results {
		target := m.Categories[idx/n]
		if m.From[target] == nil {
			m.From[target] = map[string]bool{}
		}
		m.From[target][m.Categories[idx%n]] = ok
	}
	return m, nil
}

// String renders the matrix as a table: rows are targets, columns sources,
// a "+" marking summarizable pairs.
func (m *Matrix) String() string {
	width := 6
	for _, c := range m.Categories {
		if len(c) > width {
			width = len(c)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", width+2, "from:")
	for _, src := range m.Categories {
		fmt.Fprintf(&b, " %-*s", width, src)
	}
	b.WriteByte('\n')
	for _, target := range m.Categories {
		fmt.Fprintf(&b, "%-*s", width+2, target)
		for _, src := range m.Categories {
			mark := "."
			if m.From[target][src] {
				mark = "+"
			}
			fmt.Fprintf(&b, " %-*s", width, mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SummarizableSources returns the sources from which target is
// single-source summarizable, sorted.
func (m *Matrix) SummarizableSources(target string) []string {
	var out []string
	for src, ok := range m.From[target] {
		if ok {
			out = append(out, src)
		}
	}
	sort.Strings(out)
	return out
}

// MinimalSources enumerates every minimal source set (up to maxSize
// categories) from which target is summarizable in all instances of ds: a
// certified set none of whose proper subsets is certified. Candidates are
// all categories except All and the target itself (the singleton {target}
// is trivially certified and is reported when nothing smaller exists…
// nothing smaller can exist, so it is always the first result when
// included). Supersets of certified sets are skipped — summarizability is
// not monotone, but a superset of a certified set is never *minimal*.
// MinimalSources is MinimalSourcesContext with a background context.
func MinimalSources(ds *DimensionSchema, target string, maxSize int, opts Options) ([][]string, error) {
	return MinimalSourcesContext(context.Background(), ds, target, maxSize, opts)
}

// MinimalSourcesContext is MinimalSources under a context. The search is
// level-synchronous: all candidate sets of one size are independent (a
// certified set cannot be a proper subset of another set of the same
// size), so each level is tested on the Options worker pool; supersets of
// smaller certified sets are filtered before the fan-out. Results are
// identical to the serial enumeration, in the same order.
func MinimalSourcesContext(ctx context.Context, ds *DimensionSchema, target string, maxSize int, opts Options) ([][]string, error) {
	if !ds.G.HasCategory(target) {
		return nil, fmt.Errorf("core: unknown category %q", target)
	}
	var cands []string
	for _, c := range ds.G.SortedCategories() {
		if c != schema.All {
			cands = append(cands, c)
		}
	}
	var out [][]string
	isSuperset := func(set []string) bool {
		for _, m := range out {
			if containsAll(set, m) {
				return true
			}
		}
		return false
	}
	for size := 1; size <= maxSize && size <= len(cands); size++ {
		var level [][]string
		var rec func(cur []string, start int)
		rec = func(cur []string, start int) {
			if len(cur) == size {
				if !isSuperset(cur) {
					level = append(level, append([]string(nil), cur...))
				}
				return
			}
			for i := start; i < len(cands); i++ {
				rec(append(cur, cands[i]), i+1)
			}
		}
		rec(nil, 0)
		certified := make([]bool, len(level))
		err := forEachLimit(ctx, len(level), poolSize(opts), func(ctx context.Context, i int) error {
			rep, err := SummarizableContext(ctx, ds, target, level[i], opts)
			if err != nil {
				return err
			}
			certified[i] = rep.Summarizable()
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, set := range level {
			if certified[i] {
				out = append(out, set)
			}
		}
	}
	return out, nil
}
