package core

import (
	"sort"

	"olapdim/internal/constraint"
	"olapdim/internal/schema"
)

// Provenance describes what one DIMSAT run actually consulted: the
// touched set of a search. It is collected only when Options.Provenance
// is set — the engines carry a nil collector otherwise, so the default
// path pays one pointer test per marking site — and both engines produce
// identical provenance for identical queries (enforced by the
// differential oracle alongside verdicts, stats and traces).
//
// The touched set is the future delta API's invalidation key: a stored
// verdict only depends on the categories, edges and constraints listed
// here, so a schema edit disjoint from them cannot change it.
type Provenance struct {
	// Categories the search placed in any candidate subhierarchy: the
	// root plus every endpoint of an applied edge. Sorted.
	Categories []string `json:"categories"`
	// Edges applied by EXPAND steps, as [child, parent] pairs in the
	// child-rolls-up-to-parent direction. Sorted lexicographically.
	Edges [][2]string `json:"edges,omitempty"`
	// Sigma holds the indices (into the queried schema's Σ) of the
	// constraints CHECK consulted: a relevant constraint is touched by a
	// CHECK when it is rootless or its root category is in the candidate
	// subhierarchy (anything else is vacuously true by Definition 4 and
	// is skipped without reading the constraint). Sorted ascending.
	Sigma []int `json:"sigma,omitempty"`
	// Frontier lists the categories at which pruning abandoned branches
	// (the ctop of every dead end). For an UNSAT verdict these are the
	// places the search died; schema.All appears when a cycle swallowed
	// the frontier. Sorted.
	Frontier []string `json:"frontier,omitempty"`
}

// provCollector accumulates the touched set during one run. Both engines
// share it: the compiled engine marks with interned names resolved back
// to strings, so the finalized sets are comparable across engines.
type provCollector struct {
	cats     map[string]bool
	edges    map[[2]string]bool
	sigma    map[int]bool
	frontier map[string]bool
}

func newProvCollector(root string) *provCollector {
	return &provCollector{
		cats:     map[string]bool{root: true},
		edges:    map[[2]string]bool{},
		sigma:    map[int]bool{},
		frontier: map[string]bool{},
	}
}

func (p *provCollector) markEdge(c, parent string) {
	p.cats[c] = true
	p.cats[parent] = true
	p.edges[[2]string{c, parent}] = true
}

func (p *provCollector) markSigma(idx int)       { p.sigma[idx] = true }
func (p *provCollector) markFrontier(cat string) { p.frontier[cat] = true }

// finalize renders the collected sets in deterministic order.
func (p *provCollector) finalize() *Provenance {
	out := &Provenance{
		Categories: sortedKeys(p.cats),
		Frontier:   sortedKeys(p.frontier),
	}
	for e := range p.edges {
		out.Edges = append(out.Edges, e)
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i][0] != out.Edges[j][0] {
			return out.Edges[i][0] < out.Edges[j][0]
		}
		return out.Edges[i][1] < out.Edges[j][1]
	})
	for i := range p.sigma {
		out.Sigma = append(out.Sigma, i)
	}
	sort.Ints(out.Sigma)
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// trivialProvenance is the touched set of the Proposition 1 fast path:
// c == All is decided without a search, consulting nothing but the root.
func trivialProvenance() *Provenance {
	return &Provenance{Categories: []string{schema.All}}
}

// sigmaIndicesFor returns the indices into sigma that SigmaFor(sigma, g,
// c) selects, in the same order — the original-Σ positions of the
// constraints a search rooted at c can see. The interpreted engine uses
// it to mark provenance with schema-level indices (its filtered sigma
// slice loses them); the compiled engine reads the same selection from
// its precomputed sigmaFor rows.
func sigmaIndicesFor(sigma []constraint.Expr, g *schema.Schema, c string) []int {
	var out []int
	for i, e := range sigma {
		root, err := constraint.Root(e)
		if err != nil {
			continue
		}
		if root == "" || g.Reaches(c, root) {
			out = append(out, i)
		}
	}
	return out
}

// sigmaRootsOf resolves the root category of each selected Σ constraint
// ("" for rootless), aligned with the indices. CHECK-time touch marking
// needs the root to mirror the compiled engine's vacuity test.
func sigmaRootsOf(sigma []constraint.Expr, idx []int) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		root, err := constraint.Root(sigma[j])
		if err != nil {
			continue
		}
		out[i] = root
	}
	return out
}
