package core

import (
	"reflect"
	"strings"
	"testing"
)

func TestSummarizabilityMatrixDiamond(t *testing.T) {
	ds := parse(t, diamondSrc+`
constraint one(A_B, A_C)
constraint !A_D
`)
	m, err := SummarizabilityMatrix(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Categories, []string{"A", "B", "C", "D"}) {
		t.Fatalf("categories = %v", m.Categories)
	}
	// Every category is summarizable from itself.
	for _, c := range m.Categories {
		if !m.From[c][c] {
			t.Errorf("%s not summarizable from itself", c)
		}
	}
	// D is not summarizable from B alone (members may route through C)…
	if m.From["D"]["B"] {
		t.Error("D should not be summarizable from {B} alone")
	}
	// …and A (a bottom) is summarizable from nothing coarser.
	if m.From["A"]["B"] || m.From["A"]["D"] {
		t.Error("the bottom category cannot be recovered from coarser views")
	}
}

func TestSummarizabilityMatrixForced(t *testing.T) {
	// With every member forced through B, D becomes summarizable from B.
	ds := parse(t, diamondSrc+`
constraint A_B & !A_C & !A_D
`)
	m, err := SummarizabilityMatrix(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.From["D"]["B"] {
		t.Error("D should be summarizable from {B} when all members route via B")
	}
	srcs := m.SummarizableSources("D")
	want := []string{"A", "B", "D"}
	if !reflect.DeepEqual(srcs, want) {
		t.Errorf("sources of D = %v, want %v", srcs, want)
	}
}

func TestMatrixString(t *testing.T) {
	ds := parse(t, diamondSrc)
	m, err := SummarizabilityMatrix(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	if !strings.Contains(s, "from:") || !strings.Contains(s, "+") {
		t.Errorf("rendering:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 1+len(m.Categories) {
		t.Errorf("want %d lines, got %d:\n%s", 1+len(m.Categories), len(lines), s)
	}
}

func TestMinimalSources(t *testing.T) {
	ds := parse(t, diamondSrc+`
constraint one(A_B, A_C)
constraint !A_D
`)
	sets, err := MinimalSources(ds, "D", 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, s := range sets {
		keys[strings.Join(s, "+")] = true
	}
	// D from itself, from A (the bottom), and from {B, C} jointly.
	for _, want := range []string{"D", "A", "B+C"} {
		if !keys[want] {
			t.Errorf("missing minimal source set %q (got %v)", want, sets)
		}
	}
	// Neither {B} nor {C} alone is certified, and no reported set is a
	// superset of another.
	if keys["B"] || keys["C"] {
		t.Errorf("non-certified singleton reported: %v", sets)
	}
	for _, s := range sets {
		for _, other := range sets {
			if len(other) < len(s) && containsAll(s, other) {
				t.Errorf("%v is a superset of reported %v", s, other)
			}
		}
	}
	if _, err := MinimalSources(ds, "Ghost", 2, Options{}); err == nil {
		t.Error("unknown target accepted")
	}
}
