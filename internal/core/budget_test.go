package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"olapdim/internal/frozen"
)

// hardUnsatSrc builds a layered hierarchy schema whose root C0 is
// unsatisfiable only because of a contradictory constraint, so DIMSAT must
// exhaust the full (large) subhierarchy space before answering.
func hardUnsatSrc(width, layers int) string {
	var b strings.Builder
	b.WriteString("schema hard\n")
	name := func(l, i int) string { return fmt.Sprintf("L%dx%d", l, i) }
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "edge C0 -> %s\n", name(0, i))
	}
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				fmt.Fprintf(&b, "edge %s -> %s\n", name(l, i), name(l+1, j))
			}
		}
	}
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "edge %s -> All\n", name(layers-1, i))
	}
	// Contradiction on the root: no frozen dimension can satisfy it, so
	// every CHECK fails and the search runs to exhaustion.
	fmt.Fprintf(&b, "constraint C0_%s & !C0_%s\n", name(0, 0), name(0, 0))
	return b.String()
}

func hardSchema(t *testing.T) *DimensionSchema {
	t.Helper()
	// Width 3, two layers: ~1700 expansions — long enough to truncate
	// meaningfully, fast enough for the race detector.
	return parse(t, hardUnsatSrc(3, 2))
}

// hardSearchExpansions pins the full cost of the hard schema so the budget
// tests below are guaranteed to truncate a genuinely longer search.
func hardSearchExpansions(t *testing.T) int {
	t.Helper()
	res, err := Satisfiable(hardSchema(t), "C0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Fatal("hard schema root should be unsatisfiable")
	}
	return res.Stats.Expansions
}

func TestBudgetExhaustionReturnsPartialStats(t *testing.T) {
	full := hardSearchExpansions(t)
	const budget = 25
	if full <= budget {
		t.Fatalf("hard schema too easy: %d expansions", full)
	}
	res, err := SatisfiableContext(context.Background(), hardSchema(t), "C0", Options{MaxExpansions: budget})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res.Stats.Expansions != budget {
		t.Errorf("partial Stats.Expansions = %d, want exactly %d", res.Stats.Expansions, budget)
	}
	if res.Satisfiable || res.Witness != nil {
		t.Errorf("truncated run must not claim a verdict: %+v", res)
	}
}

func TestDeadlineInOptions(t *testing.T) {
	res, err := Satisfiable(hardSchema(t), "C0", Options{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if res.Stats.Expansions != 0 {
		t.Errorf("expired deadline still expanded %d times", res.Stats.Expansions)
	}
}

// cancelAfterTracer cancels a context after n EXPAND steps, simulating a
// client that disconnects mid-search.
type cancelAfterTracer struct {
	n      int
	seen   int
	cancel context.CancelFunc
}

func (tr *cancelAfterTracer) Expand(g *frozen.Subhierarchy, ctop string, R []string) {
	tr.seen++
	if tr.seen == tr.n {
		tr.cancel()
	}
}

func (tr *cancelAfterTracer) Check(g *frozen.Subhierarchy, induced bool) {}

func TestCancellationAbortsWithinOneExpandStep(t *testing.T) {
	const cancelAt = 10
	if full := hardSearchExpansions(t); full <= cancelAt {
		t.Fatalf("hard schema too easy: %d expansions", full)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &cancelAfterTracer{n: cancelAt, cancel: cancel}
	res, err := SatisfiableContext(ctx, hardSchema(t), "C0", Options{Tracer: tr})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// The cancellation lands during expansion #cancelAt; the search must
	// stop before starting another EXPAND step.
	if res.Stats.Expansions != cancelAt {
		t.Errorf("search ran %d expansions, want abort at %d", res.Stats.Expansions, cancelAt)
	}
}

func TestEnumerateFrozenContextBudget(t *testing.T) {
	_, err := EnumerateFrozenContext(context.Background(), hardSchema(t), "C0", Options{MaxExpansions: 5})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestImpliesContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds := parse(t, diamondSrc)
	alpha, err := ParseConstraint("A_B")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ImpliesContext(ctx, ds, alpha, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestBatchSurfacesPropagateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds := parse(t, diamondSrc)
	if _, err := SummarizabilityMatrixContext(ctx, ds, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("matrix err = %v, want Canceled", err)
	}
	if _, err := MinimalSourcesContext(ctx, ds, "D", 2, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("minimal sources err = %v, want Canceled", err)
	}
	if _, err := UnsatisfiableCategoriesContext(ctx, ds, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("unsatisfiable categories err = %v, want Canceled", err)
	}
	if _, err := LintContext(ctx, ds, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("lint err = %v, want Canceled", err)
	}
}

func TestZeroOptionsUnbudgeted(t *testing.T) {
	// The zero Options value must preserve the pre-context behavior: no
	// budget, no deadline, search runs to completion.
	res, err := Satisfiable(hardSchema(t), "C0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Error("contradictory schema reported satisfiable")
	}
}
