package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// SatCache memoizes satisfiability results across DIMSAT calls, keyed by
// (schema fingerprint, root category). It is safe for concurrent use and
// deduplicates in-flight work: concurrent calls for the same key block on
// a single search instead of racing to repeat it, so repeated roots are
// solved once across a summarizability matrix and across HTTP requests.
//
// Failed runs (canceled contexts, exhausted budgets) are never retained —
// a later call with a larger budget recomputes. Cached Results share their
// witness frozen dimension; witnesses are immutable after construction.
type SatCache struct {
	mu      sync.Mutex
	entries map[satCacheKey]*satCacheEntry
	hits    uint64
	misses  uint64
	// work accumulates the search effort of every computed (non-hit) run,
	// the figure the dimsatd /stats endpoint reports.
	work Stats
}

type satCacheKey struct {
	schema string
	root   string
}

// satCacheEntry is a singleflight slot: res and err are written exactly
// once, before done is closed; waiters read them only after <-done.
type satCacheEntry struct {
	done chan struct{}
	res  Result
	err  error
}

// NewSatCache returns an empty satisfiability cache.
func NewSatCache() *SatCache {
	return &SatCache{entries: map[satCacheKey]*satCacheEntry{}}
}

// CacheStats is a point-in-time snapshot of a SatCache.
type CacheStats struct {
	// Hits counts calls answered from a cached or in-flight entry.
	Hits uint64
	// Misses counts calls that ran a DIMSAT search.
	Misses uint64
	// Entries is the number of retained results.
	Entries int
	// Work accumulates the search effort of every computed run.
	Work Stats
}

// HitRate is Hits / (Hits + Misses), 0 when no calls were made.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *SatCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries), Work: c.work}
}

// satisfiable answers (fingerprint(ds), root) from the cache, running
// compute under singleflight on a miss. A compute that fails is not
// cached and wakes any waiters to retry (they may carry larger budgets);
// a waiter whose own context expires returns its ctx.Err without waiting
// further.
func (c *SatCache) satisfiable(ctx context.Context, ds *DimensionSchema, root string, compute func() (Result, error)) (Result, error) {
	key := satCacheKey{schema: schemaFingerprint(ds), root: root}
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
			if e.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return e.res, nil
			}
			// The computing call failed and removed its entry before
			// closing done; retry under our own budget.
			continue
		}
		e := &satCacheEntry{done: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()

		res, err := runCompute(compute)
		c.mu.Lock()
		if err != nil {
			delete(c.entries, key)
		} else {
			c.misses++
			c.work.Add(res.Stats)
		}
		c.mu.Unlock()
		e.res, e.err = res, err
		close(e.done)
		return res, err
	}
}

// runCompute runs a singleflight compute with panic containment: a panic
// must become an error *before* the entry bookkeeping runs, or the entry's
// done channel would never close and every waiter on the key would block
// forever. The recovered panic surfaces as an *InternalError and, like any
// failed compute, is not cached.
func runCompute(compute func() (Result, error)) (res Result, err error) {
	defer recoverAsInternal(&err)
	return compute()
}

// schemaFingerprint canonically identifies a dimension schema by hashing
// its textual rendering (hierarchy plus constraints in order).
func schemaFingerprint(ds *DimensionSchema) string {
	sum := sha256.Sum256([]byte(ds.String()))
	return hex.EncodeToString(sum[:])
}
