package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// SatCache memoizes satisfiability results across DIMSAT calls, keyed by
// (schema fingerprint, root category). It is safe for concurrent use and
// deduplicates in-flight work: concurrent calls for the same key block on
// a single search instead of racing to repeat it, so repeated roots are
// solved once across a summarizability matrix and across HTTP requests.
//
// Failed runs (canceled contexts, exhausted budgets) are never retained —
// a later call with a larger budget recomputes. Cached Results share their
// witness frozen dimension; witnesses are immutable after construction.
// A hit returns the memoized verdict with zero Stats: the answering
// request did no search work, so per-request effort accounting
// (Options.Effort, serving histograms) records nothing for it — the
// effort was already attributed to the request that computed the entry.
//
// A cache built with NewSatCacheSize is bounded: inserting a computed
// result beyond the capacity evicts the oldest retained entry (FIFO), so
// a server fed a stream of distinct schemas holds memory steady. The
// default NewSatCache is unbounded, the right shape for one schema's
// category space.
type SatCache struct {
	mu      sync.Mutex
	entries map[satCacheKey]*satCacheEntry
	// order lists completed (retained) entries oldest-first; in-flight
	// singleflight slots are not in it.
	order     []satCacheKey
	max       int // 0 = unbounded
	hits      uint64
	misses    uint64
	coalesced uint64
	evictions uint64
	// work accumulates the search effort of every computed (non-hit) run,
	// the figure the dimsatd /stats endpoint reports.
	work Stats
}

type satCacheKey struct {
	schema string
	root   string
}

// satCacheEntry is a singleflight slot: res and err are written exactly
// once, before done is closed; waiters read them only after <-done.
type satCacheEntry struct {
	done chan struct{}
	res  Result
	err  error
}

// NewSatCache returns an empty, unbounded satisfiability cache.
func NewSatCache() *SatCache {
	return &SatCache{entries: map[satCacheKey]*satCacheEntry{}}
}

// NewSatCacheSize returns a cache retaining at most maxEntries computed
// results, evicting oldest-first past the cap; maxEntries <= 0 means
// unbounded.
func NewSatCacheSize(maxEntries int) *SatCache {
	c := NewSatCache()
	if maxEntries > 0 {
		c.max = maxEntries
	}
	return c
}

// CacheStats is a point-in-time snapshot of a SatCache.
type CacheStats struct {
	// Hits counts calls answered from a cached or in-flight entry.
	Hits uint64
	// Misses counts calls that ran a DIMSAT search.
	Misses uint64
	// Coalesced counts the subset of hits that arrived while the entry
	// was still being computed and blocked on the in-flight search
	// (singleflight deduplication) instead of racing to repeat it.
	Coalesced uint64
	// Evictions counts retained entries dropped by the size bound.
	Evictions uint64
	// Entries is the number of retained results.
	Entries int
	// Work accumulates the search effort of every computed run.
	Work Stats
}

// HitRate is Hits / (Hits + Misses), 0 when no calls were made.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *SatCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Coalesced: c.coalesced, Evictions: c.evictions,
		Entries: len(c.entries), Work: c.work,
	}
}

// satisfiable answers (fingerprint, root) from the cache, running
// compute under singleflight on a miss. The caller supplies the schema
// fingerprint so callers holding a Compiled schema reuse its memoized
// hash instead of re-hashing per lookup. A compute that fails is not
// cached and wakes any waiters to retry (they may carry larger budgets);
// a waiter whose own context expires returns its ctx.Err without waiting
// further.
func (c *SatCache) satisfiable(ctx context.Context, fingerprint, root string, compute func() (Result, error)) (Result, error) {
	key := satCacheKey{schema: fingerprint, root: root}
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.done:
			default:
				// The entry is still computing: this call coalesces onto the
				// in-flight search.
				c.mu.Lock()
				c.coalesced++
				c.mu.Unlock()
				select {
				case <-e.done:
				case <-ctx.Done():
					return Result{}, ctx.Err()
				}
			}
			if e.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				// The memoized verdict with zero Stats: this request did no
				// search work (see the type comment).
				res := e.res
				res.Stats = Stats{}
				return res, nil
			}
			// The computing call failed and removed its entry before
			// closing done; retry under our own budget.
			continue
		}
		e := &satCacheEntry{done: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()

		res, err := runCompute(compute)
		c.mu.Lock()
		if err != nil {
			delete(c.entries, key)
		} else {
			c.misses++
			c.work.Add(res.Stats)
			c.retain(key)
		}
		c.mu.Unlock()
		e.res, e.err = res, err
		close(e.done)
		return res, err
	}
}

// peek reports the memoized result for (fingerprint, root) when a
// completed successful entry exists, without blocking on in-flight
// computes. ImpliesContext uses it to skip per-call work that only pays
// off when the search actually runs (deriving the compiled negation
// schema); a peek hit counts as a cache hit, exactly like answering
// through satisfiable.
func (c *SatCache) peek(fingerprint, root string) (Result, bool) {
	key := satCacheKey{schema: fingerprint, root: root}
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return Result{}, false
	}
	select {
	case <-e.done:
	default:
		// Still computing: fall through to the singleflight path, which
		// coalesces onto the in-flight search.
		return Result{}, false
	}
	if e.err != nil {
		return Result{}, false
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	res := e.res
	res.Stats = Stats{}
	return res, true
}

// retain records a completed entry in FIFO order and evicts past the
// size bound; the caller holds c.mu.
func (c *SatCache) retain(key satCacheKey) {
	c.order = append(c.order, key)
	if c.max <= 0 {
		return
	}
	for len(c.order) > c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
		c.evictions++
	}
}

// runCompute runs a singleflight compute with panic containment: a panic
// must become an error *before* the entry bookkeeping runs, or the entry's
// done channel would never close and every waiter on the key would block
// forever. The recovered panic surfaces as an *InternalError and, like any
// failed compute, is not cached.
func runCompute(compute func() (Result, error)) (res Result, err error) {
	defer recoverAsInternal(&err)
	return compute()
}

// schemaFingerprint canonically identifies a dimension schema by hashing
// its textual rendering (hierarchy plus constraints in order).
func schemaFingerprint(ds *DimensionSchema) string {
	sum := sha256.Sum256([]byte(ds.String()))
	return hex.EncodeToString(sum[:])
}
