package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"olapdim/internal/constraint"
	"olapdim/internal/faults"
)

// TestCacheFailsMidMatrix arms an error on the third sat-cache lookup and
// checks the matrix fan-out surfaces it instead of wedging: the injected
// error aborts the computation and is visible through errors.Is.
func TestCacheFailsMidMatrix(t *testing.T) {
	ds := parse(t, diamondSrc)
	opts := Options{
		Cache:       NewSatCache(),
		Parallelism: 1,
		Faults:      faults.New(faults.Rule{Site: faults.SiteCacheLookup, Kind: faults.Error, On: []int{3}}),
	}
	_, err := SummarizabilityMatrix(ds, opts)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected cache failure", err)
	}
	if got := opts.Faults.Hits(faults.SiteCacheLookup); got < 3 {
		t.Errorf("cache lookups = %d, want >= 3", got)
	}
}

// TestWorkerPanicsOnRow7 arms a panic on the seventh worker-pool task of
// the matrix fan-out and checks containment: the panic comes back as a
// typed *InternalError carrying the injected value and a stack, matching
// ErrInternal — it never escapes to the caller's goroutine.
func TestWorkerPanicsOnRow7(t *testing.T) {
	ds := parse(t, diamondSrc)
	opts := Options{
		Faults: faults.New(faults.Rule{Site: faults.SitePoolTask, Kind: faults.Panic, On: []int{7}}),
	}
	_, err := SummarizabilityMatrix(ds, opts)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T, want *InternalError", err)
	}
	if len(ie.Stack) == 0 {
		t.Error("contained panic lost its stack")
	}
	pv, ok := ie.Value.(*faults.PanicValue)
	if !ok {
		t.Fatalf("panic value = %T (%v), want *faults.PanicValue", ie.Value, ie.Value)
	}
	if pv.Site != faults.SitePoolTask || pv.Hit != 7 {
		t.Errorf("panic value = %+v, want pool.task hit 7", pv)
	}
}

// TestSearchStallsPastDeadline injects latency before every EXPAND step so
// a short-deadline search stalls: the context check right after the stall
// observes the passed deadline and the run aborts with DeadlineExceeded.
func TestSearchStallsPastDeadline(t *testing.T) {
	ds := parse(t, diamondSrc)
	opts := Options{
		Faults: faults.New(faults.Rule{Site: faults.SiteExpand, Kind: faults.Latency, Delay: 50 * time.Millisecond}),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := SatisfiableContext(ctx, ds, "A", opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestPartialMatrixDegradesUnderStall runs the overload-safe matrix with
// stalled searches and a short deadline: instead of failing, every
// undecided cell is reported unknown.
func TestPartialMatrixDegradesUnderStall(t *testing.T) {
	ds := parse(t, diamondSrc)
	opts := Options{
		Parallelism: 1,
		Faults:      faults.New(faults.Rule{Site: faults.SiteExpand, Kind: faults.Latency, Delay: 20 * time.Millisecond}),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	m, err := SummarizabilityMatrixPartialContext(ctx, ds, opts)
	if err != nil {
		t.Fatalf("partial matrix failed: %v", err)
	}
	if m.Complete() {
		t.Error("stalled matrix reported complete")
	}
	var unknown int
	for _, row := range m.Unknown {
		unknown += len(row)
	}
	if n := len(m.Categories); unknown != n*n {
		t.Errorf("unknown cells = %d, want all %d", unknown, n*n)
	}
}

// TestPartialMatrixBudgetExceeded checks the budget flavor of degradation:
// a one-expansion budget cannot decide any cell, and the partial matrix
// reports them unknown while the strict variant fails outright.
func TestPartialMatrixBudgetExceeded(t *testing.T) {
	ds := parse(t, diamondSrc)
	opts := Options{MaxExpansions: 1, Parallelism: 1}
	if _, err := SummarizabilityMatrix(ds, opts); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("strict matrix err = %v, want ErrBudgetExceeded", err)
	}
	m, err := SummarizabilityMatrixPartialContext(context.Background(), ds, opts)
	if err != nil {
		t.Fatalf("partial matrix failed: %v", err)
	}
	if m.Complete() {
		t.Error("budget-starved matrix reported complete")
	}
}

// TestPanicInCacheComputeDoesNotWedgeWaiters panics inside the search
// while it runs as a singleflight cache compute: the panic must become an
// error before the cache's entry bookkeeping, or every waiter on the same
// key would block forever on a done channel that never closes.
func TestPanicInCacheComputeDoesNotWedgeWaiters(t *testing.T) {
	ds := parse(t, diamondSrc)
	opts := Options{
		Cache:  NewSatCache(),
		Faults: faults.New(faults.Rule{Site: faults.SiteExpand, Kind: faults.Panic, On: []int{1}}),
	}
	done := make(chan error, 1)
	go func() {
		_, err := Satisfiable(ds, "A", opts)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInternal) {
			t.Fatalf("err = %v, want ErrInternal", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cache compute wedged after panic")
	}
	// The failed compute is not cached; a clean retry succeeds.
	opts.Faults = nil
	res, err := Satisfiable(ds, "A", opts)
	if err != nil || !res.Satisfiable {
		t.Fatalf("retry after contained panic: res=%+v err=%v", res, err)
	}
}

// TestInjectionIsDeterministic replays the same fault configuration twice
// on a sequential pool and checks the schedule is identical: same number
// of site passes, same activations, same error.
func TestInjectionIsDeterministic(t *testing.T) {
	run := func() (hits, fired int, err error) {
		ds := parse(t, diamondSrc)
		opts := Options{
			Parallelism: 1,
			Faults:      faults.New(faults.Rule{Site: faults.SitePoolTask, Kind: faults.Error, On: []int{5}}),
		}
		_, err = SummarizabilityMatrix(ds, opts)
		return opts.Faults.Hits(faults.SitePoolTask), opts.Faults.Fired(faults.SitePoolTask), err
	}
	h1, f1, e1 := run()
	h2, f2, e2 := run()
	if h1 != h2 || f1 != f2 {
		t.Errorf("schedules diverged: hits %d vs %d, fired %d vs %d", h1, h2, f1, f2)
	}
	if h1 != 5 || f1 != 1 {
		t.Errorf("hits/fired = %d/%d, want 5/1 (sequential pool stops at the injected failure)", h1, f1)
	}
	if !errors.Is(e1, faults.ErrInjected) || !errors.Is(e2, faults.ErrInjected) {
		t.Errorf("errors = %v, %v, want injected", e1, e2)
	}
}

// TestFacadeEntryPointsRecover drives each ...Context facade with a panic
// armed at its first reachable site and checks every one of them returns
// ErrInternal instead of crashing the caller.
func TestFacadeEntryPointsRecover(t *testing.T) {
	ds := parse(t, diamondSrc)
	panicOnExpand := func() Options {
		return Options{Faults: faults.New(faults.Rule{Site: faults.SiteExpand, Kind: faults.Panic, On: []int{1}})}
	}
	calls := map[string]func() error{
		"Satisfiable": func() error {
			_, err := Satisfiable(ds, "A", panicOnExpand())
			return err
		},
		"EnumerateFrozen": func() error {
			_, err := EnumerateFrozen(ds, "A", panicOnExpand())
			return err
		},
		"Implies": func() error {
			_, _, err := Implies(ds, constraint.NewPath("A", "B"), panicOnExpand())
			return err
		},
		"Summarizable": func() error {
			_, err := Summarizable(ds, "D", []string{"B"}, panicOnExpand())
			return err
		},
		"SummarizabilityMatrix": func() error {
			_, err := SummarizabilityMatrix(ds, panicOnExpand())
			return err
		},
		"MinimalSources": func() error {
			_, err := MinimalSources(ds, "D", 1, panicOnExpand())
			return err
		},
		"Lint": func() error {
			_, err := Lint(ds, panicOnExpand())
			return err
		},
		"CategorySatisfiability": func() error {
			_, err := CategorySatisfiabilityContext(context.Background(), ds, panicOnExpand())
			return err
		},
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, ErrInternal) {
			t.Errorf("%s: err = %v, want ErrInternal", name, err)
		}
	}
}
