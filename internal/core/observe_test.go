package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"olapdim/internal/faults"
	"olapdim/internal/frozen"
)

// TestCacheHitZeroStatsAndEffortSink pins the no-double-counting
// contract: the first call computes and its effort lands in its sink and
// in the cache's cumulative Work; the second call is a hit that returns
// zero Stats and leaves its own sink untouched, so per-request effort
// accounting never re-attributes work the cache already did.
func TestCacheHitZeroStatsAndEffortSink(t *testing.T) {
	ds := parse(t, diamondSrc)
	cache := NewSatCache()
	var s1, s2 EffortSink

	r1, err := SatisfiableContext(context.Background(), ds, "A", Options{Cache: cache, Effort: &s1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Expansions == 0 {
		t.Fatal("computing call reported zero expansions")
	}
	if got := s1.Stats(); got != r1.Stats {
		t.Errorf("sink of computing call = %+v, want %+v", got, r1.Stats)
	}
	if s1.Runs() != 1 {
		t.Errorf("sink runs = %d, want 1", s1.Runs())
	}

	r2, err := SatisfiableContext(context.Background(), ds, "A", Options{Cache: cache, Effort: &s2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Satisfiable != r1.Satisfiable {
		t.Errorf("hit verdict %v != computed %v", r2.Satisfiable, r1.Satisfiable)
	}
	if r2.Stats != (Stats{}) {
		t.Errorf("cache hit returned Stats %+v, want zero", r2.Stats)
	}
	if got := s2.Stats(); got != (Stats{}) || s2.Runs() != 0 {
		t.Errorf("cache hit fed the effort sink: %+v, %d runs", got, s2.Runs())
	}
	cs := cache.Stats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", cs.Hits, cs.Misses)
	}
	if cs.Work != r1.Stats {
		t.Errorf("cache Work = %+v, want the computing call's %+v", cs.Work, r1.Stats)
	}
}

// TestSatCacheSizeEviction checks the bounded cache: FIFO eviction past
// the cap, the eviction counter, and that an evicted key recomputes.
func TestSatCacheSizeEviction(t *testing.T) {
	ds := parse(t, diamondSrc)
	cache := NewSatCacheSize(2)
	for _, c := range []string{"A", "B", "C", "D"} {
		if _, err := Satisfiable(ds, c, Options{Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	cs := cache.Stats()
	if cs.Entries != 2 || cs.Evictions != 2 || cs.Misses != 4 {
		t.Fatalf("after 4 distinct roots: %+v, want 2 entries / 2 evictions / 4 misses", cs)
	}
	// A (the oldest) was evicted: querying it again is a miss...
	if _, err := Satisfiable(ds, "A", Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cs = cache.Stats(); cs.Misses != 5 || cs.Entries != 2 {
		t.Fatalf("evicted root did not recompute: %+v", cs)
	}
	// ...while D (recent) is still a hit.
	if _, err := Satisfiable(ds, "D", Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cs = cache.Stats(); cs.Hits != 1 {
		t.Fatalf("retained root did not hit: %+v", cs)
	}
}

// TestSatCacheCoalescedCounter arms per-step latency so the first call
// holds the singleflight slot long enough for a second call to block on
// it, then checks the coalesced counter (a subset of hits).
func TestSatCacheCoalescedCounter(t *testing.T) {
	ds := parse(t, diamondSrc)
	cache := NewSatCache()
	slow := Options{
		Cache: cache,
		Faults: faults.New(faults.Rule{
			Site: faults.SiteExpand, Kind: faults.Latency, Every: 1, Delay: 30 * time.Millisecond,
		}),
	}
	computing := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(computing)
		_, err := SatisfiableContext(context.Background(), ds, "A", slow)
		done <- err
	}()
	<-computing
	for i := 0; i < 200 && cache.Stats().Entries == 0; i++ {
		// Entries counts the in-flight singleflight slot as soon as it is
		// installed; wait for it so the second call coalesces.
		time.Sleep(time.Millisecond)
	}
	res, err := SatisfiableContext(context.Background(), ds, "A", Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Error("diamond root reported unsatisfiable")
	}
	cs := cache.Stats()
	if cs.Coalesced < 1 {
		t.Errorf("coalesced = %d, want >= 1", cs.Coalesced)
	}
	if cs.Hits < cs.Coalesced {
		t.Errorf("coalesced (%d) must be a subset of hits (%d)", cs.Coalesced, cs.Hits)
	}
}

// recordingStructuredTracer counts structured callbacks; it also
// implements the narrative Tracer so the engine accepts it.
type recordingStructuredTracer struct {
	expands, checks, prunes int
	maxDepth                int
	heuristics              map[string]int
}

func (r *recordingStructuredTracer) Expand(g *frozen.Subhierarchy, ctop string, R []string) {}
func (r *recordingStructuredTracer) Check(g *frozen.Subhierarchy, induced bool)             {}

func (r *recordingStructuredTracer) ExpandStep(depth int, ctop string, R []string) {
	r.expands++
	if depth > r.maxDepth {
		r.maxDepth = depth
	}
}
func (r *recordingStructuredTracer) CheckStep(depth int, induced bool) { r.checks++ }
func (r *recordingStructuredTracer) PruneStep(depth int, ctop, heuristic string) {
	r.prunes++
	if r.heuristics == nil {
		r.heuristics = map[string]int{}
	}
	r.heuristics[heuristic]++
}

// TestStructuredTracerMatchesStats runs searches with a structured
// tracer installed and checks the event counts agree exactly with the
// engine's Stats — expand events with Expansions, check events with
// Checks, prune events with DeadEnds — so a trace is a faithful record
// of the search effort.
func TestStructuredTracerMatchesStats(t *testing.T) {
	srcs := map[string]string{
		"diamond":      diamondSrc,
		"diamond-one":  diamondSrc + "constraint one(A_B, A_C)\n",
		"diamond-dead": diamondSrc + "constraint !A_D\n",
		// Contradictory edge atoms force and forbid the same into-edge,
		// which the "into" heuristic prunes as a dead end.
		"forced-into": diamondSrc + "constraint A_B\nconstraint !A_B\n",
		"hard-unsat":  hardUnsatSrc(3, 2),
	}
	sawDeadEnds := false
	for name, src := range srcs {
		ds := parse(t, src)
		root := ds.G.Bottoms()[0]
		tr := &recordingStructuredTracer{}
		res, err := SatisfiableContext(context.Background(), ds, root, Options{Tracer: tr})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.expands != res.Stats.Expansions {
			t.Errorf("%s: expand events = %d, Stats.Expansions = %d", name, tr.expands, res.Stats.Expansions)
		}
		if tr.checks != res.Stats.Checks {
			t.Errorf("%s: check events = %d, Stats.Checks = %d", name, tr.checks, res.Stats.Checks)
		}
		if tr.prunes != res.Stats.DeadEnds {
			t.Errorf("%s: prune events = %d, Stats.DeadEnds = %d", name, tr.prunes, res.Stats.DeadEnds)
		}
		if res.Stats.DeadEnds > 0 {
			sawDeadEnds = true
			if len(tr.heuristics) == 0 {
				t.Errorf("%s: dead ends without heuristic names", name)
			}
		}
		for h := range tr.heuristics {
			switch h {
			case "into", "cycle-frontier", "sibling-shortcut":
			default:
				t.Errorf("%s: unknown prune heuristic %q", name, h)
			}
		}
	}
	if !sawDeadEnds {
		t.Error("no test schema exercised a pruning dead end")
	}
}

// recordingPoolObserver checks the PoolObserver bookkeeping invariants
// under a real parallel matrix run.
type recordingPoolObserver struct {
	mu       sync.Mutex
	batches  int
	started  int
	done     int
	errs     int
	queue    int // BatchStart adds, TaskStart and BatchDone subtract
	maxQueue int
}

func (p *recordingPoolObserver) BatchStart(tasks int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.batches++
	p.queue += tasks
	if p.queue > p.maxQueue {
		p.maxQueue = p.queue
	}
}
func (p *recordingPoolObserver) BatchDone(skipped int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queue -= skipped
}
func (p *recordingPoolObserver) TaskStart() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.started++
	p.queue--
}
func (p *recordingPoolObserver) TaskDone(d time.Duration, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if err != nil {
		p.errs++
	}
}

func TestPoolObserverBookkeeping(t *testing.T) {
	ds := parse(t, diamondSrc+"constraint one(A_B, A_C)\n")
	po := &recordingPoolObserver{}
	if _, err := SummarizabilityMatrixContext(context.Background(), ds, Options{
		Parallelism: 4, Cache: NewSatCache(), Pool: po,
	}); err != nil {
		t.Fatal(err)
	}
	po.mu.Lock()
	defer po.mu.Unlock()
	if po.batches == 0 || po.started == 0 {
		t.Fatalf("observer saw no work: %+v", po)
	}
	if po.started != po.done {
		t.Errorf("TaskStart (%d) != TaskDone (%d)", po.started, po.done)
	}
	if po.queue != 0 {
		t.Errorf("queue did not reconcile to zero: %d", po.queue)
	}
	if po.errs != 0 {
		t.Errorf("clean matrix reported %d task errors", po.errs)
	}
}

// TestPoolObserverSeesPanicsAsErrors pins the defer ordering in runPool:
// TaskDone must observe the error a panicking task was converted to, not
// a nil snapshot taken before recovery.
func TestPoolObserverSeesPanicsAsErrors(t *testing.T) {
	ds := parse(t, diamondSrc)
	po := &recordingPoolObserver{}
	_, err := SummarizabilityMatrixContext(context.Background(), ds, Options{
		Parallelism: 2,
		Pool:        po,
		Faults: faults.New(faults.Rule{
			Site: faults.SitePoolTask, Kind: faults.Panic, On: []int{1},
		}),
	})
	if err == nil {
		t.Fatal("injected pool panic did not surface")
	}
	po.mu.Lock()
	defer po.mu.Unlock()
	if po.errs == 0 {
		t.Error("TaskDone never observed the recovered panic as an error")
	}
	if po.queue != 0 {
		t.Errorf("queue did not reconcile after abort: %d", po.queue)
	}
}
