package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"olapdim/internal/constraint"
	"olapdim/internal/schema"
)

// Compiled is a dimension schema compiled for the bitset search engine.
//
// Compile interns the category names of ds.G to dense int32 ids (in
// sorted-name order, so id order coincides with the lexicographic order
// the interpreted search iterates in), flattens the graph and its
// reflexive-transitive closure into []uint64 bitset rows, and
// pre-resolves the per-call constraint indexes that the interpreted
// engine rebuilds on every search (the forced into-edges of
// intoEdgesIn and the relevant-constraint sets of constraint.SigmaFor).
// Passing a Compiled via Options.Compiled makes SatisfiableContext,
// ResumeSatisfiableContext and everything layered on them (Implies,
// Summarizable, Lint, ...) run on the compiled engine, which produces
// bit-for-bit identical Results, Stats, trace events and checkpoints.
//
// A Compiled is immutable after construction and safe for concurrent
// use by any number of searches.
type Compiled struct {
	src *DimensionSchema

	names []string         // id -> category name, sorted (names[allID] == schema.All)
	ids   map[string]int32 // category name -> id
	allID int32
	words int // words per bitset row: bitWords(len(names))

	out   [][]int32 // id -> child ids, in schema insertion order (mirrors G.Out)
	reach []uint64  // flat n×words reflexive-transitive closure of G
	into  [][]int32 // id -> forced parents (into-edges), ascending ids
	edges int

	sigma    []compiledConstraint
	sigmaFor [][]int32 // root id -> indexes into sigma relevant for that root
	consts   map[string][]string

	fpOnce  sync.Once
	fp      string
	srcText string // rendered source text, populated with fp

	// Fingerprints of derived (negated implication) schemas, keyed by the
	// extra constraint's string form and evicted FIFO. Kept separate from
	// the derived-schema cache so fingerprint lookups (cache peeks) never
	// force a compile.
	negMu    sync.Mutex
	negFP    map[string]string
	negOrder []string

	met *compileCounters

	// Derived compiled schemas for implication queries (the source schema
	// plus one extra constraint), keyed by the extra constraint's string
	// form and evicted FIFO.
	deriveMu    sync.Mutex
	derived     map[string]*Compiled
	deriveOrder []string
	deriveMax   int
}

// compiledConstraint is one Σ entry with its pre-resolved root id.
// structural marks constraints built only from path/rollup/through atoms
// and connectives: on a complete subhierarchy the circle operator decides
// every atom, so CHECK can evaluate them directly over the bitsets
// instead of going through constraint.Reduce.
type compiledConstraint struct {
	expr       constraint.Expr
	root       int32 // -1 when the constraint has no atoms
	structural bool
}

// compileCounters aggregates compile-time metrics. The counters are
// shared between a Compiled schema and every schema derived from it so a
// server can export one set of olapdim_compile_* series per schema.
type compileCounters struct {
	compiles    atomic.Uint64
	compileNano atomic.Int64
	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
}

// CompiledStats is a point-in-time snapshot of a compiled schema's shape
// and of the compile/derive-cache activity since Compile.
type CompiledStats struct {
	Categories  int // categories in the schema graph, including All
	Edges       int // child→parent edges in the schema graph
	Constraints int // constraints in Σ

	Compiles       uint64  // compilations performed (initial + derived)
	CompileSeconds float64 // cumulative wall-clock compile time
	DeriveHits     uint64  // derived-schema cache hits
	DeriveMisses   uint64  // derived-schema cache misses
	DeriveEvictions uint64 // derived-schema cache evictions
}

// deriveCacheMax bounds the per-schema cache of derived (negated
// implication) compilations.
const deriveCacheMax = 256

// Compile builds the compiled bitset form of ds. The schema must
// validate; the error of ds.Validate is returned otherwise. The result
// is pinned to ds by pointer and by fingerprint — passing it alongside a
// different schema fails with ErrCompiledMismatch.
func Compile(ds *DimensionSchema) (*Compiled, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return compileValidated(ds, &compileCounters{})
}

// compileValidated compiles a schema already known to validate, charging
// the work to met.
func compileValidated(ds *DimensionSchema, met *compileCounters) (*Compiled, error) {
	start := time.Now()
	names := ds.G.SortedCategories()
	n := len(names)
	cs := &Compiled{
		src:       ds,
		names:     names,
		ids:       make(map[string]int32, n),
		words:     bitWords(n),
		met:       met,
		deriveMax: deriveCacheMax,
	}
	for i, name := range names {
		cs.ids[name] = int32(i)
	}
	cs.allID = cs.ids[schema.All]

	cs.out = make([][]int32, n)
	for i, name := range names {
		children := ds.G.Out(name)
		if len(children) == 0 {
			continue
		}
		row := make([]int32, len(children))
		for j, p := range children {
			row[j] = cs.ids[p]
		}
		cs.out[i] = row
		cs.edges += len(row)
	}

	// Reflexive-transitive closure of G, one DFS per source.
	cs.reach = make([]uint64, n*cs.words)
	stack := make([]int32, 0, n)
	for c := int32(0); c < int32(n); c++ {
		row := cs.reach[int(c)*cs.words : (int(c)+1)*cs.words]
		bitSet(row, c)
		stack = append(stack[:0], c)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range cs.out[cur] {
				if !bitTest(row, p) {
					bitSet(row, p)
					stack = append(stack, p)
				}
			}
		}
	}

	// Forced into-edges (intoEdgesIn): path-atom edges present in G.
	// IntoEdges returns parents sorted by name, which is ascending-id
	// order under the sorted interning.
	cs.into = make([][]int32, n)
	for c, ps := range constraint.IntoEdges(ds.Sigma) {
		ci, ok := cs.ids[c]
		if !ok {
			continue
		}
		for _, p := range ps {
			if ds.G.HasEdge(c, p) {
				cs.into[ci] = append(cs.into[ci], cs.ids[p])
			}
		}
	}

	cs.sigma = make([]compiledConstraint, len(ds.Sigma))
	for i, e := range ds.Sigma {
		root, err := constraint.Root(e)
		if err != nil {
			return nil, fmt.Errorf("core: compile: %w", err)
		}
		cc := compiledConstraint{expr: e, root: -1, structural: isStructural(e)}
		if root != "" {
			cc.root = cs.ids[root]
		}
		cs.sigma[i] = cc
	}

	// Σ(ds, c) per root category (constraint.SigmaFor): constraints with
	// no atoms, plus those whose root is reachable from c in G.
	cs.sigmaFor = make([][]int32, n)
	for c := 0; c < n; c++ {
		row := cs.reach[c*cs.words : (c+1)*cs.words]
		for i := range cs.sigma {
			if r := cs.sigma[i].root; r < 0 || bitTest(row, r) {
				cs.sigmaFor[c] = append(cs.sigmaFor[c], int32(i))
			}
		}
	}

	cs.consts = constraint.ValueDomains(ds.Sigma)

	met.compiles.Add(1)
	met.compileNano.Add(time.Since(start).Nanoseconds())
	return cs, nil
}

// isStructural reports whether e mentions no equality or order atoms.
func isStructural(e constraint.Expr) bool {
	structural := true
	constraint.Walk(e, func(a constraint.Atom) {
		switch a.(type) {
		case constraint.EqAtom, constraint.CmpAtom:
			structural = false
		}
	})
	return structural
}

// Source returns the dimension schema this form was compiled from.
func (cs *Compiled) Source() *DimensionSchema { return cs.src }

// Fingerprint returns the schema fingerprint (identical to
// Fingerprint(cs.Source())), computed once and cached.
func (cs *Compiled) Fingerprint() string {
	cs.fpOnce.Do(func() {
		cs.srcText = cs.src.String()
		sum := sha256.Sum256([]byte(cs.srcText))
		cs.fp = hex.EncodeToString(sum[:])
	})
	return cs.fp
}

// negFingerprint returns Fingerprint(neg) for the schema obtained by
// appending extra to Σ — the Theorem 2 reduction schema — without
// re-rendering the whole schema: neg renders as the source text plus one
// constraint line, so the hash runs over the cached rendering and the
// line. ImpliesContext uses it to peek the satisfiability cache before
// deciding whether a derive (compile) is needed at all. Results are
// cached per extra-constraint string with FIFO eviction.
func (cs *Compiled) negFingerprint(extra constraint.Expr) string {
	key := extra.String()
	cs.negMu.Lock()
	if fp, ok := cs.negFP[key]; ok {
		cs.negMu.Unlock()
		return fp
	}
	cs.negMu.Unlock()

	cs.Fingerprint() // populate srcText
	h := sha256.New()
	h.Write([]byte(cs.srcText))
	h.Write([]byte("constraint "))
	h.Write([]byte(key))
	h.Write([]byte("\n"))
	fp := hex.EncodeToString(h.Sum(nil))

	cs.negMu.Lock()
	if _, dup := cs.negFP[key]; !dup {
		if cs.negFP == nil {
			cs.negFP = map[string]string{}
		}
		cs.negFP[key] = fp
		cs.negOrder = append(cs.negOrder, key)
		for len(cs.negOrder) > deriveCacheMax {
			delete(cs.negFP, cs.negOrder[0])
			cs.negOrder = cs.negOrder[1:]
		}
	}
	cs.negMu.Unlock()
	return fp
}

// Stats snapshots the compiled schema's shape and compile activity.
func (cs *Compiled) Stats() CompiledStats {
	return CompiledStats{
		Categories:      len(cs.names),
		Edges:           cs.edges,
		Constraints:     len(cs.sigma),
		Compiles:        cs.met.compiles.Load(),
		CompileSeconds:  float64(cs.met.compileNano.Load()) / 1e9,
		DeriveHits:      cs.met.hits.Load(),
		DeriveMisses:    cs.met.misses.Load(),
		DeriveEvictions: cs.met.evictions.Load(),
	}
}

// Derive compiles the schema obtained by appending extra to Σ, reusing
// the interned graph and closure (which only depend on G). The derived
// schema's Source() is content-identical to the negated schema built by
// ImpliesReduction, so fingerprints — and therefore cache and checkpoint
// keys — agree with the interpreted implication path. Results are cached
// per extra-constraint string with FIFO eviction.
func (cs *Compiled) Derive(extra constraint.Expr) (*Compiled, error) {
	key := extra.String()
	if d, ok := cs.deriveLookup(key); ok {
		return d, nil
	}
	if err := constraint.Validate(extra, cs.src.G); err != nil {
		return nil, fmt.Errorf("core: derive: %w", err)
	}
	sigma := make([]constraint.Expr, 0, len(cs.src.Sigma)+1)
	sigma = append(sigma, cs.src.Sigma...)
	sigma = append(sigma, extra)
	return cs.deriveSigma(key, sigma)
}

// deriveSubset compiles the schema whose Σ is the subset of the source Σ
// selected by keep (ascending original indices), sharing the interned
// graph and the Derive cache. ExplainContext's shrink probes use it so a
// subset probed repeatedly — within one call or across requests —
// compiles once. The cache key is prefixed with a NUL byte, which no
// constraint's rendered form starts with, so subset entries cannot
// collide with Derive's per-constraint entries.
func (cs *Compiled) deriveSubset(keep []int) (*Compiled, error) {
	mask := make([]byte, (len(cs.src.Sigma)+7)/8)
	for _, i := range keep {
		mask[i/8] |= 1 << uint(i%8)
	}
	key := "\x00subset:" + hex.EncodeToString(mask)
	if d, ok := cs.deriveLookup(key); ok {
		return d, nil
	}
	sigma := make([]constraint.Expr, 0, len(keep))
	for _, i := range keep {
		sigma = append(sigma, cs.src.Sigma[i])
	}
	return cs.deriveSigma(key, sigma)
}

// deriveLookup answers a derive-cache probe, counting a hit.
func (cs *Compiled) deriveLookup(key string) (*Compiled, bool) {
	cs.deriveMu.Lock()
	defer cs.deriveMu.Unlock()
	if d, ok := cs.derived[key]; ok {
		cs.met.hits.Add(1)
		return d, true
	}
	return nil, false
}

// deriveSigma compiles a schema sharing cs's graph with Σ = sigma and
// caches it under key with FIFO eviction; the Σ-independent parts
// (interning, adjacency, closure) are reused, everything downstream of Σ
// is rebuilt.
func (cs *Compiled) deriveSigma(key string, sigma []constraint.Expr) (*Compiled, error) {
	start := time.Now()
	ds := &DimensionSchema{G: cs.src.G, Sigma: sigma}

	n := len(cs.names)
	d := &Compiled{
		src:       ds,
		names:     cs.names,
		ids:       cs.ids,
		allID:     cs.allID,
		words:     cs.words,
		out:       cs.out,
		reach:     cs.reach,
		edges:     cs.edges,
		met:       cs.met,
		deriveMax: cs.deriveMax,
	}

	// Σ changed, so everything downstream of Σ is rebuilt: into-edges,
	// compiled constraints, per-root relevance, and value domains (the
	// extra constraint's equality atoms can add constants).
	d.into = make([][]int32, n)
	for c, ps := range constraint.IntoEdges(sigma) {
		ci, ok := d.ids[c]
		if !ok {
			continue
		}
		for _, p := range ps {
			if ds.G.HasEdge(c, p) {
				d.into[ci] = append(d.into[ci], d.ids[p])
			}
		}
	}
	d.sigma = make([]compiledConstraint, len(sigma))
	for i, e := range sigma {
		root, err := constraint.Root(e)
		if err != nil {
			return nil, fmt.Errorf("core: derive: %w", err)
		}
		cc := compiledConstraint{expr: e, root: -1, structural: isStructural(e)}
		if root != "" {
			cc.root = d.ids[root]
		}
		d.sigma[i] = cc
	}
	d.sigmaFor = make([][]int32, n)
	for c := 0; c < n; c++ {
		row := d.reach[c*d.words : (c+1)*d.words]
		for i := range d.sigma {
			if r := d.sigma[i].root; r < 0 || bitTest(row, r) {
				d.sigmaFor[c] = append(d.sigmaFor[c], int32(i))
			}
		}
	}
	d.consts = constraint.ValueDomains(sigma)
	cs.met.compiles.Add(1)
	cs.met.compileNano.Add(time.Since(start).Nanoseconds())

	cs.deriveMu.Lock()
	defer cs.deriveMu.Unlock()
	if prev, ok := cs.derived[key]; ok {
		// Lost a race with a concurrent Derive; keep the first entry.
		cs.met.hits.Add(1)
		return prev, nil
	}
	cs.met.misses.Add(1)
	if cs.derived == nil {
		cs.derived = make(map[string]*Compiled, cs.deriveMax)
	}
	cs.derived[key] = d
	cs.deriveOrder = append(cs.deriveOrder, key)
	for len(cs.deriveOrder) > cs.deriveMax {
		victim := cs.deriveOrder[0]
		cs.deriveOrder = cs.deriveOrder[1:]
		delete(cs.derived, victim)
		cs.met.evictions.Add(1)
	}
	return d, nil
}
