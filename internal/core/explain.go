package core

import (
	"context"
	"fmt"
	"time"

	"olapdim/internal/constraint"
	"olapdim/internal/faults"
	"olapdim/internal/frozen"
)

// Explanation is the verdict provenance assembled by ExplainContext: the
// satisfiability outcome plus why it came out that way. SAT verdicts
// carry the witness and touched set; UNSAT verdicts additionally carry a
// minimal unsat core and the frontier categories where every branch
// died.
type Explanation struct {
	// Satisfiable is the verdict for the queried category.
	Satisfiable bool
	// Witness is a frozen dimension witnessing satisfiability; nil when
	// unsatisfiable.
	Witness *frozen.Frozen
	// Provenance is the touched set of the initial (full-Σ) run.
	Provenance *Provenance
	// Core holds the indices into the schema's Σ of a minimal subset
	// still forcing UNSAT: the subset is unsatisfiable as-is and
	// removing any single member makes the category satisfiable. Empty
	// (with Satisfiable false) when the UNSAT verdict is structural —
	// no constraint subset is needed because no acyclic, shortcut-free
	// subhierarchy rooted at the category reaches All at all. When
	// Partial is set the core is the not-yet-minimal working set at the
	// point the budget ran out: still UNSAT-forcing, possibly larger
	// than minimal. Nil when Satisfiable is true.
	Core []int
	// CoreExprs are the constraints at the Core indices, aligned.
	CoreExprs []constraint.Expr
	// Frontier is Provenance.Frontier, surfaced for UNSAT diagnosis: the
	// categories at which the search's branches died.
	Frontier []string
	// Probes counts the shrink probes executed (one Satisfiable run per
	// deletion attempt; cache hits count as probes with zero stats).
	Probes int
	// ProbeStats is the cumulative search effort of all shrink probes,
	// excluding the initial run.
	ProbeStats Stats
	// Partial reports that shrinking stopped early — budget, deadline,
	// cancellation or an injected fault — and Core is unminimized. The
	// typed error (ErrBudgetExceeded, context.DeadlineExceeded, ...) is
	// returned alongside.
	Partial bool
}

// ShrinkProbe describes one unsat-core deletion probe to
// Options.ShrinkObserver.
type ShrinkProbe struct {
	// Index is the Σ index the probe tried to drop.
	Index int
	// Removed reports that the probe proved the constraint redundant
	// (the remaining subset is still UNSAT).
	Removed bool
	// Stats is the probe's search effort (zero on a SatCache hit).
	Stats Stats
	// Start and Duration time the probe.
	Start    time.Time
	Duration time.Duration
	// Err is the probe's error when it aborted (budget, deadline,
	// cancellation, injected fault); nil for decided probes.
	Err error
}

// Explain is ExplainContext with a background context.
func Explain(ds *DimensionSchema, c string, opts Options) (*Explanation, error) {
	return ExplainContext(context.Background(), ds, c, opts)
}

// ExplainContext explains the satisfiability verdict for category c: it
// runs SatisfiableContext with provenance enabled and, on UNSAT, shrinks
// the relevant Σ constraints to a minimal unsat core by deletion — for
// each member, re-deciding satisfiability without it and dropping it
// when the verdict stays UNSAT. Removing constraints can only grow the
// set of frozen dimensions, so the surviving set is minimal: every
// member's removal flips the verdict to SAT.
//
// Probes run through the same Options as the initial query: with
// opts.Cache they are memoized by (subset fingerprint, root) across
// calls, and with opts.Compiled each subset compiles once into the
// schema's Derive cache. opts.MaxExpansions bounds the total EXPAND
// budget of the whole call (initial run plus probes) and opts.Deadline /
// ctx bound its wall clock; an exhausted budget returns the current
// working set as a partial core together with the typed error.
func ExplainContext(ctx context.Context, ds *DimensionSchema, c string, opts Options) (_ *Explanation, err error) {
	defer recoverAsInternal(&err)
	iopts := opts
	iopts.Provenance = true
	res, err := SatisfiableContext(ctx, ds, c, iopts)
	if err != nil {
		return &Explanation{Provenance: res.Provenance, Partial: true}, err
	}
	ex := &Explanation{
		Satisfiable: res.Satisfiable,
		Witness:     res.Witness,
		Provenance:  res.Provenance,
	}
	if res.Provenance != nil {
		ex.Frontier = res.Provenance.Frontier
	}
	if res.Satisfiable {
		return ex, nil
	}

	// Deletion-based shrinking over the constraints a search rooted at c
	// can see (anything else is vacuous on every candidate subhierarchy
	// and cannot belong to a core). working always satisfies the
	// invariant UNSAT(working); each iteration probes working minus one
	// member.
	cs, _ := compiledFor(ds, opts)
	spent := res.Stats.Expansions
	working := sigmaIndicesFor(ds.Sigma, ds.G, c)
	popts := opts
	popts.Provenance = false
	popts.Tracer = nil
	popts.Checkpoint = nil
	popts.ShrinkObserver = nil
	for pos := 0; pos < len(working); {
		idx := working[pos]
		if ferr := opts.Faults.Hit(faults.SiteCoreShrink); ferr != nil {
			setCore(ex, ds, working)
			ex.Partial = true
			return ex, fmt.Errorf("core: shrink: %w", ferr)
		}
		if opts.MaxExpansions > 0 {
			remaining := opts.MaxExpansions - spent
			if remaining <= 0 {
				setCore(ex, ds, working)
				ex.Partial = true
				return ex, fmt.Errorf("%w after %d expansions", ErrBudgetExceeded, spent)
			}
			popts.MaxExpansions = remaining
		}
		candidate := append(append([]int(nil), working[:pos]...), working[pos+1:]...)
		popts.Compiled = nil
		var pds *DimensionSchema
		if cs != nil {
			// A subset derive shares the interned graph and caches per
			// subset; a failure falls back to the interpreted engine
			// rather than failing the probe.
			if dcs, derr := cs.deriveSubset(candidate); derr == nil {
				popts.Compiled = dcs
				pds = dcs.Source()
			}
		}
		if pds == nil {
			pds = subsetSchema(ds, candidate)
		}
		start := time.Now()
		pres, perr := SatisfiableContext(ctx, pds, c, popts)
		spent += pres.Stats.Expansions
		ex.Probes++
		ex.ProbeStats.Add(pres.Stats)
		removed := perr == nil && !pres.Satisfiable
		if opts.ShrinkObserver != nil {
			opts.ShrinkObserver(ShrinkProbe{
				Index:    idx,
				Removed:  removed,
				Stats:    pres.Stats,
				Start:    start,
				Duration: time.Since(start),
				Err:      perr,
			})
		}
		if perr != nil {
			setCore(ex, ds, working)
			ex.Partial = true
			return ex, perr
		}
		if removed {
			working = candidate
		} else {
			pos++
		}
	}
	setCore(ex, ds, working)
	return ex, nil
}

// subsetSchema builds the interpreted probe schema for a Σ subset. Its
// rendered form — hence its fingerprint, the SatCache key — is identical
// to the one deriveSubset compiles, so interpreted and compiled probes
// share cache entries.
func subsetSchema(ds *DimensionSchema, keep []int) *DimensionSchema {
	sigma := make([]constraint.Expr, 0, len(keep))
	for _, i := range keep {
		sigma = append(sigma, ds.Sigma[i])
	}
	return &DimensionSchema{G: ds.G, Sigma: sigma}
}

func setCore(ex *Explanation, ds *DimensionSchema, working []int) {
	ex.Core = append([]int(nil), working...)
	for _, i := range working {
		ex.CoreExprs = append(ex.CoreExprs, ds.Sigma[i])
	}
}
