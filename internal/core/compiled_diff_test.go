package core_test

// Differential oracle suite: the interpreted DIMSAT engine is the
// correctness oracle for the compiled bitset engine. Every test here
// runs the same query on both engines and requires identical results —
// verdicts, witnesses, Stats, trace event streams at the three
// dead-end/prune sites, and checkpoints (which must also resume
// interchangeably across engines).

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"olapdim/internal/constraint"
	"olapdim/internal/core"
	"olapdim/internal/frozen"
	"olapdim/internal/gen"
	"olapdim/internal/paper"
)

// diffSpecs spans the internal/gen schema families: homogeneous layered
// schemas, heterogeneous multi-parent schemas, choice (one-of)
// constraints, conditional equality constraints over constants, and
// into-heavy schemas that feed the Section 5 pruning heuristic.
func diffSpecs() []gen.SchemaSpec {
	return []gen.SchemaSpec{
		{Seed: 1, Categories: 6, Levels: 3},
		{Seed: 2, Categories: 8, Levels: 3, ExtraEdgeProb: 0.3},
		{Seed: 3, Categories: 8, Levels: 2, ExtraEdgeProb: 0.5, ChoiceProb: 0.8},
		{Seed: 4, Categories: 9, Levels: 3, ExtraEdgeProb: 0.4, Constants: 3, CondProb: 0.7},
		{Seed: 5, Categories: 10, Levels: 4, ExtraEdgeProb: 0.3, IntoFrac: 0.6},
		{Seed: 6, Categories: 10, Levels: 3, ExtraEdgeProb: 0.4, ChoiceProb: 0.5, Constants: 2, CondProb: 0.5, IntoFrac: 0.4},
		{Seed: 7, Categories: 12, Levels: 4, ExtraEdgeProb: 0.25, ChoiceProb: 0.3, Constants: 4, CondProb: 0.3, IntoFrac: 0.3},
	}
}

// diffSchemas returns the generated families plus hand-built schemas
// covering corners the generator does not produce: the paper's location
// schema and a schema with order (Cmp) atoms, which exercise the valued
// decider and the c-assignment solver.
func diffSchemas(t *testing.T) map[string]*core.DimensionSchema {
	t.Helper()
	out := map[string]*core.DimensionSchema{}
	for _, spec := range diffSpecs() {
		ds, err := gen.Schema(spec)
		if err != nil {
			t.Fatalf("gen.Schema(%+v): %v", spec, err)
		}
		out[fmt.Sprintf("gen-seed%d", spec.Seed)] = ds
	}
	out["paper-location"] = paper.LocationSch()
	out["cmp-atoms"] = cmpSchema(t)
	return out
}

// cmpSchema builds a small heterogeneous schema whose constraints mix
// order atoms, negation and biconditionals.
func cmpSchema(t *testing.T) *core.DimensionSchema {
	t.Helper()
	ds, err := core.Parse(`schema cmp
edge Day -> Month -> All
edge Day -> Week -> All
constraint Day.Month="jan" -> Day_Month
constraint Day.Week < 10 -> Day_Week
constraint !(Day_Month & Day_Week)
`)
	if err != nil {
		t.Fatalf("cmpSchema: %v", err)
	}
	return ds
}

// optionVariants are the pruning ablations both engines must agree
// under (the compiled engine mirrors the interpreted one per switch).
func optionVariants() map[string]core.Options {
	return map[string]core.Options{
		"default":      {},
		"no-into":      {DisableIntoPruning: true},
		"no-structure": {DisableStructurePruning: true},
		"no-pruning":   {DisableIntoPruning: true, DisableStructurePruning: true},
	}
}

func mustCompile(t *testing.T, ds *core.DimensionSchema) *core.Compiled {
	t.Helper()
	cs, err := core.Compile(ds)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return cs
}

// requireSameResult compares everything a Result carries, witnesses by
// canonical key (edge insertion order differs between engines; Key and
// String are the canonical forms everything downstream serializes).
func requireSameResult(t *testing.T, label string, intRes, compRes core.Result, intErr, compErr error) {
	t.Helper()
	if (intErr == nil) != (compErr == nil) {
		t.Fatalf("%s: error mismatch: interpreted=%v compiled=%v", label, intErr, compErr)
	}
	if intErr != nil && intErr.Error() != compErr.Error() {
		t.Fatalf("%s: error text mismatch:\n  interpreted: %v\n  compiled:    %v", label, intErr, compErr)
	}
	if intRes.Satisfiable != compRes.Satisfiable {
		t.Fatalf("%s: verdict mismatch: interpreted=%v compiled=%v", label, intRes.Satisfiable, compRes.Satisfiable)
	}
	if intRes.Stats != compRes.Stats {
		t.Fatalf("%s: stats mismatch: interpreted=%+v compiled=%+v", label, intRes.Stats, compRes.Stats)
	}
	if (intRes.Witness == nil) != (compRes.Witness == nil) {
		t.Fatalf("%s: witness presence mismatch", label)
	}
	if intRes.Witness != nil && intRes.Witness.Key() != compRes.Witness.Key() {
		t.Fatalf("%s: witness mismatch:\n  interpreted: %s\n  compiled:    %s", label, intRes.Witness.Key(), compRes.Witness.Key())
	}
	if !reflect.DeepEqual(intRes.Checkpoint, compRes.Checkpoint) {
		t.Fatalf("%s: checkpoint mismatch:\n  interpreted: %+v\n  compiled:    %+v", label, intRes.Checkpoint, compRes.Checkpoint)
	}
}

func TestCompiledMatchesInterpretedSatisfiable(t *testing.T) {
	for name, ds := range diffSchemas(t) {
		cs := mustCompile(t, ds)
		for vname, opts := range optionVariants() {
			for _, c := range ds.G.SortedCategories() {
				label := fmt.Sprintf("%s/%s/%s", name, vname, c)
				intRes, intErr := core.Satisfiable(ds, c, opts)
				copts := opts
				copts.Compiled = cs
				compRes, compErr := core.Satisfiable(ds, c, copts)
				requireSameResult(t, label, intRes, compRes, intErr, compErr)
			}
		}
	}
}

func TestCompiledMatchesInterpretedImplies(t *testing.T) {
	for name, ds := range diffSchemas(t) {
		cs := mustCompile(t, ds)
		// Test every Σ constraint as an implication query (always implied)
		// plus summarizability constraints (may go either way).
		alphas := append([]constraint.Expr(nil), ds.Sigma...)
		cats := ds.G.SortedCategories()
		for _, cb := range ds.G.Bottoms() {
			alphas = append(alphas, core.SummarizabilityConstraint(cb, cats[len(cats)-1], cats[:1]))
		}
		for i, alpha := range alphas {
			label := fmt.Sprintf("%s/alpha%d", name, i)
			intOK, intRes, intErr := core.Implies(ds, alpha, core.Options{})
			compOK, compRes, compErr := core.Implies(ds, alpha, core.Options{Compiled: cs})
			if intOK != compOK {
				t.Fatalf("%s: implication verdict mismatch: interpreted=%v compiled=%v", label, intOK, compOK)
			}
			requireSameResult(t, label, intRes, compRes, intErr, compErr)
		}
	}
}

// diffTracer records both the Figure-7 Tracer stream (with the rendered
// live subhierarchy, proving the compiled engine's shadow graph tracks
// its bitsets) and the StructuredTracer stream with depths and prune
// heuristics.
type diffTracer struct {
	events []string
}

func (d *diffTracer) Expand(g *frozen.Subhierarchy, ctop string, R []string) {
	d.events = append(d.events, fmt.Sprintf("expand %s %v g=%s", ctop, R, g))
}

func (d *diffTracer) Check(g *frozen.Subhierarchy, induced bool) {
	d.events = append(d.events, fmt.Sprintf("check %v g=%s", induced, g))
}

func (d *diffTracer) ExpandStep(depth int, ctop string, R []string) {
	d.events = append(d.events, fmt.Sprintf("expand-step %d %s %v", depth, ctop, R))
}

func (d *diffTracer) CheckStep(depth int, induced bool) {
	d.events = append(d.events, fmt.Sprintf("check-step %d %v", depth, induced))
}

func (d *diffTracer) PruneStep(depth int, ctop, heuristic string) {
	d.events = append(d.events, fmt.Sprintf("prune-step %d %s %s", depth, ctop, heuristic))
}

func TestCompiledTraceParity(t *testing.T) {
	for name, ds := range diffSchemas(t) {
		cs := mustCompile(t, ds)
		for vname, opts := range optionVariants() {
			for _, c := range ds.G.SortedCategories() {
				intTr, compTr := &diffTracer{}, &diffTracer{}
				iopts := opts
				iopts.Tracer = intTr
				if _, err := core.Satisfiable(ds, c, iopts); err != nil {
					t.Fatalf("%s/%s/%s interpreted: %v", name, vname, c, err)
				}
				copts := opts
				copts.Tracer = compTr
				copts.Compiled = cs
				if _, err := core.Satisfiable(ds, c, copts); err != nil {
					t.Fatalf("%s/%s/%s compiled: %v", name, vname, c, err)
				}
				if !reflect.DeepEqual(intTr.events, compTr.events) {
					t.Fatalf("%s/%s/%s: trace mismatch (%d vs %d events)\nfirst divergence: %s",
						name, vname, c, len(intTr.events), len(compTr.events), firstDivergence(intTr.events, compTr.events))
				}
			}
		}
	}
}

func firstDivergence(a, b []string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("event %d:\n  interpreted: %s\n  compiled:    %s", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

// TestCompiledCheckpointInterchange suspends searches on each engine at
// several budgets and resumes them on the other engine (and itself),
// requiring the exact uninterrupted result either way.
func TestCompiledCheckpointInterchange(t *testing.T) {
	for name, ds := range diffSchemas(t) {
		cs := mustCompile(t, ds)
		for _, c := range ds.G.SortedCategories()[:3] {
			full, err := core.Satisfiable(ds, c, core.Options{})
			if err != nil {
				t.Fatalf("%s/%s full: %v", name, c, err)
			}
			for _, budget := range []int{1, 2, 5, 17} {
				if full.Stats.Expansions <= budget {
					continue
				}
				label := fmt.Sprintf("%s/%s/budget%d", name, c, budget)
				bopts := core.Options{MaxExpansions: budget, Checkpoint: &core.Checkpointing{}}
				intRes, intErr := core.Satisfiable(ds, c, bopts)
				cbopts := bopts
				cbopts.Compiled = cs
				compRes, compErr := core.Satisfiable(ds, c, cbopts)
				requireSameResult(t, label, intRes, compRes, intErr, compErr)
				if !errors.Is(intErr, core.ErrBudgetExceeded) || intRes.Checkpoint == nil {
					t.Fatalf("%s: expected budget abort with checkpoint, got %v", label, intErr)
				}
				// Resume each engine's checkpoint on both engines.
				for rname, ropts := range map[string]core.Options{
					"interpreted": {},
					"compiled":    {Compiled: cs},
				} {
					res, err := core.ResumeSatisfiable(ds, intRes.Checkpoint, ropts)
					if err != nil {
						t.Fatalf("%s resume on %s: %v", label, rname, err)
					}
					if res.Satisfiable != full.Satisfiable || res.Stats != full.Stats {
						t.Fatalf("%s resume on %s: got %v/%+v want %v/%+v",
							label, rname, res.Satisfiable, res.Stats, full.Satisfiable, full.Stats)
					}
					if (res.Witness == nil) != (full.Witness == nil) ||
						(res.Witness != nil && res.Witness.Key() != full.Witness.Key()) {
						t.Fatalf("%s resume on %s: witness mismatch", label, rname)
					}
				}
			}
		}
	}
}

// TestCompiledPeriodicCheckpointParity compares the periodic sink
// streams: both engines must emit identical snapshots at identical
// expansion counts.
func TestCompiledPeriodicCheckpointParity(t *testing.T) {
	ds := diffSchemas(t)["gen-seed6"]
	cs := mustCompile(t, ds)
	for _, c := range ds.G.SortedCategories()[:4] {
		var intCPs, compCPs []*core.Checkpoint
		iopts := core.Options{Checkpoint: &core.Checkpointing{Every: 3, Sink: func(cp *core.Checkpoint) error {
			intCPs = append(intCPs, cp)
			return nil
		}}}
		if _, err := core.Satisfiable(ds, c, iopts); err != nil {
			t.Fatalf("%s interpreted: %v", c, err)
		}
		copts := core.Options{Compiled: cs, Checkpoint: &core.Checkpointing{Every: 3, Sink: func(cp *core.Checkpoint) error {
			compCPs = append(compCPs, cp)
			return nil
		}}}
		if _, err := core.Satisfiable(ds, c, copts); err != nil {
			t.Fatalf("%s compiled: %v", c, err)
		}
		if !reflect.DeepEqual(intCPs, compCPs) {
			t.Fatalf("%s: periodic checkpoint streams differ (%d vs %d)", c, len(intCPs), len(compCPs))
		}
	}
}

// TestCompiledBatchSurfaceParity runs the batch entry points with and
// without the compiled form and requires identical reports.
func TestCompiledBatchSurfaceParity(t *testing.T) {
	for _, name := range []string{"gen-seed4", "gen-seed6", "paper-location", "cmp-atoms"} {
		ds := diffSchemas(t)[name]
		cs := mustCompile(t, ds)
		iopts := core.Options{Parallelism: 1}
		copts := core.Options{Parallelism: 1, Compiled: cs}

		intUnsat, err1 := core.UnsatisfiableCategoriesContext(context.Background(), ds, iopts)
		compUnsat, err2 := core.UnsatisfiableCategoriesContext(context.Background(), ds, copts)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s unsat: %v / %v", name, err1, err2)
		}
		if !reflect.DeepEqual(intUnsat, compUnsat) {
			t.Fatalf("%s unsat mismatch: %v vs %v", name, intUnsat, compUnsat)
		}

		intM, err1 := core.SummarizabilityMatrix(ds, iopts)
		compM, err2 := core.SummarizabilityMatrix(ds, copts)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s matrix: %v / %v", name, err1, err2)
		}
		if !reflect.DeepEqual(intM, compM) {
			t.Fatalf("%s matrix mismatch:\n%s\nvs\n%s", name, intM, compM)
		}

		intL, err1 := core.Lint(ds, iopts)
		compL, err2 := core.Lint(ds, copts)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s lint: %v / %v", name, err1, err2)
		}
		if !reflect.DeepEqual(intL, compL) {
			t.Fatalf("%s lint mismatch: %+v vs %+v", name, intL, compL)
		}
	}
}

// TestCompiledSatCacheSharing proves compiled and interpreted calls hit
// the same cache entries: the fingerprint keys agree across engines.
func TestCompiledSatCacheSharing(t *testing.T) {
	ds := paper.LocationSch()
	cs := mustCompile(t, ds)
	cache := core.NewSatCache()
	c := ds.G.SortedCategories()[1]

	intRes, err := core.Satisfiable(ds, c, core.Options{Cache: cache})
	if err != nil {
		t.Fatalf("interpreted: %v", err)
	}
	if intRes.Stats.Expansions == 0 {
		t.Fatalf("expected a real search on the miss")
	}
	compRes, err := core.Satisfiable(ds, c, core.Options{Cache: cache, Compiled: cs})
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	if compRes.Stats != (core.Stats{}) {
		t.Fatalf("compiled call should hit the interpreted call's cache entry, got stats %+v", compRes.Stats)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats: %+v, want 1 hit 1 miss", st)
	}
}

func TestCompiledMismatchRejected(t *testing.T) {
	ds1 := paper.LocationSch()
	ds2, err := gen.Schema(gen.SchemaSpec{Seed: 1, Categories: 6, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	cs := mustCompile(t, ds1)
	c := ds2.G.SortedCategories()[1]
	if _, err := core.Satisfiable(ds2, c, core.Options{Compiled: cs}); !errors.Is(err, core.ErrCompiledMismatch) {
		t.Fatalf("Satisfiable: got %v, want ErrCompiledMismatch", err)
	}
	// An alpha valid in ds2's graph, so the mismatch is detected by the
	// compiled-schema pin rather than constraint validation.
	alpha := constraint.RollupAtom{RootCat: c, Cat: "All"}
	if _, _, err := core.Implies(ds2, alpha, core.Options{Compiled: cs}); !errors.Is(err, core.ErrCompiledMismatch) {
		t.Fatalf("Implies: got %v, want ErrCompiledMismatch", err)
	}
	cp := &core.Checkpoint{Version: core.CheckpointVersion, Schema: cs.Fingerprint(), Root: c, IntoPruning: true, StructurePruning: true}
	if _, err := core.ResumeSatisfiable(ds2, cp, core.Options{Compiled: cs}); !errors.Is(err, core.ErrCompiledMismatch) {
		t.Fatalf("Resume: got %v, want ErrCompiledMismatch", err)
	}
}

func TestCompiledAccessors(t *testing.T) {
	ds := paper.LocationSch()
	cs := mustCompile(t, ds)
	if cs.Source() != ds {
		t.Fatalf("Source should return the compiled schema")
	}
	if cs.Fingerprint() != core.Fingerprint(ds) {
		t.Fatalf("Fingerprint mismatch: %s vs %s", cs.Fingerprint(), core.Fingerprint(ds))
	}
	st := cs.Stats()
	if st.Categories != len(ds.G.SortedCategories()) || st.Constraints != len(ds.Sigma) {
		t.Fatalf("Stats shape: %+v", st)
	}
	if st.Compiles != 1 || st.CompileSeconds <= 0 {
		t.Fatalf("Stats compile counters: %+v", st)
	}

	// Derive caches by constraint and shares the counters.
	alpha := ds.Sigma[0]
	d1, err := cs.Derive(constraint.Not{X: alpha})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := cs.Derive(constraint.Not{X: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("Derive should cache")
	}
	st = cs.Stats()
	if st.Compiles != 2 || st.DeriveMisses != 1 || st.DeriveHits != 1 {
		t.Fatalf("derive counters: %+v", st)
	}
	if d1.Fingerprint() == cs.Fingerprint() {
		t.Fatalf("derived schema should have a different fingerprint")
	}
	// The derived source is content-identical to the ImpliesReduction neg
	// schema, so fingerprints (checkpoint pins, cache keys) agree.
	neg, _, _, decided, err := core.ImpliesReduction(ds, alpha)
	if err != nil || decided {
		t.Fatalf("reduction: %v %v", decided, err)
	}
	if d1.Fingerprint() != core.Fingerprint(neg) {
		t.Fatalf("derived fingerprint should match the reduction's neg schema")
	}
}

func TestCompileRejectsInvalidSchema(t *testing.T) {
	ds, err := gen.Schema(gen.SchemaSpec{Seed: 1, Categories: 6, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := core.NewDimensionSchema(ds.G, constraint.RollupAtom{RootCat: ds.G.SortedCategories()[1], Cat: "nope"})
	if _, err := core.Compile(bad); err == nil {
		t.Fatalf("Compile should reject an invalid schema")
	}
}

// TestCompiledEnumerateFrozenIgnoresCompiled pins the documented
// behavior: enumeration always runs interpreted, compiled option or not.
func TestCompiledEnumerateFrozenIgnoresCompiled(t *testing.T) {
	ds := paper.LocationSch()
	cs := mustCompile(t, ds)
	root := ds.G.SortedCategories()[1]
	plain, err := core.EnumerateFrozen(ds, root, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	with, err := core.EnumerateFrozen(ds, root, core.Options{Compiled: cs})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(with) {
		t.Fatalf("enumeration changed: %d vs %d", len(plain), len(with))
	}
	for i := range plain {
		if plain[i].Key() != with[i].Key() {
			t.Fatalf("enumeration order changed at %d", i)
		}
	}
}

// TestCompiledProvenanceParity extends the differential oracle to the
// touched-set accounting: provenance-enabled runs must return identical
// Provenance — categories, edges, Σ indices, frontier — on both engines,
// while leaving verdicts, stats and witnesses bit-identical to a
// provenance-free run.
func TestCompiledProvenanceParity(t *testing.T) {
	for name, ds := range diffSchemas(t) {
		cs := mustCompile(t, ds)
		for vname, opts := range optionVariants() {
			for _, c := range ds.G.SortedCategories() {
				label := fmt.Sprintf("%s/%s/%s", name, vname, c)
				iopts := opts
				iopts.Provenance = true
				intRes, intErr := core.Satisfiable(ds, c, iopts)
				copts := iopts
				copts.Compiled = cs
				compRes, compErr := core.Satisfiable(ds, c, copts)
				requireSameResult(t, label, intRes, compRes, intErr, compErr)
				if intRes.Provenance == nil || compRes.Provenance == nil {
					t.Fatalf("%s: provenance missing: interpreted=%v compiled=%v", label, intRes.Provenance, compRes.Provenance)
				}
				if !reflect.DeepEqual(intRes.Provenance, compRes.Provenance) {
					t.Fatalf("%s: provenance mismatch:\n  interpreted: %+v\n  compiled:    %+v", label, intRes.Provenance, compRes.Provenance)
				}
				// The touched set must cover the root and stay inside the
				// schema's vocabulary.
				for _, cat := range intRes.Provenance.Categories {
					if !ds.G.HasCategory(cat) {
						t.Fatalf("%s: touched unknown category %q", label, cat)
					}
				}
				for _, idx := range intRes.Provenance.Sigma {
					if idx < 0 || idx >= len(ds.Sigma) {
						t.Fatalf("%s: touched Σ index %d out of range", label, idx)
					}
				}
				// Collecting provenance must not perturb the search.
				plain, plainErr := core.Satisfiable(ds, c, opts)
				requireSameResult(t, label+"/plain-vs-prov", plain, intRes, plainErr, intErr)
				if plain.Provenance != nil {
					t.Fatalf("%s: provenance present without Options.Provenance", label)
				}
			}
		}
	}
}

// TestExplainCoreParity runs Explain on both engines over every category
// of every differential schema and requires identical explanations:
// verdict, provenance, core, frontier, probe counts and probe stats.
func TestExplainCoreParity(t *testing.T) {
	for name, ds := range diffSchemas(t) {
		cs := mustCompile(t, ds)
		for vname, opts := range optionVariants() {
			for _, c := range ds.G.SortedCategories() {
				label := fmt.Sprintf("%s/%s/%s", name, vname, c)
				intEx, intErr := core.Explain(ds, c, opts)
				copts := opts
				copts.Compiled = cs
				compEx, compErr := core.Explain(ds, c, copts)
				if (intErr == nil) != (compErr == nil) ||
					(intErr != nil && intErr.Error() != compErr.Error()) {
					t.Fatalf("%s: error mismatch: %v vs %v", label, intErr, compErr)
				}
				if intEx.Satisfiable != compEx.Satisfiable {
					t.Fatalf("%s: verdict mismatch", label)
				}
				if !reflect.DeepEqual(intEx.Provenance, compEx.Provenance) {
					t.Fatalf("%s: provenance mismatch:\n  interpreted: %+v\n  compiled:    %+v", label, intEx.Provenance, compEx.Provenance)
				}
				if !reflect.DeepEqual(intEx.Core, compEx.Core) {
					t.Fatalf("%s: core mismatch: %v vs %v", label, intEx.Core, compEx.Core)
				}
				if !reflect.DeepEqual(intEx.Frontier, compEx.Frontier) {
					t.Fatalf("%s: frontier mismatch: %v vs %v", label, intEx.Frontier, compEx.Frontier)
				}
				if intEx.Probes != compEx.Probes || intEx.ProbeStats != compEx.ProbeStats {
					t.Fatalf("%s: probe effort mismatch: %d/%+v vs %d/%+v",
						label, intEx.Probes, intEx.ProbeStats, compEx.Probes, compEx.ProbeStats)
				}
			}
		}
	}
}

// sigmaSubset builds the schema keeping only the Σ members at the given
// indices, mirroring what the shrink loop probes.
func sigmaSubset(ds *core.DimensionSchema, keep []int) *core.DimensionSchema {
	sigma := make([]constraint.Expr, 0, len(keep))
	for _, i := range keep {
		sigma = append(sigma, ds.Sigma[i])
	}
	return core.NewDimensionSchema(ds.G, sigma...)
}

// requireCoreMinimal checks the minimality contract: the core subset is
// UNSAT as-is and removing any single member flips the verdict to SAT.
func requireCoreMinimal(t *testing.T, label string, ds *core.DimensionSchema, c string, coreIdx []int, opts core.Options) {
	t.Helper()
	res, err := core.Satisfiable(sigmaSubset(ds, coreIdx), c, opts)
	if errors.Is(err, core.ErrBudgetExceeded) {
		t.Skipf("%s: verification budget exhausted", label)
	}
	if err != nil {
		t.Fatalf("%s: core verification run: %v", label, err)
	}
	if res.Satisfiable {
		t.Fatalf("%s: core %v is not UNSAT-forcing", label, coreIdx)
	}
	for drop := range coreIdx {
		rest := append(append([]int(nil), coreIdx[:drop]...), coreIdx[drop+1:]...)
		res, err := core.Satisfiable(sigmaSubset(ds, rest), c, opts)
		if errors.Is(err, core.ErrBudgetExceeded) {
			t.Skipf("%s: verification budget exhausted", label)
		}
		if err != nil {
			t.Fatalf("%s: minimality probe without σ%d: %v", label, coreIdx[drop], err)
		}
		if !res.Satisfiable {
			t.Fatalf("%s: core %v is not minimal: still UNSAT without σ%d", label, coreIdx, coreIdx[drop])
		}
	}
}

// TestExplainCoreMinimal verifies the minimality contract on every UNSAT
// category of the differential schemas.
func TestExplainCoreMinimal(t *testing.T) {
	for name, ds := range diffSchemas(t) {
		for _, c := range ds.G.SortedCategories() {
			ex, err := core.Explain(ds, c, core.Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, c, err)
			}
			if ex.Satisfiable {
				if ex.Core != nil {
					t.Fatalf("%s/%s: SAT verdict carries a core", name, c)
				}
				continue
			}
			requireCoreMinimal(t, name+"/"+c, ds, c, ex.Core, core.Options{})
		}
	}
}

// FuzzCompiledVsInterpreted drives the differential oracle from fuzzed
// generator parameters and budgets; wired into make fuzz-smoke.
func FuzzCompiledVsInterpreted(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(3), uint8(30), uint8(50), uint8(2), uint8(40), uint8(40), uint16(0))
	f.Add(int64(7), uint8(10), uint8(4), uint8(40), uint8(30), uint8(3), uint8(30), uint8(50), uint16(9))
	f.Add(int64(42), uint8(8), uint8(2), uint8(60), uint8(80), uint8(0), uint8(0), uint8(20), uint16(25))
	f.Fuzz(func(t *testing.T, seed int64, cats, levels, edgeP, choiceP, consts, condP, intoP uint8, budget uint16) {
		spec := gen.SchemaSpec{
			Seed:          seed,
			Categories:    2 + int(cats%12),
			Levels:        2 + int(levels%4),
			ExtraEdgeProb: float64(edgeP%100) / 100,
			ChoiceProb:    float64(choiceP%100) / 100,
			Constants:     int(consts % 5),
			CondProb:      float64(condP%100) / 100,
			IntoFrac:      float64(intoP%100) / 100,
		}
		ds, err := gen.Schema(spec)
		if err != nil {
			t.Skip()
		}
		cs, err := core.Compile(ds)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		opts := core.Options{Checkpoint: &core.Checkpointing{}}
		// A zero fuzzed budget caps the run anyway so pathological
		// schemas cannot stall the fuzzer.
		opts.MaxExpansions = 1 + int(budget%2000)
		for _, c := range ds.G.SortedCategories() {
			intRes, intErr := core.Satisfiable(ds, c, opts)
			copts := opts
			copts.Compiled = cs
			compRes, compErr := core.Satisfiable(ds, c, copts)
			if (intErr == nil) != (compErr == nil) ||
				(intErr != nil && intErr.Error() != compErr.Error()) {
				t.Fatalf("%s: error mismatch: %v vs %v", c, intErr, compErr)
			}
			if intRes.Satisfiable != compRes.Satisfiable || intRes.Stats != compRes.Stats {
				t.Fatalf("%s: result mismatch: %+v vs %+v", c, intRes, compRes)
			}
			if (intRes.Witness == nil) != (compRes.Witness == nil) ||
				(intRes.Witness != nil && intRes.Witness.Key() != compRes.Witness.Key()) {
				t.Fatalf("%s: witness mismatch", c)
			}
			if !reflect.DeepEqual(intRes.Checkpoint, compRes.Checkpoint) {
				t.Fatalf("%s: checkpoint mismatch: %+v vs %+v", c, intRes.Checkpoint, compRes.Checkpoint)
			}
		}
	})
}

// FuzzExplainCoreMinimal fuzzes generator parameters and requires every
// core Explain returns to be genuinely minimal: the subset is UNSAT as-is
// and dropping any single member makes the category satisfiable. Budget
// aborts (which return unminimized partial cores by contract) are
// skipped; wired into make fuzz-smoke.
func FuzzExplainCoreMinimal(f *testing.F) {
	f.Add(int64(3), uint8(8), uint8(2), uint8(60), uint8(80), uint8(2), uint8(40), uint8(40))
	f.Add(int64(11), uint8(10), uint8(3), uint8(40), uint8(50), uint8(3), uint8(60), uint8(60))
	f.Add(int64(42), uint8(6), uint8(2), uint8(50), uint8(90), uint8(0), uint8(0), uint8(30))
	f.Fuzz(func(t *testing.T, seed int64, cats, levels, edgeP, choiceP, consts, condP, intoP uint8) {
		spec := gen.SchemaSpec{
			Seed:          seed,
			Categories:    2 + int(cats%10),
			Levels:        2 + int(levels%3),
			ExtraEdgeProb: float64(edgeP%100) / 100,
			ChoiceProb:    float64(choiceP%100) / 100,
			Constants:     int(consts % 4),
			CondProb:      float64(condP%100) / 100,
			IntoFrac:      float64(intoP%100) / 100,
		}
		ds, err := gen.Schema(spec)
		if err != nil {
			t.Skip()
		}
		// The total Explain budget bounds pathological schemas; an
		// exhausted budget returns a partial (unminimized) core, which the
		// contract exempts from minimality, so those are skipped.
		opts := core.Options{MaxExpansions: 20000}
		vopts := core.Options{MaxExpansions: 20000}
		for _, c := range ds.G.SortedCategories() {
			ex, err := core.Explain(ds, c, opts)
			if err != nil {
				continue
			}
			if ex.Satisfiable {
				continue
			}
			requireCoreMinimal(t, c, ds, c, ex.Core, vopts)
		}
	})
}
