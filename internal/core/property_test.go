package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"olapdim/internal/constraint"
	"olapdim/internal/frozen"
	"olapdim/internal/schema"
)

// randomDS builds a small random dimension schema with a constraint mix
// covering path, rollup, through and equality atoms under all connectives.
// Kept small so the naive oracle stays tractable.
func randomDS(rng *rand.Rand) *DimensionSchema {
	g := schema.New("prop")
	n := 3 + rng.Intn(3) // 3..5 categories besides All
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	for i, c := range names {
		later := names[i+1:]
		if len(later) == 0 || rng.Intn(4) == 0 {
			g.AddEdge(c, schema.All)
		} else {
			g.AddEdge(c, later[rng.Intn(len(later))])
		}
		for _, p := range later {
			if rng.Intn(3) == 0 {
				g.AddEdge(c, p)
			}
		}
	}
	ds := NewDimensionSchema(g)
	nCons := rng.Intn(4)
	for i := 0; i < nCons; i++ {
		e := randomConstraint(rng, g, names)
		if e != nil && constraint.Validate(e, g) == nil {
			ds.Sigma = append(ds.Sigma, e)
		}
	}
	return ds
}

func randomConstraint(rng *rand.Rand, g *schema.Schema, names []string) constraint.Expr {
	root := names[rng.Intn(len(names))]
	atom := func() constraint.Expr {
		switch rng.Intn(5) {
		case 0:
			outs := g.Out(root)
			p := outs[rng.Intn(len(outs))]
			if p == schema.All {
				return constraint.RollupAtom{RootCat: root, Cat: schema.All}
			}
			return constraint.NewPath(root, p)
		case 1:
			return constraint.RollupAtom{RootCat: root, Cat: names[rng.Intn(len(names))]}
		case 2:
			return constraint.ThroughAtom{
				RootCat: root,
				Via:     names[rng.Intn(len(names))],
				Cat:     names[rng.Intn(len(names))],
			}
		case 3:
			return constraint.EqAtom{
				RootCat: root,
				Cat:     names[rng.Intn(len(names))],
				Val:     []string{"k1", "k2", "5"}[rng.Intn(3)],
			}
		default:
			// Order atoms (the Section 6 extension) join the mix so the
			// naive oracle cross-validates the value-domain machinery.
			return constraint.CmpAtom{
				RootCat: root,
				Cat:     names[rng.Intn(len(names))],
				Op:      constraint.CmpOp(rng.Intn(4)),
				Val:     float64(rng.Intn(3)*5 - 5),
			}
		}
	}
	var build func(depth int) constraint.Expr
	build = func(depth int) constraint.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return atom()
		}
		switch rng.Intn(6) {
		case 0:
			return constraint.Not{X: build(depth - 1)}
		case 1:
			return constraint.NewAnd(build(depth-1), build(depth-1))
		case 2:
			return constraint.NewOr(build(depth-1), build(depth-1))
		case 3:
			return constraint.Implies{A: build(depth - 1), B: build(depth - 1)}
		case 4:
			return constraint.Iff{A: build(depth - 1), B: build(depth - 1)}
		default:
			return constraint.NewOne(build(depth-1), build(depth-1))
		}
	}
	return build(2)
}

// TestDimsatAgreesWithNaive is experiment T3: on random schemas, DIMSAT
// (with every heuristic enabled, and with each disabled) answers category
// satisfiability exactly like the brute-force Theorem 3 enumeration, which
// shares no pruning or circle-operator code with it.
func TestDimsatAgreesWithNaive(t *testing.T) {
	variants := []Options{
		{},
		{DisableIntoPruning: true},
		{DisableStructurePruning: true},
		{DisableIntoPruning: true, DisableStructurePruning: true},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDS(rng)
		if err := ds.Validate(); err != nil {
			return true // skip rare degenerate draws
		}
		for _, c := range ds.G.Categories() {
			if c == schema.All {
				continue
			}
			want, err := frozen.NaiveSatisfiable(ds.G, ds.Sigma, c)
			if err != nil {
				t.Logf("naive error: %v", err)
				return false
			}
			for _, opts := range variants {
				res, err := Satisfiable(ds, c, opts)
				if err != nil {
					t.Logf("dimsat error: %v", err)
					return false
				}
				if res.Satisfiable != want {
					t.Logf("disagreement on %s (opts %+v): dimsat=%v naive=%v\nschema:\n%s",
						c, opts, res.Satisfiable, want, ds)
					return false
				}
				if res.Satisfiable {
					consts := constraint.ConstMap(ds.Sigma)
					inst, err := res.Witness.ToInstance(ds.G, consts)
					if err != nil || inst.Validate() != nil || !inst.SatisfiesAll(ds.Sigma) {
						t.Logf("invalid witness for %s: %v\n%s", c, err, ds)
						return false
					}
				}
			}
		}
		return true
	}
	n := 120
	if testing.Short() {
		n = 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// TestEnumerateAgreesWithNaive: the DIMSAT-driven frozen dimension
// enumeration finds exactly the frozen dimensions the naive edge-subset
// enumeration finds.
func TestEnumerateAgreesWithNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDS(rng)
		if err := ds.Validate(); err != nil {
			return true
		}
		for _, c := range ds.G.Categories() {
			if c == schema.All {
				continue
			}
			fast, err := EnumerateFrozen(ds, c, Options{})
			if err != nil {
				return false
			}
			slow, err := frozen.EnumerateFrozen(ds.G, ds.Sigma, c)
			if err != nil {
				return false
			}
			if len(fast) != len(slow) {
				t.Logf("enumeration mismatch for %s: dimsat=%d naive=%d\n%s",
					c, len(fast), len(slow), ds)
				return false
			}
			for i := range fast {
				if fast[i].Key() != slow[i].Key() {
					t.Logf("frozen %d differs: %s vs %s", i, fast[i], slow[i])
					return false
				}
				// Every enumerated frozen dimension is a valid Definition 7
				// subhierarchy, acyclic and shortcut-free.
				if err := fast[i].G.Validate(ds.G); err != nil {
					t.Logf("frozen %d invalid: %v", i, err)
					return false
				}
				if !fast[i].G.Acyclic() || !fast[i].G.ShortcutFree() {
					t.Logf("frozen %d has a cycle or shortcut: %s", i, fast[i])
					return false
				}
			}
		}
		return true
	}
	n := 80
	if testing.Short() {
		n = 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// TestImpliesConsistency: Theorem 2 sanity on random schemas — for any
// constraint alpha over a satisfiable root, exactly one of "alpha implied"
// and "¬alpha satisfiable together with Σ" holds; and implication is
// reflexive on Σ members.
func TestImpliesConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDS(rng)
		if err := ds.Validate(); err != nil {
			return true
		}
		// Σ members are always implied.
		for _, e := range ds.Sigma {
			implied, _, err := Implies(ds, e, Options{})
			if err != nil {
				continue
			}
			if !implied {
				root, _ := constraint.Root(e)
				res, _ := Satisfiable(ds, root, Options{})
				// A Σ member can only be "not implied" if never vacuous…
				// it cannot: d ⊨ Σ includes e. Fail.
				t.Logf("sigma member %s not implied (root %s sat=%v)\n%s",
					e, root, res.Satisfiable, ds)
				return false
			}
		}
		return true
	}
	n := 120
	if testing.Short() {
		n = 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// TestSigmaOrderInvariance: satisfiability does not depend on the order of
// the constraints in Σ (the search explores subsets deterministically, but
// the verdict must be order independent).
func TestSigmaOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDS(rng)
		if err := ds.Validate(); err != nil || len(ds.Sigma) < 2 {
			return true
		}
		shuffled := append([]constraint.Expr(nil), ds.Sigma...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		ds2 := NewDimensionSchema(ds.G, shuffled...)
		for _, c := range ds.G.Categories() {
			if c == schema.All {
				continue
			}
			a, err := Satisfiable(ds, c, Options{})
			if err != nil {
				return false
			}
			b, err := Satisfiable(ds2, c, Options{})
			if err != nil {
				return false
			}
			if a.Satisfiable != b.Satisfiable {
				t.Logf("order dependence on %s:\n%s", c, ds)
				return false
			}
		}
		return true
	}
	n := 80
	if testing.Short() {
		n = 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}
