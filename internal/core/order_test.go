package core

import (
	"testing"

	"olapdim/internal/constraint"
	"olapdim/internal/instance"
)

// priceSchema realizes the Section 6 motivating sentence: "if the value of
// the price of a product is less than a given amount, the product rolls up
// to some particular path in the hierarchy schema". Products carry a Price
// ancestor; cheap products (price < 100) roll up through Discount, the
// rest through Premium.
const priceSchema = `
schema pricing
edge Product -> Price -> All
edge Product -> Discount -> Segment -> All
edge Product -> Premium -> Segment

constraint Product_Price
constraint one(Product_Discount, Product_Premium)
constraint Product.Price < 100 <-> Product_Discount
`

func TestOrderAtomsSatisfiability(t *testing.T) {
	ds := parse(t, priceSchema)
	for _, c := range []string{"Product", "Price", "Discount", "Premium", "Segment"} {
		res, err := Satisfiable(ds, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfiable {
			t.Errorf("%s should be satisfiable", c)
		}
	}
	// Both branch structures exist as frozen dimensions, distinguished by
	// the price region.
	fs, err := EnumerateFrozen(ds, "Product", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var viaDiscount, viaPremium int
	for _, f := range fs {
		if f.G.HasEdge("Product", "Discount") {
			viaDiscount++
			v, ok := constraint.NumValue(f.Assign.Get("Price"))
			if !ok || v >= 100 {
				t.Errorf("discount frozen dimension with price %q", f.Assign.Get("Price"))
			}
		}
		if f.G.HasEdge("Product", "Premium") {
			viaPremium++
			// Premium requires NOT(price < 100): numeric >= 100 or a
			// non-numeric name.
			if v, ok := constraint.NumValue(f.Assign.Get("Price")); ok && v < 100 {
				t.Errorf("premium frozen dimension with price %v", v)
			}
		}
	}
	if viaDiscount == 0 || viaPremium == 0 {
		t.Errorf("both branches must be realizable: discount=%d premium=%d", viaDiscount, viaPremium)
	}
}

func TestOrderAtomsImplication(t *testing.T) {
	ds := parse(t, priceSchema)
	cases := []struct {
		src  string
		want bool
	}{
		// Cheap products pass through Discount on the way to Segment.
		{"Product.Price < 100 -> Product.Discount.Segment", true},
		// <= 50 implies < 100.
		{"Product.Price <= 50 -> Product_Discount", true},
		// > 200 implies not < 100, hence Premium.
		{"Product.Price > 200 -> Product_Premium", true},
		// A price below 100 does not follow from Discount alone… it does:
		// the biconditional forces it.
		{"Product_Discount -> Product.Price < 100", true},
		// Boundary: exactly 100 is not < 100, so Premium.
		{"Product.Price >= 100 -> Product_Premium", true},
		// < 150 does NOT determine the branch (both regions fit under it).
		{"Product.Price < 150 -> Product_Discount", false},
		// Nothing forces prices to be bounded.
		{"Product.Price < 1000000", false},
	}
	for _, c := range cases {
		alpha, err := ParseConstraint(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		got, res, err := Implies(ds, alpha, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("implied(%s) = %v, want %v (witness %v)", c.src, got, c.want, res.Witness)
		}
	}
}

func TestOrderAtomsSummarizability(t *testing.T) {
	ds := parse(t, priceSchema)
	// Every product reaches Segment through exactly one of Discount and
	// Premium, so Segment is summarizable from them.
	rep, err := Summarizable(ds, "Segment", []string{"Discount", "Premium"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Summarizable() {
		t.Error("Segment should be summarizable from {Discount, Premium}")
	}
	rep, err = Summarizable(ds, "Segment", []string{"Discount"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summarizable() {
		t.Error("Segment is not summarizable from {Discount} alone (premium products missed)")
	}
}

func TestOrderAtomsUnsat(t *testing.T) {
	// Contradictory price regions kill the category.
	ds := parse(t, `
edge Product -> Price -> All
constraint Product_Price
constraint Product.Price < 10
constraint Product.Price > 20
`)
	res, err := Satisfiable(ds, "Product", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Error("contradictory price regions satisfiable")
	}
	// Overlapping regions are fine.
	ds2 := parse(t, `
edge Product -> Price -> All
constraint Product_Price
constraint Product.Price < 20
constraint Product.Price > 10
`)
	res, err = Satisfiable(ds2, "Product", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Error("overlapping price regions unsatisfiable")
	}
	// Boundary subtlety: <= 10 and >= 10 meet exactly at 10.
	ds3 := parse(t, `
edge Product -> Price -> All
constraint Product_Price
constraint Product.Price <= 10
constraint Product.Price >= 10
`)
	res, err = Satisfiable(ds3, "Product", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Error("touching price regions must be satisfiable at the boundary")
	}
	if res.Witness.Assign.Get("Price") != "10" {
		t.Errorf("boundary witness price = %q, want 10", res.Witness.Assign.Get("Price"))
	}
}

// TestOrderAtomsInstanceSemantics pins the member-level evaluation of
// order atoms, including non-numeric names.
func TestOrderAtomsInstanceSemantics(t *testing.T) {
	ds := parse(t, priceSchema)
	d := instance.New(ds.G)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddMember("Product", "p1"))
	must(d.AddMember("Price", "price1"))
	must(d.SetName("price1", "49.5"))
	must(d.AddMember("Discount", "disc"))
	must(d.AddMember("Segment", "seg"))
	must(d.AddLink("p1", "price1"))
	must(d.AddLink("price1", instance.AllMember))
	must(d.AddLink("p1", "disc"))
	must(d.AddLink("disc", "seg"))
	must(d.AddLink("seg", instance.AllMember))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.SatisfiesAll(ds.Sigma) {
		t.Fatal("cheap product instance violates sigma")
	}
	lt := constraint.CmpAtom{RootCat: "Product", Cat: "Price", Op: constraint.Lt, Val: 100}
	if !d.MemberSatisfies("p1", lt) {
		t.Error("49.5 < 100 must hold")
	}
	gt := constraint.CmpAtom{RootCat: "Product", Cat: "Price", Op: constraint.Gt, Val: 49.5}
	if d.MemberSatisfies("p1", gt) {
		t.Error("49.5 > 49.5 must not hold")
	}
	ge := constraint.CmpAtom{RootCat: "Product", Cat: "Price", Op: constraint.Ge, Val: 49.5}
	if !d.MemberSatisfies("p1", ge) {
		t.Error("49.5 >= 49.5 must hold")
	}
	// Non-numeric names never satisfy order atoms.
	must(d.SetName("price1", "expensive"))
	if d.MemberSatisfies("p1", lt) {
		t.Error("non-numeric price satisfied an order atom")
	}
	// …and now the biconditional (price<100 <-> Discount) is violated.
	if d.SatisfiesAll(ds.Sigma) {
		t.Error("non-numeric price on a Discount product must violate sigma")
	}
}
