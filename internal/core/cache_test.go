package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"olapdim/internal/faults"
)

func TestSatCacheAgreesWithUncached(t *testing.T) {
	ds := parse(t, diamondSrc+"constraint !A_D\n")
	cache := NewSatCache()
	for _, c := range []string{"A", "B", "C", "D"} {
		plain, err := Satisfiable(ds, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cached, err := Satisfiable(ds, c, Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Satisfiable != cached.Satisfiable {
			t.Errorf("%s: cached = %v, uncached = %v", c, cached.Satisfiable, plain.Satisfiable)
		}
	}
}

// TestSatCacheConcurrentSingleflight hammers one cache from many
// goroutines (run under -race) and checks that every key is computed
// exactly once: misses == unique (schema, root) keys, everything else a
// hit.
func TestSatCacheConcurrentSingleflight(t *testing.T) {
	ds := parse(t, diamondSrc+"constraint one(A_B, A_C)\n")
	cats := []string{"A", "B", "C", "D"}
	cache := NewSatCache()
	const goroutines = 16
	const rounds = 8

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, c := range cats {
					res, err := SatisfiableContext(context.Background(), ds, c, Options{Cache: cache})
					if err != nil {
						errs <- err
						return
					}
					if !res.Satisfiable {
						errs <- errors.New(c + " reported unsatisfiable")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cs := cache.Stats()
	wantMisses := uint64(len(cats))
	if cs.Misses != wantMisses {
		t.Errorf("misses = %d, want %d (one compute per key)", cs.Misses, wantMisses)
	}
	total := uint64(goroutines * rounds * len(cats))
	if cs.Hits != total-wantMisses {
		t.Errorf("hits = %d, want %d", cs.Hits, total-wantMisses)
	}
	if cs.Entries != len(cats) {
		t.Errorf("entries = %d, want %d", cs.Entries, len(cats))
	}
	if cs.Work.Expansions == 0 {
		t.Error("cache recorded no search work")
	}
	if rate := cs.HitRate(); rate <= 0.9 {
		t.Errorf("hit rate = %f, want > 0.9", rate)
	}
}

func TestSatCacheDoesNotCacheFailures(t *testing.T) {
	ds := parse(t, hardUnsatSrc(3, 2))
	cache := NewSatCache()
	_, err := SatisfiableContext(context.Background(), ds, "C0", Options{Cache: cache, MaxExpansions: 5})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if cs := cache.Stats(); cs.Entries != 0 {
		t.Fatalf("failed run was cached: %+v", cs)
	}
	// A later, unbudgeted call must recompute and succeed.
	res, err := SatisfiableContext(context.Background(), ds, "C0", Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Error("contradictory schema reported satisfiable")
	}
	if cs := cache.Stats(); cs.Entries != 1 || cs.Misses != 1 {
		t.Errorf("cache after retry = %+v, want 1 entry / 1 miss", cs)
	}
}

func TestSatCacheDistinguishesSchemas(t *testing.T) {
	free := parse(t, diamondSrc)
	dead := parse(t, diamondSrc+"constraint !A_D\nconstraint A_D\n")
	cache := NewSatCache()
	r1, err := Satisfiable(free, "A", Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Satisfiable(dead, "A", Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Satisfiable || r2.Satisfiable {
		t.Errorf("fingerprint collision: free = %v, dead = %v", r1.Satisfiable, r2.Satisfiable)
	}
	if cs := cache.Stats(); cs.Entries != 2 {
		t.Errorf("entries = %d, want 2 distinct schema keys", cs.Entries)
	}
}

func TestMatrixParallelMatchesSerial(t *testing.T) {
	ds := parse(t, diamondSrc+"constraint one(A_B, A_C)\nconstraint !A_D\n")
	serial, err := SummarizabilityMatrix(ds, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SummarizabilityMatrixContext(context.Background(), ds, Options{Parallelism: 8, Cache: NewSatCache()})
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("matrices differ:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

func TestMinimalSourcesParallelMatchesSerial(t *testing.T) {
	ds := parse(t, diamondSrc+"constraint one(A_B, A_C)\n")
	serial, err := MinimalSources(ds, "D", 2, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MinimalSourcesContext(context.Background(), ds, "D", 2, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial = %v, parallel = %v", serial, parallel)
	}
	for i := range serial {
		if len(serial[i]) != len(parallel[i]) {
			t.Fatalf("order differs at %d: serial = %v, parallel = %v", i, serial, parallel)
		}
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Fatalf("order differs at %d: serial = %v, parallel = %v", i, serial, parallel)
			}
		}
	}
}

func TestLintParallelMatchesSerial(t *testing.T) {
	ds := parse(t, diamondSrc+"constraint A_B | A_C | A_D\nconstraint !A_B\n")
	serial, err := Lint(ds, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LintContext(context.Background(), ds, Options{Parallelism: 8, Cache: NewSatCache()})
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("lint reports differ:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestSatCacheWaiterCancellationNoLeak pins the waiter half of the
// singleflight contract: a waiter whose own context is cancelled while
// another goroutine holds the compute must return its ctx.Err promptly —
// not block until the compute finishes — and the episode must leak no
// goroutines.
func TestSatCacheWaiterCancellationNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	ds := parse(t, hardUnsatSrc(3, 2))
	cache := NewSatCache()
	// The computing call crawls: 5ms of injected latency per EXPAND step
	// keeps it busy for several seconds unless cancelled.
	slow := Options{
		Cache: cache,
		Faults: faults.New(faults.Rule{
			Site: faults.SiteExpand, Kind: faults.Latency, Every: 1, Delay: 5 * time.Millisecond,
		}),
	}
	computeCtx, stopCompute := context.WithCancel(context.Background())
	computing := make(chan struct{})
	computeDone := make(chan error, 1)
	go func() {
		close(computing)
		_, err := SatisfiableContext(computeCtx, ds, "C0", slow)
		computeDone <- err
	}()
	<-computing
	// Give the computing goroutine time to install the singleflight
	// entry, so the waiter below really waits rather than computing.
	for i := 0; i < 100 && cache.Stats().Entries == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if cache.Stats().Entries == 0 {
		t.Fatal("compute never installed its cache entry")
	}

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := SatisfiableContext(waiterCtx, ds, "C0", Options{Cache: cache})
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block on the entry
	cancelWaiter()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return promptly")
	}

	stopCompute()
	if err := <-computeDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("compute returned %v, want context.Canceled", err)
	}

	// Zero goroutine leaks once both calls have unwound.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at start, %d after settling", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNegFingerprintMatchesSchemaFingerprint pins the incremental
// fingerprint used by the ImpliesContext cache peek to the canonical one:
// a divergence would make every peek miss silently and re-derive.
func TestNegFingerprintMatchesSchemaFingerprint(t *testing.T) {
	ds := parse(t, diamondSrc+"constraint !A_D\nconstraint A_B -> A_C\n")
	cs, err := Compile(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range ds.Sigma {
		neg, _, _, decided, err := ImpliesReduction(ds, alpha)
		if err != nil || decided {
			t.Fatalf("reduction: err=%v decided=%v", err, decided)
		}
		got := cs.negFingerprint(neg.Sigma[len(neg.Sigma)-1])
		if want := schemaFingerprint(neg); got != want {
			t.Fatalf("negFingerprint %s != schemaFingerprint %s", got, want)
		}
		// The second call answers from the per-alpha cache.
		if again := cs.negFingerprint(neg.Sigma[len(neg.Sigma)-1]); again != got {
			t.Fatalf("cached negFingerprint diverged: %s vs %s", again, got)
		}
	}
}
