package core

import (
	"sync/atomic"
	"time"
)

// This file is the core side of the observability layer (internal/obs):
// optional hooks that let a serving tier watch search effort, structured
// trace events and worker-pool activity without core importing obs. All
// hooks are nil-safe and cost nothing when absent.

// StructuredTracer is an optional extension of Tracer. When the
// installed Options.Tracer also implements it, the search additionally
// reports the decision-stack depth of every EXPAND and CHECK and the
// pruning heuristic behind every abandoned branch — the raw material for
// per-request search traces — without rendering subhierarchies, so
// observing stays O(1) per step. The Figure-7 Tracer contract
// (Expand/Check with the subhierarchy) is unchanged; both interfaces
// receive every step.
//
// PruneStep fires exactly where Stats.DeadEnds is counted, with the
// heuristic that abandoned the branch:
//
//	"into"             a forced into-edge was pruned, or no legal parents
//	"cycle-frontier"   a cycle swallowed the frontier (structure pruning off)
//	"sibling-shortcut" the parent set contained r1 ↗'* r2
type StructuredTracer interface {
	Tracer
	// ExpandStep reports an EXPAND of ctop with parent set R at the given
	// decision depth (1 = first expansion below the root).
	ExpandStep(depth int, ctop string, R []string)
	// CheckStep reports a CHECK of a complete subhierarchy.
	CheckStep(depth int, induced bool)
	// PruneStep reports a dead end abandoned by the named heuristic.
	PruneStep(depth int, ctop string, heuristic string)
}

// EffortSink accumulates the Stats of every DIMSAT run executed under an
// Options value carrying it — including the runs a batch surface fans
// out, and including aborted runs' partial stats. A request handler
// installs a fresh sink per request to measure that request's true
// search effort: cache hits add nothing (the work was done by an earlier
// request), so cached answers correctly report zero expansions.
// All methods are atomic and nil-safe.
type EffortSink struct {
	expansions atomic.Int64
	checks     atomic.Int64
	deadEnds   atomic.Int64
	runs       atomic.Int64
}

// add accumulates one run's stats; a nil sink discards.
func (e *EffortSink) add(st Stats) {
	if e == nil {
		return
	}
	e.expansions.Add(int64(st.Expansions))
	e.checks.Add(int64(st.Checks))
	e.deadEnds.Add(int64(st.DeadEnds))
	e.runs.Add(1)
}

// Stats snapshots the accumulated effort.
func (e *EffortSink) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	return Stats{
		Expansions: int(e.expansions.Load()),
		Checks:     int(e.checks.Load()),
		DeadEnds:   int(e.deadEnds.Load()),
	}
}

// Runs returns how many DIMSAT runs fed the sink (cache hits excluded).
func (e *EffortSink) Runs() int64 {
	if e == nil {
		return 0
	}
	return e.runs.Load()
}

// PoolObserver watches the batch-surface worker pool (matrix cells,
// category sweeps, lint probes, minimal-sources levels). Implementations
// must be safe for concurrent use; every callback sits on the fan-out
// hot path.
type PoolObserver interface {
	// BatchStart reports a fan-out of tasks beginning.
	BatchStart(tasks int)
	// BatchDone reports the fan-out finished; skipped is how many of its
	// tasks never started because the batch aborted early.
	BatchDone(skipped int)
	// TaskStart reports one task leaving the queue and starting.
	TaskStart()
	// TaskDone reports one task finishing after d, with its error.
	TaskDone(d time.Duration, err error)
}

// Fingerprint canonically identifies a dimension schema: the SHA-256 of
// its textual rendering (hierarchy plus constraints in order). It is the
// key the SatCache and checkpoint pinning use; the serving tier stamps
// it on traces and slow-search log lines so an operator can tell which
// schema a hot search ran against.
func Fingerprint(ds *DimensionSchema) string {
	return schemaFingerprint(ds)
}
