package core

import (
	"strings"
	"testing"
)

func TestLintClean(t *testing.T) {
	ds := parse(t, diamondSrc+"constraint one(A_B, A_C)\n")
	rep, err := Lint(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unsatisfiable) != 0 || len(rep.Redundant) != 0 {
		t.Errorf("clean schema flagged: %s", rep)
	}
	// The diamond has the shortcut A -> D.
	if len(rep.Shortcuts) != 1 || rep.Shortcuts[0] != [2]string{"A", "D"} {
		t.Errorf("shortcuts = %v", rep.Shortcuts)
	}
	if rep.Cyclic {
		t.Error("acyclic schema flagged cyclic")
	}
	if !rep.Clean() {
		t.Error("Clean() = false")
	}
}

func TestLintRedundant(t *testing.T) {
	// A_B implies A.D (B's only route is D -> All... via D), so adding
	// A.D after A_B is redundant; A_B itself is not.
	ds := parse(t, diamondSrc+"constraint A_B\nconstraint A.D\n")
	rep, err := Lint(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Redundant) != 1 || rep.Redundant[0] != 1 {
		t.Errorf("redundant = %v, want [1]", rep.Redundant)
	}
	if !strings.Contains(rep.String(), "redundant constraint #2") {
		t.Errorf("rendering: %s", rep)
	}
}

func TestLintMutuallyRedundant(t *testing.T) {
	// Two copies of the same constraint: each is implied by the other, so
	// both are individually redundant (dropping either one is safe).
	ds := parse(t, diamondSrc+"constraint A_B\nconstraint A_B\n")
	rep, err := Lint(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Redundant) != 2 {
		t.Errorf("redundant = %v, want both", rep.Redundant)
	}
}

func TestLintUnsatisfiable(t *testing.T) {
	ds := parse(t, "edge A -> B -> All\nconstraint !A_B\n")
	rep, err := Lint(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unsatisfiable) != 1 || rep.Unsatisfiable[0] != "A" {
		t.Errorf("unsatisfiable = %v", rep.Unsatisfiable)
	}
	if rep.Clean() {
		t.Error("Clean() = true for a schema with a dead category")
	}
	if !strings.Contains(rep.String(), "unsatisfiable category: A") {
		t.Errorf("rendering: %s", rep)
	}
}

func TestLintCyclic(t *testing.T) {
	ds := parse(t, "edge A -> B\nedge B -> A\nedge A -> All\nedge B -> All\n")
	rep, err := Lint(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cyclic {
		t.Error("cycle not reported")
	}
}

func TestLintRejectsInvalidSchema(t *testing.T) {
	ds := NewDimensionSchema(nil)
	if _, err := Lint(ds, Options{}); err == nil {
		t.Error("nil schema accepted")
	}
}
