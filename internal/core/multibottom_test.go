package core

import (
	"testing"

	"olapdim/internal/instance"
)

// multiBottomSrc: two bottom categories (the paper's Definition 1 allows
// several) feeding a shared level. Online orders skip the physical branch.
const multiBottomSrc = `
schema channels
edge PosSale -> Store -> Region -> All
edge WebSale -> Site -> Region
constraint PosSale_Store
constraint WebSale_Site
constraint Store_Region
constraint Site_Region
`

func TestMultiBottomBasics(t *testing.T) {
	ds := parse(t, multiBottomSrc)
	bottoms := ds.G.Bottoms()
	if len(bottoms) != 2 || bottoms[0] != "PosSale" || bottoms[1] != "WebSale" {
		t.Fatalf("bottoms = %v", bottoms)
	}
	for _, c := range []string{"PosSale", "WebSale", "Store", "Site", "Region"} {
		res, err := Satisfiable(ds, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfiable {
			t.Errorf("%s unsatisfiable", c)
		}
	}
}

// TestMultiBottomSummarizability: Theorem 1 quantifies over EVERY bottom
// category; a source set sufficient for one bottom but not the other must
// be rejected.
func TestMultiBottomSummarizability(t *testing.T) {
	ds := parse(t, multiBottomSrc)
	// Region from {Store}: POS sales route through Store, but web sales
	// reach Region through Site only — the WebSale bottom fails.
	rep, err := Summarizable(ds, "Region", []string{"Store"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summarizable() {
		t.Error("Region should not be summarizable from {Store} (web sales missed)")
	}
	var posOK, webOK bool
	for _, b := range rep.PerBottom {
		switch b.Bottom {
		case "PosSale":
			posOK = b.Implied
		case "WebSale":
			webOK = b.Implied
		}
	}
	if !posOK {
		t.Error("the PosSale bottom should pass for {Store}")
	}
	if webOK {
		t.Error("the WebSale bottom should fail for {Store}")
	}
	// Region from {Store, Site}: each sale routes through exactly one.
	rep, err = Summarizable(ds, "Region", []string{"Store", "Site"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Summarizable() {
		t.Error("Region should be summarizable from {Store, Site}")
	}
	if len(rep.PerBottom) != 2 {
		t.Errorf("per-bottom entries = %d, want 2", len(rep.PerBottom))
	}
}

// multiBottomInstance builds an instance with facts-bearing members in
// both bottom categories.
func multiBottomInstance(t *testing.T, ds *DimensionSchema) *instance.Instance {
	t.Helper()
	d := instance.New(ds.G)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddMember("Region", "east"))
	must(d.AddLink("east", instance.AllMember))
	must(d.AddMember("Store", "st1"))
	must(d.AddLink("st1", "east"))
	must(d.AddMember("Site", "webshop"))
	must(d.AddLink("webshop", "east"))
	must(d.AddMember("PosSale", "p1"))
	must(d.AddLink("p1", "st1"))
	must(d.AddMember("PosSale", "p2"))
	must(d.AddLink("p2", "st1"))
	must(d.AddMember("WebSale", "w1"))
	must(d.AddLink("w1", "webshop"))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.SatisfiesAll(ds.Sigma) {
		t.Fatal("instance violates sigma")
	}
	return d
}

func TestMultiBottomInstanceLevel(t *testing.T) {
	ds := parse(t, multiBottomSrc)
	d := multiBottomInstance(t, ds)
	// Base members span both bottoms.
	base := d.BaseMembers()
	if len(base) != 3 {
		t.Fatalf("base members = %v", base)
	}
	if SummarizableInInstance(d, "Region", []string{"Store"}) {
		t.Error("instance-level check must also fail for {Store}")
	}
	if !SummarizableInInstance(d, "Region", []string{"Store", "Site"}) {
		t.Error("instance-level check must pass for {Store, Site}")
	}
}

func TestMultiBottomEnumeration(t *testing.T) {
	ds := parse(t, multiBottomSrc)
	// Each bottom's frozen dimensions cover only its own branch.
	fs, err := EnumerateFrozen(ds, "PosSale", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("PosSale frozen dimensions = %d", len(fs))
	}
	if fs[0].G.HasCategory("WebSale") || fs[0].G.HasCategory("Site") {
		t.Errorf("PosSale frozen dimension leaked the web branch: %s", fs[0])
	}
	// The mid level has its own frozen dimension, not involving bottoms.
	fs, err = EnumerateFrozen(ds, "Store", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].G.HasCategory("PosSale") {
		t.Errorf("Store frozen dimensions = %v", fs)
	}
}
