package core

import (
	"fmt"
	"strings"

	"olapdim/internal/frozen"
)

// TraceEvent is one step of a recorded DIMSAT execution.
type TraceEvent struct {
	// Kind is "expand" or "check".
	Kind string
	// Ctop is the category expanded (expand events).
	Ctop string
	// R lists the parents added to Ctop (expand events).
	R []string
	// G is the subhierarchy after the step, rendered as its edge list.
	G string
	// Induced reports whether CHECK succeeded (check events).
	Induced bool
}

func (e TraceEvent) String() string {
	switch e.Kind {
	case "expand":
		return fmt.Sprintf("EXPAND %s -> {%s}  g: %s", e.Ctop, strings.Join(e.R, ", "), e.G)
	case "check":
		verdict := "no frozen dimension"
		if e.Induced {
			verdict = "induces frozen dimension"
		}
		return fmt.Sprintf("CHECK  g: %s  => %s", e.G, verdict)
	}
	return "?"
}

// RecordingTracer records every EXPAND and CHECK step of a DIMSAT run; it
// reproduces the execution narrative of Figure 7 of the paper.
type RecordingTracer struct {
	Events []TraceEvent
}

// Expand implements Tracer.
func (t *RecordingTracer) Expand(g *frozen.Subhierarchy, ctop string, R []string) {
	t.Events = append(t.Events, TraceEvent{Kind: "expand", Ctop: ctop, R: append([]string(nil), R...), G: g.String()})
}

// Check implements Tracer.
func (t *RecordingTracer) Check(g *frozen.Subhierarchy, induced bool) {
	t.Events = append(t.Events, TraceEvent{Kind: "check", G: g.String(), Induced: induced})
}

// String renders the recorded trace, one step per line.
func (t *RecordingTracer) String() string {
	var b strings.Builder
	for i, e := range t.Events {
		fmt.Fprintf(&b, "%3d %s\n", i+1, e)
	}
	return b.String()
}
