package core

import (
	"strings"
	"testing"

	"olapdim/internal/constraint"
	"olapdim/internal/instance"
)

func TestDimensionSchemaString(t *testing.T) {
	ds := parse(t, "schema d\nedge A -> All\nconstraint A.All\n")
	s := ds.String()
	if !strings.Contains(s, "schema d") || !strings.Contains(s, "constraint A.All") {
		t.Errorf("String = %q", s)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	ds := parse(t, diamondSrc+"constraint one(A_B, A_C)\nconstraint A.D < 10\n")
	ds2, err := Parse(ds.Format())
	if err != nil {
		t.Fatalf("re-parsing Format output: %v\n%s", err, ds.Format())
	}
	if len(ds2.Sigma) != len(ds.Sigma) || ds2.G.NumEdges() != ds.G.NumEdges() {
		t.Error("Format round trip changed the schema")
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse("edge A -> B"); err == nil {
		t.Error("B does not reach All")
	}
	if _, err := Parse("edge A -> All\nconstraint Z_Q"); err == nil {
		t.Error("constraint over unknown categories accepted")
	}
}

func TestCategorySatisfiableWrapper(t *testing.T) {
	ds := parse(t, "edge A -> B -> All\nconstraint !A_B\n")
	ok, err := CategorySatisfiable(ds, "A")
	if err != nil || ok {
		t.Errorf("A should be unsatisfiable: %v %v", ok, err)
	}
	ok, err = CategorySatisfiable(ds, "B")
	if err != nil || !ok {
		t.Errorf("B should be satisfiable: %v %v", ok, err)
	}
	if _, err := CategorySatisfiable(ds, "nope"); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestSummarizableInInstanceDirect(t *testing.T) {
	ds := parse(t, diamondSrc)
	d := instance.New(ds.G)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// a1 routes through B, a2 through C; D is summarizable from {B, C}
	// but not from {B}.
	must(d.AddMember("A", "a1"))
	must(d.AddMember("A", "a2"))
	must(d.AddMember("B", "b"))
	must(d.AddMember("C", "c"))
	must(d.AddMember("D", "d"))
	must(d.AddLink("a1", "b"))
	must(d.AddLink("a2", "c"))
	must(d.AddLink("b", "d"))
	must(d.AddLink("c", "d"))
	must(d.AddLink("d", instance.AllMember))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !SummarizableInInstance(d, "D", []string{"B", "C"}) {
		t.Error("D should be summarizable from {B, C}")
	}
	if SummarizableInInstance(d, "D", []string{"B"}) {
		t.Error("D should not be summarizable from {B}")
	}
}

func TestSummarizableErrors(t *testing.T) {
	ds := parse(t, diamondSrc)
	if _, err := Summarizable(ds, "nope", []string{"B"}, Options{}); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := Summarizable(ds, "D", []string{"nope"}, Options{}); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestSummarizabilityConstraintDegenerate(t *testing.T) {
	// Empty source set: one() of nothing is ⊥, so the constraint demands
	// that no member rolls up to the target.
	e := SummarizabilityConstraint("A", "D", nil)
	if e.String() != "A.D -> one()" {
		t.Errorf("constraint = %q", e)
	}
	// Folding one() of nothing gives false.
	if constraint.Simplify(e).String() != "!A.D" {
		t.Errorf("simplified = %q", constraint.Simplify(e))
	}
}
