package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"olapdim/internal/constraint"
	"olapdim/internal/faults"
	"olapdim/internal/frozen"
	"olapdim/internal/schema"
)

// ErrBudgetExceeded reports that a DIMSAT run hit its Options.MaxExpansions
// budget before deciding the query. The Result returned alongside it
// carries the partial Stats of the truncated search. Test with errors.Is.
var ErrBudgetExceeded = errors.New("core: DIMSAT expansion budget exceeded")

// Options configure the DIMSAT search. The zero value enables every
// heuristic, runs without budget or shared cache, and sizes worker pools
// to GOMAXPROCS — exactly the pre-context behavior. The ablation switches
// exist for experiment E6.
type Options struct {
	// DisableIntoPruning turns off the Section 5 heuristic that forces
	// into-constrained edges into every expansion, shrinking the subset
	// loop of EXPAND.
	DisableIntoPruning bool
	// DisableStructurePruning turns off the incremental cycle/shortcut
	// pruning of EXPAND; candidate subhierarchies are then rejected only
	// at CHECK time (Proposition 2 still guarantees correctness).
	DisableStructurePruning bool
	// Tracer, when non-nil, observes every EXPAND and CHECK step. A
	// tracer forces sequential execution on the batch surfaces and
	// bypasses the shared cache, since cache hits would skip the steps
	// the tracer wants to see.
	Tracer Tracer

	// MaxExpansions bounds the EXPAND steps of a single DIMSAT run;
	// 0 means unlimited. A run that exhausts the budget returns
	// ErrBudgetExceeded with the partial Stats accumulated so far.
	MaxExpansions int
	// Deadline, when non-zero, bounds the wall-clock time of a single
	// call: the search context is derived with this deadline and the run
	// returns context.DeadlineExceeded once it passes. Prefer passing a
	// context with a deadline to the ...Context entry points; this knob
	// exists for callers of the non-context wrappers.
	Deadline time.Time
	// Parallelism caps the worker pool of the batch surfaces
	// (SummarizabilityMatrix, MinimalSources, UnsatisfiableCategories,
	// Lint): 0 means GOMAXPROCS, 1 forces serial execution.
	Parallelism int
	// Cache, when non-nil, memoizes satisfiability results across calls,
	// keyed by (schema fingerprint, root category). Safe for concurrent
	// use; share one cache across goroutines and requests to solve
	// repeated roots once.
	Cache *SatCache
	// Faults, when non-nil, arms deterministic fault injection at the
	// instrumented sites (see package faults): the sat-cache lookup, each
	// worker-pool task, and each EXPAND step. Nil in production; tests
	// use it to force exact failure schedules.
	Faults *faults.Injector
	// Checkpoint, when non-nil, makes the DIMSAT search durable: its Sink
	// receives a snapshot of the search position every Every EXPAND steps,
	// and a run aborted by cancellation, deadline, budget, or an injected
	// fault error captures its final position in Result.Checkpoint so the
	// caller can continue it later with ResumeSatisfiableContext.
	Checkpoint *Checkpointing
	// Effort, when non-nil, accumulates the Stats of every DIMSAT run
	// executed under these options — including batch fan-outs and aborted
	// runs, excluding cache hits. The server installs one per request to
	// measure per-request search effort.
	Effort *EffortSink
	// Pool, when non-nil, observes the batch-surface worker pool: batch
	// fan-outs, task starts, and task completions with latency.
	Pool PoolObserver

	// Compiled, when non-nil, runs searches on the compiled bitset engine
	// built by Compile instead of the interpreted one. It must stem from
	// the same dimension schema passed alongside it — verified by pointer
	// or by fingerprint, with ErrCompiledMismatch on disagreement. Both
	// engines produce identical Results, Stats, trace events and
	// checkpoints; checkpoints resume interchangeably across engines.
	// EnumerateFrozenContext ignores this field and always runs
	// interpreted.
	Compiled *Compiled

	// Provenance, when set, makes the search accumulate its touched set —
	// the categories, edges and Σ indices it actually consulted — into
	// Result.Provenance. Provenance-enabled runs bypass the shared cache
	// (like traced runs: a hit would skip the steps being observed), and
	// both engines produce identical provenance. Costs one pointer test
	// per marking site when unset.
	Provenance bool
	// ShrinkObserver, when non-nil, observes every unsat-core shrink
	// probe executed by ExplainContext: which Σ index the probe tried to
	// drop, whether it was proven redundant, and the probe's effort and
	// timing. Ignored by every other entry point. The server installs one
	// per /explain request to emit per-probe spans and metrics.
	ShrinkObserver func(ShrinkProbe)
}

// ErrCompiledMismatch reports that Options.Compiled was built from a
// different schema than the one passed to the call. Test with errors.Is.
var ErrCompiledMismatch = errors.New("core: compiled schema does not match the dimension schema")

// compiledFor validates opts.Compiled against ds: nil passes through,
// pointer identity is accepted immediately, and anything else must agree
// on the schema fingerprint.
func compiledFor(ds *DimensionSchema, opts Options) (*Compiled, error) {
	cs := opts.Compiled
	if cs == nil {
		return nil, nil
	}
	if cs.src == ds {
		return cs, nil
	}
	if cs.Fingerprint() != schemaFingerprint(ds) {
		return nil, fmt.Errorf("%w: compiled %.12s.. vs schema %.12s..",
			ErrCompiledMismatch, cs.Fingerprint(), schemaFingerprint(ds))
	}
	return cs, nil
}

// Tracer observes a DIMSAT execution; used to reproduce the Figure 7 trace
// and to debug schemas.
type Tracer interface {
	// Expand is called after ctop has been expanded with parents R.
	Expand(g *frozen.Subhierarchy, ctop string, R []string)
	// Check is called when a complete subhierarchy is tested; induced
	// reports whether it induced a frozen dimension.
	Check(g *frozen.Subhierarchy, induced bool)
}

// Stats counts the work performed by one DIMSAT run.
type Stats struct {
	// Expansions counts EXPAND steps (edge-set extensions explored).
	Expansions int
	// Checks counts complete subhierarchies handed to CHECK.
	Checks int
	// DeadEnds counts expansions abandoned by the pruning rules.
	DeadEnds int
}

// Add accumulates t into s; used to aggregate effort across runs.
func (s *Stats) Add(t Stats) {
	s.Expansions += t.Expansions
	s.Checks += t.Checks
	s.DeadEnds += t.DeadEnds
}

// Result reports the outcome of a satisfiability or implication query.
type Result struct {
	// Satisfiable reports whether the queried category is satisfiable
	// (for Implies, whether the counterexample category was satisfiable).
	Satisfiable bool
	// Witness is a frozen dimension witnessing satisfiability, nil when
	// unsatisfiable.
	Witness *frozen.Frozen
	// Stats describes the search effort.
	Stats Stats
	// Checkpoint, when non-nil, is the resumable position at which the run
	// aborted. It is captured only when Options.Checkpoint is installed and
	// the abort was orderly (context cancellation, deadline, budget, or an
	// injected fault error — not a panic); pass it to
	// ResumeSatisfiableContext to continue the search.
	Checkpoint *Checkpoint
	// Provenance is the touched set of the run, collected only when
	// Options.Provenance is set; nil otherwise. Aborted runs carry the
	// partial touched set accumulated before the abort.
	Provenance *Provenance
}

// Satisfiable decides category satisfiability with the DIMSAT algorithm
// (Figure 6): it explores cycle- and shortcut-free subhierarchies of G
// rooted at c, pruning with into constraints, and tests each complete
// subhierarchy with CHECK (Proposition 2). By Theorem 3, c is satisfiable
// iff some subhierarchy induces a frozen dimension.
//
// Satisfiable is SatisfiableContext with a background context.
func Satisfiable(ds *DimensionSchema, c string, opts Options) (Result, error) {
	return SatisfiableContext(context.Background(), ds, c, opts)
}

// SatisfiableContext is Satisfiable under a context: the search checks
// cancellation and the Options budget before every EXPAND step, so a
// canceled context or an exhausted MaxExpansions budget aborts the run
// within one step, returning ctx.Err() or ErrBudgetExceeded together with
// the partial Stats accumulated so far. With opts.Cache set (and no
// Tracer), results are memoized by (schema fingerprint, root category) and
// concurrent calls for the same key solve it once. A panic anywhere in the
// search is recovered and returned as an *InternalError (ErrInternal).
func SatisfiableContext(ctx context.Context, ds *DimensionSchema, c string, opts Options) (_ Result, err error) {
	defer recoverAsInternal(&err)
	if !ds.G.HasCategory(c) {
		return Result{}, fmt.Errorf("core: unknown category %q", c)
	}
	if c == schema.All {
		// Proposition 1: the trivial instance witnesses satisfiability.
		g := frozen.NewSubhierarchy(schema.All)
		res := Result{Satisfiable: true, Witness: &frozen.Frozen{G: g, Assign: frozen.Assignment{}}}
		if opts.Provenance {
			res.Provenance = trivialProvenance()
		}
		return res, nil
	}
	cs, err := compiledFor(ds, opts)
	if err != nil {
		return Result{}, err
	}
	ctx, cancel := withOptionsDeadline(ctx, opts)
	defer cancel()
	if opts.Cache != nil && opts.Tracer == nil && !opts.Provenance {
		if err := opts.Faults.Hit(faults.SiteCacheLookup); err != nil {
			return Result{}, fmt.Errorf("core: sat-cache: %w", err)
		}
		// The compiled form memoizes the fingerprint, hoisting the
		// per-lookup schema hash of the interpreted path.
		fp := ""
		if cs != nil {
			fp = cs.Fingerprint()
		} else {
			fp = schemaFingerprint(ds)
		}
		return opts.Cache.satisfiable(ctx, fp, c, func() (Result, error) {
			return runSatisfiable(ctx, ds, c, opts)
		})
	}
	return runSatisfiable(ctx, ds, c, opts)
}

// runSatisfiable executes one uncached DIMSAT search on whichever engine
// the options select. Options.Compiled is assumed validated by the entry
// point (compiledFor).
func runSatisfiable(ctx context.Context, ds *DimensionSchema, c string, opts Options) (Result, error) {
	if opts.Compiled != nil {
		return runSatisfiableCompiled(ctx, opts.Compiled, c, opts)
	}
	s := newSearch(ctx, ds, c, opts)
	s.walk(frozen.NewSubhierarchy(c), s.check)
	opts.Effort.add(s.stats)
	var prov *Provenance
	if s.prov != nil {
		prov = s.prov.finalize()
	}
	if s.err != nil {
		return Result{Stats: s.stats, Checkpoint: s.cp, Provenance: prov}, s.err
	}
	return Result{Satisfiable: s.witness != nil, Witness: s.witness, Stats: s.stats, Provenance: prov}, nil
}

// withOptionsDeadline derives a context carrying opts.Deadline when set.
// The returned cancel func is always non-nil.
func withOptionsDeadline(ctx context.Context, opts Options) (context.Context, context.CancelFunc) {
	if opts.Deadline.IsZero() {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, opts.Deadline)
}

// EnumerateFrozen lists every frozen dimension of ds with the given root
// using the DIMSAT search (pruned, hence much faster than the naive
// enumeration in package frozen). Assignments are canonicalized to the
// categories mentioned by surviving equality atoms.
//
// EnumerateFrozen is EnumerateFrozenContext with a background context.
func EnumerateFrozen(ds *DimensionSchema, root string, opts Options) ([]*frozen.Frozen, error) {
	return EnumerateFrozenContext(context.Background(), ds, root, opts)
}

// EnumerateFrozenContext is EnumerateFrozen under a context and the
// Options budget; a truncated enumeration returns the error with nil
// results.
func EnumerateFrozenContext(ctx context.Context, ds *DimensionSchema, root string, opts Options) (_ []*frozen.Frozen, err error) {
	defer recoverAsInternal(&err)
	if !ds.G.HasCategory(root) {
		return nil, fmt.Errorf("core: unknown category %q", root)
	}
	ctx, cancel := withOptionsDeadline(ctx, opts)
	defer cancel()
	s := newSearch(ctx, ds, root, opts)
	seen := map[string]bool{}
	var out []*frozen.Frozen
	s.walk(frozen.NewSubhierarchy(root), func(g *frozen.Subhierarchy) bool {
		s.stats.Checks++
		if !g.Acyclic() || !g.ShortcutFree() {
			return true
		}
		residual, ok := frozen.Circle(s.sigma, g)
		if !ok {
			return true
		}
		for _, a := range frozen.EnumerateAssignments(residual, s.consts) {
			f := &frozen.Frozen{G: g.Clone(), Assign: a}
			if !seen[f.Key()] {
				seen[f.Key()] = true
				out = append(out, f)
			}
		}
		return true
	})
	opts.Effort.add(s.stats)
	if s.err != nil {
		return nil, s.err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// search carries the immutable inputs and mutable statistics of one DIMSAT
// run.
type search struct {
	ctx    context.Context
	ds     *DimensionSchema
	root   string
	sigma  []constraint.Expr
	consts map[string][]string
	into   map[string][]string
	opts   Options

	stats   Stats
	witness *frozen.Frozen
	// structured is opts.Tracer's StructuredTracer side, resolved once so
	// the per-step type assertion leaves the hot path.
	structured StructuredTracer
	// err records why the search aborted early (context cancellation or
	// budget exhaustion); nil for completed searches.
	err error
	// path is the decision stack: the subset mask of every EXPAND frame
	// currently on the stack, outermost first. Maintained only so abort
	// and periodic checkpoints can snapshot the position; push/pop is a
	// slice append either way, cheap enough to keep unconditional.
	path []uint64
	// cp is the final position captured when the search aborts resumably;
	// surfaced as Result.Checkpoint.
	cp *Checkpoint
	// fp memoizes the schema fingerprint for snapshots (checkpointing runs
	// only; hashing the schema per checkpoint would dominate small Everys).
	fp string
	// prov collects the touched set; nil unless Options.Provenance.
	// sigmaIdx and sigmaRoots align with s.sigma: the original Σ index
	// and root category of each relevant constraint, resolved once so
	// CHECK-time marking mirrors the compiled engine's vacuity test.
	prov       *provCollector
	sigmaIdx   []int
	sigmaRoots []string
}

func newSearch(ctx context.Context, ds *DimensionSchema, root string, opts Options) *search {
	s := &search{
		ctx:    ctx,
		ds:     ds,
		root:   root,
		sigma:  constraint.SigmaFor(ds.Sigma, ds.G, root),
		consts: constraint.ValueDomains(ds.Sigma),
		opts:   opts,
	}
	if !opts.DisableIntoPruning {
		s.into = intoEdgesIn(ds)
	}
	if opts.Checkpoint != nil {
		s.fp = schemaFingerprint(ds)
	}
	if opts.Provenance {
		s.prov = newProvCollector(root)
		s.sigmaIdx = sigmaIndicesFor(ds.Sigma, ds.G, root)
		s.sigmaRoots = sigmaRootsOf(ds.Sigma, s.sigmaIdx)
	}
	s.structured, _ = opts.Tracer.(StructuredTracer)
	return s
}

// deadEnd counts an abandoned branch and reports it to the structured
// tracer with the heuristic that pruned it.
func (s *search) deadEnd(ctop, heuristic string) {
	s.stats.DeadEnds++
	if s.prov != nil {
		s.prov.markFrontier(ctop)
	}
	if s.structured != nil {
		s.structured.PruneStep(len(s.path), ctop, heuristic)
	}
}

// snapshot captures the current search position: the decision stack plus
// the next mask to try in the innermost frame.
func (s *search) snapshot(next uint64) *Checkpoint {
	return &Checkpoint{
		Version:          CheckpointVersion,
		Schema:           s.fp,
		Root:             s.root,
		IntoPruning:      !s.opts.DisableIntoPruning,
		StructurePruning: !s.opts.DisableStructurePruning,
		Path:             append([]uint64(nil), s.path...),
		Next:             next,
		Stats:            s.stats,
	}
}

// abort records why the search stopped and, when checkpointing is
// installed, the resumable position it stopped at.
func (s *search) abort(err error, next uint64) {
	s.err = err
	if s.opts.Checkpoint != nil {
		s.cp = s.snapshot(next)
	}
}

// maybeCheckpoint feeds the periodic sink; called right after an EXPAND
// step is counted, when the position is (s.path, next mask 0). A sink
// failure aborts the search — durable progress that cannot be persisted is
// not progress — with the unsaved snapshot in Result.Checkpoint.
func (s *search) maybeCheckpoint() bool {
	ck := s.opts.Checkpoint
	if ck == nil || ck.Sink == nil || ck.Every <= 0 || s.stats.Expansions%ck.Every != 0 {
		return true
	}
	cp := s.snapshot(0)
	if err := ck.Sink(cp); err != nil {
		s.err = fmt.Errorf("core: checkpoint sink: %w", err)
		s.cp = cp
		return false
	}
	return true
}

// overBudget consults the fault injector, the context and the expansion
// budget; it is called before every EXPAND step so an abort takes effect
// within one step. next is the mask the caller was about to try, completing
// the checkpointable position. The abort reason is recorded in s.err and
// the whole search unwinds. The injector runs first: an injected latency
// stalls the step and the context check below then observes a passed
// deadline, which is exactly the "search stalls" scenario robustness tests
// force.
func (s *search) overBudget(next uint64) bool {
	if s.err != nil {
		return true
	}
	if err := s.opts.Faults.Hit(faults.SiteExpand); err != nil {
		s.abort(err, next)
		return true
	}
	if err := s.ctx.Err(); err != nil {
		s.abort(err, next)
		return true
	}
	if s.opts.MaxExpansions > 0 && s.stats.Expansions >= s.opts.MaxExpansions {
		s.abort(fmt.Errorf("%w after %d expansions", ErrBudgetExceeded, s.stats.Expansions), next)
		return true
	}
	return false
}

// intoEdgesIn extracts the forced edges implied by into constraints,
// keeping only those that are actual schema edges (a non-edge path atom
// makes its constraint unsatisfiable for populated roots, which CHECK
// handles; forcing a non-edge would be unsound here).
func intoEdgesIn(ds *DimensionSchema) map[string][]string {
	raw := constraint.IntoEdges(ds.Sigma)
	out := map[string][]string{}
	for c, ps := range raw {
		for _, p := range ps {
			if ds.G.HasEdge(c, p) {
				out[c] = append(out[c], p)
			}
		}
	}
	return out
}

// tops returns the categories of g with no outgoing edges, sorted.
func tops(g *frozen.Subhierarchy) []string {
	var out []string
	for _, c := range g.Categories() {
		if len(g.Out(c)) == 0 {
			out = append(out, c)
		}
	}
	return out
}

// walk implements the EXPAND procedure of Figure 6, invoking onComplete at
// every complete subhierarchy (g.Top = {All}). onComplete and walk return
// false to abort the whole search. The subhierarchy passed to onComplete
// is reused across calls; callers that retain it must Clone it.
func (s *search) walk(g *frozen.Subhierarchy, onComplete func(*frozen.Subhierarchy) bool) bool {
	return s.walkFrom(g, onComplete, nil, 0)
}

// failResume aborts the search because a checkpoint's decision stack does
// not replay against this schema: a mask that is out of range, lands on a
// pruned or empty subset, or descends past a complete subhierarchy. The
// fingerprint pin makes this unreachable for honest checkpoints; it guards
// against storage corruption below the checksum layer.
func (s *search) failResume(format string, args ...any) bool {
	s.err = fmt.Errorf("%w: %s", ErrBadCheckpoint, fmt.Sprintf(format, args...))
	return false
}

// walkFrom is walk with a resume position. replay holds the masks of the
// expansions between here and the suspended frame, outermost first: each is
// re-applied silently (edges added, no stats, no tracer, no checkpoints)
// before the enumeration continues past it. next is the first mask to try
// in the frame below the last replayed expansion. A fresh walk passes
// (nil, 0) and behaves exactly as before.
func (s *search) walkFrom(g *frozen.Subhierarchy, onComplete func(*frozen.Subhierarchy) bool, replay []uint64, next uint64) bool {
	replaying := len(replay) > 0
	start := next
	if replaying {
		start = replay[0]
	}
	if s.overBudget(start) {
		return false
	}
	t := tops(g)
	if len(t) == 1 && t[0] == schema.All {
		if replaying {
			return s.failResume("path descends past a complete subhierarchy")
		}
		return onComplete(g)
	}
	// Choose the lexicographically first unexpanded category (not All) so
	// executions and traces are deterministic.
	ctop := ""
	for _, c := range t {
		if c != schema.All {
			ctop = c
			break
		}
	}
	if ctop == "" {
		// Every category has out-edges but All is absent: only reachable
		// with structure pruning disabled, when a cycle swallowed the
		// frontier. Dead end.
		if replaying {
			return s.failResume("path descends into a cyclic dead end")
		}
		s.deadEnd(schema.All, "cycle-frontier")
		return true
	}

	outG := s.ds.G.Out(ctop)
	var candidates []string
	// reachableOf caches, for candidates already in g, the set of
	// categories they reach — used to veto sibling pairs (r1, r2) with
	// r1 ↗'* r2, where the new edge (ctop, r2) would be a shortcut via
	// r1. Figure 6 omits this case; see DESIGN.md.
	var reachableOf map[string]map[string]bool
	if s.opts.DisableStructurePruning {
		candidates = append(candidates, outG...)
	} else {
		// One backward traversal answers both structural vetoes of
		// Figure 6 lines (11)-(12): reaching = {b : b ↗'* ctop}.
		reaching := g.ReachingSet(ctop)
		for _, c := range outG {
			if g.HasCategory(c) && reaching[c] {
				continue // cycle: c already reaches ctop
			}
			if g.AnyParentIn(c, reaching) {
				continue // shortcut: some b ↗'* ctop has the edge b -> c
			}
			candidates = append(candidates, c)
		}
		reachableOf = map[string]map[string]bool{}
		for _, c := range candidates {
			if g.HasCategory(c) {
				reachableOf[c] = g.ReachableSet(c)
			}
		}
	}

	into := s.into[ctop]
	// Line (15) of Figure 6: a forced edge that was pruned, or no legal
	// parents at all, is a dead end.
	if len(candidates) == 0 || !containsAll(candidates, into) {
		if replaying {
			return s.failResume("path descends into a dead end at %s", ctop)
		}
		s.deadEnd(ctop, "into")
		return true
	}

	var free []string
	for _, c := range candidates {
		if !contains(into, c) {
			free = append(free, c)
		}
	}

	// Enumerate R = S' ∪ Into over subsets S' ⊆ free; R must be non-empty.
	// The subhierarchy is mutated in place and reverted after each branch
	// (cloning per subset dominated the profile); aborting the search
	// (walk returning false) skips the revert, which is safe because the
	// whole search unwinds immediately and any retained witness is cloned.
	n := len(free)
	limit := uint64(1) << uint(n)
	if start >= limit && start > 0 {
		return s.failResume("mask %d out of range at %s (%d free candidates)", start, ctop, n)
	}
	newCat := make([]bool, 0, len(into)+n)
	for mask := start; mask < limit; mask++ {
		// The first iteration of a resumed frame replays the recorded
		// decision silently; every later mask is explored normally.
		silent := replaying && mask == start
		R := append([]string(nil), into...)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				R = append(R, free[i])
			}
		}
		if len(R) == 0 {
			if silent {
				return s.failResume("path records an empty expansion at %s", ctop)
			}
			continue
		}
		if reachableOf != nil && conflictingPair(R, reachableOf) {
			if silent {
				return s.failResume("path records a pruned expansion at %s", ctop)
			}
			s.deadEnd(ctop, "sibling-shortcut")
			continue
		}
		if !silent && s.overBudget(mask) {
			return false
		}
		newCat = newCat[:0]
		for _, p := range R {
			newCat = append(newCat, g.AddEdgeUndoable(ctop, p))
			if s.prov != nil {
				s.prov.markEdge(ctop, p)
			}
		}
		s.path = append(s.path, mask)
		if silent {
			if !s.walkFrom(g, onComplete, replay[1:], next) {
				return false
			}
		} else {
			s.stats.Expansions++
			if s.opts.Tracer != nil {
				s.opts.Tracer.Expand(g, ctop, R)
			}
			if s.structured != nil {
				s.structured.ExpandStep(len(s.path), ctop, R)
			}
			if !s.maybeCheckpoint() {
				return false
			}
			if !s.walkFrom(g, onComplete, nil, 0) {
				return false
			}
		}
		s.path = s.path[:len(s.path)-1]
		for i := len(R) - 1; i >= 0; i-- {
			g.RemoveEdge(ctop, R[i], newCat[i])
		}
	}
	return true
}

// conflictingPair reports whether R contains distinct r1, r2 with
// r1 ↗'* r2 in the current subhierarchy.
func conflictingPair(R []string, reachableOf map[string]map[string]bool) bool {
	for _, a := range R {
		ra := reachableOf[a]
		if ra == nil {
			continue
		}
		for _, b := range R {
			if a != b && ra[b] {
				return true
			}
		}
	}
	return false
}

// check implements CHECK (Figure 6) via Proposition 2. It returns false to
// abort the search once a witness is found.
func (s *search) check(g *frozen.Subhierarchy) bool {
	s.stats.Checks++
	if s.prov != nil {
		// A relevant constraint is consulted by this CHECK unless it is
		// vacuously true because its root is outside g (Definition 4) —
		// the same test the compiled engine's CHECK skips on.
		for i, root := range s.sigmaRoots {
			if root == "" || g.HasCategory(root) {
				s.prov.markSigma(s.sigmaIdx[i])
			}
		}
	}
	f, ok := frozen.Induces(g, s.sigma, s.consts)
	if s.opts.Tracer != nil {
		s.opts.Tracer.Check(g, ok)
	}
	if s.structured != nil {
		s.structured.CheckStep(len(s.path), ok)
	}
	if !ok {
		return true
	}
	// The search mutates g in place on backtracking; the witness must own
	// its subhierarchy.
	s.witness = &frozen.Frozen{G: f.G.Clone(), Assign: f.Assign}
	return false
}

func contains(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func containsAll(xs, ys []string) bool {
	for _, y := range ys {
		if !contains(xs, y) {
			return false
		}
	}
	return true
}
