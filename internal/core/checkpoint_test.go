package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"olapdim/internal/faults"
)

// resultsEqual compares the externally visible outcome of two runs,
// including Stats: the suspend/resume contract is that a resumed search
// finishes with exactly what the uninterrupted run returns.
func resultsEqual(a, b Result) bool {
	if a.Satisfiable != b.Satisfiable || a.Stats != b.Stats {
		return false
	}
	aw, bw := "", ""
	if a.Witness != nil {
		aw = a.Witness.String()
	}
	if b.Witness != nil {
		bw = b.Witness.String()
	}
	return aw == bw
}

func TestBudgetAbortCapturesResumableCheckpoint(t *testing.T) {
	ds := hardSchema(t)
	res, err := SatisfiableContext(context.Background(), ds, "C0",
		Options{MaxExpansions: 25, Checkpoint: &Checkpointing{}})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	cp := res.Checkpoint
	if cp == nil {
		t.Fatal("budget abort with Options.Checkpoint installed captured no checkpoint")
	}
	if cp.Stats != res.Stats {
		t.Errorf("checkpoint stats %+v != result stats %+v", cp.Stats, res.Stats)
	}
	if cp.Root != "C0" || cp.Version != CheckpointVersion || !cp.IntoPruning || !cp.StructurePruning {
		t.Errorf("checkpoint pins wrong: %+v", cp)
	}
	// Without Options.Checkpoint the abort stays a plain typed error.
	res2, err := SatisfiableContext(context.Background(), ds, "C0", Options{MaxExpansions: 25})
	if !errors.Is(err, ErrBudgetExceeded) || res2.Checkpoint != nil {
		t.Errorf("uncheckpointed abort: err=%v checkpoint=%v, want error with nil checkpoint", err, res2.Checkpoint)
	}
}

func TestResumeAfterBudgetCompletesIdentically(t *testing.T) {
	ds := hardSchema(t)
	want, err := Satisfiable(ds, "C0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SatisfiableContext(context.Background(), ds, "C0",
		Options{MaxExpansions: 25, Checkpoint: &Checkpointing{}})
	if !errors.Is(err, ErrBudgetExceeded) || res.Checkpoint == nil {
		t.Fatalf("suspend failed: err=%v cp=%v", err, res.Checkpoint)
	}
	got, err := ResumeSatisfiableContext(context.Background(), ds, res.Checkpoint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(got, want) {
		t.Errorf("resumed run differs from uninterrupted run:\n  resumed %+v\n  want    %+v", got, want)
	}
}

// TestRepeatedSuspendResume drives the search through many small budget
// increments — suspend, resume, suspend, resume — and checks that Stats
// grow monotonically and the final Result is identical to one big run.
func TestRepeatedSuspendResume(t *testing.T) {
	ds := hardSchema(t)
	want, err := Satisfiable(ds, "C0", Options{})
	if err != nil {
		t.Fatal(err)
	}

	const step = 100
	budget := step
	res, err := SatisfiableContext(context.Background(), ds, "C0",
		Options{MaxExpansions: budget, Checkpoint: &Checkpointing{}})
	prev := Stats{}
	attempts := 1
	for err != nil {
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("attempt %d: err = %v, want ErrBudgetExceeded", attempts, err)
		}
		if res.Checkpoint == nil {
			t.Fatalf("attempt %d aborted without checkpoint", attempts)
		}
		st := res.Checkpoint.Stats
		if st.Expansions < prev.Expansions || st.Checks < prev.Checks || st.DeadEnds < prev.DeadEnds {
			t.Fatalf("stats regressed across resume: %+v -> %+v", prev, st)
		}
		prev = st
		// MaxExpansions bounds cumulative work, so each resume needs a
		// higher ceiling to make progress.
		budget += step
		attempts++
		if attempts > 100 {
			t.Fatal("search did not converge in 100 resume attempts")
		}
		res, err = ResumeSatisfiableContext(context.Background(), ds, res.Checkpoint,
			Options{MaxExpansions: budget, Checkpoint: &Checkpointing{}})
	}
	if attempts < 3 {
		t.Fatalf("hard schema finished in %d attempts; budget step too large to exercise resume", attempts)
	}
	if !resultsEqual(res, want) {
		t.Errorf("after %d suspend/resume cycles result differs:\n  got  %+v\n  want %+v", attempts, res, want)
	}
}

// TestResumeFindsSameWitness suspends a satisfiable search before it finds
// its witness and checks the resumed run returns the same witness as the
// uninterrupted run.
func TestResumeFindsSameWitness(t *testing.T) {
	// The hard layered schema without the contradiction: satisfiable, but
	// with a constraint so the first witness is not the first check.
	src := strings.Replace(hardUnsatSrc(3, 2), "constraint C0_L0x0 & !C0_L0x0", "constraint !C0_L0x0", 1)
	ds := parse(t, src)
	want, err := Satisfiable(ds, "C0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Satisfiable || want.Witness == nil {
		t.Fatalf("schema should be satisfiable with a witness, got %+v", want)
	}
	res, err := SatisfiableContext(context.Background(), ds, "C0",
		Options{MaxExpansions: 2, Checkpoint: &Checkpointing{}})
	if !errors.Is(err, ErrBudgetExceeded) || res.Checkpoint == nil {
		t.Fatalf("suspend failed: err=%v cp=%v", err, res.Checkpoint)
	}
	got, err := ResumeSatisfiableContext(context.Background(), ds, res.Checkpoint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(got, want) {
		t.Errorf("resumed witness differs:\n  got  %+v / %v\n  want %+v / %v", got, got.Witness, want, want.Witness)
	}
}

func TestCancellationAbortCapturesCheckpoint(t *testing.T) {
	ds := hardSchema(t)
	want, err := Satisfiable(ds, "C0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &cancelAfterTracer{n: 40, cancel: cancel}
	res, err := SatisfiableContext(ctx, ds, "C0", Options{Tracer: tr, Checkpoint: &Checkpointing{}})
	if !errors.Is(err, context.Canceled) || res.Checkpoint == nil {
		t.Fatalf("cancel abort: err=%v cp=%v, want Canceled with checkpoint", err, res.Checkpoint)
	}
	got, err := ResumeSatisfiableContext(context.Background(), ds, res.Checkpoint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(got, want) {
		t.Errorf("resume after cancellation differs: got %+v want %+v", got, want)
	}
}

// TestPeriodicSinkAndCrashResume is the core-level crash story: checkpoints
// stream to a sink every expansion, the worker is killed mid-search by an
// injected panic (no final capture possible), and the run resumed from the
// last sunk checkpoint finishes identically to an uninterrupted run.
func TestPeriodicSinkAndCrashResume(t *testing.T) {
	ds := hardSchema(t)
	want, err := Satisfiable(ds, "C0", Options{})
	if err != nil {
		t.Fatal(err)
	}

	var sunk []*Checkpoint
	opts := Options{
		Checkpoint: &Checkpointing{Every: 1, Sink: func(cp *Checkpoint) error {
			sunk = append(sunk, cp)
			return nil
		}},
		Faults: faults.New(faults.Rule{Site: faults.SiteExpand, Kind: faults.Panic, On: []int{301}}),
	}
	_, err = SatisfiableContext(context.Background(), ds, "C0", opts)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want contained injected panic (ErrInternal)", err)
	}
	if len(sunk) == 0 {
		t.Fatal("no checkpoints reached the sink before the crash")
	}
	for i := 1; i < len(sunk); i++ {
		a, b := sunk[i-1].Stats, sunk[i].Stats
		if b.Expansions < a.Expansions || b.Checks < a.Checks || b.DeadEnds < a.DeadEnds {
			t.Fatalf("sink stats regressed: %+v -> %+v", a, b)
		}
	}
	last := sunk[len(sunk)-1]
	// Round-trip through the wire format, as a durable store would.
	data, err := last.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ResumeSatisfiableContext(context.Background(), ds, cp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(got, want) {
		t.Errorf("resume after crash differs:\n  got  %+v\n  want %+v", got, want)
	}
}

func TestSinkFailureAbortsSearch(t *testing.T) {
	ds := hardSchema(t)
	boom := errors.New("disk full")
	res, err := SatisfiableContext(context.Background(), ds, "C0",
		Options{Checkpoint: &Checkpointing{Every: 10, Sink: func(*Checkpoint) error { return boom }}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink error", err)
	}
	if res.Checkpoint == nil {
		t.Error("sink failure should still surface the unsaved checkpoint")
	}
}

func TestResumeRejectsMismatch(t *testing.T) {
	ds := hardSchema(t)
	res, err := SatisfiableContext(context.Background(), ds, "C0",
		Options{MaxExpansions: 25, Checkpoint: &Checkpointing{}})
	if !errors.Is(err, ErrBudgetExceeded) || res.Checkpoint == nil {
		t.Fatalf("suspend failed: err=%v", err)
	}
	cp := res.Checkpoint

	other := parse(t, diamondSrc)
	if _, err := ResumeSatisfiable(other, cp, Options{}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("resume against wrong schema: err = %v, want ErrCheckpointMismatch", err)
	}
	if _, err := ResumeSatisfiable(ds, cp, Options{DisableIntoPruning: true}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("resume with different pruning: err = %v, want ErrCheckpointMismatch", err)
	}
	if _, err := ResumeSatisfiable(ds, nil, Options{}); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("resume with nil checkpoint: err = %v, want ErrBadCheckpoint", err)
	}

	// A tampered decision stack with an honest fingerprint must be refused
	// with a typed error, never replayed into a wrong verdict.
	bad := *cp
	bad.Path = append(append([]uint64(nil), cp.Path...), 1<<40)
	if _, err := ResumeSatisfiable(ds, &bad, Options{}); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("resume with tampered path: err = %v, want ErrBadCheckpoint", err)
	}
}

func TestDecodeCheckpointRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"not json":      "hello",
		"wrong version": `{"version":99,"schema":"ab","root":"C0","intoPruning":true,"structurePruning":true,"next":0,"stats":{}}`,
		"missing root":  `{"version":1,"schema":"ab","intoPruning":true,"structurePruning":true,"next":0,"stats":{}}`,
		"unknown field": `{"version":1,"schema":"ab","root":"C0","intoPruning":true,"structurePruning":true,"next":0,"stats":{},"extra":1}`,
		"trailing":      `{"version":1,"schema":"ab","root":"C0","intoPruning":true,"structurePruning":true,"next":0,"stats":{}} {}`,
	}
	for name, src := range cases {
		if _, err := DecodeCheckpoint([]byte(src)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: err = %v, want ErrBadCheckpoint", name, err)
		}
	}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	cp := &Checkpoint{
		Version: CheckpointVersion, Schema: "abc123", Root: "C0",
		IntoPruning: true, StructurePruning: true,
		Path: []uint64{3, 0, 7}, Next: 2,
		Stats: Stats{Expansions: 10, Checks: 4, DeadEnds: 1},
	}
	data, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", cp) {
		t.Errorf("round trip: got %+v, want %+v", got, cp)
	}
}

// FuzzDecodeCheckpoint hardens the checkpoint wire boundary: arbitrary
// bytes must never panic the decoder, and anything it accepts must
// re-encode and re-decode to the same value.
func FuzzDecodeCheckpoint(f *testing.F) {
	seed := &Checkpoint{Version: CheckpointVersion, Schema: "ab", Root: "C0",
		IntoPruning: true, StructurePruning: true, Path: []uint64{1, 2}, Next: 3}
	data, _ := seed.Encode()
	f.Add(data)
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		enc, err := cp.Encode()
		if err != nil {
			t.Fatalf("accepted checkpoint failed to encode: %v", err)
		}
		cp2, err := DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fmt.Sprintf("%+v", cp) != fmt.Sprintf("%+v", cp2) {
			t.Fatalf("round trip changed value: %+v vs %+v", cp, cp2)
		}
	})
}
