package core

import "math/bits"

// Bitset helpers for the compiled engine (compile.go, csearch.go).
// A set over n interned category ids is a []uint64 of bitWords(n) words;
// an n×n relation (reachability, adjacency) is a flat []uint64 of
// n*bitWords(n) words sliced into per-source rows. Ids are int32 because
// they index both words (id>>6) and bits (id&63) without conversion
// noise, and a schema never approaches 2^31 categories.

// bitWords returns the number of 64-bit words needed for n bits.
func bitWords(n int) int { return (n + 63) / 64 }

func bitSet(b []uint64, i int32)       { b[i>>6] |= 1 << uint(i&63) }
func bitClear(b []uint64, i int32)     { b[i>>6] &^= 1 << uint(i&63) }
func bitTest(b []uint64, i int32) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// bitZero clears every word of b.
func bitZero(b []uint64) {
	for i := range b {
		b[i] = 0
	}
}

// bitAnyAnd reports whether a ∩ b is non-empty.
func bitAnyAnd(a, b []uint64) bool {
	for i, w := range a {
		if w&b[i] != 0 {
			return true
		}
	}
	return false
}

// bitForEach calls fn for every set bit of b in ascending order.
func bitForEach(b []uint64, fn func(int32)) {
	for w, word := range b {
		base := int32(w) << 6
		for word != 0 {
			fn(base + int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// bitCount returns |b|.
func bitCount(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
