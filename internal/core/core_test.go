package core

import (
	"testing"

	"olapdim/internal/constraint"
	"olapdim/internal/schema"
)

// parse builds a dimension schema from source, failing the test on error.
func parse(t *testing.T, src string) *DimensionSchema {
	t.Helper()
	ds, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return ds
}

const diamondSrc = `
schema diamond
edge A -> B -> D -> All
edge A -> C -> D
edge A -> D
`

func TestValidateDimensionSchema(t *testing.T) {
	ds := parse(t, diamondSrc)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddConstraint(constraint.NewPath("A", "B")); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddConstraint(constraint.NewPath("A", "Z")); err == nil {
		t.Error("invalid constraint accepted")
	}
	bad := NewDimensionSchema(nil)
	if err := bad.Validate(); err == nil {
		t.Error("nil hierarchy schema accepted")
	}
}

func TestSatisfiableBasics(t *testing.T) {
	ds := parse(t, diamondSrc)
	for _, c := range []string{"A", "B", "C", "D"} {
		res, err := Satisfiable(ds, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfiable {
			t.Errorf("%s should be satisfiable in the unconstrained schema", c)
		}
		if res.Witness == nil {
			t.Errorf("%s: missing witness", c)
		} else if err := res.Witness.G.Validate(ds.G); err != nil {
			t.Errorf("%s: witness invalid: %v", c, err)
		}
	}
	res, err := Satisfiable(ds, schema.All, Options{})
	if err != nil || !res.Satisfiable {
		t.Errorf("All must be satisfiable (Proposition 1): %v %v", res.Satisfiable, err)
	}
	if _, err := Satisfiable(ds, "nope", Options{}); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestSatisfiableUnsat(t *testing.T) {
	ds := parse(t, diamondSrc+`
constraint A_B & !A_B
`)
	res, err := Satisfiable(ds, "A", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Error("contradiction satisfiable")
	}
	if res.Witness != nil {
		t.Error("unsat result carries a witness")
	}
	// Other categories remain satisfiable.
	res, err = Satisfiable(ds, "B", Options{})
	if err != nil || !res.Satisfiable {
		t.Errorf("B should stay satisfiable: %v %v", res.Satisfiable, err)
	}
}

func TestWitnessSatisfiesSigma(t *testing.T) {
	ds := parse(t, diamondSrc+`
constraint one(A_B, A_C)
constraint !A_D
constraint A.D="hot" | A.D="cold"
`)
	res, err := Satisfiable(ds, "A", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("should be satisfiable")
	}
	consts := constraint.ConstMap(ds.Sigma)
	inst, err := res.Witness.ToInstance(ds.G, consts)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("witness instance invalid: %v", err)
	}
	if !inst.SatisfiesAll(ds.Sigma) {
		t.Errorf("witness instance violates sigma:\n%s", inst)
	}
}

func TestImpliesTheorem2(t *testing.T) {
	ds := parse(t, diamondSrc+`
constraint one(A_B, A_C)
constraint !A_D
`)
	// Every member of A rolls up to D (through B or C).
	implied, _, err := Implies(ds, constraint.RollupAtom{RootCat: "A", Cat: "D"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !implied {
		t.Error("A.D should be implied")
	}
	// A_B alone is not implied (members may go through C).
	implied, res, err := Implies(ds, constraint.NewPath("A", "B"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if implied {
		t.Error("A_B should not be implied")
	}
	if res.Witness == nil {
		t.Error("non-implication must carry a counterexample")
	} else if res.Witness.G.HasEdge("A", "B") {
		t.Error("counterexample should avoid the edge A -> B")
	}
	// Constants: constraints with no atoms.
	implied, _, err = Implies(ds, constraint.True{}, Options{})
	if err != nil || !implied {
		t.Errorf("true must be implied: %v %v", implied, err)
	}
	implied, _, err = Implies(ds, constraint.False{}, Options{})
	if err != nil || implied {
		t.Errorf("false must not be implied: %v %v", implied, err)
	}
	// Invalid constraints are rejected.
	if _, _, err := Implies(ds, constraint.NewPath("A", "Z"), Options{}); err == nil {
		t.Error("invalid constraint accepted")
	}
}

func TestImpliesMonotone(t *testing.T) {
	// Adding the negation of an implied constraint makes the root
	// unsatisfiable — the Theorem 2 reduction read backwards.
	ds := parse(t, diamondSrc+`
constraint A_B
`)
	alpha := constraint.RollupAtom{RootCat: "A", Cat: "D"}
	implied, _, err := Implies(ds, alpha, Options{})
	if err != nil || !implied {
		t.Fatalf("A.D should be implied: %v %v", implied, err)
	}
	ds.Sigma = append(ds.Sigma, constraint.Not{X: alpha})
	res, err := Satisfiable(ds, "A", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Error("A should be unsatisfiable after adding the negation")
	}
}

func TestUnsatisfiableCategories(t *testing.T) {
	// Example 11: forbidding SaleRegion_Country in a schema where it is
	// SaleRegion's only outgoing edge kills SaleRegion.
	ds := parse(t, `
edge Store -> SaleRegion -> Country -> All
constraint !SaleRegion_Country
`)
	got, err := UnsatisfiableCategories(ds)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SaleRegion", "Store"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("UnsatisfiableCategories = %v, want %v", got, want)
	}
}

func TestOptionsAblationsAgree(t *testing.T) {
	ds := parse(t, diamondSrc+`
constraint A_B
constraint one(A_B, A_C, A_D)
constraint A.D="x" -> A_B
`)
	variants := []Options{
		{},
		{DisableIntoPruning: true},
		{DisableStructurePruning: true},
		{DisableIntoPruning: true, DisableStructurePruning: true},
	}
	for _, c := range []string{"A", "B", "C", "D"} {
		var first *Result
		for _, opts := range variants {
			res, err := Satisfiable(ds, c, opts)
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = &res
				continue
			}
			if res.Satisfiable != first.Satisfiable {
				t.Errorf("category %s: options %+v disagree", c, opts)
			}
		}
	}
}

func TestStatsCounting(t *testing.T) {
	ds := parse(t, diamondSrc)
	res, err := Satisfiable(ds, "A", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Expansions == 0 {
		t.Error("no expansions recorded")
	}
	if res.Stats.Checks == 0 {
		t.Error("no checks recorded")
	}
}

func TestTracerRecords(t *testing.T) {
	ds := parse(t, diamondSrc)
	tr := &RecordingTracer{}
	if _, err := Satisfiable(ds, "A", Options{Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events recorded")
	}
	sawExpand, sawCheck := false, false
	for _, e := range tr.Events {
		switch e.Kind {
		case "expand":
			sawExpand = true
			if e.Ctop == "" || len(e.R) == 0 {
				t.Errorf("malformed expand event %+v", e)
			}
		case "check":
			sawCheck = true
		}
	}
	if !sawExpand || !sawCheck {
		t.Errorf("trace missing expand/check: %s", tr)
	}
	if tr.String() == "" {
		t.Error("empty trace rendering")
	}
}

func TestEnumerateFrozenAgainstWitness(t *testing.T) {
	ds := parse(t, diamondSrc+`
constraint one(A_B, A_C)
constraint !A_D
`)
	fs, err := EnumerateFrozen(ds, "A", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		for _, f := range fs {
			t.Logf("%s", f)
		}
		t.Fatalf("got %d frozen dimensions, want 2 (through B xor through C)", len(fs))
	}
	consts := constraint.ConstMap(ds.Sigma)
	for _, f := range fs {
		inst, err := f.ToInstance(ds.G, consts)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			t.Errorf("frozen %s invalid: %v", f, err)
		}
		if !inst.SatisfiesAll(ds.Sigma) {
			t.Errorf("frozen %s violates sigma", f)
		}
	}
}

func TestSummarizabilityConstraintShape(t *testing.T) {
	e := SummarizabilityConstraint("Store", "Country", []string{"State", "Province"})
	want := "Store.Country -> one(Store.Province.Country, Store.State.Country)"
	if e.String() != want {
		t.Errorf("constraint = %q, want %q", e, want)
	}
}

func TestIntoPruningSoundWithNonEdgePathAtoms(t *testing.T) {
	// An unconditional path atom that is not a schema edge at all makes
	// the root unsatisfiable; the into extractor must not force a
	// non-existent edge (it filters to schema edges) and CHECK must
	// reject instead.
	ds := parse(t, `
edge A -> B -> All
edge A -> All
`)
	ds.Sigma = append(ds.Sigma, constraint.PathAtom{Cats: []string{"A", "Z"}})
	// The constraint is not valid against the schema; Validate catches it.
	if err := ds.Validate(); err == nil {
		t.Error("constraint over unknown category accepted")
	}
}
