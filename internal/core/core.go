// Package core implements the reasoning services of Hurtado & Mendelzon,
// "OLAP Dimension Constraints" (PODS 2002): category satisfiability via the
// DIMSAT algorithm (Section 5, Figure 6), implication of dimension
// constraints (Theorem 2), and summarizability testing (Theorem 1), over
// dimension schemas ds = (G, Σ).
package core

import (
	"fmt"
	"sort"
	"strings"

	"olapdim/internal/constraint"
	"olapdim/internal/schema"
)

// DimensionSchema is a dimension schema ds = (G, Σ): a hierarchy schema
// together with a set of dimension constraints over it (Section 3.1).
type DimensionSchema struct {
	G     *schema.Schema
	Sigma []constraint.Expr
}

// NewDimensionSchema bundles a hierarchy schema and constraints.
func NewDimensionSchema(g *schema.Schema, sigma ...constraint.Expr) *DimensionSchema {
	return &DimensionSchema{G: g, Sigma: sigma}
}

// Validate checks the hierarchy schema (Definition 1) and every constraint
// (Definition 3) for well-formedness.
func (ds *DimensionSchema) Validate() error {
	if ds.G == nil {
		return fmt.Errorf("core: nil hierarchy schema")
	}
	if err := ds.G.Validate(); err != nil {
		return err
	}
	for _, e := range ds.Sigma {
		if err := constraint.Validate(e, ds.G); err != nil {
			return err
		}
	}
	return nil
}

// AddConstraint validates and appends a constraint to Σ.
func (ds *DimensionSchema) AddConstraint(e constraint.Expr) error {
	if err := constraint.Validate(e, ds.G); err != nil {
		return err
	}
	ds.Sigma = append(ds.Sigma, e)
	return nil
}

// String renders the dimension schema: the hierarchy schema followed by
// constraints in order.
func (ds *DimensionSchema) String() string {
	var b strings.Builder
	b.WriteString(ds.G.String())
	for _, e := range ds.Sigma {
		fmt.Fprintf(&b, "constraint %s\n", e)
	}
	return b.String()
}

// SummarizabilityConstraint builds the Theorem 1 characterization for one
// bottom category cb: cb.c ⊃ ⊙_{ci ∈ S} cb.ci.c. A category c is
// summarizable from S iff this constraint holds for every bottom category.
func SummarizabilityConstraint(cb, c string, S []string) constraint.Expr {
	ss := append([]string(nil), S...)
	sort.Strings(ss)
	xs := make([]constraint.Expr, len(ss))
	for i, ci := range ss {
		xs[i] = constraint.ThroughAtom{RootCat: cb, Via: ci, Cat: c}
	}
	return constraint.Implies{
		A: constraint.RollupAtom{RootCat: cb, Cat: c},
		B: constraint.One{Xs: xs},
	}
}
