package core

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrInternal is the sentinel matched (via errors.Is) by every
// *InternalError: a panic recovered inside the reasoner — a worker-pool
// task, a cache compute, or an entry point — converted into an error so
// library consumers and the HTTP server never crash on a poisoned input.
var ErrInternal = errors.New("core: internal error")

// InternalError wraps a panic recovered at a containment boundary. The
// original panic value and the goroutine stack at recovery time are
// retained for diagnosis; Error keeps the message short so HTTP responses
// do not leak stacks.
type InternalError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the stack of the panicking goroutine, from debug.Stack.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("core: internal error: %v", e.Value)
}

// Is reports ErrInternal so errors.Is(err, ErrInternal) matches.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Unwrap exposes a panic value that was itself an error.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recoverAsInternal converts an in-flight panic into a *InternalError
// written to *errp. Deferred at every exported ...Context entry point, in
// each worker-pool task, and around SatCache computes, so a panic anywhere
// in the reasoner (e.g. the constraint package's "unknown expression
// type" family) surfaces as a typed error instead of killing the process.
func recoverAsInternal(errp *error) {
	if r := recover(); r != nil {
		*errp = &InternalError{Value: r, Stack: debug.Stack()}
	}
}
