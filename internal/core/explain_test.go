package core

import (
	"errors"
	"strings"
	"testing"

	"olapdim/internal/faults"
	"olapdim/internal/schema"
)

// explainShopSrc has a two-member minimal core at Store: constraint 0
// kills SaleRegion's only path to All and constraint 1 forces Store to
// include SaleRegion; dropping either one makes Store satisfiable again
// (via Brand, or via an unconstrained SaleRegion).
const explainShopSrc = `
schema shop
edge Store -> SaleRegion -> Country -> All
edge Store -> Brand -> All
constraint !SaleRegion_Country
constraint Store_SaleRegion
`

func TestExplainSat(t *testing.T) {
	ds := parse(t, explainShopSrc)
	ex, err := Explain(ds, "Brand", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Satisfiable || ex.Witness == nil {
		t.Fatalf("Brand should be satisfiable with a witness, got %+v", ex)
	}
	if ex.Core != nil || ex.CoreExprs != nil {
		t.Fatalf("SAT verdict must not carry a core: %v", ex.Core)
	}
	if ex.Probes != 0 {
		t.Fatalf("SAT verdict ran %d shrink probes", ex.Probes)
	}
	if ex.Provenance == nil {
		t.Fatal("explanation missing provenance")
	}
	found := false
	for _, c := range ex.Provenance.Categories {
		if c == "Brand" {
			found = true
		}
	}
	if !found {
		t.Fatalf("touched set %v does not contain the root", ex.Provenance.Categories)
	}
}

func TestExplainTrivialAll(t *testing.T) {
	ds := parse(t, explainShopSrc)
	ex, err := Explain(ds, schema.All, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Satisfiable {
		t.Fatal("All must be satisfiable (Proposition 1)")
	}
	if ex.Provenance == nil || len(ex.Provenance.Categories) != 1 || ex.Provenance.Categories[0] != schema.All {
		t.Fatalf("trivial provenance should touch only All, got %+v", ex.Provenance)
	}
}

func TestExplainMinimalCore(t *testing.T) {
	ds := parse(t, explainShopSrc)
	var probes []ShrinkProbe
	opts := Options{ShrinkObserver: func(p ShrinkProbe) { probes = append(probes, p) }}
	ex, err := Explain(ds, "Store", opts)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Satisfiable {
		t.Fatal("Store should be unsatisfiable")
	}
	if len(ex.Core) != 2 || ex.Core[0] != 0 || ex.Core[1] != 1 {
		t.Fatalf("core = %v, want [0 1]", ex.Core)
	}
	if len(ex.CoreExprs) != 2 {
		t.Fatalf("core exprs = %v", ex.CoreExprs)
	}
	if ex.Partial {
		t.Fatal("complete shrink marked partial")
	}
	if ex.Probes != len(probes) || ex.Probes == 0 {
		t.Fatalf("probes = %d, observer saw %d", ex.Probes, len(probes))
	}
	for _, p := range probes {
		if p.Removed {
			t.Fatalf("no member of a 2-element minimal core is removable, probe %+v", p)
		}
		if p.Err != nil {
			t.Fatalf("probe error: %v", p.Err)
		}
		if p.Duration < 0 {
			t.Fatalf("probe duration %v", p.Duration)
		}
	}
	// This schema's branches die at CHECK, not at a pruning heuristic, so
	// the frontier — which records pruned dead ends — is empty here; its
	// cross-engine agreement is pinned by the parity suite.
	if ex.Frontier != nil {
		t.Fatalf("frontier = %v, want none for a CHECK-refuted schema", ex.Frontier)
	}
}

func TestExplainBudgetPartialCore(t *testing.T) {
	ds := parse(t, explainShopSrc)
	full, err := Satisfiable(ds, "Store", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The budget covers the initial run plus a single expansion, so the
	// first shrink probe aborts mid-search: typed error plus the
	// unminimized working set as a partial core.
	ex, err := Explain(ds, "Store", Options{MaxExpansions: full.Stats.Expansions + 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if !ex.Partial {
		t.Fatal("budget abort must mark the explanation partial")
	}
	if len(ex.Core) != 2 {
		t.Fatalf("partial core should be the full working set, got %v", ex.Core)
	}

	// A budget too small for even the initial run still reports Partial
	// with the typed error, just with nothing shrunk yet.
	ex, err = Explain(ds, "Store", Options{MaxExpansions: 1})
	if !errors.Is(err, ErrBudgetExceeded) || !ex.Partial {
		t.Fatalf("tiny budget: err=%v partial=%v", err, ex.Partial)
	}
}

func TestExplainShrinkFault(t *testing.T) {
	ds := parse(t, explainShopSrc)
	inj := faults.New(faults.Rule{Site: faults.SiteCoreShrink, Kind: faults.Error, On: []int{2}})
	ex, err := Explain(ds, "Store", Options{Faults: inj})
	if err == nil || !strings.Contains(err.Error(), "core: shrink") {
		t.Fatalf("err = %v, want a core: shrink fault", err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected in the chain", err)
	}
	if !ex.Partial || len(ex.Core) == 0 {
		t.Fatalf("fault abort should return the partial working set, got %+v", ex)
	}
	if ex.Probes != 1 {
		t.Fatalf("fault on hit 2 should leave exactly one completed probe, got %d", ex.Probes)
	}
}

// TestExplainProvenanceBypassesCache pins the cache gate: a provenance-
// enabled run neither reads nor writes the SatCache (like a traced run),
// so its touched set always reflects a real search.
func TestExplainProvenanceBypassesCache(t *testing.T) {
	ds := parse(t, explainShopSrc)
	cache := NewSatCache()
	if _, err := Satisfiable(ds, "Store", Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 1 {
		t.Fatalf("priming run: %+v", st)
	}
	res, err := Satisfiable(ds, "Store", Options{Cache: cache, Provenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Provenance == nil || res.Stats.Expansions == 0 {
		t.Fatalf("provenance run should search for real, got %+v", res)
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("provenance run touched the cache: %+v", st)
	}
}

// TestExplainStructuralCore pins the empty-core contract: a category
// that is unsatisfiable with no constraints at all (a cycle blocks every
// path to All) explains itself with an empty — still minimal — core.
func TestExplainStructuralCore(t *testing.T) {
	ds := parse(t, `
schema loop
edge X -> Y -> All
edge Y -> X
`)
	ex, err := Explain(ds, "X", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Satisfiable {
		t.Skip("schema admits a witness; structural-core fixture no longer applies")
	}
	if len(ex.Core) != 0 {
		t.Fatalf("structural UNSAT should have an empty core, got %v", ex.Core)
	}
}
