package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"olapdim/internal/faults"
)

// poolSize resolves the Options.Parallelism knob: 0 means GOMAXPROCS, and
// a Tracer forces sequential execution since tracers need not be safe for
// concurrent use.
func poolSize(opts Options) int {
	if opts.Tracer != nil {
		return 1
	}
	if opts.Parallelism > 0 {
		return opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runPool is the batch-surface fan-out harness: it sizes the worker pool
// from opts, applies fault injection at the pool.task site, and contains
// panics — a task that panics (a poisoned cell, an injected fault) is
// converted to an *InternalError that cancels the remaining work and
// propagates, instead of killing the process. All core batch surfaces
// (matrix, minimal sources, category sweeps, lint) fan out through here.
func runPool(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) error) error {
	po := opts.Pool
	var started atomic.Int64
	if po != nil {
		po.BatchStart(n)
		// An early abort leaves unstarted tasks behind; reconcile so queue
		// gauges derived from BatchStart/TaskStart cannot drift.
		defer func() { po.BatchDone(n - int(started.Load())) }()
	}
	return forEachLimit(ctx, n, poolSize(opts), func(ctx context.Context, i int) (err error) {
		if po != nil {
			started.Add(1)
			po.TaskStart()
			start := time.Now()
			// Registered before recoverAsInternal so it runs after it and
			// observes the recovered error of a panicking task.
			defer func() { po.TaskDone(time.Since(start), err) }()
		}
		defer recoverAsInternal(&err)
		if err := opts.Faults.Hit(faults.SitePoolTask); err != nil {
			return err
		}
		return fn(ctx, i)
	})
}

// forEachLimit runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines, in the style of errgroup: the first error cancels the
// remaining work and is returned. fn must write its result into
// caller-owned, index-disjoint storage. With workers <= 1 the loop runs
// serially on the calling goroutine.
func forEachLimit(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Workers may have stopped because the parent context was canceled.
	return ctx.Err()
}
