package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"olapdim/internal/core"
	"olapdim/internal/gen"
	"olapdim/internal/schema"
)

// TestSchemaImpliesInstanceSummarizability: whatever the schema-level test
// certifies must hold in every instance of the schema — checked on
// instances stamped from the schema's own frozen dimensions. This is the
// soundness direction of Theorem 1 + Theorem 2 composed, exercised across
// random schemas. (The converse cannot hold: a particular instance may
// accidentally be summarizable even when the schema admits bad instances.)
func TestSchemaImpliesInstanceSummarizability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds, err := gen.Schema(gen.SchemaSpec{
			Seed: seed, Categories: 5 + rng.Intn(3), Levels: 3,
			ExtraEdgeProb: 0.35, ChoiceProb: 0.6, Constants: 2, CondProb: 0.4,
			IntoFrac: 0.3,
		})
		if err != nil {
			return false
		}
		bottoms := ds.G.Bottoms()
		if len(bottoms) == 0 {
			return true
		}
		root := bottoms[0]
		res, err := core.Satisfiable(ds, root, core.Options{})
		if err != nil {
			return false
		}
		if !res.Satisfiable {
			return true // nothing to stamp
		}
		d, err := gen.InstanceFromFrozen(ds, root, 8, core.Options{})
		if err != nil {
			return false
		}
		cats := ds.G.SortedCategories()
		for trial := 0; trial < 5; trial++ {
			target := cats[rng.Intn(len(cats))]
			if target == schema.All {
				continue
			}
			var S []string
			for _, c := range cats {
				if c != schema.All && rng.Intn(3) == 0 {
					S = append(S, c)
				}
			}
			if len(S) == 0 {
				continue
			}
			rep, err := core.Summarizable(ds, target, S, core.Options{})
			if err != nil {
				return false
			}
			if rep.Summarizable() && !core.SummarizableInInstance(d, target, S) {
				t.Logf("schema certifies %s from %v but instance disagrees\n%s", target, S, ds)
				return false
			}
		}
		return true
	}
	n := 60
	if testing.Short() {
		n = 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}
