package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"olapdim/internal/jobs"
	"olapdim/internal/server"
)

// TestRunnerSmoke drives a real in-process server for two seconds with
// the full default mix (including durable jobs) and checks the report
// end to end: client percentiles, server effort deltas, no errors, and
// no regressions when the run is compared against itself.
func TestRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("2s load run")
	}
	spec := Defaults()
	spec.Seed = 42
	spec.Duration = 2 * time.Second
	spec.Warmup = 200 * time.Millisecond
	spec.Concurrency = 4 // closed loop (Rate == 0)

	// The server must host the exact schema the runner's planner will
	// regenerate from the same spec — determinism is what makes this
	// rendezvous work without passing the schema out of band.
	p, err := NewPlanner(spec)
	if err != nil {
		t.Fatal(err)
	}
	ds := p.Schema()
	store, err := jobs.Open(jobs.Config{
		Dir:             t.TempDir(),
		Schema:          ds,
		CheckpointEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	srv, err := server.NewWithConfig(ds, server.Config{Jobs: store})
	if err != nil {
		t.Fatal(err)
	}
	store.Start()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	rn := &Runner{Spec: spec, Base: ts.URL, Logf: t.Logf}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := rn.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if rep.SchemaVersion != ReportSchemaVersion {
		t.Errorf("schemaVersion = %d", rep.SchemaVersion)
	}
	if rep.Requests == 0 {
		t.Fatal("run issued no measured requests")
	}
	if rep.Errors != 0 || rep.TransportErrors != 0 {
		t.Errorf("errors = %d, transport errors = %d, want 0", rep.Errors, rep.TransportErrors)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", rep.ThroughputRPS)
	}
	if rep.Workload.Mode != "closed" {
		t.Errorf("mode = %q, want closed", rep.Workload.Mode)
	}
	if rep.Workload.Schema == nil || rep.Workload.Schema.Seed != 42 {
		t.Errorf("workload schema not recorded with the run seed: %+v", rep.Workload.Schema)
	}

	// Every op with positive weight should complete at least once in 2s,
	// and the latency view must be internally consistent.
	for _, op := range Ops() {
		if spec.Mix[op] == 0 {
			continue
		}
		es, ok := rep.Endpoints[op]
		if !ok || es.Count == 0 {
			t.Errorf("endpoint %s has no measured requests", op)
			continue
		}
		if es.MaxMs <= 0 {
			t.Errorf("endpoint %s has no max latency: %+v", op, es)
		}
		// Quantiles interpolate within fixed buckets, so p99.9 may
		// overshoot the exact max — but the quantiles themselves must be
		// monotone.
		if es.P50Ms > es.P99Ms {
			t.Errorf("endpoint %s p50 %.3f > p99 %.3f", op, es.P50Ms, es.P99Ms)
		}
	}

	// Server-side effort deltas: the run must have driven real searches.
	if len(rep.Server) == 0 {
		t.Fatal("no server-side deltas captured")
	}
	if rep.Server["dimsat_http_requests_received_total"] <= 0 {
		t.Errorf("server saw no requests: %v", rep.Server)
	}
	if v, ok := rep.Server["dimsat_cache_work_expansions_total"]; !ok || v <= 0 {
		t.Errorf("no search expansions recorded: %v (present=%v)", v, ok)
	}

	// A run diffed against itself must pass the default gate.
	if fs := Compare(rep, rep, DefaultThresholds()); HasRegression(fs) {
		t.Errorf("self-comparison regressed: %v", fs)
	}

	// And survive the BENCH_*.json round trip.
	b, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests {
		t.Errorf("round trip lost request count: %d != %d", back.Requests, rep.Requests)
	}
}

// TestRunnerOpenLoopSmoke exercises the open-loop scheduler briefly: a
// modest fixed rate with a request cap, checking the coordinated-omission
// schedule issues the full planned count.
func TestRunnerOpenLoopSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load run")
	}
	spec := Defaults()
	spec.Seed = 7
	spec.Mix = map[string]int{OpSat: 3, OpImplies: 1}
	spec.Rate = 200
	spec.Duration = 5 * time.Second
	spec.Warmup = 0
	spec.MaxRequests = 100

	p, err := NewPlanner(spec)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithConfig(p.Schema(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	rn := &Runner{Spec: spec, Base: ts.URL, Logf: t.Logf}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := rn.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload.Mode != "open" {
		t.Errorf("mode = %q, want open", rep.Workload.Mode)
	}
	if rep.Requests != 100 {
		t.Errorf("issued %d requests, want the 100-request cap", rep.Requests)
	}
	if rep.Errors != 0 || rep.TransportErrors != 0 {
		t.Errorf("errors = %d, transport errors = %d", rep.Errors, rep.TransportErrors)
	}
}
