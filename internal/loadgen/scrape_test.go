package loadgen

import (
	"strings"
	"testing"
)

const sampleExposition = `# HELP dimsat_cache_hits_total Satisfiability calls answered from the shared cache.
# TYPE dimsat_cache_hits_total counter
dimsat_cache_hits_total 12
# TYPE dimsat_http_requests_total counter
dimsat_http_requests_total{code_class="2xx"} 30
dimsat_http_requests_total{code_class="4xx"} 3
# TYPE dimsat_http_request_duration_seconds histogram
dimsat_http_request_duration_seconds_bucket{code_class="2xx",le="0.001"} 5
dimsat_http_request_duration_seconds_bucket{code_class="2xx",le="+Inf"} 30
dimsat_http_request_duration_seconds_sum{code_class="2xx"} 1.5
dimsat_http_request_duration_seconds_count{code_class="2xx"} 30
# TYPE dimsat_cache_entries gauge
dimsat_cache_entries 7
# TYPE olapdim_build_info gauge
olapdim_build_info{goversion="go1.24",revision="abc",version="(devel)"} 1
garbage line without a value x
`

func TestParseMetrics(t *testing.T) {
	m, err := ParseMetrics(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]float64{
		"dimsat_cache_hits_total":                    12,
		"dimsat_http_requests_total":                 33, // label series summed
		"dimsat_http_request_duration_seconds_sum":   1.5,
		"dimsat_http_request_duration_seconds_count": 30,
		"dimsat_cache_entries":                       7,
		"olapdim_build_info":                         1,
	}
	for name, want := range cases {
		if got := m[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if _, ok := m["dimsat_http_request_duration_seconds_bucket"]; ok {
		t.Error("histogram _bucket series were not dropped")
	}
}

func TestDeltaCounters(t *testing.T) {
	before := map[string]float64{
		"dimsat_cache_hits_total": 10,
		"dimsat_cache_entries":    5,
		"x_sum":                   1,
	}
	after := map[string]float64{
		"dimsat_cache_hits_total":   25,
		"dimsat_cache_misses_total": 4, // absent before: counts from zero
		"dimsat_cache_entries":      9, // gauge: dropped
		"x_sum":                     3,
		"x_count":                   2,
	}
	d := DeltaCounters(before, after)
	want := map[string]float64{
		"dimsat_cache_hits_total":   15,
		"dimsat_cache_misses_total": 4,
		"x_sum":                     2,
		"x_count":                   2,
	}
	if len(d) != len(want) {
		t.Fatalf("delta = %v, want %v", d, want)
	}
	for k, v := range want {
		if d[k] != v {
			t.Errorf("delta[%s] = %v, want %v", k, d[k], v)
		}
	}
}
