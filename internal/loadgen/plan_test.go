package loadgen

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"olapdim/internal/paper"
	"olapdim/internal/parser"
)

// TestPlannerDeterminism holds the core reproducibility contract: two
// planners built from the same spec emit byte-identical request
// streams (the dry-run request log), and a different seed emits a
// different stream.
func TestPlannerDeterminism(t *testing.T) {
	spec := Defaults()
	spec.Seed = 42
	stream := func(s Spec) string {
		t.Helper()
		p, err := NewPlanner(s)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := p.WriteStream(&b, 2000); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := stream(spec), stream(spec)
	if a != b {
		t.Fatal("two planners with the same seed produced different request streams")
	}
	spec2 := spec
	spec2.Seed = 43
	if a == stream(spec2) {
		t.Fatal("different seeds produced identical request streams")
	}
}

// TestPlannerSeedThreadsIntoGen checks the single -seed contract's other
// half: the seed reaches the schema generator, so different seeds yield
// different schema instances (not just different sampling).
func TestPlannerSeedThreadsIntoGen(t *testing.T) {
	spec := Defaults()
	spec.Seed = 1
	p1, err := NewPlanner(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 2
	p2, err := NewPlanner(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Schema().Format() == p2.Schema().Format() {
		t.Error("seeds 1 and 2 generated identical schemas; the seed is not reaching internal/gen")
	}
	// Schema.Seed in the spec is ignored in favor of Seed.
	spec3 := Defaults()
	spec3.Seed = 1
	spec3.Schema.Seed = 999
	p3, err := NewPlanner(spec3)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Schema().Format() != p3.Schema().Format() {
		t.Error("Schema.Seed overrode Seed; the run seed must win")
	}
}

// TestPlannerStreamValidity decodes a long stream: every operation with
// positive weight appears, paths reference real categories, and POST
// bodies are valid JSON whose constraints parse.
func TestPlannerStreamValidity(t *testing.T) {
	spec := Defaults()
	spec.Seed = 7
	spec.Mix = map[string]int{
		OpSat: 5, OpCategories: 1, OpImplies: 4, OpSummarizable: 3,
		OpSources: 2, OpMatrix: 1, OpJobs: 1,
	}
	p, err := NewPlanner(spec)
	if err != nil {
		t.Fatal(err)
	}
	ds := p.Schema()
	seen := map[string]int{}
	for i := 0; i < 3000; i++ {
		req := p.Next()
		if req.Index != i {
			t.Fatalf("request %d has index %d", i, req.Index)
		}
		seen[req.Op]++
		switch req.Op {
		case OpSat:
			c := strings.TrimPrefix(req.Path, "/sat?category=")
			if !ds.G.HasCategory(c) {
				t.Fatalf("sat request references unknown category %q", c)
			}
		case OpImplies:
			var body struct {
				Constraint string `json:"constraint"`
			}
			if err := json.Unmarshal([]byte(req.Body), &body); err != nil {
				t.Fatalf("implies body %q: %v", req.Body, err)
			}
			if _, err := parser.ParseConstraint(body.Constraint); err != nil {
				t.Fatalf("implies constraint %q does not parse: %v", body.Constraint, err)
			}
		case OpSummarizable:
			var body struct {
				Target string   `json:"target"`
				From   []string `json:"from"`
			}
			if err := json.Unmarshal([]byte(req.Body), &body); err != nil {
				t.Fatalf("summarizable body %q: %v", req.Body, err)
			}
			if !ds.G.HasCategory(body.Target) || len(body.From) == 0 {
				t.Fatalf("summarizable body %q references unknown target or empty from", req.Body)
			}
			for _, f := range body.From {
				if !ds.G.HasCategory(f) {
					t.Fatalf("summarizable source %q unknown", f)
				}
			}
		case OpJobs:
			var body struct {
				Kind     string `json:"kind"`
				Category string `json:"category"`
			}
			if err := json.Unmarshal([]byte(req.Body), &body); err != nil {
				t.Fatalf("jobs body %q: %v", req.Body, err)
			}
			if body.Kind != "sat" || !ds.G.HasCategory(body.Category) {
				t.Fatalf("jobs body %q invalid", req.Body)
			}
		}
	}
	for op, w := range spec.Mix {
		if w > 0 && seen[op] == 0 {
			t.Errorf("operation %s has weight %d but never appeared in 3000 requests", op, w)
		}
	}
	// Rough mix adherence: sat (weight 5/17) should dominate matrix (1/17).
	if seen[OpSat] < seen[OpMatrix] {
		t.Errorf("mix skew: sat=%d matrix=%d despite 5x weight", seen[OpSat], seen[OpMatrix])
	}
}

// TestPlannerSchemaText drives the planner from an explicit schema (the
// paper's locationSch) instead of a generated family.
func TestPlannerSchemaText(t *testing.T) {
	spec := Spec{Seed: 3, SchemaText: paper.LocationSch().Format(), Mix: map[string]int{OpSat: 1}}
	p, err := NewPlanner(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		req := p.Next()
		c := strings.TrimPrefix(req.Path, "/sat?category=")
		if !p.Schema().G.HasCategory(c) {
			t.Fatalf("unknown category %q from schema-text planner", c)
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("sat=8, implies=5,jobs=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix[OpSat] != 8 || mix[OpImplies] != 5 || mix[OpJobs] != 1 {
		t.Errorf("mix = %v", mix)
	}
	for _, bad := range []string{"nope=1", "sat", "sat=-1", "sat=x", "sat=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) succeeded, want error", bad)
		}
	}
	if got := FormatMix(mix); got != "sat=8,implies=5,jobs=1" {
		t.Errorf("FormatMix = %q", got)
	}
}

func TestPlannerRejectsEmptyMix(t *testing.T) {
	spec := Defaults()
	spec.Mix = map[string]int{OpSat: 0}
	if _, err := NewPlanner(spec); err == nil {
		t.Error("planner accepted a mix with no positive weights")
	}
}
