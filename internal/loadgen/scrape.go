package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ParseMetrics reads a Prometheus text exposition (version 0.0.4) and
// returns one value per family name: series of a labeled family are
// summed, histogram _bucket series are dropped (the _sum/_count series
// carry the family's totals), and unparsable lines are skipped. Label
// values never survive — the bench record tracks family-level deltas,
// not per-series ones.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				continue
			}
			rest = strings.TrimSpace(line[j+1:])
		} else if i := strings.IndexAny(line, " \t"); i >= 0 {
			name = line[:i]
			rest = strings.TrimSpace(line[i:])
		} else {
			continue
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		// The value is the first field after the series; an optional
		// timestamp may follow.
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		out[name] += v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: reading metrics: %w", err)
	}
	return out, nil
}

// Scrape fetches and parses the target's GET /metrics.
func Scrape(ctx context.Context, client *http.Client, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scraping %s/metrics: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scraping %s/metrics: status %d", base, resp.StatusCode)
	}
	return ParseMetrics(resp.Body)
}

// DeltaCounters subtracts the before scrape from the after scrape,
// keeping only cumulative families — names ending in _total, _sum or
// _count — since a gauge delta (queue depth, cache entries) says nothing
// about the run. Families absent from the before scrape count from zero.
func DeltaCounters(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for name, v := range after {
		if !strings.HasSuffix(name, "_total") &&
			!strings.HasSuffix(name, "_sum") &&
			!strings.HasSuffix(name, "_count") {
			continue
		}
		out[name] = v - before[name]
	}
	return out
}
