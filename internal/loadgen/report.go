package loadgen

import (
	"encoding/json"
	"fmt"
	"os"

	"olapdim/internal/gen"
	"olapdim/internal/obs"
)

// ReportSchemaVersion is the BENCH_*.json schema version; bump it on any
// incompatible change so cmd/benchdiff can refuse mixed comparisons.
const ReportSchemaVersion = 1

// Report is one load-generation run: the full workload specification
// (enough to reproduce the run), the client-observed latency percentiles
// per endpoint, and the server-side counter deltas scraped from
// GET /metrics around the run. It is the unit `make bench-diff`
// compares and the record committed as the repository's perf baseline.
type Report struct {
	// SchemaVersion is ReportSchemaVersion at encode time.
	SchemaVersion int `json:"schemaVersion"`
	// Tool identifies the producer ("dimsatload").
	Tool string `json:"tool"`
	// StartedAt is the run start in RFC 3339 UTC.
	StartedAt string `json:"startedAt"`
	// Build stamps the client binary's build metadata — the same fields
	// the server exports as olapdim_build_info.
	Build obs.BuildInfo `json:"build"`
	// Machine describes the host the client ran on.
	Machine Machine `json:"machine"`
	// Seed is the determinism seed; equal seed and workload means an
	// identical request stream.
	Seed int64 `json:"seed"`
	// Workload echoes the resolved run parameters.
	Workload Workload `json:"workload"`

	// DurationSeconds is the measured wall time of the issuing phase
	// (including warmup, excluding the final drain).
	DurationSeconds float64 `json:"durationSeconds"`
	// Requests counts measured (post-warmup) requests; WarmupRequests
	// counts the discarded ones.
	Requests       int64 `json:"requests"`
	WarmupRequests int64 `json:"warmupRequests"`
	// Errors counts measured requests that failed: transport errors and
	// any status outside 2xx except 429. Shed counts 429 responses.
	Errors          int64 `json:"errors"`
	TransportErrors int64 `json:"transportErrors"`
	Shed            int64 `json:"shed"`
	// ThroughputRPS is measured requests per post-warmup second.
	ThroughputRPS float64 `json:"throughputRps"`

	// Endpoints maps each operation to its client-observed statistics.
	Endpoints map[string]EndpointStats `json:"endpoints"`
	// Server holds the GET /metrics counter deltas (family name →
	// after−before) covering the whole run including warmup: search
	// effort (dimsat_cache_work_expansions_total, ..._dead_ends_total),
	// cache traffic, shed/timeout counts, job checkpoint writes.
	Server map[string]float64 `json:"server"`
	// Cluster is populated when the target is a cluster coordinator
	// (GET /cluster answered): per-worker forward deltas over the run,
	// so a BENCH record shows how the key space balanced across shards.
	// Additive and optional — schema version 1 stays readable by every
	// benchdiff.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ClusterStats summarizes shard balance for a coordinator-target run.
type ClusterStats struct {
	// Workers counts configured workers; Healthy is the count at run end.
	Workers int `json:"workers"`
	Healthy int `json:"healthy"`
	// Forwards maps worker name → forward attempts the coordinator sent
	// it during the run (after−before deltas of GET /cluster).
	Forwards map[string]int64 `json:"forwards"`
}

// Machine describes the client host, for reading run files across
// machines.
type Machine struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCpu"`
	GoMaxProcs int    `json:"goMaxProcs"`
	Hostname   string `json:"hostname,omitempty"`
}

// Workload echoes the resolved spec of a run.
type Workload struct {
	// Mode is "open" (fixed rate) or "closed" (fixed concurrency).
	Mode string `json:"mode"`
	// Target is the base URL that was driven.
	Target string `json:"target"`
	// Mix is the operation blend in ParseMix syntax.
	Mix string `json:"mix"`
	// Rate is the open-loop arrival rate (requests/second), 0 in closed
	// loop.
	Rate float64 `json:"rate,omitempty"`
	// Concurrency is the closed-loop worker count / open-loop in-flight cap.
	Concurrency int `json:"concurrency"`
	// DurationSeconds and WarmupSeconds echo the configured phases.
	DurationSeconds float64 `json:"durationSeconds"`
	WarmupSeconds   float64 `json:"warmupSeconds,omitempty"`
	// Schema is the generated schema family (with the run seed threaded
	// in); absent when the run drove an explicit schema file.
	Schema *gen.SchemaSpec `json:"schema,omitempty"`
	// SchemaSource notes where an explicit schema came from.
	SchemaSource string `json:"schemaSource,omitempty"`
	// SourcesMax is the max source-set size for OpSources requests.
	SourcesMax int `json:"sourcesMax,omitempty"`
}

// EndpointStats is the client-observed summary for one operation.
// Latencies are in milliseconds; percentiles are interpolated from a
// fixed-bucket histogram (obs.Histogram.Quantile over
// obs.LatencyBuckets), so p999 carries bucket-resolution error.
type EndpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors,omitempty"`
	Shed   int64   `json:"shed,omitempty"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
	// SlowestTraceID is the distributed-trace ID (X-Trace-ID response
	// header) of the slowest measured request, when the server sent one —
	// the exemplar link from a BENCH record's worst latency to the
	// server-side trace that explains it. Additive field: schema version
	// unchanged, absent when tracing is off.
	SlowestTraceID string `json:"slowestTraceId,omitempty"`
}

// Encode renders the report as indented JSON with a trailing newline —
// the canonical BENCH_*.json bytes (fixed field order, so committed
// baselines diff cleanly).
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: encoding report: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteFile writes the canonical encoding to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// DecodeReport parses a BENCH_*.json document, rejecting other schema
// versions — a version mismatch means the comparison semantics changed,
// and a silent best-effort diff would report nonsense.
func DecodeReport(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadgen: decoding report: %w", err)
	}
	if r.SchemaVersion != ReportSchemaVersion {
		return nil, fmt.Errorf("loadgen: report schema version %d, this tool reads version %d",
			r.SchemaVersion, ReportSchemaVersion)
	}
	return &r, nil
}

// ReadReport reads and decodes a BENCH_*.json file.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := DecodeReport(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
