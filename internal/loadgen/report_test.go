package loadgen

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"olapdim/internal/gen"
	"olapdim/internal/obs"
)

// goldenReport is the fixture behind testdata/BENCH_golden.json. Keep it
// in sync with the committed file: TestReportGolden regenerates the
// bytes from this value and compares them to the file, so any schema
// drift (renamed field, changed order) fails loudly.
func goldenReport() *Report {
	return &Report{
		SchemaVersion: ReportSchemaVersion,
		Tool:          "dimsatload",
		StartedAt:     "2026-08-06T12:00:00Z",
		Build:         obs.BuildInfo{Version: "(devel)", GoVersion: "go1.24.3", Revision: "abcdef123456"},
		Machine:       Machine{GOOS: "linux", GOARCH: "amd64", NumCPU: 8, GoMaxProcs: 8, Hostname: "bench-host"},
		Seed:          42,
		Workload: Workload{
			Mode:            "open",
			Target:          "http://127.0.0.1:18080",
			Mix:             "sat=8,implies=5,summarizable=4,sources=2,jobs=1",
			Rate:            200,
			Concurrency:     256,
			DurationSeconds: 10,
			WarmupSeconds:   1,
			Schema: &gen.SchemaSpec{
				Seed: 42, Categories: 12, Levels: 4, ExtraEdgeProb: 0.3,
				ChoiceProb: 0.4, Constants: 2, CondProb: 0.3, IntoFrac: 0.5,
			},
			SourcesMax: 2,
		},
		DurationSeconds: 10.01,
		Requests:        1800,
		WarmupRequests:  200,
		Errors:          0,
		TransportErrors: 0,
		Shed:            3,
		ThroughputRPS:   199.8,
		Endpoints: map[string]EndpointStats{
			"sat": {
				Count: 900, MeanMs: 1.2, P50Ms: 0.9, P90Ms: 2.1, P99Ms: 6.3,
				P999Ms: 12.8, MaxMs: 14.2,
			},
			"implies": {
				Count: 560, Shed: 3, MeanMs: 2.4, P50Ms: 1.8, P90Ms: 4.6,
				P99Ms: 11.0, P999Ms: 25.6, MaxMs: 31.9,
			},
		},
		Server: map[string]float64{
			"dimsat_cache_hits_total":             1500,
			"dimsat_cache_misses_total":           25,
			"dimsat_cache_work_expansions_total":  4200,
			"dimsat_cache_work_checks_total":      9800,
			"dimsat_cache_work_dead_ends_total":   310,
			"dimsat_http_shed_total":              3,
			"dimsat_jobs_checkpoint_writes_total": 2,
		},
	}
}

// TestReportGolden pins the BENCH_*.json wire format: the committed
// golden file must decode into exactly goldenReport and re-encode into
// exactly its own bytes.
func TestReportGolden(t *testing.T) {
	path := filepath.Join("testdata", "BENCH_golden.json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, goldenReport()) {
		t.Errorf("decoded golden != fixture:\ngot:  %+v\nwant: %+v", rep, goldenReport())
	}
	got, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("re-encoded golden differs from committed bytes:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReportRoundTrip round-trips through a file on disk.
func TestReportRoundTrip(t *testing.T) {
	rep := goldenReport()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip mismatch:\ngot:  %+v\nwant: %+v", back, rep)
	}
}

// TestDecodeReportVersionCheck rejects other schema versions instead of
// diffing records with different semantics.
func TestDecodeReportVersionCheck(t *testing.T) {
	if _, err := DecodeReport([]byte(`{"schemaVersion": 99}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("DecodeReport(version 99) = %v, want version error", err)
	}
	if _, err := DecodeReport([]byte(`{`)); err == nil {
		t.Error("DecodeReport accepted malformed JSON")
	}
}
