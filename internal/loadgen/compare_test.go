package loadgen

import (
	"strings"
	"testing"
)

// benchPair builds a baseline and an identical copy to mutate per case.
func benchPair() (*Report, *Report) {
	mk := func() *Report {
		return &Report{
			SchemaVersion: ReportSchemaVersion,
			ThroughputRPS: 100,
			Errors:        0,
			Endpoints: map[string]EndpointStats{
				"sat":     {Count: 500, P50Ms: 1, P90Ms: 2, P99Ms: 5, P999Ms: 10},
				"implies": {Count: 300, P50Ms: 2, P90Ms: 4, P99Ms: 8, P999Ms: 16},
			},
			Server: map[string]float64{
				"dimsat_cache_work_expansions_total": 1000,
				"dimsat_cache_work_checks_total":     5000,
				"dimsat_cache_work_dead_ends_total":  0,
				"dimsat_http_shed_total":             0,
				"dimsat_http_request_timeouts_total": 0,
				"dimsat_contained_panics_total":      0,
				"dimsat_pool_task_errors_total":      0,
			},
		}
	}
	return mk(), mk()
}

func findingFor(t *testing.T, fs []Finding, metric string) Finding {
	t.Helper()
	for _, f := range fs {
		if f.Metric == metric {
			return f
		}
	}
	t.Fatalf("no finding for metric %q in %v", metric, fs)
	return Finding{}
}

// TestCompareSelf: a run compared against itself must never regress —
// this is the bench-smoke sanity gate.
func TestCompareSelf(t *testing.T) {
	base, cur := benchPair()
	fs := Compare(base, cur, DefaultThresholds())
	if HasRegression(fs) {
		t.Fatalf("self-comparison regressed: %v", fs)
	}
	if len(fs) == 0 {
		t.Fatal("self-comparison produced no findings")
	}
}

// TestCompareLatencyRegression: a percentile past both the fraction and
// the floor regresses; one within the floor does not.
func TestCompareLatencyRegression(t *testing.T) {
	base, cur := benchPair()
	es := cur.Endpoints["sat"]
	es.P99Ms = 20 // 5 -> 20: +300%, rise 15ms > 2ms floor
	cur.Endpoints["sat"] = es
	fs := Compare(base, cur, DefaultThresholds())
	f := findingFor(t, fs, "endpoint/sat/p99_ms")
	if !f.Regression {
		t.Errorf("p99 5->20ms not flagged: %+v", f)
	}
	if !fs[0].Regression {
		t.Error("regressions must sort first")
	}

	// Same fractional jump under the floor: 0.5 -> 2.0ms rise is 1.5ms < 2ms.
	base2, cur2 := benchPair()
	es2 := base2.Endpoints["sat"]
	es2.P50Ms = 0.5
	base2.Endpoints["sat"] = es2
	cs2 := cur2.Endpoints["sat"]
	cs2.P50Ms = 2.0
	cur2.Endpoints["sat"] = cs2
	if f := findingFor(t, Compare(base2, cur2, DefaultThresholds()), "endpoint/sat/p50_ms"); f.Regression {
		t.Errorf("sub-floor rise flagged: %+v", f)
	}
}

// TestCompareImprovement: faster runs are findings, not regressions.
func TestCompareImprovement(t *testing.T) {
	base, cur := benchPair()
	es := cur.Endpoints["sat"]
	es.P99Ms = 1
	cur.Endpoints["sat"] = es
	cur.ThroughputRPS = 200
	fs := Compare(base, cur, DefaultThresholds())
	if HasRegression(fs) {
		t.Fatalf("improvement flagged as regression: %v", fs)
	}
	if f := findingFor(t, fs, "endpoint/sat/p99_ms"); !strings.Contains(f.Note, "improved") {
		t.Errorf("improvement not noted: %+v", f)
	}
	if f := findingFor(t, fs, "throughput_rps"); !strings.Contains(f.Note, "improved") {
		t.Errorf("throughput improvement not noted: %+v", f)
	}
}

// TestCompareMissingEndpoint: an endpoint that vanished from the new run
// is always a regression, whatever its numbers were.
func TestCompareMissingEndpoint(t *testing.T) {
	base, cur := benchPair()
	delete(cur.Endpoints, "implies")
	fs := Compare(base, cur, DefaultThresholds())
	f := findingFor(t, fs, "endpoint/implies")
	if !f.Regression || !f.Missing {
		t.Errorf("missing endpoint not flagged: %+v", f)
	}
}

// TestCompareMissingServerMetric covers both directions: present in
// baseline but gone (regression — the instrumentation was lost) and new
// in the current run (informational only).
func TestCompareMissingServerMetric(t *testing.T) {
	base, cur := benchPair()
	delete(cur.Server, "dimsat_cache_work_expansions_total")
	fs := Compare(base, cur, DefaultThresholds())
	f := findingFor(t, fs, "server/dimsat_cache_work_expansions_total")
	if !f.Regression || !f.Missing {
		t.Errorf("vanished server metric not flagged: %+v", f)
	}

	base2, cur2 := benchPair()
	delete(base2.Server, "dimsat_cache_work_checks_total")
	fs2 := Compare(base2, cur2, DefaultThresholds())
	f2 := findingFor(t, fs2, "server/dimsat_cache_work_checks_total")
	if f2.Regression {
		t.Errorf("metric absent from baseline must not regress: %+v", f2)
	}
}

// TestCompareZeroBaseline: with a zero baseline the fractional rule is
// undefined, so the floor decides.
func TestCompareZeroBaseline(t *testing.T) {
	base, cur := benchPair()
	cur.Server["dimsat_http_shed_total"] = 50 // floor is 100
	if f := findingFor(t, Compare(base, cur, DefaultThresholds()), "server/dimsat_http_shed_total"); f.Regression {
		t.Errorf("zero-baseline rise below the floor flagged: %+v", f)
	}
	cur.Server["dimsat_http_shed_total"] = 5000
	if f := findingFor(t, Compare(base, cur, DefaultThresholds()), "server/dimsat_http_shed_total"); !f.Regression {
		t.Errorf("zero-baseline rise above the floor not flagged: %+v", f)
	}
}

// TestCompareErrorsBudget: errors gate on an absolute budget over the
// baseline, not a fraction (1 error vs 0 is infinite growth).
func TestCompareErrorsBudget(t *testing.T) {
	base, cur := benchPair()
	cur.Errors = 1
	if f := findingFor(t, Compare(base, cur, DefaultThresholds()), "errors"); !f.Regression {
		t.Errorf("1 new error with budget 0 not flagged: %+v", f)
	}
	th := DefaultThresholds()
	th.ErrorsAllowed = 2
	if f := findingFor(t, Compare(base, cur, th), "errors"); f.Regression {
		t.Errorf("1 new error within budget 2 flagged: %+v", f)
	}
}

// TestCompareEffortRegression: a server effort counter past fraction and
// floor regresses, and the cache-hit family is never gated.
func TestCompareEffortRegression(t *testing.T) {
	base, cur := benchPair()
	cur.Server["dimsat_cache_work_expansions_total"] = 2000 // +100% > 50%, rise 1000 > 100
	fs := Compare(base, cur, DefaultThresholds())
	if f := findingFor(t, fs, "server/dimsat_cache_work_expansions_total"); !f.Regression {
		t.Errorf("doubled expansions not flagged: %+v", f)
	}
	for _, f := range fs {
		if strings.Contains(f.Metric, "cache_hits") {
			t.Errorf("higher-is-better metric compared: %+v", f)
		}
	}
}

// TestCompareOverride: a per-metric override loosens one gate without
// touching the others.
func TestCompareOverride(t *testing.T) {
	base, cur := benchPair()
	es := cur.Endpoints["sat"]
	es.P99Ms = 20
	cur.Endpoints["sat"] = es
	th := DefaultThresholds()
	th.Override = map[string]float64{"endpoint/sat/p99_ms": 10} // allow 1000%
	fs := Compare(base, cur, th)
	if f := findingFor(t, fs, "endpoint/sat/p99_ms"); f.Regression {
		t.Errorf("override ignored: %+v", f)
	}
	if HasRegression(fs) {
		t.Errorf("unexpected regression elsewhere: %v", fs)
	}
}

// TestGenerousThresholdsAbsorbSlowMachine: a uniformly 10x-slower run
// passes the bench-smoke preset, but new errors still fail it.
func TestGenerousThresholdsAbsorbSlowMachine(t *testing.T) {
	base, cur := benchPair()
	for op, es := range cur.Endpoints {
		es.P50Ms *= 10
		es.P90Ms *= 10
		es.P99Ms *= 10
		es.P999Ms *= 10
		cur.Endpoints[op] = es
	}
	cur.ThroughputRPS = base.ThroughputRPS / 10
	fs := Compare(base, cur, GenerousThresholds())
	if HasRegression(fs) {
		t.Fatalf("10x slower machine failed the generous preset: %v", fs)
	}
	cur.Errors = 3
	if !HasRegression(Compare(base, cur, GenerousThresholds())) {
		t.Fatal("errors passed the generous preset")
	}
}
