package loadgen

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"olapdim/internal/obs"
)

// maxJobWait bounds how long one OpJobs request polls for a terminal
// state after the issuing phase has ended, so a wedged job cannot hang
// the drain.
const maxJobWait = 30 * time.Second

// Runner executes one spec against a live server. Base is the server's
// root URL ("http://127.0.0.1:8080"); a nil Client uses a dedicated one
// with keep-alives sized to the concurrency.
type Runner struct {
	Spec   Spec
	Base   string
	Client *http.Client
	// Logf, when non-nil, receives progress lines (scrape warnings, run
	// phases).
	Logf func(format string, args ...any)
	// SchemaSource annotates Workload.SchemaSource in the report when
	// the run drove an explicit schema.
	SchemaSource string
}

func (rn *Runner) logf(format string, args ...any) {
	if rn.Logf != nil {
		rn.Logf(format, args...)
	}
}

// opStats accumulates the client-side view of one operation. The
// histogram holds seconds; max and sum are tracked exactly since the
// histogram only bounds them bucket-wise.
type opStats struct {
	mu    sync.Mutex
	hist  *obs.Histogram
	count int64
	errs  int64
	shed  int64
	sum   float64
	max   float64
	// maxTraceID is the X-Trace-ID of the request behind max — replaced
	// (even with "") whenever a slower request lands, so it never names
	// a different, faster request.
	maxTraceID string
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeShed
	outcomeErr
)

func (o *opStats) observe(d time.Duration, out outcome, traceID string) {
	s := d.Seconds()
	o.mu.Lock()
	defer o.mu.Unlock()
	o.count++
	o.sum += s
	if s > o.max {
		o.max = s
		o.maxTraceID = traceID
	}
	o.hist.Observe(s)
	switch out {
	case outcomeShed:
		o.shed++
	case outcomeErr:
		o.errs++
	}
}

func (o *opStats) stats() EndpointStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	es := EndpointStats{Count: o.count, Errors: o.errs, Shed: o.shed}
	if o.count > 0 {
		toMS := func(s float64) float64 { return s * 1000 }
		es.MeanMs = toMS(o.sum / float64(o.count))
		es.P50Ms = toMS(o.hist.Quantile(0.50))
		es.P90Ms = toMS(o.hist.Quantile(0.90))
		es.P99Ms = toMS(o.hist.Quantile(0.99))
		es.P999Ms = toMS(o.hist.Quantile(0.999))
		es.MaxMs = toMS(o.max)
		es.SlowestTraceID = o.maxTraceID
	}
	return es
}

// timedRequest pairs a planned request with its scheduled start: the
// moment latency is measured from. In closed loop the schedule is the
// actual send; in open loop it is the arrival-process tick, which is
// what makes the capture coordinated-omission-safe — a server that
// stalls delays every subsequent scheduled request's measured latency
// instead of silently thinning the sample.
type timedRequest struct {
	req   Request
	sched time.Time
}

// Run drives the target and assembles the report. The context bounds the
// whole run; cancellation stops issuing and drains in-flight requests.
func (rn *Runner) Run(ctx context.Context) (*Report, error) {
	spec := rn.Spec.withDefaults()
	base := strings.TrimSuffix(rn.Base, "/")
	client := rn.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        spec.Concurrency * 2,
			MaxIdleConnsPerHost: spec.Concurrency * 2,
		}}
	}
	planner, err := NewPlanner(spec)
	if err != nil {
		return nil, err
	}

	before, err := Scrape(ctx, client, base)
	if err != nil {
		rn.logf("loadgen: pre-run metrics scrape failed (%v); server deltas will be empty", err)
		before = nil
	}
	clusterBefore := rn.scrapeCluster(ctx, client, base)

	stats := map[string]*opStats{}
	for _, op := range Ops() {
		if spec.Mix[op] > 0 {
			stats[op] = &opStats{hist: obs.NewHistogram(obs.LatencyBuckets())}
		}
	}
	var warmupCount atomic.Int64
	var transportErrs atomic.Int64

	start := time.Now()
	warmupEnd := start.Add(spec.Warmup)
	end := start.Add(spec.Duration)
	var wg sync.WaitGroup

	execute := func(tr timedRequest) {
		out, traceID := rn.execute(ctx, client, base, spec, tr.req, end, &transportErrs)
		d := time.Since(tr.sched)
		if tr.sched.Before(warmupEnd) {
			warmupCount.Add(1)
			return
		}
		stats[tr.req.Op].observe(d, out, traceID)
	}

	if spec.Rate > 0 {
		// Open loop: fixed arrival schedule, bounded in-flight slots. A
		// full slot table blocks the producer (noted in the report as
		// lower measured throughput) rather than dropping arrivals.
		interval := time.Duration(float64(time.Second) / spec.Rate)
		slots := make(chan struct{}, spec.Concurrency)
		for i := 0; ; i++ {
			if ctx.Err() != nil {
				break
			}
			if spec.MaxRequests > 0 && i >= spec.MaxRequests {
				break
			}
			sched := start.Add(time.Duration(i) * interval)
			if sched.After(end) {
				break
			}
			if d := time.Until(sched); d > 0 {
				time.Sleep(d)
			}
			slots <- struct{}{}
			tr := timedRequest{req: planner.Next(), sched: sched}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				execute(tr)
			}()
		}
	} else {
		// Closed loop: a single producer feeds workers in stream order,
		// so the issued sequence is the planner's sequence even though
		// completions interleave.
		ch := make(chan timedRequest)
		for w := 0; w < spec.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for tr := range ch {
					execute(tr)
				}
			}()
		}
		issued := 0
		for ctx.Err() == nil && time.Now().Before(end) {
			if spec.MaxRequests > 0 && issued >= spec.MaxRequests {
				break
			}
			ch <- timedRequest{req: planner.Next(), sched: time.Now()}
			issued++
		}
		close(ch)
	}
	wg.Wait()
	issueDur := time.Since(start)

	after, err := Scrape(ctx, client, base)
	if err != nil {
		rn.logf("loadgen: post-run metrics scrape failed (%v); server deltas will be empty", err)
		after = nil
	}

	rep := &Report{
		SchemaVersion: ReportSchemaVersion,
		Tool:          "dimsatload",
		StartedAt:     start.UTC().Format(time.RFC3339),
		Build:         obs.GetBuildInfo(),
		Machine:       machineInfo(),
		Seed:          spec.Seed,
		Workload: Workload{
			Mode:            spec.Mode(),
			Target:          base,
			Mix:             FormatMix(spec.Mix),
			Rate:            spec.Rate,
			Concurrency:     spec.Concurrency,
			DurationSeconds: spec.Duration.Seconds(),
			WarmupSeconds:   spec.Warmup.Seconds(),
			SourcesMax:      spec.SourcesMax,
		},
		DurationSeconds: issueDur.Seconds(),
		WarmupRequests:  warmupCount.Load(),
		Endpoints:       map[string]EndpointStats{},
		Server:          map[string]float64{},
	}
	if spec.SchemaText == "" {
		ss := spec.Schema
		ss.Seed = spec.Seed
		rep.Workload.Schema = &ss
	} else {
		rep.Workload.SchemaSource = rn.SchemaSource
	}
	for op, st := range stats {
		es := st.stats()
		if es.Count == 0 {
			continue
		}
		rep.Endpoints[op] = es
		rep.Requests += es.Count
		rep.Errors += es.Errors
		rep.Shed += es.Shed
	}
	rep.TransportErrors = transportErrs.Load()
	if measured := issueDur - spec.Warmup; measured > 0 && rep.Requests > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / measured.Seconds()
	}
	if before != nil && after != nil {
		rep.Server = DeltaCounters(before, after)
	}
	if clusterAfter := rn.scrapeCluster(ctx, client, base); clusterAfter != nil {
		rep.Cluster = clusterDelta(clusterBefore, clusterAfter)
	}
	return rep, nil
}

// clusterView is the subset of the coordinator's GET /cluster answer the
// load generator reads for shard balance.
type clusterView struct {
	Workers []struct {
		Name     string `json:"name"`
		Forwards int64  `json:"forwards"`
	} `json:"workers"`
	Healthy int `json:"healthy"`
}

// scrapeCluster fetches GET /cluster; nil when the target is not a
// coordinator (404 from a plain dimsatd) or the fetch fails — cluster
// stats are strictly optional.
func (rn *Runner) scrapeCluster(ctx context.Context, client *http.Client, base string) *clusterView {
	status, body, _, err := rn.do(ctx, client, base, http.MethodGet, "/cluster", "")
	if err != nil || status != http.StatusOK {
		return nil
	}
	var v clusterView
	if err := json.Unmarshal(body, &v); err != nil {
		return nil
	}
	return &v
}

// clusterDelta computes the per-worker forward deltas over the run. The
// GET /metrics scrape cannot supply these: ParseMetrics sums labeled
// series, so olapdim_cluster_forwards_total{worker} collapses to one
// number there.
func clusterDelta(before, after *clusterView) *ClusterStats {
	cs := &ClusterStats{
		Workers:  len(after.Workers),
		Healthy:  after.Healthy,
		Forwards: map[string]int64{},
	}
	prev := map[string]int64{}
	if before != nil {
		for _, w := range before.Workers {
			prev[w.Name] = w.Forwards
		}
	}
	for _, w := range after.Workers {
		cs.Forwards[w.Name] = w.Forwards - prev[w.Name]
	}
	return cs
}

// execute performs one request and classifies the outcome, returning the
// initial request's trace ID so the per-op stats can name the slowest
// observation's trace. OpJobs spans submit plus polling to a terminal
// state; the trace ID is the submit's (the traced request), not a poll's.
func (rn *Runner) execute(ctx context.Context, client *http.Client, base string, spec Spec, req Request, end time.Time, transportErrs *atomic.Int64) (outcome, string) {
	status, body, traceID, err := rn.do(ctx, client, base, req.Method, req.Path, req.Body)
	if err != nil {
		transportErrs.Add(1)
		return outcomeErr, traceID
	}
	switch {
	case status == http.StatusTooManyRequests:
		return outcomeShed, traceID
	case status < 200 || status > 299:
		return outcomeErr, traceID
	}
	if req.Op != OpJobs {
		return outcomeOK, traceID
	}
	// Poll the submitted job to a terminal state.
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &view); err != nil || view.ID == "" {
		return outcomeErr, traceID
	}
	deadline := end.Add(maxJobWait)
	for {
		switch view.State {
		case "done":
			return outcomeOK, traceID
		case "failed", "cancelled":
			return outcomeErr, traceID
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return outcomeErr, traceID
		}
		time.Sleep(spec.JobPollInterval)
		status, body, _, err = rn.do(ctx, client, base, http.MethodGet, "/jobs/"+view.ID, "")
		if err != nil {
			transportErrs.Add(1)
			return outcomeErr, traceID
		}
		if status != http.StatusOK {
			return outcomeErr, traceID
		}
		if err := json.Unmarshal(body, &view); err != nil {
			return outcomeErr, traceID
		}
	}
}

// do issues one HTTP request and returns status, body, and the server's
// X-Trace-ID response header ("" when the target does not trace).
func (rn *Runner) do(ctx context.Context, client *http.Client, base, method, path, body string) (int, []byte, string, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return 0, nil, "", err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-ID")
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, nil, traceID, err
	}
	return resp.StatusCode, b, traceID, nil
}

func machineInfo() Machine {
	host, _ := os.Hostname()
	return Machine{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Hostname:   host,
	}
}
