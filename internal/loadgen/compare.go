package loadgen

import (
	"fmt"
	"sort"
)

// Thresholds tunes what Compare counts as a regression. Fractional
// thresholds are relative to the baseline value; floors suppress noise
// when the absolute change is too small to mean anything. Override
// replaces the fractional threshold for a single metric by its finding
// name (e.g. "endpoint/sat/p99_ms", "server/dimsat_cache_work_expansions_total").
type Thresholds struct {
	// LatencyFrac is the allowed fractional increase of any latency
	// percentile before it counts as a regression.
	LatencyFrac float64
	// LatencyFloorMs suppresses latency regressions whose absolute
	// increase is below this many milliseconds.
	LatencyFloorMs float64
	// ThroughputFrac is the allowed fractional decrease in throughput.
	ThroughputFrac float64
	// EffortFrac is the allowed fractional increase of a server-side
	// effort counter delta (expansions, dead ends, shed, timeouts).
	EffortFrac float64
	// EffortFloor suppresses effort regressions whose absolute increase
	// is below this many counts — and is the zero-baseline rule: when
	// the baseline delta is 0, any new value above the floor regresses.
	EffortFloor float64
	// ErrorsAllowed is the absolute number of extra errors (over the
	// baseline) tolerated before the run regresses.
	ErrorsAllowed int64
	// EffortMetrics lists the server counter families to compare, all
	// with higher-is-worse semantics. Nil means DefaultEffortMetrics.
	// (Cache hits and similar higher-is-better counters must not be
	// listed; they are reported informationally, never as regressions.)
	EffortMetrics []string
	// Override maps a finding metric name to a replacement fractional
	// threshold.
	Override map[string]float64
}

// DefaultEffortMetrics is the higher-is-worse server-counter set: paper
// search effort (EXPAND steps, CHECK steps, pruning dead ends), overload
// shedding, request timeouts and contained panics.
func DefaultEffortMetrics() []string {
	return []string{
		"dimsat_cache_work_expansions_total",
		"dimsat_cache_work_checks_total",
		"dimsat_cache_work_dead_ends_total",
		"dimsat_http_shed_total",
		"dimsat_http_request_timeouts_total",
		"dimsat_contained_panics_total",
		"dimsat_pool_task_errors_total",
	}
}

// DefaultThresholds is tuned for same-machine run pairs: 25% latency
// headroom over a 2ms floor, 20% throughput, 50% search effort.
func DefaultThresholds() Thresholds {
	return Thresholds{
		LatencyFrac:    0.25,
		LatencyFloorMs: 2,
		ThroughputFrac: 0.20,
		EffortFrac:     0.50,
		EffortFloor:    100,
		ErrorsAllowed:  0,
	}
}

// GenerousThresholds is the bench-smoke preset: wide enough that a CI
// worker an order of magnitude slower than the baseline machine still
// passes, while structural failures (errors, missing endpoints, panics)
// keep failing.
func GenerousThresholds() Thresholds {
	return Thresholds{
		LatencyFrac:    50,
		LatencyFloorMs: 250,
		ThroughputFrac: 0.98,
		EffortFrac:     50,
		EffortFloor:    100000,
		ErrorsAllowed:  0,
	}
}

// Finding is one compared metric. Regression findings carry the reason
// in Note; improvements and in-threshold changes are reported too, so
// benchdiff output reads as a full run diff, not only the failures.
type Finding struct {
	// Metric names the comparison: "throughput_rps", "errors",
	// "endpoint/<op>/<stat>", "server/<family>".
	Metric string
	// Base and New are the compared values (NaN-free; missing metrics
	// set Missing instead).
	Base, New float64
	// Missing marks a metric present in the baseline but absent from
	// the new run — always a regression (a silently vanished endpoint
	// must not pass a perf gate).
	Missing bool
	// Regression reports whether this finding fails the gate.
	Regression bool
	// Note explains the verdict.
	Note string
}

func (f Finding) String() string {
	verdict := "ok"
	if f.Regression {
		verdict = "REGRESSION"
	}
	if f.Missing {
		return fmt.Sprintf("%-10s %-52s base=%.4g new=missing (%s)", verdict, f.Metric, f.Base, f.Note)
	}
	return fmt.Sprintf("%-10s %-52s base=%.4g new=%.4g (%s)", verdict, f.Metric, f.Base, f.New, f.Note)
}

// frac returns the fractional change from base, handling base == 0 by
// convention at the call sites.
func frac(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (new - base) / base
}

func (t Thresholds) fracFor(metric string, def float64) float64 {
	if v, ok := t.Override[metric]; ok {
		return v
	}
	return def
}

// Compare diffs a new run against a baseline under the thresholds and
// returns one finding per compared metric, regressions first, then by
// name. HasRegression reduces the list to the exit code.
func Compare(base, cur *Report, th Thresholds) []Finding {
	if th.EffortMetrics == nil {
		th.EffortMetrics = DefaultEffortMetrics()
	}
	var out []Finding

	// Throughput: lower is worse.
	{
		m := "throughput_rps"
		f := Finding{Metric: m, Base: base.ThroughputRPS, New: cur.ThroughputRPS}
		allowed := th.fracFor(m, th.ThroughputFrac)
		drop := -frac(base.ThroughputRPS, cur.ThroughputRPS)
		switch {
		case base.ThroughputRPS == 0:
			f.Note = "no baseline throughput"
		case drop > allowed:
			f.Regression = true
			f.Note = fmt.Sprintf("-%.1f%% exceeds the %.0f%% budget", drop*100, allowed*100)
		case drop < 0:
			f.Note = fmt.Sprintf("improved %.1f%%", -drop*100)
		default:
			f.Note = fmt.Sprintf("-%.1f%% within budget", drop*100)
		}
		out = append(out, f)
	}

	// Errors: absolute budget over the baseline.
	{
		f := Finding{Metric: "errors", Base: float64(base.Errors), New: float64(cur.Errors)}
		extra := cur.Errors - base.Errors
		if extra > th.ErrorsAllowed {
			f.Regression = true
			f.Note = fmt.Sprintf("%d new errors exceed the budget of %d", extra, th.ErrorsAllowed)
		} else {
			f.Note = "within budget"
		}
		out = append(out, f)
	}

	// Per-endpoint latency percentiles: higher is worse.
	var ops []string
	for op := range base.Endpoints {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		bs := base.Endpoints[op]
		cs, ok := cur.Endpoints[op]
		if !ok {
			out = append(out, Finding{
				Metric: "endpoint/" + op, Base: float64(bs.Count),
				Missing: true, Regression: true,
				Note: "endpoint present in baseline but absent from the new run",
			})
			continue
		}
		for _, q := range []struct {
			name      string
			base, new float64
		}{
			{"p50_ms", bs.P50Ms, cs.P50Ms},
			{"p90_ms", bs.P90Ms, cs.P90Ms},
			{"p99_ms", bs.P99Ms, cs.P99Ms},
			{"p999_ms", bs.P999Ms, cs.P999Ms},
		} {
			m := fmt.Sprintf("endpoint/%s/%s", op, q.name)
			f := Finding{Metric: m, Base: q.base, New: q.new}
			allowed := th.fracFor(m, th.LatencyFrac)
			rise := q.new - q.base
			switch {
			case q.base == 0 && q.new > th.LatencyFloorMs:
				f.Regression = true
				f.Note = fmt.Sprintf("zero baseline, new value above the %.3gms floor", th.LatencyFloorMs)
			case q.base > 0 && frac(q.base, q.new) > allowed && rise > th.LatencyFloorMs:
				f.Regression = true
				f.Note = fmt.Sprintf("+%.1f%% exceeds the %.0f%% budget", frac(q.base, q.new)*100, allowed*100)
			case rise < 0:
				f.Note = fmt.Sprintf("improved %.1f%%", -frac(q.base, q.new)*100)
			default:
				f.Note = "within budget"
			}
			out = append(out, f)
		}
	}

	// Server-side effort counters: higher is worse.
	for _, name := range th.EffortMetrics {
		bv, inBase := base.Server[name]
		cv, inCur := cur.Server[name]
		m := "server/" + name
		if !inBase {
			// Nothing to gate on; note it so a thinning baseline is visible.
			out = append(out, Finding{Metric: m, New: cv, Note: "not in baseline"})
			continue
		}
		if !inCur {
			out = append(out, Finding{
				Metric: m, Base: bv, Missing: true, Regression: true,
				Note: "metric present in baseline but absent from the new run",
			})
			continue
		}
		f := Finding{Metric: m, Base: bv, New: cv}
		allowed := th.fracFor(m, th.EffortFrac)
		rise := cv - bv
		switch {
		case bv == 0 && cv > th.EffortFloor:
			f.Regression = true
			f.Note = fmt.Sprintf("zero baseline, new value above the %.0f floor", th.EffortFloor)
		case bv > 0 && frac(bv, cv) > allowed && rise > th.EffortFloor:
			f.Regression = true
			f.Note = fmt.Sprintf("+%.1f%% exceeds the %.0f%% budget", frac(bv, cv)*100, allowed*100)
		case rise < 0:
			f.Note = "improved"
		default:
			f.Note = "within budget"
		}
		out = append(out, f)
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Regression != out[j].Regression {
			return out[i].Regression
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// HasRegression reports whether any finding fails the gate.
func HasRegression(fs []Finding) bool {
	for _, f := range fs {
		if f.Regression {
			return true
		}
	}
	return false
}
