// Package loadgen is the performance-measurement harness of the
// dimension-constraint service: a deterministic, seeded load generator
// that drives a dimsatd server over HTTP and emits a schema-versioned
// BENCH run record that cmd/benchdiff can compare across commits.
//
// The pieces compose into a closed measurement loop:
//
//   - Planner (plan.go) turns one seed into an infinite, reproducible
//     request stream over a schema family from internal/gen: the same
//     seed always yields byte-identical requests, so two runs differ
//     only in the code under test.
//   - Runner (run.go) executes the stream against a live server in
//     open-loop mode (fixed arrival rate with latencies measured from
//     the *scheduled* send time, so a stalled server cannot hide behind
//     coordinated omission) or closed-loop mode (fixed concurrency),
//     capturing per-endpoint latency histograms after a warmup.
//   - Scrape (scrape.go) reads GET /metrics before and after the run
//     and keeps the counter deltas, so client-observed latency and the
//     server's paper-level search effort (EXPAND steps, prunes, cache
//     hits, shed requests, checkpoint writes) land in one record.
//   - Report (report.go) is the BENCH_*.json schema; Compare
//     (compare.go) diffs two reports under per-metric thresholds and
//     is what `make bench-diff` exits non-zero on.
//
// See docs/BENCHMARKING.md for the workload mixes and the regression
// workflow.
package loadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"olapdim/internal/gen"
)

// Workload operation names, usable as keys in Spec.Mix.
const (
	// OpSat issues GET /sat for a random category (Theorem 4 DIMSAT).
	OpSat = "sat"
	// OpCategories issues GET /categories (a full satisfiability sweep).
	OpCategories = "categories"
	// OpImplies posts a constraint-implication query, drawn half from
	// the schema's own Σ (implied) and half synthesized from edges.
	OpImplies = "implies"
	// OpSummarizable posts a summarizability query for a random target
	// and a small source set drawn from categories below it.
	OpSummarizable = "summarizable"
	// OpSources issues GET /sources, the minimal-source-set enumeration.
	OpSources = "sources"
	// OpMatrix issues GET /matrix, the full single-source matrix.
	OpMatrix = "matrix"
	// OpJobs submits a durable job (POST /jobs) and polls it to a
	// terminal state; the recorded latency spans submit to completion.
	OpJobs = "jobs"
	// OpExplain issues GET /explain for a random category: the verdict
	// plus touched-set provenance and, on UNSAT, the shrink-probe loop
	// that extracts the minimal unsat core.
	OpExplain = "explain"
)

// Ops lists every operation in canonical order.
func Ops() []string {
	return []string{OpSat, OpCategories, OpImplies, OpSummarizable, OpSources, OpMatrix, OpJobs, OpExplain}
}

// Spec parameterizes one load-generation run. The zero value is not
// runnable; use Defaults (or fill the fields) and validate via
// NewPlanner.
type Spec struct {
	// Seed drives all randomness: the schema family (its Seed field is
	// overwritten with this one) and the request sampling. Two runs with
	// equal Seed and workload parameters issue byte-identical request
	// streams.
	Seed int64
	// Schema is the generated schema family driven by internal/gen when
	// SchemaText is empty; Schema.Seed is ignored in favor of Seed.
	Schema gen.SchemaSpec
	// SchemaText, when non-empty, is a schema in .dims syntax used
	// instead of a generated one — it must match the schema the target
	// server hosts or most requests will answer 400.
	SchemaText string
	// Mix assigns an integer weight to each operation; nil means
	// DefaultMix. Operations with weight 0 are never issued.
	Mix map[string]int
	// Rate, when positive, selects open-loop mode: requests are
	// scheduled at this fixed arrival rate (per second) and latency is
	// measured from the scheduled time. Zero selects closed-loop mode.
	Rate float64
	// Concurrency is the worker count in closed-loop mode and the cap on
	// in-flight requests in open-loop mode. Zero means 8 (closed) or 256
	// (open — a tight cap would block the arrival schedule and
	// reintroduce coordinated omission).
	Concurrency int
	// Duration bounds the request-issuing phase. Zero means 10s.
	Duration time.Duration
	// Warmup discards samples scheduled before this offset from the
	// start, so connection setup and cold caches do not pollute the
	// percentiles. Zero means no warmup.
	Warmup time.Duration
	// MaxRequests, when positive, additionally bounds the number of
	// issued requests.
	MaxRequests int
	// SourcesMax is the max source-set size passed to GET /sources.
	// Zero means 2.
	SourcesMax int
	// JobPollInterval is the poll cadence for OpJobs. Zero means 20ms.
	JobPollInterval time.Duration
}

// Defaults returns a runnable spec: the e1-family schema at N=12
// categories, the default mix, closed loop at concurrency 8 for 10s.
func Defaults() Spec {
	return Spec{
		Schema: gen.SchemaSpec{
			Categories:    12,
			Levels:        4,
			ExtraEdgeProb: 0.3,
			ChoiceProb:    0.4,
			Constants:     2,
			CondProb:      0.3,
			IntoFrac:      0.5,
		},
	}
}

// DefaultMix is the standard workload blend: satisfiability-heavy with
// implication and summarizability alongside, a trickle of
// minimal-sources enumerations, explain requests and durable jobs, no
// full matrices.
func DefaultMix() map[string]int {
	return map[string]int{
		OpSat:          8,
		OpImplies:      5,
		OpSummarizable: 4,
		OpSources:      2,
		OpExplain:      1,
		OpJobs:         1,
	}
}

// withDefaults resolves the zero values documented on Spec.
func (s Spec) withDefaults() Spec {
	if s.Mix == nil {
		s.Mix = DefaultMix()
	}
	if s.Concurrency <= 0 {
		if s.Rate > 0 {
			s.Concurrency = 256
		} else {
			s.Concurrency = 8
		}
	}
	if s.Duration <= 0 {
		s.Duration = 10 * time.Second
	}
	if s.SourcesMax <= 0 {
		s.SourcesMax = 2
	}
	if s.JobPollInterval <= 0 {
		s.JobPollInterval = 20 * time.Millisecond
	}
	return s
}

// Mode names the loop discipline of a spec.
func (s Spec) Mode() string {
	if s.Rate > 0 {
		return "open"
	}
	return "closed"
}

// ParseMix parses "sat=8,implies=5,jobs=1" into a mix map, rejecting
// unknown operations and non-positive weights.
func ParseMix(src string) (map[string]int, error) {
	known := map[string]bool{}
	for _, op := range Ops() {
		known[op] = true
	}
	out := map[string]int{}
	for _, part := range strings.Split(src, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: mix entry %q is not op=weight", part)
		}
		if !known[op] {
			return nil, fmt.Errorf("loadgen: unknown operation %q (want one of %s)", op, strings.Join(Ops(), ", "))
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("loadgen: weight for %q must be a non-negative integer, got %q", op, val)
		}
		out[op] = w
	}
	total := 0
	for _, w := range out {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("loadgen: mix %q has no positive weights", src)
	}
	return out, nil
}

// FormatMix renders a mix in the ParseMix syntax with operations in
// canonical order, for echoing into reports and logs.
func FormatMix(mix map[string]int) string {
	var parts []string
	for _, op := range Ops() {
		if w := mix[op]; w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", op, w))
		}
	}
	// Defensive: include any non-canonical keys deterministically.
	var rest []string
	for op, w := range mix {
		found := false
		for _, k := range Ops() {
			if op == k {
				found = true
			}
		}
		if !found && w > 0 {
			rest = append(rest, fmt.Sprintf("%s=%d", op, w))
		}
	}
	sort.Strings(rest)
	return strings.Join(append(parts, rest...), ",")
}
