package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/url"
	"sort"

	"olapdim/internal/constraint"
	"olapdim/internal/core"
	"olapdim/internal/gen"
	"olapdim/internal/schema"
)

// Request is one planned HTTP request. Everything the executor needs is
// rendered up front — method, path (with query), JSON body — so the
// stream a planner emits is a pure function of the seed and can be
// compared byte for byte across runs.
type Request struct {
	// Index is the position in the stream, starting at 0.
	Index int `json:"index"`
	// Op is the workload operation (OpSat, ...), the key latency is
	// reported under.
	Op string `json:"op"`
	// Method and Path form the request line; Path includes the query.
	Method string `json:"method"`
	Path   string `json:"path"`
	// Body is the JSON request body for POSTs, empty otherwise.
	Body string `json:"body,omitempty"`
}

// Line renders the request as one log line, the unit of the dry-run
// request log and the determinism test.
func (r Request) Line() string {
	if r.Body == "" {
		return fmt.Sprintf("%06d %s %s %s", r.Index, r.Op, r.Method, r.Path)
	}
	return fmt.Sprintf("%06d %s %s %s %s", r.Index, r.Op, r.Method, r.Path, r.Body)
}

// Planner emits the deterministic request stream for one spec. It is not
// safe for concurrent use; the runner consumes it from a single
// producer goroutine, which is also what keeps the stream order
// reproducible.
type Planner struct {
	rng   *rand.Rand
	spec  Spec
	ds    *core.DimensionSchema
	ops   []string // operations with positive weight, canonical order
	cum   []int    // cumulative weights aligned with ops
	total int

	cats      []string            // all categories except All
	nonBottom []string            // non-All, non-bottom categories
	sigma     []string            // rendered schema constraints
	edges     [][2]string         // (child, parent) edges excluding All
	below     map[string][]string // target -> categories that reach it (strictly below)

	n int
}

// NewPlanner builds the planner and the schema it samples from. When
// spec.SchemaText is empty the schema comes from internal/gen with
// spec.Seed threaded into the generator, so one seed pins both the
// schema family instance and the request sampling.
func NewPlanner(spec Spec) (*Planner, error) {
	spec = spec.withDefaults()
	var ds *core.DimensionSchema
	var err error
	if spec.SchemaText != "" {
		ds, err = core.Parse(spec.SchemaText)
		if err != nil {
			return nil, fmt.Errorf("loadgen: parsing schema text: %w", err)
		}
	} else {
		ss := spec.Schema
		ss.Seed = spec.Seed
		ds, err = gen.Schema(ss)
		if err != nil {
			return nil, fmt.Errorf("loadgen: generating schema: %w", err)
		}
	}
	p := &Planner{
		rng:   rand.New(rand.NewSource(spec.Seed)),
		spec:  spec,
		ds:    ds,
		below: map[string][]string{},
	}
	for _, op := range Ops() {
		if w := spec.Mix[op]; w > 0 {
			p.ops = append(p.ops, op)
			p.total += w
			p.cum = append(p.cum, p.total)
		}
	}
	if p.total == 0 {
		return nil, fmt.Errorf("loadgen: workload mix has no positive weights")
	}
	bottoms := map[string]bool{}
	for _, b := range ds.G.Bottoms() {
		bottoms[b] = true
	}
	for _, c := range ds.G.SortedCategories() {
		if c == schema.All {
			continue
		}
		p.cats = append(p.cats, c)
		if !bottoms[c] {
			p.nonBottom = append(p.nonBottom, c)
		}
		for _, parent := range ds.G.Out(c) {
			if parent != schema.All {
				p.edges = append(p.edges, [2]string{c, parent})
			}
		}
	}
	for _, e := range ds.Sigma {
		p.sigma = append(p.sigma, fmt.Sprint(e))
	}
	for _, target := range p.nonBottom {
		var srcs []string
		for _, c := range p.cats {
			if c != target && ds.G.Reaches(c, target) {
				srcs = append(srcs, c)
			}
		}
		sort.Strings(srcs)
		p.below[target] = srcs
	}
	return p, nil
}

// Schema returns the schema the planner samples requests from — the one
// the target server must host for the stream to be valid.
func (p *Planner) Schema() *core.DimensionSchema { return p.ds }

// Next returns the next request in the stream.
func (p *Planner) Next() Request {
	op := p.pickOp()
	req := Request{Index: p.n, Op: op, Method: "GET"}
	p.n++
	switch op {
	case OpSat:
		req.Path = "/sat?category=" + url.QueryEscape(p.pick(p.cats))
	case OpCategories:
		req.Path = "/categories"
	case OpImplies:
		req.Method, req.Path = "POST", "/implies"
		req.Body = mustJSON(map[string]string{"constraint": p.pickConstraint()})
	case OpSummarizable:
		target, from := p.pickSummarizable()
		req.Method, req.Path = "POST", "/summarizable"
		req.Body = mustJSON(map[string]any{"target": target, "from": from})
	case OpSources:
		target := p.pickTarget()
		req.Path = fmt.Sprintf("/sources?max=%d&target=%s", p.spec.SourcesMax, url.QueryEscape(target))
	case OpMatrix:
		req.Path = "/matrix"
	case OpJobs:
		req.Method, req.Path = "POST", "/jobs"
		req.Body = mustJSON(map[string]string{"category": p.pick(p.cats), "kind": "sat"})
	case OpExplain:
		req.Path = "/explain?category=" + url.QueryEscape(p.pick(p.cats))
	default:
		panic(fmt.Sprintf("loadgen: unknown op %q", op))
	}
	return req
}

// pickOp draws an operation according to the mix weights.
func (p *Planner) pickOp() string {
	r := p.rng.Intn(p.total)
	for i, c := range p.cum {
		if r < c {
			return p.ops[i]
		}
	}
	return p.ops[len(p.ops)-1]
}

func (p *Planner) pick(xs []string) string { return xs[p.rng.Intn(len(xs))] }

// pickTarget prefers non-bottom categories (bottoms have nothing below
// them to summarize from) and falls back to any category.
func (p *Planner) pickTarget() string {
	if len(p.nonBottom) > 0 {
		return p.pick(p.nonBottom)
	}
	return p.pick(p.cats)
}

// pickConstraint draws the implication query: half the time a constraint
// the schema itself states (the implied case), otherwise a path
// constraint synthesized from a real edge (usually not implied), so both
// branches of the Theorem 2 reduction stay exercised.
func (p *Planner) pickConstraint() string {
	if len(p.sigma) > 0 && p.rng.Intn(2) == 0 {
		return p.pick(p.sigma)
	}
	if len(p.edges) == 0 {
		if len(p.sigma) > 0 {
			return p.pick(p.sigma)
		}
		// A trivial tautology; reachable only on degenerate schemas.
		return "true"
	}
	e := p.edges[p.rng.Intn(len(p.edges))]
	return constraint.NewPath(e[0], e[1]).String()
}

// pickSummarizable draws a target and one or two distinct source
// categories strictly below it.
func (p *Planner) pickSummarizable() (string, []string) {
	target := p.pickTarget()
	srcs := p.below[target]
	if len(srcs) == 0 {
		// Bottom-only fallback: query the target from itself, which the
		// engine answers trivially.
		return target, []string{target}
	}
	k := 1
	if len(srcs) > 1 && p.rng.Intn(2) == 0 {
		k = 2
	}
	perm := p.rng.Perm(len(srcs))[:k]
	sort.Ints(perm)
	from := make([]string, k)
	for i, idx := range perm {
		from[i] = srcs[idx]
	}
	return target, from
}

// WriteStream renders the next n requests of the stream as log lines,
// one per request — the dry-run output. Two planners built from equal
// specs produce byte-identical streams; TestPlannerDeterminism holds
// this contract.
func (p *Planner) WriteStream(w io.Writer, n int) error {
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintln(w, p.Next().Line()); err != nil {
			return err
		}
	}
	return nil
}

// mustJSON marshals a value whose keys are plain strings; encoding/json
// sorts map keys, so rendered bodies are deterministic.
func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("loadgen: marshaling request body: %v", err))
	}
	return string(b)
}
