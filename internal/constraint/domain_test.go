package constraint

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCmpAtomString(t *testing.T) {
	cases := []struct {
		a    CmpAtom
		want string
	}{
		{CmpAtom{"Product", "Price", Lt, 100}, "Product.Price<100"},
		{CmpAtom{"Product", "Price", Le, 19.5}, "Product.Price<=19.5"},
		{CmpAtom{"Product", "Price", Gt, -3}, "Product.Price>-3"},
		{CmpAtom{"Price", "Price", Ge, 0}, "Price>=0"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestCmpOpHolds(t *testing.T) {
	cases := []struct {
		op   CmpOp
		v, k float64
		want bool
	}{
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Gt, 3, 2, true}, {Gt, 2, 2, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Holds(c.v, c.k); got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.v, c.op, c.k, got, c.want)
		}
	}
}

func TestValueDomainsEqOnly(t *testing.T) {
	sigma := []Expr{
		EqAtom{"A", "D", "k2"},
		EqAtom{"A", "D", "k1"},
	}
	got := ValueDomains(sigma)
	want := map[string][]string{"D": {"k1", "k2"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ValueDomains = %v, want %v", got, want)
	}
}

func TestValueDomainsCmp(t *testing.T) {
	sigma := []Expr{
		CmpAtom{"A", "P", Lt, 10},
		CmpAtom{"A", "P", Ge, 20},
	}
	got := ValueDomains(sigma)["P"]
	// Thresholds 10 and 20, plus representatives below 10, between, above
	// 20: {9, 10, 15, 20, 21} (rendered, sorted lexicographically).
	want := []string{"10", "15", "20", "21", "9"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("domain = %v, want %v", got, want)
	}
}

func TestValueDomainsAvoidsEqCollision(t *testing.T) {
	// The midpoint of (10, 20) is 15, which collides with an equality
	// constant; the representative must move off it so the "between, but
	// not named 15" profile keeps a witness.
	sigma := []Expr{
		CmpAtom{"A", "P", Lt, 10},
		CmpAtom{"A", "P", Ge, 20},
		EqAtom{"A", "P", "15"},
	}
	domain := ValueDomains(sigma)["P"]
	count15 := 0
	hasStrictInterior := false
	for _, v := range domain {
		f, ok := NumValue(v)
		if !ok {
			continue
		}
		if f == 15 {
			count15++
		}
		if f > 10 && f < 20 && f != 15 {
			hasStrictInterior = true
		}
	}
	if count15 != 1 {
		t.Errorf("constant 15 should appear exactly once: %v", domain)
	}
	if !hasStrictInterior {
		t.Errorf("no interior representative distinct from 15: %v", domain)
	}
}

func TestValueDomainsBoundaryCollisions(t *testing.T) {
	// Equality constants sitting exactly where the naive below/above
	// representatives would land must be avoided.
	sigma := []Expr{
		CmpAtom{"A", "P", Lt, 10},
		EqAtom{"A", "P", "9"},
		EqAtom{"A", "P", "11"},
	}
	domain := ValueDomains(sigma)["P"]
	var below10, above10 bool
	for _, v := range domain {
		f, ok := NumValue(v)
		if !ok {
			continue
		}
		if f < 10 && v != "9" {
			below10 = true
		}
		if f > 10 && v != "11" {
			above10 = true
		}
	}
	if !below10 || !above10 {
		t.Errorf("missing uncollided region representatives: %v", domain)
	}
}

// profile computes the truth vector of all atoms of one category for a
// concrete name value.
func profile(atoms []Atom, val string) []bool {
	var out []bool
	for _, a := range atoms {
		switch a := a.(type) {
		case EqAtom:
			out = append(out, val == a.Val)
		case CmpAtom:
			f, ok := NumValue(val)
			out = append(out, ok && a.Op.Holds(f, a.Val))
		}
	}
	return out
}

// TestValueDomainsComplete: for random atom sets and random concrete
// values, some candidate (or nk) realizes the same atom-truth profile —
// the completeness property the c-assignment search relies on.
func TestValueDomainsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var atoms []Atom
		var sigma []Expr
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a := CmpAtom{"A", "P", CmpOp(rng.Intn(4)), float64(rng.Intn(20) - 10)}
				atoms = append(atoms, a)
				sigma = append(sigma, a)
			} else {
				a := EqAtom{"A", "P", FormatNum(float64(rng.Intn(20) - 10))}
				atoms = append(atoms, a)
				sigma = append(sigma, a)
			}
		}
		domain := ValueDomains(sigma)["P"]
		candidates := append([]string{"certainly-not-numeric-nk"}, domain...)
		// Try a spread of concrete values, numeric and not.
		concrete := []string{"weird", "-100", "100", "0", "0.5", "-0.5", "7", "13.25"}
		for i := 0; i < 10; i++ {
			concrete = append(concrete, FormatNum(rng.Float64()*40-20))
		}
		for _, val := range concrete {
			want := profile(atoms, val)
			found := false
			for _, c := range candidates {
				if reflect.DeepEqual(profile(atoms, c), want) {
					found = true
					break
				}
			}
			if !found {
				t.Logf("value %q profile %v has no candidate witness in %v", val, want, domain)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNumValue(t *testing.T) {
	if f, ok := NumValue("19.5"); !ok || f != 19.5 {
		t.Errorf("NumValue(19.5) = %v %v", f, ok)
	}
	if _, ok := NumValue("Canada"); ok {
		t.Error("non-numeric accepted")
	}
	if _, ok := NumValue(""); ok {
		t.Error("empty accepted")
	}
}
