package constraint

// NNF converts an expression to negation normal form: negations apply only
// to atoms, and the connectives are restricted to ∧ and ∨. Implication,
// equivalence, exclusive disjunction and ⊙ are expanded:
//
//	a -> b      ⇒  ¬a ∨ b
//	a <-> b     ⇒  (a ∧ b) ∨ (¬a ∧ ¬b)
//	a ^ b       ⇒  (a ∧ ¬b) ∨ (¬a ∧ b)
//	one(a...)   ⇒  ∨_i (a_i ∧ ⋀_{j≠i} ¬a_j)
//
// The ⊙ expansion is quadratic in its operand count; NNF exists for
// inspection, canonical display, and solver experiments, while the
// evaluators in this repository interpret the rich connectives directly.
func NNF(e Expr) Expr {
	return nnf(e, false)
}

// nnf pushes a pending negation down the tree.
func nnf(e Expr, neg bool) Expr {
	switch e := e.(type) {
	case True:
		if neg {
			return False{}
		}
		return e
	case False:
		if neg {
			return True{}
		}
		return e
	case PathAtom, EqAtom, CmpAtom, RollupAtom, ThroughAtom:
		if neg {
			return Not{X: e}
		}
		return e
	case Not:
		return nnf(e.X, !neg)
	case And:
		xs := nnfSlice(e.Xs, neg)
		if neg {
			return Or{Xs: xs} // De Morgan
		}
		return And{Xs: xs}
	case Or:
		xs := nnfSlice(e.Xs, neg)
		if neg {
			return And{Xs: xs} // De Morgan
		}
		return Or{Xs: xs}
	case Implies:
		// a -> b ≡ ¬a ∨ b; negated: a ∧ ¬b.
		if neg {
			return And{Xs: []Expr{nnf(e.A, false), nnf(e.B, true)}}
		}
		return Or{Xs: []Expr{nnf(e.A, true), nnf(e.B, false)}}
	case Iff:
		// a <-> b ≡ (a∧b) ∨ (¬a∧¬b); negated it is xor.
		if neg {
			return xorNNF(e.A, e.B)
		}
		return Or{Xs: []Expr{
			And{Xs: []Expr{nnf(e.A, false), nnf(e.B, false)}},
			And{Xs: []Expr{nnf(e.A, true), nnf(e.B, true)}},
		}}
	case Xor:
		if neg {
			// ¬(a ^ b) ≡ a <-> b.
			return Or{Xs: []Expr{
				And{Xs: []Expr{nnf(e.A, false), nnf(e.B, false)}},
				And{Xs: []Expr{nnf(e.A, true), nnf(e.B, true)}},
			}}
		}
		return xorNNF(e.A, e.B)
	case One:
		if neg {
			// ¬⊙(a...): every a false, or at least two true.
			var arms []Expr
			arms = append(arms, And{Xs: nnfSlice(e.Xs, true)})
			for i := range e.Xs {
				for j := i + 1; j < len(e.Xs); j++ {
					arms = append(arms, And{Xs: []Expr{
						nnf(e.Xs[i], false), nnf(e.Xs[j], false),
					}})
				}
			}
			return Or{Xs: arms}
		}
		var arms []Expr
		for i := range e.Xs {
			conj := make([]Expr, 0, len(e.Xs))
			for j := range e.Xs {
				conj = append(conj, nnf(e.Xs[j], i != j))
			}
			arms = append(arms, And{Xs: conj})
		}
		return Or{Xs: arms}
	}
	panic("constraint: unknown expression type")
}

func xorNNF(a, b Expr) Expr {
	return Or{Xs: []Expr{
		And{Xs: []Expr{nnf(a, false), nnf(b, true)}},
		And{Xs: []Expr{nnf(a, true), nnf(b, false)}},
	}}
}

func nnfSlice(xs []Expr, neg bool) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = nnf(x, neg)
	}
	return out
}

// IsNNF reports whether e is in negation normal form: only ∧, ∨, atoms,
// constants, and negations applied directly to atoms.
func IsNNF(e Expr) bool {
	switch e := e.(type) {
	case True, False, PathAtom, EqAtom, CmpAtom, RollupAtom, ThroughAtom:
		return true
	case Not:
		_, isAtom := e.X.(Atom)
		return isAtom
	case And:
		for _, x := range e.Xs {
			if !IsNNF(x) {
				return false
			}
		}
		return true
	case Or:
		for _, x := range e.Xs {
			if !IsNNF(x) {
				return false
			}
		}
		return true
	}
	return false
}
