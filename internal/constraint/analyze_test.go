package constraint

import (
	"reflect"
	"testing"

	"olapdim/internal/schema"
)

// diamond builds A -> B -> D, A -> C -> D, D -> All plus shortcut A -> D.
func diamond(t *testing.T) *schema.Schema {
	t.Helper()
	g := schema.New("diamond")
	for _, e := range [][2]string{
		{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"}, {"A", "D"}, {"D", schema.All},
	} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestValidate(t *testing.T) {
	g := diamond(t)
	valid := []Expr{
		NewPath("A", "B"),
		NewPath("A", "B", "D"),
		NewPath("A", "D"),
		EqAtom{"A", "D", "k"},
		RollupAtom{"A", "D"},
		ThroughAtom{"A", "B", "D"},
		NewAnd(NewPath("A", "B"), RollupAtom{"A", "D"}),
		True{},
	}
	for _, e := range valid {
		if err := Validate(e, g); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", e, err)
		}
	}
	invalid := []Expr{
		NewPath("A", "X"),                            // unknown category
		NewPath("B", "C"),                            // not an edge
		NewPath("A", "B", "C"),                       // B -> C not an edge
		PathAtom{Cats: []string{"A"}},                // too short
		EqAtom{"A", "X", "k"},                        // unknown category
		EqAtom{"A", "D", ""},                         // empty constant
		RollupAtom{"A", "X"},                         // unknown category
		ThroughAtom{"A", "X", "D"},                   // unknown via
		NewAnd(NewPath("A", "B"), NewPath("B", "D")), // mixed roots
		NewPath(schema.All, "B"),                     // not an edge and root All
	}
	for _, e := range invalid {
		if err := Validate(e, g); err == nil {
			t.Errorf("Validate(%s) accepted", e)
		}
	}
}

func TestValidateRejectsRootAll(t *testing.T) {
	g := schema.New("t")
	if err := g.AddEdge("A", schema.All); err != nil {
		t.Fatal(err)
	}
	// A fictitious rollup atom rooted at All.
	if err := Validate(RollupAtom{RootCat: schema.All, Cat: schema.All}, g); err == nil {
		t.Error("constraint rooted at All accepted")
	}
}

func TestExpandRollup(t *testing.T) {
	g := diamond(t)
	// A.D expands to the disjunction of all simple paths from A to D.
	e := Expand(RollupAtom{"A", "D"}, g)
	want := "A_B_D | A_C_D | A_D"
	if e.String() != want {
		t.Errorf("Expand(A.D) = %q, want %q", e, want)
	}
	// c.c is ⊤.
	if got := Expand(RollupAtom{"A", "A"}, g); !isTrue(got) {
		t.Errorf("Expand(A.A) = %q, want true", got)
	}
	// No path: ⊥.
	if got := Expand(RollupAtom{"B", "C"}, g); !isFalse(got) {
		t.Errorf("Expand(B.C) = %q, want false", got)
	}
}

func TestExpandThroughFiveCases(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		e    Expr
		want string
	}{
		// General case: paths through B.
		{ThroughAtom{"A", "B", "D"}, "A_B_D"},
		// c = ci = cj: ⊤.
		{ThroughAtom{"A", "A", "A"}, "true"},
		// c = cj != ci: ⊥.
		{ThroughAtom{"A", "B", "A"}, "false"},
		// c = ci != cj: rollup c.cj.
		{ThroughAtom{"A", "A", "D"}, "A_B_D | A_C_D | A_D"},
		// ci = cj != c: rollup c.ci.
		{ThroughAtom{"A", "D", "D"}, "A_B_D | A_C_D | A_D"},
	}
	for _, c := range cases {
		if got := Expand(c.e, g).String(); got != c.want {
			t.Errorf("Expand(%s) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestExpandRecursesThroughConnectives(t *testing.T) {
	g := diamond(t)
	e := Implies{A: RollupAtom{"A", "B"}, B: NewOne(ThroughAtom{"A", "B", "D"})}
	got := Expand(e, g).String()
	want := "A_B -> one(A_B_D)"
	if got != want {
		t.Errorf("Expand = %q, want %q", got, want)
	}
}

func TestConstMap(t *testing.T) {
	sigma := []Expr{
		EqAtom{"A", "D", "k2"},
		EqAtom{"A", "D", "k1"},
		EqAtom{"B", "D", "k1"},
		EqAtom{"A", "A", "x"},
		NewPath("A", "B"),
	}
	got := ConstMap(sigma)
	want := map[string][]string{
		"D": {"k1", "k2"},
		"A": {"x"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ConstMap = %v, want %v", got, want)
	}
}

func TestIntoEdges(t *testing.T) {
	sigma := []Expr{
		NewPath("A", "B"),                                   // into A -> B
		NewPath("C", "D", "E"),                              // forces C -> D
		NewAnd(NewPath("A", "C"), RollupAtom{"A", "D"}),     // conjunction: A -> C
		NewOr(NewPath("X", "Y"), NewPath("X", "Z")),         // disjunction: nothing forced
		Implies{A: NewPath("P", "Q"), B: NewPath("P", "R")}, // conditional: nothing forced
	}
	got := IntoEdges(sigma)
	want := map[string][]string{
		"A": {"B", "C"},
		"C": {"D"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IntoEdges = %v, want %v", got, want)
	}
}

func TestSigmaFor(t *testing.T) {
	g := diamond(t)
	sigma := []Expr{
		NewPath("A", "B"), // root A
		NewPath("B", "D"), // root B, reachable from A
		NewPath("D", schema.All),
		EqAtom{"C", "D", "k"}, // root C, reachable from A but not from B
	}
	gotA := SigmaFor(sigma, g, "A")
	if len(gotA) != 4 {
		t.Errorf("SigmaFor(A) kept %d constraints, want 4", len(gotA))
	}
	gotB := SigmaFor(sigma, g, "B")
	if len(gotB) != 2 {
		t.Errorf("SigmaFor(B) kept %d constraints, want 2: %v", len(gotB), gotB)
	}
	gotD := SigmaFor(sigma, g, "D")
	if len(gotD) != 1 {
		t.Errorf("SigmaFor(D) kept %d constraints, want 1", len(gotD))
	}
}

func TestWalkOrder(t *testing.T) {
	e := Implies{
		A: NewAnd(NewPath("A", "B"), EqAtom{"A", "D", "k"}),
		B: NewOne(RollupAtom{"A", "C"}, ThroughAtom{"A", "B", "D"}),
	}
	var got []string
	Walk(e, func(a Atom) { got = append(got, a.String()) })
	want := []string{"A_B", `A.D="k"`, "A.C", "A.B.D"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Walk order = %v, want %v", got, want)
	}
	if n := len(Atoms(e)); n != 4 {
		t.Errorf("Atoms = %d, want 4", n)
	}
}
