// Package constraint implements the dimension constraint language of
// Section 3 of Hurtado & Mendelzon, "OLAP Dimension Constraints"
// (PODS 2002).
//
// A dimension constraint is a Boolean combination of atoms, all rooted at
// the same category c ≠ All:
//
//   - path atoms c_c1_..._cn, asserting a child/parent chain through the
//     named categories (Definition 3);
//   - equality atoms c.ci≈k, asserting an ancestor in ci named k;
//   - composed rollup atoms c.ci, shorthand for the disjunction of all path
//     atoms from c ending at ci (Section 3.1);
//   - composed through atoms c.ci.cj, shorthand for "rolls up to cj passing
//     through ci" (Section 3.3).
//
// The connectives are ¬ ∧ ∨ ⊃ ≡ ⊕ together with the "exactly one" operator
// ⊙ and the constants ⊤ and ⊥. Expressions render in the ASCII syntax
// accepted by olapdim's parser: ! & | -> <-> ^ one(...) true false.
package constraint

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a dimension constraint expression.
type Expr interface {
	fmt.Stringer
	// prec returns the printing precedence; higher binds tighter.
	prec() int
}

// Atom is an expression that is a single (possibly composed) atom.
type Atom interface {
	Expr
	// Root returns the root category of the atom.
	Root() string
	isAtom()
}

// True is the proposition ⊤.
type True struct{}

// False is the proposition ⊥.
type False struct{}

// PathAtom is a path atom c_c1_..._cn over a simple path in the hierarchy
// schema. Cats holds the full path including the root; len(Cats) >= 2.
type PathAtom struct {
	Cats []string
}

// NewPath builds a path atom from root and at least one further category.
func NewPath(root string, rest ...string) PathAtom {
	return PathAtom{Cats: append([]string{root}, rest...)}
}

// EqAtom is an equality atom c.ci≈k: some ancestor of x in category Cat has
// Name = Val. When Cat == root the atom abbreviates Name(x) = Val.
type EqAtom struct {
	RootCat string
	Cat     string
	Val     string
}

// CmpOp is the comparison operator of an order atom.
type CmpOp int

// The order relations over numeric attribute values.
const (
	Lt CmpOp = iota // <
	Le              // <=
	Gt              // >
	Ge              // >=
)

func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Holds reports whether "v op k" holds.
func (op CmpOp) Holds(v, k float64) bool {
	switch op {
	case Lt:
		return v < k
	case Le:
		return v <= k
	case Gt:
		return v > k
	case Ge:
		return v >= k
	}
	return false
}

// CmpAtom is an order atom c.ci<k (likewise <=, >, >=): some ancestor of x
// in category Cat has a numeric Name in the stated relation to Val.
// Ancestors with non-numeric names never satisfy an order atom. Order
// atoms implement the Section 6 extension of the paper ("further built-in
// predicates over attributes, such as an order relation"); see DESIGN.md.
type CmpAtom struct {
	RootCat string
	Cat     string
	Op      CmpOp
	Val     float64
}

// RollupAtom is a composed path atom c.ci: x rolls up to category Cat.
// When Cat == root it denotes ⊤.
type RollupAtom struct {
	RootCat string
	Cat     string
}

// ThroughAtom is the shorthand c.ci.cj of Section 3.3: x rolls up to Cat
// passing through Via.
type ThroughAtom struct {
	RootCat string
	Via     string
	Cat     string
}

// Not is negation.
type Not struct{ X Expr }

// And is n-ary conjunction; And{} is ⊤.
type And struct{ Xs []Expr }

// Or is n-ary disjunction; Or{} is ⊥.
type Or struct{ Xs []Expr }

// Implies is material implication A ⊃ B.
type Implies struct{ A, B Expr }

// Iff is equivalence A ≡ B.
type Iff struct{ A, B Expr }

// Xor is exclusive disjunction A ⊕ B.
type Xor struct{ A, B Expr }

// One is the ⊙ operator: exactly one of Xs is true. One{} is ⊥.
type One struct{ Xs []Expr }

// Convenience constructors keep client code readable.

// NewAnd returns the conjunction of xs.
func NewAnd(xs ...Expr) And { return And{Xs: xs} }

// NewOr returns the disjunction of xs.
func NewOr(xs ...Expr) Or { return Or{Xs: xs} }

// NewOne returns the exactly-one combination of xs.
func NewOne(xs ...Expr) One { return One{Xs: xs} }

func (PathAtom) isAtom()    {}
func (EqAtom) isAtom()      {}
func (CmpAtom) isAtom()     {}
func (RollupAtom) isAtom()  {}
func (ThroughAtom) isAtom() {}

// Root returns the root category of the path atom.
func (a PathAtom) Root() string { return a.Cats[0] }

// Root returns the root category of the equality atom.
func (a EqAtom) Root() string { return a.RootCat }

// Root returns the root category of the order atom.
func (a CmpAtom) Root() string { return a.RootCat }

// Root returns the root category of the rollup atom.
func (a RollupAtom) Root() string { return a.RootCat }

// Root returns the root category of the through atom.
func (a ThroughAtom) Root() string { return a.RootCat }

// Printing precedences; atoms and constants bind tightest.
const (
	precIff = iota
	precImplies
	precXor
	precOr
	precAnd
	precNot
	precAtom
)

func (True) prec() int        { return precAtom }
func (False) prec() int       { return precAtom }
func (PathAtom) prec() int    { return precAtom }
func (EqAtom) prec() int      { return precAtom }
func (CmpAtom) prec() int     { return precAtom }
func (RollupAtom) prec() int  { return precAtom }
func (ThroughAtom) prec() int { return precAtom }
func (Not) prec() int         { return precNot }
func (a And) prec() int       { return precAnd }
func (o Or) prec() int        { return precOr }
func (Implies) prec() int     { return precImplies }
func (Iff) prec() int         { return precIff }
func (Xor) prec() int         { return precXor }
func (One) prec() int         { return precAtom }

// wrap renders child with parentheses when its precedence is at most the
// parent's (strict nesting keeps right-associativity of -> readable).
func wrap(parent int, child Expr) string {
	if child.prec() <= parent {
		return "(" + child.String() + ")"
	}
	return child.String()
}

func (True) String() string  { return "true" }
func (False) String() string { return "false" }

func (a PathAtom) String() string { return strings.Join(a.Cats, "_") }

func (a EqAtom) String() string {
	if a.Cat == a.RootCat {
		return a.RootCat + "=" + quoteConst(a.Val)
	}
	return a.RootCat + "." + a.Cat + "=" + quoteConst(a.Val)
}

// quoteConst renders a string constant with exactly the escapes the lexer
// understands: a backslash before '"', '\\' and newline; every other byte
// is emitted raw (the grammar's escape rule is "backslash makes the next
// byte literal", unlike Go's %q which invents \xNN forms).
func quoteConst(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' || c == '\n' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	b.WriteByte('"')
	return b.String()
}

// String renders the order atom; the numeric constant uses the shortest
// decimal representation.
func (a CmpAtom) String() string {
	if a.Cat == a.RootCat {
		return fmt.Sprintf("%s%s%s", a.RootCat, a.Op, FormatNum(a.Val))
	}
	return fmt.Sprintf("%s.%s%s%s", a.RootCat, a.Cat, a.Op, FormatNum(a.Val))
}

// FormatNum renders a numeric constant the way the parser reads it:
// plain decimal notation (the grammar has no exponent form).
func FormatNum(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

func (a RollupAtom) String() string { return a.RootCat + "." + a.Cat }

func (a ThroughAtom) String() string {
	return a.RootCat + "." + a.Via + "." + a.Cat
}

func (n Not) String() string { return "!" + wrap(precNot-1, n.X) }

// joinExprs renders an n-ary operator, parenthesizing children of equal or
// lower precedence so that a directly nested And/Or keeps its structure
// when re-parsed (the parser builds flat n-ary nodes).
func joinExprs(op string, empty string, parent int, xs []Expr) string {
	if len(xs) == 0 {
		return empty
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = wrap(parent, x)
	}
	return strings.Join(parts, op)
}

func (a And) String() string { return joinExprs(" & ", "true", precAnd, a.Xs) }
func (o Or) String() string  { return joinExprs(" | ", "false", precOr, o.Xs) }

func (i Implies) String() string {
	// Right associative: a -> b -> c parses as a -> (b -> c).
	return wrap(precImplies, i.A) + " -> " + wrap(precImplies-1, i.B)
}

func (i Iff) String() string {
	return wrap(precIff, i.A) + " <-> " + wrap(precIff, i.B)
}

func (x Xor) String() string {
	return wrap(precXor, x.A) + " ^ " + wrap(precXor, x.B)
}

func (o One) String() string {
	parts := make([]string, len(o.Xs))
	for i, x := range o.Xs {
		parts[i] = x.String()
	}
	return "one(" + strings.Join(parts, ", ") + ")"
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	switch a := a.(type) {
	case True:
		_, ok := b.(True)
		return ok
	case False:
		_, ok := b.(False)
		return ok
	case PathAtom:
		bb, ok := b.(PathAtom)
		if !ok || len(a.Cats) != len(bb.Cats) {
			return false
		}
		for i := range a.Cats {
			if a.Cats[i] != bb.Cats[i] {
				return false
			}
		}
		return true
	case EqAtom:
		bb, ok := b.(EqAtom)
		return ok && a == bb
	case CmpAtom:
		bb, ok := b.(CmpAtom)
		return ok && a == bb
	case RollupAtom:
		bb, ok := b.(RollupAtom)
		return ok && a == bb
	case ThroughAtom:
		bb, ok := b.(ThroughAtom)
		return ok && a == bb
	case Not:
		bb, ok := b.(Not)
		return ok && Equal(a.X, bb.X)
	case And:
		bb, ok := b.(And)
		return ok && equalSlices(a.Xs, bb.Xs)
	case Or:
		bb, ok := b.(Or)
		return ok && equalSlices(a.Xs, bb.Xs)
	case One:
		bb, ok := b.(One)
		return ok && equalSlices(a.Xs, bb.Xs)
	case Implies:
		bb, ok := b.(Implies)
		return ok && Equal(a.A, bb.A) && Equal(a.B, bb.B)
	case Iff:
		bb, ok := b.(Iff)
		return ok && Equal(a.A, bb.A) && Equal(a.B, bb.B)
	case Xor:
		bb, ok := b.(Xor)
		return ok && Equal(a.A, bb.A) && Equal(a.B, bb.B)
	}
	return false
}

func equalSlices(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
