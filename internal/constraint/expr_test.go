package constraint

import (
	"testing"
)

func TestAtomStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{True{}, "true"},
		{False{}, "false"},
		{NewPath("Store", "City"), "Store_City"},
		{NewPath("Store", "City", "Province"), "Store_City_Province"},
		{EqAtom{RootCat: "Store", Cat: "Country", Val: "Canada"}, `Store.Country="Canada"`},
		{EqAtom{RootCat: "City", Cat: "City", Val: "Washington"}, `City="Washington"`},
		{RollupAtom{RootCat: "Store", Cat: "SaleRegion"}, "Store.SaleRegion"},
		{ThroughAtom{RootCat: "Store", Via: "City", Cat: "Country"}, "Store.City.Country"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestConnectiveStrings(t *testing.T) {
	a := NewPath("A", "B")
	b := NewPath("A", "C")
	c := NewPath("A", "D")
	cases := []struct {
		e    Expr
		want string
	}{
		{Not{X: a}, "!A_B"},
		{Not{X: Not{X: a}}, "!!A_B"},
		{NewAnd(a, b), "A_B & A_C"},
		{NewOr(a, b), "A_B | A_C"},
		{Implies{A: a, B: b}, "A_B -> A_C"},
		{Iff{A: a, B: b}, "A_B <-> A_C"},
		{Xor{A: a, B: b}, "A_B ^ A_C"},
		{NewOne(a, b, c), "one(A_B, A_C, A_D)"},
		{NewAnd(), "true"},
		{NewOr(), "false"},
		// Precedence: & binds tighter than |, | tighter than ^, ^ tighter
		// than ->, -> tighter than <->.
		{NewOr(NewAnd(a, b), c), "A_B & A_C | A_D"},
		{NewAnd(NewOr(a, b), c), "(A_B | A_C) & A_D"},
		{Implies{A: NewOr(a, b), B: c}, "A_B | A_C -> A_D"},
		{Implies{A: a, B: Implies{A: b, B: c}}, "A_B -> A_C -> A_D"},
		{Implies{A: Implies{A: a, B: b}, B: c}, "(A_B -> A_C) -> A_D"},
		{Iff{A: a, B: Implies{A: b, B: c}}, "A_B <-> A_C -> A_D"},
		{Not{X: NewAnd(a, b)}, "!(A_B & A_C)"},
		{Xor{A: a, B: NewOr(b, c)}, "A_B ^ A_C | A_D"},
		{NewAnd(Not{X: a}, b), "!A_B & A_C"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	a := NewPath("A", "B")
	cases := []struct {
		x, y Expr
		want bool
	}{
		{a, NewPath("A", "B"), true},
		{a, NewPath("A", "C"), false},
		{a, NewPath("A", "B", "C"), false},
		{True{}, True{}, true},
		{True{}, False{}, false},
		{Not{X: a}, Not{X: a}, true},
		{NewAnd(a, a), NewAnd(a, a), true},
		{NewAnd(a), NewOr(a), false},
		{Implies{A: a, B: a}, Implies{A: a, B: a}, true},
		{Implies{A: a, B: a}, Iff{A: a, B: a}, false},
		{Xor{A: a, B: a}, Xor{A: a, B: a}, true},
		{NewOne(a), NewOne(a), true},
		{NewOne(a), NewOne(a, a), false},
		{EqAtom{"A", "B", "k"}, EqAtom{"A", "B", "k"}, true},
		{EqAtom{"A", "B", "k"}, EqAtom{"A", "B", "j"}, false},
		{RollupAtom{"A", "B"}, RollupAtom{"A", "B"}, true},
		{ThroughAtom{"A", "B", "C"}, ThroughAtom{"A", "B", "C"}, true},
		{ThroughAtom{"A", "B", "C"}, ThroughAtom{"A", "C", "B"}, false},
	}
	for _, c := range cases {
		if got := Equal(c.x, c.y); got != c.want {
			t.Errorf("Equal(%s, %s) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestRoot(t *testing.T) {
	a := NewPath("A", "B")
	b := NewPath("B", "C")
	if r, err := Root(NewAnd(a, a)); err != nil || r != "A" {
		t.Errorf("Root = %q, %v", r, err)
	}
	if r, err := Root(True{}); err != nil || r != "" {
		t.Errorf("Root(true) = %q, %v", r, err)
	}
	if _, err := Root(NewAnd(a, b)); err == nil {
		t.Error("mixed roots accepted")
	}
	if r, err := Root(Implies{A: EqAtom{"A", "X", "k"}, B: RollupAtom{"A", "Y"}}); err != nil || r != "A" {
		t.Errorf("Root = %q, %v", r, err)
	}
}
