package constraint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNNFShapes(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Implies{A: pa, B: pb}, "!A_P | A_Q"},
		{Not{X: Implies{A: pa, B: pb}}, "A_P & !A_Q"},
		{Iff{A: pa, B: pb}, "A_P & A_Q | !A_P & !A_Q"},
		{Xor{A: pa, B: pb}, "A_P & !A_Q | !A_P & A_Q"},
		{Not{X: Not{X: pa}}, "A_P"},
		{Not{X: True{}}, "false"},
		{Not{X: NewAnd(pa, pb)}, "!A_P | !A_Q"},
		{Not{X: NewOr(pa, pb)}, "!A_P & !A_Q"},
		{NewOne(pa, pb), "A_P & !A_Q | !A_P & A_Q"},
	}
	for _, c := range cases {
		got := NNF(c.e)
		if got.String() != c.want {
			t.Errorf("NNF(%s) = %q, want %q", c.e, got, c.want)
		}
		if !IsNNF(got) {
			t.Errorf("NNF(%s) = %s is not NNF", c.e, got)
		}
	}
}

// TestNNFPreservesSemantics: NNF agrees with the original under every
// valuation of the three atoms, and always produces genuine NNF.
func TestNNFPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		n := NNF(e)
		if !IsNNF(n) {
			t.Logf("NNF(%s) = %s is not NNF", e, n)
			return false
		}
		for mask := 0; mask < 8; mask++ {
			v := mapValuation{
				pa.String(): mask&1 != 0,
				pb.String(): mask&2 != 0,
				pc.String(): mask&4 != 0,
			}
			if Eval(e, v) != Eval(n, v) {
				t.Logf("NNF changed semantics of %s at mask %d: %s", e, mask, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestIsNNFRejects(t *testing.T) {
	notNNF := []Expr{
		Implies{A: pa, B: pb},
		Iff{A: pa, B: pb},
		Xor{A: pa, B: pb},
		NewOne(pa),
		Not{X: NewAnd(pa, pb)},
		Not{X: Not{X: pa}},
		NewAnd(Implies{A: pa, B: pb}),
	}
	for _, e := range notNNF {
		if IsNNF(e) {
			t.Errorf("IsNNF(%s) = true", e)
		}
	}
}
