package constraint

// Valuation assigns truth values to atoms. Implementations exist for
// dimension instances (package instance: the FOL semantics S(α) of
// Definition 4, per root member) and for subhierarchies (package frozen:
// the circle operator of Definition 8 plus a c-assignment).
type Valuation interface {
	Path(a PathAtom) bool
	Eq(a EqAtom) bool
	Cmp(a CmpAtom) bool
	Rollup(a RollupAtom) bool
	Through(a ThroughAtom) bool
}

// Eval evaluates e under the valuation v.
func Eval(e Expr, v Valuation) bool {
	switch e := e.(type) {
	case True:
		return true
	case False:
		return false
	case PathAtom:
		return v.Path(e)
	case EqAtom:
		return v.Eq(e)
	case CmpAtom:
		return v.Cmp(e)
	case RollupAtom:
		return v.Rollup(e)
	case ThroughAtom:
		return v.Through(e)
	case Not:
		return !Eval(e.X, v)
	case And:
		for _, x := range e.Xs {
			if !Eval(x, v) {
				return false
			}
		}
		return true
	case Or:
		for _, x := range e.Xs {
			if Eval(x, v) {
				return true
			}
		}
		return false
	case Implies:
		return !Eval(e.A, v) || Eval(e.B, v)
	case Iff:
		return Eval(e.A, v) == Eval(e.B, v)
	case Xor:
		return Eval(e.A, v) != Eval(e.B, v)
	case One:
		n := 0
		for _, x := range e.Xs {
			if Eval(x, v) {
				n++
				if n > 1 {
					return false
				}
			}
		}
		return n == 1
	}
	panic("constraint: unknown expression type")
}

// Decider partially assigns truth values to atoms: it returns the atom's
// value and whether the value is decided. Undecided atoms survive in the
// residual expression produced by Reduce.
type Decider func(a Atom) (value, decided bool)

// Reduce substitutes decided atoms with their truth values and
// constant-folds the result. The returned expression mentions only
// undecided atoms; if every atom is decided the result is True or False.
// Reduce implements the circle operator Σ∘g of Definition 8 when the
// decider resolves path atoms against a subhierarchy, and implements the
// incremental c-assignment solver when the decider resolves equality atoms
// against a partial assignment.
func Reduce(e Expr, d Decider) Expr {
	switch e := e.(type) {
	case True, False:
		return e
	case PathAtom:
		return reduceAtom(e, d)
	case EqAtom:
		return reduceAtom(e, d)
	case CmpAtom:
		return reduceAtom(e, d)
	case RollupAtom:
		return reduceAtom(e, d)
	case ThroughAtom:
		return reduceAtom(e, d)
	case Not:
		return simplifyNot(Reduce(e.X, d))
	case And:
		return reduceAnd(e.Xs, d)
	case Or:
		return reduceOr(e.Xs, d)
	case Implies:
		return simplifyImplies(Reduce(e.A, d), Reduce(e.B, d))
	case Iff:
		return simplifyIff(Reduce(e.A, d), Reduce(e.B, d))
	case Xor:
		return simplifyXor(Reduce(e.A, d), Reduce(e.B, d))
	case One:
		return reduceOne(e.Xs, d)
	}
	panic("constraint: unknown expression type")
}

func reduceAtom(a Atom, d Decider) Expr {
	if v, ok := d(a); ok {
		return boolExpr(v)
	}
	return a
}

func boolExpr(v bool) Expr {
	if v {
		return True{}
	}
	return False{}
}

func isTrue(e Expr) bool {
	_, ok := e.(True)
	return ok
}

func isFalse(e Expr) bool {
	_, ok := e.(False)
	return ok
}

func simplifyNot(x Expr) Expr {
	switch x := x.(type) {
	case True:
		return False{}
	case False:
		return True{}
	case Not:
		return x.X
	}
	return Not{X: x}
}

func reduceAnd(xs []Expr, d Decider) Expr {
	var kept []Expr
	for _, x := range xs {
		r := Reduce(x, d)
		if isFalse(r) {
			return False{}
		}
		if !isTrue(r) {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return True{}
	case 1:
		return kept[0]
	}
	return And{Xs: kept}
}

func reduceOr(xs []Expr, d Decider) Expr {
	var kept []Expr
	for _, x := range xs {
		r := Reduce(x, d)
		if isTrue(r) {
			return True{}
		}
		if !isFalse(r) {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return False{}
	case 1:
		return kept[0]
	}
	return Or{Xs: kept}
}

func simplifyImplies(a, b Expr) Expr {
	switch {
	case isFalse(a) || isTrue(b):
		return True{}
	case isTrue(a):
		return b
	case isFalse(b):
		return simplifyNot(a)
	}
	return Implies{A: a, B: b}
}

func simplifyIff(a, b Expr) Expr {
	switch {
	case isTrue(a):
		return b
	case isTrue(b):
		return a
	case isFalse(a):
		return simplifyNot(b)
	case isFalse(b):
		return simplifyNot(a)
	}
	return Iff{A: a, B: b}
}

func simplifyXor(a, b Expr) Expr {
	switch {
	case isFalse(a):
		return b
	case isFalse(b):
		return a
	case isTrue(a):
		return simplifyNot(b)
	case isTrue(b):
		return simplifyNot(a)
	}
	return Xor{A: a, B: b}
}

func reduceOne(xs []Expr, d Decider) Expr {
	// ⊙(T, rest) requires all of rest false; a second T is contradiction.
	var kept []Expr
	sawTrue := false
	for _, x := range xs {
		r := Reduce(x, d)
		switch {
		case isTrue(r):
			if sawTrue {
				return False{}
			}
			sawTrue = true
		case isFalse(r):
			// dropped
		default:
			kept = append(kept, r)
		}
	}
	if sawTrue {
		// Exactly one already true: the rest must all be false.
		negs := make([]Expr, len(kept))
		for i, x := range kept {
			negs[i] = simplifyNot(x)
		}
		return reduceSlicePlain(And{Xs: negs})
	}
	switch len(kept) {
	case 0:
		return False{}
	case 1:
		return kept[0]
	}
	return One{Xs: kept}
}

// reduceSlicePlain re-folds an expression without deciding further atoms.
func reduceSlicePlain(e Expr) Expr {
	return Reduce(e, func(Atom) (bool, bool) { return false, false })
}

// Simplify constant-folds e without deciding any atoms.
func Simplify(e Expr) Expr { return reduceSlicePlain(e) }

// Substitute replaces decided atoms with the constants true/false without
// constant folding, preserving the shape of the expression. It renders the
// literal form of the circle operator shown in Figure 5 of the paper;
// Reduce is the folding variant used by the solver.
func Substitute(e Expr, d Decider) Expr {
	switch e := e.(type) {
	case True, False:
		return e
	case PathAtom:
		return substAtom(e, d)
	case EqAtom:
		return substAtom(e, d)
	case CmpAtom:
		return substAtom(e, d)
	case RollupAtom:
		return substAtom(e, d)
	case ThroughAtom:
		return substAtom(e, d)
	case Not:
		return Not{X: Substitute(e.X, d)}
	case And:
		return And{Xs: substSlice(e.Xs, d)}
	case Or:
		return Or{Xs: substSlice(e.Xs, d)}
	case One:
		return One{Xs: substSlice(e.Xs, d)}
	case Implies:
		return Implies{A: Substitute(e.A, d), B: Substitute(e.B, d)}
	case Iff:
		return Iff{A: Substitute(e.A, d), B: Substitute(e.B, d)}
	case Xor:
		return Xor{A: Substitute(e.A, d), B: Substitute(e.B, d)}
	}
	panic("constraint: unknown expression type")
}

func substAtom(a Atom, d Decider) Expr {
	if v, ok := d(a); ok {
		return boolExpr(v)
	}
	return a
}

func substSlice(xs []Expr, d Decider) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = Substitute(x, d)
	}
	return out
}
