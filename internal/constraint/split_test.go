package constraint

import (
	"strings"
	"testing"
)

func TestSplitCompilation(t *testing.T) {
	e, err := Split("Store", []string{"State", "Province"}, [][]string{
		{"State"}, {"Province"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "one(Store.Province & !Store.State, !Store.Province & Store.State)"
	// Arms keep input order; categories are sorted within each arm.
	got := e.String()
	if got != "one(!Store.Province & Store.State, Store.Province & !Store.State)" && got != want {
		t.Errorf("Split = %q", got)
	}
	if root, err := Root(e); err != nil || root != "Store" {
		t.Errorf("root = %q, %v", root, err)
	}
}

func TestSplitDeduplicatesAndValidates(t *testing.T) {
	e, err := Split("A", []string{"B"}, [][]string{{"B"}, {"B"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(e.String(), "A.B") != 1 {
		t.Errorf("duplicate arm kept: %s", e)
	}
	if _, err := Split("A", []string{"B"}, nil); err == nil {
		t.Error("empty allowed list accepted")
	}
	if _, err := Split("A", []string{"B"}, [][]string{{"C"}}); err == nil {
		t.Error("set member outside universe accepted")
	}
}

func TestSplitEmptySetArm(t *testing.T) {
	// The empty set is a legal arm: members rolling up to none of the
	// universe.
	e, err := Split("A", []string{"B", "C"}, [][]string{{}, {"B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "one(!A.B & !A.C, A.B & A.C)"
	if e.String() != want {
		t.Errorf("Split = %q, want %q", e, want)
	}
}
