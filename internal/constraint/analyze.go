package constraint

import (
	"fmt"
	"math"
	"sort"

	"olapdim/internal/schema"
)

// Walk calls fn for every atom in e, in left-to-right order.
func Walk(e Expr, fn func(Atom)) {
	switch e := e.(type) {
	case True, False:
	case PathAtom:
		fn(e)
	case EqAtom:
		fn(e)
	case CmpAtom:
		fn(e)
	case RollupAtom:
		fn(e)
	case ThroughAtom:
		fn(e)
	case Not:
		Walk(e.X, fn)
	case And:
		for _, x := range e.Xs {
			Walk(x, fn)
		}
	case Or:
		for _, x := range e.Xs {
			Walk(x, fn)
		}
	case One:
		for _, x := range e.Xs {
			Walk(x, fn)
		}
	case Implies:
		Walk(e.A, fn)
		Walk(e.B, fn)
	case Iff:
		Walk(e.A, fn)
		Walk(e.B, fn)
	case Xor:
		Walk(e.A, fn)
		Walk(e.B, fn)
	default:
		panic("constraint: unknown expression type")
	}
}

// Atoms returns the atoms of e in left-to-right order (with duplicates).
func Atoms(e Expr) []Atom {
	var out []Atom
	Walk(e, func(a Atom) { out = append(out, a) })
	return out
}

// Root returns the root category shared by all atoms of e. Expressions with
// no atoms have no root and return ("", nil). Mixed roots are an error:
// Definition 3 requires all atoms of a constraint to share one root.
func Root(e Expr) (string, error) {
	root := ""
	var err error
	Walk(e, func(a Atom) {
		r := a.Root()
		switch {
		case root == "":
			root = r
		case root != r && err == nil:
			err = fmt.Errorf("constraint: mixed roots %q and %q in %s", root, r, e)
		}
	})
	return root, err
}

// Validate checks that e is a well-formed dimension constraint over g:
// all atoms share a single root different from All; path atoms are simple
// paths in g; all mentioned categories exist in g.
func Validate(e Expr, g *schema.Schema) error {
	root, err := Root(e)
	if err != nil {
		return err
	}
	if root == schema.All {
		return fmt.Errorf("constraint: root All is not allowed (Definition 3): %s", e)
	}
	var firstErr error
	check := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	Walk(e, func(a Atom) {
		switch a := a.(type) {
		case PathAtom:
			if len(a.Cats) < 2 {
				check(fmt.Errorf("constraint: path atom %s needs at least two categories", a))
				return
			}
			if !g.IsSimplePath(a.Cats) {
				check(fmt.Errorf("constraint: %s is not a simple path in schema %s", a, g.Name()))
			}
		case EqAtom:
			if !g.HasCategory(a.Cat) {
				check(fmt.Errorf("constraint: unknown category %q in %s", a.Cat, a))
			}
			if a.Val == "" {
				check(fmt.Errorf("constraint: empty constant in %s", a))
			}
		case CmpAtom:
			if !g.HasCategory(a.Cat) {
				check(fmt.Errorf("constraint: unknown category %q in %s", a.Cat, a))
			}
			if math.IsNaN(a.Val) || math.IsInf(a.Val, 0) {
				check(fmt.Errorf("constraint: non-finite constant in %s", a))
			}
		case RollupAtom:
			if !g.HasCategory(a.Cat) {
				check(fmt.Errorf("constraint: unknown category %q in %s", a.Cat, a))
			}
		case ThroughAtom:
			if !g.HasCategory(a.Via) {
				check(fmt.Errorf("constraint: unknown category %q in %s", a.Via, a))
			}
			if !g.HasCategory(a.Cat) {
				check(fmt.Errorf("constraint: unknown category %q in %s", a.Cat, a))
			}
		}
	})
	return firstErr
}

// Expand rewrites composed atoms (rollup and through) into the Boolean
// combinations of simple path atoms prescribed in Sections 3.1 and 3.3.
// Expansion can be exponential in the schema size; the evaluators in this
// repository interpret composed atoms directly, and Expand exists to
// cross-check that direct interpretation in tests.
func Expand(e Expr, g *schema.Schema) Expr {
	switch e := e.(type) {
	case True, False, PathAtom, EqAtom, CmpAtom:
		return e
	case RollupAtom:
		return expandRollup(e, g)
	case ThroughAtom:
		return expandThrough(e, g)
	case Not:
		return Not{X: Expand(e.X, g)}
	case And:
		return And{Xs: expandSlice(e.Xs, g)}
	case Or:
		return Or{Xs: expandSlice(e.Xs, g)}
	case One:
		return One{Xs: expandSlice(e.Xs, g)}
	case Implies:
		return Implies{A: Expand(e.A, g), B: Expand(e.B, g)}
	case Iff:
		return Iff{A: Expand(e.A, g), B: Expand(e.B, g)}
	case Xor:
		return Xor{A: Expand(e.A, g), B: Expand(e.B, g)}
	}
	panic("constraint: unknown expression type")
}

func expandSlice(xs []Expr, g *schema.Schema) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = Expand(x, g)
	}
	return out
}

func expandRollup(a RollupAtom, g *schema.Schema) Expr {
	// c.c denotes ⊤ (Section 3.1).
	if a.Cat == a.RootCat {
		return True{}
	}
	var xs []Expr
	for _, p := range g.SimplePaths(a.RootCat, a.Cat) {
		xs = append(xs, PathAtom{Cats: p})
	}
	if len(xs) == 0 {
		return False{}
	}
	return Simplify(Or{Xs: xs})
}

func expandThrough(a ThroughAtom, g *schema.Schema) Expr {
	c, ci, cj := a.RootCat, a.Via, a.Cat
	switch {
	case c == ci && ci == cj:
		return True{}
	case c == cj && c != ci:
		return False{}
	case c == ci && c != cj:
		return expandRollup(RollupAtom{RootCat: c, Cat: cj}, g)
	case ci == cj && c != ci:
		return expandRollup(RollupAtom{RootCat: c, Cat: ci}, g)
	}
	// General case: all simple paths from c to cj containing ci.
	var xs []Expr
	for _, p := range g.SimplePaths(c, cj) {
		for _, mid := range p[1 : len(p)-1] {
			if mid == ci {
				xs = append(xs, PathAtom{Cats: p})
				break
			}
		}
	}
	if len(xs) == 0 {
		return False{}
	}
	return Simplify(Or{Xs: xs})
}

// ConstMap computes the function Const_ds of Section 3.2: for each category
// c, the sorted set of constants k such that some constraint contains an
// equality atom ci.c≈k or c≈k. Categories with no constants are absent.
func ConstMap(sigma []Expr) map[string][]string {
	sets := map[string]map[string]bool{}
	for _, e := range sigma {
		Walk(e, func(a Atom) {
			eq, ok := a.(EqAtom)
			if !ok {
				return
			}
			if sets[eq.Cat] == nil {
				sets[eq.Cat] = map[string]bool{}
			}
			sets[eq.Cat][eq.Val] = true
		})
	}
	out := make(map[string][]string, len(sets))
	for c, vs := range sets {
		list := make([]string, 0, len(vs))
		for v := range vs {
			list = append(list, v)
		}
		sort.Strings(list)
		out[c] = list
	}
	return out
}

// IntoEdges extracts the edges forced by "into" constraints in sigma
// (Section 5): an into constraint c_c' states that every member of c has a
// parent in c'. Any constraint that is an unconditional conjunction of
// atoms forces, for each positive path atom c_c1_..._cn in it, the edge
// (c, c1); in particular the bare into constraint c_c' forces (c, c').
// The result maps each category to the sorted set of forced parents.
func IntoEdges(sigma []Expr) map[string][]string {
	sets := map[string]map[string]bool{}
	var collect func(e Expr)
	collect = func(e Expr) {
		switch e := e.(type) {
		case PathAtom:
			if sets[e.Cats[0]] == nil {
				sets[e.Cats[0]] = map[string]bool{}
			}
			sets[e.Cats[0]][e.Cats[1]] = true
		case And:
			for _, x := range e.Xs {
				collect(x)
			}
		}
	}
	for _, e := range sigma {
		collect(e)
	}
	out := make(map[string][]string, len(sets))
	for c, ps := range sets {
		list := make([]string, 0, len(ps))
		for p := range ps {
			list = append(list, p)
		}
		sort.Strings(list)
		out[c] = list
	}
	return out
}

// SigmaFor returns the constraints of sigma relevant when finding a frozen
// dimension with root c: those whose root c' satisfies c ↗* c' in g
// (the set Σ(ds, c) of Section 5). Constraints with no atoms are always
// relevant. The relative order of sigma is preserved.
func SigmaFor(sigma []Expr, g *schema.Schema, c string) []Expr {
	var out []Expr
	for _, e := range sigma {
		root, err := Root(e)
		if err != nil {
			continue
		}
		if root == "" || g.Reaches(c, root) {
			out = append(out, e)
		}
	}
	return out
}
