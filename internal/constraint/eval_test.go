package constraint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mapValuation assigns truth values to atoms by their String().
type mapValuation map[string]bool

func (v mapValuation) Path(a PathAtom) bool       { return v[a.String()] }
func (v mapValuation) Eq(a EqAtom) bool           { return v[a.String()] }
func (v mapValuation) Rollup(a RollupAtom) bool   { return v[a.String()] }
func (v mapValuation) Through(a ThroughAtom) bool { return v[a.String()] }

var (
	pa = NewPath("A", "P")
	pb = NewPath("A", "Q")
	pc = NewPath("A", "R")
)

func val(a, b bool) mapValuation {
	return mapValuation{pa.String(): a, pb.String(): b}
}

func TestEvalConnectives(t *testing.T) {
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			v := val(a, b)
			cases := []struct {
				e    Expr
				want bool
			}{
				{True{}, true},
				{False{}, false},
				{pa, a},
				{Not{X: pa}, !a},
				{NewAnd(pa, pb), a && b},
				{NewOr(pa, pb), a || b},
				{Implies{A: pa, B: pb}, !a || b},
				{Iff{A: pa, B: pb}, a == b},
				{Xor{A: pa, B: pb}, a != b},
				{NewAnd(), true},
				{NewOr(), false},
				{NewOne(), false},
			}
			for _, c := range cases {
				if got := Eval(c.e, v); got != c.want {
					t.Errorf("Eval(%s) with a=%v b=%v = %v, want %v", c.e, a, b, got, c.want)
				}
			}
		}
	}
}

func TestEvalOne(t *testing.T) {
	cases := []struct {
		a, b, c bool
		want    bool
	}{
		{false, false, false, false},
		{true, false, false, true},
		{false, true, false, true},
		{false, false, true, true},
		{true, true, false, false},
		{true, true, true, false},
	}
	for _, c := range cases {
		v := mapValuation{pa.String(): c.a, pb.String(): c.b, pc.String(): c.c}
		e := NewOne(pa, pb, pc)
		if got := Eval(e, v); got != c.want {
			t.Errorf("one(%v,%v,%v) = %v, want %v", c.a, c.b, c.c, got, c.want)
		}
	}
}

// randomExpr builds a random expression over the atoms pa, pb, pc.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(5) {
		case 0:
			return pa
		case 1:
			return pb
		case 2:
			return pc
		case 3:
			return True{}
		default:
			return False{}
		}
	}
	sub := func() Expr { return randomExpr(rng, depth-1) }
	switch rng.Intn(7) {
	case 0:
		return Not{X: sub()}
	case 1:
		return NewAnd(sub(), sub())
	case 2:
		return NewOr(sub(), sub())
	case 3:
		return Implies{A: sub(), B: sub()}
	case 4:
		return Iff{A: sub(), B: sub()}
	case 5:
		return Xor{A: sub(), B: sub()}
	default:
		return NewOne(sub(), sub(), sub())
	}
}

// TestReduceAgreesWithEval: folding an expression under a total decider
// yields the constant Eval produces.
func TestReduceAgreesWithEval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		for mask := 0; mask < 8; mask++ {
			v := mapValuation{
				pa.String(): mask&1 != 0,
				pb.String(): mask&2 != 0,
				pc.String(): mask&4 != 0,
			}
			d := func(a Atom) (bool, bool) { return v[a.String()], true }
			r := Reduce(e, d)
			want := Eval(e, v)
			switch r.(type) {
			case True:
				if !want {
					return false
				}
			case False:
				if want {
					return false
				}
			default:
				return false // must fold to a constant
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPartialReducePreservesSemantics: deciding a subset of atoms and then
// evaluating the residual matches evaluating the original.
func TestPartialReducePreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		for mask := 0; mask < 8; mask++ {
			v := mapValuation{
				pa.String(): mask&1 != 0,
				pb.String(): mask&2 != 0,
				pc.String(): mask&4 != 0,
			}
			// Decide only pa; pb, pc stay symbolic.
			d := func(a Atom) (bool, bool) {
				if a.String() == pa.String() {
					return v[a.String()], true
				}
				return false, false
			}
			r := Reduce(e, d)
			if Eval(r, v) != Eval(e, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSubstitutePreservesShapeAndSemantics: Substitute keeps semantics and
// never folds (the result contains the same connective skeleton).
func TestSubstituteSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		v := mapValuation{pa.String(): true, pb.String(): false, pc.String(): true}
		d := func(a Atom) (bool, bool) {
			if a.String() == pb.String() {
				return false, true
			}
			return false, false
		}
		s := Substitute(e, d)
		return Eval(s, v) == Eval(e, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubstituteVerbatimShape(t *testing.T) {
	e := Iff{A: EqAtom{"City", "City", "Washington"}, B: NewPath("City", "Country")}
	d := func(a Atom) (bool, bool) {
		if _, ok := a.(PathAtom); ok {
			return false, true
		}
		return false, false
	}
	got := Substitute(e, d).String()
	want := `City="Washington" <-> false`
	if got != want {
		t.Errorf("Substitute = %q, want %q", got, want)
	}
}

func TestReduceOneSimplifications(t *testing.T) {
	decideTrue := func(target Atom) Decider {
		return func(a Atom) (bool, bool) {
			if a.String() == target.String() {
				return true, true
			}
			return false, false
		}
	}
	decideFalse := func(target Atom) Decider {
		return func(a Atom) (bool, bool) {
			if a.String() == target.String() {
				return false, true
			}
			return false, false
		}
	}
	// one(T, x, y) reduces to !x & !y.
	e := NewOne(pa, pb, pc)
	r := Reduce(e, decideTrue(pa))
	if r.String() != "!A_Q & !A_R" {
		t.Errorf("one(T,q,r) reduced to %q", r)
	}
	// one(F, x, y) reduces to one(x, y).
	r = Reduce(e, decideFalse(pa))
	if r.String() != "one(A_Q, A_R)" {
		t.Errorf("one(F,q,r) reduced to %q", r)
	}
	// one with a single residual operand reduces to the operand.
	r = Reduce(NewOne(pa, pb), decideFalse(pb))
	if r.String() != pa.String() {
		t.Errorf("one(p,F) reduced to %q", r)
	}
	// Two decided-true operands are contradictory.
	all := func(a Atom) (bool, bool) { return true, true }
	r = Reduce(NewOne(pa, pb), all)
	if !isFalse(r) {
		t.Errorf("one(T,T) reduced to %q", r)
	}
}

func TestSimplifyConstants(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{NewAnd(True{}, pa), "A_P"},
		{NewAnd(False{}, pa), "false"},
		{NewOr(True{}, pa), "true"},
		{NewOr(False{}, pa), "A_P"},
		{Implies{A: False{}, B: pa}, "true"},
		{Implies{A: True{}, B: pa}, "A_P"},
		{Implies{A: pa, B: False{}}, "!A_P"},
		{Implies{A: pa, B: True{}}, "true"},
		{Iff{A: True{}, B: pa}, "A_P"},
		{Iff{A: False{}, B: pa}, "!A_P"},
		{Xor{A: True{}, B: pa}, "!A_P"},
		{Xor{A: False{}, B: pa}, "A_P"},
		{Not{X: Not{X: pa}}, "A_P"},
		{Not{X: True{}}, "false"},
	}
	for _, c := range cases {
		if got := Simplify(c.e).String(); got != c.want {
			t.Errorf("Simplify(%s) = %q, want %q", c.e, got, c.want)
		}
	}
}

func (v mapValuation) Cmp(a CmpAtom) bool { return v[a.String()] }
