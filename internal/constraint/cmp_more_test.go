package constraint

import "testing"

// ca builds a comparison atom over the shared test categories.
func ca(op CmpOp, v float64) CmpAtom { return CmpAtom{RootCat: "A", Cat: "P", Op: op, Val: v} }

func TestCmpAtomThroughConnectives(t *testing.T) {
	// Cmp atoms flow through Walk, Eval, Reduce, Substitute, Expand and
	// Equal like any other atom.
	e := Implies{
		A: NewAnd(ca(Lt, 5), Not{X: ca(Ge, 10)}),
		B: NewOne(ca(Le, 7), RollupAtom{RootCat: "A", Cat: "P"}),
	}
	var n int
	Walk(e, func(Atom) { n++ })
	if n != 4 {
		t.Errorf("walked %d atoms, want 4", n)
	}

	// Eval with a valuation deciding by op.
	v := mapValuation{
		ca(Lt, 5).String():  true,
		ca(Ge, 10).String(): false,
		ca(Le, 7).String():  true,
		"A.P":               false,
	}
	if !Eval(e, v) {
		t.Error("Eval should hold: (T & !F) -> one(T, F)")
	}

	// Reduce with a total decider folds to a constant.
	d := func(a Atom) (bool, bool) { return v[a.String()], true }
	if r := Reduce(e, d); !isTrue(r) {
		t.Errorf("Reduce = %s, want true", r)
	}

	// Substitute keeps shape.
	s := Substitute(e, func(a Atom) (bool, bool) {
		if _, ok := a.(CmpAtom); ok {
			return true, true
		}
		return false, false
	})
	if s.String() != "true & !true -> one(true, A.P)" {
		t.Errorf("Substitute = %q", s)
	}

	// Expand leaves cmp atoms intact.
	g := diamond(t)
	e2 := NewAnd(CmpAtom{RootCat: "A", Cat: "D", Op: Gt, Val: 1}, RollupAtom{RootCat: "A", Cat: "D"})
	x := Expand(e2, g)
	if x.String() != "A.D>1 & (A_B_D | A_C_D | A_D)" {
		t.Errorf("Expand = %q", x)
	}

	// Equal distinguishes op and value.
	if Equal(ca(Lt, 5), ca(Le, 5)) || Equal(ca(Lt, 5), ca(Lt, 6)) {
		t.Error("Equal conflated distinct cmp atoms")
	}
	if !Equal(ca(Gt, 2), ca(Gt, 2)) {
		t.Error("Equal rejected identical cmp atoms")
	}
	if Equal(ca(Gt, 2), EqAtom{"A", "P", "2"}) {
		t.Error("Equal conflated cmp with eq")
	}
}

func TestCmpValidate(t *testing.T) {
	g := diamond(t)
	if err := Validate(CmpAtom{RootCat: "A", Cat: "D", Op: Lt, Val: 3}, g); err != nil {
		t.Errorf("valid cmp atom rejected: %v", err)
	}
	if err := Validate(CmpAtom{RootCat: "A", Cat: "Z", Op: Lt, Val: 3}, g); err == nil {
		t.Error("unknown category accepted")
	}
	nan := 0.0
	nan = nan / nan
	if err := Validate(CmpAtom{RootCat: "A", Cat: "D", Op: Lt, Val: nan}, g); err == nil {
		t.Error("NaN constant accepted")
	}
}

func TestCmpOpUnknownString(t *testing.T) {
	if CmpOp(99).String() != "?" {
		t.Error("unknown op rendering")
	}
	if CmpOp(99).Holds(1, 2) {
		t.Error("unknown op holds")
	}
}

func TestEqualAcrossKinds(t *testing.T) {
	// Equal must distinguish every atom kind pair.
	atoms := []Expr{
		NewPath("A", "B"),
		EqAtom{"A", "B", "k"},
		ca(Lt, 1),
		RollupAtom{"A", "B"},
		ThroughAtom{"A", "B", "C"},
		True{},
		False{},
	}
	for i, a := range atoms {
		for j, b := range atoms {
			if (i == j) != Equal(a, b) {
				t.Errorf("Equal(%s, %s) = %v", a, b, Equal(a, b))
			}
		}
	}
}

func TestRootOfCmpOnly(t *testing.T) {
	r, err := Root(NewOne(ca(Lt, 1), ca(Gt, 5)))
	if err != nil || r != "A" {
		t.Errorf("Root = %q, %v", r, err)
	}
}
