package constraint

import (
	"sort"
	"strconv"
)

// ValueDomains computes, for each category, a finite set of symbolic Name
// values that is complete for deciding the satisfiability of sigma's
// equality and order atoms: any concrete Name value behaves, with respect
// to every atom over that category, exactly like one of the returned
// candidates (or like the nk sentinel, which satisfies no atom).
//
// For a category mentioning only equality atoms the domain is Const_ds
// (the paper's Section 3.2). Order atoms (the Section 6 extension) add,
// per category, every threshold value plus a representative of each open
// region the thresholds cut the number line into — below the smallest,
// between each consecutive pair, above the largest. Representatives are
// perturbed away from the numeric values of that category's equality
// constants so that every atom profile keeps a witness. Categories absent
// from the map have no constrained values; nk alone covers them.
func ValueDomains(sigma []Expr) map[string][]string {
	eq := map[string]map[string]bool{}
	thr := map[string]map[float64]bool{}
	for _, e := range sigma {
		Walk(e, func(a Atom) {
			switch a := a.(type) {
			case EqAtom:
				if eq[a.Cat] == nil {
					eq[a.Cat] = map[string]bool{}
				}
				eq[a.Cat][a.Val] = true
			case CmpAtom:
				if thr[a.Cat] == nil {
					thr[a.Cat] = map[float64]bool{}
				}
				thr[a.Cat][a.Val] = true
			}
		})
	}
	out := map[string][]string{}
	cats := map[string]bool{}
	for c := range eq {
		cats[c] = true
	}
	for c := range thr {
		cats[c] = true
	}
	for c := range cats {
		seen := map[string]bool{}
		var domain []string
		add := func(v string) {
			if !seen[v] {
				seen[v] = true
				domain = append(domain, v)
			}
		}
		for v := range eq[c] {
			add(v)
		}
		if len(thr[c]) > 0 {
			// Numeric values already claimed by equality constants: region
			// representatives must avoid them to keep the "no equality atom
			// holds" profile witnessed.
			avoid := map[float64]bool{}
			for v := range eq[c] {
				if f, err := strconv.ParseFloat(v, 64); err == nil {
					avoid[f] = true
				}
			}
			ts := make([]float64, 0, len(thr[c]))
			for t := range thr[c] {
				ts = append(ts, t)
				avoid[t] = true
			}
			sort.Float64s(ts)
			// The thresholds themselves (boundary profiles).
			for _, t := range ts {
				add(FormatNum(t))
			}
			// Region representatives.
			add(FormatNum(below(ts[0], avoid)))
			for i := 0; i+1 < len(ts); i++ {
				add(FormatNum(between(ts[i], ts[i+1], avoid)))
			}
			add(FormatNum(above(ts[len(ts)-1], avoid)))
		}
		sort.Strings(domain)
		out[c] = domain
	}
	return out
}

// below finds a value strictly less than t avoiding the given set.
func below(t float64, avoid map[float64]bool) float64 {
	v := t - 1
	for avoid[v] {
		v -= 1
	}
	return v
}

// above finds a value strictly greater than t avoiding the given set.
func above(t float64, avoid map[float64]bool) float64 {
	v := t + 1
	for avoid[v] {
		v += 1
	}
	return v
}

// between finds a value strictly inside (lo, hi) avoiding the given set.
// The avoid set is finite, so repeatedly halving towards lo terminates.
func between(lo, hi float64, avoid map[float64]bool) float64 {
	v := lo + (hi-lo)/2
	for avoid[v] && v > lo {
		v = lo + (v-lo)/2
	}
	return v
}

// NumValue interprets a symbolic domain value (or any Name) numerically.
func NumValue(v string) (float64, bool) {
	f, err := strconv.ParseFloat(v, 64)
	return f, err == nil
}
