package constraint

import (
	"fmt"
	"sort"
)

// Split compiles a split constraint — the constraint class of the authors'
// earlier work ("Reasoning about summarizability in heterogeneous
// multidimensional schemas", ICDT 2001) that Section 1.3 of the PODS 2002
// paper identifies as a special case of dimension constraints — into a
// dimension constraint.
//
// A split constraint over root c lists the possible sets of categories the
// members of c may roll up to: every member's ancestor-category set must
// equal exactly one of the allowed sets. universe is the scope of
// categories the split speaks about (categories outside it are
// unconstrained); each allowed set must be a subset of the universe.
//
// The compilation is ⊙ over the allowed sets of (⋀_{ci ∈ S} c.ci ∧
// ⋀_{cj ∈ universe∖S} ¬c.cj), which is exactly the split semantics.
// Goldstein's disjunctive existential constraints and the Husemann et al.
// constraints, both subclasses of split constraints per Section 1.3, embed
// through the same compiler.
func Split(root string, universe []string, allowed [][]string) (Expr, error) {
	if len(allowed) == 0 {
		return nil, fmt.Errorf("constraint: split needs at least one allowed set")
	}
	uni := map[string]bool{}
	for _, c := range universe {
		uni[c] = true
	}
	scope := append([]string(nil), universe...)
	sort.Strings(scope)

	var arms []Expr
	seen := map[string]bool{}
	for _, set := range allowed {
		in := map[string]bool{}
		for _, c := range set {
			if !uni[c] {
				return nil, fmt.Errorf("constraint: split set member %q outside universe", c)
			}
			in[c] = true
		}
		key := fmt.Sprint(membershipVector(scope, in))
		if seen[key] {
			continue // duplicate allowed set
		}
		seen[key] = true
		var conj []Expr
		for _, c := range scope {
			if in[c] {
				conj = append(conj, RollupAtom{RootCat: root, Cat: c})
			} else {
				conj = append(conj, Not{X: RollupAtom{RootCat: root, Cat: c}})
			}
		}
		arms = append(arms, And{Xs: conj})
	}
	return One{Xs: arms}, nil
}

func membershipVector(scope []string, in map[string]bool) []bool {
	out := make([]bool, len(scope))
	for i, c := range scope {
		out[i] = in[c]
	}
	return out
}
