package paper

import (
	"testing"

	"olapdim/internal/constraint"
	"olapdim/internal/core"
	"olapdim/internal/frozen"
	"olapdim/internal/instance"
)

// TestHeterogeneitySignatures: the location instance is heterogeneous in
// exactly the categories the narrative says — Store, City and State mix
// several rollup structures; Province, SaleRegion and Country are
// homogeneous.
func TestHeterogeneitySignatures(t *testing.T) {
	d := LocationInstance()
	rep := d.Heterogeneity()
	het := rep.HeterogeneousCategories()
	want := map[string]bool{Store: true, City: true, State: true}
	if len(het) != len(want) {
		t.Fatalf("heterogeneous categories = %v", het)
	}
	for _, c := range het {
		if !want[c] {
			t.Errorf("unexpected heterogeneous category %s", c)
		}
	}
	// Stores exhibit only THREE distinct ancestor-category sets even
	// though Figure 4 shows FOUR structures: the USA and Mexico stores
	// share the category set {City, State, SaleRegion, Country, All} but
	// differ in paths. This is exactly the paper's Section 1.3 point that
	// "heterogeneity would be better captured by possible hierarchy
	// paths, rather than possible sets of categories" — the limitation of
	// split constraints that dimension constraints overcome.
	if got := len(d.Signatures(Store)); got != 3 {
		t.Errorf("store signatures = %d, want 3 (category sets, coarser than Figure 4's 4 structures)", got)
	}
	fs, err := core.EnumerateFrozen(LocationSch(), Store, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 4 {
		t.Fatalf("frozen dimensions = %d", len(fs))
	}
	// Washington's signature lacks State and Province.
	sig := d.SignatureOf("s5")
	if sig != "All,City,Country,SaleRegion" {
		t.Errorf("Washington store signature = %q", sig)
	}
	if d.Heterogeneous(Country) {
		t.Error("Country should be homogeneous")
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}

// TestConesAreFrozenDimensions: the ancestor cone of every member of the
// location instance induces a frozen dimension of the schema for that
// member's category, with the member's own names as the witnessing
// c-assignment — the minimal-model construction behind Theorem 3,
// validated member by member.
func TestConesAreFrozenDimensions(t *testing.T) {
	ds := LocationSch()
	d := LocationInstance()
	domains := constraint.ValueDomains(ds.Sigma)

	for _, x := range d.AllMembers() {
		if x == instance.AllMember {
			continue
		}
		cone, err := frozen.ConeOf(d, x, domains)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := d.Category(x)
		// The cone is a structurally valid subhierarchy…
		if err := cone.G.Validate(ds.G); err != nil {
			t.Errorf("cone of %s invalid: %v", x, err)
			continue
		}
		// …that induces a frozen dimension (Proposition 2)…
		sigma := constraint.SigmaFor(ds.Sigma, ds.G, c)
		if _, ok := frozen.Induces(cone.G, sigma, domains); !ok {
			t.Errorf("cone of %s (%s) induces no frozen dimension: %s", x, c, cone.G)
			continue
		}
		// …and the member's own names satisfy the residual constraints.
		residual, ok := frozen.Circle(sigma, cone.G)
		if !ok {
			t.Errorf("cone of %s fails the circle operator", x)
			continue
		}
		if !cone.Assign.Satisfies(residual) {
			t.Errorf("cone of %s: names %s do not satisfy the residual", x, cone.Assign)
		}
	}
}

// TestConesMatchEnumeratedStores: for the Store members specifically, the
// cones coincide one-to-one with the Figure 4 frozen dimensions.
func TestConesMatchEnumeratedStores(t *testing.T) {
	ds := LocationSch()
	d := LocationInstance()
	domains := constraint.ValueDomains(ds.Sigma)
	fs, err := core.EnumerateFrozen(ds, Store, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, f := range fs {
		keys[f.Key()] = true
	}
	seen := map[string]bool{}
	for _, s := range d.Members(Store) {
		cone, err := frozen.ConeOf(d, s, domains)
		if err != nil {
			t.Fatal(err)
		}
		if !keys[cone.Key()] {
			t.Errorf("store %s cone %s is not a Figure 4 frozen dimension", s, cone)
		}
		seen[cone.Key()] = true
	}
	if len(seen) != 4 {
		t.Errorf("store cones realize %d of the 4 Figure 4 structures", len(seen))
	}
}

// TestConeOfUnknownMember pins the error path.
func TestConeOfUnknownMember(t *testing.T) {
	d := LocationInstance()
	if _, err := frozen.ConeOf(d, "ghost", nil); err == nil {
		t.Error("unknown member accepted")
	}
}
