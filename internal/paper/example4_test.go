package paper

import (
	"strings"
	"testing"

	"olapdim/internal/core"
	"olapdim/internal/frozen"
	"olapdim/internal/instance"
	"olapdim/internal/schema"
)

// example4Schema builds the cyclic hierarchy schema of Example 4: some
// cities have ancestors in SaleDistrict while some sale districts have
// ancestors in City, requiring the cycle SaleDistrict -> City ->
// SaleDistrict in the hierarchy schema.
func example4Schema(t *testing.T) *core.DimensionSchema {
	t.Helper()
	g := schema.New("example4")
	for _, e := range [][2]string{
		{"Store", "City"}, {"Store", "SaleDistrict"},
		{"City", "SaleDistrict"}, {"SaleDistrict", "City"},
		{"City", schema.All}, {"SaleDistrict", schema.All},
	} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if !g.HasCycle() {
		t.Fatal("Example 4 schema must contain a cycle")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("cyclic hierarchy schemas are legal (Definition 1): %v", err)
	}
	return core.NewDimensionSchema(g)
}

// TestExample4CyclicSchema: DIMSAT handles cyclic hierarchy schemas; the
// frozen dimensions (which are instances, hence acyclic) realize both
// orientations of the cycle.
func TestExample4CyclicSchema(t *testing.T) {
	ds := example4Schema(t)
	for _, c := range []string{"Store", "City", "SaleDistrict"} {
		res, err := core.Satisfiable(ds, c, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Satisfiable {
			t.Errorf("%s should be satisfiable", c)
		}
	}
	fs, err := core.EnumerateFrozen(ds, "Store", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var cityAboveDistrict, districtAboveCity bool
	for _, f := range fs {
		if f.G.HasEdge("City", "SaleDistrict") {
			cityAboveDistrict = true
		}
		if f.G.HasEdge("SaleDistrict", "City") {
			districtAboveCity = true
		}
		if f.G.HasEdge("City", "SaleDistrict") && f.G.HasEdge("SaleDistrict", "City") {
			t.Errorf("frozen dimension contains the cycle: %s", f)
		}
		if !f.G.Acyclic() {
			t.Errorf("cyclic frozen dimension: %s", f)
		}
	}
	if !cityAboveDistrict || !districtAboveCity {
		var all []string
		for _, f := range fs {
			all = append(all, f.String())
		}
		t.Errorf("both cycle orientations must appear in frozen dimensions:\n%s",
			strings.Join(all, "\n"))
	}
	// The naive oracle agrees on the count.
	naive, err := frozen.EnumerateFrozen(ds.G, ds.Sigma, "Store")
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) != len(fs) {
		t.Errorf("naive found %d frozen dimensions, DIMSAT found %d", len(naive), len(fs))
	}
}

// TestExample4Instance builds a mixed instance over the cyclic schema —
// one store's city under a sale district, another store's sale district
// under a city — and validates it.
func TestExample4Instance(t *testing.T) {
	ds := example4Schema(t)
	d := instance.New(ds.G)
	add := func(c, x string) {
		t.Helper()
		if err := d.AddMember(c, x); err != nil {
			t.Fatal(err)
		}
	}
	link := func(x, y string) {
		t.Helper()
		if err := d.AddLink(x, y); err != nil {
			t.Fatal(err)
		}
	}
	// Store t1: city Leaside rolls up into sale district D9.
	add("Store", "t1")
	add("City", "Leaside")
	add("SaleDistrict", "D9")
	link("t1", "Leaside")
	link("Leaside", "D9")
	link("D9", instance.AllMember)
	// Store t2: sale district D4 rolls up into city Toronto.
	add("Store", "t2")
	add("SaleDistrict", "D4")
	add("City", "Toronto")
	link("t2", "D4")
	link("D4", "Toronto")
	link("Toronto", instance.AllMember)
	if err := d.Validate(); err != nil {
		t.Fatalf("Example 4 instance invalid: %v", err)
	}
	// Stratification (C6) still rules out member-level cycles.
	link("D9", "Leaside") // would make Leaside ≪ Leaside... via D9? No: creates 2-cycle Leaside<->D9
	if err := d.Validate(); err == nil {
		t.Error("member-level cycle accepted")
	}
}
