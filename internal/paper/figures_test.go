// Golden reproductions of every figure and worked example of the paper
// (experiments F1, F3, F4, F5, F7 and Examples 2, 3, 10, 11 of DESIGN.md).
package paper

import (
	"strings"
	"testing"

	"olapdim/internal/constraint"
	"olapdim/internal/core"
	"olapdim/internal/frozen"
	"olapdim/internal/schema"
)

// TestFigure1Location reproduces Figure 1: the location dimension instance
// is a valid dimension instance whose members roll up as the paper's
// narrative describes.
func TestFigure1Location(t *testing.T) {
	d := LocationInstance()
	if err := d.Validate(); err != nil {
		t.Fatalf("Figure 1 instance violates (C1)-(C7): %v", err)
	}
	// "All the stores rollup to City, SaleRegion, and Country."
	for _, s := range d.Members(Store) {
		for _, c := range []string{City, SaleRegion, Country} {
			if _, ok := d.AncestorIn(s, c); !ok {
				t.Errorf("store %s does not roll up to %s", s, c)
			}
		}
	}
	// "While the stores in Canada rollup to Province, the stores in Mexico
	// and USA rollup to State."
	byCountry := d.RollupMapping(Store, Country)
	for s, country := range byCountry {
		_, hasProvince := d.AncestorIn(s, Province)
		_, hasState := d.AncestorIn(s, State)
		switch country {
		case "Canada":
			if !hasProvince || hasState {
				t.Errorf("Canadian store %s: province=%v state=%v", s, hasProvince, hasState)
			}
		case "Mexico":
			if hasProvince || !hasState {
				t.Errorf("Mexican store %s: province=%v state=%v", s, hasProvince, hasState)
			}
		}
	}
	// "The city Washington is an exception… it rolls up directly to
	// Country without passing through State."
	if _, hasState := d.AncestorIn("s5", State); hasState {
		t.Error("Washington store must not reach State")
	}
	if c, _ := d.AncestorIn("Washington", Country); c != "USA" {
		t.Errorf("Washington rolls up to %q, want USA", c)
	}
	// Rollup mappings are single valued (C2 / "partitioned").
	if got := d.RollupMapping(Store, Country); len(got) != 6 {
		t.Errorf("store->country mapping has %d entries, want 6", len(got))
	}
}

// TestFigure1Hierarchy pins the hierarchy schema of Figure 1(A) including
// the Example 3 shortcut.
func TestFigure1Hierarchy(t *testing.T) {
	g := LocationHierarchy()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumCategories(); got != 7 {
		t.Errorf("categories = %d, want 7", got)
	}
	if got := g.NumEdges(); got != 10 {
		t.Errorf("edges = %d, want 10", got)
	}
	if bottoms := g.Bottoms(); len(bottoms) != 1 || bottoms[0] != Store {
		t.Errorf("bottoms = %v, want [Store]", bottoms)
	}
	// Example 3: the categories City and Country form a shortcut.
	if !g.IsShortcut(City, Country) {
		t.Error("City -> Country must be a shortcut (Example 3)")
	}
	shortcuts := g.Shortcuts()
	keys := map[string]bool{}
	for _, sc := range shortcuts {
		keys[sc[0]+">"+sc[1]] = true
	}
	// Store -> SaleRegion is also a schema-level shortcut (via City-State).
	if !keys["City>Country"] || !keys["Store>SaleRegion"] {
		t.Errorf("shortcuts = %v", shortcuts)
	}
}

// TestFigure3LocationSch reproduces Figure 3: locationSch is well formed,
// its instance of Figure 1 satisfies every constraint, and the constraints
// render exactly as in Figure 5 (left).
func TestFigure3LocationSch(t *testing.T) {
	ds := LocationSch()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	d := LocationInstance()
	for _, e := range ds.Sigma {
		if !d.Satisfies(e) {
			t.Errorf("location violates constraint %s", e)
		}
	}
	want := []string{
		"Store_City",
		"Store.SaleRegion",
		`City="Washington" <-> City_Country`,
		`City="Washington" -> City.Country="USA"`,
		`State.Country="Mexico" | State.Country="USA"`,
		`State.Country="Mexico" <-> State_SaleRegion`,
		`Province.Country="Canada"`,
	}
	if len(ds.Sigma) != len(want) {
		t.Fatalf("got %d constraints, want %d", len(ds.Sigma), len(want))
	}
	for i, e := range ds.Sigma {
		if e.String() != want[i] {
			t.Errorf("constraint %d = %q, want %q", i, e, want[i])
		}
	}
}

// TestExample2 reproduces Example 2: the hierarchy schema alone cannot
// certify that Country is summarizable from {City} (a bare schema admits
// stores reaching Country via SaleRegion without City), while locationSch's
// constraints do certify it.
func TestExample2(t *testing.T) {
	bare := core.NewDimensionSchema(LocationHierarchy())
	rep, err := core.Summarizable(bare, Country, []string{City}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summarizable() {
		t.Error("bare hierarchy schema must not certify Country from {City}")
	}
	constrained := LocationSch()
	rep, err = core.Summarizable(constrained, Country, []string{City}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Summarizable() {
		t.Error("locationSch must certify Country from {City}")
	}
}

// TestFigure4FrozenDimensions reproduces Figure 4: locationSch has exactly
// four frozen dimensions with root Store — the Canadian, Mexican, US and
// Washington store structures.
func TestFigure4FrozenDimensions(t *testing.T) {
	ds := LocationSch()
	fs, err := core.EnumerateFrozen(ds, Store, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range fs {
		got = append(got, f.String())
	}
	want := []string{
		// Washington: City -> Country directly, sale region from the store.
		"City->Country; Country->All; SaleRegion->Country; Store->City; Store->SaleRegion [City=Washington, Country=USA]",
		// Canada: through Province.
		"City->Province; Country->All; Province->SaleRegion; SaleRegion->Country; Store->City [Country=Canada]",
		// USA: State -> Country directly, sale region from the store.
		"City->State; Country->All; SaleRegion->Country; State->Country; Store->City; Store->SaleRegion [Country=USA]",
		// Mexico: State -> SaleRegion -> Country.
		"City->State; Country->All; SaleRegion->Country; State->SaleRegion; Store->City [Country=Mexico]",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d frozen dimensions, want 4:\n%s", len(got), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("frozen %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
	// The naive Theorem 3 enumeration agrees.
	naive, err := frozen.EnumerateFrozen(ds.G, ds.Sigma, Store)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) != 4 {
		t.Errorf("naive enumeration found %d frozen dimensions, want 4", len(naive))
	}
	// Every frozen dimension materializes into a valid instance over
	// locationSch.
	consts := constraint.ConstMap(ds.Sigma)
	for _, f := range fs {
		inst, err := f.ToInstance(ds.G, consts)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			t.Errorf("frozen %s invalid: %v", f, err)
		}
		if !inst.SatisfiesAll(ds.Sigma) {
			t.Errorf("frozen %s violates sigma", f)
		}
	}
}

// figure5Subhierarchy is the subhierarchy g of Example 12: both State and
// Province present, no City -> Country and no State -> SaleRegion edge.
func figure5Subhierarchy() *frozen.Subhierarchy {
	g := frozen.NewSubhierarchy(Store)
	for _, e := range [][2]string{
		{Store, City}, {City, State}, {City, Province},
		{State, Country}, {Province, SaleRegion},
		{SaleRegion, Country}, {Country, schema.All},
	} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// TestFigure5CircleOperator reproduces Figure 5: applying the circle
// operator for g to Σ(locationSch, Store) yields exactly the right column.
func TestFigure5CircleOperator(t *testing.T) {
	ds := LocationSch()
	g := figure5Subhierarchy()
	sigma := constraint.SigmaFor(ds.Sigma, ds.G, Store)
	if len(sigma) != 7 {
		t.Fatalf("Σ(locationSch, Store) has %d constraints, want all 7", len(sigma))
	}
	got := frozen.CircleVerbatim(sigma, g)
	want := []string{
		"true",                        // (a) Store_City is a path in g
		"true",                        // (b) Store.SaleRegion reachable via Province
		`City="Washington" <-> false`, // (c)
		`City="Washington" -> City.Country="USA"`,      // (d) unchanged
		`State.Country="Mexico" | State.Country="USA"`, // (e) unchanged
		`State.Country="Mexico" <-> false`,             // (f)
		`Province.Country="Canada"`,                    // (g) unchanged
	}
	if len(got) != len(want) {
		t.Fatalf("got %d constraints", len(got))
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("Σ∘g (%c) = %q, want %q", 'a'+i, got[i], want[i])
		}
	}
	// This subhierarchy induces no frozen dimension: (e)+(f) force
	// Country = USA while (g) forces Country = Canada.
	if _, ok := frozen.Induces(g, sigma, constraint.ConstMap(ds.Sigma)); ok {
		t.Error("Figure 5's subhierarchy must not induce a frozen dimension")
	}
}

// TestFigure7DimsatTrace reproduces the shape of Figure 7: a DIMSAT run on
// (locationSch, Store) explores subhierarchies by expanding one top
// category at a time, checks complete candidates, and stops at the first
// frozen dimension. The trace is pinned for regression, giving the same
// kind of execution narrative as the figure.
func TestFigure7DimsatTrace(t *testing.T) {
	ds := LocationSch()
	tr := &core.RecordingTracer{}
	res, err := core.Satisfiable(ds, Store, core.Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("Store must be satisfiable")
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	// The first expansion honours the into constraint (a): Store_City is
	// forced into every R, so every first-step R contains City.
	first := tr.Events[0]
	if first.Kind != "expand" || first.Ctop != Store {
		t.Fatalf("first event = %+v", first)
	}
	hasCity := false
	for _, r := range first.R {
		if r == City {
			hasCity = true
		}
	}
	if !hasCity {
		t.Errorf("into pruning violated: first R = %v lacks City", first.R)
	}
	// The final event is the successful CHECK.
	last := tr.Events[len(tr.Events)-1]
	if last.Kind != "check" || !last.Induced {
		t.Errorf("last event = %+v, want successful check", last)
	}
	// Witness is one of the four Figure 4 frozen dimensions.
	fig4 := map[string]bool{
		"City->Country; Country->All; SaleRegion->Country; Store->City; Store->SaleRegion":               true,
		"City->Province; Country->All; Province->SaleRegion; SaleRegion->Country; Store->City":           true,
		"City->State; Country->All; SaleRegion->Country; State->Country; Store->City; Store->SaleRegion": true,
		"City->State; Country->All; SaleRegion->Country; State->SaleRegion; Store->City":                 true,
	}
	if !fig4[res.Witness.G.String()] {
		t.Errorf("witness %s is not a Figure 4 frozen dimension", res.Witness.G)
	}
	// Into pruning matters: without it the search does strictly more work.
	resNoInto, err := core.Satisfiable(ds, Store, core.Options{DisableIntoPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resNoInto.Satisfiable {
		t.Fatal("ablated run must agree")
	}
	if resNoInto.Stats.Expansions < res.Stats.Expansions {
		t.Errorf("into pruning increased work: %d vs %d expansions",
			res.Stats.Expansions, resNoInto.Stats.Expansions)
	}
}

// TestExample10 reproduces Example 10 at both the schema level and the
// instance level.
func TestExample10(t *testing.T) {
	ds := LocationSch()
	d := LocationInstance()

	// Country is summarizable from {City}.
	rep, err := core.Summarizable(ds, Country, []string{City}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Summarizable() {
		t.Error("Country should be summarizable from {City}")
	}
	if !core.SummarizableInInstance(d, Country, []string{City}) {
		t.Error("instance-level check disagrees for {City}")
	}
	// The instance satisfies the Theorem 1 constraint itself.
	if !d.Satisfies(core.SummarizabilityConstraint(Store, Country, []string{City})) {
		t.Error("location ⊭ Store.Country ⊃ Store.City.Country")
	}

	// Country is not summarizable from {State, Province}: Washington.
	rep, err = core.Summarizable(ds, Country, []string{State, Province}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summarizable() {
		t.Error("Country should not be summarizable from {State, Province}")
	}
	if core.SummarizableInInstance(d, Country, []string{State, Province}) {
		t.Error("instance-level check disagrees for {State, Province}")
	}
	// The counterexample is the Washington frozen dimension: it has the
	// direct City -> Country edge.
	for _, b := range rep.PerBottom {
		if b.Implied {
			continue
		}
		w := b.Counterexample.Witness
		if w == nil {
			t.Fatal("missing counterexample")
		}
		if !w.G.HasEdge(City, Country) {
			t.Errorf("counterexample %s should use the Washington shortcut", w)
		}
	}
}

// TestExample11 reproduces Example 11: adding ¬SaleRegion_Country makes
// SaleRegion unsatisfiable, because condition (C7) requires
// SaleRegion_Country.
func TestExample11(t *testing.T) {
	ds := LocationSch()
	res, err := core.Satisfiable(ds, SaleRegion, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("SaleRegion satisfiable before the new constraint")
	}
	ds2 := core.NewDimensionSchema(ds.G, append(append([]constraint.Expr(nil), ds.Sigma...),
		constraint.Not{X: constraint.NewPath(SaleRegion, Country)})...)
	res, err = core.Satisfiable(ds2, SaleRegion, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Error("SaleRegion must become unsatisfiable (Example 11)")
	}
	// Everything that reaches SaleRegion necessarily dies with it… except
	// categories with alternative structures: Store still has the
	// Washington/USA structures? No: constraint (b) forces Store.SaleRegion.
	res, err = core.Satisfiable(ds2, Store, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Error("Store requires SaleRegion (constraint b), so it dies too")
	}
	// Country is unaffected.
	res, err = core.Satisfiable(ds2, Country, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Error("Country must stay satisfiable")
	}
}

// TestProposition1 pins satisfiability of every category of locationSch
// and of the whole schema (every dimension schema is satisfiable).
func TestProposition1(t *testing.T) {
	ds := LocationSch()
	unsat, err := core.UnsatisfiableCategories(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(unsat) != 0 {
		t.Errorf("unsatisfiable categories in locationSch: %v", unsat)
	}
}

// TestTheorem2Reduction spot-checks Theorem 2 on locationSch: a constraint
// is implied iff Σ ∪ {¬α} leaves the root unsatisfiable.
func TestTheorem2Reduction(t *testing.T) {
	ds := LocationSch()
	alphas := []constraint.Expr{
		constraint.RollupAtom{RootCat: Store, Cat: Country},            // implied
		core.SummarizabilityConstraint(Store, Country, []string{City}), // implied
		constraint.NewPath(Store, SaleRegion),                          // not implied
		constraint.EqAtom{RootCat: Province, Cat: Country, Val: "USA"}, // not implied (contradicts g)
	}
	for _, alpha := range alphas {
		implied, _, err := core.Implies(ds, alpha, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		root, err := constraint.Root(alpha)
		if err != nil {
			t.Fatal(err)
		}
		neg := core.NewDimensionSchema(ds.G, append(append([]constraint.Expr(nil), ds.Sigma...),
			constraint.Not{X: alpha})...)
		res, err := core.Satisfiable(neg, root, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if implied != !res.Satisfiable {
			t.Errorf("Theorem 2 violated for %s: implied=%v, ¬α-sat=%v", alpha, implied, res.Satisfiable)
		}
	}
	// Pin the expected outcomes.
	implied, _, _ := core.Implies(ds, constraint.RollupAtom{RootCat: Store, Cat: Country}, core.Options{})
	if !implied {
		t.Error("Store.Country should be implied")
	}
	implied, _, _ = core.Implies(ds, constraint.NewPath(Store, SaleRegion), core.Options{})
	if implied {
		t.Error("Store_SaleRegion should not be implied (Canadian stores)")
	}
}

// TestSplitConstraintOnLocation: split constraints (the authors' ICDT'01
// class, Section 1.3) embed into dimension constraints. locationSch
// implies that every store rolls up to exactly one of State, Province, or
// neither (the Washington exception), but not the two-way split without
// the exception.
func TestSplitConstraintOnLocation(t *testing.T) {
	ds := LocationSch()
	withException, err := constraint.Split(Store, []string{State, Province},
		[][]string{{State}, {Province}, {}})
	if err != nil {
		t.Fatal(err)
	}
	implied, _, err := core.Implies(ds, withException, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !implied {
		t.Errorf("split with the empty arm should be implied: %s", withException)
	}
	twoWay, err := constraint.Split(Store, []string{State, Province},
		[][]string{{State}, {Province}})
	if err != nil {
		t.Fatal(err)
	}
	implied, res, err := core.Implies(ds, twoWay, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if implied {
		t.Error("the two-way split must fail: Washington stores reach neither")
	}
	if res.Witness == nil || !res.Witness.G.HasEdge(City, Country) {
		t.Errorf("counterexample should be the Washington structure: %v", res.Witness)
	}
	// The Figure 1 instance satisfies the split with the exception arm.
	if !LocationInstance().Satisfies(withException) {
		t.Error("location instance violates the compiled split")
	}
}
