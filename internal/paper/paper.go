// Package paper provides the running example of Hurtado & Mendelzon,
// "OLAP Dimension Constraints" (PODS 2002): the location dimension instance
// of Figure 1 and the dimension schema locationSch of Figure 3. The
// fixtures are shared by golden tests, examples and benchmarks.
package paper

import (
	"olapdim/internal/constraint"
	"olapdim/internal/core"
	"olapdim/internal/instance"
	"olapdim/internal/schema"
)

// Category names of the location dimension.
const (
	Store      = "Store"
	City       = "City"
	State      = "State"
	Province   = "Province"
	SaleRegion = "SaleRegion"
	Country    = "Country"
)

// LocationHierarchy builds the hierarchy schema of Figure 1(A):
//
//	Store -> City, Store -> SaleRegion
//	City -> State, City -> Province, City -> Country (shortcut)
//	State -> SaleRegion, State -> Country
//	Province -> SaleRegion
//	SaleRegion -> Country
//	Country -> All
//
// The pair (City, Country) is the shortcut of Example 3.
func LocationHierarchy() *schema.Schema {
	g := schema.New("location")
	edges := [][2]string{
		{Store, City},
		{Store, SaleRegion},
		{City, State},
		{City, Province},
		{City, Country},
		{State, SaleRegion},
		{State, Country},
		{Province, SaleRegion},
		{SaleRegion, Country},
		{Country, schema.All},
	}
	// Unreachable-invariant panic: the edge list is a compile-time
	// constant with no duplicates or self-edges, so AddEdge cannot fail;
	// a panic here means this file was edited inconsistently, which the
	// package's own tests catch at development time. Callers (dozens of
	// tests and examples use these fixtures as plain expressions) are
	// shielded by the recover boundaries in core and server.
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	return g
}

// LocationSch builds the dimension schema locationSch of Figure 3:
// the location hierarchy together with the constraints of Figure 5 (left):
//
//	(a) Store_City
//	(b) Store.SaleRegion
//	(c) City="Washington" <-> City_Country
//	(d) City="Washington" -> City.Country="USA"
//	(e) State.Country="Mexico" | State.Country="USA"
//	(f) State.Country="Mexico" <-> State_SaleRegion
//	(g) Province.Country="Canada"
func LocationSch() *core.DimensionSchema {
	g := LocationHierarchy()
	sigma := []constraint.Expr{
		// (a) every store has a parent city.
		constraint.NewPath(Store, City),
		// (b) every store rolls up to a sale region.
		constraint.RollupAtom{RootCat: Store, Cat: SaleRegion},
		// (c) Washington, and only Washington, rolls up directly to
		// Country.
		constraint.Iff{
			A: constraint.EqAtom{RootCat: City, Cat: City, Val: "Washington"},
			B: constraint.NewPath(City, Country),
		},
		// (d) Washington is in the USA.
		constraint.Implies{
			A: constraint.EqAtom{RootCat: City, Cat: City, Val: "Washington"},
			B: constraint.EqAtom{RootCat: City, Cat: Country, Val: "USA"},
		},
		// (e) states belong to Mexico or the USA.
		constraint.NewOr(
			constraint.EqAtom{RootCat: State, Cat: Country, Val: "Mexico"},
			constraint.EqAtom{RootCat: State, Cat: Country, Val: "USA"},
		),
		// (f) exactly the Mexican states roll up directly to SaleRegion.
		constraint.Iff{
			A: constraint.EqAtom{RootCat: State, Cat: Country, Val: "Mexico"},
			B: constraint.NewPath(State, SaleRegion),
		},
		// (g) provinces belong to Canada.
		constraint.EqAtom{RootCat: Province, Cat: Country, Val: "Canada"},
	}
	return core.NewDimensionSchema(g, sigma...)
}

// LocationInstance builds the dimension instance of Figure 1(B): stores in
// Canada, Mexico and the USA, with the Canadian cities rolling up to a
// province, the Mexican and US cities to states, and the city Washington
// rolling up directly to Country. Mexican states and the provinces roll up
// to SaleRegion; US states roll up directly to Country, and US stores reach
// their sale region directly. The instance satisfies (C1)-(C7) and every
// constraint of locationSch.
func LocationInstance() *instance.Instance {
	d := instance.New(LocationHierarchy())
	// Unreachable-invariant panic, as in LocationHierarchy: the member and
	// link tables below are compile-time constants consistent with the
	// fixed hierarchy, so AddMember/AddLink cannot fail on them.
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	type member struct{ cat, id string }
	members := []member{
		{Store, "s1"}, {Store, "s2"}, {Store, "s3"}, {Store, "s4"}, {Store, "s5"}, {Store, "s6"},
		{City, "Toronto"}, {City, "Ottawa"}, {City, "Monterrey"}, {City, "Houston"}, {City, "Austin"}, {City, "Washington"},
		{State, "NuevoLeon"}, {State, "Texas"},
		{Province, "Ontario"},
		{SaleRegion, "SRNorth"}, {SaleRegion, "SRSouth"}, {SaleRegion, "SRWest"},
		{Country, "Canada"}, {Country, "Mexico"}, {Country, "USA"},
	}
	for _, m := range members {
		must(d.AddMember(m.cat, m.id))
	}
	links := [][2]string{
		// Canadian stores: via City -> Province -> SaleRegion -> Country.
		{"s1", "Toronto"}, {"s2", "Ottawa"},
		{"Toronto", "Ontario"}, {"Ottawa", "Ontario"},
		{"Ontario", "SRNorth"}, {"SRNorth", "Canada"},
		// Mexican store: via City -> State -> SaleRegion -> Country.
		{"s3", "Monterrey"}, {"Monterrey", "NuevoLeon"},
		{"NuevoLeon", "SRSouth"}, {"SRSouth", "Mexico"},
		// US stores outside Washington: City -> State -> Country, with the
		// sale region reached directly from the store.
		{"s4", "Houston"}, {"s6", "Austin"},
		{"Houston", "Texas"}, {"Austin", "Texas"}, {"Texas", "USA"},
		{"s4", "SRWest"}, {"s6", "SRWest"},
		// The Washington exception: City -> Country directly.
		{"s5", "Washington"}, {"Washington", "USA"},
		{"s5", "SRWest"}, {"SRWest", "USA"},
		// Countries.
		{"Canada", instance.AllMember}, {"Mexico", instance.AllMember}, {"USA", instance.AllMember},
	}
	for _, l := range links {
		must(d.AddLink(l[0], l[1]))
	}
	return d
}
