// Package gen provides deterministic pseudo-random generators for the
// benchmark harness: layered heterogeneous dimension schemas with tunable
// size, constant density and into-constraint density (experiments E1-E4 and
// E6-E7 of DESIGN.md), dimension instances assembled from frozen
// dimensions, random valid instances for property tests, scaled variants of
// the paper's location dimension, and fact tables.
//
// All generators are seeded and stdlib-only (math/rand), so every
// experiment is reproducible bit for bit.
package gen

import (
	"fmt"
	"math/rand"

	"olapdim/internal/constraint"
	"olapdim/internal/core"
	"olapdim/internal/olap"
	"olapdim/internal/schema"
)

// SchemaSpec parameterizes the random schema generator. Categories are
// arranged in levels; every category has at least one parent on the next
// level (so Definition 1 holds by construction), and heterogeneity arises
// from categories with several alternative parents plus constraints that
// force members to choose among them.
type SchemaSpec struct {
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
	// Categories is the number of categories excluding All. Minimum 2.
	Categories int `json:"categories"`
	// Levels is the number of levels below All. Minimum 2; categories are
	// distributed round-robin over levels.
	Levels int `json:"levels"`
	// ExtraEdgeProb is the probability of each additional cross-level
	// edge (beyond the spanning parent), producing multi-parent
	// heterogeneous categories and shortcuts.
	ExtraEdgeProb float64 `json:"extraEdgeProb"`
	// ChoiceProb is the probability that a multi-parent category receives
	// a one(...) constraint forcing its members to pick exactly one
	// parent path.
	ChoiceProb float64 `json:"choiceProb"`
	// Constants is N_K: the number of constants attached to the top-level
	// category referenced by conditional constraints. Zero disables
	// equality atoms.
	Constants int `json:"constants"`
	// CondProb is the probability that a multi-parent category receives a
	// conditional constraint tying a constant of the top category to one
	// of its parent edges.
	CondProb float64 `json:"condProb"`
	// IntoFrac is the fraction of categories that receive an explicit
	// into constraint on one of their parent edges (the Section 5 pruning
	// heuristic feeds on these: the paper expects "most of the edges of
	// the schema associated with into constraints" in practice, with
	// heterogeneity as the exception). For multi-parent categories the
	// forced edge halves the subset space DIMSAT explores.
	IntoFrac float64 `json:"intoFrac"`
}

// CategoryName returns the generated name of category i.
func CategoryName(i int) string { return fmt.Sprintf("C%d", i) }

// ConstName returns the generated name of constant k.
func ConstName(k int) string { return fmt.Sprintf("k%d", k) }

// Schema generates a dimension schema from the spec. The result is always
// a valid hierarchy schema; its constraints may or may not leave every
// category satisfiable, which is what the satisfiability benchmarks probe.
// The returned error is a generator invariant violation (an edge the
// construction should never produce twice) surfaced instead of panicking.
func Schema(spec SchemaSpec) (*core.DimensionSchema, error) {
	if spec.Categories < 2 {
		spec.Categories = 2
	}
	if spec.Levels < 2 {
		spec.Levels = 2
	}
	if spec.Levels > spec.Categories {
		spec.Levels = spec.Categories
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	g := schema.New(fmt.Sprintf("rand%d", spec.Seed))

	// Distribute categories over levels: level 0 is the bottom.
	levels := make([][]string, spec.Levels)
	for i := 0; i < spec.Categories; i++ {
		l := i % spec.Levels
		levels[l] = append(levels[l], CategoryName(i))
	}
	// Spanning edges: every category gets one parent on the next level
	// (All above the top level).
	for l, cats := range levels {
		for _, c := range cats {
			if l == len(levels)-1 {
				if err := g.AddEdge(c, schema.All); err != nil {
					return nil, fmt.Errorf("gen: spanning edge: %w", err)
				}
				continue
			}
			parent := levels[l+1][rng.Intn(len(levels[l+1]))]
			if err := g.AddEdge(c, parent); err != nil {
				return nil, fmt.Errorf("gen: spanning edge: %w", err)
			}
		}
	}
	// Extra edges to any strictly higher level (or All), adding
	// heterogeneity and shortcuts.
	for l, cats := range levels {
		for _, c := range cats {
			for l2 := l + 1; l2 < len(levels); l2++ {
				for _, p := range levels[l2] {
					if !g.HasEdge(c, p) && rng.Float64() < spec.ExtraEdgeProb {
						if err := g.AddEdge(c, p); err != nil {
							return nil, fmt.Errorf("gen: extra edge: %w", err)
						}
					}
				}
			}
		}
	}

	ds := core.NewDimensionSchema(g)
	top := levels[len(levels)-1][0]

	for i := 0; i < spec.Categories; i++ {
		c := CategoryName(i)
		if c == top {
			continue
		}
		parents := g.Out(c)
		if len(parents) >= 2 {
			if rng.Float64() < spec.ChoiceProb {
				xs := make([]constraint.Expr, len(parents))
				for j, p := range parents {
					xs[j] = constraint.NewPath(c, p)
				}
				ds.Sigma = append(ds.Sigma, constraint.One{Xs: xs})
			}
			if spec.Constants > 0 && rng.Float64() < spec.CondProb && g.Reaches(c, top) {
				k := ConstName(rng.Intn(spec.Constants))
				p := parents[rng.Intn(len(parents))]
				ds.Sigma = append(ds.Sigma, constraint.Implies{
					A: constraint.EqAtom{RootCat: c, Cat: top, Val: k},
					B: constraint.NewPath(c, p),
				})
			}
		}
		if rng.Float64() < spec.IntoFrac {
			ds.Sigma = append(ds.Sigma, constraint.NewPath(c, parents[rng.Intn(len(parents))]))
		}
	}
	return ds, nil
}

// Facts generates a fact table with n random facts spread uniformly over
// the given base members, with measures in [0, maxMeasure).
func Facts(baseMembers []string, n int, maxMeasure int64, seed int64) *olap.FactTable {
	rng := rand.New(rand.NewSource(seed))
	f := &olap.FactTable{Name: fmt.Sprintf("facts%d", seed)}
	if len(baseMembers) == 0 {
		return f
	}
	for i := 0; i < n; i++ {
		f.Add(baseMembers[rng.Intn(len(baseMembers))], rng.Int63n(maxMeasure))
	}
	return f
}
